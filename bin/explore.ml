(* explore — systematic fault exploration over the stock scenarios.

   Replaces the old fault_grid developer tool: instead of sweeping a
   blind (crash instant x downtime) grid, a fault-free reference run is
   instrumented through the event bus, and crash/partition schedules are
   aimed at the harvested decision points (commits, protocol messages,
   dispatches, recovery boundaries). Failing schedules are shrunk to
   minimal counterexamples.

   Usage: dune exec bin/explore.exe -- [--smoke] [--quiet] [--jobs N]
            [--workload NAME]... [--out FILE]

   Writes a machine-readable report (default EXPLORE.json) and exits
   non-zero if any schedule failed an oracle. The report is
   byte-identical for any --jobs value. *)

let usage () =
  print_string
    "explore: event-derived fault exploration\n\
     \n\
     \  --smoke           CI-sized budget (fewer schedules per generator)\n\
     \  --jobs N          explore across N domains (default: available cores)\n\
     \  --workload NAME   only this scenario (chain | supply-chain | cluster3 |\n\
     \                    recovery-retry | recovery-timeout | recovery-alternative |\n\
     \                    recovery-compensate | repo-failover | repo-election, or a\n\
     \                    family alias: 'recovery', 'replication');\n\
     \                    repeatable, default: the classic three\n\
     \  --out FILE        report path (default EXPLORE.json)\n\
     \  --quiet           no per-scenario progress on stderr\n"

let () =
  let smoke = ref false in
  let out = ref "EXPLORE.json" in
  let quiet = ref false in
  let workloads = ref [] in
  let jobs = ref (Pool.default_jobs ()) in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 1 -> jobs := j
      | Some _ | None ->
        Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
        exit 2);
      parse rest
    | "--quiet" :: rest ->
      quiet := true;
      parse rest
    | "--out" :: file :: rest ->
      out := file;
      parse rest
    | "--workload" :: "recovery" :: rest ->
      workloads := !workloads @ Scenario.recovery_all;
      parse rest
    | "--workload" :: "replication" :: rest ->
      workloads := !workloads @ Scenario.replication_all;
      parse rest
    | "--workload" :: name :: rest ->
      (match Scenario.by_name name with
      | Some sc -> workloads := !workloads @ [ sc ]
      | None ->
        Printf.eprintf
          "unknown workload %s (chain | supply-chain | cluster3 | recovery | recovery-* | \
           replication | repo-*)\n"
          name;
        exit 2);
      parse rest
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      usage ();
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let scenarios = if !workloads = [] then Scenario.all else !workloads in
  let budget = if !smoke then Explorer.smoke_budget else Explorer.default_budget in
  let mode = if !smoke then "smoke" else "full" in
  let log = if !quiet then fun _ -> () else fun s -> Printf.eprintf "%s\n%!" s in
  let report = Explorer.explore ~log ~jobs:!jobs ~mode budget scenarios in
  let oc = open_out !out in
  output_string oc (Explorer.to_json report);
  close_out oc;
  List.iter
    (fun s ->
      Printf.printf "%-12s %4d decision points, %4d schedules, %d failure(s)\n"
        s.Explorer.r_scenario s.Explorer.r_points s.Explorer.r_schedules
        (List.length s.Explorer.r_failures))
    report.Explorer.rp_scenarios;
  let failures = Explorer.total_failures report in
  Printf.printf "total: %d schedules over %d decision points, %d failure(s) -> %s\n"
    (Explorer.total_schedules report)
    (Explorer.total_points report)
    failures !out;
  if failures > 0 then begin
    List.iter
      (fun s ->
        List.iter
          (fun f ->
            Printf.printf "FAIL [%s] %s\n  schedule:  %s\n  minimized: %s (%d actions)\n  oracles:   %s\n"
              f.Explorer.f_scenario f.Explorer.f_kind
              (Fault.to_string f.Explorer.f_plan)
              (Fault.to_string f.Explorer.f_min_plan)
              (List.length f.Explorer.f_min_plan)
              (String.concat "; "
                 (List.map
                    (fun v -> v.Oracle.v_oracle ^ ": " ^ v.Oracle.v_detail)
                    f.Explorer.f_verdicts)))
          s.Explorer.r_failures)
      report.Explorer.rp_scenarios;
    exit 1
  end
