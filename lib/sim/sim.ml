type time = int

type event = {
  at : time;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable clock : time;
  mutable next_seq : int;
  queue : event Heap.t;
  root_rng : Rng.t;
  events : Event.bus;
}

let ms n = n * 1_000

let sec n = n * 1_000_000

let compare_event a b =
  match compare a.at b.at with 0 -> compare a.seq b.seq | c -> c

let create ?(seed = 1L) () =
  {
    clock = 0;
    next_seq = 0;
    queue = Heap.create ~cmp:compare_event;
    root_rng = Rng.create seed;
    events = Event.bus ();
  }

let now t = t.clock

let rng t = t.root_rng

let events t = t.events

let emit t ?(src = "") ev = Event.emit t.events ~at:t.clock ~src ev

let at t ~time action =
  let at = max time t.clock in
  let ev = { at; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.queue ev;
  ev

let schedule t ~delay action = at t ~time:(t.clock + max 0 delay) action

let cancel _t handle = handle.cancelled <- true

let pending t = Heap.length t.queue

let fire t ev =
  t.clock <- ev.at;
  if not ev.cancelled then ev.action ()

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    fire t ev;
    true

(* The drain loop is the per-event hot path: one [pop_exn] per event, no
   option boxing, and the common no-limit case skips the bound check. *)
let run ?until t =
  (match until with
  | None -> while not (Heap.is_empty t.queue) do fire t (Heap.pop_exn t.queue) done
  | Some limit ->
    let continue = ref true in
    while !continue do
      if Heap.is_empty t.queue || (Heap.top t.queue).at > limit then continue := false
      else fire t (Heap.pop_exn t.queue)
    done);
  match until with Some limit when limit > t.clock -> t.clock <- limit | _ -> ()
