type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t x =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let next = max 16 (2 * capacity) in
    let data = Array.make next x in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

(* Hole-based sifts: carry the element being placed in a local and slide
   the hole, one array write per level instead of a three-write swap,
   with a single final write. No allocation on either path. *)

let sift_up t i x =
  let data = t.data in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let p = Array.unsafe_get data parent in
    if t.cmp x p < 0 then begin
      Array.unsafe_set data !i p;
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set data !i x

let sift_down t i x =
  let data = t.data in
  let size = t.size in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= size then continue := false
    else begin
      let r = l + 1 in
      let c =
        if r < size && t.cmp (Array.unsafe_get data r) (Array.unsafe_get data l) < 0 then r
        else l
      in
      let cv = Array.unsafe_get data c in
      if t.cmp cv x < 0 then begin
        Array.unsafe_set data !i cv;
        i := c
      end
      else continue := false
    end
  done;
  Array.unsafe_set data !i x

let push t x =
  grow t x;
  let i = t.size in
  t.size <- i + 1;
  sift_up t i x

let peek t = if t.size = 0 then None else Some t.data.(0)

exception Empty

let top t = if t.size = 0 then raise Empty else Array.unsafe_get t.data 0

let pop_exn t =
  if t.size = 0 then raise Empty;
  let data = t.data in
  let top = Array.unsafe_get data 0 in
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then sift_down t 0 (Array.unsafe_get data last);
  top

let pop t = if t.size = 0 then None else Some (pop_exn t)

let to_list t =
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (t.data.(i) :: acc) in
  collect (t.size - 1) []
