type t =
  | Wf_launched of { iid : string; root : string }
  | Wf_concluded of { iid : string; status : string }
  | Wf_cancelled of { iid : string; reason : string }
  | Wf_relaunched of { iid : string }
  | Wf_reconfigured of { iid : string }
  | Wf_collected of { iid : string }
  | Scope_opened of { path : string }
  | Task_started of { path : string; attempt : int }
  | Task_dispatched of { path : string; code : string; host : string; attempt : int }
  | Task_retried of { path : string; attempt : int }
  | Task_auto_restarted of { path : string }
  | Task_marked of { path : string; mark : string }
  | Task_repeated of { path : string; output : string; attempt : int }
  | Task_completed of {
      path : string;
      output : string;
      aborted : bool;
      duration : int;
      scope : bool;
    }
  | Task_failed of { path : string; reason : string }
  | Impl_completed of { path : string; output : string }
  | Watchdog_fired of { path : string }
  | Timer_fired of { path : string; set : string }
  | Policy_retry of { path : string; attempt : int; delay_ms : int }
  | Policy_substituted of { path : string; code : string }
  | Policy_compensated of { path : string; task : string }
  | User_aborted of { path : string }
  | Recovery_replayed of { instances : int }
  | Recovery_error of { detail : string }
  | Txn_failed of { detail : string }
  | Txn_resolved of { txid : string; committed : bool }
  | Txn_one_phase of { txid : string; local : bool }
  | Txn_readonly_elided of { txid : string; node : string }
  | Rpc_sent of { src : string; dst : string; service : string }
  | Rpc_retried of { src : string; dst : string; service : string }
  | Rpc_timed_out of { src : string; dst : string; service : string }
  | Rpc_reply_evicted of { node : string }
  | Rpc_loopback of { node : string; service : string }
  | Persist_batched of { requests : int; writes : int }
  | Cons_election_started of { node : string; term : int }
  | Cons_leader_elected of { node : string; term : int }
  | Cons_stepped_down of { node : string; term : int }
  | Cons_committed of { node : string; index : int; term : int }
  | Cons_caught_up of { node : string; upto : int }

let name = function
  | Wf_launched _ -> "wf-launched"
  | Wf_concluded _ -> "wf-concluded"
  | Wf_cancelled _ -> "wf-cancelled"
  | Wf_relaunched _ -> "wf-relaunched"
  | Wf_reconfigured _ -> "wf-reconfigured"
  | Wf_collected _ -> "wf-collected"
  | Scope_opened _ -> "scope-opened"
  | Task_started _ -> "task-started"
  | Task_dispatched _ -> "task-dispatched"
  | Task_retried _ -> "task-retried"
  | Task_auto_restarted _ -> "task-auto-restarted"
  | Task_marked _ -> "task-marked"
  | Task_repeated _ -> "task-repeated"
  | Task_completed _ -> "task-completed"
  | Task_failed _ -> "task-failed"
  | Impl_completed _ -> "impl-completed"
  | Watchdog_fired _ -> "watchdog-fired"
  | Timer_fired _ -> "timer-fired"
  | Policy_retry _ -> "policy-retry"
  | Policy_substituted _ -> "policy-substituted"
  | Policy_compensated _ -> "policy-compensated"
  | User_aborted _ -> "user-aborted"
  | Recovery_replayed _ -> "recovery-replayed"
  | Recovery_error _ -> "recovery-error"
  | Txn_failed _ -> "txn-failed"
  | Txn_resolved _ -> "txn-resolved"
  | Txn_one_phase _ -> "txn-one-phase"
  | Txn_readonly_elided _ -> "txn-readonly-elided"
  | Rpc_sent _ -> "rpc-sent"
  | Rpc_retried _ -> "rpc-retried"
  | Rpc_timed_out _ -> "rpc-timed-out"
  | Rpc_reply_evicted _ -> "rpc-reply-evicted"
  | Rpc_loopback _ -> "rpc-loopback"
  | Persist_batched _ -> "persist-batched"
  | Cons_election_started _ -> "cons-election-started"
  | Cons_leader_elected _ -> "cons-leader-elected"
  | Cons_stepped_down _ -> "cons-stepped-down"
  | Cons_committed _ -> "cons-committed"
  | Cons_caught_up _ -> "cons-caught-up"

(* The legacy trace vocabulary predates the typed events; tests, the
   Gantt reconstruction and the CLI all read it, so the mapping must
   reproduce the historical kind/detail strings byte for byte. Event
   types introduced after the migration map to [None]. *)
let to_trace = function
  | Wf_launched { iid; root } -> Some ("launch", Printf.sprintf "%s root=%s" iid root)
  | Wf_concluded { iid; status } -> Some ("instance", Printf.sprintf "%s %s" iid status)
  | Wf_cancelled { iid; reason } -> Some ("cancel", Printf.sprintf "%s: %s" iid reason)
  | Wf_relaunched { iid } -> Some ("relaunch", iid)
  | Wf_reconfigured { iid } -> Some ("reconfigure", iid)
  | Wf_collected { iid } -> Some ("gc", iid)
  | Scope_opened { path } -> Some ("scope-open", path)
  | Task_started { path; attempt } ->
    Some ("start", Printf.sprintf "%s (attempt %d)" path attempt)
  | Task_dispatched _ -> None
  | Task_retried { path; attempt } ->
    Some ("retry", Printf.sprintf "%s (attempt %d)" path attempt)
  | Task_auto_restarted { path } -> Some ("auto-restart", path)
  | Task_marked { path; mark } -> Some ("mark", Printf.sprintf "%s %s" path mark)
  | Task_repeated { path; output; attempt } ->
    Some ("repeat", Printf.sprintf "%s %s (attempt %d)" path output attempt)
  | Task_completed { path; output; _ } -> Some ("complete", path ^ " -> " ^ output)
  | Task_failed { path; reason } -> Some ("task-failed", path ^ ": " ^ reason)
  | Impl_completed _ -> None
  | Watchdog_fired { path } -> Some ("watchdog", path)
  | Timer_fired { path; set } -> Some ("timeout", Printf.sprintf "%s input %s" path set)
  | User_aborted { path } -> Some ("user-abort", path)
  | Recovery_replayed { instances } ->
    Some ("recovery", Printf.sprintf "%d instance(s)" instances)
  | Recovery_error { detail } -> Some ("recovery-error", detail)
  | Txn_failed { detail } -> Some ("txn-failed", detail)
  | Policy_retry _ | Policy_substituted _ | Policy_compensated _ | Txn_resolved _
  | Txn_one_phase _ | Txn_readonly_elided _ | Rpc_sent _ | Rpc_retried _ | Rpc_timed_out _
  | Rpc_reply_evicted _ | Rpc_loopback _ | Persist_batched _ | Cons_election_started _
  | Cons_leader_elected _ | Cons_stepped_down _ | Cons_committed _ | Cons_caught_up _ ->
    None

type subscriber = at:int -> src:string -> t -> unit

type bus = { mutable subscribers : subscriber list }

let bus () = { subscribers = [] }

let subscribe bus f = bus.subscribers <- bus.subscribers @ [ f ]

let emit bus ~at ~src ev = List.iter (fun f -> f ~at ~src ev) bus.subscribers
