type action =
  | Crash of string
  | Restart of string
  | Partition_on of string * string
  | Partition_off of string * string

type t = (Sim.time * action) list

let empty = []

let crash_restart ~node ~at ~down_for = [ (at, Crash node); (at + down_for, Restart node) ]

let partition ~a ~b ~at ~heal_after =
  [ (at, Partition_on (a, b)); (at + heal_after, Partition_off (a, b)) ]

let periodic_crashes ~node ~period ~down_for ~count =
  let rec build k acc =
    if k > count then List.concat (List.rev acc)
    else build (k + 1) (crash_restart ~node ~at:(k * period) ~down_for :: acc)
  in
  build 1 []

let ( @+ ) a b = a @ b

(* Static plan check against the set of nodes the target system actually
   has. Actions are considered in execution order (time, then plan
   order, matching [apply]'s tie-breaking): a [Restart] must find its
   node crashed, a [Crash] must not hit a node that is already down.
   Catches the classic silent no-ops — a typoed node id matching
   nothing, or a restart that never pairs with a crash. *)
let validate ~nodes plan =
  let known n = List.mem n nodes in
  let ordered = List.stable_sort (fun (ta, _) (tb, _) -> compare ta tb) plan in
  let bad fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec walk crashed = function
    | [] -> Ok ()
    | (at, action) :: rest -> (
      match action with
      | Crash n when not (known n) -> bad "crash of unknown node %s at %d" n at
      | Crash n when List.mem n crashed -> bad "crash of already-crashed node %s at %d" n at
      | Crash n -> walk (n :: crashed) rest
      | Restart n when not (known n) -> bad "restart of unknown node %s at %d" n at
      | Restart n when not (List.mem n crashed) ->
        bad "restart of node %s at %d, which was never crashed" n at
      | Restart n -> walk (List.filter (fun c -> c <> n) crashed) rest
      | Partition_on (a, b) | Partition_off (a, b) ->
        if not (known a) then bad "partition names unknown node %s at %d" a at
        else if not (known b) then bad "partition names unknown node %s at %d" b at
        else if a = b then bad "partition of node %s with itself at %d" a at
        else walk crashed rest)
  in
  walk [] ordered

let apply sim plan ~on =
  let plant (time, action) = ignore (Sim.at sim ~time (fun () -> on action)) in
  List.iter plant plan

let pp_action ppf = function
  | Crash n -> Format.fprintf ppf "crash %s" n
  | Restart n -> Format.fprintf ppf "restart %s" n
  | Partition_on (a, b) -> Format.fprintf ppf "partition %s / %s" a b
  | Partition_off (a, b) -> Format.fprintf ppf "heal %s / %s" a b

let to_string plan =
  String.concat "; "
    (List.map (fun (at, a) -> Format.asprintf "%dus %a" at pp_action a) plan)
