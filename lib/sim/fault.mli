(** Fault plans: declarative schedules of crashes, restarts and network
    partitions, applied to a run at setup time.

    The plan only names faults; their semantics (what "crash" does) are
    provided by the layer that owns the affected component, via the
    [on] callback of {!apply}. *)

type action =
  | Crash of string  (** crash the named node: volatile state is lost *)
  | Restart of string  (** restart the named node: recovery runs *)
  | Partition_on of string * string
      (** sever connectivity between the two named nodes (both ways) *)
  | Partition_off of string * string  (** heal the partition *)

type t = (Sim.time * action) list

val empty : t

val crash_restart : node:string -> at:Sim.time -> down_for:Sim.time -> t
(** Crash [node] at [at] and restart it [down_for] later. *)

val partition : a:string -> b:string -> at:Sim.time -> heal_after:Sim.time -> t
(** Temporary two-way partition between [a] and [b]. *)

val periodic_crashes :
  node:string -> period:Sim.time -> down_for:Sim.time -> count:int -> t
(** [count] crash/restart cycles, the k-th crash at [k * period]. *)

val ( @+ ) : t -> t -> t
(** Plan union. *)

val validate : nodes:string list -> t -> (unit, string) result
(** Static well-formedness check against the named node population,
    considering actions in execution order: every action must name known
    nodes, a [Crash] must not hit a node that is already down, a
    [Restart] must find its node crashed, and a partition must involve
    two distinct known nodes. Layers that apply plans ({!Testbed},
    {!Cluster}) run this first so a typoed node id or an unpaired
    restart is an error instead of a silent no-op. *)

val apply : Sim.t -> t -> on:(action -> unit) -> unit
(** Schedule every planned action on the simulator. The plan is taken as
    given — callers wanting the well-formedness guarantee run
    {!validate} first. *)

val pp_action : Format.formatter -> action -> unit

val to_string : t -> string
(** One-line rendering of a whole plan, for reports and test output. *)
