(** Minimal binary min-heap, specialised by a comparison function.

    Used as the pending-event queue of the simulator. Not thread-safe;
    the simulator is single-threaded by design. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option

val pop : 'a t -> 'a option
(** Removes and returns the minimum element, or [None] when empty. *)

exception Empty

val pop_exn : 'a t -> 'a
(** Like {!pop} but without the option allocation; raises [Empty] on an
    empty heap. This is the simulator's hot-loop entry point. *)

val top : 'a t -> 'a
(** Like {!peek} but without the option allocation; raises [Empty] on an
    empty heap. *)

val to_list : 'a t -> 'a list
(** Snapshot of the contents in heap (not sorted) order. *)
