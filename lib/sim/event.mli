(** Typed observability events — the spine every layer reports through.

    One flat variant covers the whole stack: workflow lifecycle and task
    transitions (engine), RPC attempts (net), transaction resolutions
    (tx) and recovery replay. Producers publish onto the {!bus} owned by
    the simulator ({!Sim.events}); subscribers fan the stream out to the
    legacy string {!Trace}, the {!section-"metrics"} registry, Gantt
    reconstruction, or anything else — producers never know who is
    listening.

    Times are plain [int]s (virtual microseconds, {!Sim.time}); the
    module sits below [Sim] so the simulator itself can own a bus. *)

type t =
  | Wf_launched of { iid : string; root : string }
  | Wf_concluded of { iid : string; status : string }
      (** [status] pre-rendered with [Wstate.pp_status]. *)
  | Wf_cancelled of { iid : string; reason : string }
  | Wf_relaunched of { iid : string }
      (** A launch lost to a crash before its commit decision was
          re-persisted by recovery. *)
  | Wf_reconfigured of { iid : string }
  | Wf_collected of { iid : string }  (** gc of a finished instance *)
  | Scope_opened of { path : string }  (** a compound task started *)
  | Task_started of { path : string; attempt : int }
  | Task_dispatched of { path : string; code : string; host : string; attempt : int }
      (** One implementation dispatch RPC (initial or retry). *)
  | Task_retried of { path : string; attempt : int }  (** system retry *)
  | Task_auto_restarted of { path : string }
      (** Abort outcome absorbed by the ["retries"] implementation kv. *)
  | Task_marked of { path : string; mark : string }
  | Task_repeated of { path : string; output : string; attempt : int }
  | Task_completed of {
      path : string;
      output : string;
      aborted : bool;
      duration : int;
      scope : bool;
    }
      (** [duration] in virtual us since the completing execution
          started; [aborted] for abort outcomes; [scope] when the
          completion closes a compound task (scope) rather than a basic
          task, so duration histograms can keep the two apart. *)
  | Task_failed of { path : string; reason : string }
  | Impl_completed of { path : string; output : string }
      (** An implementation reported a final (non-repeat) outcome;
          emitted before the completion is made durable. *)
  | Watchdog_fired of { path : string }
  | Timer_fired of { path : string; set : string }
  | Policy_retry of { path : string; attempt : int; delay_ms : int }
      (** A declared recovery policy scheduled a retry; [delay_ms] is
          the backoff wait (0 = immediate). Never emitted for the
          config-seeded default policy. *)
  | Policy_substituted of { path : string; code : string }
      (** A declared recovery policy switched the execution to the next
          ranked alternative, or to the [substitute] code on timeout. *)
  | Policy_compensated of { path : string; task : string }
      (** A declared recovery policy launched the compensation [task]
          after an abort outcome (once per aborted scope). *)
  | User_aborted of { path : string }
  | Recovery_replayed of { instances : int }
  | Recovery_error of { detail : string }
  | Txn_failed of { detail : string }  (** an engine persist gave up *)
  | Txn_resolved of { txid : string; committed : bool }
      (** Top-level commit decision (2PC) or abort. *)
  | Txn_one_phase of { txid : string; local : bool }
      (** A single-participant transaction committed via the combined
          prepare+commit fast lane; [local] when the sole participant was
          the coordinator's own node and no RPC was needed at all. *)
  | Txn_readonly_elided of { txid : string; node : string }
      (** [node] held only read locks for the committing transaction: it
          validated and released in phase 1 and was excluded from the
          commit fan-out. *)
  | Rpc_sent of { src : string; dst : string; service : string }
  | Rpc_retried of { src : string; dst : string; service : string }
  | Rpc_timed_out of { src : string; dst : string; service : string }
  | Rpc_reply_evicted of { node : string }
      (** The bounded server-side RPC dedup cache dropped its oldest
          reply on [node] to admit a new one. *)
  | Rpc_loopback of { node : string; service : string }
      (** A self-addressed call ([src = dst], node up) delivered to the
          local handler without touching the network fabric. *)
  | Persist_batched of { requests : int; writes : int }
      (** One engine persist flush coalesced [requests] (>= 2) queued
          persist calls, [writes] total writes, into a single
          transaction. *)
  | Cons_election_started of { node : string; term : int }
      (** A consensus replica became a candidate for [term]. *)
  | Cons_leader_elected of { node : string; term : int }
      (** [node] won a quorum of votes and now leads [term]. *)
  | Cons_stepped_down of { node : string; term : int }
      (** A leader or candidate observed a higher [term] and reverted to
          follower. *)
  | Cons_committed of { node : string; index : int; term : int }
      (** The replica's commit index advanced to [index] (leader: by
          quorum count; follower: by the leader's commit watermark). *)
  | Cons_caught_up of { node : string; upto : int }
      (** A rejoining replica finished pulling the log suffix it missed
          while down or partitioned. *)

val name : t -> string
(** Stable kebab-case tag of the constructor (metrics counter keys). *)

val to_trace : t -> (string * string) option
(** Legacy [(kind, detail)] rendering, byte-identical to the historical
    [Trace.record] strings; [None] for event types that never had a
    trace representation (dispatches, RPC attempts, 2PC resolutions). *)

(** {1 Bus} *)

type subscriber = at:int -> src:string -> t -> unit
(** [src] labels the component that published the event — an engine's
    node id, an RPC caller, a transaction coordinator — so that
    subscribers in a multi-engine cluster can keep per-engine streams
    apart (or aggregate across them). [""] when the producer has no
    meaningful identity. *)

type bus

val bus : unit -> bus

val subscribe : bus -> subscriber -> unit
(** Subscribers run synchronously in subscription order at every
    {!emit}; they must not re-emit. *)

val emit : bus -> at:int -> src:string -> t -> unit
