(** Deterministic discrete-event simulation kernel.

    Virtual time is an integer number of microseconds. Events scheduled
    at equal times fire in scheduling order (a monotonically increasing
    sequence number breaks ties), so a whole run is reproducible. *)

type time = int
(** Virtual microseconds since the start of the run. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val ms : int -> time
(** [ms n] is [n] milliseconds expressed in virtual microseconds. *)

val sec : int -> time
(** [sec n] is [n] seconds expressed in virtual microseconds. *)

val create : ?seed:int64 -> unit -> t
(** Fresh simulator; [seed] (default 1) initialises the root RNG. *)

val now : t -> time

val rng : t -> Rng.t
(** The root RNG of the run. Derive per-component generators with
    {!Rng.split} at setup time, never during the run, to keep component
    behaviour independent of interleavings. *)

val events : t -> Event.bus
(** The run's observability bus. Every layer (engine, RPC, transactions)
    publishes typed {!Event.t}s here; subscribers (trace, metrics, Gantt
    recorders) attach once at setup. *)

val emit : t -> ?src:string -> Event.t -> unit
(** [emit t ~src ev] publishes [ev] on {!events} stamped with {!now}.
    [src] identifies the publishing component (typically a node id) so
    subscribers can separate per-engine streams; default [""]. *)

val schedule : t -> delay:time -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t + delay]. A negative delay
    is clamped to zero (runs after the current event). *)

val at : t -> time:time -> (unit -> unit) -> handle
(** [at t ~time f] runs [f] at absolute virtual [time]; clamped to now. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val pending : t -> int
(** Number of scheduled-but-not-fired events (cancelled ones may still
    be counted until their time arrives). *)

val run : ?until:time -> t -> unit
(** Executes events in time order until the queue drains, or virtual
    time would exceed [until] (events after [until] stay queued). *)

val step : t -> bool
(** Executes exactly one event. Returns [false] when the queue is
    empty. *)
