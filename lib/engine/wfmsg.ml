(* Services are namespaced by the engine node that owns the dialogue:
   several engines can then coexist on one RPC fabric — and one host
   node can serve tasks for all of them — without service collisions. *)

let service_exec ~engine = "wf.exec@" ^ engine

let service_done ~engine = "wf.done@" ^ engine

let service_mark ~engine = "wf.mark@" ^ engine

type exec_req = {
  x_iid : string;
  x_path : string list;
  x_attempt : int;
  x_code : string;
  x_set : string;
  x_inputs : (string * Value.obj) list;
}

type report = {
  r_iid : string;
  r_path : string list;
  r_attempt : int;
  r_output : string;
  r_objects : (string * Value.t) list;
}

let enc_exec x =
  Wire.string x.x_iid
  ^ Wire.(list string) x.x_path
  ^ Wire.int x.x_attempt ^ Wire.string x.x_code ^ Wire.string x.x_set
  ^ Wire.string (Value.encode_bindings x.x_inputs)

let dec_exec s =
  Wire.decode
    (fun d ->
      let x_iid = Wire.d_string d in
      let x_path = Wire.d_list Wire.d_string d in
      let x_attempt = Wire.d_int d in
      let x_code = Wire.d_string d in
      let x_set = Wire.d_string d in
      let x_inputs = Value.decode_bindings (Wire.d_string d) in
      { x_iid; x_path; x_attempt; x_code; x_set; x_inputs })
    s

let enc_value_bindings objects =
  Wire.list (fun (name, v) -> Wire.string name ^ Wire.string (Value.encode v)) objects

let dec_value_bindings d =
  Wire.d_list
    (fun d ->
      let name = Wire.d_string d in
      let v = Value.decode (Wire.d_string d) in
      (name, v))
    d

let enc_report r =
  Wire.string r.r_iid
  ^ Wire.(list string) r.r_path
  ^ Wire.int r.r_attempt ^ Wire.string r.r_output ^ enc_value_bindings r.r_objects

let dec_report s =
  Wire.decode
    (fun d ->
      let r_iid = Wire.d_string d in
      let r_path = Wire.d_list Wire.d_string d in
      let r_attempt = Wire.d_int d in
      let r_output = Wire.d_string d in
      let r_objects = dec_value_bindings d in
      { r_iid; r_path; r_attempt; r_output; r_objects })
    s

let reply_ok = "ok"

let reply_no_impl = "no-impl"
