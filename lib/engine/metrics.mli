(** Metrics registry: counters and histograms fed by the typed event
    bus, replacing the mutable counters that used to live on
    [Engine.t].

    {!attach} subscribes the registry to a bus; every {!Event.t} bumps a
    generic [events.<tag>] counter, and engine-relevant events also bump
    the stable [engine.*] counters backing the [Engine.*_total]
    accessors. {!to_json} renders everything for machine consumption
    (the bench harness writes it to [BENCH_engine.json]). *)

type t

val create : unit -> t

val attach : ?src:string -> t -> Event.bus -> unit
(** Subscribe to [bus]; call once, at setup. With [src], only events
    published under that source label are counted — an engine passes its
    own node id so co-hosted engines keep separate registries. *)

val attach_labelled : t -> Event.bus -> unit
(** Cluster-wide subscription: counts everything like {!attach} without
    a filter, and additionally keys the headline counters per source as
    [cluster.<src>.<counter>] (dispatches, completions, launches,
    concluded, recoveries) so one registry shows the whole cluster and
    its per-engine breakdown. *)

val incr : ?by:int -> t -> string -> unit

val observe : t -> string -> int -> unit
(** Record one histogram sample. *)

val value : t -> string -> int
(** Current counter value; 0 if never incremented. *)

val set : t -> string -> int -> unit
(** Set a gauge: a last-write-wins point-in-time observation, sampled
    explicitly by the owner rather than accumulated from the bus. The
    engine publishes [engine.resident_words] and
    [engine.ready_queue_len] this way (see [Engine.observe_residency]). *)

val gauge : t -> string -> int option
(** Current gauge value; [None] if never set. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * int) list
(** Sorted by name. *)

val samples : t -> string -> int list
(** Raw histogram samples in recording order; [] if unknown. *)

val to_json : t -> string
(** [{"counters":{...},"histograms":{name:{count,min,max,mean,p50,p95,p99}},"gauges":{...}}] *)
