(** ASCII Gantt chart of a workflow run, reconstructed from the engine
    trace — regenerates the paper's Fig 1 timeline ("t2 and t3 start
    once t1 finishes and t4 starts after both") as text.

    One row per task execution interval (first [start]/[scope-open] to
    the matching [complete]), drawn over a scaled time axis; marks are
    drawn as [*] at their release instant. *)

val render : ?width:int -> Trace.t -> string
(** [width] is the number of columns of the bar area (default 60). An
    empty trace renders an empty string. *)

(** {1 Typed recorder}

    The same chart fed directly from the typed event bus instead of the
    legacy trace: subscribe a recorder before the run, render after. *)

type recorder

val recorder : unit -> recorder

val attach : ?src:string -> recorder -> Event.bus -> unit
(** Subscribe to [Task_started]/[Scope_opened], [Task_completed] and
    [Task_marked] events. With [src], only events from that source
    (engine node id) are recorded — needed when several engines share
    the bus and task paths could collide across instances. *)

val render_events : ?width:int -> recorder -> string
(** Render what the recorder saw; identical output to {!render} over
    the legacy trace of the same run. *)
