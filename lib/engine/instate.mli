(** Volatile per-instance state: the in-memory mirror of one workflow
    instance's persistent {!Wstate} records, plus the bookkeeping flags
    of the evaluation pump.

    The mirror tables shadow exactly what is in the committed store (the
    engine updates both in lock-step: store writes under a transaction,
    mirror on commit); {!load_committed} rebuilds them from committed
    keys after a crash. The translation of a scheduler {!Sched.action}
    into transactional writes, history rows and mirror updates lives
    here too, so the engine proper only orchestrates. *)

type t = {
  iid : string;
  mutable script_text : string;
  mutable schema : Schema.task;
  mutable status : Wstate.status;
  mutable external_inputs : (string * Value.obj) list;
  states : (string, Wstate.task_state) Hashtbl.t;
  chosen : (string, Wstate.chosen) Hashtbl.t;
  marks : (string, (string * (string * Value.obj) list) list) Hashtbl.t;
  repeats : (string, string * (string * Value.obj) list) Hashtbl.t;
  timers : (string, unit) Hashtbl.t;  (** fired; key = ["path|set"] *)
  timer_arms : (string, Sim.time) Hashtbl.t;
      (** persisted deadlines; key = ["path|set"] *)
  timers_armed : (string, int) Hashtbl.t;
      (** volatile; value = attempt armed for *)
  backoffs : (string, int * Sim.time) Hashtbl.t;
      (** pending policy backoffs: attempt waiting, absolute fire time *)
  compensated : (string, unit) Hashtbl.t;
      (** aborted paths whose compensation is durably recorded *)
  mutable callbacks : (Wstate.status -> unit) list;
  mutable hseq : int;  (** next persistent-history index *)
  mutable dirty : bool;
  mutable inflight : bool;
  mutable concluding : bool;
  mutable pending : Sched.dirty;
      (** paths changed since the last evaluation pass — the seed for
          the incremental {!Sched.scan_from} *)
  mutable index : Sched.index option;
      (** cached reverse-dependency index; reconfiguration resets it *)
}

val create :
  iid:string ->
  script_text:string ->
  schema:Schema.task ->
  status:Wstate.status ->
  external_inputs:(string * Value.obj) list ->
  t

val reset : t -> t
(** Same identity/script/inputs, running status, empty mirrors — for
    re-persisting a launch whose transaction was lost to a crash. *)

(** {1 Mirror accessors} (no record = implicitly Waiting, attempt 1) *)

val get_state : t -> Wstate.path -> Wstate.task_state option

val get_chosen : t -> Wstate.path -> Wstate.chosen option

val get_marks : t -> Wstate.path -> (string * (string * Value.obj) list) list

val get_repeat : t -> Wstate.path -> (string * (string * Value.obj) list) option

val timer_fired : t -> Wstate.path -> set:string -> bool

val get_backoff : t -> Wstate.path -> (int * Sim.time) option
(** The pending policy backoff of a path, if any (attempt, fire time). *)

val set_backoff : t -> Wstate.path -> attempt:int -> fire_at:Sim.time -> unit

val is_compensated : t -> Wstate.path -> bool

val mark_compensated : t -> Wstate.path -> unit

val pending_backoffs : t -> (Wstate.path * int * Sim.time) list
(** All pending policy backoffs — recovery resumes each one's remaining
    wait against the persisted attempt counter. *)

val view : t -> effective:(Schema.task -> Sched.effective) -> Sched.view
(** Snapshot view for the pure scheduler core. Build fresh per pass —
    [v_running] is captured at call time. *)

val meta : t -> status:Wstate.status -> Wstate.meta
(** The instance's durable meta record at the given status. *)

val find_node : t -> effective:(Schema.task -> Sched.effective) -> Wstate.path -> Schema.task option
(** The schema node at an absolute path (rooted at the instance's
    top-level task), descending through bound sub-workflows. *)

val running_leaves :
  t ->
  effective:(Schema.task -> Sched.effective) ->
  (Wstate.path * Schema.task * int * Sim.time) list
(** Running leaf executions (path, task, attempt, watchdog deadline):
    recovery re-arms one watchdog per entry, and a running instance with
    none whose root is unfinished is quiescent. *)

(** {1 Subtree erasure} (a compound repeat wipes its scope) *)

val subtree_keys : t -> Wstate.path -> string list
(** Store keys of every record strictly below [path], plus [path]'s own
    chosen/timer records. *)

val wipe_subtree_mirror : t -> Wstate.path -> unit

(** {1 Action translation} *)

val history_write : t -> now:Sim.time -> kind:string -> detail:string -> string * string option
(** Allocate the next persistent history row (consumes [hseq]). *)

val action_history : t -> now:Sim.time -> Sched.action -> (string * string option) list

val action_writes :
  t -> now:Sim.time -> deadline_of:(Schema.task -> Sim.time) -> Sched.action ->
  (string * string option) list
(** The transactional writes realising one action. [deadline_of] gives a
    task's watchdog span (engine config + ["deadline"] kv). *)

val apply_action_mirror :
  t -> now:Sim.time -> deadline_of:(Schema.task -> Sim.time) -> Sched.action -> unit
(** Mirror update only — the caller emits the corresponding events. *)

(** {1 Bounding memory after conclusion} *)

val trim_concluded : t -> unit
(** Drop the state that only serves a running evaluation pump (timer
    records, armed-timer bookkeeping, scan index, pending set). Always
    applied when an instance concludes. *)

val release : t -> unit
(** {!trim_concluded} plus the mirror tables themselves: a concluded
    instance then costs O(1) resident words. Introspection accessors
    answer empty afterwards; the committed store is untouched. Applied
    on conclusion when the engine runs with [retain_concluded = false]. *)

(** {1 Recovery} *)

val load_committed : t -> read:(string -> string option) -> keys:string list -> unit
(** Fill the mirror tables from the committed store: [keys] is the full
    committed key list, [read] fetches one committed value. *)
