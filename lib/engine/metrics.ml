type hist = { mutable count : int; mutable sum : int; mutable rev_samples : int list }

type t = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  event_names : (string, int ref) Hashtbl.t;  (* Event.name -> "events."-prefixed counter *)
}

let create () =
  {
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 8;
    gauges = Hashtbl.create 8;
    event_names = Hashtbl.create 16;
  }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let observe t name v =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
      let h = { count = 0; sum = 0; rev_samples = [] } in
      Hashtbl.replace t.histograms name h;
      h
  in
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  h.rev_samples <- v :: h.rev_samples

let value t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* Gauges are last-write-wins point-in-time observations (resident
   words, ready-queue length) — the caller samples them explicitly,
   unlike counters/histograms which accumulate from the event bus. *)
let set t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge t name = match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

let gauges t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let samples t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> List.rev h.rev_samples
  | None -> []

(* Engine-level counters keep their own stable names (they back the
   [Engine.*_total] accessors); every event additionally bumps a generic
   [events.<tag>] counter so new event types are visible without code.

   The [events.<tag>] counter ref is memoized per registry: [Event.name]
   returns a small fixed set of static strings, so the table stays tiny
   and the per-event string concatenation plus counters-table probe
   disappear from the hot path. Registries are engine-scoped (never
   shared across domains), so the plain Hashtbl needs no lock. *)
let event_counter t name =
  match Hashtbl.find_opt t.event_names name with
  | Some r -> r
  | None ->
    let full = "events." ^ name in
    let r =
      match Hashtbl.find_opt t.counters full with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.replace t.counters full r;
        r
    in
    Hashtbl.replace t.event_names name r;
    r

let record t ev =
  let c = event_counter t (Event.name ev) in
  c := !c + 1;
  match ev with
  | Event.Task_dispatched _ -> incr t "engine.dispatches"
  | Event.Impl_completed _ -> incr t "engine.completions"
  | Event.Task_retried _ -> incr t "engine.system_retries"
  | Event.Policy_retry _ -> incr t "engine.policy_retries"
  | Event.Policy_substituted _ -> incr t "engine.policy_substitutions"
  | Event.Policy_compensated _ -> incr t "engine.policy_compensations"
  | Event.Task_marked _ -> incr t "engine.marks"
  | Event.Wf_reconfigured _ -> incr t "engine.reconfigs"
  | Event.Recovery_replayed _ -> incr t "engine.recoveries"
  | Event.Rpc_reply_evicted _ -> incr t "rpc.reply_evictions"
  | Event.Rpc_loopback _ -> incr t "rpc.loopback"
  | Event.Txn_one_phase _ -> incr t "txn.one_phase"
  | Event.Txn_readonly_elided _ -> incr t "txn.readonly_elided"
  | Event.Persist_batched _ -> incr t "engine.persist_batched"
  | Event.Task_completed { duration; scope; _ } ->
    observe t (if scope then "engine.scope_duration_us" else "engine.task_duration_us") duration
  | _ -> ()

let attach ?src t bus =
  Event.subscribe bus (fun ~at:_ ~src:from ev ->
      match src with
      | Some only when only <> from -> ()
      | Some _ | None -> record t ev)

(* Cluster aggregation: the same stream keyed per source, so one
   registry holds [cluster.<engine>.<counter>] for every engine plus the
   unlabelled totals. *)
let attach_labelled t bus =
  Event.subscribe bus (fun ~at:_ ~src ev ->
      record t ev;
      if src <> "" then
        match ev with
        | Event.Task_dispatched _ -> incr t (Printf.sprintf "cluster.%s.dispatches" src)
        | Event.Impl_completed _ -> incr t (Printf.sprintf "cluster.%s.completions" src)
        | Event.Wf_launched _ -> incr t (Printf.sprintf "cluster.%s.launches" src)
        | Event.Wf_concluded _ -> incr t (Printf.sprintf "cluster.%s.concluded" src)
        | Event.Recovery_replayed _ -> incr t (Printf.sprintf "cluster.%s.recoveries" src)
        | _ -> ())

let pct sorted n p =
  if n = 0 then 0
  else
    let rank = (p * (n - 1)) / 100 in
    List.nth sorted rank

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    (counters t);
  Buffer.add_string buf "},\"histograms\":{";
  let hists =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      let sorted = List.sort compare h.rev_samples in
      let mean = if h.count = 0 then 0. else float_of_int h.sum /. float_of_int h.count in
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"min\":%d,\"max\":%d,\"mean\":%.1f,\"p50\":%d,\"p95\":%d,\"p99\":%d}"
           (json_escape name) h.count
           (pct sorted h.count 0)
           (pct sorted h.count 100)
           mean
           (pct sorted h.count 50)
           (pct sorted h.count 95)
           (pct sorted h.count 99)))
    hists;
  Buffer.add_string buf "},\"gauges\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    (gauges t);
  Buffer.add_string buf "}}";
  Buffer.contents buf
