let service_list = "wf.admin.list"

let service_status = "wf.admin.status"

let service_tasks = "wf.admin.tasks"

let service_cancel = "wf.admin.cancel"

let service_policy = "wf.admin.policy"

let service_history = "wf.admin.history"

let enc_status_opt = function
  | None -> Wire.string "none"
  | Some Wstate.Wf_running -> Wire.string "running"
  | Some (Wstate.Wf_done { output; objects }) ->
    Wire.string "done" ^ Wire.string output ^ Wire.string (Value.encode_bindings objects)
  | Some (Wstate.Wf_failed reason) -> Wire.string "failed" ^ Wire.string reason

let dec_status_opt d =
  match Wire.d_string d with
  | "none" -> None
  | "running" -> Some Wstate.Wf_running
  | "done" ->
    let output = Wire.d_string d in
    let objects = Value.decode_bindings (Wire.d_string d) in
    Some (Wstate.Wf_done { output; objects })
  | "failed" -> Some (Wstate.Wf_failed (Wire.d_string d))
  | tag -> raise (Wire.Malformed ("bad status tag " ^ tag))

let enc_result enc = function
  | Ok v -> Wire.bool true ^ enc v
  | Error e -> Wire.bool false ^ Wire.string e

let serve engine =
  let node = Engine.node engine in
  Node.serve node ~service:service_list (fun ~src:_ _body ->
      Wire.(list string) (Engine.instances engine));
  Node.serve node ~service:service_status (fun ~src:_ body ->
      let iid = Wire.(decode d_string) body in
      enc_status_opt (Engine.status engine iid));
  Node.serve node ~service:service_tasks (fun ~src:_ body ->
      let iid = Wire.(decode d_string) body in
      let states =
        List.map
          (fun (path, state) -> (path, Format.asprintf "%a" Wstate.pp_task_state state))
          (Engine.task_states engine iid)
      in
      Wire.(list (pair string string)) states);
  Node.serve node ~service:service_history (fun ~src:_ body ->
      let iid = Wire.(decode d_string) body in
      let rows =
        List.map (fun (at, kind, detail) -> ((at, kind), detail)) (Engine.history engine iid)
      in
      Wire.(list (pair (pair int string) string))
        (List.map (fun ((at, kind), detail) -> ((at, kind), detail)) rows));
  Node.serve node ~service:service_policy (fun ~src:_ body ->
      let iid = Wire.(decode d_string) body in
      let rows =
        List.map
          (fun b ->
            Engine.
              ( b.pb_path,
                (b.pb_attempts, (b.pb_backoff_remaining, b.pb_compensated)) ))
          (Engine.policy_budgets engine iid)
      in
      Wire.(list (pair string (pair int (pair int bool)))) rows);
  Node.serve node ~service:service_cancel (fun ~src:_ body ->
      let iid, reason = Wire.(decode (d_pair d_string d_string)) body in
      (* the cancel transaction is asynchronous; the remote caller gets
         an accepted/refused answer synchronously, the durable state
         change follows (poll status to confirm) *)
      let accepted = ref (Error "cancel not attempted") in
      Engine.cancel engine iid ~reason (fun r -> accepted := r);
      (match (!accepted, Engine.status engine iid) with
      | Error _, Some Wstate.Wf_running -> accepted := Ok () (* txn in flight *)
      | _ -> ());
      enc_result (fun () -> "") !accepted)

module Client = struct
  type t = { rpc : Rpc.t; src : string; engine_node : string }

  let create ~rpc ~src ~engine_node = { rpc; src; engine_node }

  let call t ~service ~body ~dec k =
    Rpc.call t.rpc ~src:t.src ~dst:t.engine_node ~service ~body (function
      | Ok reply -> (
        match dec reply with v -> k (Ok v) | exception Wire.Malformed m -> k (Error m))
      | Error e -> k (Error ("rpc: " ^ e)))

  let list_instances t k =
    call t ~service:service_list ~body:"" ~dec:Wire.(decode (d_list d_string)) k

  let status t ~iid k =
    call t ~service:service_status ~body:(Wire.string iid) ~dec:(Wire.decode dec_status_opt) k

  let task_states t ~iid k =
    call t ~service:service_tasks ~body:(Wire.string iid)
      ~dec:Wire.(decode (d_list (d_pair d_string d_string)))
      k

  let history t ~iid k =
    call t ~service:service_history ~body:(Wire.string iid)
      ~dec:
        Wire.(
          decode
            (d_list (fun d ->
                 let at, kind = d_pair d_int d_string d in
                 let detail = d_string d in
                 (at, kind, detail))))
      k

  let policy_budgets t ~iid k =
    call t ~service:service_policy ~body:(Wire.string iid)
      ~dec:
        Wire.(
          decode
            (d_list (fun d ->
                 let path, (attempts, (backoff, comp)) =
                   d_pair d_string (d_pair d_int (d_pair d_int d_bool)) d
                 in
                 { Engine.pb_path = path; pb_attempts = attempts;
                   pb_backoff_remaining = backoff; pb_compensated = comp })))
      k

  let cancel t ~iid ~reason k =
    let dec body =
      let d = Wire.decoder body in
      if Wire.d_bool d then Ok () else Error (Wire.d_string d)
    in
    call t ~service:service_cancel ~body:(Wire.(pair string string) (iid, reason)) ~dec (function
      | Ok (Ok ()) -> k (Ok ())
      | Ok (Error e) -> k (Error e)
      | Error e -> k (Error e))
end
