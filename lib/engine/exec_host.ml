type t = {
  rpc : Rpc.t;
  node : Node.t;
  registry : Registry.t;
  engine_node : string;
  sim : Sim.t;
  rng : Rng.t;
  mutable incarnation : int;
  mutable executions : int;
}

let report_retries = 20

let send_report t ~service (report : Wfmsg.report) =
  Rpc.call t.rpc ~src:(Node.id t.node) ~dst:t.engine_node ~service
    ~body:(Wfmsg.enc_report report) ~retries:report_retries (fun _ -> ())

(* Run the plan's steps in sequence over simulated time. Every step is
   fenced by the host incarnation: a crash orphans the plan. *)
let run_plan t (req : Wfmsg.exec_req) (plan : Registry.plan) =
  let epoch = t.incarnation in
  let alive () = t.incarnation = epoch && Node.up t.node in
  let report output objects =
    {
      Wfmsg.r_iid = req.x_iid;
      r_path = req.x_path;
      r_attempt = req.x_attempt;
      r_output = output;
      r_objects = objects;
    }
  in
  let rec steps = function
    | [] ->
      if alive () then
        send_report t
          ~service:(Wfmsg.service_done ~engine:t.engine_node)
          (report plan.Registry.finish.output plan.Registry.finish.objects)
    | Registry.Work span :: rest ->
      ignore (Sim.schedule t.sim ~delay:span (fun () -> if alive () then steps rest))
    | Registry.Emit_mark mark :: rest ->
      if alive () then begin
        send_report t
          ~service:(Wfmsg.service_mark ~engine:t.engine_node)
          (report mark.Registry.output mark.Registry.objects);
        steps rest
      end
  in
  steps plan.Registry.steps

let handle_exec t ~src:_ body =
  let req = Wfmsg.dec_exec body in
  match Registry.find t.registry ~code:req.x_code with
  | None | Some (Registry.Sub_workflow _) -> Wfmsg.reply_no_impl
  | Some (Registry.Fn fn) ->
    t.executions <- t.executions + 1;
    let ctx =
      {
        Registry.attempt = req.x_attempt;
        input_set = req.x_set;
        inputs = req.x_inputs;
        rng = Rng.split t.rng;
      }
    in
    (match fn ctx with
    | plan -> run_plan t req plan
    | exception exn ->
      (* implementation bug: surface as a system-level failure *)
      let output = "$impl-error:" ^ Printexc.to_string exn in
      send_report t ~service:(Wfmsg.service_done ~engine:t.engine_node)
        {
          Wfmsg.r_iid = req.x_iid;
          r_path = req.x_path;
          r_attempt = req.x_attempt;
          r_output = output;
          r_objects = [];
        });
    Wfmsg.reply_ok

let attach ~rpc ~node ~registry ~engine_node =
  let sim = Network.sim (Rpc.network rpc) in
  let t =
    {
      rpc;
      node;
      registry;
      engine_node;
      sim;
      rng = Rng.split (Sim.rng sim);
      incarnation = 0;
      executions = 0;
    }
  in
  Node.serve node ~service:(Wfmsg.service_exec ~engine:engine_node) (handle_exec t);
  Node.on_crash node (fun () -> t.incarnation <- t.incarnation + 1);
  t

let executions_total t = t.executions
