type path = string list

type task_state =
  | Waiting of { attempt : int }
  | Running of { attempt : int; set : string; started : Sim.time; deadline : Sim.time }
  | Done of {
      attempt : int;
      output : string;
      kind : Ast.output_kind;
      objects : (string * Value.obj) list;
    }
  | Failed of string

type chosen = { c_set : string; c_inputs : (string * Value.obj) list }

type status =
  | Wf_running
  | Wf_done of { output : string; objects : (string * Value.obj) list }
  | Wf_failed of string

type meta = {
  m_script : string;
  m_root : string;
  m_inputs : (string * Value.obj) list;
  m_status : status;
}

let path_to_string path = String.concat "/" path

let key_insts = "wf:insts"

(* O(1)-per-launch durable directory: one key per instance, valued with
   the engine's launch sequence number (recovery sorts by it to rebuild
   launch order). [key_insts] remains for the legacy whole-list schema
   (naive mode re-encodes the full list on every launch). *)
let dir_prefix = "wf:dir:"

let key_dir iid = dir_prefix ^ iid

let encode_dir_seq = string_of_int

let decode_dir_seq = int_of_string_opt

let key_meta iid = Printf.sprintf "wf:%s:meta" iid

let key_reconf iid = Printf.sprintf "wf:%s:reconf" iid

let key_task iid path = Printf.sprintf "wf:%s:t:%s" iid (path_to_string path)

let key_chosen iid path = Printf.sprintf "wf:%s:c:%s" iid (path_to_string path)

let key_marks iid path = Printf.sprintf "wf:%s:m:%s" iid (path_to_string path)

let key_repeat iid path = Printf.sprintf "wf:%s:r:%s" iid (path_to_string path)

let key_timer iid path ~set = Printf.sprintf "wf:%s:timer:%s:%s" iid (path_to_string path) set

let key_timer_arm iid path ~set =
  Printf.sprintf "wf:%s:timerarm:%s:%s" iid (path_to_string path) set

let key_backoff iid path = Printf.sprintf "wf:%s:b:%s" iid (path_to_string path)

let key_comp iid path = Printf.sprintf "wf:%s:comp:%s" iid (path_to_string path)

let key_history iid n = Printf.sprintf "wf:%s:h:%09d" iid n

let task_prefix iid = Printf.sprintf "wf:%s:" iid

(* --- codecs --- *)

let enc_objects objects = Value.encode_bindings objects

let dec_objects d = Value.decode_bindings (Wire.d_string d)

let enc_objects_field objects = Wire.string (enc_objects objects)

let kind_tag = function
  | Ast.Outcome -> 0
  | Ast.Abort_outcome -> 1
  | Ast.Repeat_outcome -> 2
  | Ast.Mark -> 3

let kind_of_tag = function
  | 0 -> Ast.Outcome
  | 1 -> Ast.Abort_outcome
  | 2 -> Ast.Repeat_outcome
  | 3 -> Ast.Mark
  | n -> raise (Wire.Malformed (Printf.sprintf "bad output kind tag %d" n))

let encode_task_state = function
  | Waiting { attempt } -> Wire.string "w" ^ Wire.int attempt
  | Running { attempt; set; started; deadline } ->
    Wire.string "x" ^ Wire.int attempt ^ Wire.string set ^ Wire.int started ^ Wire.int deadline
  | Done { attempt; output; kind; objects } ->
    Wire.string "d" ^ Wire.int attempt ^ Wire.string output ^ Wire.int (kind_tag kind)
    ^ enc_objects_field objects
  | Failed reason -> Wire.string "f" ^ Wire.string reason

let decode_task_state s =
  Wire.decode
    (fun d ->
      match Wire.d_string d with
      | "w" -> Waiting { attempt = Wire.d_int d }
      | "x" ->
        let attempt = Wire.d_int d in
        let set = Wire.d_string d in
        let started = Wire.d_int d in
        let deadline = Wire.d_int d in
        Running { attempt; set; started; deadline }
      | "d" ->
        let attempt = Wire.d_int d in
        let output = Wire.d_string d in
        let kind = kind_of_tag (Wire.d_int d) in
        let objects = dec_objects d in
        Done { attempt; output; kind; objects }
      | "f" -> Failed (Wire.d_string d)
      | tag -> raise (Wire.Malformed ("bad task state tag " ^ tag)))
    s

let encode_chosen { c_set; c_inputs } = Wire.string c_set ^ enc_objects_field c_inputs

let decode_chosen s =
  Wire.decode
    (fun d ->
      let c_set = Wire.d_string d in
      let c_inputs = dec_objects d in
      { c_set; c_inputs })
    s

let enc_status = function
  | Wf_running -> Wire.string "r"
  | Wf_done { output; objects } -> Wire.string "d" ^ Wire.string output ^ enc_objects_field objects
  | Wf_failed reason -> Wire.string "f" ^ Wire.string reason

let dec_status d =
  match Wire.d_string d with
  | "r" -> Wf_running
  | "d" ->
    let output = Wire.d_string d in
    let objects = dec_objects d in
    Wf_done { output; objects }
  | "f" -> Wf_failed (Wire.d_string d)
  | tag -> raise (Wire.Malformed ("bad status tag " ^ tag))

let encode_meta { m_script; m_root; m_inputs; m_status } =
  Wire.string m_script ^ Wire.string m_root ^ enc_objects_field m_inputs ^ enc_status m_status

let decode_meta s =
  Wire.decode
    (fun d ->
      let m_script = Wire.d_string d in
      let m_root = Wire.d_string d in
      let m_inputs = dec_objects d in
      let m_status = dec_status d in
      { m_script; m_root; m_inputs; m_status })
    s

let encode_marks marks =
  Wire.list (fun (output, objects) -> Wire.string output ^ enc_objects_field objects) marks

let decode_marks s =
  Wire.decode
    (Wire.d_list (fun d ->
         let output = Wire.d_string d in
         let objects = dec_objects d in
         (output, objects)))
    s

let encode_repeat (output, objects) = Wire.string output ^ enc_objects_field objects

let decode_repeat s =
  Wire.decode
    (fun d ->
      let output = Wire.d_string d in
      let objects = dec_objects d in
      (output, objects))
    s

(* a pending policy-backoff: which attempt waits, and when it fires *)
let encode_backoff (attempt, fire_at) = Wire.int attempt ^ Wire.int fire_at

let decode_backoff s =
  Wire.decode
    (fun d ->
      let attempt = Wire.d_int d in
      let fire_at = Wire.d_int d in
      (attempt, fire_at))
    s

let encode_history (at, kind, detail) = Wire.int at ^ Wire.string kind ^ Wire.string detail

let decode_history s =
  Wire.decode
    (fun d ->
      let at = Wire.d_int d in
      let kind = Wire.d_string d in
      let detail = Wire.d_string d in
      (at, kind, detail))
    s

let encode_insts = Wire.(list string)

let decode_insts = Wire.(decode (d_list d_string))

let pp_task_state ppf = function
  | Waiting { attempt } -> Format.fprintf ppf "waiting(attempt %d)" attempt
  | Running { attempt; set; _ } -> Format.fprintf ppf "running(attempt %d, input %s)" attempt set
  | Done { output; kind; _ } ->
    Format.fprintf ppf "done(%s %s)" (Ast.output_kind_to_string kind) output
  | Failed reason -> Format.fprintf ppf "failed(%s)" reason

let pp_status ppf = function
  | Wf_running -> Format.pp_print_string ppf "running"
  | Wf_done { output; _ } -> Format.fprintf ppf "done(%s)" output
  | Wf_failed reason -> Format.fprintf ppf "failed(%s)" reason
