(* The execution service, layered:

   - Sched    — pure scheduling core (readiness, selection, Fig 3 rules)
   - Instate  — per-instance mirrors + action -> writes translation
   - Dispatch — effects: transactions, RPC dispatch, committed reads
   - Event/Metrics/Trace — typed observability spine (Sim.events)

   This module orchestrates: it runs the evaluation pump, owns epochs
   and watchdogs, and wires crash/recovery. *)

type config = {
  default_deadline : Sim.time;
  dispatch_rpc_retries : int;
  system_max_attempts : int;
  default_timeout : Sim.time;
  dispatch_overhead : Sim.time;
  batch_persists : bool;
  incremental : bool;
  retain_concluded : bool;
  trace : bool;
}

(* The config-seeded default recovery policy: the single source of truth
   for what a task with no [recovery { ... }] section gets. The config
   fields [default_deadline], [dispatch_rpc_retries] and
   [system_max_attempts] are aliases that seed this record once at
   engine creation; everything at dispatch/retry time reads the policy,
   never the config. *)
type default_policy = {
  dp_deadline : Sim.time;  (* per-attempt watchdog deadline *)
  dp_rpc_retries : int;  (* RPC send budget per dispatch *)
  dp_max_attempts : int;  (* total execution attempts per task *)
}

let default_config =
  {
    default_deadline = Sim.sec 30;
    dispatch_rpc_retries = 8;
    system_max_attempts = 10;
    default_timeout = Sim.sec 10;
    dispatch_overhead = 0;
    batch_persists = true;
    incremental = true;
    retain_concluded = true;
    trace = true;
  }

type t = {
  sim : Sim.t;
  rpc : Rpc.t;
  node : Node.t;
  disp : Dispatch.t;
  reg : Registry.t;
  config : config;
  default_policy : default_policy;
  tracer : Trace.t;
  metrics : Metrics.t;
  rng : Rng.t;  (* split once at creation to keep downstream seeds stable *)
  jitter_salt : string;
      (* engine-stable, seed-derived salt for backoff jitter: drawn once
         at creation so the spread is a pure function of (seed, engine,
         iid, path, attempt) — never of runtime interleaving *)
  insts : (string, Instate.t) Hashtbl.t;
  mutable inst_rev : string list;  (* launch order, newest first (O(1) append) *)
  compiled : (string, Schema.task) Hashtbl.t;
      (* schema cache keyed by root ^ NUL ^ script: a capacity workload
         launching the same script 100k times compiles it once and all
         instances share one schema tree *)
  mutable seq : int;
  mutable epoch : int;
  mutable orphans : Instate.t list;
      (* running instances held in memory when the node crashed; any
         whose launch transaction presumed-aborted are re-persisted
         after recovery (an accepted launch must survive) *)
}

let node_id t = Node.id t.node
let node t = t.node
let default_policy t = t.default_policy
let rpc t = t.rpc
let trace t = t.tracer
let metrics t = t.metrics
let registry t = t.reg
let pkey = Wstate.path_to_string

(* every engine event carries the engine's node id as its source, so
   observers can keep the streams of co-hosted engines apart *)
let emit t ev = Sim.emit t.sim ~src:(Node.id t.node) ev

(* --- schema navigation (through dynamically bound sub-workflows) --- *)

let effective_body t task = Registry.effective t.reg task
let iview t inst = Instate.view inst ~effective:(effective_body t)
let find_task_node t inst path = Instate.find_node inst ~effective:(effective_body t) path
let task_live t inst path = Sched.task_live (iview t inst) path

(* --- spans from the policy, implementation kvs + config --- *)

(* A declared [timeout N then ...] clause is the per-attempt watchdog
   deadline; otherwise the legacy "deadline" kv, then the config-seeded
   default policy. *)
let deadline_span t task =
  match task.Schema.policy.Schema.p_timeout_ms with
  | Some n -> Sim.ms n
  | None -> (
    match Sched.impl_ms task ~key:"deadline" with
    | Some n -> Sim.ms n
    | None -> t.default_policy.dp_deadline)

(* The task's compiled policy resolved against the default policy;
   [primary] is the registry-effective implementation code. *)
let task_rpolicy t task ~primary =
  Sched.resolve_policy task ~primary ~default_max_attempts:t.default_policy.dp_max_attempts

let rpolicy_of t task =
  let primary = match effective_body t task with Sched.E_fn code -> code | _ -> "" in
  task_rpolicy t task ~primary

let timeout_span t task =
  match Sched.impl_ms task ~key:"timeout" with
  | Some n -> Sim.ms n
  | None -> t.config.default_timeout

let persist t writes k = Dispatch.persist t.disp writes k

(* --- compensation (declared [compensate <task>] on abort) --- *)

(* An abort-outcome completion of a task whose policy names a sibling
   compensation handler, not yet compensated: resolve the handler to a
   dispatchable code. The durable guard row and history row ride in the
   same transaction as the completion (exactly-once record); the
   handler's execution itself is a one-shot dispatch after commit. *)
let compensation_of t inst action =
  match action with
  | Sched.Complete { a_path; a_kind = Ast.Abort_outcome; _ } -> (
    match find_task_node t inst a_path with
    | Some task -> (
      match task.Schema.policy.Schema.p_compensate with
      | Some target when not (Instate.is_compensated inst a_path) -> (
        let tpath = Sched.parent_path a_path @ [ target ] in
        match find_task_node t inst tpath with
        | Some handler -> (
          match effective_body t handler with
          | Sched.E_fn code -> Some (a_path, target, tpath, handler, code)
          | Sched.E_compound _ | Sched.E_missing _ -> None)
        | None -> None)
      | _ -> None)
    | None -> None)
  | _ -> None

let compensation_writes t inst action =
  match compensation_of t inst action with
  | None -> []
  | Some (a_path, target, _, _, _) ->
    [
      (Wstate.key_comp inst.Instate.iid a_path, Some "1");
      Instate.history_write inst ~now:(Sim.now t.sim) ~kind:"policy-compensate"
        ~detail:(pkey a_path ^ " -> " ^ target);
    ]

(* Post-commit side of the same decision: mark the mirror, announce,
   fire the handler. The handler runs with the aborted task's chosen
   inputs; its report arrives for a non-Running path and is ignored
   (at-most-once execution, exactly-once durable record). *)
let run_compensation t inst compensation =
  match compensation with
  | None -> ()
  | Some (a_path, target, tpath, handler, code) ->
    Instate.mark_compensated inst a_path;
    emit t (Event.Policy_compensated { path = pkey a_path; task = target });
    let inputs =
      match Instate.get_chosen inst a_path with Some c -> c.Wstate.c_inputs | None -> []
    in
    let host =
      match Ast.impl_location handler.Schema.impl with Some n -> n | None -> node_id t
    in
    Dispatch.send_exec t.disp ~host ~retries:t.default_policy.dp_rpc_retries
      {
        Wfmsg.x_iid = inst.Instate.iid;
        x_path = tpath;
        x_attempt = 1;
        x_code = code;
        x_set = "compensate";
        x_inputs = inputs;
      }
      (fun _ -> ())

(* --- applying scheduler actions --- *)

(* Mirror update + the matching typed event, per action, in pass order
   (the trace subscriber turns the events into the legacy log). *)
let apply_and_announce t inst action =
  let now = Sim.now t.sim in
  let duration =
    match action with
    | Sched.Complete { a_path; _ } -> (
      match Instate.get_state inst a_path with
      | Some (Wstate.Running { started; _ }) -> now - started
      | _ -> 0)
    | _ -> 0
  in
  (* decided against the pre-commit mirror, fired after the mirror
     update below (the guard row committed with this action) *)
  let compensation = compensation_of t inst action in
  Instate.apply_action_mirror inst ~now ~deadline_of:(deadline_span t) action;
  run_compensation t inst compensation;
  match action with
  | Sched.Start _ | Sched.Arm_timer _ -> ()
  | Sched.Fire_mark { a_path; a_name; _ } ->
    emit t (Event.Task_marked { path = pkey a_path; mark = a_name })
  | Sched.Do_repeat { a_path; a_name; a_attempt; _ } ->
    emit t (Event.Task_repeated { path = pkey a_path; output = a_name; attempt = a_attempt })
  | Sched.Complete { a_path; a_name; a_kind; _ } ->
    (* a compound task's "duration" is its whole subtree's span; keep it
       out of the basic-task histogram *)
    let scope =
      match find_task_node t inst a_path with
      | Some task -> ( match effective_body t task with Sched.E_compound _ -> true | _ -> false)
      | None -> false
    in
    emit t
      (Event.Task_completed
         {
           path = pkey a_path;
           output = a_name;
           aborted = a_kind = Ast.Abort_outcome;
           duration;
           scope;
         })
  | Sched.Fail_task { a_path; a_reason } ->
    emit t (Event.Task_failed { path = pkey a_path; reason = a_reason })

let action_payload t inst action =
  Instate.action_writes inst ~now:(Sim.now t.sim) ~deadline_of:(deadline_span t) action
  @ Instate.action_history inst ~now:(Sim.now t.sim) action
  @ compensation_writes t inst action

(* --- the evaluation pump, dispatch, watchdog, failure handling --- *)

let instance_index t inst =
  match inst.Instate.index with
  | Some idx -> idx
  | None ->
    let idx = Sched.build_index ~effective:(effective_body t) inst.Instate.schema in
    inst.Instate.index <- Some idx;
    idx

(* the store path one effectful action mutates — what the next pass's
   incremental scan must treat as dirty *)
let action_path = function
  | Sched.Start { a_path; _ }
  | Sched.Fire_mark { a_path; _ }
  | Sched.Do_repeat { a_path; _ }
  | Sched.Complete { a_path; _ }
  | Sched.Fail_task { a_path; _ }
  | Sched.Arm_timer { a_path; _ } -> a_path

(* [paths] scopes the next pass to the records just changed (push-based
   propagation through the instance's reverse-dependency index); [None]
   forces a full pass — launch, recovery, reconfiguration. In naive
   (pre-refactor) mode every pass is a full rescan and [paths] is
   irrelevant. *)
let rec mark_dirty ?paths t inst =
  (if t.config.incremental then
     match paths with
     | None -> inst.Instate.pending <- Sched.All
     | Some ps -> inst.Instate.pending <- Sched.add_dirty inst.Instate.pending ps);
  inst.Instate.dirty <- true;
  if not inst.Instate.inflight then begin
    inst.Instate.inflight <- true;
    let epoch = t.epoch in
    ignore
      (Sim.schedule t.sim ~delay:0 (fun () ->
           if t.epoch = epoch && Node.up t.node then pump t inst
           else inst.Instate.inflight <- false))
  end

and pump t inst =
  inst.Instate.dirty <- false;
  if inst.Instate.status <> Wstate.Wf_running then inst.Instate.inflight <- false
  else begin
    let actions =
      if t.config.incremental then begin
        let dirty = inst.Instate.pending in
        inst.Instate.pending <- Sched.no_dirty;
        Sched.scan_from (instance_index t inst) (iview t inst) ~root:inst.Instate.schema ~dirty
      end
      else Sched.scan (iview t inst) ~root:inst.Instate.schema
    in
    let actions =
      List.filter
        (function
          | Sched.Arm_timer { a_path; a_set; a_attempt; _ } ->
            Hashtbl.find_opt inst.Instate.timers_armed (pkey a_path ^ "|" ^ a_set)
            <> Some a_attempt
          | _ -> true)
        actions
    in
    List.iter (arm_timer_action t inst) actions;
    let effectful =
      Sched.prioritise (List.filter (function Sched.Arm_timer _ -> false | _ -> true) actions)
    in
    if effectful = [] then begin
      inst.Instate.inflight <- false;
      finalize t inst;
      if inst.Instate.dirty then mark_dirty t inst
    end
    else begin
      let writes = List.concat_map (action_payload t inst) effectful in
      persist t writes (fun () ->
          List.iter (apply_and_announce t inst) effectful;
          List.iter (action_side_effects t inst) effectful;
          inst.Instate.inflight <- false;
          finalize t inst;
          mark_dirty ~paths:(List.map action_path effectful) t inst)
    end
  end

and arm_timer_action t inst = function
  | Sched.Arm_timer { a_path; a_set; a_task; a_attempt } ->
    let key = pkey a_path ^ "|" ^ a_set in
    Hashtbl.replace inst.Instate.timers_armed key a_attempt;
    let epoch = t.epoch in
    let fire () =
      if
        t.epoch = epoch && Node.up t.node
        && Sched.waiting_attempt (iview t inst) a_path = Some a_attempt
      then
        persist t
          [ (Wstate.key_timer inst.Instate.iid a_path ~set:a_set, Some "1") ]
          (fun () ->
            Hashtbl.replace inst.Instate.timers key ();
            emit t (Event.Timer_fired { path = pkey a_path; set = a_set });
            mark_dirty ~paths:[ a_path ] t inst)
    in
    (* the deadline persists across crashes: recovery resumes the
       remaining wait rather than restarting the whole timeout *)
    (match Hashtbl.find_opt inst.Instate.timer_arms key with
    | Some deadline -> ignore (Sim.schedule t.sim ~delay:(max 0 (deadline - Sim.now t.sim)) fire)
    | None ->
      let deadline = Sim.now t.sim + timeout_span t a_task in
      persist t
        [ (Wstate.key_timer_arm inst.Instate.iid a_path ~set:a_set, Some (string_of_int deadline)) ]
        (fun () ->
          Hashtbl.replace inst.Instate.timer_arms key deadline;
          ignore (Sim.schedule t.sim ~delay:(max 0 (deadline - Sim.now t.sim)) fire)))
  | Sched.Start _ | Sched.Fire_mark _ | Sched.Do_repeat _ | Sched.Complete _ | Sched.Fail_task _
    -> ()

and action_side_effects t inst = function
  | Sched.Start { a_path; a_task; a_set; a_inputs; a_attempt } -> (
    match effective_body t a_task with
    | Sched.E_compound _ -> emit t (Event.Scope_opened { path = pkey a_path })
    | Sched.E_fn code ->
      emit t (Event.Task_started { path = pkey a_path; attempt = a_attempt });
      dispatch t inst ~path:a_path ~task:a_task ~code ~set:a_set ~inputs:a_inputs
        ~attempt:a_attempt
    | Sched.E_missing reason -> fail_policy t inst ~path:a_path ~task:a_task ~reason)
  | Sched.Arm_timer _ | Sched.Fire_mark _ | Sched.Do_repeat _ | Sched.Complete _
  | Sched.Fail_task _ -> ()

and dispatch t inst ~path ~task ~code ~set ~inputs ~attempt =
  (* [code] is the registry-effective primary; a declared policy maps
     the durable attempt counter onto its ranked code list, so a
     recovered engine redispatches the same alternative it was on *)
  let rp = task_rpolicy t task ~primary:code in
  let code = Sched.policy_code rp ~attempt in
  let host = match Ast.impl_location task.Schema.impl with Some n -> n | None -> node_id t in
  let epoch = t.epoch in
  Dispatch.send_exec t.disp ~host ~retries:t.default_policy.dp_rpc_retries
    { Wfmsg.x_iid = inst.Instate.iid; x_path = path; x_attempt = attempt; x_code = code;
      x_set = set; x_inputs = inputs }
    (function
      | Ok reply when reply = Wfmsg.reply_ok -> ()
      | Ok _ ->
        if t.epoch = epoch then
          fail_policy t inst ~path ~task ~reason:("host has no implementation for " ^ code)
      | Error _ -> if t.epoch = epoch then retry_task t inst ~path ~task);
  schedule_watchdog t inst ~path ~task ~attempt

and schedule_watchdog ?delay t inst ~path ~task ~attempt =
  let epoch = t.epoch in
  let span = match delay with Some d -> d | None -> deadline_span t task + Sim.ms 1 in
  let check () =
    if t.epoch = epoch && Node.up t.node && task_live t inst path then
      match Instate.get_state inst path with
      | Some (Wstate.Running { attempt = a; _ }) when a = attempt ->
        emit t (Event.Watchdog_fired { path = pkey path });
        handle_expiry t inst ~path ~task
      | _ -> ()
  in
  ignore (Sim.schedule t.sim ~delay:span check)

(* The watchdog tripped: a declared [timeout ... then ...] clause decides
   what happens; without one (or without a declared policy at all) the
   legacy path retries against the attempt budget. *)
and handle_expiry t inst ~path ~task =
  let rp = rpolicy_of t task in
  match rp.Sched.rp_timeout_ms with
  | None -> retry_task t inst ~path ~task
  | Some _ -> (
    match rp.Sched.rp_on_timeout with
    | Ast.Ta_abort -> fail_policy t inst ~path ~task ~reason:"recovery timeout"
    | Ast.Ta_alternative | Ast.Ta_substitute _ -> (
      match Instate.get_state inst path with
      | Some (Wstate.Running { attempt; set; _ }) -> (
        let target =
          match rp.Sched.rp_on_timeout with
          | Ast.Ta_substitute _ -> Sched.policy_substitute_start rp
          | Ast.Ta_alternative | Ast.Ta_abort ->
            let next = Sched.policy_next_band_start rp ~attempt in
            if next <= rp.Sched.rp_base_total then Some next else None
        in
        match target with
        | Some target when target > attempt ->
          jump_to_attempt t inst ~path ~task ~set ~rp ~attempt:target
        | Some _ ->
          (* already in the target band (e.g. the substitute itself timed
             out): a bounded retry within it, not a forward jump *)
          retry_task t inst ~path ~task
        | None -> fail_policy t inst ~path ~task ~reason:"recovery alternatives exhausted")
      | _ -> ()))

(* Timeout-driven substitution: skip the attempt counter to the first
   attempt of the target code's band. The bump is persisted like any
   retry, so the substitution itself survives a crash — recovery derives
   the active code from the counter alone. *)
and jump_to_attempt t inst ~path ~task ~set ~rp ~attempt =
  let now = Sim.now t.sim in
  let code = Sched.policy_code rp ~attempt in
  let running =
    Wstate.Running { attempt; set; started = now; deadline = now + deadline_span t task }
  in
  let inputs =
    match Instate.get_chosen inst path with Some c -> c.Wstate.c_inputs | None -> []
  in
  persist t
    [
      (Wstate.key_task inst.Instate.iid path, Some (Wstate.encode_task_state running));
      Instate.history_write inst ~now ~kind:"policy-substitute"
        ~detail:(pkey path ^ " -> " ^ code ^ " (timeout)");
    ]
    (fun () ->
      Hashtbl.replace inst.Instate.states (pkey path) running;
      emit t (Event.Task_retried { path = pkey path; attempt });
      emit t (Event.Policy_substituted { path = pkey path; code });
      match effective_body t task with
      | Sched.E_fn primary -> dispatch t inst ~path ~task ~code:primary ~set ~inputs ~attempt
      | Sched.E_compound _ | Sched.E_missing _ -> mark_dirty ~paths:[ path ] t inst)

and retry_task t inst ~path ~task =
  if not (task_live t inst path) then ()
  else
    match Instate.get_state inst path with
    | Some (Wstate.Running { attempt; set; _ }) ->
      let rp = rpolicy_of t task in
      if Sched.policy_exhausted rp ~attempt then
        fail_policy t inst ~path ~task ~reason:(Printf.sprintf "gave up after %d attempts" attempt)
      else begin
        let now = Sim.now t.sim in
        let next = attempt + 1 in
        let delay =
          Sim.ms
            (Sched.policy_backoff_jittered_ms rp ~salt:t.jitter_salt
               ~iid:inst.Instate.iid ~path ~attempt:next)
        in
        let fire_at = now + delay in
        let running =
          Wstate.Running
            { attempt = next; set; started = now; deadline = fire_at + deadline_span t task }
        in
        let inputs =
          match Instate.get_chosen inst path with Some c -> c.Wstate.c_inputs | None -> []
        in
        (* a failure-driven advance into the next band switches code *)
        let substituted =
          rp.Sched.rp_declared
          && Sched.policy_band rp ~attempt:next > Sched.policy_band rp ~attempt
        in
        let writes =
          ((Wstate.key_task inst.Instate.iid path, Some (Wstate.encode_task_state running))
          ::
          (if delay > 0 then
             (* same transaction as the attempt bump: a crash mid-backoff
                recovers the remaining budget and the remaining wait *)
             [
               ( Wstate.key_backoff inst.Instate.iid path,
                 Some (Wstate.encode_backoff (next, fire_at)) );
             ]
           else []))
          @ (if rp.Sched.rp_declared then
               [
                 Instate.history_write inst ~now ~kind:"policy-retry"
                   ~detail:
                     (Printf.sprintf "%s (attempt %d, backoff %dms)" (pkey path) next
                        (delay / Sim.ms 1));
               ]
             else [])
          @
          if substituted then
            [
              Instate.history_write inst ~now ~kind:"policy-substitute"
                ~detail:(pkey path ^ " -> " ^ Sched.policy_code rp ~attempt:next ^ " (failure)");
            ]
          else []
        in
        persist t writes (fun () ->
            Hashtbl.replace inst.Instate.states (pkey path) running;
            if delay > 0 then Instate.set_backoff inst path ~attempt:next ~fire_at;
            emit t (Event.Task_retried { path = pkey path; attempt = next });
            if rp.Sched.rp_declared then
              emit t
                (Event.Policy_retry
                   { path = pkey path; attempt = next; delay_ms = delay / Sim.ms 1 });
            if substituted then
              emit t
                (Event.Policy_substituted
                   { path = pkey path; code = Sched.policy_code rp ~attempt:next });
            match effective_body t task with
            | Sched.E_fn code ->
              if delay = 0 then dispatch t inst ~path ~task ~code ~set ~inputs ~attempt:next
              else begin
                let epoch = t.epoch in
                ignore
                  (Sim.schedule t.sim ~delay (fun () ->
                       if t.epoch = epoch && Node.up t.node && task_live t inst path then
                         match Instate.get_state inst path with
                         | Some (Wstate.Running { attempt = a; _ }) when a = next ->
                           dispatch t inst ~path ~task ~code ~set ~inputs ~attempt:next
                         | _ -> ()))
              end
            | Sched.E_compound _ | Sched.E_missing _ -> mark_dirty ~paths:[ path ] t inst)
      end
    | _ -> ()

and fail_policy t inst ~path ~task ~reason =
  let attempt = Sched.running_attempt (iview t inst) path in
  let action = Sched.fail_action task ~path ~attempt ~reason in
  persist t (action_payload t inst action) (fun () ->
      apply_and_announce t inst action;
      mark_dirty ~paths:[ action_path action ] t inst)

and finalize t inst =
  if inst.Instate.status = Wstate.Wf_running && not inst.Instate.concluding then begin
    let rpath = [ inst.Instate.schema.Schema.name ] in
    let conclude status =
      inst.Instate.concluding <- true;
      let meta = Instate.meta inst ~status in
      persist t
        [
          (Wstate.key_meta inst.Instate.iid, Some (Wstate.encode_meta meta));
          Instate.history_write inst ~now:(Sim.now t.sim) ~kind:"instance"
            ~detail:(Format.asprintf "%a" Wstate.pp_status status);
        ]
        (fun () ->
          inst.Instate.status <- status;
          emit t
            (Event.Wf_concluded
               {
                 iid = inst.Instate.iid;
                 status = Format.asprintf "%a" Wstate.pp_status status;
               });
          let callbacks = inst.Instate.callbacks in
          inst.Instate.callbacks <- [];
          List.iter (fun cb -> cb status) callbacks;
          (* bound resident memory: pump-only state always goes; with
             [retain_concluded = false] the whole mirror goes too *)
          if t.config.retain_concluded then Instate.trim_concluded inst
          else Instate.release inst)
    in
    match Instate.get_state inst rpath with
    | Some (Wstate.Done { output; objects; _ }) -> conclude (Wstate.Wf_done { output; objects })
    | Some (Wstate.Failed reason) -> conclude (Wstate.Wf_failed reason)
    | None | Some (Wstate.Waiting _ | Wstate.Running _) -> ()
  end

(* --- reports from task hosts --- *)

let apply_one t inst action =
  persist t (action_payload t inst action) (fun () ->
      apply_and_announce t inst action;
      mark_dirty ~paths:[ action_path action ] t inst)

let process_report t inst ~task ~attempt ~is_mark (r : Wfmsg.report) =
  let path = r.Wfmsg.r_path in
  match
    Sched.report_decision (iview t inst) ~task ~path ~attempt ~is_mark ~output:r.Wfmsg.r_output
      ~objects:r.Wfmsg.r_objects
  with
  | Sched.D_retry -> retry_task t inst ~path ~task
  | Sched.D_auto_restart ->
    emit t (Event.Task_auto_restarted { path = pkey path });
    retry_task t inst ~path ~task
  | Sched.D_fail reason -> fail_policy t inst ~path ~task ~reason
  | Sched.D_ignore -> ()
  | Sched.D_apply (Sched.Complete { a_name; _ } as action) ->
    (* counted when the implementation's final outcome arrives, before
       the completion is made durable (historical accounting) *)
    emit t (Event.Impl_completed { path = pkey path; output = a_name });
    apply_one t inst action
  | Sched.D_apply action -> apply_one t inst action

let handle_report t ~is_mark ~src:_ body =
  let r = Wfmsg.dec_report body in
  (match Hashtbl.find_opt t.insts r.Wfmsg.r_iid with
  | None -> ()
  | Some inst when inst.Instate.status <> Wstate.Wf_running -> ()
  | Some inst when not (task_live t inst r.Wfmsg.r_path) -> ()
  | Some inst -> (
    match (Instate.get_state inst r.Wfmsg.r_path, find_task_node t inst r.Wfmsg.r_path) with
    | Some (Wstate.Running { attempt; _ }), Some task ->
      process_report t inst ~task ~attempt ~is_mark r
    | _ -> ()));
  "ack"

(* --- recovery --- *)

let rebuild_instance t iid =
  let read key = Dispatch.committed_value t.disp ~key in
  match read (Wstate.key_meta iid) with
  | None -> ()
  | Some meta_raw -> (
    let meta = Wstate.decode_meta meta_raw in
    let script_text =
      match read (Wstate.key_reconf iid) with Some s -> s | None -> meta.Wstate.m_script
    in
    match Frontend.load script_text with
    | Error _ -> emit t (Event.Recovery_error { detail = iid ^ ": stored script no longer parses" })
    | Ok ast -> (
      match Schema.of_script ast ~root:meta.Wstate.m_root with
      | Error msg -> emit t (Event.Recovery_error { detail = Printf.sprintf "%s: %s" iid msg })
      | Ok schema ->
        let inst =
          Instate.create ~iid ~script_text ~schema ~status:meta.Wstate.m_status
            ~external_inputs:meta.Wstate.m_inputs
        in
        Instate.load_committed inst ~read ~keys:(Dispatch.committed_keys t.disp);
        Hashtbl.replace t.insts iid inst;
        (* honour persisted deadlines: executions orphaned by the crash
           are re-dispatched as soon as they expire *)
        List.iter
          (fun (path, task, attempt, deadline) ->
            let remaining = max 0 (deadline - Sim.now t.sim) + Sim.ms 1 in
            schedule_watchdog ~delay:remaining t inst ~path ~task ~attempt)
          (Instate.running_leaves inst ~effective:(effective_body t));
        (* pending policy backoffs: resume the remaining wait against the
           persisted attempt counter, then redispatch that same attempt —
           the budget carries over, it is never reset *)
        List.iter
          (fun (path, attempt, fire_at) ->
            match (find_task_node t inst path, Instate.get_state inst path) with
            | Some task, Some (Wstate.Running { attempt = a; set; _ }) when a = attempt -> (
              match effective_body t task with
              | Sched.E_fn code ->
                let inputs =
                  match Instate.get_chosen inst path with
                  | Some c -> c.Wstate.c_inputs
                  | None -> []
                in
                let epoch = t.epoch in
                ignore
                  (Sim.schedule t.sim ~delay:(max 0 (fire_at - Sim.now t.sim)) (fun () ->
                       if t.epoch = epoch && Node.up t.node && task_live t inst path then
                         match Instate.get_state inst path with
                         | Some (Wstate.Running { attempt = a2; _ }) when a2 = attempt ->
                           dispatch t inst ~path ~task ~code ~set ~inputs ~attempt
                         | _ -> ()))
              | Sched.E_compound _ | Sched.E_missing _ -> ())
            | _ -> ())
          (Instate.pending_backoffs inst);
        if inst.Instate.status = Wstate.Wf_running then mark_dirty t inst))

let dir_iid_of_key key =
  String.sub key (String.length Wstate.dir_prefix) (String.length key - String.length Wstate.dir_prefix)

(* A commit finished by the recovery termination protocol can add an
   instance to the store after [recover] already scanned it: reconcile
   whenever such a commit lands. Incremental mode reconciles exactly the
   iids named by the commit's directory rows — O(writes), where the
   legacy roster list forces an O(instances) decode per commit. *)
let reconcile_one t iid =
  if not (Hashtbl.mem t.insts iid) then begin
    rebuild_instance t iid;
    if Hashtbl.mem t.insts iid && not (List.mem iid t.inst_rev) then
      t.inst_rev <- iid :: t.inst_rev
  end

let reconcile_roster t =
  match Dispatch.committed_value t.disp ~key:Wstate.key_insts with
  | None -> ()
  | Some raw -> List.iter (reconcile_one t) (Wstate.decode_insts raw)

(* Re-persist an instance whose launch transaction was lost to a crash
   before its decision. A committed-but-unapplied launch is instead
   picked up by [reconcile] once the termination protocol applies it, so
   wait one poll period before concluding the launch is really gone.
   The orphan stays in [t.orphans] until this attempt actually runs —
   another crash before the timer fires must not lose it (each recovery
   re-schedules the survivors). *)
let relaunch_orphan t (orphan : Instate.t) =
  let epoch = t.epoch in
  let retry_delay = Sim.ms 120 in
  let forget () =
    t.orphans <- List.filter (fun (o : Instate.t) -> o.Instate.iid <> orphan.Instate.iid) t.orphans
  in
  let attempt () =
    if t.epoch = epoch && Node.up t.node then
      if
        Hashtbl.mem t.insts orphan.Instate.iid
        || Dispatch.committed_value t.disp ~key:(Wstate.key_meta orphan.Instate.iid) <> None
      then forget () (* became durable after all; reconcile covers it *)
      else begin
        forget ();
        let inst = Instate.reset orphan in
        let meta = Instate.meta inst ~status:Wstate.Wf_running in
        if not (List.mem inst.Instate.iid t.inst_rev) then
          t.inst_rev <- inst.Instate.iid :: t.inst_rev;
        Hashtbl.replace t.insts inst.Instate.iid inst;
        emit t (Event.Wf_relaunched { iid = inst.Instate.iid });
        let dir_write =
          if t.config.incremental then begin
            t.seq <- t.seq + 1;
            (Wstate.key_dir inst.Instate.iid, Some (Wstate.encode_dir_seq t.seq))
          end
          else (Wstate.key_insts, Some (Wstate.encode_insts (List.rev t.inst_rev)))
        in
        persist t
          [ dir_write; (Wstate.key_meta inst.Instate.iid, Some (Wstate.encode_meta meta)) ]
          (fun () -> mark_dirty t inst)
      end
  in
  ignore (Sim.schedule t.sim ~delay:retry_delay attempt)

let recover t () =
  t.epoch <- t.epoch + 1;
  Hashtbl.reset t.insts;
  (if t.config.incremental then begin
     (* per-instance directory rows carry the launch sequence number so
        the replay order matches the original launch order *)
     let entries =
       List.filter_map
         (fun key ->
           if String.starts_with ~prefix:Wstate.dir_prefix key then
             Option.bind (Dispatch.committed_value t.disp ~key) (fun raw ->
                 Option.map (fun seq -> (seq, dir_iid_of_key key)) (Wstate.decode_dir_seq raw))
           else None)
         (Dispatch.committed_keys t.disp)
     in
     let ordered = List.map snd (List.sort compare entries) in
     t.inst_rev <- List.rev ordered;
     List.iter (rebuild_instance t) ordered
   end
   else
     match Dispatch.committed_value t.disp ~key:Wstate.key_insts with
     | None -> t.inst_rev <- []
     | Some raw ->
       let iids = Wstate.decode_insts raw in
       t.inst_rev <- List.rev iids;
       List.iter (rebuild_instance t) iids);
  t.orphans <- List.filter (fun (o : Instate.t) -> not (Hashtbl.mem t.insts o.Instate.iid)) t.orphans;
  List.iter (relaunch_orphan t) t.orphans;
  emit t (Event.Recovery_replayed { instances = List.length t.inst_rev })

(* --- construction and public API --- *)

let attach_host_on t node =
  Exec_host.attach ~rpc:t.rpc ~node ~registry:t.reg ~engine_node:(node_id t)

let create ?(config = default_config) ~rpc ~node ~mgr ~participant ~registry:reg () =
  let sim = Network.sim (Rpc.network rpc) in
  let tracer = Trace.create () in
  let metrics = Metrics.create () in
  (* the legacy trace is now a bus subscriber; engine-originated events
     render to their historical kind/detail strings, the rest to None.
     Both the trace and the metrics registry are scoped to this engine's
     source label — in a multi-engine cluster each engine only observes
     its own stream (cluster-wide views subscribe unfiltered). *)
  let own = Node.id node in
  if config.trace then
    Event.subscribe (Sim.events sim) (fun ~at ~src ev ->
        if src = own then
          match Event.to_trace ev with
          | Some (kind, detail) -> Trace.record tracer ~at ~kind detail
          | None -> ());
  Metrics.attach metrics ~src:own (Sim.events sim);
  let rng = Rng.split (Sim.rng sim) in
  let t =
    {
      sim;
      rpc;
      node;
      disp =
        Dispatch.create ~overhead:config.dispatch_overhead ~batch:config.batch_persists ~rpc
          ~node ~mgr ~participant ();
      reg;
      config;
      default_policy =
        {
          dp_deadline = config.default_deadline;
          dp_rpc_retries = config.dispatch_rpc_retries;
          dp_max_attempts = config.system_max_attempts;
        };
      tracer;
      metrics;
      rng;
      (* a copy, not another split: the root rng must advance exactly as
         before so downstream components keep their seed streams *)
      jitter_salt = own ^ "#" ^ Int64.to_string (Rng.next_int64 (Rng.copy rng));
      insts = Hashtbl.create 8;
      inst_rev = [];
      compiled = Hashtbl.create 8;
      seq = 0;
      epoch = 1;
      orphans = [];
    }
  in
  Node.serve node ~service:(Wfmsg.service_done ~engine:own) (handle_report t ~is_mark:false);
  Node.serve node ~service:(Wfmsg.service_mark ~engine:own) (handle_report t ~is_mark:true);
  Node.on_crash node (fun () ->
      t.epoch <- t.epoch + 1;
      let running =
        Hashtbl.fold
          (fun _ (inst : Instate.t) acc ->
            if inst.Instate.status = Wstate.Wf_running then inst :: acc else acc)
          t.insts []
      in
      t.orphans <- running @ t.orphans);
  Node.on_recover node (recover t);
  Dispatch.on_apply t.disp (fun writes ->
      let dir_iids =
        if config.incremental then
          List.filter_map
            (fun (key, _) ->
              if String.starts_with ~prefix:Wstate.dir_prefix key then Some (dir_iid_of_key key)
              else None)
            writes
        else []
      in
      let roster =
        (not config.incremental) && List.exists (fun (key, _) -> key = Wstate.key_insts) writes
      in
      if dir_iids <> [] || roster then begin
        let epoch = t.epoch in
        ignore
          (Sim.schedule sim ~delay:0 (fun () ->
               if t.epoch = epoch && Node.up node then
                 if config.incremental then List.iter (reconcile_one t) dir_iids
                 else reconcile_roster t))
      end);
  ignore (attach_host_on t node);
  t

let attach_host t node = attach_host_on t node

(* Launching the same script text repeatedly (the capacity bench does it
   100k times) re-parses an identical source each time: cache the
   compiled schema by (root, script). Instances never mutate the shared
   tree — reconfigure swaps in a freshly compiled one — so sharing is
   safe. Naive mode compiles every launch, the historical cost model.

   Domain-safety invariant: the cache is engine-scoped, not global, and
   an engine (with its whole sim stack) is confined to the domain that
   built it — parallel exploration gives each schedule's run a fresh
   stack (DESIGN.md §13), so this table is only ever touched from one
   domain and needs no lock. Any future cross-domain schema sharing must
   either keep per-domain caches or add a mutex here. *)
let compile_cached t ~script ~root =
  if not t.config.incremental then
    Result.map_error Frontend.error_to_string (Frontend.compile script ~root)
  else begin
    let key = root ^ "\x00" ^ script in
    match Hashtbl.find_opt t.compiled key with
    | Some schema -> Ok schema
    | None -> (
      match Frontend.compile script ~root with
      | Error e -> Error (Frontend.error_to_string e)
      | Ok schema ->
        Hashtbl.replace t.compiled key schema;
        Ok schema)
  end

let launch ?iid t ~script ~root ~inputs =
  match compile_cached t ~script ~root with
  | Error e -> Error e
  | Ok _ when (match iid with Some i -> Hashtbl.mem t.insts i | None -> false) ->
    Error ("duplicate instance id " ^ Option.get iid)
  | Ok schema ->
    t.seq <- t.seq + 1;
    let iid =
      match iid with Some i -> i | None -> Printf.sprintf "wf-%d-%d" t.epoch t.seq
    in
    let inst =
      Instate.create ~iid ~script_text:script ~schema ~status:Wstate.Wf_running
        ~external_inputs:inputs
    in
    let meta = Instate.meta inst ~status:Wstate.Wf_running in
    (* visible immediately: callers can attach on_complete before the
       launch transaction commits; scheduling starts once durable *)
    t.inst_rev <- iid :: t.inst_rev;
    Hashtbl.replace t.insts iid inst;
    emit t (Event.Wf_launched { iid; root });
    let dir_write =
      (* one O(1) row per instance instead of rewriting the whole
         roster list (O(n) WAL bytes per launch, O(n²) over a run) *)
      if t.config.incremental then (Wstate.key_dir iid, Some (Wstate.encode_dir_seq t.seq))
      else (Wstate.key_insts, Some (Wstate.encode_insts (List.rev t.inst_rev)))
    in
    persist t
      [
        dir_write;
        (Wstate.key_meta iid, Some (Wstate.encode_meta meta));
        Instate.history_write inst ~now:(Sim.now t.sim) ~kind:"launch" ~detail:("root=" ^ root);
      ]
      (fun () -> mark_dirty t inst);
    Ok iid

let status t iid =
  Option.map (fun (inst : Instate.t) -> inst.Instate.status) (Hashtbl.find_opt t.insts iid)

let on_complete t iid cb =
  match Hashtbl.find_opt t.insts iid with
  | None -> ()
  | Some inst -> (
    match inst.Instate.status with
    | Wstate.Wf_running -> inst.Instate.callbacks <- inst.Instate.callbacks @ [ cb ]
    | done_or_failed -> cb done_or_failed)

let instances t = List.rev t.inst_rev

let task_state t iid ~path =
  match Hashtbl.find_opt t.insts iid with
  | None -> None
  | Some inst -> Instate.get_state inst path

let task_states t iid =
  match Hashtbl.find_opt t.insts iid with
  | None -> []
  | Some inst ->
    let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) inst.Instate.states [] in
    List.sort (fun (a, _) (b, _) -> String.compare a b) all

type policy_budget = {
  pb_path : string;
  pb_attempts : int;
  pb_backoff_remaining : Sim.time;
  pb_compensated : bool;
}

let policy_budgets t iid =
  match Hashtbl.find_opt t.insts iid with
  | None -> []
  | Some inst ->
    let now = Sim.now t.sim in
    (* union of every path the policy machinery has touched: task states
       (attempt counters), pending backoffs, recorded compensations *)
    let paths = Hashtbl.create 16 in
    Hashtbl.iter (fun k _ -> Hashtbl.replace paths k ()) inst.Instate.states;
    Hashtbl.iter (fun k _ -> Hashtbl.replace paths k ()) inst.Instate.backoffs;
    Hashtbl.iter (fun k _ -> Hashtbl.replace paths k ()) inst.Instate.compensated;
    Hashtbl.fold
      (fun key () acc ->
        let attempts =
          match Hashtbl.find_opt inst.Instate.states key with
          | Some (Wstate.Waiting { attempt })
          | Some (Wstate.Running { attempt; _ })
          | Some (Wstate.Done { attempt; _ }) ->
            attempt
          | Some _ | None -> 0
        in
        let backoff_remaining =
          match Hashtbl.find_opt inst.Instate.backoffs key with
          | Some (_, fire_at) -> max 0 (fire_at - now)
          | None -> 0
        in
        { pb_path = key; pb_attempts = attempts; pb_backoff_remaining = backoff_remaining;
          pb_compensated = Hashtbl.mem inst.Instate.compensated key }
        :: acc)
      paths []
    |> List.sort (fun a b -> String.compare a.pb_path b.pb_path)

let marks_of t iid ~path =
  match Hashtbl.find_opt t.insts iid with None -> [] | Some inst -> Instate.get_marks inst path

let history t iid = Dispatch.committed_history t.disp ~iid

let quiescent t iid =
  match Hashtbl.find_opt t.insts iid with
  | None -> false
  | Some inst ->
    inst.Instate.status = Wstate.Wf_running
    && Instate.running_leaves inst ~effective:(effective_body t) = []

let cancel t iid ~reason k =
  match Hashtbl.find_opt t.insts iid with
  | None -> k (Error ("no such instance " ^ iid))
  | Some inst when inst.Instate.status <> Wstate.Wf_running ->
    k (Error ("instance " ^ iid ^ " already finished"))
  | Some inst ->
    let status = Wstate.Wf_failed ("cancelled: " ^ reason) in
    let meta = Instate.meta inst ~status in
    inst.Instate.concluding <- true;
    persist t
      [ (Wstate.key_meta iid, Some (Wstate.encode_meta meta)) ]
      (fun () ->
        inst.Instate.status <- status;
        emit t (Event.Wf_cancelled { iid; reason });
        let callbacks = inst.Instate.callbacks in
        inst.Instate.callbacks <- [];
        List.iter (fun cb -> cb status) callbacks;
        k (Ok ()))

let abort_task t iid ~path k =
  match Hashtbl.find_opt t.insts iid with
  | None -> k (Error ("no such instance " ^ iid))
  | Some inst -> (
    match (Instate.get_state inst path, find_task_node t inst path) with
    | (None | Some (Wstate.Waiting _ | Wstate.Running _)), Some task ->
      emit t (Event.User_aborted { path = pkey path });
      fail_policy t inst ~path ~task ~reason:"aborted by user";
      k (Ok ())
    | Some (Wstate.Done _ | Wstate.Failed _), _ -> k (Error (pkey path ^ " already finished"))
    | _, None -> k (Error ("no task at path " ^ pkey path)))

let compact t = Dispatch.compact t.disp

let gc t iid k =
  match Hashtbl.find_opt t.insts iid with
  | None -> k (Error ("no such instance " ^ iid))
  | Some inst when inst.Instate.status = Wstate.Wf_running ->
    k (Error ("instance " ^ iid ^ " is still running"))
  | Some _ ->
    let prefix = Wstate.task_prefix iid in
    let doomed =
      List.filter (fun key -> String.starts_with ~prefix key) (Dispatch.committed_keys t.disp)
    in
    let rev = List.filter (fun i -> i <> iid) t.inst_rev in
    let dir_write =
      if t.config.incremental then (Wstate.key_dir iid, None)
      else (Wstate.key_insts, Some (Wstate.encode_insts (List.rev rev)))
    in
    let writes = dir_write :: List.map (fun key -> (key, None)) doomed in
    persist t writes (fun () ->
        t.inst_rev <- rev;
        Hashtbl.remove t.insts iid;
        emit t (Event.Wf_collected { iid });
        k (Ok ()))

let reconfigure t iid ~transform k =
  match Hashtbl.find_opt t.insts iid with
  | None -> k (Error ("no such instance " ^ iid))
  | Some inst -> (
    match
      Reconfig.rewrite ~script:inst.Instate.script_text
        ~root:inst.Instate.schema.Schema.name ~transform
    with
    | Error msg -> k (Error msg)
    | Ok (text, schema) ->
      persist t
        [ (Wstate.key_reconf iid, Some text) ]
        (fun () ->
          inst.Instate.script_text <- text;
          inst.Instate.schema <- schema;
          (* the reverse-dependency index was built against the old
             tree; drop it so the next pump rebuilds from the new one *)
          inst.Instate.index <- None;
          emit t (Event.Wf_reconfigured { iid });
          mark_dirty t inst;
          k (Ok ())))

(* --- introspection counters (metrics registry, fed by the bus) --- *)

let dispatches_total t = Metrics.value t.metrics "engine.dispatches"
let completions_total t = Metrics.value t.metrics "engine.completions"
let system_retries_total t = Metrics.value t.metrics "engine.system_retries"
let marks_total t = Metrics.value t.metrics "engine.marks"
let policy_retries_total t = Metrics.value t.metrics "engine.policy_retries"
let policy_substitutions_total t = Metrics.value t.metrics "engine.policy_substitutions"
let policy_compensations_total t = Metrics.value t.metrics "engine.policy_compensations"
let reconfigs_total t = Metrics.value t.metrics "engine.reconfigs"
let recoveries_total t = Metrics.value t.metrics "engine.recoveries"

(* Residency accounting for the capacity bench: reachable words from
   the live mirror table, sampled on demand (walking 100k instances is
   too expensive to do implicitly). *)
let observe_residency t =
  let words = Obj.reachable_words (Obj.repr t.insts) in
  Metrics.set t.metrics "engine.resident_words" words;
  Metrics.set t.metrics "engine.ready_queue_len" (Dispatch.ready_len t.disp);
  words
