(* Pure AST surgery for dynamic reconfiguration. Each transform locates
   the compound declaration at [scope] (a path of instance names from a
   top-level declaration) and rewrites it. *)

let rec update_compound ~scope (cd : Ast.compound_decl) ~f =
  match scope with
  | [] -> f cd
  | next :: rest ->
    let update_constituent = function
      | Ast.C_compound inner when inner.Ast.cd_name = next ->
        Result.map (fun c -> Ast.C_compound c) (update_compound ~scope:rest inner ~f)
      | other -> Ok other
    in
    let rec update_all = function
      | [] -> Error (Printf.sprintf "no compound task %s in %s" next cd.Ast.cd_name)
      | c :: cs when Ast.constituent_name c = next ->
        Result.map (fun c' -> c' :: cs) (update_constituent c)
      | c :: cs -> Result.map (fun cs' -> c :: cs') (update_all cs)
    in
    Result.map (fun cs -> { cd with Ast.cd_constituents = cs }) (update_all cd.Ast.cd_constituents)

let update_script ~scope script ~f =
  match scope with
  | [] -> Error "empty scope path"
  | root :: rest ->
    let found = ref false in
    let update_decl = function
      | Ast.D_compound cd when cd.Ast.cd_name = root ->
        found := true;
        Result.map (fun c -> Ast.D_compound c) (update_compound ~scope:rest cd ~f)
      | other -> Ok other
    in
    let rec all = function
      | [] -> Ok []
      | d :: ds -> (
        match update_decl d with
        | Error e -> Error e
        | Ok d' -> Result.map (fun ds' -> d' :: ds') (all ds))
    in
    let result = all script in
    if !found then result
    else Error (Printf.sprintf "no top-level compound task named %s" root)

(* Parse a fragment by wrapping it in a syntactic context and extracting
   the part we need. *)
let parse_constituent_decl decl =
  match Parser.script_result decl with
  | Error (msg, loc) -> Error (Printf.sprintf "bad declaration: %s (%s)" msg (Loc.to_string loc))
  | Ok [ Ast.D_task td ] -> Ok (Ast.C_task td)
  | Ok [ Ast.D_compound cd ] -> Ok (Ast.C_compound cd)
  | Ok _ -> Error "expected exactly one task or compoundtask declaration"

let parse_object_sources text =
  let wrapped =
    Printf.sprintf
      "task x_ of taskclass X_ { inputs { input main { inputobject o_ from { %s } } } }" text
  in
  match Parser.script_result wrapped with
  | Ok [ Ast.D_task { td_inputs = [ { iss_deps = [ Ast.Dep_object { d_sources; _ } ]; _ } ]; _ } ] ->
    Ok d_sources
  | Ok _ -> Error "could not parse object sources"
  | Error (msg, _) -> Error ("bad source syntax: " ^ msg)

let parse_notif_sources text =
  let wrapped =
    Printf.sprintf "task x_ of taskclass X_ { inputs { input main { notification from { %s } } } }"
      text
  in
  match Parser.script_result wrapped with
  | Ok [ Ast.D_task { td_inputs = [ { iss_deps = [ Ast.Dep_notification sources ]; _ } ]; _ } ] ->
    Ok sources
  | Ok _ -> Error "could not parse notification sources"
  | Error (msg, _) -> Error ("bad source syntax: " ^ msg)

let add_constituent ~scope ~decl script =
  match parse_constituent_decl decl with
  | Error e -> Error e
  | Ok constituent ->
    let name = Ast.constituent_name constituent in
    update_script ~scope script ~f:(fun cd ->
        if List.exists (fun c -> Ast.constituent_name c = name) cd.Ast.cd_constituents then
          Error (Printf.sprintf "constituent %s already exists in %s" name cd.Ast.cd_name)
        else Ok { cd with Ast.cd_constituents = cd.Ast.cd_constituents @ [ constituent ] })

let remove_constituent ~scope ~name script =
  update_script ~scope script ~f:(fun cd ->
      if not (List.exists (fun c -> Ast.constituent_name c = name) cd.Ast.cd_constituents) then
        Error (Printf.sprintf "no constituent %s in %s" name cd.Ast.cd_name)
      else
        Ok
          {
            cd with
            Ast.cd_constituents =
              List.filter (fun c -> Ast.constituent_name c <> name) cd.Ast.cd_constituents;
          })

(* Rewrite one constituent task's input sets. *)
let update_task_inputs ~scope ~task script ~f =
  update_script ~scope script ~f:(fun cd ->
      let seen = ref false in
      let update_constituent = function
        | Ast.C_task td when td.Ast.td_name = task ->
          seen := true;
          Result.map (fun inputs -> Ast.C_task { td with Ast.td_inputs = inputs }) (f td.Ast.td_inputs)
        | Ast.C_compound inner when inner.Ast.cd_name = task ->
          seen := true;
          Result.map
            (fun inputs -> Ast.C_compound { inner with Ast.cd_inputs = inputs })
            (f inner.Ast.cd_inputs)
        | other -> Ok other
      in
      let rec all = function
        | [] -> Ok []
        | c :: cs -> (
          match update_constituent c with
          | Error e -> Error e
          | Ok c' -> Result.map (fun cs' -> c' :: cs') (all cs))
      in
      match all cd.Ast.cd_constituents with
      | Error e -> Error e
      | Ok cs ->
        if !seen then Ok { cd with Ast.cd_constituents = cs }
        else Error (Printf.sprintf "no constituent %s in %s" task cd.Ast.cd_name))

let update_input_set ~input_set inputs ~f =
  let seen = ref false in
  let update (iss : Ast.input_set_spec) =
    if iss.Ast.iss_name = input_set then begin
      seen := true;
      Result.map (fun deps -> { iss with Ast.iss_deps = deps }) (f iss.Ast.iss_deps)
    end
    else Ok iss
  in
  let rec all = function
    | [] -> Ok []
    | s :: ss -> (
      match update s with
      | Error e -> Error e
      | Ok s' -> Result.map (fun ss' -> s' :: ss') (all ss))
  in
  match all inputs with
  | Error e -> Error e
  | Ok inputs' ->
    if !seen then Ok inputs' else Error (Printf.sprintf "no input set %s specified" input_set)

let add_object_source ~scope ~task ~input_set ~input_object ~source script =
  match parse_object_sources source with
  | Error e -> Error e
  | Ok new_sources ->
    update_task_inputs ~scope ~task script ~f:(fun inputs ->
        update_input_set ~input_set inputs ~f:(fun deps ->
            let extended = ref false in
            let extend = function
              | Ast.Dep_object { d_name; d_sources; d_loc } when d_name = input_object ->
                extended := true;
                Ast.Dep_object { d_name; d_sources = d_sources @ new_sources; d_loc }
              | other -> other
            in
            let deps' = List.map extend deps in
            if !extended then Ok deps'
            else
              Ok
                (deps
                @ [
                    Ast.Dep_object
                      { d_name = input_object; d_sources = new_sources; d_loc = Loc.dummy };
                  ])))

let add_notification ~scope ~task ~input_set ~sources script =
  match parse_notif_sources sources with
  | Error e -> Error e
  | Ok notif_sources ->
    update_task_inputs ~scope ~task script ~f:(fun inputs ->
        update_input_set ~input_set inputs ~f:(fun deps ->
            Ok (deps @ [ Ast.Dep_notification notif_sources ])))

let remove_notification ~scope ~task ~input_set ~source_task script =
  update_task_inputs ~scope ~task script ~f:(fun inputs ->
      update_input_set ~input_set inputs ~f:(fun deps ->
          let prune = function
            | Ast.Dep_notification sources -> (
              match
                List.filter (fun (ns : Ast.notif_source) -> ns.Ast.ns_task <> source_task) sources
              with
              | [] -> None
              | remaining -> Some (Ast.Dep_notification remaining))
            | other -> Some other
          in
          Ok (List.filter_map prune deps)))

let rebind_implementation ~scope ~task ~code script =
  update_script ~scope script ~f:(fun cd ->
      let seen = ref false in
      let rebind impl = ("code", code) :: List.remove_assoc "code" impl in
      let update = function
        | Ast.C_task td when td.Ast.td_name = task ->
          seen := true;
          Ast.C_task { td with Ast.td_impl = rebind td.Ast.td_impl }
        | Ast.C_compound inner when inner.Ast.cd_name = task ->
          seen := true;
          Ast.C_compound { inner with Ast.cd_impl = rebind inner.Ast.cd_impl }
        | other -> other
      in
      let cs = List.map update cd.Ast.cd_constituents in
      if !seen then Ok { cd with Ast.cd_constituents = cs }
      else Error (Printf.sprintf "no constituent %s in %s" task cd.Ast.cd_name))

(* The engine-side rewrite pipeline: parse the instance's current
   script, apply a transform, re-expand templates, re-validate, and
   re-render. Kept here so Engine.reconfigure only persists and swaps. *)
let rewrite ~script ~root ~transform =
  match Parser.script_result script with
  | Error (msg, _) -> Error ("current script no longer parses: " ^ msg)
  | Ok ast -> (
    match transform ast with
    | Error msg -> Error msg
    | Ok ast' -> (
      match Template.expand ast' with
      | Error (msg, _) -> Error msg
      | Ok expanded -> (
        match Validate.ok expanded with
        | Error issues ->
          Error
            (String.concat "; "
               (List.map (fun i -> Format.asprintf "%a" Validate.pp_issue i) issues))
        | Ok () -> (
          match Schema.of_script expanded ~root with
          | Error msg -> Error msg
          | Ok schema -> Ok (Pretty.to_string expanded, schema)))))
