(** Persistent workflow-instance state: record types, wire codecs and
    store-key layout.

    Everything the execution service needs to resume an instance after
    an engine-node crash is written (under transactions) to the engine
    node's object store using these keys:

    - [wf:insts] — list of instance ids
    - [wf:I:meta] — script text, root name, external inputs, status
    - [wf:I:reconf] — current script text after dynamic reconfiguration
    - [wf:I:t:P] — state of the task at path [P]
    - [wf:I:c:P] — input set chosen for the task at [P] and its values
    - [wf:I:m:P] — marks emitted by the task at [P]
    - [wf:I:r:P] — the last repeat outcome of the task at [P]
    - [wf:I:timer:P:S] — the timeout of input set [S] has fired
    - [wf:I:timerarm:P:S] — deadline of the armed timer of input set [S]
    - [wf:I:b:P] — pending recovery-policy backoff of the task at [P]
    - [wf:I:comp:P] — the abort of [P] has been compensated (one-shot)

    A path [P] is the [/]-joined chain of task names from the root. *)

type path = string list

type task_state =
  | Waiting of { attempt : int }
  | Running of { attempt : int; set : string; started : Sim.time; deadline : Sim.time }
  | Done of {
      attempt : int;
      output : string;
      kind : Ast.output_kind;
      objects : (string * Value.obj) list;
    }
  | Failed of string

type chosen = { c_set : string; c_inputs : (string * Value.obj) list }

type status =
  | Wf_running
  | Wf_done of { output : string; objects : (string * Value.obj) list }
  | Wf_failed of string

type meta = {
  m_script : string;
  m_root : string;
  m_inputs : (string * Value.obj) list;
  m_status : status;
}

val path_to_string : path -> string

val key_insts : string
(** Legacy whole-list instance directory (naive mode re-encodes the full
    list on every launch). The incremental engine uses one {!key_dir}
    record per instance instead — O(1) WAL bytes per launch. *)

val dir_prefix : string

val key_dir : string -> string
(** [dir_prefix ^ iid], valued with {!encode_dir_seq} of the engine's
    launch sequence number; recovery sorts by it to restore order. *)

val encode_dir_seq : int -> string

val decode_dir_seq : string -> int option

val key_meta : string -> string

val key_reconf : string -> string

val key_task : string -> path -> string

val key_chosen : string -> path -> string

val key_marks : string -> path -> string

val key_repeat : string -> path -> string

val key_timer : string -> path -> set:string -> string

val key_timer_arm : string -> path -> set:string -> string

val key_backoff : string -> path -> string
(** [wf:I:b:P] — a policy retry of [P] is waiting out its backoff;
    valued with {!encode_backoff}. Written in the same transaction as
    the attempt bump, so a crash mid-backoff recovers the remaining
    budget and the remaining wait, never a reset. *)

val key_comp : string -> path -> string
(** [wf:I:comp:P] — the compensation for [P]'s abort has been recorded;
    written atomically with the abort completion (exactly-once). *)

val encode_backoff : int * Sim.time -> string
(** attempt waiting, absolute virtual-time fire deadline. *)

val decode_backoff : string -> int * Sim.time

val key_history : string -> int -> string
(** [wf:I:h:N] — N-th persistent history event of the instance. *)

val encode_history : Sim.time * string * string -> string
(** at, kind, detail. *)

val decode_history : string -> Sim.time * string * string
(** Absolute virtual-time deadline of an armed input-set timer; persists
    so a recovery resumes the remaining wait instead of restarting the
    full timeout. *)

val task_prefix : string -> string
(** Prefix of all [wf:I:*] keys of one instance, for scans/deletion. *)

val encode_task_state : task_state -> string

val decode_task_state : string -> task_state

val encode_chosen : chosen -> string

val decode_chosen : string -> chosen

val encode_meta : meta -> string

val decode_meta : string -> meta

val encode_marks : (string * (string * Value.obj) list) list -> string

val decode_marks : string -> (string * (string * Value.obj) list) list

val encode_repeat : string * (string * Value.obj) list -> string

val decode_repeat : string -> string * (string * Value.obj) list

val encode_insts : string list -> string

val decode_insts : string -> string list

val pp_task_state : Format.formatter -> task_state -> unit

val pp_status : Format.formatter -> status -> unit
