(** Standard dynamic-reconfiguration transforms (paper §3 and [7]):
    add/remove tasks and dependencies of a running application. Each is
    a pure AST transform to feed {!Engine.reconfigure}; the engine
    re-validates and persists the result atomically. *)

val add_constituent :
  scope:string list -> decl:string -> Ast.script -> (Ast.script, string) result
(** [add_constituent ~scope ~decl script] parses [decl] (one [task] or
    [compoundtask] declaration) and appends it to the compound at
    [scope] — a path of task names starting at the top-level instance,
    e.g. [["processOrderApplication"]]. *)

val remove_constituent :
  scope:string list -> name:string -> Ast.script -> (Ast.script, string) result

val add_object_source :
  scope:string list ->
  task:string ->
  input_set:string ->
  input_object:string ->
  source:string ->
  Ast.script ->
  (Ast.script, string) result
(** Append an alternative source to an input object of a constituent.
    [source] uses concrete syntax, e.g. ["o1 of task t4 if output oc1"].
    If the input object has no dependency clause yet, one is created. *)

val add_notification :
  scope:string list ->
  task:string ->
  input_set:string ->
  sources:string ->
  Ast.script ->
  (Ast.script, string) result
(** Add a whole notification dependency (one more conjunct), with
    [sources] in concrete syntax, e.g.
    ["task t2 if output done; task t3 if output done"]. *)

val remove_notification :
  scope:string list ->
  task:string ->
  input_set:string ->
  source_task:string ->
  Ast.script ->
  (Ast.script, string) result
(** Remove every notification alternative that names [source_task]
    (dropping a notification dependency entirely when it empties). *)

val rebind_implementation :
  scope:string list -> task:string -> code:string -> Ast.script -> (Ast.script, string) result
(** Point a constituent's ["code"] binding at a different implementation
    name (script-level online upgrade). *)

val rewrite :
  script:string ->
  root:string ->
  transform:(Ast.script -> (Ast.script, string) result) ->
  (string * Schema.task, string) result
(** Parse [script], apply [transform], re-expand, re-validate and
    re-resolve [root]; returns the pretty-printed new script text and
    its schema. The engine persists the text and swaps the schema in
    atomically. *)
