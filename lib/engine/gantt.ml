type row = {
  path : string;
  started : Sim.time;
  mutable finished : Sim.time option;
  mutable outcome : string;
  mutable marks : Sim.time list;
}

(* "diamond/t1 (attempt 1)" -> "diamond/t1" *)
let strip_suffix detail =
  match String.index_opt detail ' ' with
  | Some i -> String.sub detail 0 i
  | None -> detail

(* "diamond/t1 -> produced" -> ("diamond/t1", "produced") *)
let split_arrow detail =
  let marker = " -> " in
  let ml = String.length marker in
  let rec find i =
    if i + ml > String.length detail then None
    else if String.sub detail i ml = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    (String.sub detail 0 i, String.sub detail (i + ml) (String.length detail - i - ml))
  | None -> (detail, "")

let collect trace =
  let rows : (string, row) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let row_for path at =
    match Hashtbl.find_opt rows path with
    | Some r -> r
    | None ->
      let r = { path; started = at; finished = None; outcome = ""; marks = [] } in
      Hashtbl.replace rows path r;
      order := path :: !order;
      r
  in
  let visit (e : Trace.entry) =
    match e.Trace.kind with
    | "start" | "scope-open" -> ignore (row_for (strip_suffix e.Trace.detail) e.Trace.at)
    | "complete" ->
      let path, outcome = split_arrow e.Trace.detail in
      let r = row_for path e.Trace.at in
      r.finished <- Some e.Trace.at;
      r.outcome <- outcome
    | "mark" ->
      let path = strip_suffix e.Trace.detail in
      let r = row_for path e.Trace.at in
      r.marks <- e.Trace.at :: r.marks
    | _ -> ()
  in
  List.iter visit (Trace.entries trace);
  List.rev_map (Hashtbl.find rows) !order

let render_rows ~width rows =
  match rows with
  | [] -> ""
  | rows ->
    let t0 = List.fold_left (fun acc r -> min acc r.started) max_int rows in
    let t1 =
      List.fold_left
        (fun acc r -> max acc (match r.finished with Some f -> f | None -> r.started))
        t0 rows
    in
    let span = max 1 (t1 - t0) in
    let col t = min (width - 1) ((t - t0) * (width - 1) / span) in
    let label_width =
      List.fold_left (fun acc r -> max acc (String.length r.path)) 0 rows
    in
    let buf = Buffer.create 1024 in
    let render_row r =
      let bar = Bytes.make width ' ' in
      let b = col r.started in
      let e = match r.finished with Some f -> col f | None -> width - 1 in
      for i = b to e do
        Bytes.set bar i '='
      done;
      Bytes.set bar b '|';
      if r.finished <> None then Bytes.set bar e '|';
      List.iter (fun m -> Bytes.set bar (col m) '*') r.marks;
      let timing =
        match r.finished with
        | Some f -> Printf.sprintf "%6d..%6d us  %s" r.started f r.outcome
        | None -> Printf.sprintf "%6d..        (running)" r.started
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s %s %s\n" label_width r.path (Bytes.to_string bar) timing)
    in
    List.iter render_row rows;
    Buffer.contents buf

let render ?(width = 60) trace = render_rows ~width (collect trace)

(* --- typed recorder: same chart, fed by the event bus --- *)

type recorder = { rows : (string, row) Hashtbl.t; mutable order : string list }

let recorder () = { rows = Hashtbl.create 16; order = [] }

let attach ?src:only r bus =
  let row_for path at =
    match Hashtbl.find_opt r.rows path with
    | Some row -> row
    | None ->
      let row = { path; started = at; finished = None; outcome = ""; marks = [] } in
      Hashtbl.replace r.rows path row;
      r.order <- path :: r.order;
      row
  in
  Event.subscribe bus (fun ~at ~src ev ->
      match ev with
      | _ when (match only with Some s -> s <> src | None -> false) -> ()
      | Event.Task_started { path; _ } | Event.Scope_opened { path } ->
        ignore (row_for path at)
      | Event.Task_completed { path; output; _ } ->
        let row = row_for path at in
        row.finished <- Some at;
        row.outcome <- output
      | Event.Task_marked { path; _ } ->
        let row = row_for path at in
        row.marks <- at :: row.marks
      | _ -> ())

let render_events ?(width = 60) r =
  render_rows ~width (List.rev_map (Hashtbl.find r.rows) r.order)
