type outcome = {
  output : string;
  objects : (string * Value.t) list;
}

type step =
  | Work of Sim.time
  | Emit_mark of outcome

type plan = { steps : step list; finish : outcome }

type context = {
  attempt : int;
  input_set : string;
  inputs : (string * Value.obj) list;
  rng : Rng.t;
}

type fn = context -> plan

type impl =
  | Fn of fn
  | Sub_workflow of Schema.task

type t = { bindings : (string, impl) Hashtbl.t }

let create () = { bindings = Hashtbl.create 32 }

let bind t ~code fn = Hashtbl.replace t.bindings code (Fn fn)

let bind_script t ~code schema = Hashtbl.replace t.bindings code (Sub_workflow schema)

let unbind t ~code = Hashtbl.remove t.bindings code

let find t ~code = Hashtbl.find_opt t.bindings code

let names t =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.bindings [])

let finish ?(work = Sim.ms 1) output objects = { steps = [ Work work ]; finish = { output; objects } }

let const ?work output objects _ctx = finish ?work output objects

(* What scheduling sees through a task's binding: a compound scope
   (inline, or a bound sub-workflow script, paper §4.3), a leaf
   function, or a binding error surfaced as a task failure. *)
let effective t (task : Schema.task) =
  match task.Schema.body with
  | Schema.Compound { children; bindings } ->
    Sched.E_compound { children; bindings; alias = task.Schema.name }
  | Schema.Simple -> (
    match Ast.impl_code task.Schema.impl with
    | None -> Sched.E_missing "no code binding"
    | Some code -> (
      match find t ~code with
      | Some (Fn _) -> Sched.E_fn code
      | Some (Sub_workflow sub) -> (
        match sub.Schema.body with
        | Schema.Compound { children; bindings } ->
          Sched.E_compound { children; bindings; alias = sub.Schema.name }
        | Schema.Simple -> Sched.E_missing (code ^ " is bound to a non-compound schema"))
      | None -> Sched.E_missing ("no implementation bound for code " ^ code)))
