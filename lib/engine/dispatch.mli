(** The effect layer between the pure scheduler core and the substrate:
    everything the engine does that touches transactions, RPC or the
    participant's committed store goes through here, so [Engine] itself
    stays an orchestrator and {!Sched} stays pure.

    Each operation announces itself on the simulator's event bus
    ({!Event}): dispatches emit [Task_dispatched], failed persists emit
    [Txn_failed]. *)

type t

val create :
  ?overhead:Sim.time ->
  ?batch:bool ->
  rpc:Rpc.t ->
  node:Node.t ->
  mgr:Txn.manager ->
  participant:Participant.t ->
  unit ->
  t
(** [overhead] models the engine's own per-dispatch processing cost:
    dispatches are serialised through a busy cursor, each occupying the
    engine for [overhead] virtual time before its RPC leaves the node.
    Default 0 (dispatch is free, the historical behaviour); the cluster
    scaling bench sets it to expose the single-engine bottleneck.

    [batch] (default true) coalesces all {!persist} calls issued within
    one simulation timestep into a single transaction (one commit); a
    flush combining two or more requests emits [Persist_batched]. Set
    false to commit each persist individually (the historical
    behaviour). *)

val sim : t -> Sim.t

val node_id : t -> string

val persist : t -> (string * string option) list -> (unit -> unit) -> unit
(** Apply a write set ([Some] = put, [None] = delete) on the engine
    node under one top-level transaction (retried on conflict/timeout by
    {!Txn.run}); the continuation runs only on commit. A final failure
    emits [Txn_failed] and drops the continuation — the evaluation pump
    re-derives the actions on its next pass.

    With batching on, the write set joins the current timestep's batch
    and commits with it on the deferred flush; a crash before the flush
    drops the whole batch (no partial commit), and the queued
    continuations die with it, exactly like an individual persist that
    never reached its commit. *)

val send_exec : t -> host:string -> retries:int -> Wfmsg.exec_req -> ((string, string) result -> unit) -> unit
(** Dispatch one implementation execution to a task host (emits
    [Task_dispatched], then the at-least-once RPC). With a non-zero
    [overhead] the dispatch joins the engine's ready deque: enqueue is
    O(1) and a single chained drain event pops one dispatch per
    [overhead] — same timing as per-dispatch scheduling, one simulator
    event per engine instead of one per queued dispatch. *)

val ready_len : t -> int
(** Dispatches currently queued on the ready deque (0 when [overhead]
    is 0 — dispatches then fire inline). Backs the
    [engine.ready_queue_len] gauge. *)

val committed_value : t -> key:string -> string option
(** Read the engine node's committed store outside any transaction. *)

val committed_keys : t -> string list

val committed_history : t -> iid:string -> (Sim.time * string * string) list
(** An instance's persistent audit rows (at, kind, detail) from the
    committed store, sorted by time then sequence. *)

val on_apply : t -> (Txrecord.write list -> unit) -> unit
(** Observe committed writes applied on the engine node (including by
    the recovery termination protocol). *)

val compact : t -> unit
(** Checkpoint the object store and compact the coordinator's decision
    log. *)
