(** The pure scheduling core of the execution service.

    Everything the paper's §3 scheduler decides — which input set of a
    waiting task is satisfied (ordered alternatives, first-available
    wins; first-declared set wins), which compound output binding fires,
    mark/repeat/outcome propagation, scope liveness, and how a task
    report maps onto the transition rules of Fig 3 — expressed as pure
    functions over {!Wstate} snapshots.

    This module deliberately has {e no} dependency on [Sim], [Rpc] or
    [Txn]: state comes in through a {!view} (closures over whatever
    mirror the caller keeps), decisions come out as {!action}s and
    {!decision}s that the effect layer ({!Dispatch} / {!Engine})
    persists and executes. Times are plain [int]s (virtual
    microseconds). Purity is what makes the selection logic reusable
    (parallel dispatch batches, alternative backends) and directly
    property-testable. *)

(** What a task's implementation binding resolves to. Resolution
    consults the registry, so it is injected via {!view.v_effective}. *)
type effective =
  | E_fn of string  (** a leaf implementation, dispatched by code name *)
  | E_compound of { children : Schema.task list; bindings : Schema.binding list; alias : string }
  | E_missing of string  (** no usable binding; the reason *)

(** Read-only view of one instance. [None]/[[]] answers mean "no record
    yet" (implicitly Waiting, attempt 1). *)
type view = {
  v_effective : Schema.task -> effective;
  v_state : Wstate.path -> Wstate.task_state option;
  v_chosen : Wstate.path -> Wstate.chosen option;
  v_marks : Wstate.path -> (string * (string * Value.obj) list) list;
  v_repeat : Wstate.path -> (string * (string * Value.obj) list) option;
  v_timer_fired : Wstate.path -> set:string -> bool;
  v_external : string -> Value.obj option;  (** root-level external inputs *)
  v_running : bool;  (** instance status is [Wf_running] *)
}

val waiting_attempt : view -> Wstate.path -> int option
(** The attempt a waiting task would start as; [None] if not waiting. *)

val running_attempt : view -> Wstate.path -> int

val parent_path : Wstate.path -> Wstate.path
(** All but the last path segment. *)

val scope_open : view -> Wstate.path -> bool
(** Every enclosing compound scope is still Running. *)

val task_live : view -> Wstate.path -> bool
(** {!scope_open} and the instance itself is running — the fence every
    watchdog, retry and late report must pass. *)

val find_node :
  effective:(Schema.task -> effective) -> Schema.task -> string list -> Schema.task option
(** Navigate a schema along a path of task names, expanding dynamically
    bound sub-workflows. The first path element is a child of [task]. *)

(** {1 Decisions} *)

(** One scheduling decision. [Arm_timer] is volatile (the effect layer
    schedules the timeout); the rest are persisted atomically. *)
type action =
  | Start of {
      a_path : Wstate.path;
      a_task : Schema.task;
      a_set : string;
      a_inputs : (string * Value.obj) list;
      a_attempt : int;
    }
  | Fire_mark of { a_path : Wstate.path; a_name : string; a_objects : (string * Value.obj) list }
  | Do_repeat of {
      a_path : Wstate.path;
      a_name : string;
      a_objects : (string * Value.obj) list;
      a_attempt : int;
    }
  | Complete of {
      a_path : Wstate.path;
      a_name : string;
      a_kind : Ast.output_kind;
      a_objects : (string * Value.obj) list;
      a_attempt : int;
    }
  | Fail_task of { a_path : Wstate.path; a_reason : string }
  | Arm_timer of { a_path : Wstate.path; a_set : string; a_task : Schema.task; a_attempt : int }

val scan : view -> root:Schema.task -> action list
(** One full evaluation pass over the instance tree; actions come back
    in declaration order. Pure: same view, same actions. *)

(** {1 Incremental propagation}

    Push-based scheduling: instead of rescanning the whole instance on
    every notification, a {!index} built once per instance records which
    paths' readiness each store path can affect, and {!scan_from}
    evaluates only the dependents of the paths that actually changed.
    The pruned pass emits exactly the actions the full {!scan} would —
    a non-candidate's inputs are unchanged since the previous pass, so
    its readiness cannot have changed either. *)

type index
(** Reverse-dependency index over one (expanded) schema: producer path
    → the paths whose input sets or output bindings read it, plus each
    compound scope → its constituents (a scope start, repeat or chosen
    change re-evaluates every child). Rebuild after reconfiguration. *)

val build_index : effective:(Schema.task -> effective) -> Schema.task -> index

(** The accumulated change set between two evaluation passes. *)
type dirty = All | Paths of Wstate.path list

val no_dirty : dirty

val add_dirty : dirty -> Wstate.path list -> dirty
(** [All] absorbs everything; path lists concatenate (deduplicated at
    scan time). *)

val is_clean : dirty -> bool

val scan_from : index -> view -> root:Schema.task -> dirty:dirty -> action list
(** The incremental pass: evaluate only the dirty paths and their
    indexed dependents. [scan_from idx v ~root ~dirty:All] is exactly
    [scan v ~root]; with [dirty:(Paths ps)] it returns the same actions
    the full scan would, provided every store change since the previous
    pass is covered by [ps]. *)

val prioritise : action list -> action list
(** Reorder a pass's actions for dispatch: non-starts first in scan
    order, then starts by descending ["priority"] implementation kv
    (stable). *)

(** {1 Output shaping and implementation kvs} *)

val wrap_outputs :
  Schema.task -> output:string -> (string * Value.t) list -> (string * Value.obj) list
(** Coerce an implementation's raw payloads onto the declared output
    objects (missing ones become [Unit] of the declared class). *)

val impl_ms : Schema.task -> key:string -> int option
(** An integer implementation binding interpreted as milliseconds
    (["deadline"], ["timeout"]); the caller converts to virtual time. *)

val impl_priority : Schema.task -> int

val impl_abort_retries : Schema.task -> int
(** ["retries"] kv: spontaneous abort outcomes absorbed by restarting. *)

(** {1 Resolved recovery policy}

    The compiled {!Schema.policy} of a task merged with the engine's
    config-seeded defaults. The durable per-path attempt counter drives
    everything: the ranked implementation codes partition the attempt
    axis into bands of [rp_per_code] attempts, so code selection — and
    therefore which alternative a recovered engine redispatches — is a
    pure function of the counter that {!Wstate.Running} already
    persists. With [rp_declared = false] the record reproduces the
    legacy global-knob behaviour exactly (one code,
    [default_max_attempts] attempts, no backoff). *)
type rpolicy = {
  rp_codes : string list;  (** ranked codes: primary, alternatives, substitute *)
  rp_per_code : int;  (** attempts allowed per code = 1 + retry count *)
  rp_base_total : int;  (** failure-driven ceiling: primary + alternatives *)
  rp_grand_total : int;  (** absolute ceiling, incl. the substitute band *)
  rp_backoff_ms : int;
  rp_jitter_ms : int;
  rp_backoff_max_ms : int option;
  rp_timeout_ms : int option;
  rp_on_timeout : Ast.timeout_action;
  rp_compensate : string option;
  rp_declared : bool;
}

val resolve_policy : Schema.task -> primary:string -> default_max_attempts:int -> rpolicy

val policy_band : rpolicy -> attempt:int -> int
(** 0-based index into [rp_codes] of the band [attempt] falls in. *)

val policy_code : rpolicy -> attempt:int -> string
(** The implementation code [attempt] must dispatch (last band is
    sticky for out-of-range attempts). *)

val policy_exhausted : rpolicy -> attempt:int -> bool
(** [attempt] just failed — is the budget spent? Reproduces the legacy
    [attempt >= system_max_attempts] check when undeclared. *)

val policy_backoff_ms : rpolicy -> attempt:int -> int
(** Delay in ms before dispatching [attempt]: 0 for the first attempt
    of a band, else [min cap (base * 2^(k-1))] for the k-th retry. *)

val policy_jitter_ms :
  rpolicy -> salt:string -> iid:string -> path:string list -> attempt:int -> int
(** Deterministic jitter in [0, rp_jitter_ms): a pure hash of
    (salt, iid, path, attempt), never a runtime rng draw — so the same
    seed reproduces the same spread regardless of scheduling
    interleaving. 0 when the policy declares no [jitter]. *)

val policy_backoff_jittered_ms :
  rpolicy -> salt:string -> iid:string -> path:string list -> attempt:int -> int
(** {!policy_backoff_ms} plus {!policy_jitter_ms}; immediate attempts
    (backoff 0) stay immediate — there is no delay to spread. *)

val policy_next_band_start : rpolicy -> attempt:int -> int
(** First attempt of the band after [attempt]'s — the jump target of
    [timeout ... then alternative]. *)

val policy_substitute_start : rpolicy -> int option
(** First attempt of the trailing substitute band, when the policy
    declares [timeout ... then substitute]. *)

val fail_action : Schema.task -> path:Wstate.path -> attempt:int -> reason:string -> action
(** Fig 3's system-failure rule: an abort outcome when the taskclass
    declares one, [Fail_task] otherwise. *)

(** {1 Report classification} *)

val impl_error_prefix : string
(** Outputs with this prefix signal a host-side implementation crash. *)

(** How the effect layer must react to a task host's report. *)
type decision =
  | D_retry  (** system failure: re-dispatch (bounded by the engine) *)
  | D_auto_restart  (** abort outcome absorbed by the ["retries"] kv *)
  | D_fail of string  (** protocol violation: map through {!fail_action} *)
  | D_apply of action  (** persist and apply *)
  | D_ignore  (** duplicate (at-least-once delivery) *)

val report_decision :
  view ->
  task:Schema.task ->
  path:Wstate.path ->
  attempt:int ->
  is_mark:bool ->
  output:string ->
  objects:(string * Value.t) list ->
  decision
(** Classify a report against Fig 3. Notably: a task that has released a
    mark may not abort — an abort outcome arriving after any mark yields
    [D_apply (Fail_task _)], never a completion. *)
