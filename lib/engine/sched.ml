(* The pure scheduling core. No Sim, Rpc or Txn anywhere in here: state
   comes in through a [view] of Wstate snapshots, decisions go out as
   [action]s / [decision]s for the effect layer to persist and execute.
   Times are plain ints (virtual microseconds). *)

(* --- what a task name resolves to (registry resolution is injected) --- *)

type effective =
  | E_fn of string
  | E_compound of { children : Schema.task list; bindings : Schema.binding list; alias : string }
  | E_missing of string

(* --- read-only view of one instance's state --- *)

type view = {
  v_effective : Schema.task -> effective;
  v_state : Wstate.path -> Wstate.task_state option;
  v_chosen : Wstate.path -> Wstate.chosen option;
  v_marks : Wstate.path -> (string * (string * Value.obj) list) list;
  v_repeat : Wstate.path -> (string * (string * Value.obj) list) option;
  v_timer_fired : Wstate.path -> set:string -> bool;
  v_external : string -> Value.obj option;
  v_running : bool;  (* instance status is Wf_running *)
}

(* no record = implicit Waiting, attempt 1 *)

let waiting_attempt v path =
  match v.v_state path with
  | None -> Some 1
  | Some (Wstate.Waiting { attempt }) -> Some attempt
  | Some (Wstate.Running _ | Wstate.Done _ | Wstate.Failed _) -> None

let running_attempt v path =
  match v.v_state path with Some (Wstate.Running { attempt; _ }) -> attempt | _ -> 1

(* all but the last path segment, in a single pass *)
let rec parent_path = function [] | [ _ ] -> [] | seg :: rest -> seg :: parent_path rest

(* A task can only make progress while every enclosing compound scope
   is still open (Running) and the instance itself is running. *)
let rec scope_open v path =
  match path with
  | [] | [ _ ] -> true
  | _ -> (
    let parent = parent_path path in
    match v.v_state parent with
    | Some (Wstate.Running _) -> scope_open v parent
    | _ -> false)

let task_live v path = v.v_running && scope_open v path

(* --- schema navigation (through dynamically bound sub-workflows) --- *)

let rec find_node ~effective (task : Schema.task) = function
  | [] -> Some task
  | name :: rest -> (
    match effective task with
    | E_compound { children; _ } -> (
      match List.find_opt (fun (c : Schema.task) -> c.Schema.name = name) children with
      | Some child -> find_node ~effective child rest
      | None -> None)
    | E_fn _ | E_missing _ -> None)

(* --- candidate selection (push-based incremental scans) --- *)

(* A scan pass visits the whole tree; [sel] decides which nodes are
   actually (re-)evaluated. [sel_cand path] — this node's readiness may
   have changed since the last pass, evaluate it. [sel_desc path] — some
   strict descendant is a candidate, so descend through this Running
   scope even if the scope itself is not a candidate. The full scan uses
   the constant-true selector. *)
type sel = { sel_cand : string -> bool; sel_desc : string -> bool }

let sel_all = { sel_cand = (fun _ -> true); sel_desc = (fun _ -> true) }

(* --- availability --- *)

type ctx = {
  c_view : view;
  c_sel : sel;
  c_scope : Wstate.path;
  c_scope_key : string;  (* path_to_string c_scope, threaded to avoid re-concat *)
  c_enclosing : string option;
  c_scope_set : string option;
  c_scope_inputs : (string * Value.obj) list;
  c_siblings : Schema.task list;
}

(* [path_to_string (scope @ [name])] in one allocation; the scan pass
   computes this once per visited node, so it must not build the
   intermediate path list or concat chain. *)
let child_key parent name =
  if parent = "" then name
  else begin
    let lp = String.length parent and ln = String.length name in
    let b = Bytes.create (lp + 1 + ln) in
    Bytes.blit_string parent 0 b 0 lp;
    Bytes.set b lp '/';
    Bytes.blit_string name 0 b (lp + 1) ln;
    Bytes.unsafe_to_string b
  end

let is_sibling ctx name = List.exists (fun (s : Schema.task) -> s.Schema.name = name) ctx.c_siblings

let mark_objects ctx path oc = List.assoc_opt oc (ctx.c_view.v_marks path)

let obj_source_value ctx (os : Schema.obj_source) =
  let sibling = is_sibling ctx os.Schema.s_task in
  if (not sibling) && ctx.c_enclosing = Some os.Schema.s_task then
    match os.Schema.s_cond with
    | Schema.C_input set when ctx.c_scope_set = Some set ->
      List.assoc_opt os.Schema.s_obj ctx.c_scope_inputs
    | Schema.C_input _ | Schema.C_output _ | Schema.C_any -> None
  else if not sibling then None
  else begin
    let path = ctx.c_scope @ [ os.Schema.s_task ] in
    let v = ctx.c_view in
    match os.Schema.s_cond with
    | Schema.C_output oc -> (
      match v.v_state path with
      | Some (Wstate.Done { output; objects; _ }) when output = oc ->
        List.assoc_opt os.Schema.s_obj objects
      | _ -> (
        match mark_objects ctx path oc with
        | Some objects -> List.assoc_opt os.Schema.s_obj objects
        | None -> (
          match v.v_repeat path with
          | Some (out, objects) when out = oc -> List.assoc_opt os.Schema.s_obj objects
          | Some _ | None -> None)))
    | Schema.C_input set -> (
      match v.v_chosen path with
      | Some c when c.Wstate.c_set = set -> List.assoc_opt os.Schema.s_obj c.Wstate.c_inputs
      | Some _ | None -> None)
    | Schema.C_any -> (
      let from_marks () =
        List.find_map (fun (_, objects) -> List.assoc_opt os.Schema.s_obj objects) (v.v_marks path)
      in
      match v.v_state path with
      | Some (Wstate.Done { objects; kind; _ }) when kind <> Ast.Repeat_outcome -> (
        match List.assoc_opt os.Schema.s_obj objects with
        | Some value -> Some value
        | None -> from_marks ())
      | _ -> from_marks ())
  end

let notif_satisfied ctx (ns : Schema.notif_source) =
  let sibling = is_sibling ctx ns.Schema.n_task in
  if (not sibling) && ctx.c_enclosing = Some ns.Schema.n_task then
    match ns.Schema.n_cond with
    | Schema.C_input set -> ctx.c_scope_set = Some set
    | Schema.C_output _ -> false
    | Schema.C_any -> true
  else if not sibling then false
  else begin
    let path = ctx.c_scope @ [ ns.Schema.n_task ] in
    let v = ctx.c_view in
    match ns.Schema.n_cond with
    | Schema.C_output oc -> (
      match v.v_state path with
      | Some (Wstate.Done { output; _ }) when output = oc -> true
      | _ -> (
        mark_objects ctx path oc <> None
        || match v.v_repeat path with Some (out, _) -> out = oc | None -> false))
    | Schema.C_input set -> (
      match v.v_chosen path with Some c -> c.Wstate.c_set = set | None -> false)
    | Schema.C_any -> (
      match v.v_state path with
      | Some (Wstate.Done { kind; _ }) -> kind <> Ast.Repeat_outcome
      | _ -> false)
  end

let notif_groups_satisfied ctx groups =
  List.for_all (fun group -> List.exists (notif_satisfied ctx) group) groups

let timer_class = "Timer"

let try_input_set ctx ~path (s : Schema.input_set) =
  if not (notif_groups_satisfied ctx s.Schema.is_notifications) then `No
  else begin
    let resolve (io : Schema.input_object) =
      match io.Schema.io_sources with
      | [] ->
        if io.Schema.io_class = timer_class then
          if ctx.c_view.v_timer_fired path ~set:s.Schema.is_name then
            Some (io.Schema.io_name, Value.obj ~cls:timer_class Value.Unit)
          else None
        else if ctx.c_enclosing = None then
          Option.map (fun v -> (io.Schema.io_name, v)) (ctx.c_view.v_external io.Schema.io_name)
        else None
      | sources ->
        Option.map (fun v -> (io.Schema.io_name, v)) (List.find_map (obj_source_value ctx) sources)
    in
    let resolved = List.map resolve s.Schema.is_objects in
    if List.for_all Option.is_some resolved then `Yes (s.Schema.is_name, List.map Option.get resolved)
    else begin
      let pending_timer =
        List.exists2
          (fun (io : Schema.input_object) r ->
            r = None && io.Schema.io_sources = [] && io.Schema.io_class = timer_class)
          s.Schema.is_objects resolved
      in
      if pending_timer then `Arm_timer s.Schema.is_name else `No
    end
  end

(* --- actions --- *)

type action =
  | Start of {
      a_path : Wstate.path;
      a_task : Schema.task;
      a_set : string;
      a_inputs : (string * Value.obj) list;
      a_attempt : int;
    }
  | Fire_mark of { a_path : Wstate.path; a_name : string; a_objects : (string * Value.obj) list }
  | Do_repeat of {
      a_path : Wstate.path;
      a_name : string;
      a_objects : (string * Value.obj) list;
      a_attempt : int;
    }
  | Complete of {
      a_path : Wstate.path;
      a_name : string;
      a_kind : Ast.output_kind;
      a_objects : (string * Value.obj) list;
      a_attempt : int;
    }
  | Fail_task of { a_path : Wstate.path; a_reason : string }
  | Arm_timer of { a_path : Wstate.path; a_set : string; a_task : Schema.task; a_attempt : int }

let binding_ready ctx (b : Schema.binding) =
  if not (notif_groups_satisfied ctx b.Schema.b_notifications) then None
  else begin
    let resolve (name, sources) =
      Option.map (fun v -> (name, v)) (List.find_map (obj_source_value ctx) sources)
    in
    let resolved = List.map resolve b.Schema.b_objects in
    if List.for_all Option.is_some resolved then Some (List.map Option.get resolved) else None
  end

(* One scan pass; actions come back in declaration order. Nodes that are
   not candidates per [ctx.c_sel] are skipped — sound because a
   non-candidate's readiness cannot have changed since the previous
   pass, when it was either acted upon or found unready. *)
let rec scan_task ~ctx (task : Schema.task) acc =
  let key = child_key ctx.c_scope_key task.Schema.name in
  (* Selector check before any state lookup: a node that is neither a
     candidate nor an ancestor of one is skipped in O(1) regardless of
     its state, so wide clean scopes cost two table probes per child. *)
  if not (ctx.c_sel.sel_cand key || ctx.c_sel.sel_desc key) then acc
  else begin
    let v = ctx.c_view in
    let path = ctx.c_scope @ [ task.Schema.name ] in
    match v.v_state path with
    | Some (Wstate.Done _ | Wstate.Failed _) -> acc
    | None | Some (Wstate.Waiting _) ->
      if ctx.c_sel.sel_cand key then scan_waiting ~ctx task path acc else acc
    | Some (Wstate.Running _) -> (
      match v.v_effective task with
      | E_compound { children; bindings; alias } ->
        scan_scope ~v ~sel:ctx.c_sel ~path ~key ~children ~bindings ~alias acc
      | E_fn _ | E_missing _ -> acc)
  end

and scan_waiting ~ctx task path acc =
  match waiting_attempt ctx.c_view path with
  | None -> acc
  | Some attempt ->
    let fold acc (s : Schema.input_set) =
      match acc with
      | `Started _ -> acc
      | `Pending timers -> (
        match try_input_set ctx ~path s with
        | `Yes (set, inputs) -> `Started (set, inputs)
        | `Arm_timer set -> `Pending (set :: timers)
        | `No -> `Pending timers)
    in
    (match List.fold_left fold (`Pending []) task.Schema.inputs with
    | `Started (set, inputs) ->
      Start { a_path = path; a_task = task; a_set = set; a_inputs = inputs; a_attempt = attempt }
      :: acc
    | `Pending timers ->
      List.fold_left
        (fun acc set -> Arm_timer { a_path = path; a_set = set; a_task = task; a_attempt = attempt } :: acc)
        acc timers)

and scan_scope ~v ~sel ~path ~key ~children ~bindings ~alias acc =
  let chosen = v.v_chosen path in
  let ctx =
    {
      c_view = v;
      c_sel = sel;
      c_scope = path;
      c_scope_key = key;
      c_enclosing = Some alias;
      c_scope_set = Option.map (fun c -> c.Wstate.c_set) chosen;
      c_scope_inputs = (match chosen with Some c -> c.Wstate.c_inputs | None -> []);
      c_siblings = children;
    }
  in
  let attempt = running_attempt v path in
  (* binding evaluation only when the scope itself is a candidate: if it
     is not, no binding input changed since the last pass, so none can
     have become ready (and none was ready then, or it would have fired
     and closed the scope) *)
  let self = sel.sel_cand key in
  let ready kinds =
    if not self then None
    else
      List.find_map
        (fun (b : Schema.binding) ->
          if List.mem b.Schema.b_kind kinds then
            Option.map (fun objects -> (b, objects)) (binding_ready ctx b)
          else None)
        bindings
  in
  match ready [ Ast.Outcome; Ast.Abort_outcome ] with
  | Some (b, objects) ->
    Complete
      { a_path = path; a_name = b.Schema.b_name; a_kind = b.Schema.b_kind; a_objects = objects; a_attempt = attempt }
    :: acc
  | None -> (
    match ready [ Ast.Repeat_outcome ] with
    | Some (b, objects) ->
      Do_repeat { a_path = path; a_name = b.Schema.b_name; a_objects = objects; a_attempt = attempt + 1 }
      :: acc
    | None ->
      let acc =
        if not self then acc
        else begin
          let fired = v.v_marks path in
          List.fold_left
            (fun acc (b : Schema.binding) ->
              if b.Schema.b_kind = Ast.Mark && not (List.mem_assoc b.Schema.b_name fired) then
                match binding_ready ctx b with
                | Some objects ->
                  Fire_mark { a_path = path; a_name = b.Schema.b_name; a_objects = objects } :: acc
                | None -> acc
              else acc)
            acc bindings
        end
      in
      List.fold_left (fun acc child -> scan_task ~ctx child acc) acc children)

let scan_sel sel v ~root =
  let root_ctx =
    {
      c_view = v;
      c_sel = sel;
      c_scope = [];
      c_scope_key = "";
      c_enclosing = None;
      c_scope_set = None;
      c_scope_inputs = [];
      c_siblings = [ root ];
    }
  in
  List.rev (scan_task ~ctx:root_ctx root [])

let scan v ~root = scan_sel sel_all v ~root

(* --- the reverse-dependency index --- *)

(* Built once per instance from the (expanded) schema: for every store
   path whose records can change, the set of paths whose readiness that
   change can affect. Edges, for a compound scope P with children C and
   output bindings B:
   - P -> P/c for every child c: starting, repeating or re-choosing the
     scope re-evaluates every constituent (this also covers enclosing
     [C_input] references, which read the scope's chosen record);
   - P/s -> P/c whenever child c's input sets name sibling s as an
     object or notification source;
   - P/s -> P whenever a binding in B names sibling s.
   Dirty paths are always candidates themselves, so no self edges. *)
type index = { idx_dependents : (string, Wstate.path list) Hashtbl.t }

let build_index ~effective (root : Schema.task) =
  let tbl : (string, Wstate.path list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_edge src dst =
    let key = Wstate.path_to_string src in
    match Hashtbl.find_opt tbl key with
    | Some deps -> if not (List.mem dst !deps) then deps := dst :: !deps
    | None -> Hashtbl.add tbl key (ref [ dst ])
  in
  let rec walk path (task : Schema.task) =
    match effective task with
    | E_fn _ | E_missing _ -> ()
    | E_compound { children; bindings; _ } ->
      let sibling name =
        List.exists (fun (c : Schema.task) -> c.Schema.name = name) children
      in
      let src_edge dst name = if sibling name then add_edge (path @ [ name ]) dst in
      List.iter
        (fun (c : Schema.task) ->
          let cpath = path @ [ c.Schema.name ] in
          add_edge path cpath;
          List.iter
            (fun (s : Schema.input_set) ->
              List.iter
                (fun (io : Schema.input_object) ->
                  List.iter
                    (fun (os : Schema.obj_source) -> src_edge cpath os.Schema.s_task)
                    io.Schema.io_sources)
                s.Schema.is_objects;
              List.iter
                (List.iter (fun (ns : Schema.notif_source) -> src_edge cpath ns.Schema.n_task))
                s.Schema.is_notifications)
            c.Schema.inputs;
          walk cpath c)
        children;
      List.iter
        (fun (b : Schema.binding) ->
          List.iter
            (fun ((_, sources) : string * Schema.obj_source list) ->
              List.iter (fun (os : Schema.obj_source) -> src_edge path os.Schema.s_task) sources)
            b.Schema.b_objects;
          List.iter
            (List.iter (fun (ns : Schema.notif_source) -> src_edge path ns.Schema.n_task))
            b.Schema.b_notifications)
        bindings
  in
  walk [ root.Schema.name ] root;
  let idx_dependents = Hashtbl.create (Hashtbl.length tbl) in
  Hashtbl.iter (fun key deps -> Hashtbl.add idx_dependents key !deps) tbl;
  { idx_dependents }

(* --- dirty sets --- *)

type dirty = All | Paths of Wstate.path list

let no_dirty = Paths []

let add_dirty d paths = match d with All -> All | Paths ps -> Paths (paths @ ps)

let is_clean = function Paths [] -> true | All | Paths _ -> false

let scan_from idx v ~root ~dirty =
  match dirty with
  | All -> scan v ~root
  | Paths [] -> []
  | Paths ps ->
    (* candidates: the dirty paths plus their indexed dependents; the
       walker descends into a Running scope only when the scope itself
       is a candidate or a strict ancestor of one *)
    let cand = Hashtbl.create 16 in
    List.iter
      (fun p ->
        let key = Wstate.path_to_string p in
        Hashtbl.replace cand key ();
        match Hashtbl.find_opt idx.idx_dependents key with
        | Some deps ->
          List.iter (fun d -> Hashtbl.replace cand (Wstate.path_to_string d) ()) deps
        | None -> ())
      ps;
    let within = Hashtbl.create 16 in
    Hashtbl.iter
      (fun key () ->
        String.iteri (fun i c -> if c = '/' then Hashtbl.replace within (String.sub key 0 i) ()) key)
      cand;
    let sel = { sel_cand = Hashtbl.mem cand; sel_desc = Hashtbl.mem within } in
    scan_sel sel v ~root

(* --- output shaping and implementation kv helpers --- *)

let wrap_outputs (task : Schema.task) ~output objects =
  match Schema.output_named task output with
  | None -> List.map (fun (n, v) -> (n, Value.obj ~cls:"?" v)) objects
  | Some out ->
    List.map
      (fun (name, cls) ->
        let payload = match List.assoc_opt name objects with Some v -> v | None -> Value.Unit in
        (name, Value.obj ~cls payload))
      out.Schema.out_objects

let impl_ms (task : Schema.task) ~key =
  match List.assoc_opt key task.Schema.impl with
  | Some ms -> int_of_string_opt ms
  | None -> None

(* "priority" implementation binding (paper §4.3's keyword list):
   higher-priority ready tasks are dispatched first within a pass. *)
let impl_priority (task : Schema.task) =
  match List.assoc_opt "priority" task.Schema.impl with
  | Some n -> ( match int_of_string_opt n with Some n -> n | None -> 0)
  | None -> 0

let impl_abort_retries (task : Schema.task) =
  match List.assoc_opt "retries" task.Schema.impl with
  | Some n -> ( match int_of_string_opt n with Some n -> n | None -> 0)
  | None -> 0

(* Dispatch higher-priority starts first (stable for equal priority);
   non-start actions keep their scan order and commit in the same
   transaction regardless. *)
let prioritise actions =
  let starts, rest = List.partition (function Start _ -> true | _ -> false) actions in
  let starts =
    List.stable_sort
      (fun a b ->
        match (a, b) with
        | Start { a_task = x; _ }, Start { a_task = y; _ } ->
          compare (impl_priority y) (impl_priority x)
        | _ -> 0)
      starts
  in
  rest @ starts

(* --- resolved recovery policy --- *)

(* The compiled Schema.policy merged with the engine's config-seeded
   defaults into one executable record. Attempt numbering is the durable
   per-path counter already persisted in [Wstate.Running]: the ranked
   implementation codes partition the attempt axis into bands of
   [rp_per_code] attempts each, so the code for any attempt — and hence
   which alternative a recovered engine must dispatch — is a pure
   function of the persisted counter. *)
type rpolicy = {
  rp_codes : string list;  (* ranked codes: primary, alternatives, substitute *)
  rp_per_code : int;  (* attempts allowed per code = 1 + retry count *)
  rp_base_total : int;  (* failure-driven ceiling: primary + alternatives *)
  rp_grand_total : int;  (* absolute ceiling, incl. the substitute band *)
  rp_backoff_ms : int;
  rp_jitter_ms : int;
  rp_backoff_max_ms : int option;
  rp_timeout_ms : int option;
  rp_on_timeout : Ast.timeout_action;
  rp_compensate : string option;
  rp_declared : bool;
}

let resolve_policy (task : Schema.task) ~primary ~default_max_attempts =
  let p = task.Schema.policy in
  if not p.Schema.p_declared then
    {
      rp_codes = [ primary ];
      rp_per_code = default_max_attempts;
      rp_base_total = default_max_attempts;
      rp_grand_total = default_max_attempts;
      rp_backoff_ms = 0;
      rp_jitter_ms = 0;
      rp_backoff_max_ms = None;
      rp_timeout_ms = None;
      rp_on_timeout = Ast.Ta_abort;
      rp_compensate = None;
      rp_declared = false;
    }
  else begin
    let substitute =
      match p.Schema.p_on_timeout with Ast.Ta_substitute c -> [ c ] | _ -> []
    in
    let base = primary :: p.Schema.p_alternatives in
    let per = match p.Schema.p_retry with Some n -> 1 + n | None -> default_max_attempts in
    {
      rp_codes = base @ substitute;
      rp_per_code = per;
      rp_base_total = per * List.length base;
      rp_grand_total = per * (List.length base + List.length substitute);
      rp_backoff_ms = p.Schema.p_backoff_ms;
      rp_jitter_ms = p.Schema.p_jitter_ms;
      rp_backoff_max_ms = p.Schema.p_backoff_max_ms;
      rp_timeout_ms = p.Schema.p_timeout_ms;
      rp_on_timeout = p.Schema.p_on_timeout;
      rp_compensate = p.Schema.p_compensate;
      rp_declared = true;
    }
  end

let policy_band rp ~attempt = (attempt - 1) / rp.rp_per_code

let policy_code rp ~attempt =
  let band = min (policy_band rp ~attempt) (List.length rp.rp_codes - 1) in
  List.nth rp.rp_codes band

(* [attempt] is the attempt that just failed. The substitute band lies
   beyond [rp_base_total] and is only entered by a timeout jump, so the
   failure-driven ceiling depends on which side the counter is on. *)
let policy_exhausted rp ~attempt =
  if attempt > rp.rp_base_total then attempt >= rp.rp_grand_total
  else attempt >= rp.rp_base_total

(* Delay before dispatching [attempt]: the first attempt of every band
   is immediate; the k-th retry within a band waits base * 2^(k-1),
   capped. The shift is clamped so huge retry counts cannot overflow. *)
let policy_backoff_ms rp ~attempt =
  let pos = ((attempt - 1) mod rp.rp_per_code) + 1 in
  if pos <= 1 || rp.rp_backoff_ms <= 0 then 0
  else begin
    let d = rp.rp_backoff_ms * (1 lsl min 20 (pos - 2)) in
    match rp.rp_backoff_max_ms with Some m -> min m d | None -> d
  end

(* The jitter is a pure hash of the identifying coordinates, NOT a draw
   from a runtime rng: rng draws would depend on scheduling interleaving
   and break same-seed reproducibility across schedules. [salt] is the
   engine-stable seed component, so distinct engines (and distinct
   seeds) spread differently while one run always reproduces itself. *)
let policy_jitter_ms rp ~salt ~iid ~path ~attempt =
  if rp.rp_jitter_ms <= 0 then 0
  else begin
    let h = ref 5381 in
    let mix s = String.iter (fun c -> h := ((!h * 33) + Char.code c) land 0x3FFFFFFF) s in
    mix salt;
    mix "\x00";
    mix iid;
    mix "\x00";
    List.iter (fun seg -> mix seg; mix "/") path;
    mix (string_of_int attempt);
    !h mod rp.rp_jitter_ms
  end

(* Backoff plus its deterministic spread; the first attempt of a band is
   still immediate (no delay to spread). *)
let policy_backoff_jittered_ms rp ~salt ~iid ~path ~attempt =
  match policy_backoff_ms rp ~attempt with
  | 0 -> 0
  | base -> base + policy_jitter_ms rp ~salt ~iid ~path ~attempt

(* First attempt of the band after [attempt]'s (a timeout-alternative
   jump target); the caller checks it against [rp_base_total]. *)
let policy_next_band_start rp ~attempt = ((policy_band rp ~attempt + 1) * rp.rp_per_code) + 1

(* First attempt of the trailing substitute band, when one exists. *)
let policy_substitute_start rp =
  match rp.rp_on_timeout with
  | Ast.Ta_substitute _ when rp.rp_declared -> Some (rp.rp_base_total + 1)
  | _ -> None

(* --- failure mapping (Fig 3) --- *)

(* A system failure maps onto an abort outcome when the taskclass
   declares one; otherwise the task fails outright. *)
let fail_action (task : Schema.task) ~path ~attempt ~reason =
  let abort_out =
    List.find_opt
      (fun (o : Schema.output) -> o.Schema.out_kind = Ast.Abort_outcome)
      task.Schema.outputs
  in
  match abort_out with
  | Some out ->
    Complete
      {
        a_path = path;
        a_name = out.Schema.out_name;
        a_kind = Ast.Abort_outcome;
        a_objects = wrap_outputs task ~output:out.Schema.out_name [];
        a_attempt = attempt;
      }
  | None -> Fail_task { a_path = path; a_reason = reason }

(* --- report classification (Fig 3's transition rules) --- *)

let impl_error_prefix = "$impl-error"

type decision =
  | D_retry
  | D_auto_restart
  | D_fail of string
  | D_apply of action
  | D_ignore

let report_decision v ~(task : Schema.task) ~path ~attempt ~is_mark ~output ~objects =
  if String.starts_with ~prefix:impl_error_prefix output then D_retry
  else
    match Schema.output_named task output with
    | None -> D_fail (Printf.sprintf "implementation produced undeclared output %s" output)
    | Some out -> (
      let objects = wrap_outputs task ~output:out.Schema.out_name objects in
      match out.Schema.out_kind with
      | Ast.Mark when is_mark ->
        if List.mem_assoc out.Schema.out_name (v.v_marks path) then D_ignore
        else D_apply (Fire_mark { a_path = path; a_name = out.Schema.out_name; a_objects = objects })
      | Ast.Mark ->
        D_fail (Printf.sprintf "implementation finished in mark output %s" out.Schema.out_name)
      | Ast.Outcome | Ast.Abort_outcome | Ast.Repeat_outcome when is_mark ->
        D_fail (Printf.sprintf "mark report names non-mark output %s" out.Schema.out_name)
      | Ast.Abort_outcome when v.v_marks path <> [] ->
        (* Fig 3: a task that released a mark may not abort *)
        D_apply
          (Fail_task { a_path = path; a_reason = "abort outcome after mark (protocol violation)" })
      | Ast.Abort_outcome when attempt <= impl_abort_retries task -> D_auto_restart
      | Ast.Repeat_outcome ->
        D_apply
          (Do_repeat
             { a_path = path; a_name = out.Schema.out_name; a_objects = objects; a_attempt = attempt + 1 })
      | Ast.Outcome | Ast.Abort_outcome ->
        D_apply
          (Complete
             {
               a_path = path;
               a_name = out.Schema.out_name;
               a_kind = out.Schema.out_kind;
               a_objects = objects;
               a_attempt = attempt;
             }))
