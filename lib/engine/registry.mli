(** Implementation registry: run-time binding of the [code] names
    used in scripts to executable implementations.

    Scripts never contain code — a task instance names its
    implementation abstractly ([implementation, e.g. code is X]) and
    the binding to an actual implementation happens at instantiation
    time (paper §3). Rebinding a name is the paper's "online upgrade":
    tasks dispatched after the rebind run the new implementation.

    An implementation maps the chosen input set to an execution {e plan}:
    a list of steps (simulated work, early-released marks) and a final
    result naming one of the taskclass's outputs. The engine classifies
    the result against the schema (outcome / abort outcome / repeat
    outcome) and enforces the transition rules of Fig 3. *)

type outcome = {
  output : string;  (** name of a declared output of the taskclass *)
  objects : (string * Value.t) list;  (** payload per declared output object *)
}

type step =
  | Work of Sim.time  (** simulated computation on the hosting node *)
  | Emit_mark of outcome  (** early release (non-atomic tasks only) *)

type plan = { steps : step list; finish : outcome }

type context = {
  attempt : int;  (** 1 for the first execution, +1 per retry/repeat *)
  input_set : string;  (** which input set fired *)
  inputs : (string * Value.obj) list;  (** object name → value *)
  rng : Rng.t;  (** deterministic per-execution randomness *)
}

type fn = context -> plan

(** What a code name is bound to. *)
type impl =
  | Fn of fn
  | Sub_workflow of Schema.task
      (** a compound task used as implementation (paper §4.3: the name
          of the implementation can refer to some script) *)

type t

val create : unit -> t

val bind : t -> code:string -> fn -> unit
(** Bind or rebind (online upgrade) a code name to a function. *)

val bind_script : t -> code:string -> Schema.task -> unit
(** Bind a code name to a compound-task schema. *)

val unbind : t -> code:string -> unit

val find : t -> code:string -> impl option

val names : t -> string list
(** Sorted. *)

(** {1 Plan helpers} *)

val finish : ?work:Sim.time -> string -> (string * Value.t) list -> plan
(** [finish ~work output objects] — a plan that computes for [work]
    (default 1ms) then terminates in [output]. *)

val const : ?work:Sim.time -> string -> (string * Value.t) list -> fn
(** An implementation ignoring its context. *)

val effective : t -> Schema.task -> Sched.effective
(** Resolve a task's body through the registry for the scheduler core:
    compound scope (inline or bound sub-workflow), leaf function, or a
    missing/ill-formed binding. *)
