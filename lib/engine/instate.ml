type t = {
  iid : string;
  mutable script_text : string;
  mutable schema : Schema.task;
  mutable status : Wstate.status;
  mutable external_inputs : (string * Value.obj) list;
  states : (string, Wstate.task_state) Hashtbl.t;
  chosen : (string, Wstate.chosen) Hashtbl.t;
  marks : (string, (string * (string * Value.obj) list) list) Hashtbl.t;
  repeats : (string, string * (string * Value.obj) list) Hashtbl.t;
  timers : (string, unit) Hashtbl.t;  (* fired; key = "path|set" *)
  timer_arms : (string, Sim.time) Hashtbl.t;  (* persisted deadlines; key = "path|set" *)
  timers_armed : (string, int) Hashtbl.t;  (* volatile; value = attempt armed for *)
  backoffs : (string, int * Sim.time) Hashtbl.t;  (* pending policy backoffs: attempt, fire_at *)
  compensated : (string, unit) Hashtbl.t;  (* aborts whose compensation is recorded *)
  mutable callbacks : (Wstate.status -> unit) list;
  mutable hseq : int;  (* next persistent-history index *)
  mutable dirty : bool;
  mutable inflight : bool;
  mutable concluding : bool;
  mutable pending : Sched.dirty;
      (* paths whose records changed since the last evaluation pass;
         the incremental pump consumes this as the scan_from seed *)
  mutable index : Sched.index option;
      (* cached reverse-dependency index; invalidated by reconfigure *)
}

let pkey = Wstate.path_to_string

let create ~iid ~script_text ~schema ~status ~external_inputs =
  {
    iid;
    script_text;
    schema;
    status;
    external_inputs;
    states = Hashtbl.create 32;
    chosen = Hashtbl.create 32;
    marks = Hashtbl.create 8;
    repeats = Hashtbl.create 8;
    timers = Hashtbl.create 8;
    timer_arms = Hashtbl.create 8;
    timers_armed = Hashtbl.create 8;
    backoffs = Hashtbl.create 4;
    compensated = Hashtbl.create 4;
    callbacks = [];
    hseq = 0;
    dirty = false;
    inflight = false;
    concluding = false;
    pending = Sched.All;  (* the first pass after (re)build is a full one *)
    index = None;
  }

(* Same identity and script, empty mirrors — for re-persisting a launch
   whose transaction was lost to a crash. *)
let reset orphan =
  {
    (create ~iid:orphan.iid ~script_text:orphan.script_text ~schema:orphan.schema
       ~status:Wstate.Wf_running ~external_inputs:orphan.external_inputs)
    with
    callbacks = orphan.callbacks;
    hseq = orphan.hseq;
  }

(* --- mirror accessors (no record = implicit Waiting, attempt 1) --- *)

let get_state inst path = Hashtbl.find_opt inst.states (pkey path)

let get_chosen inst path = Hashtbl.find_opt inst.chosen (pkey path)

let get_marks inst path =
  match Hashtbl.find_opt inst.marks (pkey path) with Some l -> l | None -> []

let get_repeat inst path = Hashtbl.find_opt inst.repeats (pkey path)

let timer_fired inst path ~set = Hashtbl.mem inst.timers (pkey path ^ "|" ^ set)

let get_backoff inst path = Hashtbl.find_opt inst.backoffs (pkey path)

let set_backoff inst path ~attempt ~fire_at =
  Hashtbl.replace inst.backoffs (pkey path) (attempt, fire_at)

let is_compensated inst path = Hashtbl.mem inst.compensated (pkey path)

let mark_compensated inst path = Hashtbl.replace inst.compensated (pkey path) ()

(* pending policy backoffs, for recovery to resume *)
let pending_backoffs inst =
  Hashtbl.fold
    (fun key (attempt, fire_at) acc ->
      (String.split_on_char '/' key, attempt, fire_at) :: acc)
    inst.backoffs []

let view inst ~effective =
  {
    Sched.v_effective = effective;
    v_state = get_state inst;
    v_chosen = get_chosen inst;
    v_marks = get_marks inst;
    v_repeat = get_repeat inst;
    v_timer_fired = (fun path ~set -> timer_fired inst path ~set);
    v_external = (fun name -> List.assoc_opt name inst.external_inputs);
    v_running = inst.status = Wstate.Wf_running;
  }

let meta inst ~status =
  {
    Wstate.m_script = inst.script_text;
    m_root = inst.schema.Schema.name;
    m_inputs = inst.external_inputs;
    m_status = status;
  }

let find_node inst ~effective path =
  match path with
  | root :: rest when root = inst.schema.Schema.name ->
    Sched.find_node ~effective inst.schema rest
  | _ -> None

(* Running leaf executions (tasks bound to an implementation function),
   with their persisted attempt and watchdog deadline. Recovery re-arms
   one watchdog per entry; a running instance with none and an
   unfinished root is quiescent (stuck). *)
let running_leaves inst ~effective =
  Hashtbl.fold
    (fun key state acc ->
      match state with
      | Wstate.Running { attempt; deadline; _ } -> (
        let path = String.split_on_char '/' key in
        match find_node inst ~effective path with
        | Some task -> (
          match effective task with
          | Sched.E_fn _ -> (path, task, attempt, deadline) :: acc
          | Sched.E_compound _ | Sched.E_missing _ -> acc)
        | None -> acc)
      | Wstate.Waiting _ | Wstate.Done _ | Wstate.Failed _ -> acc)
    inst.states []

(* --- subtree erasure (compound repeat) --- *)

(* store keys of every record strictly below [path], plus [path]'s own
   chosen and timer records (cleared when a compound repeats) *)
let subtree_keys inst path =
  let iid = inst.iid in
  let p = pkey path in
  let descendant other =
    String.length other > String.length p && String.sub other 0 (String.length p + 1) = p ^ "/"
  in
  let collect tbl mk acc =
    Hashtbl.fold (fun key _ acc -> if descendant key then mk key :: acc else acc) tbl acc
  in
  let split k = String.split_on_char '/' k in
  let acc = collect inst.states (fun k -> Wstate.key_task iid (split k)) [] in
  let acc = collect inst.chosen (fun k -> Wstate.key_chosen iid (split k)) acc in
  let acc = collect inst.marks (fun k -> Wstate.key_marks iid (split k)) acc in
  let acc = collect inst.repeats (fun k -> Wstate.key_repeat iid (split k)) acc in
  let collect_self tbl mk acc =
    Hashtbl.fold
      (fun key _ acc -> if descendant key || key = p then mk key :: acc else acc)
      tbl acc
  in
  let acc = collect_self inst.backoffs (fun k -> Wstate.key_backoff iid (split k)) acc in
  let acc = collect_self inst.compensated (fun k -> Wstate.key_comp iid (split k)) acc in
  let acc =
    Hashtbl.fold
      (fun key () acc ->
        match String.rindex_opt key '|' with
        | Some i ->
          let kpath = String.sub key 0 i in
          let set = String.sub key (i + 1) (String.length key - i - 1) in
          if descendant kpath || kpath = p then Wstate.key_timer iid (split kpath) ~set :: acc
          else acc
        | None -> acc)
      inst.timers acc
  in
  Hashtbl.fold
    (fun key _ acc ->
      match String.rindex_opt key '|' with
      | Some i ->
        let kpath = String.sub key 0 i in
        let set = String.sub key (i + 1) (String.length key - i - 1) in
        if descendant kpath || kpath = p then Wstate.key_timer_arm iid (split kpath) ~set :: acc
        else acc
      | None -> acc)
    inst.timer_arms acc

let wipe_subtree_mirror inst path =
  let p = pkey path in
  let descendant other =
    String.length other > String.length p && String.sub other 0 (String.length p + 1) = p ^ "/"
  in
  let purge tbl pred =
    let doomed = Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) tbl [] in
    List.iter (Hashtbl.remove tbl) doomed
  in
  purge inst.states descendant;
  purge inst.chosen (fun k -> descendant k || k = p);
  purge inst.marks descendant;
  purge inst.repeats descendant;
  purge inst.backoffs (fun k -> descendant k || k = p);
  purge inst.compensated (fun k -> descendant k || k = p);
  let timer_pred key =
    match String.rindex_opt key '|' with
    | Some i ->
      let kpath = String.sub key 0 i in
      descendant kpath || kpath = p
    | None -> false
  in
  purge inst.timers timer_pred;
  purge inst.timer_arms timer_pred;
  purge inst.timers_armed timer_pred

(* --- action -> transactional writes and history rows --- *)

(* every effectful action also appends one persistent history row in
   the same transaction — the durable audit log behind Fig 4's
   monitoring tools (volatile traces die with the process) *)
let history_write inst ~now ~kind ~detail =
  let n = inst.hseq in
  inst.hseq <- n + 1;
  (Wstate.key_history inst.iid n, Some (Wstate.encode_history (now, kind, detail)))

let action_history inst ~now = function
  | Sched.Arm_timer _ -> []
  | Sched.Start { a_path; a_attempt; _ } ->
    [ history_write inst ~now ~kind:"start" ~detail:(Printf.sprintf "%s (attempt %d)" (pkey a_path) a_attempt) ]
  | Sched.Fire_mark { a_path; a_name; _ } ->
    [ history_write inst ~now ~kind:"mark" ~detail:(pkey a_path ^ " " ^ a_name) ]
  | Sched.Do_repeat { a_path; a_name; _ } ->
    [ history_write inst ~now ~kind:"repeat" ~detail:(pkey a_path ^ " " ^ a_name) ]
  | Sched.Complete { a_path; a_name; _ } ->
    [ history_write inst ~now ~kind:"complete" ~detail:(pkey a_path ^ " -> " ^ a_name) ]
  | Sched.Fail_task { a_path; a_reason } ->
    [ history_write inst ~now ~kind:"task-failed" ~detail:(pkey a_path ^ ": " ^ a_reason) ]

let action_writes inst ~now ~deadline_of action =
  let iid = inst.iid in
  match action with
  | Sched.Arm_timer _ -> []
  | Sched.Start { a_path; a_task; a_set; a_inputs; a_attempt } ->
    let running =
      Wstate.Running
        { attempt = a_attempt; set = a_set; started = now; deadline = now + deadline_of a_task }
    in
    [
      (Wstate.key_task iid a_path, Some (Wstate.encode_task_state running));
      ( Wstate.key_chosen iid a_path,
        Some (Wstate.encode_chosen { Wstate.c_set = a_set; c_inputs = a_inputs }) );
    ]
  | Sched.Fire_mark { a_path; a_name; a_objects } ->
    let marks = get_marks inst a_path @ [ (a_name, a_objects) ] in
    [ (Wstate.key_marks iid a_path, Some (Wstate.encode_marks marks)) ]
  | Sched.Do_repeat { a_path; a_name; a_objects; a_attempt } ->
    [
      (Wstate.key_repeat iid a_path, Some (Wstate.encode_repeat (a_name, a_objects)));
      ( Wstate.key_task iid a_path,
        Some (Wstate.encode_task_state (Wstate.Waiting { attempt = a_attempt })) );
      (Wstate.key_chosen iid a_path, None);
    ]
    @ List.map (fun key -> (key, None)) (subtree_keys inst a_path)
  | Sched.Complete { a_path; a_name; a_kind; a_objects; a_attempt } ->
    let state =
      Wstate.Done { attempt = a_attempt; output = a_name; kind = a_kind; objects = a_objects }
    in
    [ (Wstate.key_task iid a_path, Some (Wstate.encode_task_state state)) ]
  | Sched.Fail_task { a_path; a_reason } ->
    [ (Wstate.key_task iid a_path, Some (Wstate.encode_task_state (Wstate.Failed a_reason))) ]

(* Mirror update only; the engine announces the corresponding events. *)
let apply_action_mirror inst ~now ~deadline_of action =
  match action with
  | Sched.Arm_timer _ -> ()
  | Sched.Start { a_path; a_task; a_set; a_inputs; a_attempt } ->
    Hashtbl.replace inst.states (pkey a_path)
      (Wstate.Running
         { attempt = a_attempt; set = a_set; started = now; deadline = now + deadline_of a_task });
    Hashtbl.replace inst.chosen (pkey a_path) { Wstate.c_set = a_set; c_inputs = a_inputs }
  | Sched.Fire_mark { a_path; a_name; a_objects } ->
    Hashtbl.replace inst.marks (pkey a_path) (get_marks inst a_path @ [ (a_name, a_objects) ])
  | Sched.Do_repeat { a_path; a_name; a_objects; a_attempt } ->
    Hashtbl.replace inst.repeats (pkey a_path) (a_name, a_objects);
    wipe_subtree_mirror inst a_path;
    Hashtbl.replace inst.states (pkey a_path) (Wstate.Waiting { attempt = a_attempt })
  | Sched.Complete { a_path; a_name; a_kind; a_objects; a_attempt } ->
    Hashtbl.replace inst.states (pkey a_path)
      (Wstate.Done { attempt = a_attempt; output = a_name; kind = a_kind; objects = a_objects })
  | Sched.Fail_task { a_path; a_reason } ->
    Hashtbl.replace inst.states (pkey a_path) (Wstate.Failed a_reason)

(* --- bounding memory after conclusion --- *)

(* Always safe once an instance has concluded: fired-timer records,
   armed-timer bookkeeping, the scan index and the pending set serve
   only a running evaluation pump. Separate from [release] because the
   mirror tables still back the introspection API. *)
let trim_concluded inst =
  Hashtbl.reset inst.timers;
  Hashtbl.reset inst.timer_arms;
  Hashtbl.reset inst.timers_armed;
  Hashtbl.reset inst.backoffs;
  Hashtbl.reset inst.compensated;
  inst.index <- None;
  inst.pending <- Sched.no_dirty

(* Eager full drop (engine config [retain_concluded = false]): the
   mirror tables go too, so a concluded instance costs O(1) resident
   words. Introspection (task_state / task_states / marks_of) then
   answers empty for the instance; the committed store keeps the durable
   records and history untouched. *)
let release inst =
  trim_concluded inst;
  Hashtbl.reset inst.states;
  Hashtbl.reset inst.chosen;
  Hashtbl.reset inst.marks;
  Hashtbl.reset inst.repeats;
  inst.external_inputs <- []

(* --- rebuilding mirrors from the committed store --- *)

(* [wf:I:<tag>:<remainder>] — fill the matching mirror table. [read]
   fetches the committed value of a full store key. *)
let load_committed inst ~read ~keys =
  let prefix = Wstate.task_prefix inst.iid in
  let load_key key =
    if String.starts_with ~prefix key then begin
      let rest = String.sub key (String.length prefix) (String.length key - String.length prefix) in
      match String.index_opt rest ':' with
      | None -> () (* meta / reconf *)
      | Some i -> (
        let tag = String.sub rest 0 i in
        let remainder = String.sub rest (i + 1) (String.length rest - i - 1) in
        let value () = Option.get (read key) in
        match tag with
        | "t" -> Hashtbl.replace inst.states remainder (Wstate.decode_task_state (value ()))
        | "c" -> Hashtbl.replace inst.chosen remainder (Wstate.decode_chosen (value ()))
        | "m" -> Hashtbl.replace inst.marks remainder (Wstate.decode_marks (value ()))
        | "r" -> Hashtbl.replace inst.repeats remainder (Wstate.decode_repeat (value ()))
        | "timer" -> (
          match String.rindex_opt remainder ':' with
          | Some j ->
            let kpath = String.sub remainder 0 j in
            let set = String.sub remainder (j + 1) (String.length remainder - j - 1) in
            Hashtbl.replace inst.timers (kpath ^ "|" ^ set) ()
          | None -> ())
        | "b" -> Hashtbl.replace inst.backoffs remainder (Wstate.decode_backoff (value ()))
        | "comp" -> Hashtbl.replace inst.compensated remainder ()
        | "h" ->
          (* history rows are read on demand; track the counter *)
          (match int_of_string_opt remainder with
          | Some n -> inst.hseq <- max inst.hseq (n + 1)
          | None -> ())
        | "timerarm" -> (
          match String.rindex_opt remainder ':' with
          | Some j -> (
            let kpath = String.sub remainder 0 j in
            let set = String.sub remainder (j + 1) (String.length remainder - j - 1) in
            match int_of_string_opt (value ()) with
            | Some deadline -> Hashtbl.replace inst.timer_arms (kpath ^ "|" ^ set) deadline
            | None -> ())
          | None -> ())
        | _ -> ())
    end
  in
  List.iter load_key keys
