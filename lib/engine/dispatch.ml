type t = {
  rpc : Rpc.t;
  node : Node.t;
  mgr : Txn.manager;
  participant : Participant.t;
  sim : Sim.t;
}

let create ~rpc ~node ~mgr ~participant =
  { rpc; node; mgr; participant; sim = Network.sim (Rpc.network rpc) }

let sim t = t.sim

let node_id t = Node.id t.node

let persist t writes k =
  let node = node_id t in
  let io =
    Txn.run t.mgr (fun txn ->
        List.iter
          (function
            | key, Some value -> Txn.write txn ~node ~key ~value
            | key, None -> Txn.delete txn ~node ~key)
          writes;
        Txn.return ())
  in
  io (function
    | Ok () -> k ()
    | Error e -> Sim.emit t.sim (Event.Txn_failed { detail = Txn.error_to_string e }))

let send_exec t ~host ~retries req k =
  Sim.emit t.sim
    (Event.Task_dispatched
       {
         path = Wstate.path_to_string req.Wfmsg.x_path;
         code = req.Wfmsg.x_code;
         host;
         attempt = req.Wfmsg.x_attempt;
       });
  Rpc.call t.rpc ~src:(node_id t) ~dst:host ~service:Wfmsg.service_exec
    ~body:(Wfmsg.enc_exec req) ~retries k

let committed_value t ~key = Participant.committed_value t.participant ~key

let committed_keys t = Participant.committed_keys t.participant

let committed_history t ~iid =
  let prefix = Printf.sprintf "wf:%s:h:" iid in
  let rows =
    List.filter_map
      (fun key ->
        if String.starts_with ~prefix key then
          Option.map Wstate.decode_history (committed_value t ~key)
        else None)
      (committed_keys t)
  in
  List.sort compare rows

let on_apply t f = Participant.on_apply t.participant f

let compact t =
  Participant.checkpoint t.participant;
  Txn.compact t.mgr
