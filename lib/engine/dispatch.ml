type t = {
  rpc : Rpc.t;
  node : Node.t;
  mgr : Txn.manager;
  participant : Participant.t;
  sim : Sim.t;
  overhead : Sim.time;  (** engine CPU cost per dispatch; 0 = free *)
  mutable busy_until : Sim.time;
      (* dispatches are serialised through the engine's one scheduler
         thread: each costs [overhead] of engine time, so concurrent
         dispatch demand queues here (what the cluster bench measures) *)
  mutable incarnation : int;
  batch : bool;
  mutable pending : ((string * string option) list * (unit -> unit)) list;
      (* queued persist requests awaiting the flush event, newest first *)
  mutable flush_armed : bool;
  ready : (unit -> unit) Queue.t;
      (* dispatches awaiting their slice of engine CPU: one chained
         drain event pops the head every [overhead], instead of one
         pre-scheduled simulator event per dispatch *)
  mutable draining : bool;
}

let create ?(overhead = 0) ?(batch = true) ~rpc ~node ~mgr ~participant () =
  let t =
    {
      rpc;
      node;
      mgr;
      participant;
      sim = Network.sim (Rpc.network rpc);
      overhead;
      busy_until = 0;
      incarnation = 0;
      batch;
      pending = [];
      flush_armed = false;
      ready = Queue.create ();
      draining = false;
    }
  in
  Node.on_crash node (fun () ->
      t.incarnation <- t.incarnation + 1;
      t.busy_until <- 0;
      t.pending <- [];
      t.flush_armed <- false;
      Queue.clear t.ready;
      t.draining <- false);
  t

let sim t = t.sim

let node_id t = Node.id t.node

let persist_now t writes k =
  let node = node_id t in
  let io =
    Txn.run t.mgr (fun txn ->
        List.iter
          (function
            | key, Some value -> Txn.write txn ~node ~key ~value
            | key, None -> Txn.delete txn ~node ~key)
          writes;
        Txn.return ())
  in
  io (function
    | Ok () -> k ()
    | Error e ->
      Sim.emit t.sim ~src:(node_id t) (Event.Txn_failed { detail = Txn.error_to_string e }))

(* Batched persistence: requests issued within one simulation timestep
   (one evaluation-pump pass, plus whatever else fires at that instant)
   coalesce into a single transaction. Later writes to the same key win,
   matching the order the requests would have committed individually;
   the continuations run in request order after the one commit. *)
let flush t =
  t.flush_armed <- false;
  let requests = List.rev t.pending in
  t.pending <- [];
  match requests with
  | [] -> ()
  | [ (writes, k) ] -> persist_now t writes k
  | _ ->
    let writes = List.concat_map fst requests in
    Sim.emit t.sim ~src:(node_id t)
      (Event.Persist_batched { requests = List.length requests; writes = List.length writes });
    persist_now t writes (fun () -> List.iter (fun (_, k) -> k ()) requests)

let persist t writes k =
  if not t.batch then persist_now t writes k
  else begin
    t.pending <- (writes, k) :: t.pending;
    if not t.flush_armed then begin
      t.flush_armed <- true;
      let inc = t.incarnation in
      ignore
        (Sim.schedule t.sim ~delay:0 (fun () ->
             (* a crash in between cleared the queue and bumped the
                incarnation; this stale flush must not touch the queue
                refilled after recovery *)
             if t.incarnation = inc then flush t))
    end
  end

(* The intrusive ready deque: enqueues are O(1); one drain event is in
   flight at a time, popping the head every [overhead] — timing is
   identical to the historical per-dispatch busy-cursor scheduling
   (k-th dispatch fires at max(enqueue, previous fire) + overhead), but
   the simulator heap holds one event per engine, not one per queued
   dispatch. *)
let rec drain t () =
  match Queue.take_opt t.ready with
  | None -> t.draining <- false
  | Some fire ->
    t.busy_until <- Sim.now t.sim;
    if Node.up t.node then fire ();
    if Queue.is_empty t.ready then t.draining <- false else schedule_drain t t.overhead

and schedule_drain t delay =
  let inc = t.incarnation in
  ignore (Sim.schedule t.sim ~delay (fun () -> if t.incarnation = inc then drain t ()))

let fire_exec t ~host ~retries req k =
  Sim.emit t.sim ~src:(node_id t)
    (Event.Task_dispatched
       {
         path = Wstate.path_to_string req.Wfmsg.x_path;
         code = req.Wfmsg.x_code;
         host;
         attempt = req.Wfmsg.x_attempt;
       });
  Rpc.call t.rpc ~src:(node_id t) ~dst:host
    ~service:(Wfmsg.service_exec ~engine:(node_id t))
    ~body:(Wfmsg.enc_exec req) ~retries k

let send_exec t ~host ~retries req k =
  (* overhead = 0 dispatches immediately — no deferred-fire closure, no
     queue traffic on the common bench/explore configuration *)
  if t.overhead = 0 then fire_exec t ~host ~retries req k
  else begin
    Queue.push (fun () -> fire_exec t ~host ~retries req k) t.ready;
    if not t.draining then begin
      t.draining <- true;
      let now = Sim.now t.sim in
      let start = max now t.busy_until in
      schedule_drain t (start + t.overhead - now)
    end
  end

let ready_len t = Queue.length t.ready

let committed_value t ~key = Participant.committed_value t.participant ~key

let committed_keys t = Participant.committed_keys t.participant

let committed_history t ~iid =
  let prefix = Printf.sprintf "wf:%s:h:" iid in
  let rows =
    List.filter_map
      (fun key ->
        if String.starts_with ~prefix key then
          Option.map Wstate.decode_history (committed_value t ~key)
        else None)
      (committed_keys t)
  in
  List.sort compare rows

let on_apply t f = Participant.on_apply t.participant f

let compact t =
  Participant.checkpoint t.participant;
  Txn.compact t.mgr
