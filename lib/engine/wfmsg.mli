(** RPC message codecs between the execution service and task hosts. *)

val service_exec : engine:string -> string
(** engine → host: start executing a task implementation. Namespaced by
    the engine's node id so one host node can execute tasks for several
    engines at once. *)

val service_done : engine:string -> string
(** host → engine: a task finished (outcome/abort/repeat name + objects) *)

val service_mark : engine:string -> string
(** host → engine: a task released a mark early *)

type exec_req = {
  x_iid : string;
  x_path : string list;
  x_attempt : int;
  x_code : string;
  x_set : string;
  x_inputs : (string * Value.obj) list;
}

type report = {
  r_iid : string;
  r_path : string list;
  r_attempt : int;
  r_output : string;
  r_objects : (string * Value.t) list;
}

val enc_exec : exec_req -> string

val dec_exec : string -> exec_req

val enc_report : report -> string

val dec_report : string -> report

val reply_ok : string

val reply_no_impl : string
