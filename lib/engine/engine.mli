(** The workflow execution service (paper §3, Fig 4).

    One engine runs on a node of the simulated cluster and coordinates
    workflow instances: it records inter-task dependencies and task
    results in persistent objects updated under atomic transactions,
    schedules tasks whose input sets become satisfied (ordered
    alternatives, first-available wins; first-declared input set wins),
    dispatches implementations to task hosts, enforces the task
    transition rules of Fig 3 (outcome / abort outcome / repeat outcome
    / mark), expands compound tasks into nested scopes, retries tasks a
    bounded number of times on system failures, fires input-set
    timeouts, and applies dynamic reconfiguration atomically.

    Fault tolerance: if the engine's node crashes, recovery rebuilds all
    instance state from the store and resumes — completions that raced
    the crash are re-obtained by re-dispatching the task (task hosts are
    at-least-once; atomic tasks make that safe). If a task host crashes
    mid-execution, the per-dispatch watchdog re-dispatches. *)

type config = {
  default_deadline : Sim.time;
      (** dispatch-to-completion watchdog. Alias: seeds
          {!default_policy.dp_deadline} at engine creation — tasks with a
          declared [recovery] section override it per task. *)
  dispatch_rpc_retries : int;
      (** Alias: seeds {!default_policy.dp_rpc_retries}. *)
  system_max_attempts : int;
      (** re-dispatches before the task fails. Alias: seeds
          {!default_policy.dp_max_attempts}; a declared [retry n] clause
          overrides the budget per task (per implementation code). *)
  default_timeout : Sim.time;  (** timer input sets without a ["timeout"] kv *)
  dispatch_overhead : Sim.time;
      (** engine CPU cost per dispatch, serialised per engine (0 =
          free); models the coordinator as a contended resource so a
          cluster of engines can out-dispatch a single one *)
  batch_persists : bool;
      (** coalesce all persists of one evaluation pass into a single
          transaction (default true); false restores one commit per
          persist *)
  incremental : bool;
      (** push-based incremental scheduling (default true): each pass
          re-evaluates only the tasks reachable from the just-changed
          records through the instance's reverse-dependency index, the
          instance directory is one O(1) durable row per instance, and
          identical scripts share one compiled schema. [false] restores
          the pre-refactor cost model — a full rescan of every task on
          every pass and a whole-roster directory rewrite per launch —
          and is what the capacity bench's speedup gate compares
          against. Scheduling decisions are identical in both modes. *)
  retain_concluded : bool;
      (** keep a concluded instance's task-state mirror in memory for
          post-hoc inspection (default true, the historical behaviour;
          auxiliary scan state is always dropped at conclusion). [false]
          additionally releases the mirrors, bounding resident memory by
          the {e live} instance count — capacity runs want this. Durable
          records are unaffected either way ({!gc} removes those). *)
  trace : bool;
      (** subscribe the legacy human-readable trace to the event bus
          (default true). Trace lines are rendered and retained for
          every engine-originated event, so high-volume capacity runs
          turn this off; {!trace} then returns an empty trace. *)
}

val default_config : config

(** The config-seeded default recovery policy — what a task without a
    [recovery { ... }] section executes under. Compiled once at engine
    creation from the three config aliases above; dispatch, watchdog and
    retry paths consult policy records only, never the raw config. *)
type default_policy = {
  dp_deadline : Sim.time;  (** per-attempt watchdog deadline *)
  dp_rpc_retries : int;  (** RPC send budget per dispatch *)
  dp_max_attempts : int;  (** total execution attempts per task *)
}

type t

val default_policy : t -> default_policy

val create :
  ?config:config ->
  rpc:Rpc.t ->
  node:Node.t ->
  mgr:Txn.manager ->
  participant:Participant.t ->
  registry:Registry.t ->
  unit ->
  t
(** The node must already be RPC-attached with a participant and
    manager. Installs the completion/mark services and crash/recovery
    hooks, and attaches a task host on the engine node itself. *)

val node_id : t -> string

val node : t -> Node.t

val rpc : t -> Rpc.t

val trace : t -> Trace.t

val metrics : t -> Metrics.t
(** The engine's metrics registry: counters and histograms accumulated
    from the typed event bus (see {!Event} and {!Metrics.attach}). Dump
    with {!Metrics.to_json}. *)

val registry : t -> Registry.t

val attach_host : t -> Node.t -> Exec_host.t
(** Make another node able to execute task implementations (scripts
    place tasks with [implementation { "location" is "node" }]). *)

(** {1 Instances} *)

val launch :
  ?iid:string ->
  t ->
  script:string ->
  root:string ->
  inputs:(string * Value.obj) list ->
  (string, string) result
(** Parse/expand/validate [script], resolve [root], persist the instance
    and start it. Returns the instance id. The run proceeds as the
    simulation advances. [iid] overrides the engine-generated instance
    id — the cluster layer uses this to route by hash-of-iid and to keep
    ids unique across engines; a duplicate id is refused. *)

val status : t -> string -> Wstate.status option

val on_complete : t -> string -> (Wstate.status -> unit) -> unit
(** Volatile callback (lost on engine crash — poll {!status} for a
    durable answer). Fires immediately if the instance already
    finished. *)

val instances : t -> string list

val task_state : t -> string -> path:string list -> Wstate.task_state option
(** [path] is the chain of task names from the root, e.g.
    [["processOrderApplication"; "dispatch"]]. *)

val task_states : t -> string -> (string * Wstate.task_state) list
(** All task records of an instance, sorted by path. *)

val marks_of : t -> string -> path:string list -> (string * (string * Value.obj) list) list
(** Marks emitted so far by the task at [path]. *)

type policy_budget = {
  pb_path : string;  (** "/"-joined task path *)
  pb_attempts : int;  (** execution attempts used so far *)
  pb_backoff_remaining : Sim.time;
      (** µs until the pending policy retry fires; [0] when no backoff
          is pending *)
  pb_compensated : bool;  (** the compensation handler has fired *)
}

val policy_budgets : t -> string -> policy_budget list
(** Per-task recovery-policy budget counters for one instance, sorted
    by path: how much of each [retry]/[backoff] budget is spent and
    which compensations have fired. Served remotely by
    [Admin.service_policy]. *)

val history : t -> string -> (Sim.time * string * string) list
(** The instance's {e persistent} audit log (at, kind, detail), written
    in the same transactions as the state changes it describes — unlike
    {!trace}, it survives engine crashes and is what the monitoring side
    of Fig 4's administrative tools reads. Collected with the instance
    by {!gc}. *)

val quiescent : t -> string -> bool
(** No task of the instance is running and the instance is not done:
    the instance is stuck (e.g. a failed task with no alternatives). *)

val cancel : t -> string -> reason:string -> ((unit, string) result -> unit) -> unit
(** User-forced abort of a whole running instance (Fig 3 names the user
    forcing an abort as a legal transition): the instance completes with
    [Wf_failed reason]; running constituents are abandoned (their scopes
    are closed, so watchdogs and late reports are ignored). *)

val abort_task : t -> string -> path:string list -> ((unit, string) result -> unit) -> unit
(** User-forced abort of one waiting or running task: it terminates in
    its first declared abort outcome (empty objects) when its taskclass
    has one — visible to fan-ins exactly like a spontaneous abort — and
    in [Failed] otherwise. *)

val compact : t -> unit
(** Bound the engine node's stable storage: checkpoint the object store
    (collapse its WAL to a snapshot), drop decided transactions from the
    intentions log and compact the coordinator's decision log. Run
    periodically in long-lived deployments, typically after {!gc}. *)

val gc : t -> string -> ((unit, string) result -> unit) -> unit
(** Remove a {e finished} instance's persistent records (one
    transaction) and forget it. Refused while the instance is running.
    Pair with {!Participant.checkpoint} to keep the stores bounded in
    long-lived deployments. *)

(** {1 Dynamic reconfiguration (paper §3)} *)

val reconfigure :
  t ->
  string ->
  transform:(Ast.script -> (Ast.script, string) result) ->
  ((unit, string) result -> unit) ->
  unit
(** Apply an AST transform to the instance's {e current} script,
    re-validate, persist the new script and swap it in, atomically with
    respect to normal processing. See {!Reconfig} for standard
    transforms (add/remove tasks and dependencies). *)

(** {1 Introspection counters} *)

val dispatches_total : t -> int

val completions_total : t -> int

val system_retries_total : t -> int

val marks_total : t -> int

val policy_retries_total : t -> int
(** Retries scheduled by {e declared} recovery policies (the default
    policy's retries count only in {!system_retries_total}). *)

val policy_substitutions_total : t -> int
(** Switches to a ranked alternative or timeout substitute. *)

val policy_compensations_total : t -> int
(** Compensation handlers launched after abort outcomes. *)

val reconfigs_total : t -> int

val recoveries_total : t -> int

val observe_residency : t -> int
(** Sample resident memory: reachable words from the live instance
    mirrors ([Obj.reachable_words]), published as the
    [engine.resident_words] gauge (alongside [engine.ready_queue_len])
    in {!metrics}, and returned. Walking the heap is proportional to
    resident state — call it at measurement points, not per event. *)
