(** Remote administration of an execution service (paper Fig 4: the
    application control and management tools reach the services through
    the ORB).

    {!serve} installs the admin services on the engine's node;
    {!Client} is the RPC client any node can use: list instances, query
    status and task states, cancel an instance. Reconfiguration and
    launching are deliberately not exposed remotely — they need local
    closures (implementations, transforms); the paper routes those
    through administrative workflows, which {!Engine.reconfigure} plus a
    workflow task implementation covers (see test_engine.ml's
    admin-workflow test). *)

val serve : Engine.t -> unit
(** Install [wf.admin.*] services on the engine's node. *)

module Client : sig
  type t

  val create : rpc:Rpc.t -> src:string -> engine_node:string -> t

  val list_instances : t -> ((string list, string) result -> unit) -> unit

  val status : t -> iid:string -> ((Wstate.status option, string) result -> unit) -> unit

  val task_states : t -> iid:string -> (((string * string) list, string) result -> unit) -> unit
  (** (path, printed state) pairs, sorted by path. *)

  val policy_budgets :
    t -> iid:string -> ((Engine.policy_budget list, string) result -> unit) -> unit
  (** Per-task recovery-policy budget counters ({!Engine.policy_budgets})
      over RPC: attempts used, backoff remaining, compensations fired. *)

  val cancel : t -> iid:string -> reason:string -> ((unit, string) result -> unit) -> unit

  val history :
    t -> iid:string -> (((int * string * string) list, string) result -> unit) -> unit
  (** The instance's persistent audit log: (virtual time, kind, detail). *)
end
