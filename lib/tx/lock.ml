module String_set = Set.Make (String)

type state =
  | Readers of String_set.t
  | Writer of string

type outcome =
  | Granted
  | Conflict of string

type t = { table : (string, state) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let read t ~key ~txid =
  match Hashtbl.find_opt t.table key with
  | None ->
    Hashtbl.replace t.table key (Readers (String_set.singleton txid));
    Granted
  | Some (Readers readers) ->
    Hashtbl.replace t.table key (Readers (String_set.add txid readers));
    Granted
  | Some (Writer owner) -> if owner = txid then Granted else Conflict owner

let write t ~key ~txid =
  match Hashtbl.find_opt t.table key with
  | None ->
    Hashtbl.replace t.table key (Writer txid);
    Granted
  | Some (Writer owner) -> if owner = txid then Granted else Conflict owner
  | Some (Readers readers) ->
    if String_set.equal readers (String_set.singleton txid) || String_set.is_empty readers then begin
      Hashtbl.replace t.table key (Writer txid);
      Granted
    end
    else begin
      match String_set.find_first_opt (fun r -> r <> txid) readers with
      | Some other -> Conflict other
      | None -> Conflict "?"
    end

let holds_read t ~key ~txid =
  match Hashtbl.find_opt t.table key with
  | Some (Readers readers) -> String_set.mem txid readers
  | Some (Writer owner) -> owner = txid
  | None -> false

let holds_write t ~key ~txid =
  match Hashtbl.find_opt t.table key with Some (Writer owner) -> owner = txid | _ -> false

let release_all t ~txid =
  let release key state acc =
    match state with
    | Writer owner when owner = txid -> key :: acc
    | Writer _ -> acc
    | Readers readers ->
      if String_set.mem txid readers then begin
        let rest = String_set.remove txid readers in
        if String_set.is_empty rest then key :: acc
        else begin
          Hashtbl.replace t.table key (Readers rest);
          acc
        end
      end
      else acc
  in
  let to_remove = Hashtbl.fold release t.table [] in
  List.iter (Hashtbl.remove t.table) to_remove

let reset t = Hashtbl.reset t.table

let held_total t =
  Hashtbl.fold
    (fun _ state acc ->
      match state with
      | Writer _ -> acc + 1
      | Readers readers -> acc + String_set.cardinal readers)
    t.table 0

let held_keys t ~txid =
  let keep key state acc =
    match state with
    | Writer owner when owner = txid -> key :: acc
    | Readers readers when String_set.mem txid readers -> key :: acc
    | Writer _ | Readers _ -> acc
  in
  List.sort String.compare (Hashtbl.fold keep t.table [])
