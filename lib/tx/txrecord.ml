type write = string * string option

type precord =
  | P_prepared of { txid : string; coordinator : string; writes : write list }
  | P_committed of string
  | P_aborted of string
  | P_one_phase of string

type crecord =
  | C_incarnation
  | C_committed of { txid : string; participants : string list }
  | C_done of string

let service_read = "tx.read"

let service_prepare = "tx.prepare"

let service_commit = "tx.commit"

let service_abort = "tx.abort"

let service_status = "tx.status"

let service_commit_one = "tx.commit1"

let service_prepare_ro = "tx.prepare-ro"

let enc_read_req = Wire.(pair string string)

let dec_read_req = Wire.(decode (d_pair d_string d_string))

let enc_read_reply = function
  | Ok v -> Wire.bool true ^ Wire.option Wire.string v
  | Error e -> Wire.bool false ^ Wire.string e

let dec_read_reply body =
  let open Wire in
  decode
    (fun d -> if d_bool d then Ok (d_option d_string d) else Error (d_string d))
    body

let b_writes = Wire.(b_list (b_pair b_string (b_option b_string)))

let enc_prepare_req ~txid ~coordinator ~read_keys ~writes =
  Wire.run
    (fun buf () ->
      Wire.b_string buf txid;
      Wire.b_string buf coordinator;
      Wire.(b_list b_string) buf read_keys;
      b_writes buf writes)
    ()

let dec_prepare_req body =
  let open Wire in
  decode
    (fun d ->
      let txid = d_string d in
      let coordinator = d_string d in
      let read_keys = d_list d_string d in
      let writes = d_list (d_pair d_string (d_option d_string)) d in
      (txid, coordinator, read_keys, writes))
    body

let enc_commit_one ~txid ~read_keys ~writes =
  Wire.run
    (fun buf () ->
      Wire.b_string buf txid;
      Wire.(b_list b_string) buf read_keys;
      b_writes buf writes)
    ()

let dec_commit_one body =
  let open Wire in
  decode
    (fun d ->
      let txid = d_string d in
      let read_keys = d_list d_string d in
      let writes = d_list (d_pair d_string (d_option d_string)) d in
      (txid, read_keys, writes))
    body

let enc_prepare_ro ~txid ~read_keys =
  Wire.run
    (fun buf () ->
      Wire.b_string buf txid;
      Wire.(b_list b_string) buf read_keys)
    ()

let dec_prepare_ro body =
  let open Wire in
  decode
    (fun d ->
      let txid = d_string d in
      let read_keys = d_list d_string d in
      (txid, read_keys))
    body

let enc_vote = Wire.bool

let dec_vote = Wire.(decode d_bool)

let enc_txid = Wire.string

let dec_txid = Wire.(decode d_string)

let enc_status_reply status =
  Wire.string (match status with `Committed -> "c" | `Aborted -> "a" | `Pending -> "p")

let dec_status_reply body =
  match Wire.(decode d_string) body with
  | "c" -> `Committed
  | "a" -> `Aborted
  | "p" -> `Pending
  | other -> raise (Wire.Malformed ("bad status: " ^ other))
