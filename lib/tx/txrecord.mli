(** Log record and message types of the transaction protocol, with
    their wire codecs. Shared by {!Participant} and {!Txn}. *)

type write = string * string option
(** key, value; [None] deletes the key at commit *)

(** Participant intentions-log records. [P_one_phase] is the combined
    prepare+commit record of the single-participant fast lane: the
    participant decides and commits in one append, with no coordinator
    decision record anywhere (presumed abort covers the failure
    cases). *)
type precord =
  | P_prepared of { txid : string; coordinator : string; writes : write list }
  | P_committed of string
  | P_aborted of string
  | P_one_phase of string

(** Coordinator decision-log records. *)
type crecord =
  | C_incarnation
  | C_committed of { txid : string; participants : string list }
  | C_done of string

val service_read : string
val service_prepare : string
val service_commit : string
val service_abort : string
val service_status : string

val service_commit_one : string
(** Combined prepare+commit for a transaction whose only participant is
    the destination node (one-phase commit). *)

val service_prepare_ro : string
(** Phase-1 validate-and-release for a participant holding only read
    locks (read-only elision). *)

val enc_read_req : string * string -> string
(** txid, key *)

val dec_read_req : string -> string * string

val enc_read_reply : (string option, string) result -> string

val dec_read_reply : string -> (string option, string) result

val enc_prepare_req :
  txid:string -> coordinator:string -> read_keys:string list -> writes:write list -> string

val dec_prepare_req : string -> string * string * string list * write list
(** txid, coordinator, read_keys, writes *)

val enc_commit_one : txid:string -> read_keys:string list -> writes:write list -> string

val dec_commit_one : string -> string * string list * write list
(** txid, read_keys, writes *)

val enc_prepare_ro : txid:string -> read_keys:string list -> string

val dec_prepare_ro : string -> string * string list
(** txid, read_keys *)

val enc_vote : bool -> string

val dec_vote : string -> bool

val enc_txid : string -> string

val dec_txid : string -> string

val enc_status_reply : [ `Committed | `Aborted | `Pending ] -> string

val dec_status_reply : string -> [ `Committed | `Aborted | `Pending ]
