(** Transaction participant (resource manager) hosted on a node.

    Owns the node's transactional objects: a persistent {!Kvstore}
    holding committed values, an intentions log, and the lock table.
    Serves [tx.read] / [tx.prepare] / [tx.commit] / [tx.abort].

    Recovery re-acquires the write locks of prepared-but-undecided
    transactions from the intentions log and polls the coordinator's
    [tx.status] service until a decision arrives (presumed abort). *)

type t

val create : rpc:Rpc.t -> node:Node.t -> t
(** Installs services and crash/recovery hooks on [node]. The node must
    already be attached to the RPC layer. *)

val node_id : t -> string

val on_apply : t -> (Txrecord.write list -> unit) -> unit
(** Observer invoked after a committed transaction's writes have been
    applied to the store — including commits finished by the recovery
    termination protocol. Lets co-located services (the workflow engine)
    react to state that became durable while their volatile view was
    being rebuilt. *)

val committed_value : t -> key:string -> string option
(** Directly inspect the committed store (testing / local fast reads
    outside any transaction). Raises {!Kvstore.Unavailable} when the
    node is down. *)

val committed_keys : t -> string list

val prepared_txids : t -> string list
(** Undecided prepared transactions (sorted), for tests. *)

val locks_held : t -> int
(** Live lock grants in this node's lock table. A quiescent node holds
    none; leftovers are orphaned locks (fault-exploration oracle). *)

val store : t -> Kvstore.t

val log_length : t -> int

val checkpoint : t -> unit
(** Compact the object store's WAL and drop decided records from the
    intentions log. *)
