type prep = { coordinator : string; writes : Txrecord.write list }

type t = {
  node : Node.t;
  rpc : Rpc.t;
  sim : Sim.t;
  store : Kvstore.t;
  plog : Txrecord.precord Wal.t;
  locks : Lock.t;
  prepared : (string, prep) Hashtbl.t;  (* undecided, volatile *)
  decided : (string, [ `Committed | `Aborted ]) Hashtbl.t;  (* volatile cache of the log *)
  mutable observers : (Txrecord.write list -> unit) list;
}

let poll_period = Sim.ms 50

let node_id t = Node.id t.node

let store t = t.store

let log_length t = Wal.length t.plog

let apply_write t (k, v) =
  match v with Some value -> Kvstore.put t.store k value | None -> Kvstore.delete t.store k

let apply_writes t writes = List.iter (apply_write t) writes

let decide_commit t txid =
  match Hashtbl.find_opt t.prepared txid with
  | None -> () (* duplicate decision *)
  | Some prep ->
    apply_writes t prep.writes;
    Wal.append t.plog (Txrecord.P_committed txid);
    Hashtbl.remove t.prepared txid;
    Hashtbl.replace t.decided txid `Committed;
    Lock.release_all t.locks ~txid;
    List.iter (fun observe -> observe prep.writes) t.observers

let decide_abort t txid =
  (match Hashtbl.find_opt t.prepared txid with
  | None -> ()
  | Some _ ->
    Wal.append t.plog (Txrecord.P_aborted txid);
    Hashtbl.remove t.prepared txid;
    Hashtbl.replace t.decided txid `Aborted);
  (* An unprepared transaction may still hold read locks here. *)
  Lock.release_all t.locks ~txid

(* Presumed-abort termination protocol: a recovered participant polls
   the coordinator about each undecided prepared transaction. *)
let rec poll_status t txid =
  match Hashtbl.find_opt t.prepared txid with
  | None -> ()
  | Some prep ->
    let handle_reply = function
      | Ok body ->
        (match Txrecord.dec_status_reply body with
        | `Committed -> decide_commit t txid
        | `Aborted -> decide_abort t txid
        | `Pending -> schedule_poll t txid)
      | Error _ -> schedule_poll t txid
    in
    Rpc.call t.rpc ~src:(node_id t) ~dst:prep.coordinator ~service:Txrecord.service_status
      ~body:(Txrecord.enc_txid txid) handle_reply

and schedule_poll t txid = ignore (Sim.schedule t.sim ~delay:poll_period (fun () -> poll_status t txid))

let handle_read t ~src:_ body =
  let txid, key = Txrecord.dec_read_req body in
  match Lock.read t.locks ~key ~txid with
  | Lock.Conflict holder -> Txrecord.enc_read_reply (Error ("conflict with " ^ holder))
  | Lock.Granted -> Txrecord.enc_read_reply (Ok (Kvstore.get t.store key))

let prepare_locks t ~txid ~read_keys ~writes =
  let read_ok key = Lock.holds_read t.locks ~key ~txid in
  let acquire_write key = Lock.write t.locks ~key ~txid = Lock.Granted in
  List.for_all read_ok read_keys && List.for_all (fun (k, _) -> acquire_write k) writes

let handle_prepare t ~src:_ body =
  let txid, coordinator, read_keys, writes = Txrecord.dec_prepare_req body in
  match Hashtbl.find_opt t.decided txid with
  | Some `Committed -> Txrecord.enc_vote true
  | Some `Aborted -> Txrecord.enc_vote false
  | None ->
    if Hashtbl.mem t.prepared txid then Txrecord.enc_vote true (* duplicate prepare *)
    else if prepare_locks t ~txid ~read_keys ~writes then begin
      Wal.append t.plog (Txrecord.P_prepared { txid; coordinator; writes });
      Hashtbl.replace t.prepared txid { coordinator; writes };
      (* If the decision does not arrive (coordinator crashed), the
         termination protocol below asks for it. *)
      schedule_poll t txid;
      Txrecord.enc_vote true
    end
    else begin
      (* vote no: this transaction is dead here; drop whatever it held *)
      Lock.release_all t.locks ~txid;
      Txrecord.enc_vote false
    end

(* One-phase commit: this node is the transaction's only participant, so
   prepare and commit collapse into a single decision made here — lock
   validation, apply, and one combined log append. No coordinator
   decision record exists anywhere; if the reply is lost the coordinator
   presumes abort, which is safe because a refused one-phase commit
   changes nothing. A refusal is remembered in the volatile decided
   cache so a re-executed duplicate (evicted reply) cannot commit a
   transaction the coordinator already gave up on. *)
let handle_commit_one t ~src:_ body =
  let txid, read_keys, writes = Txrecord.dec_commit_one body in
  match Hashtbl.find_opt t.decided txid with
  | Some `Committed -> Txrecord.enc_vote true (* duplicate *)
  | Some `Aborted -> Txrecord.enc_vote false
  | None ->
    if prepare_locks t ~txid ~read_keys ~writes then begin
      apply_writes t writes;
      Wal.append t.plog (Txrecord.P_one_phase txid);
      Hashtbl.replace t.decided txid `Committed;
      Lock.release_all t.locks ~txid;
      List.iter (fun observe -> observe writes) t.observers;
      Txrecord.enc_vote true
    end
    else begin
      Hashtbl.replace t.decided txid `Aborted;
      Lock.release_all t.locks ~txid;
      Txrecord.enc_vote false
    end

(* Read-only elision: the participant holds no writes for this
   transaction, so its vote is pure validation — do the read locks still
   stand? Either way it releases and forgets the transaction in phase 1;
   the coordinator never includes it in the commit fan-out. *)
let handle_prepare_ro t ~src:_ body =
  let txid, read_keys = Txrecord.dec_prepare_ro body in
  let ok = List.for_all (fun key -> Lock.holds_read t.locks ~key ~txid) read_keys in
  Lock.release_all t.locks ~txid;
  Txrecord.enc_vote ok

let handle_commit t ~src:_ body =
  decide_commit t (Txrecord.dec_txid body);
  "ack"

let handle_abort t ~src:_ body =
  decide_abort t (Txrecord.dec_txid body);
  "ack"

let on_crash t () =
  Kvstore.crash t.store;
  Lock.reset t.locks;
  Hashtbl.reset t.prepared;
  Hashtbl.reset t.decided

let replay_record t = function
  | Txrecord.P_prepared { txid; coordinator; writes } ->
    Hashtbl.replace t.prepared txid { coordinator; writes }
  | Txrecord.P_committed txid ->
    Hashtbl.remove t.prepared txid;
    Hashtbl.replace t.decided txid `Committed
  | Txrecord.P_aborted txid ->
    Hashtbl.remove t.prepared txid;
    Hashtbl.replace t.decided txid `Aborted
  | Txrecord.P_one_phase txid -> Hashtbl.replace t.decided txid `Committed

let on_recover t () =
  Kvstore.recover t.store;
  List.iter (replay_record t) (Wal.records t.plog);
  let relock txid prep =
    List.iter (fun (k, _) -> ignore (Lock.write t.locks ~key:k ~txid)) prep.writes;
    schedule_poll t txid
  in
  Hashtbl.iter relock t.prepared

let create ~rpc ~node =
  let id = Node.id node in
  let t =
    {
      node;
      rpc;
      sim = Network.sim (Rpc.network rpc);
      store = Kvstore.create ~name:("objects@" ^ id);
      plog = Wal.create ~name:("txlog@" ^ id);
      locks = Lock.create ();
      prepared = Hashtbl.create 16;
      decided = Hashtbl.create 16;
      observers = [];
    }
  in
  Node.serve node ~service:Txrecord.service_read (handle_read t);
  Node.serve node ~service:Txrecord.service_prepare (handle_prepare t);
  Node.serve node ~service:Txrecord.service_commit (handle_commit t);
  Node.serve node ~service:Txrecord.service_commit_one (handle_commit_one t);
  Node.serve node ~service:Txrecord.service_prepare_ro (handle_prepare_ro t);
  Node.serve node ~service:Txrecord.service_abort (handle_abort t);
  Node.on_crash node (on_crash t);
  Node.on_recover node (on_recover t);
  t

let on_apply t observe = t.observers <- t.observers @ [ observe ]

let committed_value t ~key = Kvstore.get t.store key

let committed_keys t = Kvstore.keys t.store

let prepared_txids t =
  List.sort String.compare (Hashtbl.fold (fun txid _ acc -> txid :: acc) t.prepared [])

let locks_held t = Lock.held_total t.locks

let checkpoint t =
  Kvstore.checkpoint t.store;
  let live =
    List.filter
      (function
        | Txrecord.P_prepared { txid; _ } -> Hashtbl.mem t.prepared txid
        | Txrecord.P_committed _ | Txrecord.P_aborted _ | Txrecord.P_one_phase _ -> false)
      (Wal.records t.plog)
  in
  Wal.rewrite t.plog live
