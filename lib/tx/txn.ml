type error =
  [ `Conflict of string
  | `Timeout
  | `Aborted of string ]

type 'a io = (('a, error) result -> unit) -> unit

let return v k = k (Ok v)

let fail e k = k (Error e)

let ( let* ) (m : 'a io) (f : 'a -> 'b io) : 'b io =
 fun k -> m (function Ok v -> f v k | Error e -> k (Error e))

let pp_error ppf = function
  | `Conflict holder -> Format.fprintf ppf "conflict(%s)" holder
  | `Timeout -> Format.fprintf ppf "timeout"
  | `Aborted reason -> Format.fprintf ppf "aborted(%s)" reason

let error_to_string e = Format.asprintf "%a" pp_error e

module String_map = Map.Make (String)
module String_set = Set.Make (String)

type manager = {
  rpc : Rpc.t;
  node : Node.t;
  sim : Sim.t;
  rng : Rng.t;
  clog : Txrecord.crecord Wal.t;
  committed : (string, string list) Hashtbl.t;  (* decision made, commit phase maybe unfinished *)
  finished : (string, unit) Hashtbl.t;  (* C_done seen *)
  active : (string, unit) Hashtbl.t;  (* undecided top-level txns started here *)
  mutable incarnation : int;
  mutable seq : int;
  mutable committed_total : int;
  mutable resumed_total : int;
  mutable one_phase_total : int;
  mutable readonly_elided_total : int;
}

type t = {
  mgr : manager;
  id : string;
  parent : t option;
  root : t option;  (* None when this is the root *)
  mutable writes : string option String_map.t;  (* "node/key" -> value, None = delete *)
  mutable read_keys : String_set.t;  (* root only: "node/key" read-locked *)
  mutable finished_child : bool;
}

let manager_node mgr = Node.id mgr.node

let txid t = t.id

let is_top t = t.root = None

let rec root t = match t.root with None -> t | Some r -> root r

let okey ~node ~key = node ^ "/" ^ key

let split_okey okey =
  match String.index_opt okey '/' with
  | Some i -> (String.sub okey 0 i, String.sub okey (i + 1) (String.length okey - i - 1))
  | None -> invalid_arg ("Txn: bad object key " ^ okey)

(* --- coordinator-side commit machinery --- *)

let commit_retry_base = Sim.ms 20

let commit_retry_cap = Sim.ms 500

(* Push the commit decision to every participant until each one acks.
   Retries survive participant crashes; [on_done] fires once all acked. *)
let push_commits mgr txid participants on_done =
  let epoch = mgr.incarnation in
  let remaining = ref (List.length participants) in
  if !remaining = 0 then on_done ()
  else begin
    let finish_one () =
      decr remaining;
      if !remaining = 0 then begin
        if not (Hashtbl.mem mgr.finished txid) then begin
          Wal.append mgr.clog (Txrecord.C_done txid);
          Hashtbl.replace mgr.finished txid ()
        end;
        on_done ()
      end
    in
    let rec push node delay =
      (* A coordinator crash obsoletes this loop: recovery starts a fresh
         one for every undecided commit, so stale loops must die. *)
      if mgr.incarnation = epoch then begin
        let handle = function
          | Ok _ -> if mgr.incarnation = epoch then finish_one ()
          | Error _ ->
            let delay = min commit_retry_cap (delay * 2) in
            let jitter = Rng.int mgr.rng (max 1 (delay / 4)) in
            ignore (Sim.schedule mgr.sim ~delay:(delay + jitter) (fun () -> push node delay))
        in
        Rpc.call mgr.rpc ~src:(manager_node mgr) ~dst:node ~service:Txrecord.service_commit
          ~body:(Txrecord.enc_txid txid) handle
      end
    in
    List.iter (fun node -> push node commit_retry_base) participants
  end

let handle_status mgr ~src:_ body =
  let txid = Txrecord.dec_txid body in
  let status =
    if Hashtbl.mem mgr.committed txid then `Committed
    else if Hashtbl.mem mgr.active txid then `Pending
    else `Aborted
  in
  Txrecord.enc_status_reply status

let replay_crecord mgr = function
  | Txrecord.C_incarnation -> mgr.incarnation <- mgr.incarnation + 1
  | Txrecord.C_committed { txid; participants } -> Hashtbl.replace mgr.committed txid participants
  | Txrecord.C_done txid -> Hashtbl.replace mgr.finished txid ()

let on_manager_recover mgr () =
  Hashtbl.reset mgr.committed;
  Hashtbl.reset mgr.finished;
  Hashtbl.reset mgr.active;
  mgr.incarnation <- 0;
  List.iter (replay_crecord mgr) (Wal.records mgr.clog);
  Wal.append mgr.clog Txrecord.C_incarnation;
  mgr.incarnation <- mgr.incarnation + 1;
  mgr.seq <- 0;
  let resume txid participants =
    if not (Hashtbl.mem mgr.finished txid) then begin
      mgr.resumed_total <- mgr.resumed_total + 1;
      push_commits mgr txid participants (fun () -> ())
    end
  in
  Hashtbl.iter resume mgr.committed

let manager ~rpc ~node =
  let sim = Network.sim (Rpc.network rpc) in
  let mgr =
    {
      rpc;
      node;
      sim;
      rng = Rng.split (Sim.rng sim);
      clog = Wal.create ~name:("txnlog@" ^ Node.id node);
      committed = Hashtbl.create 32;
      finished = Hashtbl.create 32;
      active = Hashtbl.create 16;
      incarnation = 1;
      seq = 0;
      committed_total = 0;
      resumed_total = 0;
      one_phase_total = 0;
      readonly_elided_total = 0;
    }
  in
  Wal.append mgr.clog Txrecord.C_incarnation;
  Node.serve node ~service:Txrecord.service_status (handle_status mgr);
  Node.on_crash node (fun () ->
      Hashtbl.reset mgr.active;
      Hashtbl.reset mgr.committed;
      Hashtbl.reset mgr.finished);
  Node.on_recover node (on_manager_recover mgr);
  mgr

(* --- client API --- *)

let begin_ mgr =
  mgr.seq <- mgr.seq + 1;
  let id = Printf.sprintf "t:%s:%d:%d" (manager_node mgr) mgr.incarnation mgr.seq in
  Hashtbl.replace mgr.active id ();
  {
    mgr;
    id;
    parent = None;
    root = None;
    writes = String_map.empty;
    read_keys = String_set.empty;
    finished_child = false;
  }

let begin_child parent =
  let r = root parent in
  {
    mgr = parent.mgr;
    id = parent.id;
    parent = Some parent;
    root = Some r;
    writes = String_map.empty;
    read_keys = String_set.empty;
    finished_child = false;
  }

(* Some (Some v) = buffered write, Some None = buffered delete,
   None = not buffered here or above. *)
let rec buffered t okey =
  match String_map.find_opt okey t.writes with
  | Some v -> Some v
  | None -> ( match t.parent with Some p -> buffered p okey | None -> None)

let read t ~node ~key : string option io =
 fun k ->
  let ok = okey ~node ~key in
  match buffered t ok with
  | Some v -> k (Ok v)
  | None ->
    let r = root t in
    let mgr = t.mgr in
    let handle = function
      | Ok body -> (
        match Txrecord.dec_read_reply body with
        | Ok v ->
          r.read_keys <- String_set.add ok r.read_keys;
          k (Ok v)
        | Error reason -> k (Error (`Conflict reason)))
      | Error _ -> k (Error `Timeout)
    in
    Rpc.call mgr.rpc ~src:(manager_node mgr) ~dst:node ~service:Txrecord.service_read
      ~body:(Txrecord.enc_read_req (t.id, key))
      handle

let write t ~node ~key ~value =
  t.writes <- String_map.add (okey ~node ~key) (Some value) t.writes

let delete t ~node ~key = t.writes <- String_map.add (okey ~node ~key) None t.writes

(* Group the root's read locks and writes per participant node. *)
let participants_of_root r =
  let add_write ok value acc =
    let node, key = split_okey ok in
    let reads, writes = try String_map.find node acc with Not_found -> ([], []) in
    String_map.add node (reads, (key, value) :: writes) acc
  in
  let add_read ok acc =
    let node, key = split_okey ok in
    let reads, writes = try String_map.find node acc with Not_found -> ([], []) in
    String_map.add node (key :: reads, writes) acc
  in
  let with_writes = String_map.fold add_write r.writes String_map.empty in
  String_set.fold add_read r.read_keys with_writes

let abort_at_participants mgr txid nodes =
  let tell node =
    Rpc.call mgr.rpc ~src:(manager_node mgr) ~dst:node ~service:Txrecord.service_abort
      ~body:(Txrecord.enc_txid txid) (fun _ -> ())
  in
  List.iter tell nodes

(* Top-level commit, with three fast lanes in front of classic 2PC:

   - read-only transaction: every participant validates-and-releases in
     a single round ([tx.prepare-ro]); nothing is logged anywhere.
   - one-phase commit: exactly one participant with writes and no
     read-only participants — prepare and commit collapse into one
     [tx.commit1] message decided at the participant. When that sole
     participant is the coordinator's own node, the handler is invoked
     directly (no RPC at all) and only the completion is deferred to a
     simulation event, preserving the asynchronous callback contract.
   - 2PC with read-only elision: participants holding only read locks
     vote via [tx.prepare-ro] and are excluded from the decision record
     and the commit fan-out.

   All lanes presume abort: only a [C_committed] record (written by the
   2PC lane alone) obligates recovery to push commits; everything else
   aborts by default, and one-phase participants decide locally. *)
let commit_top (t : t) : unit io =
 fun k ->
  let mgr = t.mgr in
  let by_node = participants_of_root t in
  let bindings = String_map.bindings by_node in
  let all_nodes = List.map fst bindings in
  let ro, rw = List.partition (fun (_, (_, writes)) -> writes = []) bindings in
  let ro_nodes = List.map fst ro in
  let rw_nodes = List.map fst rw in
  let resolve committed =
    Hashtbl.remove mgr.active t.id;
    Sim.emit mgr.sim ~src:(manager_node mgr)
      (Event.Txn_resolved { txid = t.id; committed })
  in
  let elide_ro () =
    mgr.readonly_elided_total <- mgr.readonly_elided_total + List.length ro_nodes;
    List.iter
      (fun node ->
        Sim.emit mgr.sim ~src:(manager_node mgr)
          (Event.Txn_readonly_elided { txid = t.id; node }))
      ro_nodes
  in
  (* [participants] = write participants still owed a phase-2 commit
     message; [] when the decision needs no record and no fan-out. *)
  let conclude_commit ~participants () =
    if participants <> [] then begin
      Wal.append mgr.clog (Txrecord.C_committed { txid = t.id; participants });
      Hashtbl.replace mgr.committed t.id participants
    end;
    resolve true;
    mgr.committed_total <- mgr.committed_total + 1;
    elide_ro ();
    if participants = [] then k (Ok ())
    else push_commits mgr t.id participants (fun () -> k (Ok ()))
  in
  let conclude_abort ?(notify = all_nodes) e =
    resolve false;
    abort_at_participants mgr t.id notify;
    k (Error e)
  in
  match (rw, ro) with
  | [], [] ->
    resolve true;
    mgr.committed_total <- mgr.committed_total + 1;
    k (Ok ())
  | [ (node, (read_keys, writes)) ], [] ->
    (* one-phase lane *)
    let body = Txrecord.enc_commit_one ~txid:t.id ~read_keys ~writes in
    let finish ~local vote =
      if vote then begin
        mgr.one_phase_total <- mgr.one_phase_total + 1;
        Sim.emit mgr.sim ~src:(manager_node mgr)
          (Event.Txn_one_phase { txid = t.id; local });
        conclude_commit ~participants:[] ()
      end
      else
        (* a refused one-phase commit already released everything at the
           participant; no abort message needed *)
        conclude_abort ~notify:[] (`Conflict "one-phase commit refused")
    in
    let local_handler =
      if node = manager_node mgr && Node.up mgr.node then
        Node.handler mgr.node ~service:Txrecord.service_commit_one
      else None
    in
    (match local_handler with
    | Some h ->
      (* coordinator-local: decide synchronously against the co-hosted
         participant, defer only the continuation. The epoch guard kills
         the continuation if the node crashes in between — the commit
         itself is already durable, exactly as if the reply were lost. *)
      let vote = try Txrecord.dec_vote (h ~src:(manager_node mgr) body) with _ -> false in
      let epoch = mgr.incarnation in
      ignore
        (Sim.schedule mgr.sim ~delay:0 (fun () ->
             if mgr.incarnation = epoch && Node.up mgr.node then finish ~local:true vote))
    | None ->
      Rpc.call mgr.rpc ~src:(manager_node mgr) ~dst:node ~service:Txrecord.service_commit_one
        ~body (function
        | Ok vote -> finish ~local:false (try Txrecord.dec_vote vote with _ -> false)
        | Error _ ->
          (* outcome unknown at the participant (presumed abort there if
             unprepared; committed if the reply was lost — [run] retries
           with a fresh txid, and the engine's writes are absolute, so
           re-execution converges) *)
          conclude_abort `Timeout))
  | _ ->
    (* 2PC over write participants, read-only participants elided *)
    let votes_left = ref (List.length bindings) in
    let failed = ref None in
    let conclude () =
      match !failed with
      | None -> conclude_commit ~participants:rw_nodes ()
      | Some e -> conclude_abort e
    in
    let tally outcome =
      (match outcome with
      | Ok vote when (try Txrecord.dec_vote vote with _ -> false) -> ()
      | Ok _ -> if !failed = None then failed := Some (`Conflict "prepare refused")
      | Error _ -> if !failed = None then failed := Some `Timeout);
      decr votes_left;
      if !votes_left = 0 then conclude ()
    in
    List.iter
      (fun (node, (read_keys, writes)) ->
        let body =
          Txrecord.enc_prepare_req ~txid:t.id ~coordinator:(manager_node mgr) ~read_keys ~writes
        in
        Rpc.call mgr.rpc ~src:(manager_node mgr) ~dst:node ~service:Txrecord.service_prepare
          ~body tally)
      rw;
    List.iter
      (fun (node, (read_keys, _)) ->
        let body = Txrecord.enc_prepare_ro ~txid:t.id ~read_keys in
        Rpc.call mgr.rpc ~src:(manager_node mgr) ~dst:node ~service:Txrecord.service_prepare_ro
          ~body tally)
      ro

let merge_into_parent t =
  match t.parent with
  | None -> invalid_arg "Txn.merge_into_parent: root"
  | Some parent ->
    parent.writes <- String_map.union (fun _ child _parent -> Some child) t.writes parent.writes

let commit t : unit io =
 fun k ->
  if t.finished_child then k (Error (`Aborted "transaction already finished"))
  else
    match t.parent with
    | Some _ ->
      merge_into_parent t;
      t.finished_child <- true;
      k (Ok ())
    | None -> commit_top t k

let abort t =
  match t.parent with
  | Some _ ->
    t.writes <- String_map.empty;
    t.finished_child <- true
  | None ->
    let mgr = t.mgr in
    Hashtbl.remove mgr.active t.id;
    let by_node = participants_of_root t in
    abort_at_participants mgr t.id (List.map fst (String_map.bindings by_node));
    Sim.emit mgr.sim ~src:(manager_node mgr) (Event.Txn_resolved { txid = t.id; committed = false })

let run mgr ?(max_attempts = 16) body : 'a io =
 fun k ->
  let rec attempt n =
    let t = begin_ mgr in
    let retry n e =
      match e with
      | (`Conflict _ | `Timeout) when n < max_attempts ->
        let backoff = Sim.ms 5 * n in
        let jitter = Rng.int mgr.rng (Sim.ms 5) in
        ignore (Sim.schedule mgr.sim ~delay:(backoff + jitter) (fun () -> attempt (n + 1)))
      | _ -> k (Error e)
    in
    let finish = function
      | Ok v -> (
        commit t (function
          | Ok () -> k (Ok v)
          | Error e -> retry n e))
      | Error e ->
        abort t;
        retry n e
    in
    body t finish
  in
  attempt 1

let compact mgr =
  (* keep: one incarnation record per epoch, plus committed-but-not-done
     transactions (their commit push must resume after a crash) *)
  let live =
    List.filter
      (function
        | Txrecord.C_incarnation -> true
        | Txrecord.C_committed { txid; _ } -> not (Hashtbl.mem mgr.finished txid)
        | Txrecord.C_done _ -> false)
      (Wal.records mgr.clog)
  in
  Wal.rewrite mgr.clog live

let committed_count mgr = mgr.committed_total

let active_count mgr = Hashtbl.length mgr.active

let undecided_commits mgr =
  Hashtbl.fold
    (fun txid _ acc -> if Hashtbl.mem mgr.finished txid then acc else acc + 1)
    mgr.committed 0

let resumed_commits mgr = mgr.resumed_total

let one_phase_commits mgr = mgr.one_phase_total

let readonly_elisions mgr = mgr.readonly_elided_total
