type error =
  [ `Conflict of string
  | `Timeout
  | `Aborted of string ]

type 'a io = (('a, error) result -> unit) -> unit

let return v k = k (Ok v)

let fail e k = k (Error e)

let ( let* ) (m : 'a io) (f : 'a -> 'b io) : 'b io =
 fun k -> m (function Ok v -> f v k | Error e -> k (Error e))

let pp_error ppf = function
  | `Conflict holder -> Format.fprintf ppf "conflict(%s)" holder
  | `Timeout -> Format.fprintf ppf "timeout"
  | `Aborted reason -> Format.fprintf ppf "aborted(%s)" reason

let error_to_string e = Format.asprintf "%a" pp_error e

module String_map = Map.Make (String)
module String_set = Set.Make (String)

type manager = {
  rpc : Rpc.t;
  node : Node.t;
  sim : Sim.t;
  rng : Rng.t;
  clog : Txrecord.crecord Wal.t;
  committed : (string, string list) Hashtbl.t;  (* decision made, commit phase maybe unfinished *)
  finished : (string, unit) Hashtbl.t;  (* C_done seen *)
  active : (string, unit) Hashtbl.t;  (* undecided top-level txns started here *)
  mutable incarnation : int;
  mutable seq : int;
  mutable committed_total : int;
  mutable resumed_total : int;
}

type t = {
  mgr : manager;
  id : string;
  parent : t option;
  root : t option;  (* None when this is the root *)
  mutable writes : string option String_map.t;  (* "node/key" -> value, None = delete *)
  mutable read_keys : String_set.t;  (* root only: "node/key" read-locked *)
  mutable finished_child : bool;
}

let manager_node mgr = Node.id mgr.node

let txid t = t.id

let is_top t = t.root = None

let rec root t = match t.root with None -> t | Some r -> root r

let okey ~node ~key = node ^ "/" ^ key

let split_okey okey =
  match String.index_opt okey '/' with
  | Some i -> (String.sub okey 0 i, String.sub okey (i + 1) (String.length okey - i - 1))
  | None -> invalid_arg ("Txn: bad object key " ^ okey)

(* --- coordinator-side commit machinery --- *)

let commit_retry_base = Sim.ms 20

let commit_retry_cap = Sim.ms 500

(* Push the commit decision to every participant until each one acks.
   Retries survive participant crashes; [on_done] fires once all acked. *)
let push_commits mgr txid participants on_done =
  let epoch = mgr.incarnation in
  let remaining = ref (List.length participants) in
  if !remaining = 0 then on_done ()
  else begin
    let finish_one () =
      decr remaining;
      if !remaining = 0 then begin
        if not (Hashtbl.mem mgr.finished txid) then begin
          Wal.append mgr.clog (Txrecord.C_done txid);
          Hashtbl.replace mgr.finished txid ()
        end;
        on_done ()
      end
    in
    let rec push node delay =
      (* A coordinator crash obsoletes this loop: recovery starts a fresh
         one for every undecided commit, so stale loops must die. *)
      if mgr.incarnation = epoch then begin
        let handle = function
          | Ok _ -> if mgr.incarnation = epoch then finish_one ()
          | Error _ ->
            let delay = min commit_retry_cap (delay * 2) in
            let jitter = Rng.int mgr.rng (max 1 (delay / 4)) in
            ignore (Sim.schedule mgr.sim ~delay:(delay + jitter) (fun () -> push node delay))
        in
        Rpc.call mgr.rpc ~src:(manager_node mgr) ~dst:node ~service:Txrecord.service_commit
          ~body:(Txrecord.enc_txid txid) handle
      end
    in
    List.iter (fun node -> push node commit_retry_base) participants
  end

let handle_status mgr ~src:_ body =
  let txid = Txrecord.dec_txid body in
  let status =
    if Hashtbl.mem mgr.committed txid then `Committed
    else if Hashtbl.mem mgr.active txid then `Pending
    else `Aborted
  in
  Txrecord.enc_status_reply status

let replay_crecord mgr = function
  | Txrecord.C_incarnation -> mgr.incarnation <- mgr.incarnation + 1
  | Txrecord.C_committed { txid; participants } -> Hashtbl.replace mgr.committed txid participants
  | Txrecord.C_done txid -> Hashtbl.replace mgr.finished txid ()

let on_manager_recover mgr () =
  Hashtbl.reset mgr.committed;
  Hashtbl.reset mgr.finished;
  Hashtbl.reset mgr.active;
  mgr.incarnation <- 0;
  List.iter (replay_crecord mgr) (Wal.records mgr.clog);
  Wal.append mgr.clog Txrecord.C_incarnation;
  mgr.incarnation <- mgr.incarnation + 1;
  mgr.seq <- 0;
  let resume txid participants =
    if not (Hashtbl.mem mgr.finished txid) then begin
      mgr.resumed_total <- mgr.resumed_total + 1;
      push_commits mgr txid participants (fun () -> ())
    end
  in
  Hashtbl.iter resume mgr.committed

let manager ~rpc ~node =
  let sim = Network.sim (Rpc.network rpc) in
  let mgr =
    {
      rpc;
      node;
      sim;
      rng = Rng.split (Sim.rng sim);
      clog = Wal.create ~name:("txnlog@" ^ Node.id node);
      committed = Hashtbl.create 32;
      finished = Hashtbl.create 32;
      active = Hashtbl.create 16;
      incarnation = 1;
      seq = 0;
      committed_total = 0;
      resumed_total = 0;
    }
  in
  Wal.append mgr.clog Txrecord.C_incarnation;
  Node.serve node ~service:Txrecord.service_status (handle_status mgr);
  Node.on_crash node (fun () ->
      Hashtbl.reset mgr.active;
      Hashtbl.reset mgr.committed;
      Hashtbl.reset mgr.finished);
  Node.on_recover node (on_manager_recover mgr);
  mgr

(* --- client API --- *)

let begin_ mgr =
  mgr.seq <- mgr.seq + 1;
  let id = Printf.sprintf "t:%s:%d:%d" (manager_node mgr) mgr.incarnation mgr.seq in
  Hashtbl.replace mgr.active id ();
  {
    mgr;
    id;
    parent = None;
    root = None;
    writes = String_map.empty;
    read_keys = String_set.empty;
    finished_child = false;
  }

let begin_child parent =
  let r = root parent in
  {
    mgr = parent.mgr;
    id = parent.id;
    parent = Some parent;
    root = Some r;
    writes = String_map.empty;
    read_keys = String_set.empty;
    finished_child = false;
  }

(* Some (Some v) = buffered write, Some None = buffered delete,
   None = not buffered here or above. *)
let rec buffered t okey =
  match String_map.find_opt okey t.writes with
  | Some v -> Some v
  | None -> ( match t.parent with Some p -> buffered p okey | None -> None)

let read t ~node ~key : string option io =
 fun k ->
  let ok = okey ~node ~key in
  match buffered t ok with
  | Some v -> k (Ok v)
  | None ->
    let r = root t in
    let mgr = t.mgr in
    let handle = function
      | Ok body -> (
        match Txrecord.dec_read_reply body with
        | Ok v ->
          r.read_keys <- String_set.add ok r.read_keys;
          k (Ok v)
        | Error reason -> k (Error (`Conflict reason)))
      | Error _ -> k (Error `Timeout)
    in
    Rpc.call mgr.rpc ~src:(manager_node mgr) ~dst:node ~service:Txrecord.service_read
      ~body:(Txrecord.enc_read_req (t.id, key))
      handle

let write t ~node ~key ~value =
  t.writes <- String_map.add (okey ~node ~key) (Some value) t.writes

let delete t ~node ~key = t.writes <- String_map.add (okey ~node ~key) None t.writes

(* Group the root's read locks and writes per participant node. *)
let participants_of_root r =
  let add_write ok value acc =
    let node, key = split_okey ok in
    let reads, writes = try String_map.find node acc with Not_found -> ([], []) in
    String_map.add node (reads, (key, value) :: writes) acc
  in
  let add_read ok acc =
    let node, key = split_okey ok in
    let reads, writes = try String_map.find node acc with Not_found -> ([], []) in
    String_map.add node (key :: reads, writes) acc
  in
  let with_writes = String_map.fold add_write r.writes String_map.empty in
  String_set.fold add_read r.read_keys with_writes

let abort_at_participants mgr txid nodes =
  let tell node =
    Rpc.call mgr.rpc ~src:(manager_node mgr) ~dst:node ~service:Txrecord.service_abort
      ~body:(Txrecord.enc_txid txid) (fun _ -> ())
  in
  List.iter tell nodes

let commit_top (t : t) : unit io =
 fun k ->
  let mgr = t.mgr in
  let by_node = participants_of_root t in
  let nodes = List.map fst (String_map.bindings by_node) in
  if nodes = [] then begin
    Hashtbl.remove mgr.active t.id;
    mgr.committed_total <- mgr.committed_total + 1;
    Sim.emit mgr.sim ~src:(manager_node mgr) (Event.Txn_resolved { txid = t.id; committed = true });
    k (Ok ())
  end
  else begin
    let votes_left = ref (List.length nodes) in
    let failed = ref None in
    let conclude () =
      match !failed with
      | None ->
        Wal.append mgr.clog (Txrecord.C_committed { txid = t.id; participants = nodes });
        Hashtbl.replace mgr.committed t.id nodes;
        Hashtbl.remove mgr.active t.id;
        mgr.committed_total <- mgr.committed_total + 1;
        Sim.emit mgr.sim ~src:(manager_node mgr) (Event.Txn_resolved { txid = t.id; committed = true });
        push_commits mgr t.id nodes (fun () -> k (Ok ()))
      | Some e ->
        Hashtbl.remove mgr.active t.id;
        abort_at_participants mgr t.id nodes;
        Sim.emit mgr.sim ~src:(manager_node mgr) (Event.Txn_resolved { txid = t.id; committed = false });
        k (Error e)
    in
    let prepare node (read_keys, writes) =
      let body =
        Txrecord.enc_prepare_req ~txid:t.id ~coordinator:(manager_node mgr) ~read_keys ~writes
      in
      let handle outcome =
        (match outcome with
        | Ok vote when Txrecord.dec_vote vote -> ()
        | Ok _ -> if !failed = None then failed := Some (`Conflict "prepare refused")
        | Error _ -> if !failed = None then failed := Some `Timeout);
        decr votes_left;
        if !votes_left = 0 then conclude ()
      in
      Rpc.call mgr.rpc ~src:(manager_node mgr) ~dst:node ~service:Txrecord.service_prepare ~body
        handle
    in
    String_map.iter prepare by_node
  end

let merge_into_parent t =
  match t.parent with
  | None -> invalid_arg "Txn.merge_into_parent: root"
  | Some parent ->
    parent.writes <- String_map.union (fun _ child _parent -> Some child) t.writes parent.writes

let commit t : unit io =
 fun k ->
  if t.finished_child then k (Error (`Aborted "transaction already finished"))
  else
    match t.parent with
    | Some _ ->
      merge_into_parent t;
      t.finished_child <- true;
      k (Ok ())
    | None -> commit_top t k

let abort t =
  match t.parent with
  | Some _ ->
    t.writes <- String_map.empty;
    t.finished_child <- true
  | None ->
    let mgr = t.mgr in
    Hashtbl.remove mgr.active t.id;
    let by_node = participants_of_root t in
    abort_at_participants mgr t.id (List.map fst (String_map.bindings by_node));
    Sim.emit mgr.sim ~src:(manager_node mgr) (Event.Txn_resolved { txid = t.id; committed = false })

let run mgr ?(max_attempts = 16) body : 'a io =
 fun k ->
  let rec attempt n =
    let t = begin_ mgr in
    let retry n e =
      match e with
      | (`Conflict _ | `Timeout) when n < max_attempts ->
        let backoff = Sim.ms 5 * n in
        let jitter = Rng.int mgr.rng (Sim.ms 5) in
        ignore (Sim.schedule mgr.sim ~delay:(backoff + jitter) (fun () -> attempt (n + 1)))
      | _ -> k (Error e)
    in
    let finish = function
      | Ok v -> (
        commit t (function
          | Ok () -> k (Ok v)
          | Error e -> retry n e))
      | Error e ->
        abort t;
        retry n e
    in
    body t finish
  in
  attempt 1

let compact mgr =
  (* keep: one incarnation record per epoch, plus committed-but-not-done
     transactions (their commit push must resume after a crash) *)
  let live =
    List.filter
      (function
        | Txrecord.C_incarnation -> true
        | Txrecord.C_committed { txid; _ } -> not (Hashtbl.mem mgr.finished txid)
        | Txrecord.C_done _ -> false)
      (Wal.records mgr.clog)
  in
  Wal.rewrite mgr.clog live

let committed_count mgr = mgr.committed_total

let resumed_commits mgr = mgr.resumed_total
