(** Transactions: the client API and the per-node coordinator.

    The programming model mirrors what the paper takes from OTSArjuna:
    top-level atomic actions over persistent objects living on arbitrary
    nodes, with nested actions inside. Commit runs presumed-abort
    two-phase commit; the decision is logged before the commit phase and
    a recovered coordinator finishes the commit phase, while recovered
    participants poll [tx.status], so a committed transaction's effects
    eventually reach every participant despite a finite number of
    crashes and message losses.

    Commit takes a fast lane when the transaction's shape allows it:
    read-only transactions validate-and-release in one round with no
    logging; single-participant transactions use one-phase commit (a
    combined prepare+commit decided at the participant — a direct local
    call with a single log append when that participant is the
    coordinator's own node); and in general 2PC, read-only participants
    vote and release in phase 1 and are excluded from the commit
    fan-out. Remote fault semantics are unchanged: every lane presumes
    abort, and only a logged [C_committed] obligates recovery.

    Everything is continuation-passing (the simulator is event-driven);
    the ['a io] monad keeps call sites readable. Nested transactions are
    coordinator-local: children buffer writes and merge them into the
    parent on child commit, share the root's locks, and vanish on child
    abort. *)

type error =
  [ `Conflict of string  (** lock conflict, holder's txid *)
  | `Timeout  (** a participant stayed unreachable *)
  | `Aborted of string ]

type 'a io = (('a, error) result -> unit) -> unit

val return : 'a -> 'a io

val fail : error -> 'a io

val ( let* ) : 'a io -> ('a -> 'b io) -> 'b io

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

(** {1 Managers} *)

type manager

val manager : rpc:Rpc.t -> node:Node.t -> manager
(** One per node; installs the [tx.status] service and crash/recovery
    hooks. The node must already be RPC-attached. *)

val manager_node : manager -> string

(** {1 Transactions} *)

type t

val begin_ : manager -> t

val begin_child : t -> t
(** Nested transaction. *)

val txid : t -> string

val is_top : t -> bool

val read : t -> node:string -> key:string -> string option io
(** Sees this transaction's (and its ancestors') buffered writes first;
    otherwise read-locks and fetches the committed value. *)

val write : t -> node:string -> key:string -> value:string -> unit
(** Buffered locally; made visible at top-level commit. *)

val delete : t -> node:string -> key:string -> unit
(** Buffered deletion; the key disappears at top-level commit. *)

val commit : t -> unit io
(** For a child: merge into parent (never fails). For a top-level
    transaction: two-phase commit; [Ok ()] means the decision is logged
    durably {e and} every participant has applied it. *)

val abort : t -> unit
(** Child: discard. Top-level: release locks everywhere (best effort;
    presumed abort makes stragglers clean up on their own). *)

val run : manager -> ?max_attempts:int -> (t -> 'a io) -> 'a io
(** [run mgr body] wraps begin/body/commit and retries the whole
    transaction on [`Conflict] (with linear backoff and jitter) up to
    [max_attempts] (default 16) times. A body failure aborts the
    transaction; [`Conflict]/[`Timeout] failures are retried, any other
    failure is final. *)

val compact : manager -> unit
(** Compact the coordinator's decision log: drop records of transactions
    whose commit phase has completed (decision pushed to and acknowledged
    by every participant), keeping undecided commits and the incarnation
    count. Safe at any time; bounds log growth in long-lived nodes. *)

(** {1 Introspection} *)

val committed_count : manager -> int
(** Transactions this coordinator decided to commit (lifetime). *)

val active_count : manager -> int
(** Top-level transactions begun here and not yet resolved. A quiescent
    coordinator has none; leftovers are stuck transactions
    (fault-exploration oracle). *)

val undecided_commits : manager -> int
(** Committed decisions whose commit phase has not finished pushing to
    every participant. Non-zero at quiescence means a commit push is
    stuck. *)

val resumed_commits : manager -> int
(** Commit phases resumed by recovery. *)

val one_phase_commits : manager -> int
(** Transactions committed through the single-participant one-phase
    lane (lifetime). *)

val readonly_elisions : manager -> int
(** Read-only participants released in phase 1 and excluded from the
    commit fan-out, summed over committed transactions (lifetime). *)
