(** Per-node lock table (strict two-phase locking, abort-on-conflict).

    Locks are tagged with the top-level transaction id, so nested
    transactions share their root's locks. Conflicts are reported
    immediately rather than queued: the caller aborts and retries with
    backoff, which keeps the event-driven protocol deadlock-free. The
    table is volatile — after a crash, write locks of prepared
    transactions are re-acquired from the intentions log. *)

type t

type outcome =
  | Granted
  | Conflict of string  (** holder transaction id *)

val create : unit -> t

val read : t -> key:string -> txid:string -> outcome
(** Shared lock; granted alongside other readers, and re-granted to a
    transaction that already holds the write lock. *)

val write : t -> key:string -> txid:string -> outcome
(** Exclusive lock; upgrades the caller's own read lock when it is the
    sole reader. *)

val holds_read : t -> key:string -> txid:string -> bool

val holds_write : t -> key:string -> txid:string -> bool

val release_all : t -> txid:string -> unit
(** Drop every lock held by [txid] (commit or abort). *)

val reset : t -> unit
(** Crash: forget everything. *)

val held_keys : t -> txid:string -> string list
(** Sorted; for tests. *)

val held_total : t -> int
(** Total live lock grants across all transactions (each reader of a key
    counts once). 0 means the table is fully drained — what a quiescent
    node must look like; leftovers are orphaned locks. *)
