(** Request/response with timeouts, bounded retries and server-side
    de-duplication on top of {!Network}.

    Retried requests carry the same request id; the server caches
    replies per request id, so application handlers execute at most once
    per request even when the transport retries (at-least-once delivery,
    at-most-once execution — the CORBA-ish contract the paper's
    execution environment assumes). The dedup cache is volatile: a
    server crash may re-execute a request after recovery, so handlers
    that survive crashes must themselves be idempotent, which the
    transaction layer's log records guarantee.

    The dedup cache is bounded: each server endpoint keeps at most
    [reply_cache_cap] replies (default 1024) and evicts the oldest
    first. An evicted reply demotes a late duplicate of that request to
    a re-execution — the same degradation a server crash causes, and
    safe for the same reason (handlers that matter are idempotent).
    Evictions are counted and announced as [Rpc_reply_evicted].

    Self-addressed calls ([src = dst]) on a live node take a loopback
    lane: the request is handed to the local handler on a deferred
    simulation event without touching {!Network} — no latency, jitter,
    loss, partitions or retries, and no dedup cache (the handler runs
    exactly once). The callback discipline is unchanged: delivery stays
    asynchronous, and a crash between call and delivery suppresses the
    callback just as for remote calls. If the node is down at call time
    the normal network path (and its drop-to-timeout semantics) is used.
    Loopback hits are counted and announced as [Rpc_loopback]. *)

type t

val create : ?reply_cache_cap:int -> Network.t -> t

val network : t -> Network.t

val attach : t -> Node.t -> unit
(** Install the RPC envelope service on a node. Must be called once per
    node before it can send or serve calls. *)

val serve_async : t -> Node.t -> service:string -> (src:string -> string -> reply:((string, string) result -> unit) -> unit) -> unit
(** Register a service whose reply is produced later: the handler
    receives a [reply] continuation instead of returning a string, so
    multi-round protocols (consensus appends, quorum waits) can answer
    once their outcome is known. At most one invocation runs per request
    id — duplicates arriving while the first is in flight are dropped,
    and the eventual reply answers them all (retries share the id). The
    reply is cached in the ordinary dedup cache once produced. A crash
    fences outstanding invocations: their late [reply] calls are
    discarded, and the client's retry after recovery re-runs the
    handler, so async handlers need the same idempotence discipline as
    crash-re-executed sync handlers. Requires {!attach} first. *)

val call :
  t ->
  src:string ->
  dst:string ->
  service:string ->
  body:string ->
  ?timeout:Sim.time ->
  ?retries:int ->
  ((string, string) result -> unit) ->
  unit
(** [call t ~src ~dst ~service ~body k] invokes [service] on [dst].
    [k (Ok reply)] on success. [k (Error reason)] when the service
    raised, is unknown, or all [retries] attempts (default 8) timed out
    ([timeout] default 10ms per attempt). If the calling node crashes
    while the call is outstanding, [k] is never invoked. *)

val calls_total : t -> int

val retries_total : t -> int

val dedup_hits_total : t -> int

val reply_evictions_total : t -> int
(** Replies dropped from bounded dedup caches (lifetime, all nodes). *)

val loopback_total : t -> int
(** Self-addressed calls delivered locally without touching the
    network. *)
