let req_service = "$rpc.req"

let rsp_service = "$rpc.rsp"

type pending = {
  dst : string;
  service : string;
  body : string;
  timeout : Sim.time;
  mutable attempts_left : int;
  callback : (string, string) result -> unit;
  mutable timer : Sim.handle option;
}

type async_handler = src:string -> string -> reply:((string, string) result -> unit) -> unit

type endpoint = {
  pending_calls : (string, pending) Hashtbl.t;  (** client side, volatile *)
  replies_cache : (string, string) Hashtbl.t;  (** server side, volatile *)
  reply_order : string Queue.t;
      (** request ids in insertion order; the eviction cursor of the
          bounded cache (ids are unique, so FIFO is LRU here) *)
  async_services : (string, async_handler) Hashtbl.t;
      (** services whose reply is produced later via a continuation *)
  inflight : (string, unit) Hashtbl.t;
      (** request ids whose async handler is running but has not replied
          yet — duplicates arriving in the window are dropped (volatile,
          so a crash re-admits the retry after recovery) *)
  mutable epoch : int;
      (** bumped on every crash; fences stale deferred replies *)
}

type t = {
  net : Network.t;
  endpoints : (string, endpoint) Hashtbl.t;
  reply_cache_cap : int;
  mutable next_req : int;
  mutable calls : int;
  mutable retries : int;
  mutable dedup_hits : int;
  mutable reply_evictions : int;
  mutable loopbacks : int;
}

let create ?(reply_cache_cap = 1024) net =
  if reply_cache_cap < 1 then invalid_arg "Rpc.create: reply_cache_cap must be >= 1";
  {
    net;
    endpoints = Hashtbl.create 8;
    reply_cache_cap;
    next_req = 0;
    calls = 0;
    retries = 0;
    dedup_hits = 0;
    reply_evictions = 0;
    loopbacks = 0;
  }

let network t = t.net

let encode_req = Wire.(triple string string string)
(* req_id, service, body *)

let decode_req = Wire.(decode (d_triple d_string d_string d_string))

let encode_rsp (req_id, result) =
  let payload = match result with Ok r -> Wire.bool true ^ Wire.string r | Error e -> Wire.bool false ^ Wire.string e in
  Wire.string req_id ^ payload

let decode_rsp body =
  let open Wire in
  decode
    (fun d ->
      let req_id = d_string d in
      let ok = d_bool d in
      let payload = d_string d in
      (req_id, if ok then Ok payload else Error payload))
    body

let endpoint t node_id =
  match Hashtbl.find_opt t.endpoints node_id with
  | Some ep -> ep
  | None -> invalid_arg ("Rpc: node not attached: " ^ node_id)

let cache_reply t ep ~node encoded req_id =
  while Hashtbl.length ep.replies_cache >= t.reply_cache_cap do
    let oldest = Queue.pop ep.reply_order in
    Hashtbl.remove ep.replies_cache oldest;
    t.reply_evictions <- t.reply_evictions + 1;
    Sim.emit (Network.sim t.net) ~src:(Node.id node)
      (Event.Rpc_reply_evicted { node = Node.id node })
  done;
  Hashtbl.replace ep.replies_cache req_id encoded;
  Queue.add req_id ep.reply_order

let handle_request t node ~src body =
  let req_id, service, payload = decode_req body in
  let ep = endpoint t (Node.id node) in
  let send encoded =
    Network.send t.net ~src:(Node.id node) ~dst:src ~service:rsp_service ~body:encoded
  in
  (match Hashtbl.find_opt ep.replies_cache req_id with
  | Some cached ->
    t.dedup_hits <- t.dedup_hits + 1;
    send cached
  | None -> (
    match Hashtbl.find_opt ep.async_services service with
    | Some h ->
      (* Deferred reply: the handler completes later via [reply]. A
         duplicate arriving while the first invocation is still running
         is dropped — the eventual reply answers the request id, which
         every retry shares, so the caller still gets it. The epoch
         fence suppresses replies produced by an invocation that
         started before a crash: after recovery the retry re-runs the
         handler, and only the fresh invocation may answer. *)
      if Hashtbl.mem ep.inflight req_id then t.dedup_hits <- t.dedup_hits + 1
      else begin
        Hashtbl.replace ep.inflight req_id ();
        let epoch = ep.epoch in
        let reply outcome =
          if ep.epoch = epoch && Node.up node && Hashtbl.mem ep.inflight req_id then begin
            Hashtbl.remove ep.inflight req_id;
            let encoded = encode_rsp (req_id, outcome) in
            cache_reply t ep ~node encoded req_id;
            send encoded
          end
        in
        try h ~src payload ~reply with exn -> reply (Error (Printexc.to_string exn))
      end
    | None ->
      let outcome =
        match Node.handler node ~service with
        | None -> Error ("no such service: " ^ service)
        | Some h -> ( try Ok (h ~src payload) with exn -> Error (Printexc.to_string exn))
      in
      let encoded = encode_rsp (req_id, outcome) in
      cache_reply t ep ~node encoded req_id;
      send encoded));
  ""

let handle_response t node ~src:_ body =
  let req_id, result = decode_rsp body in
  let ep = endpoint t (Node.id node) in
  (match Hashtbl.find_opt ep.pending_calls req_id with
  | None -> () (* late duplicate, or caller crashed since *)
  | Some p ->
    Hashtbl.remove ep.pending_calls req_id;
    (match p.timer with Some h -> Sim.cancel (Network.sim t.net) h | None -> ());
    p.callback result);
  ""

let attach t node =
  let id = Node.id node in
  if not (Hashtbl.mem t.endpoints id) then begin
    let ep =
      {
        pending_calls = Hashtbl.create 16;
        replies_cache = Hashtbl.create 16;
        reply_order = Queue.create ();
        async_services = Hashtbl.create 4;
        inflight = Hashtbl.create 4;
        epoch = 0;
      }
    in
    Hashtbl.replace t.endpoints id ep;
    Node.serve node ~service:req_service (handle_request t node);
    Node.serve node ~service:rsp_service (handle_response t node);
    Node.on_crash node (fun () ->
        Hashtbl.reset ep.pending_calls;
        Hashtbl.reset ep.replies_cache;
        Queue.clear ep.reply_order;
        Hashtbl.reset ep.inflight;
        ep.epoch <- ep.epoch + 1)
  end

let serve_async t node ~service handler =
  let ep = endpoint t (Node.id node) in
  Hashtbl.replace ep.async_services service handler

let rec attempt t ~src ~req_id p =
  let body = encode_req (req_id, p.service, p.body) in
  Network.send t.net ~src ~dst:p.dst ~service:req_service ~body;
  let ep = endpoint t src in
  let on_timeout () =
    match Hashtbl.find_opt ep.pending_calls req_id with
    | None -> ()
    | Some p ->
      if p.attempts_left > 0 then begin
        p.attempts_left <- p.attempts_left - 1;
        t.retries <- t.retries + 1;
        Sim.emit (Network.sim t.net) ~src
          (Event.Rpc_retried { src; dst = p.dst; service = p.service });
        attempt t ~src ~req_id p
      end
      else begin
        Hashtbl.remove ep.pending_calls req_id;
        Sim.emit (Network.sim t.net) ~src
          (Event.Rpc_timed_out { src; dst = p.dst; service = p.service });
        p.callback (Error "timeout")
      end
  in
  p.timer <- Some (Sim.schedule (Network.sim t.net) ~delay:p.timeout on_timeout)

(* Loopback lane: the request never touches [Network] — no latency, no
   jitter, no loss, no retry machinery — but keeps the call asynchronous
   (deferred to a delay-0 event) so callers observe the same callback
   discipline as remote calls. The pending entry doubles as the crash
   fence: [on_crash] resets the table, so a node that crashes between
   issuing the call and the deferred delivery never sees the callback,
   exactly like a remote caller. *)
let deliver_loopback t ~src ~req_id node =
  let ep = endpoint t src in
  match Hashtbl.find_opt ep.pending_calls req_id with
  | None -> () (* caller crashed since the call was made *)
  | Some p ->
    if not (Node.up node) then Hashtbl.remove ep.pending_calls req_id
    else begin
      match Hashtbl.find_opt ep.async_services p.service with
      | Some h ->
        (* the pending entry stays until the deferred reply arrives, so
           the usual crash fence (on_crash resets the table) applies to
           the whole deferred window, not just the delivery hop *)
        let reply outcome =
          match Hashtbl.find_opt ep.pending_calls req_id with
          | None -> ()
          | Some p ->
            Hashtbl.remove ep.pending_calls req_id;
            p.callback outcome
        in
        (try h ~src p.body ~reply with exn -> reply (Error (Printexc.to_string exn)))
      | None ->
        Hashtbl.remove ep.pending_calls req_id;
        let result =
          match Node.handler node ~service:p.service with
          | None -> Error ("no such service: " ^ p.service)
          | Some h -> ( try Ok (h ~src p.body) with exn -> Error (Printexc.to_string exn))
        in
        p.callback result
    end

let call t ~src ~dst ~service ~body ?(timeout = Sim.ms 10) ?(retries = 8) callback =
  let ep = endpoint t src in
  t.calls <- t.calls + 1;
  Sim.emit (Network.sim t.net) ~src (Event.Rpc_sent { src; dst; service });
  t.next_req <- t.next_req + 1;
  let req_id = Printf.sprintf "%s#%d" src t.next_req in
  let p = { dst; service; body; timeout; attempts_left = retries; callback; timer = None } in
  Hashtbl.replace ep.pending_calls req_id p;
  match Network.find_node t.net src with
  | Some node when dst = src && Node.up node ->
    t.loopbacks <- t.loopbacks + 1;
    Sim.emit (Network.sim t.net) ~src (Event.Rpc_loopback { node = src; service });
    ignore (Sim.schedule (Network.sim t.net) ~delay:0 (fun () -> deliver_loopback t ~src ~req_id node))
  | Some _ | None -> attempt t ~src ~req_id p

let calls_total t = t.calls

let retries_total t = t.retries

let dedup_hits_total t = t.dedup_hits

let reply_evictions_total t = t.reply_evictions

let loopback_total t = t.loopbacks
