exception Malformed of string

type 'a enc = 'a -> string

type 'a embed = Buffer.t -> 'a -> unit

type decoder = { input : string; mutable pos : int }

(* Buffer-threaded core: every encoder appends into one shared buffer,
   so nested lists cost one pass instead of the quadratic copying that
   [^]/[String.concat] composition paid on each level of nesting. *)

(* Decimal digits straight into the buffer — no [string_of_int]
   intermediate on the frame-header hot path. [n] must be >= 0. *)
let rec add_decimal buf n =
  if n >= 10 then add_decimal buf (n / 10);
  Buffer.add_char buf (Char.unsafe_chr (Char.code '0' + (n mod 10)))

let b_frame buf payload =
  add_decimal buf (String.length payload);
  Buffer.add_char buf ':';
  Buffer.add_string buf payload

let b_string = b_frame

let rec decimal_width n = if n < 10 then 1 else 1 + decimal_width (n / 10)

let b_int buf n =
  if n < 0 then b_frame buf (string_of_int n)
  else begin
    (* frame header is the digit count of [n] itself; skip the payload
       string entirely *)
    add_decimal buf (decimal_width n);
    Buffer.add_char buf ':';
    add_decimal buf n
  end

let b_bool buf b = b_frame buf (if b then "t" else "f")

let b_pair ea eb buf (a, b) =
  ea buf a;
  eb buf b

let b_triple ea eb ec buf (a, b, c) =
  ea buf a;
  eb buf b;
  ec buf c

let b_list e buf items =
  b_int buf (List.length items);
  List.iter (fun item -> e buf item) items

let b_option e buf = function
  | None -> b_bool buf false
  | Some v ->
    b_bool buf true;
    e buf v

(* One scratch buffer per domain, reused across [run] calls so steady-
   state encoding allocates only the final [Buffer.contents] string.
   Legacy combinators nest [run] (e.g. [pair Wire.int Wire.int] renders
   each element through its own [run]), so the scratch carries an
   [in_use] guard: re-entrant calls fall back to a fresh buffer rather
   than clobbering the outer encoder's bytes. Domain-local storage keeps
   parallel explore workers from sharing the scratch. *)
type scratch = { s_buf : Buffer.t; mutable s_in_use : bool }

let scratch_key = Domain.DLS.new_key (fun () -> { s_buf = Buffer.create 256; s_in_use = false })

let run e v =
  let s = Domain.DLS.get scratch_key in
  if s.s_in_use then begin
    let buf = Buffer.create 64 in
    e buf v;
    Buffer.contents buf
  end
  else begin
    s.s_in_use <- true;
    Buffer.clear s.s_buf;
    match e s.s_buf v with
    | () ->
      let out = Buffer.contents s.s_buf in
      s.s_in_use <- false;
      out
    | exception ex ->
      s.s_in_use <- false;
      raise ex
  end

(* Legacy string combinators, kept as thin wrappers over the buffer
   core. [embed] can't be recovered from an opaque ['a enc], so the
   composite wrappers append each element's rendered string — still a
   single output buffer, no repeated concatenation. *)

let frame payload = run b_frame payload

let string s = frame s

let int n = run b_int n

let bool b = run b_bool b

let lift e buf v = Buffer.add_string buf (e v)

let pair ea eb v = run (b_pair (lift ea) (lift eb)) v

let triple ea eb ec v = run (b_triple (lift ea) (lift eb) (lift ec)) v

let list e items = run (b_list (lift e)) items

let option e v = run (b_option (lift e)) v

let decoder input = { input; pos = 0 }

let at_end d = d.pos >= String.length d.input

let fail d msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg d.pos))

(* The scanning loops live at toplevel (not nested in the decoders) so
   no per-call closure is allocated for them: a nested [let rec] that
   captures the decoder costs a heap block on every frame without
   flambda. Both return -1 on malformed input; the caller turns that
   into the positioned [Malformed] error. *)
let rec scan_colon input i limit =
  if i >= limit then -1
  else if String.unsafe_get input i = ':' then i
  else scan_colon input (i + 1) limit

(* Accumulates decimal digits in [first, stop). Caller guarantees the
   digit count cannot overflow (length headers are bounded by the input
   size; int payloads are capped at 17 digits before calling). *)
let rec scan_digits input i stop acc =
  if i >= stop then acc
  else begin
    let c = String.unsafe_get input i in
    if c >= '0' && c <= '9' then
      scan_digits input (i + 1) stop ((acc * 10) + (Char.code c - Char.code '0'))
    else -1
  end

(* Parses the [len ':'] frame header in place, advances [d.pos] to the
   payload start and returns the payload length — a bare int, so the
   header costs no allocation at all. [d.pos] is only moved on success,
   which keeps [fail]'s reported offset on the broken header. *)
let d_header d =
  let input = d.input in
  let n = String.length input in
  let colon = scan_colon input d.pos n in
  if colon < 0 then fail d "missing length separator";
  if colon = d.pos then fail d "bad length";
  let len = scan_digits input d.pos colon 0 in
  if len < 0 then fail d "bad length";
  if colon + 1 + len > n then fail d "truncated payload";
  d.pos <- colon + 1;
  len

let d_string d =
  let len = d_header d in
  let start = d.pos in
  let payload = String.sub d.input start len in
  d.pos <- start + len;
  payload

(* Ints are parsed in place — frame header, then decimal digits read
   straight out of the input — so the hot decode path allocates nothing
   (no [String.sub] payload, no [int_of_string] intermediate). *)
let d_int d =
  let input = d.input in
  let len = d_header d in
  let start = d.pos in
  if len = 0 then fail d "bad int";
  let stop = start + len in
  let neg = String.unsafe_get input start = '-' in
  let first = if neg then start + 1 else start in
  if first >= stop then fail d "bad int";
  if stop - first > 17 then begin
    (* 18+ digits can overflow 63-bit int accumulation; take the slow
       path, which also accepts min_int exactly as before *)
    match int_of_string_opt (String.sub input start len) with
    | Some n ->
      d.pos <- stop;
      n
    | None -> fail d "bad int"
  end
  else begin
    let n = scan_digits input first stop 0 in
    if n < 0 then fail d "bad int";
    d.pos <- stop;
    if neg then -n else n
  end

let d_bool d =
  match d_string d with
  | "t" -> true
  | "f" -> false
  | _ -> fail d "bad bool"

let d_pair da db d =
  let a = da d in
  let b = db d in
  (a, b)

let d_triple da db dc d =
  let a = da d in
  let b = db d in
  let c = dc d in
  (a, b, c)

let d_list da d =
  let n = d_int d in
  if n < 0 then fail d "negative list count";
  let rec take k acc = if k = 0 then List.rev acc else take (k - 1) (da d :: acc) in
  take n []

let d_option da d = if d_bool d then Some (da d) else None

let decode da input =
  let d = decoder input in
  let v = da d in
  if not (at_end d) then fail d "trailing bytes";
  v
