exception Malformed of string

type 'a enc = 'a -> string

type 'a embed = Buffer.t -> 'a -> unit

type decoder = { input : string; mutable pos : int }

(* Buffer-threaded core: every encoder appends into one shared buffer,
   so nested lists cost one pass instead of the quadratic copying that
   [^]/[String.concat] composition paid on each level of nesting. *)

let b_frame buf payload =
  Buffer.add_string buf (string_of_int (String.length payload));
  Buffer.add_char buf ':';
  Buffer.add_string buf payload

let b_string = b_frame

let b_int buf n = b_frame buf (string_of_int n)

let b_bool buf b = b_frame buf (if b then "t" else "f")

let b_pair ea eb buf (a, b) =
  ea buf a;
  eb buf b

let b_triple ea eb ec buf (a, b, c) =
  ea buf a;
  eb buf b;
  ec buf c

let b_list e buf items =
  b_int buf (List.length items);
  List.iter (fun item -> e buf item) items

let b_option e buf = function
  | None -> b_bool buf false
  | Some v ->
    b_bool buf true;
    e buf v

let run e v =
  let buf = Buffer.create 64 in
  e buf v;
  Buffer.contents buf

(* Legacy string combinators, kept as thin wrappers over the buffer
   core. [embed] can't be recovered from an opaque ['a enc], so the
   composite wrappers append each element's rendered string — still a
   single output buffer, no repeated concatenation. *)

let frame payload = run b_frame payload

let string s = frame s

let int n = run b_int n

let bool b = run b_bool b

let lift e buf v = Buffer.add_string buf (e v)

let pair ea eb v = run (b_pair (lift ea) (lift eb)) v

let triple ea eb ec v = run (b_triple (lift ea) (lift eb) (lift ec)) v

let list e items = run (b_list (lift e)) items

let option e v = run (b_option (lift e)) v

let decoder input = { input; pos = 0 }

let at_end d = d.pos >= String.length d.input

let fail d msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg d.pos))

let d_string d =
  let len_end =
    match String.index_from_opt d.input d.pos ':' with
    | Some i -> i
    | None -> fail d "missing length separator"
  in
  let len =
    match int_of_string_opt (String.sub d.input d.pos (len_end - d.pos)) with
    | Some n when n >= 0 -> n
    | Some _ | None -> fail d "bad length"
  in
  if len_end + 1 + len > String.length d.input then fail d "truncated payload";
  let payload = String.sub d.input (len_end + 1) len in
  d.pos <- len_end + 1 + len;
  payload

let d_int d =
  match int_of_string_opt (d_string d) with
  | Some n -> n
  | None -> fail d "bad int"

let d_bool d =
  match d_string d with
  | "t" -> true
  | "f" -> false
  | _ -> fail d "bad bool"

let d_pair da db d =
  let a = da d in
  let b = db d in
  (a, b)

let d_triple da db dc d =
  let a = da d in
  let b = db d in
  let c = dc d in
  (a, b, c)

let d_list da d =
  let n = d_int d in
  if n < 0 then fail d "negative list count";
  let rec take k acc = if k = 0 then List.rev acc else take (k - 1) (da d :: acc) in
  take n []

let d_option da d = if d_bool d then Some (da d) else None

let decode da input =
  let d = decoder input in
  let v = da d in
  if not (at_end d) then fail d "trailing bytes";
  v
