exception Malformed of string

type 'a enc = 'a -> string

type decoder = { input : string; mutable pos : int }

let frame payload = Printf.sprintf "%d:%s" (String.length payload) payload

let string s = frame s

let int n = frame (string_of_int n)

let bool b = frame (if b then "t" else "f")

let pair ea eb (a, b) = ea a ^ eb b

let triple ea eb ec (a, b, c) = ea a ^ eb b ^ ec c

let list e items = int (List.length items) ^ String.concat "" (List.map e items)

let option e = function None -> bool false | Some v -> bool true ^ e v

let decoder input = { input; pos = 0 }

let at_end d = d.pos >= String.length d.input

let fail d msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg d.pos))

let d_string d =
  let len_end =
    match String.index_from_opt d.input d.pos ':' with
    | Some i -> i
    | None -> fail d "missing length separator"
  in
  let len =
    match int_of_string_opt (String.sub d.input d.pos (len_end - d.pos)) with
    | Some n when n >= 0 -> n
    | Some _ | None -> fail d "bad length"
  in
  if len_end + 1 + len > String.length d.input then fail d "truncated payload";
  let payload = String.sub d.input (len_end + 1) len in
  d.pos <- len_end + 1 + len;
  payload

let d_int d =
  match int_of_string_opt (d_string d) with
  | Some n -> n
  | None -> fail d "bad int"

let d_bool d =
  match d_string d with
  | "t" -> true
  | "f" -> false
  | _ -> fail d "bad bool"

let d_pair da db d =
  let a = da d in
  let b = db d in
  (a, b)

let d_triple da db dc d =
  let a = da d in
  let b = db d in
  let c = dc d in
  (a, b, c)

let d_list da d =
  let n = d_int d in
  if n < 0 then fail d "negative list count";
  let rec take k acc = if k = 0 then List.rev acc else take (k - 1) (da d :: acc) in
  take n []

let d_option da d = if d_bool d then Some (da d) else None

let decode da input =
  let d = decoder input in
  let v = da d in
  if not (at_end d) then fail d "trailing bytes";
  v
