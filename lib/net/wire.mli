(** Tiny netstring-style wire codec.

    Every message crossing the simulated network is a string; services
    use these combinators instead of ad-hoc [Printf]/[Scanf] so that
    payloads containing delimiters round-trip safely. *)

exception Malformed of string

type 'a enc = 'a -> string

type 'a embed = Buffer.t -> 'a -> unit
(** Buffer-threaded encoder: appends the framed value to a shared
    buffer. The core representation — composing [embed]s costs one pass
    over the data regardless of nesting depth, where the ['a enc]
    string combinators used to re-copy every enclosed payload. *)

type decoder

(** {1 Buffer-threaded encoders} *)

val b_string : string embed
val b_int : int embed
val b_bool : bool embed
val b_pair : 'a embed -> 'b embed -> ('a * 'b) embed
val b_triple : 'a embed -> 'b embed -> 'c embed -> ('a * 'b * 'c) embed
val b_list : 'a embed -> 'a list embed
val b_option : 'a embed -> 'a option embed

val run : 'a embed -> 'a -> string
(** Render through a fresh buffer. *)

(** {1 String combinators (thin wrappers over the buffer core)} *)

val string : string enc
val int : int enc
val bool : bool enc
val pair : 'a enc -> 'b enc -> ('a * 'b) enc
val triple : 'a enc -> 'b enc -> 'c enc -> ('a * 'b * 'c) enc
val list : 'a enc -> 'a list enc
val option : 'a enc -> 'a option enc

val decoder : string -> decoder

val at_end : decoder -> bool

val d_string : decoder -> string
val d_int : decoder -> int
val d_bool : decoder -> bool
val d_pair : (decoder -> 'a) -> (decoder -> 'b) -> decoder -> 'a * 'b
val d_triple : (decoder -> 'a) -> (decoder -> 'b) -> (decoder -> 'c) -> decoder -> 'a * 'b * 'c
val d_list : (decoder -> 'a) -> decoder -> 'a list
val d_option : (decoder -> 'a) -> decoder -> 'a option

val decode : (decoder -> 'a) -> string -> 'a
(** Runs the decoder and checks the whole input was consumed. *)
