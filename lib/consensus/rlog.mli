(** Deterministic leader-based replicated log (the consensus layer).

    A replica group keeps an append-only sequence of opaque payloads —
    "an append-only sequence of inputs managed by some form of
    consensus" — and applies the committed prefix, in order, to a
    deterministic state machine on every replica. The protocol is a
    deliberately small Raft-shaped core:

    - one leader per term; clients append through the leader;
    - an entry commits once a quorum of replicas holds it, and the
      leader only counts quorums for entries of its own term (older
      entries commit transitively under a no-op the new leader appends
      on election);
    - elections are {e demand-driven}: a replica campaigns when a
      client that failed to reach the leader nudges it (and, at
      bootstrap, the lowest-ranked replica campaigns once). There are
      no standing heartbeat timers — every timer the module schedules
      is bounded, so a quiescent group drains the simulator;
    - rejoining replicas catch up through the ordinary replication
      stream: a recovery ping tells the leader to resume pushing, and
      log conflicts are resolved by suffix truncation.

    Durability: term, vote, log entries and commit index live in a
    WAL-backed {!Kvstore} per replica. The applied state machine is
    volatile — on recovery the replica {!val-create}'s [reset] hook
    wipes it and the committed prefix is replayed from the log, so a
    crash can never leave a half-applied command behind.

    Determinism: every delay is a fixed constant, election retries are
    staggered by replica rank (sorted node id), and all I/O goes
    through the simulated RPC layer — same seed, same schedule, same
    byte-identical outcome. *)

type t

type role = Follower | Candidate | Leader

val create :
  rpc:Rpc.t ->
  node:Node.t ->
  peers:string list ->
  apply:(string -> string) ->
  reset:(unit -> unit) ->
  unit ->
  t
(** One replica of the group [peers] (which must contain the node's own
    id). [apply] executes a committed payload against the local state
    machine and returns the client reply; it runs exactly once per
    entry per incarnation, in log order. [reset] wipes the state
    machine before recovery replays the committed prefix. Installs the
    [cons.*] services and crash/recovery hooks on [node]; the
    lowest-ranked replica schedules the bootstrap election. *)

val node_id : t -> string

val peers : t -> string list
(** Sorted group membership. *)

val role : t -> role

val current_term : t -> int

val leader_hint : t -> string option
(** Who this replica believes leads the current term, if anyone. *)

val commit_index : t -> int

val log_length : t -> int

val committed : t -> (int * string) list
(** The committed prefix as [(term, payload)] pairs, oldest first —
    what the log-linearizability oracle compares across replicas.
    Includes the empty-payload no-ops leaders append on election. *)

val start_election : t -> unit
(** Campaign for leadership (no-op on a current leader or while a
    campaign is already running). Exposed for tests; normal operation
    triggers this through urgent client appends. *)

(** {1 Service names} *)

val service_append : string
(** Client entry point: [(urgent, payload)]. Replies are tagged
    ["ok" reply], ["redirect" node], ["electing"] or ["noleader"];
    {!Rlog_client} speaks this protocol. *)

val service_replicate : string

val service_vote : string

val service_ping : string
