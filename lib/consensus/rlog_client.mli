(** Replica-set-aware client for a {!Rlog} group.

    Keeps a cached leader guess and speaks the [cons.append] redirect
    protocol: [redirect] replies update the cache, connection failures
    {e invalidate} it (never retry a dead node forever) and fail over
    to the next replica with the urgent flag set — which is what nudges
    a live follower into campaigning when the leader really is gone.
    Every append and read is bounded by [max_steps] hops, so a group
    with no electable leader yields an error, not a loop. *)

type t

val create :
  rpc:Rpc.t -> src:string -> replicas:string list -> ?max_steps:int -> ?retry_delay:Sim.time -> unit -> t
(** [src] is the calling node; [replicas] the group membership.
    [max_steps] (default 16) bounds the total redirect/failover hops of
    one operation; [retry_delay] (default 5ms) is the wait after an
    ["electing"]/["noleader"] reply. *)

val replicas : t -> string list

val leader_guess : t -> string option

val invalidate : t -> unit
(** Drop the cached leader (e.g. after an out-of-band failure). *)

val append : t -> payload:string -> ((string, string) result -> unit) -> unit
(** Replicate [payload] through the current leader; the callback gets
    the state machine's reply once the entry committed. Payloads must
    carry their own idempotence token (the state machine deduplicates),
    because a retry after a leader crash can reach a different leader
    that already holds the first copy. *)

val read : t -> service:string -> body:string -> ((string, string) result -> unit) -> unit
(** Call a plain (read-only) service on the replica set: the cached
    leader first — freshest, since it applies entries as they commit —
    then surviving replicas on connection failure. *)
