type role = Follower | Candidate | Leader

type entry = {
  e_term : int;
  e_payload : string;  (* "" is the leader's election no-op *)
}

type t = {
  rpc : Rpc.t;
  node : Node.t;
  self : string;
  peers : string list;  (* sorted; includes self *)
  others : string list;
  quorum : int;
  rank : int;
  store : Kvstore.t;
  apply : string -> string;
  reset : unit -> unit;
  mutable role : role;
  mutable term : int;
  mutable voted_for : string option;
  mutable entries : entry array;  (* capacity >= loglen; slot i-1 holds index i *)
  mutable loglen : int;
  mutable commit : int;
  mutable applied : int;  (* volatile; trails commit only inside apply_committed *)
  mutable leader_hint : string option;
  mutable electing : bool;
  mutable catching_up : bool;
  mutable epoch : int;  (* bumped per crash; fences timers scheduled before it *)
  pending : (int, (string, string) result -> unit) Hashtbl.t;
      (* leader only: client reply continuations by log index; volatile *)
  next_idx : (string, int) Hashtbl.t;
  match_idx : (string, int) Hashtbl.t;
  inflight : (string, bool) Hashtbl.t;
  pushed_commit : (string, int) Hashtbl.t;
      (* commit watermark last acknowledged by each follower, so quorum
         advances are pushed without standing heartbeats *)
  sync_left : (string, int) Hashtbl.t;
      (* bounded re-send budget per follower; refilled on every ack and
         every recovery ping, so it only ever exhausts against a peer
         that stays unreachable *)
}

let service_append = "cons.append"

let service_replicate = "cons.replicate"

let service_vote = "cons.vote"

let service_ping = "cons.ping"

(* Every delay is a fixed constant: the protocol's only randomness is
   whatever the simulated network injects, so a run is a pure function
   of the seed. *)
let vote_timeout = Sim.ms 5

let replicate_timeout = Sim.ms 10

let probe_timeout = Sim.ms 5

let sync_period = Sim.ms 30

let sync_retries = 12

let election_retry_base = Sim.ms 15

let election_stagger = Sim.ms 10

let election_rounds = 6

let sim t = Network.sim (Rpc.network t.rpc)

let node_id t = t.self

let peers t = t.peers

let role t = t.role

let current_term t = t.term

let leader_hint t = t.leader_hint

let commit_index t = t.commit

let log_length t = t.loglen

(* --- durable representation --- *)

let k_term = "term"

let k_voted = "voted"

let k_len = "n"

let k_commit = "c"

let k_entry i = Printf.sprintf "e:%d" i

let persist_meta t =
  Kvstore.put t.store k_term (string_of_int t.term);
  Kvstore.put t.store k_voted (match t.voted_for with None -> "" | Some v -> v)

let persist_len t = Kvstore.put t.store k_len (string_of_int t.loglen)

let persist_commit t = Kvstore.put t.store k_commit (string_of_int t.commit)

let persist_entry t i =
  let e = t.entries.(i - 1) in
  Kvstore.put t.store (k_entry i) (Wire.(pair int string) (e.e_term, e.e_payload))

let get_entry t i = t.entries.(i - 1)

let last_term t = if t.loglen = 0 then 0 else (get_entry t t.loglen).e_term

let ensure_capacity t n =
  if n > Array.length t.entries then begin
    let cap = max 16 (max n (2 * Array.length t.entries)) in
    let fresh = Array.make cap { e_term = 0; e_payload = "" } in
    Array.blit t.entries 0 fresh 0 t.loglen;
    t.entries <- fresh
  end

let set_entry t i e =
  ensure_capacity t i;
  t.entries.(i - 1) <- e;
  persist_entry t i;
  if i > t.loglen then t.loglen <- i

let committed t =
  List.init t.commit (fun i ->
      let e = get_entry t (i + 1) in
      (e.e_term, e.e_payload))

(* --- state machine application --- *)

let apply_committed t =
  while t.applied < t.commit do
    t.applied <- t.applied + 1;
    let e = get_entry t t.applied in
    let reply = if e.e_payload = "" then "" else t.apply e.e_payload in
    match Hashtbl.find_opt t.pending t.applied with
    | None -> ()
    | Some k ->
      Hashtbl.remove t.pending t.applied;
      k (Ok reply)
  done

let fail_pending t reason =
  let ks = Hashtbl.fold (fun _ k acc -> k :: acc) t.pending [] in
  Hashtbl.reset t.pending;
  List.iter (fun k -> k (Error reason)) ks

(* --- role transitions --- *)

let emit t ev = Sim.emit (sim t) ~src:t.self ev

(* Observed a higher term: whatever we were, we are a follower of it.
   Uncommitted entries we were shepherding may still commit under the
   new leader, or may be truncated — either way the client's retry is
   deduplicated by the state machine, so failing the continuations here
   is safe. *)
let step_down t new_term =
  if new_term > t.term then begin
    if t.role <> Follower then emit t (Event.Cons_stepped_down { node = t.self; term = new_term });
    t.term <- new_term;
    t.voted_for <- None;
    t.role <- Follower;
    t.electing <- false;
    t.leader_hint <- None;
    persist_meta t;
    fail_pending t "deposed"
  end

let inflight t peer = Hashtbl.find_opt t.inflight peer = Some true

(* --- leader-side replication --- *)

let enc_replicate =
  Wire.(
    pair
      (triple int string int)
      (triple int (list (pair int string)) int))

let dec_replicate =
  Wire.(
    decode
      (d_pair
         (d_triple d_int d_string d_int)
         (d_triple d_int (d_list (d_pair d_int d_string)) d_int)))

let rec advance_commit t =
  let n = ref t.commit in
  for i = t.commit + 1 to t.loglen do
    (* only own-term entries establish a quorum; older ones commit
       transitively (the Raft commit rule) *)
    if (get_entry t i).e_term = t.term then begin
      let acks =
        1
        + List.length
            (List.filter
               (fun p -> match Hashtbl.find_opt t.match_idx p with Some m -> m >= i | None -> false)
               t.others)
      in
      if acks >= t.quorum then n := i
    end
  done;
  if !n > t.commit then begin
    t.commit <- !n;
    persist_commit t;
    emit t (Event.Cons_committed { node = t.self; index = t.commit; term = t.term });
    apply_committed t;
    (* push the new watermark to followers that have not seen it — a
       bounded substitute for heartbeats, so follower reads converge
       without keeping the simulator alive forever *)
    List.iter
      (fun p ->
        if Hashtbl.find_opt t.pushed_commit p <> Some t.commit && not (inflight t p) then
          send_replicate t p)
      t.others
  end

and send_replicate t peer =
  if t.role = Leader && not (inflight t peer) then begin
    Hashtbl.replace t.inflight peer true;
    let this_term = t.term and epoch = t.epoch in
    let next = match Hashtbl.find_opt t.next_idx peer with Some n -> n | None -> t.loglen + 1 in
    let prev = next - 1 in
    let prev_term = if prev = 0 then 0 else (get_entry t prev).e_term in
    let batch =
      List.init (t.loglen - prev) (fun i ->
          let e = get_entry t (prev + 1 + i) in
          (e.e_term, e.e_payload))
    in
    let sent_commit = t.commit in
    let body = enc_replicate ((this_term, t.self, prev), (prev_term, batch, sent_commit)) in
    Rpc.call t.rpc ~src:t.self ~dst:peer ~service:service_replicate ~body
      ~timeout:replicate_timeout ~retries:2 (fun res ->
        if t.epoch = epoch then begin
          Hashtbl.replace t.inflight peer false;
          if t.role = Leader && t.term = this_term then begin
            match res with
            | Ok rsp -> (
              match Wire.(decode (d_triple d_int d_bool d_int)) rsp with
              | exception Wire.Malformed _ -> ()
              | rterm, ok, rlen ->
                if rterm > t.term then step_down t rterm
                else if ok then begin
                  let matched = prev + List.length batch in
                  Hashtbl.replace t.match_idx peer matched;
                  Hashtbl.replace t.next_idx peer (matched + 1);
                  Hashtbl.replace t.pushed_commit peer sent_commit;
                  Hashtbl.replace t.sync_left peer sync_retries;
                  advance_commit t;
                  if
                    (match Hashtbl.find_opt t.next_idx peer with
                    | Some n -> n <= t.loglen
                    | None -> false)
                    || Hashtbl.find_opt t.pushed_commit peer <> Some t.commit
                  then send_replicate t peer
                end
                else begin
                  (* log mismatch: back up using the follower's reported
                     length and retry immediately — strictly decreasing,
                     so this terminates *)
                  Hashtbl.replace t.next_idx peer (max 1 (min (next - 1) (rlen + 1)));
                  send_replicate t peer
                end)
            | Error _ ->
              let left =
                match Hashtbl.find_opt t.sync_left peer with Some n -> n | None -> sync_retries
              in
              if left > 0 then begin
                Hashtbl.replace t.sync_left peer (left - 1);
                ignore
                  (Sim.schedule (sim t) ~delay:sync_period (fun () ->
                       if t.epoch = epoch && t.role = Leader && t.term = this_term then
                         send_replicate t peer))
              end
          end
        end)
  end

let broadcast t = List.iter (fun p -> if not (inflight t p) then send_replicate t p) t.others

let append_leader t payload k =
  let i = t.loglen + 1 in
  set_entry t i { e_term = t.term; e_payload = payload };
  persist_len t;
  (match k with Some k -> Hashtbl.replace t.pending i k | None -> ());
  broadcast t;
  advance_commit t (* a single-replica group commits on its own *)

(* --- elections --- *)

let become_leader t =
  t.role <- Leader;
  t.leader_hint <- Some t.self;
  t.electing <- false;
  emit t (Event.Cons_leader_elected { node = t.self; term = t.term });
  List.iter
    (fun p ->
      Hashtbl.replace t.next_idx p (t.loglen + 1);
      Hashtbl.replace t.match_idx p 0;
      Hashtbl.replace t.inflight p false;
      Hashtbl.replace t.pushed_commit p (-1);
      Hashtbl.replace t.sync_left p sync_retries)
    t.others;
  (* the election no-op: gives this term an entry to count quorums on,
     committing everything a previous leader left uncommitted *)
  append_leader t "" None

let rec election_round t round =
  if t.role <> Leader then begin
    t.term <- t.term + 1;
    t.voted_for <- Some t.self;
    t.role <- Candidate;
    t.leader_hint <- None;
    persist_meta t;
    emit t (Event.Cons_election_started { node = t.self; term = t.term });
    let this_term = t.term and epoch = t.epoch in
    let votes = ref 1 in
    if !votes >= t.quorum then become_leader t
    else begin
      let body =
        Wire.(pair (pair int string) (pair int int))
          ((this_term, t.self), (t.loglen, last_term t))
      in
      List.iter
        (fun p ->
          Rpc.call t.rpc ~src:t.self ~dst:p ~service:service_vote ~body ~timeout:vote_timeout
            ~retries:1 (fun res ->
              if t.epoch = epoch then begin
                match res with
                | Error _ -> ()
                | Ok rsp -> (
                  match Wire.(decode (d_pair d_int d_bool)) rsp with
                  | exception Wire.Malformed _ -> ()
                  | rterm, granted ->
                    if rterm > t.term then step_down t rterm
                    else if granted && t.role = Candidate && t.term = this_term then begin
                      incr votes;
                      if !votes = t.quorum then become_leader t
                    end)
              end))
        t.others;
      (* bounded retry, staggered by rank so concurrent candidates
         converge on the lowest-ranked live one instead of splitting
         votes forever *)
      let delay = election_retry_base + (t.rank * election_stagger) in
      ignore
        (Sim.schedule (sim t) ~delay (fun () ->
             if t.epoch = epoch && t.role = Candidate && t.term = this_term then
               if round < election_rounds then election_round t (round + 1)
               else begin
                 (* give up: quorum unreachable. The next urgent client
                    append re-campaigns, so no standing timer is needed *)
                 t.role <- Follower;
                 t.electing <- false
               end))
    end
  end

let start_election t =
  if t.role <> Leader && not t.electing then begin
    t.electing <- true;
    election_round t 1
  end

(* --- follower-side handlers --- *)

let handle_replicate t ~src:_ body =
  let (rterm, leader, prev), (prev_term, batch, lcommit) = dec_replicate body in
  let nack () = Wire.(triple int bool int) (t.term, false, t.loglen) in
  if rterm < t.term then nack ()
  else begin
    if rterm > t.term then step_down t rterm;
    t.role <- Follower;
    t.electing <- false;
    t.leader_hint <- Some leader;
    if prev > t.loglen then nack ()
    else if prev >= 1 && (get_entry t prev).e_term <> prev_term then
      Wire.(triple int bool int) (t.term, false, prev - 1)
    else begin
      List.iteri
        (fun i (e_term, e_payload) ->
          let idx = prev + 1 + i in
          if idx <= t.loglen && (get_entry t idx).e_term <> e_term then begin
            (* conflicting uncommitted suffix: truncate, then overwrite *)
            t.loglen <- idx - 1;
            persist_len t
          end;
          if idx > t.loglen then set_entry t idx { e_term; e_payload })
        batch;
      persist_len t;
      let nc = min lcommit t.loglen in
      if nc > t.commit then begin
        t.commit <- nc;
        persist_commit t;
        emit t (Event.Cons_committed { node = t.self; index = t.commit; term = rterm });
        apply_committed t
      end;
      if t.catching_up && t.commit >= lcommit then begin
        t.catching_up <- false;
        emit t (Event.Cons_caught_up { node = t.self; upto = t.commit })
      end;
      Wire.(triple int bool int) (t.term, true, t.loglen)
    end
  end

let handle_vote t ~src:_ body =
  let (rterm, cand), (cand_len, cand_last_term) =
    Wire.(decode (d_pair (d_pair d_int d_string) (d_pair d_int d_int))) body
  in
  if rterm > t.term then step_down t rterm;
  let up_to_date =
    cand_last_term > last_term t || (cand_last_term = last_term t && cand_len >= t.loglen)
  in
  let grant =
    rterm = t.term && up_to_date
    && (match t.voted_for with None -> true | Some v -> v = cand)
  in
  if grant then begin
    t.voted_for <- Some cand;
    persist_meta t
  end;
  Wire.(pair int bool) (t.term, grant)

(* A ping does two jobs: it answers "who leads, how far is the log" for
   recovering replicas and probing clients, and — when it reaches a
   leader — it restarts the replication stream towards the sender, which
   is how a rejoined replica catches up without any standing timer. *)
let handle_ping t ~src:_ body =
  let sender = Wire.(decode d_string) body in
  if t.role = Leader && List.mem sender t.others then begin
    Hashtbl.replace t.sync_left sender sync_retries;
    if not (inflight t sender) then send_replicate t sender
  end;
  Wire.(triple int (option string) int) (t.term, t.leader_hint, t.commit)

let handle_append t ~src:_ body ~reply =
  let urgent, payload = Wire.(decode (d_pair d_bool d_string)) body in
  let tagged tag v = Wire.(pair string string) (tag, v) in
  match t.role with
  | Leader -> append_leader t payload (Some (function
      | Ok r -> reply (Ok (tagged "ok" r))
      | Error e -> reply (Ok (tagged "err" e))))
  | Candidate -> reply (Ok (tagged "electing" ""))
  | Follower -> (
    match t.leader_hint with
    | Some l when l <> t.self && not urgent -> reply (Ok (tagged "redirect" l))
    | Some l when l <> t.self ->
      (* the client could not reach the leader we believe in — probe it
         before campaigning, so a client-side partition does not depose
         a perfectly healthy leader *)
      let epoch = t.epoch in
      Rpc.call t.rpc ~src:t.self ~dst:l ~service:service_ping ~body:(Wire.string t.self)
        ~timeout:probe_timeout ~retries:1 (fun res ->
          if t.epoch = epoch then begin
            match res with
            | Ok _ -> reply (Ok (tagged "redirect" l))
            | Error _ ->
              if t.role = Follower then start_election t;
              reply (Ok (tagged "electing" ""))
          end)
    | _ ->
      if urgent then begin
        start_election t;
        reply (Ok (tagged "electing" ""))
      end
      else reply (Ok (tagged "noleader" ""))
  )

(* --- recovery --- *)

let load t =
  let geti key default =
    match Kvstore.get t.store key with
    | None -> default
    | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  in
  t.term <- geti k_term 0;
  t.voted_for <-
    (match Kvstore.get t.store k_voted with None | Some "" -> None | Some v -> Some v);
  let n = geti k_len 0 in
  t.loglen <- 0;
  (try
     for i = 1 to n do
       match Kvstore.get t.store (k_entry i) with
       | None -> raise Exit (* torn tail: entry write landed, length did not *)
       | Some s ->
         let e_term, e_payload = Wire.(decode (d_pair d_int d_string)) s in
         ensure_capacity t i;
         t.entries.(i - 1) <- { e_term; e_payload };
         t.loglen <- i
     done
   with Exit -> ());
  persist_len t;
  t.commit <- min (geti k_commit 0) t.loglen

let recover t =
  Kvstore.recover t.store;
  load t;
  t.role <- Follower;
  t.leader_hint <- None;
  t.electing <- false;
  t.catching_up <- true;
  (* rebuild the state machine from the committed prefix — never from
     its own (possibly half-applied) remains *)
  t.reset ();
  t.applied <- 0;
  apply_committed t;
  (* announce the rejoin: whichever peer currently leads will resume
     pushing the suffix we missed *)
  let epoch = t.epoch in
  ignore
    (Sim.schedule (sim t) ~delay:0 (fun () ->
         if t.epoch = epoch then
           List.iter
             (fun p ->
               Rpc.call t.rpc ~src:t.self ~dst:p ~service:service_ping
                 ~body:(Wire.string t.self) ~timeout:probe_timeout ~retries:1 (fun res ->
                   if t.epoch = epoch then
                     match res with
                     | Ok rsp -> (
                       match Wire.(decode (d_triple d_int (d_option d_string) d_int)) rsp with
                       | exception Wire.Malformed _ -> ()
                       | rterm, hint, _ ->
                         if rterm > t.term then step_down t rterm;
                         if t.leader_hint = None && rterm >= t.term then t.leader_hint <- hint)
                     | Error _ -> ()))
             t.others))

let create ~rpc ~node ~peers ~apply ~reset () =
  let self = Node.id node in
  let peers = List.sort_uniq compare peers in
  if not (List.mem self peers) then invalid_arg "Rlog.create: node must be one of the peers";
  let rank = ref 0 in
  List.iteri (fun i p -> if p = self then rank := i) peers;
  let t =
    {
      rpc;
      node;
      self;
      peers;
      others = List.filter (fun p -> p <> self) peers;
      quorum = (List.length peers / 2) + 1;
      rank = !rank;
      store = Kvstore.create ~name:("cons@" ^ self);
      apply;
      reset;
      role = Follower;
      term = 0;
      voted_for = None;
      entries = [||];
      loglen = 0;
      commit = 0;
      applied = 0;
      leader_hint = None;
      electing = false;
      catching_up = false;
      epoch = 0;
      pending = Hashtbl.create 16;
      next_idx = Hashtbl.create 4;
      match_idx = Hashtbl.create 4;
      inflight = Hashtbl.create 4;
      pushed_commit = Hashtbl.create 4;
      sync_left = Hashtbl.create 4;
    }
  in
  Node.serve node ~service:service_replicate (handle_replicate t);
  Node.serve node ~service:service_vote (handle_vote t);
  Node.serve node ~service:service_ping (handle_ping t);
  Rpc.serve_async rpc node ~service:service_append (handle_append t);
  Node.on_crash node (fun () ->
      t.epoch <- t.epoch + 1;
      t.role <- Follower;
      t.leader_hint <- None;
      t.electing <- false;
      Hashtbl.reset t.pending;
      Kvstore.crash t.store);
  Node.on_recover node (fun () -> recover t);
  (* bootstrap: the lowest-ranked replica campaigns for term 1 so the
     group has a leader before the first client append arrives *)
  if t.rank = 0 then ignore (Sim.schedule (sim t) ~delay:0 (fun () -> start_election t));
  t
