type t = {
  rpc : Rpc.t;
  src : string;
  replicas : string list;  (* sorted *)
  max_steps : int;
  retry_delay : Sim.time;
  mutable leader : string option;
  mutable cursor : int;  (* round-robin fallback position *)
}

let create ~rpc ~src ~replicas ?(max_steps = 16) ?(retry_delay = Sim.ms 5) () =
  if replicas = [] then invalid_arg "Rlog_client.create: need at least one replica";
  {
    rpc;
    src;
    replicas = List.sort_uniq compare replicas;
    max_steps;
    retry_delay;
    leader = None;
    cursor = 0;
  }

let replicas t = t.replicas

let leader_guess t = t.leader

let invalidate t = t.leader <- None

let sim t = Network.sim (Rpc.network t.rpc)

let nth_replica t i = List.nth t.replicas (i mod List.length t.replicas)

let target t = match t.leader with Some l -> l | None -> nth_replica t t.cursor

(* The connection-failure path: drop the cached leader if that is who
   just failed (a dead node must not be retried forever), and rotate to
   the next replica. *)
let failed_over t dead =
  if t.leader = Some dead then t.leader <- None;
  t.cursor <- t.cursor + 1;
  let next = nth_replica t t.cursor in
  if next = dead && List.length t.replicas > 1 then begin
    t.cursor <- t.cursor + 1;
    nth_replica t t.cursor
  end
  else next

let append t ~payload k =
  let rec go steps ~urgent dst =
    if steps >= t.max_steps then k (Error "rlog: no leader reachable")
    else
      Rpc.call t.rpc ~src:t.src ~dst ~service:Rlog.service_append
        ~body:(Wire.(pair bool string) (urgent, payload))
        (function
          | Error _ -> go (steps + 1) ~urgent:true (failed_over t dst)
          | Ok reply -> (
            match Wire.(decode (d_pair d_string d_string)) reply with
            | exception Wire.Malformed m -> k (Error m)
            | "ok", r ->
              t.leader <- Some dst;
              k (Ok r)
            | "redirect", l ->
              t.leader <- Some l;
              (* a redirect that bounces back ("no, the leader is X",
                 where X just failed us) burns a step each time, so the
                 max_steps bound still holds when no leader is electable *)
              go (steps + 1) ~urgent:false l
            | ("electing" | "noleader" | "err"), _ ->
              t.leader <- None;
              t.cursor <- t.cursor + 1;
              ignore
                (Sim.schedule (sim t) ~delay:t.retry_delay (fun () ->
                     go (steps + 1) ~urgent:true (nth_replica t t.cursor)))
            | tag, _ -> k (Error ("rlog: unexpected reply " ^ tag))))
  in
  go 0 ~urgent:false (target t)

let read t ~service ~body k =
  let rec go steps dst =
    if steps >= t.max_steps then k (Error "rlog: no replica reachable")
    else
      Rpc.call t.rpc ~src:t.src ~dst ~service ~body (function
        | Ok reply -> k (Ok reply)
        | Error e ->
          if steps + 1 >= t.max_steps then k (Error ("rpc: " ^ e))
          else go (steps + 1) (failed_over t dst))
  in
  go 0 (target t)
