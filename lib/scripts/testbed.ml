type t = {
  sim : Sim.t;
  net : Network.t;
  rpc : Rpc.t;
  registry : Registry.t;
  engine : Engine.t;
  engines : (string * Engine.t) list;
  nodes : Node.t list;
  participants : (string * Participant.t) list;
  managers : (string * Txn.manager) list;
}

let make ?(config = Network.default_config) ?(engine_config = Engine.default_config)
    ?(seed = 42L) ?(nodes = [ "n0" ]) ?engines:engine_ids () =
  if nodes = [] then invalid_arg "Testbed.make: need at least one node";
  let engine_ids =
    match engine_ids with
    | None -> [ List.hd nodes ]
    | Some [] -> invalid_arg "Testbed.make: need at least one engine"
    | Some ids -> ids
  in
  (* every engine id is also a node; extra engine nodes are appended *)
  let all_ids = nodes @ List.filter (fun e -> not (List.mem e nodes)) engine_ids in
  let sim = Sim.create ~seed () in
  let net = Network.create ~config sim in
  let rpc = Rpc.create net in
  let registry = Registry.create () in
  let members =
    List.map
      (fun id ->
        let node = Network.add_node net ~id in
        Rpc.attach rpc node;
        let participant = Participant.create ~rpc ~node in
        let mgr = Txn.manager ~rpc ~node in
        (node, participant, mgr))
      all_ids
  in
  let member id =
    List.find (fun (n, _, _) -> Node.id n = id) members
  in
  let engines =
    List.map
      (fun id ->
        let node, participant, mgr = member id in
        ( id,
          Engine.create ~config:engine_config ~rpc ~node ~mgr ~participant ~registry () ))
      engine_ids
  in
  let engine = snd (List.hd engines) in
  let all_nodes = List.map (fun (n, _, _) -> n) members in
  (* services are namespaced per engine, so every node can host tasks
     for every engine (each engine already hosts on its own node) *)
  List.iter
    (fun (eid, e) ->
      List.iter
        (fun node -> if Node.id node <> eid then ignore (Engine.attach_host e node))
        all_nodes)
    engines;
  let participants = List.map (fun (n, p, _) -> (Node.id n, p)) members in
  let managers = List.map (fun (n, _, m) -> (Node.id n, m)) members in
  { sim; net; rpc; registry; engine; engines; nodes = all_nodes; participants; managers }

let node t id =
  match List.find_opt (fun n -> Node.id n = id) t.nodes with
  | Some n -> n
  | None -> invalid_arg ("Testbed.node: unknown node " ^ id)

let engine_on t id =
  match List.assoc_opt id t.engines with
  | Some e -> e
  | None -> invalid_arg ("Testbed.engine_on: no engine on node " ^ id)

let participant t id =
  match List.assoc_opt id t.participants with
  | Some p -> p
  | None -> invalid_arg ("Testbed.participant: unknown node " ^ id)

let manager t id =
  match List.assoc_opt id t.managers with
  | Some m -> m
  | None -> invalid_arg ("Testbed.manager: unknown node " ^ id)

let run ?until t = Sim.run ?until t.sim

let crash t id = Node.crash (node t id)

let recover t id = Node.recover (node t id)

let node_ids t = List.map Node.id t.nodes

let apply_faults t plan =
  (match Fault.validate ~nodes:(node_ids t) plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Testbed.apply_faults: " ^ msg));
  Fault.apply t.sim plan ~on:(function
    | Fault.Crash n -> crash t n
    | Fault.Restart n -> recover t n
    | Fault.Partition_on (a, b) -> Network.partition_on t.net a b
    | Fault.Partition_off (a, b) -> Network.partition_off t.net a b)

let launch_and_run ?until t ~script ~root ~inputs =
  match Engine.launch t.engine ~script ~root ~inputs with
  | Error e -> Error e
  | Ok iid -> (
    run ?until t;
    match Engine.status t.engine iid with
    | Some status -> Ok (iid, status)
    | None -> Error "instance vanished")

let str_input name payload ~cls = (name, Value.obj ~cls (Value.Str payload))
