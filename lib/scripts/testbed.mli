(** One-call setup of a simulated cluster with the full stack: network,
    RPC, per-node transaction participant + coordinator, one or more
    execution services, and task hosts on every node. Used by the
    examples, the engine tests and the benches. *)

type t = {
  sim : Sim.t;
  net : Network.t;
  rpc : Rpc.t;
  registry : Registry.t;
  engine : Engine.t;  (** the first engine — the single-engine API *)
  engines : (string * Engine.t) list;  (** by node id, creation order *)
  nodes : Node.t list;
  participants : (string * Participant.t) list;  (** by node id *)
  managers : (string * Txn.manager) list;  (** by node id *)
}

val make :
  ?config:Network.config ->
  ?engine_config:Engine.config ->
  ?seed:int64 ->
  ?nodes:string list ->
  ?engines:string list ->
  unit ->
  t
(** [nodes] defaults to [["n0"]]. Without [engines], one engine lives on
    the first node (the historical single-engine testbed). With
    [engines], one engine is created per listed node id (node ids not in
    [nodes] are added); every node is attached as a task host to every
    engine — the per-engine service namespacing makes that safe. *)

val node : t -> string -> Node.t

val node_ids : t -> string list
(** All node ids, in creation order (the population fault plans may
    legally name). *)

val engine_on : t -> string -> Engine.t
(** The engine living on the given node id. *)

val participant : t -> string -> Participant.t

val manager : t -> string -> Txn.manager
(** The transaction coordinator on the given node id. *)

val run : ?until:Sim.time -> t -> unit

val crash : t -> string -> unit

val recover : t -> string -> unit

val apply_faults : t -> Fault.t -> unit
(** Schedule a declarative fault plan against this testbed: crashes and
    restarts resolve node ids through {!crash}/{!recover}, partitions
    through the network fabric — no more hand-rolled [Sim.at] chaos
    callbacks in tests. The plan is {!Fault.validate}d against this
    testbed's node population first; raises [Invalid_argument] on a
    plan naming unknown nodes or restarting a node that was never
    crashed, instead of silently matching nothing. *)

val launch_and_run :
  ?until:Sim.time ->
  t ->
  script:string ->
  root:string ->
  inputs:(string * Value.obj) list ->
  (string * Wstate.status, string) result
(** Launch an instance on the first engine, drive the simulation until
    it drains (or [until]), and return the instance id and final
    status. *)

val str_input : string -> string -> cls:string -> string * Value.obj
(** [str_input name payload ~cls] builds one external input binding. *)
