let buf_add = Buffer.add_string

let preamble =
  {|
class Data;
taskclass Step {
    inputs { input main { data of class Data } };
    outputs { outcome done { data of class Data } }
};
|}

let root_class name =
  Printf.sprintf
    {|
taskclass %s {
    inputs { input main { data of class Data } };
    outputs { outcome finished { data of class Data } }
};
|}
    name

let step_task ?location b ~name ~code ~source =
  let impl =
    match location with
    | None -> Printf.sprintf "%S is %S" "code" code
    | Some node -> Printf.sprintf "%S is %S, %S is %S" "code" code "location" node
  in
  buf_add b
    (Printf.sprintf
       {|
    task %s of taskclass Step {
        implementation { %s };
        inputs { input main { inputobject data from { %s } } }
    };
|}
       name impl source)

let chain_build ?location n =
  if n < 1 then invalid_arg "Workloads.chain: n must be >= 1";
  let b = Buffer.create 1024 in
  buf_add b preamble;
  buf_add b (root_class "Chain");
  buf_add b "compoundtask chain of taskclass Chain {\n";
  for i = 1 to n do
    let source =
      if i = 1 then "data of task chain if input main"
      else Printf.sprintf "data of task s%d if output done" (i - 1)
    in
    step_task ?location b ~name:(Printf.sprintf "s%d" i) ~code:"w.step" ~source
  done;
  buf_add b
    (Printf.sprintf
       {|
    outputs { outcome finished { outputobject data from { data of task s%d if output done } } }
}
|}
       n);
  (Buffer.contents b, "chain")

let chain ~n = chain_build n

let chain_remote ~n ~host = chain_build ~location:host n

let fanout ~width =
  if width < 1 then invalid_arg "Workloads.fanout: width must be >= 1";
  let b = Buffer.create 1024 in
  buf_add b preamble;
  (* a join class with one input object per branch *)
  buf_add b "taskclass Join {\n    inputs { input main {\n";
  for i = 1 to width do
    buf_add b (Printf.sprintf "        d%d of class Data%s\n" i (if i = width then "" else ";"))
  done;
  buf_add b "    } };\n    outputs { outcome done { data of class Data } }\n};\n";
  buf_add b (root_class "Fanout");
  buf_add b "compoundtask fanout of taskclass Fanout {\n";
  step_task b ~name:"src" ~code:"w.step" ~source:"data of task fanout if input main";
  for i = 1 to width do
    step_task b ~name:(Printf.sprintf "w%d" i) ~code:"w.step"
      ~source:"data of task src if output done"
  done;
  buf_add b "    task join of taskclass Join {\n        implementation { \"code\" is \"w.join\" };\n";
  buf_add b "        inputs { input main {\n";
  for i = 1 to width do
    buf_add b
      (Printf.sprintf "            inputobject d%d from { data of task w%d if output done };\n" i i)
  done;
  buf_add b "        } }\n    };\n";
  buf_add b
    {|
    outputs { outcome finished { outputobject data from { data of task join if output done } } }
}
|};
  (Buffer.contents b, "fanout")

let nested ~depth =
  if depth < 1 then invalid_arg "Workloads.nested: depth must be >= 1";
  let worker self =
    Printf.sprintf
      {|
    task worker of taskclass Step {
        implementation { "code" is "w.step" };
        inputs { input main { inputobject data from { data of task %s if input main } } }
    };
|}
      self
  in
  let rec level i parent =
    let name = if i = 1 then "nest" else Printf.sprintf "level%d" i in
    let inputs =
      if i = 1 then ""
      else
        Printf.sprintf
          "    inputs { input main { inputobject data from { data of task %s if input main } } };\n"
          parent
    in
    let inner, inner_name, inner_outcome =
      if i = depth then (worker name, "worker", "done")
      else (level (i + 1) name, Printf.sprintf "level%d" (i + 1), "finished")
    in
    Printf.sprintf
      {|compoundtask %s of taskclass Nest {
%s%s
    outputs { outcome finished { outputobject data from { data of task %s if output %s } } }
};
|}
      name inputs inner inner_name inner_outcome
  in
  (preamble ^ root_class "Nest" ^ level 1 "", "nest")

let alternatives ~k ~alive =
  if k < 1 || alive < 1 || alive > k then invalid_arg "Workloads.alternatives";
  let b = Buffer.create 1024 in
  buf_add b preamble;
  buf_add b
    {|
taskclass Flaky {
    inputs { input main { data of class Data } };
    outputs { outcome ok { data of class Data }; outcome dead { } }
};
|};
  buf_add b (root_class "Alt");
  buf_add b "compoundtask alt of taskclass Alt {\n";
  for i = 1 to k do
    let code = if i = alive then "w.alive" else "w.dead" in
    buf_add b
      (Printf.sprintf
         {|
    task p%d of taskclass Flaky {
        implementation { "code" is %S };
        inputs { input main { inputobject data from { data of task alt if input main } } }
    };
|}
         i code)
  done;
  buf_add b
    {|
    task consumer of taskclass Step {
        implementation { "code" is "w.step" };
        inputs { input main { inputobject data from {
|};
  for i = 1 to k do
    buf_add b
      (Printf.sprintf "            data of task p%d if output ok%s\n" i (if i = k then "" else ";"))
  done;
  buf_add b
    {|
        } } }
    };
    outputs { outcome finished { outputobject data from { data of task consumer if output done } } }
}
|};
  (Buffer.contents b, "alt")

(* --- declarative-recovery workloads ---

   One small script per recovery construct, all sharing the shape
   flow { work [ ; undo ] }: the interesting behaviour is concentrated
   in [work]'s recovery section and its deliberately misbehaving
   implementation. Every leaf is pinned to [host] so dispatches and
   completion reports cross the network — crash and partition schedules
   can land on the message boundaries. *)

let recovery_preamble =
  {|
class Data;
taskclass Step {
    inputs { input main { data of class Data } };
    outputs { outcome done { data of class Data } }
};
taskclass Flow {
    inputs { input main { data of class Data } };
    outputs { outcome finished { data of class Data }; outcome cancelled { } }
};
|}

let recovery_flow ~host ~code ~recovery ~tail ~outputs =
  ( Printf.sprintf
      {|%s%s
compoundtask flow of taskclass Flow {
    task work of taskclass %s {
        implementation { "code" is %S, "location" is %S };
        recovery { %s };
        inputs { input main { inputobject data from { data of task flow if input main } } }
    };
%s    outputs { %s }
}
|}
      recovery_preamble
      (if tail = "" then ""
       else
         {|
taskclass Risky {
    inputs { input main { data of class Data } };
    outputs { outcome done { data of class Data }; abort outcome failed { } }
};
|})
      (if tail = "" then "Step" else "Risky")
      code host recovery tail
      outputs,
    "flow" )

let finished_from_work =
  "outcome finished { outputobject data from { data of task work if output done } }"

(* Budgets are sized like Scenario.engine_config's generous globals:
   every crash-with-restart or healing-partition schedule must still be
   able to finish inside the declared budget (a wedged run would be a
   finding), while staying small enough that the conformance ceiling
   means something. A blocked attempt costs one watchdog period, so the
   spare attempts below cover several fault windows. *)
let recovery_retry ~host =
  recovery_flow ~host ~code:"r.flaky" ~recovery:"retry 8 backoff 5 max 40" ~tail:""
    ~outputs:finished_from_work

let recovery_timeout ~host =
  recovery_flow ~host ~code:"r.hang" ~recovery:{|timeout 50 then substitute "r.sub"|} ~tail:""
    ~outputs:finished_from_work

let recovery_alternative ~host =
  recovery_flow ~host ~code:"r.dead" ~recovery:{|retry 4; alternative "r.alive"|} ~tail:""
    ~outputs:finished_from_work

let recovery_compensate ~host =
  let undo =
    Printf.sprintf
      {|    task undo of taskclass Step {
        implementation { "code" is "r.undo", "location" is %S };
        inputs { input main { inputobject data from { data of task work if output done } } }
    };
|}
      host
  in
  recovery_flow ~host ~code:"r.abort" ~recovery:"compensate undo" ~tail:undo
    ~outputs:
      (finished_from_work
      ^ "; outcome cancelled { notification from { task work if output failed } }")

let register_recovery ?(work = Sim.ms 5) reg =
  let payload (ctx : Registry.context) =
    match ctx.Registry.inputs with
    | (_, { Value.payload; _ }) :: _ -> payload
    | [] -> Value.Unit
  in
  let done_ ctx = Registry.finish ~work "done" [ ("data", payload ctx) ] in
  (* succeeds on the third attempt: two declared retries are consumed *)
  let flaky (ctx : Registry.context) =
    if ctx.Registry.attempt < 3 then failwith "flaky" else done_ ctx
  in
  (* computes far past the declared 50ms timeout: only the watchdog and
     the substitute can conclude the task *)
  let hang ctx = Registry.finish ~work:(Sim.ms 200) "done" [ ("data", payload ctx) ] in
  let dead _ctx = failwith "dead" in
  let abort _ctx = Registry.finish ~work "failed" [] in
  Registry.bind reg ~code:"r.flaky" flaky;
  Registry.bind reg ~code:"r.hang" hang;
  Registry.bind reg ~code:"r.sub" done_;
  Registry.bind reg ~code:"r.dead" dead;
  Registry.bind reg ~code:"r.alive" done_;
  Registry.bind reg ~code:"r.abort" abort;
  Registry.bind reg ~code:"r.undo" done_

let register ?(work = Sim.ms 1) reg =
  let step (ctx : Registry.context) =
    let v =
      match ctx.Registry.inputs with
      | (_, { Value.payload; _ }) :: _ -> payload
      | [] -> Value.Unit
    in
    Registry.finish ~work "done" [ ("data", v) ]
  in
  let flaky_ok (ctx : Registry.context) =
    let v =
      match ctx.Registry.inputs with
      | (_, { Value.payload; _ }) :: _ -> payload
      | [] -> Value.Unit
    in
    Registry.finish ~work "ok" [ ("data", v) ]
  in
  let join _ctx = Registry.finish ~work "done" [ ("data", Value.Str "joined") ] in
  let dead _ctx = Registry.finish ~work "dead" [] in
  Registry.bind reg ~code:"w.step" step;
  Registry.bind reg ~code:"w.join" join;
  Registry.bind reg ~code:"w.dead" dead;
  Registry.bind reg ~code:"w.alive" flaky_ok

let seed_inputs = [ ("data", Value.obj ~cls:"Data" (Value.Str "seed")) ]
