let buf_add = Buffer.add_string

let preamble =
  {|
class Data;
taskclass Step {
    inputs { input main { data of class Data } };
    outputs { outcome done { data of class Data } }
};
|}

let root_class name =
  Printf.sprintf
    {|
taskclass %s {
    inputs { input main { data of class Data } };
    outputs { outcome finished { data of class Data } }
};
|}
    name

let step_task ?location b ~name ~code ~source =
  let impl =
    match location with
    | None -> Printf.sprintf "%S is %S" "code" code
    | Some node -> Printf.sprintf "%S is %S, %S is %S" "code" code "location" node
  in
  buf_add b
    (Printf.sprintf
       {|
    task %s of taskclass Step {
        implementation { %s };
        inputs { input main { inputobject data from { %s } } }
    };
|}
       name impl source)

let chain_build ?location n =
  if n < 1 then invalid_arg "Workloads.chain: n must be >= 1";
  let b = Buffer.create 1024 in
  buf_add b preamble;
  buf_add b (root_class "Chain");
  buf_add b "compoundtask chain of taskclass Chain {\n";
  for i = 1 to n do
    let source =
      if i = 1 then "data of task chain if input main"
      else Printf.sprintf "data of task s%d if output done" (i - 1)
    in
    step_task ?location b ~name:(Printf.sprintf "s%d" i) ~code:"w.step" ~source
  done;
  buf_add b
    (Printf.sprintf
       {|
    outputs { outcome finished { outputobject data from { data of task s%d if output done } } }
}
|}
       n);
  (Buffer.contents b, "chain")

let chain ~n = chain_build n

let chain_remote ~n ~host = chain_build ~location:host n

let fanout ~width =
  if width < 1 then invalid_arg "Workloads.fanout: width must be >= 1";
  let b = Buffer.create 1024 in
  buf_add b preamble;
  (* a join class with one input object per branch *)
  buf_add b "taskclass Join {\n    inputs { input main {\n";
  for i = 1 to width do
    buf_add b (Printf.sprintf "        d%d of class Data%s\n" i (if i = width then "" else ";"))
  done;
  buf_add b "    } };\n    outputs { outcome done { data of class Data } }\n};\n";
  buf_add b (root_class "Fanout");
  buf_add b "compoundtask fanout of taskclass Fanout {\n";
  step_task b ~name:"src" ~code:"w.step" ~source:"data of task fanout if input main";
  for i = 1 to width do
    step_task b ~name:(Printf.sprintf "w%d" i) ~code:"w.step"
      ~source:"data of task src if output done"
  done;
  buf_add b "    task join of taskclass Join {\n        implementation { \"code\" is \"w.join\" };\n";
  buf_add b "        inputs { input main {\n";
  for i = 1 to width do
    buf_add b
      (Printf.sprintf "            inputobject d%d from { data of task w%d if output done };\n" i i)
  done;
  buf_add b "        } }\n    };\n";
  buf_add b
    {|
    outputs { outcome finished { outputobject data from { data of task join if output done } } }
}
|};
  (Buffer.contents b, "fanout")

let nested ~depth =
  if depth < 1 then invalid_arg "Workloads.nested: depth must be >= 1";
  let worker self =
    Printf.sprintf
      {|
    task worker of taskclass Step {
        implementation { "code" is "w.step" };
        inputs { input main { inputobject data from { data of task %s if input main } } }
    };
|}
      self
  in
  let rec level i parent =
    let name = if i = 1 then "nest" else Printf.sprintf "level%d" i in
    let inputs =
      if i = 1 then ""
      else
        Printf.sprintf
          "    inputs { input main { inputobject data from { data of task %s if input main } } };\n"
          parent
    in
    let inner, inner_name, inner_outcome =
      if i = depth then (worker name, "worker", "done")
      else (level (i + 1) name, Printf.sprintf "level%d" (i + 1), "finished")
    in
    Printf.sprintf
      {|compoundtask %s of taskclass Nest {
%s%s
    outputs { outcome finished { outputobject data from { data of task %s if output %s } } }
};
|}
      name inputs inner inner_name inner_outcome
  in
  (preamble ^ root_class "Nest" ^ level 1 "", "nest")

let alternatives ~k ~alive =
  if k < 1 || alive < 1 || alive > k then invalid_arg "Workloads.alternatives";
  let b = Buffer.create 1024 in
  buf_add b preamble;
  buf_add b
    {|
taskclass Flaky {
    inputs { input main { data of class Data } };
    outputs { outcome ok { data of class Data }; outcome dead { } }
};
|};
  buf_add b (root_class "Alt");
  buf_add b "compoundtask alt of taskclass Alt {\n";
  for i = 1 to k do
    let code = if i = alive then "w.alive" else "w.dead" in
    buf_add b
      (Printf.sprintf
         {|
    task p%d of taskclass Flaky {
        implementation { "code" is %S };
        inputs { input main { inputobject data from { data of task alt if input main } } }
    };
|}
         i code)
  done;
  buf_add b
    {|
    task consumer of taskclass Step {
        implementation { "code" is "w.step" };
        inputs { input main { inputobject data from {
|};
  for i = 1 to k do
    buf_add b
      (Printf.sprintf "            data of task p%d if output ok%s\n" i (if i = k then "" else ";"))
  done;
  buf_add b
    {|
        } } }
    };
    outputs { outcome finished { outputobject data from { data of task consumer if output done } } }
}
|};
  (Buffer.contents b, "alt")

let register ?(work = Sim.ms 1) reg =
  let step (ctx : Registry.context) =
    let v =
      match ctx.Registry.inputs with
      | (_, { Value.payload; _ }) :: _ -> payload
      | [] -> Value.Unit
    in
    Registry.finish ~work "done" [ ("data", v) ]
  in
  let flaky_ok (ctx : Registry.context) =
    let v =
      match ctx.Registry.inputs with
      | (_, { Value.payload; _ }) :: _ -> payload
      | [] -> Value.Unit
    in
    Registry.finish ~work "ok" [ ("data", v) ]
  in
  let join _ctx = Registry.finish ~work "done" [ ("data", Value.Str "joined") ] in
  let dead _ctx = Registry.finish ~work "dead" [] in
  Registry.bind reg ~code:"w.step" step;
  Registry.bind reg ~code:"w.join" join;
  Registry.bind reg ~code:"w.dead" dead;
  Registry.bind reg ~code:"w.alive" flaky_ok

let seed_inputs = [ ("data", Value.obj ~cls:"Data" (Value.Str "seed")) ]
