(** Synthetic workload generators for the benches: parameterised script
    families exercising specific structural dimensions (pipeline depth,
    fan-out width, compound nesting, alternative-source masking). Each
    generator returns the script source plus its root name; the matching
    [register_*] binds the implementations. *)

val chain : n:int -> string * string
(** Linear pipeline of [n] steps, each consuming its predecessor's
    output (Fig 1's t1→t2 edge repeated). Code name: [w.step]. *)

val chain_remote : n:int -> host:string -> string * string
(** {!chain} with every step pinned to the task-host node [host]
    (["location"] implementation binding) — dispatches and completion
    reports cross the network, so crash and partition schedules can land
    on the engine↔host message boundaries. *)

val fanout : width:int -> string * string
(** One producer, [width] parallel workers, one join consuming all of
    them (Fig 1's diamond generalised). Codes: [w.step], [w.join]. *)

val nested : depth:int -> string * string
(** Compound tasks nested [depth] deep, one worker at the bottom
    (Fig 5 / Fig 9's hierarchy, deepened). Code: [w.step]. *)

val alternatives : k:int -> alive:int -> string * string
(** A consumer whose single input lists [k] alternative producers in
    order; only producer [alive] (1-based) yields a usable output, the
    others finish in an outcome that carries nothing (application-level
    fault masking, §3). Codes: [w.dead], [w.step]. *)

(** {1 Declarative-recovery workloads}

    One small script per [recovery { ... }] construct, all of the shape
    [flow { work [; undo] }] with the leaf pinned to [host] so the
    recovering task's dispatches and reports cross the network. The
    misbehaviour lives in the implementations bound by
    {!register_recovery}. *)

val recovery_retry : host:string -> string * string
(** [work] declares [retry 8 backoff 5 max 40]; its implementation
    [r.flaky] crashes on attempts 1–2 and succeeds on attempt 3 — the
    spare budget absorbs attempts wasted by crash/partition windows. *)

val recovery_timeout : host:string -> string * string
(** [work] declares [timeout 50 then substitute "r.sub"]; [r.hang]
    computes for 200ms, so only the watchdog-triggered substitute can
    conclude the task. *)

val recovery_alternative : host:string -> string * string
(** [work] declares [retry 4; alternative "r.alive"]; the primary
    [r.dead] always crashes, so the failure-driven band advance must
    reach the alternative. *)

val recovery_compensate : host:string -> string * string
(** [work] declares [compensate undo] and always terminates in its
    abort outcome; the sibling [undo] must run exactly once, and the
    flow concludes through its [cancelled] outcome. *)

val register_recovery : ?work:Sim.time -> Registry.t -> unit
(** Bind the [r.*] implementations the recovery workloads name. *)

val register : ?work:Sim.time -> Registry.t -> unit
(** Bind [w.step], [w.join] and [w.dead]. *)

val seed_inputs : (string * Value.obj) list
(** The external input every generated root expects. *)
