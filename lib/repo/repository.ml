type t = {
  node : Node.t;
  mutable store : Kvstore.t;
      (* mutable for replicated backings only: recovery swaps in a fresh
         store and replays the consensus log, so a crash can never leave
         a half-applied command visible *)
}

type version = int

type summary = {
  s_name : string;
  s_head : version;
  s_roots : string list;
  s_task_count : int;
  s_warnings : int;
}

let service_store = "repo.store"

let service_fetch = "repo.fetch"

let service_list = "repo.list"

let service_inspect = "repo.inspect"

let service_assign = "repo.assign"

let service_assign_batch = "repo.assign_batch"

let service_owner = "repo.owner"

let service_placements = "repo.placements"

let node_id t = Node.id t.node

let internal_store t = t.store

let key_head name = "head:" ^ name

let key_version name version = Printf.sprintf "script:%s:%d" name version

let key_place iid = "place:" ^ iid

(* A corrupt head record means the store itself is damaged — masking it
   as "no script" would silently shadow every stored version, so refuse
   loudly instead. *)
let head t ~name =
  match Kvstore.get t.store (key_head name) with
  | None -> None
  | Some v -> (
    match int_of_string_opt v with
    | Some n -> Some n
    | None ->
      invalid_arg
        (Printf.sprintf "Repository.head: corrupt head record for %s: %S" name v))

let validate_source source =
  match Frontend.load source with
  | Ok ast -> Ok ast
  | Error e -> Error (Frontend.error_to_string e)

let store t ~name ~source =
  match validate_source source with
  | Error e -> Error e
  | Ok _ ->
    let next = match head t ~name with Some v -> v + 1 | None -> 1 in
    Kvstore.put t.store (key_version name next) source;
    Kvstore.put t.store (key_head name) (string_of_int next);
    Ok next

let fetch t ~name ?version () =
  let version =
    match version with
    | Some v -> Some v
    | None -> head t ~name
  in
  match version with
  | None -> Error ("no script named " ^ name)
  | Some v -> (
    match Kvstore.get t.store (key_version name v) with
    | Some source -> Ok source
    | None -> Error (Printf.sprintf "no version %d of script %s" v name))

let list_names t =
  Kvstore.keys t.store
  |> List.filter_map (fun key ->
         if String.length key > 5 && String.sub key 0 5 = "head:" then
           Some (String.sub key 5 (String.length key - 5))
         else None)

(* --- instance placement directory (cluster layer) --- *)

let assign t ~iid ~engine = Kvstore.put t.store (key_place iid) engine

let assign_many t ~pairs = List.iter (fun (iid, engine) -> assign t ~iid ~engine) pairs

let owner t ~iid = Kvstore.get t.store (key_place iid)

let placements t =
  Kvstore.keys t.store
  |> List.filter_map (fun key ->
         if String.length key > 6 && String.sub key 0 6 = "place:" then
           let iid = String.sub key 6 (String.length key - 6) in
           Option.map (fun engine -> (iid, engine)) (Kvstore.get t.store key)
         else None)
  |> List.sort compare

let history t ~name =
  match head t ~name with
  | None -> []
  | Some h -> List.init h (fun i -> i + 1)

let inspect t ~name =
  match fetch t ~name () with
  | Error e -> Error e
  | Ok source -> (
    match validate_source source with
    | Error e -> Error e (* cannot happen for stored scripts *)
    | Ok ast ->
      let roots = Frontend.roots ast in
      let task_count =
        List.fold_left
          (fun acc root ->
            match Schema.of_script ast ~root with
            | Ok task -> max acc (Schema.task_count task)
            | Error _ -> acc)
          0 roots
      in
      let warnings =
        List.length
          (List.filter (fun (i : Validate.issue) -> i.Validate.severity = Validate.Warning)
             (Validate.check ast))
      in
      Ok
        {
          s_name = name;
          s_head = (match head t ~name with Some h -> h | None -> 0);
          s_roots = roots;
          s_task_count = task_count;
          s_warnings = warnings;
        })

(* --- wire handlers --- *)

let enc_result enc = function
  | Ok v -> Wire.bool true ^ enc v
  | Error e -> Wire.bool false ^ Wire.string e

let handle_store t ~src:_ body =
  let name, source = Wire.(decode (d_pair d_string d_string)) body in
  enc_result Wire.int (store t ~name ~source)

let handle_fetch t ~src:_ body =
  let name, version = Wire.(decode (d_pair d_string (d_option d_int))) body in
  enc_result Wire.string (fetch t ~name ?version ())

let handle_list t ~src:_ _body = Wire.(list string) (list_names t)

let enc_summary s =
  Wire.string s.s_name ^ Wire.int s.s_head
  ^ Wire.(list string) s.s_roots
  ^ Wire.int s.s_task_count ^ Wire.int s.s_warnings

let handle_inspect t ~src:_ body =
  let name = Wire.(decode d_string) body in
  enc_result enc_summary (inspect t ~name)

let handle_assign t ~src:_ body =
  let iid, engine = Wire.(decode (d_pair d_string d_string)) body in
  assign t ~iid ~engine;
  Wire.bool true

let handle_assign_batch t ~src:_ body =
  let pairs = Wire.(decode (d_list (d_pair d_string d_string))) body in
  assign_many t ~pairs;
  Wire.int (List.length pairs)

let handle_owner t ~src:_ body =
  let iid = Wire.(decode d_string) body in
  Wire.(option string) (owner t ~iid)

let handle_placements t ~src:_ _body =
  Wire.list (fun (iid, engine) -> Wire.string iid ^ Wire.string engine) (placements t)

(* --- replicated command log (consensus backend) ---

   Every mutation becomes one opaque command string in the replicated
   log; [apply_command] decodes and executes it deterministically, so
   identical logs yield identical repositories on every replica. Each
   command carries a client-chosen id: a retry that lands on a new
   leader after a failover may append a second copy, and the dedup row
   makes the second application return the first reply instead of
   re-executing (exactly-once above at-least-once). *)

let key_cid cid = "cid:" ^ cid

let cmd_store ~cid ~name ~source =
  Wire.(run (b_pair b_string (b_pair b_string (b_pair b_string b_string))))
    ("store", (cid, (name, source)))

let cmd_assign ~cid ~iid ~engine =
  Wire.(run (b_pair b_string (b_pair b_string (b_pair b_string b_string))))
    ("assign", (cid, (iid, engine)))

let cmd_assign_batch ~cid ~pairs =
  Wire.(run (b_pair b_string (b_pair b_string (b_list (b_pair b_string b_string)))))
    ("assign_batch", (cid, pairs))

let apply_command t cmd =
  let d = Wire.decoder cmd in
  let tag = Wire.d_string d in
  let cid = Wire.d_string d in
  match Kvstore.get t.store (key_cid cid) with
  | Some cached -> cached
  | None ->
    let reply =
      match tag with
      | "store" ->
        let name, source = Wire.(d_pair d_string d_string) d in
        enc_result Wire.int (store t ~name ~source)
      | "assign" ->
        let iid, engine = Wire.(d_pair d_string d_string) d in
        assign t ~iid ~engine;
        Wire.bool true
      | "assign_batch" ->
        let pairs = Wire.(d_list (d_pair d_string d_string)) d in
        assign_many t ~pairs;
        Wire.int (List.length pairs)
      | other -> enc_result Wire.int (Error ("unknown repository command: " ^ other))
    in
    Kvstore.put t.store (key_cid cid) reply;
    reply

let install_read_services t =
  let node = t.node in
  Node.serve node ~service:service_fetch (handle_fetch t);
  Node.serve node ~service:service_list (handle_list t);
  Node.serve node ~service:service_inspect (handle_inspect t);
  Node.serve node ~service:service_owner (handle_owner t);
  Node.serve node ~service:service_placements (handle_placements t)

let create_backing ~node = { node; store = Kvstore.create ~name:("repo@" ^ Node.id node) }

let reset_state t = t.store <- Kvstore.create ~name:("repo@" ^ Node.id t.node)

let create ~rpc ~node =
  ignore rpc;
  let t = create_backing ~node in
  Node.serve node ~service:service_store (handle_store t);
  Node.serve node ~service:service_assign (handle_assign t);
  Node.serve node ~service:service_assign_batch (handle_assign_batch t);
  install_read_services t;
  Node.on_crash node (fun () -> Kvstore.crash t.store);
  Node.on_recover node (fun () -> Kvstore.recover t.store);
  t
