(** RPC client for the {!Repository} service: what administrative
    applications and remote engines use (paper Fig 4's arrows through
    the ORB). All operations are continuation-passing over the
    simulated network. *)

type t

val create : rpc:Rpc.t -> src:string -> repo_node:string -> t
(** [src] is the calling node; [repo_node] hosts the repository. *)

val store :
  t -> name:string -> source:string -> ((Repository.version, string) result -> unit) -> unit

val fetch :
  t -> name:string -> ?version:Repository.version -> ((string, string) result -> unit) -> unit

val list_names : t -> ((string list, string) result -> unit) -> unit

val inspect : t -> name:string -> ((Repository.summary, string) result -> unit) -> unit

(** {1 Instance placement directory} *)

val assign :
  t -> iid:string -> engine:string -> ((unit, string) result -> unit) -> unit
(** Record that [engine] owns instance [iid] (cluster placement). *)

val assign_many :
  t -> pairs:(string * string) list -> ((unit, string) result -> unit) -> unit
(** Record a whole batch of ownerships in one [repo.assign_batch] RPC —
    one directory round-trip per flush instead of one per instance. *)

val owner : t -> iid:string -> ((string option, string) result -> unit) -> unit
(** Which engine owns [iid]? [Ok None] when the directory has no entry. *)

val placements : t -> (((string * string) list, string) result -> unit) -> unit

val launch :
  t ->
  engine:Engine.t ->
  name:string ->
  ?version:Repository.version ->
  root:string ->
  inputs:(string * Value.obj) list ->
  ((string, string) result -> unit) ->
  unit
(** Fetch a stored script and launch it on [engine] (which must be local
    to the caller). The callback receives the instance id. *)
