(** RPC client for the {!Repository} service: what administrative
    applications and remote engines use (paper Fig 4's arrows through
    the ORB). All operations are continuation-passing over the
    simulated network. *)

type t

val create : rpc:Rpc.t -> src:string -> repo_node:string -> t
(** [src] is the calling node; [repo_node] hosts the repository. *)

val create_replicated : rpc:Rpc.t -> src:string -> replicas:string list -> unit -> t
(** A client of a {!Repo_group} replica set: mutations become
    replicated commands appended through the current leader (with
    redirect-on-[Not_leader] and failover baked in, see
    {!Rlog_client}), reads go leader-first and fail over to surviving
    replicas. Every mutation carries a fresh client id, so a retry
    that reaches a different leader after a crash applies exactly
    once. *)

val replicated : t -> bool

val invalidate : t -> unit
(** Forget the cached leader. Connection failures already invalidate it
    internally — a dead node is never retried forever — this is the
    out-of-band hook for callers that learn about failures elsewhere. *)

val leader_guess : t -> string option
(** Where the next call will be sent first ([Some repo_node] always,
    for a single-node client). *)

val store :
  t -> name:string -> source:string -> ((Repository.version, string) result -> unit) -> unit

val fetch :
  t -> name:string -> ?version:Repository.version -> ((string, string) result -> unit) -> unit

val list_names : t -> ((string list, string) result -> unit) -> unit

val inspect : t -> name:string -> ((Repository.summary, string) result -> unit) -> unit

(** {1 Instance placement directory} *)

val assign :
  t -> iid:string -> engine:string -> ((unit, string) result -> unit) -> unit
(** Record that [engine] owns instance [iid] (cluster placement). *)

val assign_many :
  t -> pairs:(string * string) list -> ((unit, string) result -> unit) -> unit
(** Record a whole batch of ownerships in one [repo.assign_batch] RPC —
    one directory round-trip per flush instead of one per instance. *)

val owner : t -> iid:string -> ((string option, string) result -> unit) -> unit
(** Which engine owns [iid]? [Ok None] when the directory has no entry. *)

val placements : t -> (((string * string) list, string) result -> unit) -> unit

val launch :
  t ->
  engine:Engine.t ->
  name:string ->
  ?version:Repository.version ->
  root:string ->
  inputs:(string * Value.obj) list ->
  ((string, string) result -> unit) ->
  unit
(** Fetch a stored script and launch it on [engine] (which must be local
    to the caller). The callback receives the instance id. *)
