(** Workflow repository service (paper §3, Fig 4).

    Stores workflow scripts (schemas) persistently and versioned, and
    serves operations for initialising, modifying and inspecting them.
    Every stored script is parsed, template-expanded and validated
    first: the repository only ever hands out runnable scripts.

    The service lives on a node and is reached over RPC ({!Repo_client});
    its state survives node crashes through the usual WAL-backed store. *)

type t

val create : rpc:Rpc.t -> node:Node.t -> t
(** Installs the [repo.*] services and crash/recovery hooks — the
    single-node flavour, where this store {e is} the repository. *)

val create_backing : node:Node.t -> t
(** A bare repository state machine: the store, no services, no hooks.
    The consensus layer ({!Repo_group}) wraps one per replica, feeds it
    committed commands through {!apply_command}, and wires its own
    recovery (log replay into a {!reset_state}-fresh store). *)

val install_read_services : t -> unit
(** Serve the read-only [repo.*] services ([fetch]/[list]/[inspect]/
    [owner]/[placements]) from this backing's local state. Mutations
    are deliberately excluded — on a replica they must travel through
    the log. *)

val reset_state : t -> unit
(** Discard the backing store (replicated recovery replays the log into
    the fresh one). Single-node repositories never call this. *)

val apply_command : t -> string -> string
(** Execute one replicated command ({!cmd_store} & co.) and return the
    wire-encoded reply. Deterministic, and deduplicated by the client
    id embedded in the command: re-applying a command whose id was
    already applied returns the original reply without re-executing. *)

val cmd_store : cid:string -> name:string -> source:string -> string

val cmd_assign : cid:string -> iid:string -> engine:string -> string

val cmd_assign_batch : cid:string -> pairs:(string * string) list -> string

val node_id : t -> string

(** {1 Local (in-process) operations — the service's own logic} *)

type version = int

type summary = {
  s_name : string;
  s_head : version;
  s_roots : string list;  (** top-level instances usable as schema roots *)
  s_task_count : int;  (** tasks in the largest root's tree *)
  s_warnings : int;
}

val store : t -> name:string -> source:string -> (version, string) result
(** Validate and store a new version (1 for a new name, head+1 after). *)

val fetch : t -> name:string -> ?version:version -> unit -> (string, string) result

val head : t -> name:string -> version option
(** [None] when no script of that name was ever stored. A head record
    that exists but does not parse as a version is store corruption:
    raises [Invalid_argument] rather than masking it as "no script". *)

val list_names : t -> string list

val inspect : t -> name:string -> (summary, string) result

val history : t -> name:string -> version list

(** {1 Instance placement directory}

    The cluster layer records which engine owns each workflow instance
    here, so {e any} node can resolve "which engine owns instance X"
    through the repository service — the directory survives repository
    crashes with the rest of the store. *)

val assign : t -> iid:string -> engine:string -> unit

val assign_many : t -> pairs:(string * string) list -> unit
(** Record a batch of [(iid, engine)] ownerships at once — the wire
    handler behind [repo.assign_batch], which the cluster layer uses to
    amortise one RPC over every launch of a poll instead of one RPC per
    instance. *)

val owner : t -> iid:string -> string option

val placements : t -> (string * string) list
(** All [(iid, engine)] assignments, sorted by instance id. *)

(** {1 Service names (for clients)} *)

val service_store : string

val service_fetch : string

val service_list : string

val service_inspect : string

val service_assign : string

val service_assign_batch : string

val service_owner : string

val service_placements : string

(**/**)

val internal_store : t -> Kvstore.t
(** The backing store, exposed for tests and repair tooling only. *)
