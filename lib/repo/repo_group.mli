(** Consensus-replicated repository: one {!Repository} backing plus one
    {!Rlog} replica per member node. Mutations travel as replicated
    commands and apply in commit order on every member; the read-only
    [repo.*] services answer from each member's local state. See
    {!Repo_client.create_replicated} for the matching client. *)

type t

val create : rpc:Rpc.t -> nodes:Node.t list -> t
(** One replica per node. The group elects the lowest-ranked member at
    bootstrap; thereafter leadership follows crashes and partitions. *)

val nodes : t -> string list
(** Sorted member node ids. *)

val replica : t -> string -> Repository.t
(** The local backing on one member — reads only; mutating it directly
    would fork the replica. For tests, oracles and repair tooling. *)

val rlog : t -> string -> Rlog.t

val leader : t -> string option
(** The member currently in the [Leader] role, if any. *)

val authoritative : t -> Repository.t
(** The most advanced member's backing (max term, then commit): what
    "the repository's durable state" means once the group replaces a
    single node. *)

val logs : t -> (string * (int * string) list) list
(** Per-member committed prefixes [(term, payload)] — the raw material
    of the log-linearizability oracle. *)
