type target =
  | Single of string  (* the classic one-node repository *)
  | Group of Rlog_client.t  (* replica set behind the consensus log *)

type t = {
  rpc : Rpc.t;
  src : string;
  target : target;
  cid_prefix : string;
  mutable cid_seq : int;
}

(* Client ids must be unique across every client instance of a run (two
   clients on the same source node must not collide), and deterministic:
   client creation order is part of the seeded setup. *)
let instances = ref 0

let fresh_prefix src =
  incr instances;
  Printf.sprintf "%s/%d" src !instances

let create ~rpc ~src ~repo_node =
  { rpc; src; target = Single repo_node; cid_prefix = fresh_prefix src; cid_seq = 0 }

let create_replicated ~rpc ~src ~replicas () =
  let rc = Rlog_client.create ~rpc ~src ~replicas () in
  { rpc; src; target = Group rc; cid_prefix = fresh_prefix src; cid_seq = 0 }

let replicated t = match t.target with Single _ -> false | Group _ -> true

let invalidate t =
  match t.target with Single _ -> () | Group rc -> Rlog_client.invalidate rc

let leader_guess t =
  match t.target with Single n -> Some n | Group rc -> Rlog_client.leader_guess rc

let next_cid t =
  t.cid_seq <- t.cid_seq + 1;
  Printf.sprintf "%s#%d" t.cid_prefix t.cid_seq

let dec_result dec body =
  let d = Wire.decoder body in
  if Wire.d_bool d then Ok (dec d) else Error (Wire.d_string d)

(* reads: plain RPC to the single node, or leader-first failover across
   the replica set *)
let read t ~service ~body k =
  match t.target with
  | Single dst -> Rpc.call t.rpc ~src:t.src ~dst ~service ~body k
  | Group rc -> Rlog_client.read rc ~service ~body k

(* writes: plain RPC, or a replicated append carrying the command *)
let write t ~service ~body ~cmd k =
  match t.target with
  | Single dst -> Rpc.call t.rpc ~src:t.src ~dst ~service ~body (fun r ->
        k (match r with Ok reply -> Ok reply | Error e -> Error ("rpc: " ^ e)))
  | Group rc ->
    Rlog_client.append rc ~payload:cmd (fun r ->
        k (match r with Ok reply -> Ok reply | Error e -> Error ("rlog: " ^ e)))

let call_result t ~service ~body ~cmd ~dec k =
  write t ~service ~body ~cmd (function
    | Ok reply -> (
      match dec_result dec reply with v -> k v | exception Wire.Malformed m -> k (Error m))
    | Error e -> k (Error e))

let store t ~name ~source k =
  let cid = next_cid t in
  call_result t ~service:Repository.service_store
    ~body:(Wire.(pair string string) (name, source))
    ~cmd:(Repository.cmd_store ~cid ~name ~source)
    ~dec:Wire.d_int k

let fetch t ~name ?version k =
  read t ~service:Repository.service_fetch
    ~body:(Wire.(pair string (option int)) (name, version))
    (function
      | Ok reply -> (
        match dec_result Wire.d_string reply with
        | v -> k v
        | exception Wire.Malformed m -> k (Error m))
      | Error e -> k (Error ("rpc: " ^ e)))

let list_names t k =
  read t ~service:Repository.service_list ~body:"" (function
    | Ok reply -> (
      match Wire.(decode (d_list d_string)) reply with
      | names -> k (Ok names)
      | exception Wire.Malformed m -> k (Error m))
    | Error e -> k (Error ("rpc: " ^ e)))

let dec_summary d =
  let s_name = Wire.d_string d in
  let s_head = Wire.d_int d in
  let s_roots = Wire.d_list Wire.d_string d in
  let s_task_count = Wire.d_int d in
  let s_warnings = Wire.d_int d in
  { Repository.s_name; s_head; s_roots; s_task_count; s_warnings }

let inspect t ~name k =
  read t ~service:Repository.service_inspect ~body:(Wire.string name) (function
    | Ok reply -> (
      match dec_result dec_summary reply with
      | v -> k v
      | exception Wire.Malformed m -> k (Error m))
    | Error e -> k (Error ("rpc: " ^ e)))

let assign t ~iid ~engine k =
  let cid = next_cid t in
  write t ~service:Repository.service_assign
    ~body:(Wire.(pair string string) (iid, engine))
    ~cmd:(Repository.cmd_assign ~cid ~iid ~engine)
    (function Ok _ -> k (Ok ()) | Error e -> k (Error e))

let assign_many t ~pairs k =
  let cid = next_cid t in
  write t ~service:Repository.service_assign_batch
    ~body:(Wire.(list (pair string string)) pairs)
    ~cmd:(Repository.cmd_assign_batch ~cid ~pairs)
    (function Ok _ -> k (Ok ()) | Error e -> k (Error e))

let owner t ~iid k =
  read t ~service:Repository.service_owner ~body:(Wire.string iid) (function
    | Ok reply -> (
      match Wire.(decode (d_option d_string)) reply with
      | o -> k (Ok o)
      | exception Wire.Malformed m -> k (Error m))
    | Error e -> k (Error ("rpc: " ^ e)))

let placements t k =
  read t ~service:Repository.service_placements ~body:"" (function
    | Ok reply -> (
      match Wire.(decode (d_list (d_pair d_string d_string))) reply with
      | l -> k (Ok l)
      | exception Wire.Malformed m -> k (Error m))
    | Error e -> k (Error ("rpc: " ^ e)))

let launch t ~engine ~name ?version ~root ~inputs k =
  fetch t ~name ?version (function
    | Error e -> k (Error e)
    | Ok source -> k (Engine.launch engine ~script:source ~root ~inputs))
