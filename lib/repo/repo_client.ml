type t = { rpc : Rpc.t; src : string; repo_node : string }

let create ~rpc ~src ~repo_node = { rpc; src; repo_node }

let dec_result dec body =
  let d = Wire.decoder body in
  if Wire.d_bool d then Ok (dec d) else Error (Wire.d_string d)

let call t ~service ~body ~dec k =
  Rpc.call t.rpc ~src:t.src ~dst:t.repo_node ~service ~body (function
    | Ok reply -> (
      match dec_result dec reply with v -> k v | exception Wire.Malformed m -> k (Error m))
    | Error e -> k (Error ("rpc: " ^ e)))

let store t ~name ~source k =
  call t ~service:Repository.service_store
    ~body:(Wire.(pair string string) (name, source))
    ~dec:Wire.d_int k

let fetch t ~name ?version k =
  call t ~service:Repository.service_fetch
    ~body:(Wire.(pair string (option int)) (name, version))
    ~dec:Wire.d_string k

let list_names t k =
  Rpc.call t.rpc ~src:t.src ~dst:t.repo_node ~service:Repository.service_list ~body:"" (function
    | Ok reply -> (
      match Wire.(decode (d_list d_string)) reply with
      | names -> k (Ok names)
      | exception Wire.Malformed m -> k (Error m))
    | Error e -> k (Error ("rpc: " ^ e)))

let dec_summary d =
  let s_name = Wire.d_string d in
  let s_head = Wire.d_int d in
  let s_roots = Wire.d_list Wire.d_string d in
  let s_task_count = Wire.d_int d in
  let s_warnings = Wire.d_int d in
  { Repository.s_name; s_head; s_roots; s_task_count; s_warnings }

let inspect t ~name k =
  call t ~service:Repository.service_inspect ~body:(Wire.string name) ~dec:dec_summary k

let assign t ~iid ~engine k =
  Rpc.call t.rpc ~src:t.src ~dst:t.repo_node ~service:Repository.service_assign
    ~body:(Wire.(pair string string) (iid, engine))
    (function
      | Ok _ -> k (Ok ())
      | Error e -> k (Error ("rpc: " ^ e)))

let assign_many t ~pairs k =
  Rpc.call t.rpc ~src:t.src ~dst:t.repo_node ~service:Repository.service_assign_batch
    ~body:(Wire.(list (pair string string)) pairs)
    (function
      | Ok _ -> k (Ok ())
      | Error e -> k (Error ("rpc: " ^ e)))

let owner t ~iid k =
  Rpc.call t.rpc ~src:t.src ~dst:t.repo_node ~service:Repository.service_owner
    ~body:(Wire.string iid) (function
    | Ok reply -> (
      match Wire.(decode (d_option d_string)) reply with
      | o -> k (Ok o)
      | exception Wire.Malformed m -> k (Error m))
    | Error e -> k (Error ("rpc: " ^ e)))

let placements t k =
  Rpc.call t.rpc ~src:t.src ~dst:t.repo_node ~service:Repository.service_placements ~body:""
    (function
    | Ok reply -> (
      match Wire.(decode (d_list (d_pair d_string d_string))) reply with
      | l -> k (Ok l)
      | exception Wire.Malformed m -> k (Error m))
    | Error e -> k (Error ("rpc: " ^ e)))

let launch t ~engine ~name ?version ~root ~inputs k =
  fetch t ~name ?version (function
    | Error e -> k (Error e)
    | Ok source -> k (Engine.launch engine ~script:source ~root ~inputs))
