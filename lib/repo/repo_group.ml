(* A replica set of repositories over the consensus log. Each member
   node hosts one bare repository backing ({!Repository.create_backing})
   and one {!Rlog} replica whose state machine is that backing: every
   mutation is a log entry, applied in commit order on all members, so
   the schema store and the placement directory survive any minority of
   repository-node crashes. Reads are served locally on every member
   (the [repo.*] read services); writes arrive through [cons.append]
   and commit by quorum. *)

type t = {
  nodes : string list;
  members : (string * (Repository.t * Rlog.t)) list;
}

let create ~rpc ~nodes =
  if nodes = [] then invalid_arg "Repo_group.create: need at least one replica";
  let ids = List.sort_uniq compare (List.map Node.id nodes) in
  let members =
    List.map
      (fun node ->
        let repo = Repository.create_backing ~node in
        let rlog =
          Rlog.create ~rpc ~node ~peers:ids
            ~apply:(fun cmd -> Repository.apply_command repo cmd)
            ~reset:(fun () -> Repository.reset_state repo)
            ()
        in
        Repository.install_read_services repo;
        (Node.id node, (repo, rlog)))
      nodes
  in
  { nodes = ids; members }

let nodes t = t.nodes

let replica t id =
  match List.assoc_opt id t.members with
  | Some (repo, _) -> repo
  | None -> invalid_arg ("Repo_group.replica: no member " ^ id)

let rlog t id =
  match List.assoc_opt id t.members with
  | Some (_, rlog) -> rlog
  | None -> invalid_arg ("Repo_group.rlog: no member " ^ id)

let leader t =
  List.find_map
    (fun (id, (_, rlog)) -> if Rlog.role rlog = Rlog.Leader then Some id else None)
    t.members

(* The member whose view is most advanced: highest term first (a deposed
   leader may still call itself one), then highest commit, preferring an
   actual leader on ties; node id order breaks what remains, keeping the
   choice deterministic. *)
let authoritative t =
  let score (_, (_, rlog)) =
    (Rlog.current_term rlog, Rlog.commit_index rlog, if Rlog.role rlog = Rlog.Leader then 1 else 0)
  in
  let best =
    List.fold_left
      (fun acc m -> match acc with None -> Some m | Some b -> if score m > score b then Some m else Some b)
      None t.members
  in
  match best with
  | Some (_, (repo, _)) -> repo
  | None -> assert false (* members is non-empty by construction *)

let logs t =
  List.map (fun (id, (_, rlog)) -> (id, Rlog.committed rlog)) t.members
