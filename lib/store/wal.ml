(* Growable-array backing: an append is one store plus a counter bump
   (amortized — doubling copies on growth), with none of the cons-cell
   churn of the previous list representation, and [records] reads out in
   order without an O(n) reversal. *)
type 'a t = {
  name : string;
  mutable data : 'a array;
  mutable count : int;
  mutable appended_total : int;
}

let create ~name = { name; data = [||]; count = 0; appended_total = 0 }

let name t = t.name

let grow t record =
  let capacity = Array.length t.data in
  if t.count = capacity then begin
    let next = max 16 (2 * capacity) in
    let data = Array.make next record in
    Array.blit t.data 0 data 0 t.count;
    t.data <- data
  end

let append t record =
  grow t record;
  t.data.(t.count) <- record;
  t.count <- t.count + 1;
  t.appended_total <- t.appended_total + 1

let records t =
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (t.data.(i) :: acc) in
  collect (t.count - 1) []

let length t = t.count

let rewrite t records =
  t.data <- Array.of_list records;
  t.count <- Array.length t.data

let appended_total t = t.appended_total
