(** Abstract syntax of the workflow scripting language (paper §4).

    A script is a sequence of declarations: opaque object [class]es,
    [taskclass]es (typed input sets and outputs), [task] instances
    (implementation binding + dependency specification), [compoundtask]
    instances (hierarchical composition with output mappings),
    [tasktemplate]s and their instantiations. *)

(** The four output types of §4.2 / Fig 2-3. *)
type output_kind =
  | Outcome  (** final result *)
  | Abort_outcome  (** terminated with no side effects; implies atomic *)
  | Repeat_outcome  (** restarts the task; objects private to the task *)
  | Mark  (** early-release intermediate output *)

type object_decl = { od_name : string; od_class : string; od_loc : Loc.t }
(** [name of class Class] inside input sets and outputs. *)

type input_set_decl = {
  isd_name : string;
  isd_objects : object_decl list;
  isd_loc : Loc.t;
}

type output_decl = {
  outd_kind : output_kind;
  outd_name : string;
  outd_objects : object_decl list;
  outd_loc : Loc.t;
}

type taskclass_decl = {
  tcd_name : string;
  tcd_input_sets : input_set_decl list;
  tcd_outputs : output_decl list;
  tcd_loc : Loc.t;
}

(** [if output oc] / [if input set] / no condition on a source. *)
type source_cond =
  | On_output of string
  | On_input of string
  | Any

type object_source = {
  os_object : string;  (** object name at the source task *)
  os_task : string;
  os_cond : source_cond;
  os_loc : Loc.t;
}
(** [obj of task T if output oc]. *)

type notif_source = { ns_task : string; ns_cond : source_cond; ns_loc : Loc.t }
(** [task T if output oc]. *)

(** One dependency inside an input set specification: either a
    notification (each with alternative sources) or a named input object
    (with alternative sources, in priority order). *)
type input_dep =
  | Dep_notification of notif_source list
  | Dep_object of { d_name : string; d_sources : object_source list; d_loc : Loc.t }

type input_set_spec = {
  iss_name : string;
  iss_deps : input_dep list;
  iss_loc : Loc.t;
}

type implementation = (string * string) list
(** [implementation { "code" is "X", "location" is "n1", ... }]. *)

(** What a [timeout t then ...] clause does when the watchdog fires. *)
type timeout_action =
  | Ta_alternative  (** fall over to the next ranked alternative code *)
  | Ta_substitute of string  (** dispatch this implementation code instead *)
  | Ta_abort  (** give up: fail the task through its abort path *)

(** One clause of a [recovery { ... }] section — the declarative
    recovery strategy (REL line of work), kept separate from the
    functional specification but compiled with it. *)
type recovery_clause =
  | R_retry of {
      count : int;
      backoff : int option;
      jitter : int option;
      max : int option;
      loc : Loc.t;
    }
      (** [retry n [backoff b [jitter j] [max m]]] — up to [n]
          re-dispatches per implementation code, delayed b*2^(attempt-1)
          ms capped at m, plus a deterministic seed-derived jitter in
          [0, j) ms to de-synchronise retry storms. *)
  | R_timeout of { ms : int; action : timeout_action; loc : Loc.t }
      (** [timeout t then ...] — per-attempt watchdog deadline in ms. *)
  | R_alternative of { codes : string list; loc : Loc.t }
      (** [alternative "c1", "c2"] — ranked fallback implementation codes
          tried after the primary's retry budget is exhausted. *)
  | R_compensate of { task : string; loc : Loc.t }
      (** [compensate t] — run sibling task [t]'s implementation once if
          this task concludes through an abort outcome. *)

type recovery = recovery_clause list

type task_decl = {
  td_name : string;
  td_class : string;
  td_impl : implementation;
  td_recovery : recovery;
  td_inputs : input_set_spec list;
  td_loc : Loc.t;
}

(** An output mapping clause of a compound task: when can the compound
    produce this output and where do its objects come from. *)
type output_binding = {
  ob_kind : output_kind;
  ob_name : string;
  ob_deps : output_dep list;
  ob_loc : Loc.t;
}

and output_dep =
  | Out_notification of notif_source list
  | Out_object of { o_name : string; o_sources : object_source list; o_loc : Loc.t }

and compound_decl = {
  cd_name : string;
  cd_class : string;
  cd_impl : implementation;  (** usually empty; kept for uniformity *)
  cd_recovery : recovery;
  cd_inputs : input_set_spec list;  (** empty when used as an implementation *)
  cd_constituents : constituent list;
  cd_outputs : output_binding list;
  cd_loc : Loc.t;
}

and constituent =
  | C_task of task_decl
  | C_compound of compound_decl
  | C_template_inst of template_inst

and template_inst = {
  ti_name : string;
  ti_template : string;
  ti_args : string list;
  ti_loc : Loc.t;
}
(** [name of tasktemplate tmpl(arg1, arg2)]. *)

type template_decl = {
  tpl_name : string;
  tpl_params : string list;
  tpl_body : template_body;
  tpl_loc : Loc.t;
}

and template_body =
  | T_task of task_decl
  | T_compound of compound_decl

type decl =
  | D_class of { cls_name : string; cls_parent : string option; cls_loc : Loc.t }
      (** [class Sub extends Super]: the optional parent enables the
          sub-typing extension the paper sketches as future work (§7) —
          an object of a subclass is accepted wherever the superclass is
          expected. *)
  | D_taskclass of taskclass_decl
  | D_task of task_decl
  | D_compound of compound_decl
  | D_template of template_decl
  | D_template_inst of template_inst

type script = decl list

(** {1 Accessors} *)

val decl_name : decl -> string

val decl_loc : decl -> Loc.t

val constituent_name : constituent -> string

val constituent_loc : constituent -> Loc.t

val impl_code : implementation -> string option
(** The ["code"] binding, if present. *)

val impl_location : implementation -> string option
(** The ["location"] binding (hosting node), if present. *)

val recovery_clause_loc : recovery_clause -> Loc.t

val recovery_retry : recovery -> (int * int option * int option) option
(** The [retry] clause as [(count, backoff, max)], if declared. *)

val recovery_retry_jitter : recovery -> int option
(** The [jitter] slot of the [retry] clause, if declared. *)

val recovery_timeout : recovery -> (int * timeout_action) option
(** The [timeout] clause as [(ms, action)], if declared. *)

val recovery_alternatives : recovery -> string list
(** Ranked fallback implementation codes, declaration order. *)

val recovery_compensate : recovery -> string option
(** The compensation target task, if declared. *)

val output_kind_to_string : output_kind -> string

val classes : script -> string list

val class_parents : script -> (string * string option) list
(** Every declared class with its declared parent (subtyping). *)

val taskclasses : script -> taskclass_decl list

val find_taskclass : script -> string -> taskclass_decl option

val find_output : taskclass_decl -> string -> output_decl option

val find_input_set : taskclass_decl -> string -> input_set_decl option
