type cond =
  | C_output of string
  | C_input of string
  | C_any

type obj_source = { s_task : string; s_obj : string; s_cond : cond }

type notif_source = { n_task : string; n_cond : cond }

type input_object = {
  io_name : string;
  io_class : string;
  io_sources : obj_source list;
}

type input_set = {
  is_name : string;
  is_notifications : notif_source list list;
  is_objects : input_object list;
}

type output = {
  out_kind : Ast.output_kind;
  out_name : string;
  out_objects : (string * string) list;
}

type binding = {
  b_name : string;
  b_kind : Ast.output_kind;
  b_notifications : notif_source list list;
  b_objects : (string * obj_source list) list;
}

(* Compiled recovery policy: the executable form of a task's
   recovery { ... } section. [p_declared = false] is the compiled form
   of "no clause written": every field holds the sentinel that makes the
   engine fall back to its config-seeded default policy, reproducing the
   legacy global-knob behaviour exactly. *)
type policy = {
  p_retry : int option;  (* extra attempts per implementation code *)
  p_backoff_ms : int;  (* base delay before a policy retry; 0 = immediate *)
  p_jitter_ms : int;  (* seed-derived spread added to each backoff; 0 = none *)
  p_backoff_max_ms : int option;  (* cap on the exponential backoff *)
  p_timeout_ms : int option;  (* per-attempt watchdog deadline *)
  p_on_timeout : Ast.timeout_action;  (* what the watchdog does *)
  p_alternatives : string list;  (* ranked fallback implementation codes *)
  p_compensate : string option;  (* sibling task run once on abort *)
  p_declared : bool;  (* was a recovery section written at all *)
}

let no_policy =
  {
    p_retry = None;
    p_backoff_ms = 0;
    p_jitter_ms = 0;
    p_backoff_max_ms = None;
    p_timeout_ms = None;
    p_on_timeout = Ast.Ta_abort;
    p_alternatives = [];
    p_compensate = None;
    p_declared = false;
  }

let policy_of_recovery (rc : Ast.recovery) =
  if rc = [] then no_policy
  else
    let retry = Ast.recovery_retry rc in
    let timeout = Ast.recovery_timeout rc in
    {
      p_retry = Option.map (fun (n, _, _) -> n) retry;
      p_backoff_ms =
        (match retry with Some (_, Some b, _) -> b | Some (_, None, _) | None -> 0);
      p_jitter_ms = (match Ast.recovery_retry_jitter rc with Some j -> j | None -> 0);
      p_backoff_max_ms = (match retry with Some (_, _, m) -> m | None -> None);
      p_timeout_ms = Option.map fst timeout;
      p_on_timeout = (match timeout with Some (_, a) -> a | None -> Ast.Ta_abort);
      p_alternatives = Ast.recovery_alternatives rc;
      p_compensate = Ast.recovery_compensate rc;
      p_declared = true;
    }

type task = {
  name : string;
  klass : string;
  impl : (string * string) list;
  policy : policy;
  inputs : input_set list;
  outputs : output list;
  body : body;
}

and body =
  | Simple
  | Compound of { children : task list; bindings : binding list }

exception Resolve_error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Resolve_error msg)) fmt

let cond_of_ast = function
  | Ast.On_output name -> C_output name
  | Ast.On_input name -> C_input name
  | Ast.Any -> C_any

let obj_source_of_ast (os : Ast.object_source) =
  { s_task = os.os_task; s_obj = os.os_object; s_cond = cond_of_ast os.os_cond }

let notif_source_of_ast (ns : Ast.notif_source) =
  { n_task = ns.ns_task; n_cond = cond_of_ast ns.ns_cond }

let outputs_of_class (tc : Ast.taskclass_decl) =
  let convert (o : Ast.output_decl) =
    {
      out_kind = o.outd_kind;
      out_name = o.outd_name;
      out_objects = List.map (fun (od : Ast.object_decl) -> (od.od_name, od.od_class)) o.outd_objects;
    }
  in
  List.map convert tc.tcd_outputs

let input_sets_of ~(tc : Ast.taskclass_decl) ~(specs : Ast.input_set_spec list) ~owner =
  let resolve_set (iss : Ast.input_set_spec) =
    let isd =
      match Ast.find_input_set tc iss.iss_name with
      | Some isd -> isd
      | None -> fail "task %s: taskclass %s has no input set %s" owner tc.tcd_name iss.iss_name
    in
    let notifications =
      List.filter_map
        (function
          | Ast.Dep_notification sources -> Some (List.map notif_source_of_ast sources)
          | Ast.Dep_object _ -> None)
        iss.iss_deps
    in
    let sources_for (od : Ast.object_decl) =
      let found =
        List.find_map
          (function
            | Ast.Dep_object { d_name; d_sources; _ } when d_name = od.od_name -> Some d_sources
            | Ast.Dep_object _ | Ast.Dep_notification _ -> None)
          iss.iss_deps
      in
      match found with
      | Some sources -> List.map obj_source_of_ast sources
      | None -> []
    in
    let objects =
      List.map
        (fun (od : Ast.object_decl) ->
          { io_name = od.od_name; io_class = od.od_class; io_sources = sources_for od })
        isd.isd_objects
    in
    { is_name = iss.iss_name; is_notifications = notifications; is_objects = objects }
  in
  match specs with
  | [] ->
    (* no spec: every declared set, all objects external *)
    let external_set (isd : Ast.input_set_decl) =
      {
        is_name = isd.isd_name;
        is_notifications = [];
        is_objects =
          List.map
            (fun (od : Ast.object_decl) ->
              { io_name = od.od_name; io_class = od.od_class; io_sources = [] })
            isd.isd_objects;
      }
    in
    List.map external_set tc.tcd_input_sets
  | specs -> List.map resolve_set specs

let binding_of_ast (ob : Ast.output_binding) =
  let notifications =
    List.filter_map
      (function
        | Ast.Out_notification sources -> Some (List.map notif_source_of_ast sources)
        | Ast.Out_object _ -> None)
      ob.ob_deps
  in
  let objects =
    List.filter_map
      (function
        | Ast.Out_object { o_name; o_sources; _ } ->
          Some (o_name, List.map obj_source_of_ast o_sources)
        | Ast.Out_notification _ -> None)
      ob.ob_deps
  in
  { b_name = ob.ob_name; b_kind = ob.ob_kind; b_notifications = notifications; b_objects = objects }

let class_of script name ~owner =
  match Ast.find_taskclass script name with
  | Some tc -> tc
  | None -> fail "task %s: unknown taskclass %s" owner name

let rec task_of_decl script (td : Ast.task_decl) =
  let tc = class_of script td.td_class ~owner:td.td_name in
  {
    name = td.td_name;
    klass = td.td_class;
    impl = td.td_impl;
    policy = policy_of_recovery td.td_recovery;
    inputs = input_sets_of ~tc ~specs:td.td_inputs ~owner:td.td_name;
    outputs = outputs_of_class tc;
    body = Simple;
  }

and compound_of_decl script (cd : Ast.compound_decl) =
  let tc = class_of script cd.cd_class ~owner:cd.cd_name in
  let child = function
    | Ast.C_task td -> task_of_decl script td
    | Ast.C_compound inner -> compound_of_decl script inner
    | Ast.C_template_inst ti -> fail "task %s: unexpanded template %s" cd.cd_name ti.Ast.ti_name
  in
  {
    name = cd.cd_name;
    klass = cd.cd_class;
    impl = cd.cd_impl;
    policy = policy_of_recovery cd.cd_recovery;
    inputs = input_sets_of ~tc ~specs:cd.cd_inputs ~owner:cd.cd_name;
    outputs = outputs_of_class tc;
    body =
      Compound
        {
          children = List.map child cd.cd_constituents;
          bindings = List.map binding_of_ast cd.cd_outputs;
        };
  }

let of_script script ~root =
  let found =
    List.find_map
      (function
        | Ast.D_task td when td.Ast.td_name = root -> Some (`Task td)
        | Ast.D_compound cd when cd.Ast.cd_name = root -> Some (`Compound cd)
        | _ -> None)
      script
  in
  match found with
  | None -> Error (Printf.sprintf "no top-level task or compound task named %s" root)
  | Some decl -> (
    match
      match decl with
      | `Task td -> task_of_decl script td
      | `Compound cd -> compound_of_decl script cd
    with
    | task -> Ok task
    | exception Resolve_error msg -> Error msg)

let find_child task name =
  match task.body with
  | Simple -> None
  | Compound { children; _ } -> List.find_opt (fun c -> c.name = name) children

let is_atomic task = List.exists (fun o -> o.out_kind = Ast.Abort_outcome) task.outputs

let output_named task name = List.find_opt (fun o -> o.out_name = name) task.outputs

let input_set_named task name = List.find_opt (fun s -> s.is_name = name) task.inputs

let rec task_count task =
  match task.body with
  | Simple -> 1
  | Compound { children; _ } -> 1 + List.fold_left (fun acc c -> acc + task_count c) 0 children
