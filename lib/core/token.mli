(** Lexical tokens of the workflow scripting language. *)

type t =
  | Ident of string
  | String of string  (** double-quoted literal, e.g. implementation values *)
  | Int of int  (** decimal literal, used by recovery clauses *)
  | Kw_class
  | Kw_taskclass
  | Kw_task
  | Kw_compoundtask
  | Kw_tasktemplate
  | Kw_inputs
  | Kw_outputs
  | Kw_input
  | Kw_output
  | Kw_inputobject
  | Kw_outputobject
  | Kw_outcome
  | Kw_abort
  | Kw_repeat
  | Kw_mark
  | Kw_notification
  | Kw_from
  | Kw_of
  | Kw_if
  | Kw_is
  | Kw_implementation
  | Kw_parameters
  | Kw_extends
  | Kw_recovery
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Semi
  | Comma
  | Eof

val keyword_of_string : string -> t option

val pp : Format.formatter -> t -> unit

val to_string : t -> string
