(** Executable schema: the resolved form of a validated script that the
    execution service interprets.

    A schema is a tree of task definitions rooted at one top-level
    instance. Simple tasks carry their implementation binding; compound
    tasks carry their children and output bindings. All names are
    taken verbatim from the script — resolution against taskclasses has
    already happened, so every input object knows its class and every
    source is structurally meaningful. *)

type cond =
  | C_output of string
  | C_input of string
  | C_any

type obj_source = { s_task : string; s_obj : string; s_cond : cond }

type notif_source = { n_task : string; n_cond : cond }

type input_object = {
  io_name : string;
  io_class : string;
  io_sources : obj_source list;
      (** priority-ordered alternatives; empty = supplied externally *)
}

type input_set = {
  is_name : string;
  is_notifications : notif_source list list;
      (** one element per notification dependency, each a list of
          alternatives *)
  is_objects : input_object list;
}

type output = {
  out_kind : Ast.output_kind;
  out_name : string;
  out_objects : (string * string) list;  (** object name, class *)
}

type binding = {
  b_name : string;
  b_kind : Ast.output_kind;
  b_notifications : notif_source list list;
  b_objects : (string * obj_source list) list;
}

type policy = {
  p_retry : int option;  (** extra attempts per implementation code *)
  p_backoff_ms : int;  (** base delay before a policy retry; 0 = immediate *)
  p_jitter_ms : int;
      (** seed-derived spread in [0, j) ms added to each backoff delay;
          0 = none *)
  p_backoff_max_ms : int option;  (** cap on the exponential backoff *)
  p_timeout_ms : int option;  (** per-attempt watchdog deadline *)
  p_on_timeout : Ast.timeout_action;  (** what the watchdog does *)
  p_alternatives : string list;  (** ranked fallback implementation codes *)
  p_compensate : string option;  (** sibling task run once on abort *)
  p_declared : bool;  (** was a recovery section written at all *)
}
(** Compiled recovery policy of one task. When [p_declared] is false the
    engine substitutes its config-seeded default policy, reproducing the
    pre-policy global-knob behaviour exactly. *)

val no_policy : policy
(** The compiled form of "no recovery section". *)

val policy_of_recovery : Ast.recovery -> policy

type task = {
  name : string;
  klass : string;
  impl : (string * string) list;
  policy : policy;
  inputs : input_set list;
  outputs : output list;
  body : body;
}

and body =
  | Simple
  | Compound of { children : task list; bindings : binding list }

val of_script : Ast.script -> root:string -> (task, string) result
(** Resolve the top-level instance [root]. The script must already be
    template-expanded and error-free per {!Validate}. *)

val find_child : task -> string -> task option

val is_atomic : task -> bool
(** A task is atomic iff its class declares an abort outcome. *)

val output_named : task -> string -> output option

val input_set_named : task -> string -> input_set option

val task_count : task -> int
(** Total number of task definitions in the tree, root included. *)
