type output_kind =
  | Outcome
  | Abort_outcome
  | Repeat_outcome
  | Mark

type object_decl = { od_name : string; od_class : string; od_loc : Loc.t }

type input_set_decl = {
  isd_name : string;
  isd_objects : object_decl list;
  isd_loc : Loc.t;
}

type output_decl = {
  outd_kind : output_kind;
  outd_name : string;
  outd_objects : object_decl list;
  outd_loc : Loc.t;
}

type taskclass_decl = {
  tcd_name : string;
  tcd_input_sets : input_set_decl list;
  tcd_outputs : output_decl list;
  tcd_loc : Loc.t;
}

type source_cond =
  | On_output of string
  | On_input of string
  | Any

type object_source = {
  os_object : string;
  os_task : string;
  os_cond : source_cond;
  os_loc : Loc.t;
}

type notif_source = { ns_task : string; ns_cond : source_cond; ns_loc : Loc.t }

type input_dep =
  | Dep_notification of notif_source list
  | Dep_object of { d_name : string; d_sources : object_source list; d_loc : Loc.t }

type input_set_spec = {
  iss_name : string;
  iss_deps : input_dep list;
  iss_loc : Loc.t;
}

type implementation = (string * string) list

(* Declarative recovery strategy (REL-style): a recovery { ... } section
   attached to a task or compound, kept separate from the functional
   specification but compiled with it. *)
type timeout_action =
  | Ta_alternative  (** fall over to the next ranked alternative code *)
  | Ta_substitute of string  (** dispatch this implementation code instead *)
  | Ta_abort  (** give up: fail the task through its abort path *)

type recovery_clause =
  | R_retry of {
      count : int;
      backoff : int option;
      jitter : int option;
      max : int option;
      loc : Loc.t;
    }
      (** [retry n [backoff b [jitter j] [max m]]] — up to [n]
          re-dispatches per implementation code, delayed b*2^(attempt-1)
          ms capped at m, plus a deterministic seed-derived jitter in
          [0, j) ms to de-synchronise retry storms. *)
  | R_timeout of { ms : int; action : timeout_action; loc : Loc.t }
      (** [timeout t then ...] — per-attempt watchdog deadline in ms. *)
  | R_alternative of { codes : string list; loc : Loc.t }
      (** [alternative "c1", "c2"] — ranked fallback implementation codes
          tried after the primary's retry budget is exhausted. *)
  | R_compensate of { task : string; loc : Loc.t }
      (** [compensate t] — run sibling task [t]'s implementation once if
          this task concludes through an abort outcome. *)

type recovery = recovery_clause list

type task_decl = {
  td_name : string;
  td_class : string;
  td_impl : implementation;
  td_recovery : recovery;
  td_inputs : input_set_spec list;
  td_loc : Loc.t;
}

type output_binding = {
  ob_kind : output_kind;
  ob_name : string;
  ob_deps : output_dep list;
  ob_loc : Loc.t;
}

and output_dep =
  | Out_notification of notif_source list
  | Out_object of { o_name : string; o_sources : object_source list; o_loc : Loc.t }

and compound_decl = {
  cd_name : string;
  cd_class : string;
  cd_impl : implementation;
  cd_recovery : recovery;
  cd_inputs : input_set_spec list;
  cd_constituents : constituent list;
  cd_outputs : output_binding list;
  cd_loc : Loc.t;
}

and constituent =
  | C_task of task_decl
  | C_compound of compound_decl
  | C_template_inst of template_inst

and template_inst = {
  ti_name : string;
  ti_template : string;
  ti_args : string list;
  ti_loc : Loc.t;
}

type template_decl = {
  tpl_name : string;
  tpl_params : string list;
  tpl_body : template_body;
  tpl_loc : Loc.t;
}

and template_body =
  | T_task of task_decl
  | T_compound of compound_decl

type decl =
  | D_class of { cls_name : string; cls_parent : string option; cls_loc : Loc.t }
  | D_taskclass of taskclass_decl
  | D_task of task_decl
  | D_compound of compound_decl
  | D_template of template_decl
  | D_template_inst of template_inst

type script = decl list

let decl_name = function
  | D_class { cls_name; _ } -> cls_name
  | D_taskclass { tcd_name; _ } -> tcd_name
  | D_task { td_name; _ } -> td_name
  | D_compound { cd_name; _ } -> cd_name
  | D_template { tpl_name; _ } -> tpl_name
  | D_template_inst { ti_name; _ } -> ti_name

let decl_loc = function
  | D_class { cls_loc; _ } -> cls_loc
  | D_taskclass { tcd_loc; _ } -> tcd_loc
  | D_task { td_loc; _ } -> td_loc
  | D_compound { cd_loc; _ } -> cd_loc
  | D_template { tpl_loc; _ } -> tpl_loc
  | D_template_inst { ti_loc; _ } -> ti_loc

let constituent_name = function
  | C_task { td_name; _ } -> td_name
  | C_compound { cd_name; _ } -> cd_name
  | C_template_inst { ti_name; _ } -> ti_name

let constituent_loc = function
  | C_task { td_loc; _ } -> td_loc
  | C_compound { cd_loc; _ } -> cd_loc
  | C_template_inst { ti_loc; _ } -> ti_loc

let impl_code impl = List.assoc_opt "code" impl

let recovery_clause_loc = function
  | R_retry { loc; _ } | R_timeout { loc; _ } | R_alternative { loc; _ } | R_compensate { loc; _ }
    ->
    loc

let recovery_retry rc =
  List.find_map (function R_retry r -> Some (r.count, r.backoff, r.max) | _ -> None) rc

let recovery_retry_jitter rc =
  List.find_map (function R_retry r -> r.jitter | _ -> None) rc

let recovery_timeout rc =
  List.find_map (function R_timeout t -> Some (t.ms, t.action) | _ -> None) rc

let recovery_alternatives rc =
  List.concat_map (function R_alternative a -> a.codes | _ -> []) rc

let recovery_compensate rc =
  List.find_map (function R_compensate c -> Some c.task | _ -> None) rc

let impl_location impl = List.assoc_opt "location" impl

let output_kind_to_string = function
  | Outcome -> "outcome"
  | Abort_outcome -> "abort outcome"
  | Repeat_outcome -> "repeat outcome"
  | Mark -> "mark"

let classes script =
  List.filter_map (function D_class { cls_name; _ } -> Some cls_name | _ -> None) script

let class_parents script =
  List.filter_map
    (function D_class { cls_name; cls_parent; _ } -> Some (cls_name, cls_parent) | _ -> None)
    script

let taskclasses script =
  List.filter_map (function D_taskclass tc -> Some tc | _ -> None) script

let find_taskclass script name =
  List.find_opt (fun tc -> tc.tcd_name = name) (taskclasses script)

let find_output tc name = List.find_opt (fun o -> o.outd_name = name) tc.tcd_outputs

let find_input_set tc name = List.find_opt (fun s -> s.isd_name = name) tc.tcd_input_sets
