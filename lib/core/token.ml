type t =
  | Ident of string
  | String of string
  | Int of int
  | Kw_class
  | Kw_taskclass
  | Kw_task
  | Kw_compoundtask
  | Kw_tasktemplate
  | Kw_inputs
  | Kw_outputs
  | Kw_input
  | Kw_output
  | Kw_inputobject
  | Kw_outputobject
  | Kw_outcome
  | Kw_abort
  | Kw_repeat
  | Kw_mark
  | Kw_notification
  | Kw_from
  | Kw_of
  | Kw_if
  | Kw_is
  | Kw_implementation
  | Kw_parameters
  | Kw_extends
  | Kw_recovery
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Semi
  | Comma
  | Eof

let keywords =
  [
    ("class", Kw_class);
    ("taskclass", Kw_taskclass);
    ("task", Kw_task);
    ("compoundtask", Kw_compoundtask);
    ("tasktemplate", Kw_tasktemplate);
    ("inputs", Kw_inputs);
    ("outputs", Kw_outputs);
    ("input", Kw_input);
    ("output", Kw_output);
    ("inputobject", Kw_inputobject);
    ("outputobject", Kw_outputobject);
    ("outcome", Kw_outcome);
    ("abort", Kw_abort);
    ("repeat", Kw_repeat);
    ("mark", Kw_mark);
    ("notification", Kw_notification);
    ("from", Kw_from);
    ("of", Kw_of);
    ("if", Kw_if);
    ("is", Kw_is);
    ("implementation", Kw_implementation);
    ("parameters", Kw_parameters);
    ("extends", Kw_extends);
    ("recovery", Kw_recovery);
  ]

let keyword_of_string s = List.assoc_opt s keywords

let to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | String s -> Printf.sprintf "string %S" s
  | Int n -> Printf.sprintf "number %d" n
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Semi -> "';'"
  | Comma -> "','"
  | Eof -> "end of input"
  | kw -> (
    match List.find_opt (fun (_, t) -> t = kw) keywords with
    | Some (name, _) -> Printf.sprintf "keyword '%s'" name
    | None -> "unknown token")

let pp ppf t = Format.pp_print_string ppf (to_string t)
