open Format

let pp_sep_semi ppf () = fprintf ppf ";@ "

let pp_block pp_item ppf = function
  | [] -> fprintf ppf "{@ }"
  | items -> fprintf ppf "{@;<1 4>@[<v>%a@]@ }" (pp_print_list ~pp_sep:pp_sep_semi pp_item) items

let pp_object_decl ppf (od : Ast.object_decl) =
  fprintf ppf "%s of class %s" od.od_name od.od_class

let pp_cond ppf = function
  | Ast.On_output name -> fprintf ppf " if output %s" name
  | Ast.On_input name -> fprintf ppf " if input %s" name
  | Ast.Any -> ()

let pp_notif_source ppf (ns : Ast.notif_source) =
  fprintf ppf "task %s%a" ns.ns_task pp_cond ns.ns_cond

let pp_object_source ppf (os : Ast.object_source) =
  fprintf ppf "%s of task %s%a" os.os_object os.os_task pp_cond os.os_cond

let pp_input_dep ppf = function
  | Ast.Dep_notification sources ->
    fprintf ppf "@[<v>notification from %a@]" (pp_block pp_notif_source) sources
  | Ast.Dep_object { d_name; d_sources; _ } ->
    fprintf ppf "@[<v>inputobject %s from %a@]" d_name (pp_block pp_object_source) d_sources

let pp_input_set_spec ppf (iss : Ast.input_set_spec) =
  fprintf ppf "@[<v>input %s %a@]" iss.iss_name (pp_block pp_input_dep) iss.iss_deps

let pp_kv ppf (k, v) = fprintf ppf "%S is %S" k v

let pp_implementation ppf = function
  | [] -> ()
  | kvs ->
    fprintf ppf "implementation { %a };@ "
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_kv)
      kvs

let pp_inputs_block ppf = function
  | [] -> ()
  | sets -> fprintf ppf "@[<v>inputs %a@];@ " (pp_block pp_input_set_spec) sets

let pp_recovery_clause ppf = function
  | Ast.R_retry { count; backoff; jitter; max; _ } ->
    fprintf ppf "retry %d" count;
    (match backoff with Some b -> fprintf ppf " backoff %d" b | None -> ());
    (match jitter with Some j -> fprintf ppf " jitter %d" j | None -> ());
    (match max with Some m -> fprintf ppf " max %d" m | None -> ())
  | Ast.R_timeout { ms; action; _ } -> (
    fprintf ppf "timeout %d then " ms;
    match action with
    | Ast.Ta_alternative -> fprintf ppf "alternative"
    | Ast.Ta_substitute code -> fprintf ppf "substitute %S" code
    | Ast.Ta_abort -> fprintf ppf "abort")
  | Ast.R_alternative { codes; _ } ->
    fprintf ppf "alternative %a"
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") (fun ppf c -> fprintf ppf "%S" c))
      codes
  | Ast.R_compensate { task; _ } -> fprintf ppf "compensate %s" task

let pp_recovery_block ppf = function
  | [] -> ()
  | clauses ->
    fprintf ppf "recovery { %a };@ "
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf "; ") pp_recovery_clause)
      clauses

let pp_kind ppf kind = fprintf ppf "%s" (Ast.output_kind_to_string kind)

let pp_output_dep ppf = function
  | Ast.Out_notification sources ->
    fprintf ppf "@[<v>notification from %a@]" (pp_block pp_notif_source) sources
  | Ast.Out_object { o_name; o_sources; _ } ->
    fprintf ppf "@[<v>outputobject %s from %a@]" o_name (pp_block pp_object_source) o_sources

let pp_output_binding ppf (ob : Ast.output_binding) =
  fprintf ppf "@[<v>%a %s %a@]" pp_kind ob.ob_kind ob.ob_name (pp_block pp_output_dep) ob.ob_deps

let rec pp_task ppf (td : Ast.task_decl) =
  fprintf ppf "@[<v>task %s of taskclass %s {@;<1 4>@[<v>%a%a%a@]@ }@]" td.td_name td.td_class
    pp_implementation td.td_impl pp_recovery_block td.td_recovery pp_inputs_block td.td_inputs

and pp_compound ppf (cd : Ast.compound_decl) =
  fprintf ppf "@[<v>compoundtask %s of taskclass %s {@;<1 4>@[<v>%a%a%a%a%a@]@ }@]" cd.cd_name
    cd.cd_class pp_implementation cd.cd_impl pp_recovery_block cd.cd_recovery pp_inputs_block
    cd.cd_inputs pp_constituents cd.cd_constituents pp_outputs_block cd.cd_outputs

and pp_constituents ppf = function
  | [] -> ()
  | cs ->
    let pp_one ppf = function
      | Ast.C_task td -> pp_task ppf td
      | Ast.C_compound cd -> pp_compound ppf cd
      | Ast.C_template_inst ti -> pp_template_inst ppf ti
    in
    fprintf ppf "@[<v>%a@];@ " (pp_print_list ~pp_sep:pp_sep_semi pp_one) cs

and pp_template_inst ppf (ti : Ast.template_inst) =
  fprintf ppf "%s of tasktemplate %s(%a)" ti.ti_name ti.ti_template
    (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_print_string)
    ti.ti_args

and pp_outputs_block ppf = function
  | [] -> ()
  | bindings -> fprintf ppf "@[<v>outputs %a@]" (pp_block pp_output_binding) bindings

let pp_input_set_decl ppf (isd : Ast.input_set_decl) =
  fprintf ppf "@[<v>input %s %a@]" isd.isd_name (pp_block pp_object_decl) isd.isd_objects

let pp_output_decl ppf (outd : Ast.output_decl) =
  fprintf ppf "@[<v>%a %s %a@]" pp_kind outd.outd_kind outd.outd_name (pp_block pp_object_decl)
    outd.outd_objects

let pp_taskclass ppf (tc : Ast.taskclass_decl) =
  fprintf ppf "@[<v>taskclass %s {@;<1 4>@[<v>inputs %a;@ outputs %a@]@ }@]" tc.tcd_name
    (pp_block pp_input_set_decl) tc.tcd_input_sets (pp_block pp_output_decl) tc.tcd_outputs

let pp_parameters ppf = function
  | [] -> ()
  | params ->
    fprintf ppf "parameters { %a };@ "
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf "; ") pp_print_string)
      params

let pp_template ppf (tpl : Ast.template_decl) =
  match tpl.tpl_body with
  | Ast.T_task td ->
    fprintf ppf "@[<v>tasktemplate task %s of taskclass %s {@;<1 4>@[<v>%a%a%a%a@]@ }@]"
      tpl.tpl_name td.td_class pp_parameters tpl.tpl_params pp_implementation td.td_impl
      pp_recovery_block td.td_recovery pp_inputs_block td.td_inputs
  | Ast.T_compound cd ->
    fprintf ppf
      "@[<v>tasktemplate compoundtask %s of taskclass %s {@;<1 4>@[<v>%a%a%a%a%a%a@]@ }@]"
      tpl.tpl_name cd.cd_class pp_parameters tpl.tpl_params pp_implementation cd.cd_impl
      pp_recovery_block cd.cd_recovery pp_inputs_block cd.cd_inputs pp_constituents
      cd.cd_constituents pp_outputs_block cd.cd_outputs

let pp_decl ppf = function
  | Ast.D_class { cls_name; cls_parent = None; _ } -> fprintf ppf "class %s" cls_name
  | Ast.D_class { cls_name; cls_parent = Some parent; _ } ->
    fprintf ppf "class %s extends %s" cls_name parent
  | Ast.D_taskclass tc -> pp_taskclass ppf tc
  | Ast.D_task td -> pp_task ppf td
  | Ast.D_compound cd -> pp_compound ppf cd
  | Ast.D_template tpl -> pp_template ppf tpl
  | Ast.D_template_inst ti -> pp_template_inst ppf ti

let pp_script ppf script =
  let pp_sep ppf () = fprintf ppf ";@ @ " in
  fprintf ppf "@[<v>%a@]@." (pp_print_list ~pp_sep pp_decl) script

let to_string script = Format.asprintf "%a" pp_script script
