type severity = Error | Warning

type issue = { severity : severity; msg : string; loc : Loc.t }

type env = {
  classes : string list;
  parents : (string * string option) list;  (* subtyping: class -> declared parent *)
  taskclasses : (string * Ast.taskclass_decl) list;
  mutable rev_issues : issue list;
}

let report env severity loc fmt =
  Format.kasprintf (fun msg -> env.rev_issues <- { severity; msg; loc } :: env.rev_issues) fmt

let error env loc fmt = report env Error loc fmt

let warning env loc fmt = report env Warning loc fmt

let find_class env name = List.mem name env.classes

(* [subtype_of env sub sup]: walking [sub]'s parent chain reaches [sup].
   Fuelled so that an (independently reported) inheritance cycle cannot
   loop the checker. *)
let subtype_of env sub sup =
  let rec climb name fuel =
    fuel > 0
    && (name = sup
       ||
       match List.assoc_opt name env.parents with
       | Some (Some parent) -> climb parent (fuel - 1)
       | Some None | None -> false)
  in
  climb sub (List.length env.parents + 1)

let check_class_hierarchy env =
  let check (name, parent) =
    match parent with
    | None -> ()
    | Some parent ->
      if not (find_class env parent) then
        error env Loc.dummy "class %s extends unknown class %s" name parent
      else if subtype_of env parent name && parent <> name then
        error env Loc.dummy "inheritance cycle through class %s" name
  in
  List.iter check env.parents;
  List.iter
    (fun (name, parent) ->
      if parent = Some name then error env Loc.dummy "class %s extends itself" name)
    env.parents

let find_taskclass env name = List.assoc_opt name env.taskclasses

(* --- duplicate detection --- *)

let check_duplicates env ~what ~loc_of names =
  let seen = Hashtbl.create 8 in
  let check (name, loc) =
    if Hashtbl.mem seen name then error env (loc_of (name, loc)) "duplicate %s %s" what name
    else Hashtbl.add seen name ()
  in
  List.iter check names

let check_named_duplicates env ~what pairs =
  check_duplicates env ~what ~loc_of:(fun (_, loc) -> loc) pairs

(* --- taskclass declarations --- *)

let check_object_decls env decls =
  let check (od : Ast.object_decl) =
    if not (find_class env od.od_class) then
      error env od.od_loc "unknown class %s (object %s)" od.od_class od.od_name
  in
  check_named_duplicates env ~what:"object"
    (List.map (fun (od : Ast.object_decl) -> (od.od_name, od.od_loc)) decls);
  List.iter check decls

let check_taskclass env (tc : Ast.taskclass_decl) =
  check_named_duplicates env ~what:"input set"
    (List.map (fun (s : Ast.input_set_decl) -> (s.isd_name, s.isd_loc)) tc.tcd_input_sets);
  List.iter (fun (s : Ast.input_set_decl) -> check_object_decls env s.isd_objects) tc.tcd_input_sets;
  check_named_duplicates env ~what:"output"
    (List.map (fun (o : Ast.output_decl) -> (o.outd_name, o.outd_loc)) tc.tcd_outputs);
  List.iter (fun (o : Ast.output_decl) -> check_object_decls env o.outd_objects) tc.tcd_outputs;
  let has kind = List.exists (fun (o : Ast.output_decl) -> o.outd_kind = kind) tc.tcd_outputs in
  if has Ast.Abort_outcome && has Ast.Mark then
    error env tc.tcd_loc
      "taskclass %s declares both an abort outcome (atomic) and a mark (atomic tasks cannot release early results)"
      tc.tcd_name

(* --- source resolution ---

   [scope] maps every task name visible at this point to its taskclass
   name. [self] is the instance being validated (for private repeat
   outcomes). [expect] is [Some (obj, class)] for dataflow sources and
   [None] for notifications. *)

type source_site = { scope : (string * string) list; self : string }

let output_carries env (out : Ast.output_decl) ~obj ~cls =
  List.exists
    (fun (od : Ast.object_decl) -> od.od_name = obj && subtype_of env od.od_class cls)
    out.outd_objects

let check_source env site ~expect ~task ~cond ~loc =
  match List.assoc_opt task site.scope with
  | None -> error env loc "unknown task %s in source" task
  | Some class_name -> (
    match find_taskclass env class_name with
    | None -> () (* unknown taskclass reported where the instance was declared *)
    | Some tc -> (
      let check_object_in objects ~where =
        match expect with
        | None -> ()
        | Some (obj, cls) -> (
          match List.find_opt (fun (od : Ast.object_decl) -> od.od_name = obj) objects with
          | None -> error env loc "task %s has no object %s in %s" task obj where
          | Some od ->
            if not (subtype_of env od.Ast.od_class cls) then
              error env loc "class mismatch: %s.%s is of class %s, expected %s (or a subclass)"
                task obj od.Ast.od_class cls)
      in
      match cond with
      | Ast.On_output oc -> (
        match Ast.find_output tc oc with
        | None -> error env loc "task %s (taskclass %s) has no output %s" task class_name oc
        | Some out ->
          if out.outd_kind = Ast.Repeat_outcome && task <> site.self then
            error env loc
              "repeat outcome %s of task %s is private to that task and cannot be used here" oc task;
          check_object_in out.outd_objects ~where:("output " ^ oc))
      | Ast.On_input set -> (
        match Ast.find_input_set tc set with
        | None -> error env loc "task %s (taskclass %s) has no input set %s" task class_name set
        | Some isd -> check_object_in isd.isd_objects ~where:("input set " ^ set))
      | Ast.Any -> (
        match expect with
        | None -> ()
        | Some (obj, cls) ->
          let usable (out : Ast.output_decl) =
            out.outd_kind <> Ast.Repeat_outcome && output_carries env out ~obj ~cls
          in
          if not (List.exists usable tc.tcd_outputs) then
            error env loc "no output of task %s carries an object %s of class %s" task obj cls)))

let check_notif_sources env site sources ~loc =
  if sources = [] then error env loc "notification dependency with no sources";
  List.iter
    (fun (ns : Ast.notif_source) ->
      check_source env site ~expect:None ~task:ns.ns_task ~cond:ns.ns_cond ~loc:ns.ns_loc)
    sources

let check_object_sources env site sources ~expect ~loc =
  if sources = [] then error env loc "input object dependency with no sources";
  List.iter
    (fun (os : Ast.object_source) ->
      check_source env site
        ~expect:(Some (os.Ast.os_object, snd (Option.get expect)))
        ~task:os.os_task ~cond:os.os_cond ~loc:os.os_loc)
    sources

(* --- recovery clauses --- *)

let check_recovery env site ~impl ~recovery ~self_loc:_ =
  let count_kind pred = List.length (List.filter pred recovery) in
  let dup_check ~what pred =
    if count_kind pred > 1 then
      let clause = List.find pred recovery in
      error env (Ast.recovery_clause_loc clause) "duplicate %s clause in recovery section" what
  in
  dup_check ~what:"retry" (function Ast.R_retry _ -> true | _ -> false);
  dup_check ~what:"timeout" (function Ast.R_timeout _ -> true | _ -> false);
  dup_check ~what:"compensate" (function Ast.R_compensate _ -> true | _ -> false);
  let has_alternatives = Ast.recovery_alternatives recovery <> [] in
  let check_clause = function
    | Ast.R_retry { count; backoff; jitter; max; loc } ->
      if count = 0 && backoff <> None then
        error env loc "retry 0 cannot take a backoff (there is no retry to delay)";
      (match (backoff, max) with
      | None, Some _ -> error env loc "max requires a backoff base"
      | Some b, Some m when m < b ->
        error env loc "backoff cap %d is below the base delay %d" m b
      | _ -> ());
      (match (backoff, jitter) with
      | None, Some _ -> error env loc "jitter requires a backoff base"
      | Some b, Some j when j >= b ->
        error env loc
          "jitter %d must be below the backoff base %d (the jitter spreads a delay, it must \
           not dominate it)" j b
      | _ -> ())
    | Ast.R_timeout { ms; action; loc } -> (
      (if action = Ast.Ta_alternative && not has_alternatives then
         error env loc "timeout ... then alternative requires an alternative clause");
      (match List.assoc_opt "duration" impl with
      | Some dur -> (
        match int_of_string_opt dur with
        | Some d when ms < d ->
          error env loc "timeout %dms is shorter than the declared duration %dms" ms d
        | _ -> ())
      | None -> ());
      match action with
      | Ast.Ta_substitute "" -> error env loc "substitute requires a non-empty implementation code"
      | _ -> ())
    | Ast.R_alternative { codes; loc } ->
      if List.exists (fun c -> c = "") codes then
        error env loc "alternative implementation codes must be non-empty"
    | Ast.R_compensate { task; loc } ->
      if task = site.self then error env loc "task %s cannot compensate itself" task
      else if List.assoc_opt task site.scope = None then
        error env loc "compensate names undeclared task %s" task
  in
  List.iter check_clause recovery

(* --- instance input sets --- *)

let check_input_sets env site ~class_name ~inputs ~loc =
  match find_taskclass env class_name with
  | None -> error env loc "unknown taskclass %s" class_name
  | Some tc ->
    check_named_duplicates env ~what:"input set specification"
      (List.map (fun (iss : Ast.input_set_spec) -> (iss.iss_name, iss.iss_loc)) inputs);
    let check_set (iss : Ast.input_set_spec) =
      match Ast.find_input_set tc iss.iss_name with
      | None ->
        error env iss.iss_loc "taskclass %s declares no input set %s" class_name iss.iss_name
      | Some isd ->
        let object_deps =
          List.filter_map
            (function
              | Ast.Dep_object { d_name; d_sources; d_loc } -> Some (d_name, d_sources, d_loc)
              | Ast.Dep_notification _ -> None)
            iss.iss_deps
        in
        check_named_duplicates env ~what:"input object specification"
          (List.map (fun (n, _, l) -> (n, l)) object_deps);
        (* every specified object must be declared by the class *)
        let check_declared (name, _, dep_loc) =
          if not (List.exists (fun (od : Ast.object_decl) -> od.od_name = name) isd.isd_objects)
          then
            error env dep_loc "input set %s of taskclass %s declares no object %s" iss.iss_name
              class_name name
        in
        List.iter check_declared object_deps;
        (* unsourced declared objects must come from outside (root tasks) *)
        let unsourced (od : Ast.object_decl) =
          not (List.exists (fun (n, _, _) -> n = od.od_name) object_deps)
        in
        List.iter
          (fun od ->
            if unsourced od then
              warning env iss.iss_loc
                "input object %s.%s has no sources; it must be supplied externally" iss.iss_name
                od.Ast.od_name)
          isd.isd_objects;
        (* resolve every source *)
        let check_dep = function
          | Ast.Dep_notification sources -> check_notif_sources env site sources ~loc:iss.iss_loc
          | Ast.Dep_object { d_name; d_sources; d_loc } -> (
            match List.find_opt (fun (od : Ast.object_decl) -> od.od_name = d_name) isd.isd_objects with
            | None -> () (* undeclared object reported above *)
            | Some od ->
              check_object_sources env site d_sources
                ~expect:(Some (d_name, od.Ast.od_class))
                ~loc:d_loc)
        in
        List.iter check_dep iss.iss_deps
    in
    List.iter check_set inputs

(* --- compound outputs --- *)

let check_output_bindings env site ~class_name ~bindings =
  match find_taskclass env class_name with
  | None -> ()
  | Some tc ->
    check_named_duplicates env ~what:"output binding"
      (List.map (fun (ob : Ast.output_binding) -> (ob.ob_name, ob.ob_loc)) bindings);
    let check_binding (ob : Ast.output_binding) =
      match Ast.find_output tc ob.ob_name with
      | None ->
        error env ob.ob_loc "taskclass %s declares no output %s" class_name ob.ob_name
      | Some out ->
        if out.outd_kind <> ob.ob_kind then
          error env ob.ob_loc "output %s is declared as %s but bound as %s" ob.ob_name
            (Ast.output_kind_to_string out.outd_kind)
            (Ast.output_kind_to_string ob.ob_kind);
        let bound_objects =
          List.filter_map
            (function
              | Ast.Out_object { o_name; o_sources; o_loc } -> Some (o_name, o_sources, o_loc)
              | Ast.Out_notification _ -> None)
            ob.ob_deps
        in
        check_named_duplicates env ~what:"output object binding"
          (List.map (fun (n, _, l) -> (n, l)) bound_objects);
        let check_declared (name, _, dep_loc) =
          if not (List.exists (fun (od : Ast.object_decl) -> od.od_name = name) out.outd_objects)
          then error env dep_loc "output %s declares no object %s" ob.ob_name name
        in
        List.iter check_declared bound_objects;
        List.iter
          (fun (od : Ast.object_decl) ->
            if not (List.exists (fun (n, _, _) -> n = od.od_name) bound_objects) then
              error env ob.ob_loc "output object %s.%s of the compound task has no sources"
                ob.ob_name od.Ast.od_name)
          out.outd_objects;
        let check_dep = function
          | Ast.Out_notification sources -> check_notif_sources env site sources ~loc:ob.ob_loc
          | Ast.Out_object { o_name; o_sources; o_loc } -> (
            match List.find_opt (fun (od : Ast.object_decl) -> od.od_name = o_name) out.outd_objects with
            | None -> ()
            | Some od ->
              check_object_sources env site o_sources
                ~expect:(Some (o_name, od.Ast.od_class))
                ~loc:o_loc)
        in
        List.iter check_dep ob.ob_deps
    in
    List.iter check_binding bindings;
    (* outcomes never produced are suspicious but legal *)
    List.iter
      (fun (out : Ast.output_decl) ->
        if
          out.outd_kind <> Ast.Repeat_outcome
          && not (List.exists (fun (ob : Ast.output_binding) -> ob.ob_name = out.outd_name) bindings)
        then
          warning env out.outd_loc "compound task never produces declared output %s" out.outd_name)
      tc.tcd_outputs

(* every constituent name referenced by some sibling dependency or some
   output binding of the compound *)
let referenced_constituents (cd : Ast.compound_decl) =
  let from_sources sources = List.map (fun (os : Ast.object_source) -> os.os_task) sources in
  let from_notifs sources = List.map (fun (ns : Ast.notif_source) -> ns.ns_task) sources in
  let from_inputs inputs =
    List.concat_map
      (fun (iss : Ast.input_set_spec) ->
        List.concat_map
          (function
            | Ast.Dep_notification l -> from_notifs l
            | Ast.Dep_object { d_sources; _ } -> from_sources d_sources)
          iss.iss_deps)
      inputs
  in
  (* a compensation target counts as referenced: the compensating task
     is typically fed by nobody and fired only through the policy *)
  let from_constituent = function
    | Ast.C_task td ->
      Option.to_list (Ast.recovery_compensate td.Ast.td_recovery) @ from_inputs td.Ast.td_inputs
    | Ast.C_compound inner ->
      Option.to_list (Ast.recovery_compensate inner.Ast.cd_recovery)
      @ from_inputs inner.Ast.cd_inputs
    | Ast.C_template_inst _ -> []
  in
  let from_bindings =
    List.concat_map
      (fun (ob : Ast.output_binding) ->
        List.concat_map
          (function
            | Ast.Out_notification l -> from_notifs l
            | Ast.Out_object { o_sources; _ } -> from_sources o_sources)
          ob.Ast.ob_deps)
      cd.cd_outputs
  in
  List.concat (from_bindings :: List.map from_constituent cd.cd_constituents)

(* --- dependency cycles among constituents (static, all alternatives) --- *)

let constituent_edges (cs : Ast.constituent list) =
  let names = List.map Ast.constituent_name cs in
  let deps_of_inputs inputs =
    let of_dep = function
      | Ast.Dep_notification sources -> List.map (fun (ns : Ast.notif_source) -> ns.ns_task) sources
      | Ast.Dep_object { d_sources; _ } ->
        List.map (fun (os : Ast.object_source) -> os.os_task) d_sources
    in
    List.concat_map (fun (iss : Ast.input_set_spec) -> List.concat_map of_dep iss.iss_deps) inputs
  in
  let edge_targets = function
    | Ast.C_task td -> deps_of_inputs td.Ast.td_inputs
    | Ast.C_compound cd -> deps_of_inputs cd.Ast.cd_inputs
    | Ast.C_template_inst _ -> []
  in
  List.map
    (fun c ->
      let name = Ast.constituent_name c in
      let targets = List.filter (fun t -> t <> name && List.mem t names) (edge_targets c) in
      (name, List.sort_uniq String.compare targets))
    cs

let find_cycle edges =
  let color = Hashtbl.create 16 in
  let rec visit name path =
    match Hashtbl.find_opt color name with
    | Some `Done -> None
    | Some `Active -> Some (name :: path)
    | None ->
      Hashtbl.replace color name `Active;
      let targets = try List.assoc name edges with Not_found -> [] in
      let result =
        List.fold_left
          (fun acc t -> match acc with Some _ -> acc | None -> visit t (name :: path))
          None targets
      in
      Hashtbl.replace color name `Done;
      result
  in
  List.fold_left
    (fun acc (name, _) -> match acc with Some _ -> acc | None -> visit name [])
    None edges

(* --- instances --- *)

let rec check_task env ~scope (td : Ast.task_decl) =
  let site = { scope; self = td.td_name } in
  check_recovery env site ~impl:td.td_impl ~recovery:td.td_recovery ~self_loc:td.td_loc;
  check_input_sets env site ~class_name:td.td_class ~inputs:td.td_inputs ~loc:td.td_loc

and check_compound env ~scope (cd : Ast.compound_decl) =
  let site = { scope; self = cd.cd_name } in
  check_recovery env site ~impl:cd.cd_impl ~recovery:cd.cd_recovery ~self_loc:cd.cd_loc;
  check_input_sets env site ~class_name:cd.cd_class ~inputs:cd.cd_inputs ~loc:cd.cd_loc;
  check_named_duplicates env ~what:"constituent task"
    (List.map (fun c -> (Ast.constituent_name c, Ast.constituent_loc c)) cd.cd_constituents);
  let class_of = function
    | Ast.C_task td -> td.Ast.td_class
    | Ast.C_compound inner -> inner.Ast.cd_class
    | Ast.C_template_inst _ -> "?"
  in
  let inner_scope =
    (cd.cd_name, cd.cd_class)
    :: List.map (fun c -> (Ast.constituent_name c, class_of c)) cd.cd_constituents
  in
  let check_constituent = function
    | Ast.C_task td -> check_task env ~scope:inner_scope td
    | Ast.C_compound inner -> check_compound env ~scope:inner_scope inner
    | Ast.C_template_inst ti ->
      error env ti.Ast.ti_loc "unexpanded template instantiation %s (run template expansion first)"
        ti.Ast.ti_name
  in
  List.iter check_constituent cd.cd_constituents;
  let out_site = { scope = inner_scope; self = cd.cd_name } in
  check_output_bindings env out_site ~class_name:cd.cd_class ~bindings:cd.cd_outputs;
  (* lint: a constituent nobody consumes and no binding references is
     dead weight — it runs (or waits) but cannot influence any outcome *)
  let referenced = referenced_constituents cd in
  List.iter
    (fun c ->
      let name = Ast.constituent_name c in
      if not (List.mem name referenced) then
        warning env (Ast.constituent_loc c)
          "constituent %s of %s is never referenced by any dependency or output binding" name
          cd.cd_name)
    cd.cd_constituents;
  match find_cycle (constituent_edges cd.cd_constituents) with
  | Some (name :: _ as cycle) ->
    warning env cd.cd_loc
      "static dependency cycle among constituents of %s: %s (alternative sources may still break it at run time)"
      cd.cd_name
      (String.concat " -> " (List.rev (name :: List.tl cycle)))
  | Some [] | None -> ()

let check script =
  let env =
    {
      classes = Ast.classes script;
      parents = Ast.class_parents script;
      taskclasses =
        List.map (fun (tc : Ast.taskclass_decl) -> (tc.tcd_name, tc)) (Ast.taskclasses script);
      rev_issues = [];
    }
  in
  check_class_hierarchy env;
  (* namespace duplicates *)
  let names_of pred = List.filter_map pred script in
  check_named_duplicates env ~what:"class"
    (names_of (function
      | Ast.D_class { cls_name; cls_loc; _ } -> Some (cls_name, cls_loc)
      | _ -> None));
  check_named_duplicates env ~what:"taskclass"
    (names_of (function Ast.D_taskclass tc -> Some (tc.Ast.tcd_name, tc.Ast.tcd_loc) | _ -> None));
  check_named_duplicates env ~what:"task instance"
    (names_of (function
      | Ast.D_task td -> Some (td.Ast.td_name, td.Ast.td_loc)
      | Ast.D_compound cd -> Some (cd.Ast.cd_name, cd.Ast.cd_loc)
      | Ast.D_template_inst ti -> Some (ti.Ast.ti_name, ti.Ast.ti_loc)
      | _ -> None));
  List.iter (fun (_, tc) -> check_taskclass env tc) env.taskclasses;
  let top_scope =
    List.filter_map
      (function
        | Ast.D_task td -> Some (td.Ast.td_name, td.Ast.td_class)
        | Ast.D_compound cd -> Some (cd.Ast.cd_name, cd.Ast.cd_class)
        | _ -> None)
      script
  in
  let check_decl = function
    | Ast.D_class { cls_name = _; _ } | Ast.D_taskclass _ | Ast.D_template _ -> ()
    | Ast.D_task td -> check_task env ~scope:top_scope td
    | Ast.D_compound cd -> check_compound env ~scope:top_scope cd
    | Ast.D_template_inst ti ->
      error env ti.Ast.ti_loc "unexpanded template instantiation %s (run template expansion first)"
        ti.Ast.ti_name
  in
  List.iter check_decl script;
  List.rev env.rev_issues

let errors_only issues = List.filter (fun i -> i.severity = Error) issues

let ok script =
  match errors_only (check script) with [] -> Ok () | issues -> Error issues

let pp_issue ppf { severity; msg; loc } =
  let tag = match severity with Error -> "error" | Warning -> "warning" in
  Format.fprintf ppf "%s: %s (%a)" tag msg Loc.pp loc
