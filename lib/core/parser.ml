exception Error of string * Loc.t

type state = { toks : (Token.t * Loc.t) array; mutable pos : int }

let current st = fst st.toks.(st.pos)

let current_loc st = snd st.toks.(st.pos)

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail st msg = raise (Error (msg, current_loc st))

let expect st tok =
  if current st = tok then advance st
  else fail st (Printf.sprintf "expected %s, found %s" (Token.to_string tok) (Token.to_string (current st)))

let ident st =
  match current st with
  | Token.Ident name ->
    advance st;
    name
  | other -> fail st (Printf.sprintf "expected an identifier, found %s" (Token.to_string other))

let string_lit st =
  match current st with
  | Token.String s ->
    advance st;
    s
  | other -> fail st (Printf.sprintf "expected a string literal, found %s" (Token.to_string other))

let int_lit st =
  match current st with
  | Token.Int n ->
    advance st;
    n
  | other -> fail st (Printf.sprintf "expected a number, found %s" (Token.to_string other))

let skip_semis st =
  while current st = Token.Semi do
    advance st
  done

(* [items st parse stop]: parse [parse st] repeatedly, skipping optional
   semicolons, until the [stop] token is current. *)
let items st parse stop =
  let rec loop acc =
    skip_semis st;
    if current st = stop then List.rev acc else loop (parse st :: acc)
  in
  loop []

let braced st parse =
  expect st Token.Lbrace;
  let contents = parse st in
  expect st Token.Rbrace;
  contents

let braced_items st parse = braced st (fun st -> items st parse Token.Rbrace)

(* --- small pieces --- *)

let object_decl st =
  let od_loc = current_loc st in
  let od_name = ident st in
  expect st Token.Kw_of;
  expect st Token.Kw_class;
  let od_class = ident st in
  { Ast.od_name; od_class; od_loc }

let source_cond st =
  if current st = Token.Kw_if then begin
    advance st;
    match current st with
    | Token.Kw_output ->
      advance st;
      Ast.On_output (ident st)
    | Token.Kw_input ->
      advance st;
      Ast.On_input (ident st)
    | other ->
      fail st (Printf.sprintf "expected 'output' or 'input' after 'if', found %s" (Token.to_string other))
  end
  else Ast.Any

let notif_source st =
  let ns_loc = current_loc st in
  expect st Token.Kw_task;
  let ns_task = ident st in
  let ns_cond = source_cond st in
  { Ast.ns_task; ns_cond; ns_loc }

let object_source st =
  let os_loc = current_loc st in
  let os_object = ident st in
  expect st Token.Kw_of;
  expect st Token.Kw_task;
  let os_task = ident st in
  let os_cond = source_cond st in
  { Ast.os_object; os_task; os_cond; os_loc }

let input_dep st =
  match current st with
  | Token.Kw_notification ->
    advance st;
    expect st Token.Kw_from;
    Ast.Dep_notification (braced_items st notif_source)
  | Token.Kw_inputobject ->
    advance st;
    let d_loc = current_loc st in
    let d_name = ident st in
    expect st Token.Kw_from;
    let d_sources = braced_items st object_source in
    Ast.Dep_object { d_name; d_sources; d_loc }
  | other ->
    fail st
      (Printf.sprintf "expected 'notification' or 'inputobject', found %s" (Token.to_string other))

let input_set_spec st =
  expect st Token.Kw_input;
  let iss_loc = current_loc st in
  let iss_name = ident st in
  let iss_deps = braced_items st input_dep in
  { Ast.iss_name; iss_deps; iss_loc }

let implementation_kv st =
  let key = string_lit st in
  expect st Token.Kw_is;
  let value = string_lit st in
  (key, value)

let implementation_block st =
  expect st Token.Kw_implementation;
  expect st Token.Lbrace;
  let rec loop acc =
    skip_semis st;
    if current st = Token.Rbrace then List.rev acc
    else begin
      let kv = implementation_kv st in
      if current st = Token.Comma then advance st;
      loop (kv :: acc)
    end
  in
  let kvs = loop [] in
  expect st Token.Rbrace;
  kvs

let inputs_block st =
  expect st Token.Kw_inputs;
  braced_items st input_set_spec

(* Recovery clauses use contextual keywords: 'retry', 'timeout', etc.
   stay ordinary identifiers elsewhere (the paper's scripts use both as
   names), and are only given meaning inside a recovery { ... } block. *)
let recovery_clause st =
  let loc = current_loc st in
  match current st with
  | Token.Ident "retry" ->
    advance st;
    let count = int_lit st in
    let backoff =
      if current st = Token.Ident "backoff" then begin
        advance st;
        Some (int_lit st)
      end
      else None
    in
    let jitter =
      if current st = Token.Ident "jitter" then begin
        advance st;
        Some (int_lit st)
      end
      else None
    in
    let max =
      if current st = Token.Ident "max" then begin
        advance st;
        Some (int_lit st)
      end
      else None
    in
    Ast.R_retry { count; backoff; jitter; max; loc }
  | Token.Ident "timeout" ->
    advance st;
    let ms = int_lit st in
    if current st = Token.Ident "then" then advance st
    else fail st (Printf.sprintf "expected 'then' after the timeout, found %s" (Token.to_string (current st)));
    let action =
      match current st with
      | Token.Ident "alternative" ->
        advance st;
        Ast.Ta_alternative
      | Token.Ident "substitute" ->
        advance st;
        Ast.Ta_substitute (string_lit st)
      | Token.Kw_abort ->
        advance st;
        Ast.Ta_abort
      | other ->
        fail st
          (Printf.sprintf "expected 'alternative', 'substitute' or 'abort' after 'then', found %s"
             (Token.to_string other))
    in
    Ast.R_timeout { ms; action; loc }
  | Token.Ident "alternative" ->
    advance st;
    let rec codes acc =
      let c = string_lit st in
      if current st = Token.Comma then begin
        advance st;
        codes (c :: acc)
      end
      else List.rev (c :: acc)
    in
    Ast.R_alternative { codes = codes []; loc }
  | Token.Ident "compensate" ->
    advance st;
    let task = ident st in
    Ast.R_compensate { task; loc }
  | other ->
    fail st
      (Printf.sprintf
         "expected a recovery clause (retry / timeout / alternative / compensate), found %s"
         (Token.to_string other))

let recovery_block st =
  expect st Token.Kw_recovery;
  braced_items st recovery_clause

let output_kind st =
  match current st with
  | Token.Kw_outcome ->
    advance st;
    Ast.Outcome
  | Token.Kw_abort ->
    advance st;
    expect st Token.Kw_outcome;
    Ast.Abort_outcome
  | Token.Kw_repeat ->
    advance st;
    expect st Token.Kw_outcome;
    Ast.Repeat_outcome
  | Token.Kw_mark ->
    advance st;
    Ast.Mark
  | other ->
    fail st
      (Printf.sprintf "expected 'outcome', 'abort outcome', 'repeat outcome' or 'mark', found %s"
         (Token.to_string other))

(* --- taskclass --- *)

let input_set_decl st =
  expect st Token.Kw_input;
  let isd_loc = current_loc st in
  let isd_name = ident st in
  let isd_objects = braced_items st object_decl in
  { Ast.isd_name; isd_objects; isd_loc }

let output_decl st =
  let outd_loc = current_loc st in
  let outd_kind = output_kind st in
  let outd_name = ident st in
  let outd_objects = braced_items st object_decl in
  { Ast.outd_kind; outd_name; outd_objects; outd_loc }

let taskclass_decl st =
  expect st Token.Kw_taskclass;
  let tcd_loc = current_loc st in
  let tcd_name = ident st in
  expect st Token.Lbrace;
  skip_semis st;
  let tcd_input_sets =
    if current st = Token.Kw_inputs then begin
      advance st;
      braced_items st input_set_decl
    end
    else []
  in
  skip_semis st;
  let tcd_outputs =
    if current st = Token.Kw_outputs then begin
      advance st;
      braced_items st output_decl
    end
    else []
  in
  skip_semis st;
  expect st Token.Rbrace;
  { Ast.tcd_name; tcd_input_sets; tcd_outputs; tcd_loc }

(* --- task / compound / template --- *)

let output_dep st =
  match current st with
  | Token.Kw_notification ->
    advance st;
    expect st Token.Kw_from;
    Ast.Out_notification (braced_items st notif_source)
  | Token.Kw_outputobject ->
    advance st;
    let o_loc = current_loc st in
    let o_name = ident st in
    expect st Token.Kw_from;
    let o_sources = braced_items st object_source in
    Ast.Out_object { o_name; o_sources; o_loc }
  | other ->
    fail st
      (Printf.sprintf "expected 'notification' or 'outputobject', found %s" (Token.to_string other))

let output_binding st =
  let ob_loc = current_loc st in
  let ob_kind = output_kind st in
  let ob_name = ident st in
  let ob_deps = braced_items st output_dep in
  { Ast.ob_kind; ob_name; ob_deps; ob_loc }

let template_inst ~name ~loc st =
  (* 'name of tasktemplate' already consumed up to the template keyword *)
  expect st Token.Kw_tasktemplate;
  let ti_template = ident st in
  expect st Token.Lparen;
  let rec args acc =
    match current st with
    | Token.Rparen -> List.rev acc
    | Token.Comma ->
      advance st;
      args acc
    | _ -> args (ident st :: acc)
  in
  let ti_args = args [] in
  expect st Token.Rparen;
  { Ast.ti_name = name; ti_template; ti_args; ti_loc = loc }

let rec task_decl st =
  expect st Token.Kw_task;
  let td_loc = current_loc st in
  let td_name = ident st in
  expect st Token.Kw_of;
  expect st Token.Kw_taskclass;
  let td_class = ident st in
  expect st Token.Lbrace;
  skip_semis st;
  let td_impl = if current st = Token.Kw_implementation then implementation_block st else [] in
  skip_semis st;
  let td_recovery = if current st = Token.Kw_recovery then recovery_block st else [] in
  skip_semis st;
  let td_inputs = if current st = Token.Kw_inputs then inputs_block st else [] in
  skip_semis st;
  expect st Token.Rbrace;
  { Ast.td_name; td_class; td_impl; td_recovery; td_inputs; td_loc }

and compound_decl st =
  expect st Token.Kw_compoundtask;
  let cd_loc = current_loc st in
  let cd_name = ident st in
  expect st Token.Kw_of;
  expect st Token.Kw_taskclass;
  let cd_class = ident st in
  expect st Token.Lbrace;
  let impl = ref [] in
  let recovery = ref [] in
  let inputs = ref [] in
  let constituents = ref [] in
  let outputs = ref [] in
  let rec sections () =
    skip_semis st;
    match current st with
    | Token.Rbrace -> ()
    | Token.Kw_implementation ->
      impl := implementation_block st;
      sections ()
    | Token.Kw_recovery ->
      recovery := recovery_block st;
      sections ()
    | Token.Kw_inputs ->
      inputs := inputs_block st;
      sections ()
    | Token.Kw_outputs ->
      advance st;
      outputs := braced_items st output_binding;
      sections ()
    | Token.Kw_task ->
      constituents := Ast.C_task (task_decl st) :: !constituents;
      sections ()
    | Token.Kw_compoundtask ->
      constituents := Ast.C_compound (compound_decl st) :: !constituents;
      sections ()
    | Token.Ident name ->
      let loc = current_loc st in
      advance st;
      expect st Token.Kw_of;
      constituents := Ast.C_template_inst (template_inst ~name ~loc st) :: !constituents;
      sections ()
    | other ->
      fail st
        (Printf.sprintf
           "expected a section (implementation / recovery / inputs / task / compoundtask / \
            outputs), found %s"
           (Token.to_string other))
  in
  sections ();
  expect st Token.Rbrace;
  {
    Ast.cd_name;
    cd_class;
    cd_impl = !impl;
    cd_recovery = !recovery;
    cd_inputs = !inputs;
    cd_constituents = List.rev !constituents;
    cd_outputs = !outputs;
    cd_loc;
  }

let template_decl st =
  expect st Token.Kw_tasktemplate;
  let tpl_loc = current_loc st in
  let kind =
    match current st with
    | Token.Kw_task -> `Task
    | Token.Kw_compoundtask -> `Compound
    | other ->
      fail st
        (Printf.sprintf "expected 'task' or 'compoundtask' after 'tasktemplate', found %s"
           (Token.to_string other))
  in
  (* Re-parse the body with the task/compound parser, but capture the
     parameters block that may appear right after the opening brace. We
     do this by parsing the header manually, then the parameters, then
     delegating to the shared body logic via a synthetic re-entry. *)
  advance st;
  let name = ident st in
  expect st Token.Kw_of;
  expect st Token.Kw_taskclass;
  let klass = ident st in
  expect st Token.Lbrace;
  skip_semis st;
  let params =
    if current st = Token.Kw_parameters then begin
      advance st;
      braced_items st ident
    end
    else []
  in
  skip_semis st;
  match kind with
  | `Task ->
    let td_impl = if current st = Token.Kw_implementation then implementation_block st else [] in
    skip_semis st;
    let td_recovery = if current st = Token.Kw_recovery then recovery_block st else [] in
    skip_semis st;
    let td_inputs = if current st = Token.Kw_inputs then inputs_block st else [] in
    skip_semis st;
    expect st Token.Rbrace;
    let body =
      Ast.T_task
        { td_name = name; td_class = klass; td_impl; td_recovery; td_inputs; td_loc = tpl_loc }
    in
    { Ast.tpl_name = name; tpl_params = params; tpl_body = body; tpl_loc }
  | `Compound ->
    let impl = ref [] in
    let recovery = ref [] in
    let inputs = ref [] in
    let constituents = ref [] in
    let outputs = ref [] in
    let rec sections () =
      skip_semis st;
      match current st with
      | Token.Rbrace -> ()
      | Token.Kw_implementation ->
        impl := implementation_block st;
        sections ()
      | Token.Kw_recovery ->
        recovery := recovery_block st;
        sections ()
      | Token.Kw_inputs ->
        inputs := inputs_block st;
        sections ()
      | Token.Kw_outputs ->
        advance st;
        outputs := braced_items st output_binding;
        sections ()
      | Token.Kw_task ->
        constituents := Ast.C_task (task_decl st) :: !constituents;
        sections ()
      | Token.Kw_compoundtask ->
        constituents := Ast.C_compound (compound_decl st) :: !constituents;
        sections ()
      | Token.Ident cname ->
        let loc = current_loc st in
        advance st;
        expect st Token.Kw_of;
        constituents := Ast.C_template_inst (template_inst ~name:cname ~loc st) :: !constituents;
        sections ()
      | other -> fail st (Printf.sprintf "unexpected %s in template body" (Token.to_string other))
    in
    sections ();
    expect st Token.Rbrace;
    let body =
      Ast.T_compound
        {
          cd_name = name;
          cd_class = klass;
          cd_impl = !impl;
          cd_recovery = !recovery;
          cd_inputs = !inputs;
          cd_constituents = List.rev !constituents;
          cd_outputs = !outputs;
          cd_loc = tpl_loc;
        }
    in
    { Ast.tpl_name = name; tpl_params = params; tpl_body = body; tpl_loc }

let class_decl st =
  expect st Token.Kw_class;
  let cls_loc = current_loc st in
  let cls_name = ident st in
  let cls_parent =
    if current st = Token.Kw_extends then begin
      advance st;
      Some (ident st)
    end
    else None
  in
  Ast.D_class { cls_name; cls_parent; cls_loc }

let decl st =
  match current st with
  | Token.Kw_class -> class_decl st
  | Token.Kw_taskclass -> Ast.D_taskclass (taskclass_decl st)
  | Token.Kw_task -> Ast.D_task (task_decl st)
  | Token.Kw_compoundtask -> Ast.D_compound (compound_decl st)
  | Token.Kw_tasktemplate -> Ast.D_template (template_decl st)
  | Token.Ident name ->
    let loc = current_loc st in
    advance st;
    expect st Token.Kw_of;
    Ast.D_template_inst (template_inst ~name ~loc st)
  | other -> fail st (Printf.sprintf "expected a declaration, found %s" (Token.to_string other))

let script input =
  let toks = Array.of_list (Lexer.tokens input) in
  let st = { toks; pos = 0 } in
  let decls = items st decl Token.Eof in
  expect st Token.Eof;
  decls

let script_result input =
  match script input with
  | decls -> Ok decls
  | exception Error (msg, loc) -> Error (msg, loc)
  | exception Lexer.Error (msg, loc) -> Error (msg, loc)
