exception Expand_error of string * Loc.t

let subst_name env name = match List.assoc_opt name env with Some arg -> arg | None -> name

let subst_cond _env cond = cond

let subst_object_source env (os : Ast.object_source) =
  { os with Ast.os_task = subst_name env os.os_task; os_cond = subst_cond env os.os_cond }

let subst_notif_source env (ns : Ast.notif_source) =
  { ns with Ast.ns_task = subst_name env ns.ns_task; ns_cond = subst_cond env ns.ns_cond }

let subst_input_dep env = function
  | Ast.Dep_notification sources -> Ast.Dep_notification (List.map (subst_notif_source env) sources)
  | Ast.Dep_object { d_name; d_sources; d_loc } ->
    Ast.Dep_object { d_name; d_sources = List.map (subst_object_source env) d_sources; d_loc }

let subst_input_set env (iss : Ast.input_set_spec) =
  { iss with Ast.iss_deps = List.map (subst_input_dep env) iss.iss_deps }

let subst_output_dep env = function
  | Ast.Out_notification sources -> Ast.Out_notification (List.map (subst_notif_source env) sources)
  | Ast.Out_object { o_name; o_sources; o_loc } ->
    Ast.Out_object { o_name; o_sources = List.map (subst_object_source env) o_sources; o_loc }

let subst_output_binding env (ob : Ast.output_binding) =
  { ob with Ast.ob_deps = List.map (subst_output_dep env) ob.ob_deps }

let subst_recovery_clause env = function
  | Ast.R_compensate { task; loc } -> Ast.R_compensate { task = subst_name env task; loc }
  | (Ast.R_retry _ | Ast.R_timeout _ | Ast.R_alternative _) as clause -> clause

let subst_recovery env rc = List.map (subst_recovery_clause env) rc

let rec subst_task env (td : Ast.task_decl) =
  {
    td with
    Ast.td_recovery = subst_recovery env td.td_recovery;
    td_inputs = List.map (subst_input_set env) td.td_inputs;
  }

and subst_compound env (cd : Ast.compound_decl) =
  {
    cd with
    Ast.cd_recovery = subst_recovery env cd.cd_recovery;
    cd_inputs = List.map (subst_input_set env) cd.cd_inputs;
    cd_constituents = List.map (subst_constituent env) cd.cd_constituents;
    cd_outputs = List.map (subst_output_binding env) cd.cd_outputs;
  }

and subst_constituent env = function
  | Ast.C_task td -> Ast.C_task (subst_task env td)
  | Ast.C_compound cd -> Ast.C_compound (subst_compound env cd)
  | Ast.C_template_inst ti ->
    Ast.C_template_inst { ti with Ast.ti_args = List.map (subst_name env) ti.ti_args }

let check_params (tpl : Ast.template_decl) =
  let rec dup = function
    | [] -> None
    | p :: rest -> if List.mem p rest then Some p else dup rest
  in
  match dup tpl.tpl_params with
  | Some p ->
    raise (Expand_error (Printf.sprintf "duplicate template parameter %s" p, tpl.tpl_loc))
  | None -> ()

let instantiate templates (ti : Ast.template_inst) =
  match List.assoc_opt ti.ti_template templates with
  | None -> raise (Expand_error ("unknown task template " ^ ti.ti_template, ti.ti_loc))
  | Some (tpl : Ast.template_decl) ->
    if List.length tpl.tpl_params <> List.length ti.ti_args then
      raise
        (Expand_error
           ( Printf.sprintf "template %s expects %d argument(s), got %d" ti.ti_template
               (List.length tpl.tpl_params) (List.length ti.ti_args),
             ti.ti_loc ));
    let env = List.combine tpl.tpl_params ti.ti_args in
    let reject_nested loc = raise (Expand_error ("template bodies may not instantiate templates", loc)) in
    (match tpl.tpl_body with
    | Ast.T_task td ->
      Ast.C_task { (subst_task env td) with Ast.td_name = ti.ti_name; td_loc = ti.ti_loc }
    | Ast.T_compound cd ->
      let expanded = subst_compound env cd in
      List.iter
        (function Ast.C_template_inst t -> reject_nested t.Ast.ti_loc | _ -> ())
        expanded.Ast.cd_constituents;
      Ast.C_compound { expanded with Ast.cd_name = ti.ti_name; cd_loc = ti.ti_loc })

let rec expand_constituent templates = function
  | Ast.C_task td -> Ast.C_task td
  | Ast.C_compound cd -> Ast.C_compound (expand_compound templates cd)
  | Ast.C_template_inst ti -> (
    match instantiate templates ti with
    | Ast.C_compound cd -> Ast.C_compound (expand_compound templates cd)
    | other -> other)

and expand_compound templates (cd : Ast.compound_decl) =
  { cd with Ast.cd_constituents = List.map (expand_constituent templates) cd.cd_constituents }

let expand script =
  let templates =
    List.filter_map (function Ast.D_template tpl -> Some (tpl.Ast.tpl_name, tpl) | _ -> None) script
  in
  match
    List.iter (fun (_, tpl) -> check_params tpl) templates;
    List.filter_map
      (function
        | Ast.D_template _ -> None
        | Ast.D_template_inst ti -> (
          match expand_constituent templates (Ast.C_template_inst ti) with
          | Ast.C_task td -> Some (Ast.D_task td)
          | Ast.C_compound cd -> Some (Ast.D_compound cd)
          | Ast.C_template_inst _ -> assert false)
        | Ast.D_compound cd -> Some (Ast.D_compound (expand_compound templates cd))
        | (Ast.D_class _ | Ast.D_taskclass _ | Ast.D_task _) as d -> Some d)
      script
  with
  | expanded -> Ok expanded
  | exception Expand_error (msg, loc) -> Error (msg, loc)
