exception Error of string * Loc.t

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let loc st = { Loc.line = st.line; col = st.col }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.input then Some st.input.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

(* The paper's PDF text uses curly quotes; map the UTF-8 sequences for
   U+201C/U+201D (and the ASCII quote) to a single string delimiter. *)
let smart_quote_len st =
  let s = st.input and i = st.pos in
  if i + 2 < String.length s && s.[i] = '\xe2' && s.[i + 1] = '\x80'
     && (s.[i + 2] = '\x9c' || s.[i + 2] = '\x9d')
  then Some 3
  else if i < String.length s && s.[i] = '"' then Some 1
  else None

let skip_quote st n =
  for _ = 1 to n do
    advance st
  done

let read_string st =
  let start = loc st in
  (match smart_quote_len st with
  | Some n -> skip_quote st n
  | None -> raise (Error ("expected string", start)));
  let buf = Buffer.create 16 in
  let rec consume () =
    match smart_quote_len st with
    | Some n -> skip_quote st n
    | None -> (
      match peek st with
      | None -> raise (Error ("unterminated string", start))
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        consume ())
  in
  consume ();
  (* implementation values in the paper carry stray spaces, e.g.
     “code ” — trim, they are never significant *)
  Token.String (String.trim (Buffer.contents buf))

let is_digit c = c >= '0' && c <= '9'

let read_number st at =
  let buf = Buffer.create 8 in
  let rec consume () =
    match peek st with
    | Some c when is_digit c ->
      Buffer.add_char buf c;
      advance st;
      consume ()
    | Some c when is_ident_start c ->
      raise (Error (Printf.sprintf "malformed number ending in %C" c, at))
    | Some _ | None -> ()
  in
  consume ();
  match int_of_string_opt (Buffer.contents buf) with
  | Some n -> Token.Int n
  | None -> raise (Error ("number out of range", at))

let read_ident st =
  let buf = Buffer.create 16 in
  let rec consume () =
    match peek st with
    | Some c when is_ident_char c ->
      Buffer.add_char buf c;
      advance st;
      consume ()
    | Some _ | None -> ()
  in
  consume ();
  Buffer.contents buf

let rec skip_block_comment st start depth =
  match (peek st, peek2 st) with
  | Some '*', Some '/' ->
    advance st;
    advance st;
    if depth > 1 then skip_block_comment st start (depth - 1)
  | Some '/', Some '*' ->
    advance st;
    advance st;
    skip_block_comment st start (depth + 1)
  | Some _, _ ->
    advance st;
    skip_block_comment st start depth
  | None, _ -> raise (Error ("unterminated comment", start))

let rec skip_line_comment st =
  match peek st with
  | Some '\n' | None -> ()
  | Some _ ->
    advance st;
    skip_line_comment st

let tokens input =
  let st = { input; pos = 0; line = 1; col = 1 } in
  let acc = ref [] in
  let emit tok at = acc := (tok, at) :: !acc in
  let rec scan () =
    let at = loc st in
    match peek st with
    | None -> emit Token.Eof at
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      scan ()
    | Some '/' when peek2 st = Some '/' ->
      skip_line_comment st;
      scan ()
    | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      skip_block_comment st at 1;
      scan ()
    | Some '{' ->
      advance st;
      emit Token.Lbrace at;
      scan ()
    | Some '}' ->
      advance st;
      emit Token.Rbrace at;
      scan ()
    | Some '(' ->
      advance st;
      emit Token.Lparen at;
      scan ()
    | Some ')' ->
      advance st;
      emit Token.Rparen at;
      scan ()
    | Some ';' ->
      advance st;
      emit Token.Semi at;
      scan ()
    | Some ',' ->
      advance st;
      emit Token.Comma at;
      scan ()
    | Some c when is_digit c ->
      emit (read_number st at) at;
      scan ()
    | Some c when is_ident_start c ->
      let word = read_ident st in
      let tok =
        match Token.keyword_of_string word with Some kw -> kw | None -> Token.Ident word
      in
      emit tok at;
      scan ()
    | Some _ -> (
      match smart_quote_len st with
      | Some _ ->
        emit (read_string st) at;
        scan ()
      | None -> raise (Error (Printf.sprintf "illegal character %C" input.[st.pos], at)))
  in
  scan ();
  List.rev !acc
