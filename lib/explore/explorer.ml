(* The exploration driver: reference run -> decision points -> targeted
   schedules -> oracle verdicts -> shrunk counterexamples.

   Schedules are derived from the decision points of a fault-free
   reference run instead of sweeping a blind time grid: a crash aimed
   one microsecond around a commit decision probes exactly the window a
   420-minute grid sweep mostly wastes. Budgets cap each generator so
   smoke runs stay CI-sized; caps spread over the candidate list rather
   than truncating it, so late decision points stay covered. *)

type budget = {
  b_offsets : Sim.time list;  (* fault instant = decision instant + offset *)
  b_down_for : Sim.time list;  (* crash durations *)
  b_heal_after : Sim.time list;  (* partition durations *)
  b_single_cap : int;
  b_pair_cap : int;
  b_partition_cap : int;
  b_combo_cap : int;
  b_soak : int;  (* random schedules on top of the targeted ones *)
  b_seed : int64;  (* soak RNG seed; split per schedule *)
  b_shrink_runs : int;  (* minimizer budget per failure *)
}

let default_budget =
  {
    b_offsets = [ 0; 1 ];
    b_down_for = [ Sim.ms 10; Sim.ms 40 ];
    b_heal_after = [ Sim.ms 30; Sim.ms 120 ];
    b_single_cap = 120;
    b_pair_cap = 48;
    b_partition_cap = 48;
    b_combo_cap = 24;
    b_soak = 40;
    b_seed = 7L;
    b_shrink_runs = 64;
  }

(* CI-sized caps. The hot-path flattening and domain pool bought enough
   headroom to sweep ~1000 schedules (up from 248) and stay inside the
   ~5s smoke envelope; shrink effort stays reduced because smoke runs
   exist to detect regressions, not to produce minimal repros. *)
let smoke_budget =
  {
    default_budget with
    b_offsets = [ 0; 1; 2; 3 ];
    b_down_for = [ Sim.ms 5; Sim.ms 10; Sim.ms 40 ];
    b_heal_after = [ Sim.ms 30; Sim.ms 80; Sim.ms 120 ];
    b_single_cap = 280;
    b_pair_cap = 96;
    b_partition_cap = 96;
    b_combo_cap = 48;
    b_soak = 150;
    b_shrink_runs = 32;
  }

type schedule = { s_kind : string; s_plan : Fault.t }

(* --- generator helpers --- *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* Keep at most [cap] elements, sampled evenly across the list. *)
let spread cap l =
  let n = List.length l in
  if n <= cap then l
  else
    let step = n / cap in
    take cap (List.filteri (fun i _ -> i mod step = 0) l)

let dedup schedules =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun s ->
      if Hashtbl.mem seen s.s_plan then false
      else begin
        Hashtbl.add seen s.s_plan ();
        true
      end)
    schedules

let valid sc plan = Fault.validate ~nodes:sc.Scenario.sc_nodes plan = Ok ()

let crashable sc points =
  List.filter (fun p -> List.mem p.Decision.p_node sc.Scenario.sc_crash_nodes) points

let partitionable sc points =
  List.filter
    (fun p ->
      match p.Decision.p_peer with
      | Some peer ->
        peer <> p.Decision.p_node
        && List.mem p.Decision.p_node sc.Scenario.sc_nodes
        && List.mem peer sc.Scenario.sc_nodes
      | None -> false)
    points

(* one crash/restart cycle at each decision point +- epsilon *)
let singles budget sc points =
  crashable sc points
  |> List.concat_map (fun p ->
         List.concat_map
           (fun off ->
             List.map
               (fun down ->
                 {
                   s_kind = "single:" ^ p.Decision.p_kind;
                   s_plan =
                     Fault.crash_restart ~node:p.Decision.p_node
                       ~at:(p.Decision.p_at + off) ~down_for:down;
                 })
               budget.b_down_for)
           budget.b_offsets)
  |> dedup
  |> spread budget.b_single_cap

(* crash pairs: an early decision point paired with a late one, so the
   second fault lands while recovery from the first is still settling *)
let pairs budget sc points =
  let pts = Array.of_list (spread (2 * budget.b_pair_cap) (crashable sc points)) in
  let n = Array.length pts in
  let downs = Array.of_list budget.b_down_for in
  List.init (n / 2) (fun i ->
      let p = pts.(i) and q = pts.(i + (n / 2)) in
      let down = downs.(i mod Array.length downs) in
      {
        s_kind = Printf.sprintf "pair:%s+%s" p.Decision.p_kind q.Decision.p_kind;
        s_plan =
          Fault.(
            crash_restart ~node:p.Decision.p_node ~at:p.Decision.p_at ~down_for:down
            @+ crash_restart ~node:q.Decision.p_node ~at:q.Decision.p_at ~down_for:down);
      })
  |> List.filter (fun s -> valid sc s.s_plan)
  |> dedup
  |> spread budget.b_pair_cap

(* sever the link a protocol message is about to cross, healing later *)
let partitions budget sc points =
  partitionable sc points
  |> List.concat_map (fun p ->
         let peer = Option.get p.Decision.p_peer in
         List.map
           (fun heal ->
             {
               s_kind = "partition:" ^ p.Decision.p_kind;
               s_plan =
                 Fault.partition ~a:p.Decision.p_node ~b:peer
                   ~at:(max 0 (p.Decision.p_at - 1)) ~heal_after:heal;
             })
           budget.b_heal_after)
  |> dedup
  |> spread budget.b_partition_cap

(* a crash at one decision point while a partition straddles another *)
let combos budget sc points =
  let cr = Array.of_list (spread budget.b_combo_cap (crashable sc points)) in
  let pa = Array.of_list (spread budget.b_combo_cap (partitionable sc points)) in
  let n = min (Array.length cr) (Array.length pa) in
  let downs = Array.of_list budget.b_down_for in
  let heals = Array.of_list budget.b_heal_after in
  List.init n (fun i ->
      let p = cr.(i) and q = pa.(i) in
      let peer = Option.get q.Decision.p_peer in
      {
        s_kind = Printf.sprintf "combo:%s+%s" p.Decision.p_kind q.Decision.p_kind;
        s_plan =
          Fault.(
            crash_restart ~node:p.Decision.p_node ~at:p.Decision.p_at
              ~down_for:downs.(i mod Array.length downs)
            @+ partition ~a:q.Decision.p_node ~b:peer
                 ~at:(max 0 (q.Decision.p_at - 1))
                 ~heal_after:heals.(i mod Array.length heals));
      })
  |> List.filter (fun s -> valid sc s.s_plan)

(* seeded random soak across the reference makespan: 1-3 crash/restart
   cycles at arbitrary instants — the fuzz floor under the targeting *)
let soak budget sc ~makespan =
  if sc.Scenario.sc_crash_nodes = [] || makespan <= 0 then []
  else begin
    let root = Rng.create budget.b_seed in
    List.filter_map
      (fun _ ->
        let rng = Rng.split root in
        let draw () =
          let cycles = 1 + Rng.int rng 3 in
          List.concat
            (List.init cycles (fun _ ->
                 Fault.crash_restart
                   ~node:(Rng.pick rng sc.Scenario.sc_crash_nodes)
                   ~at:(Rng.int rng (makespan + 1))
                   ~down_for:(Sim.ms (5 + Rng.int rng 60))))
        in
        (* overlapping same-node cycles are invalid; redraw a few times *)
        let rec attempt k =
          if k = 0 then None
          else
            let plan = draw () in
            if valid sc plan then Some { s_kind = "soak"; s_plan = plan }
            else attempt (k - 1)
        in
        attempt 10)
      (List.init budget.b_soak (fun i -> i))
  end

let schedules budget sc points ~makespan =
  dedup
    (singles budget sc points @ pairs budget sc points @ partitions budget sc points
    @ combos budget sc points @ soak budget sc ~makespan)

(* --- running and judging --- *)

let judge_plan sc ~reference plan =
  match sc.Scenario.sc_run plan None with
  | obs -> Oracle.failures (sc.Scenario.sc_judge ~reference obs)
  | exception e ->
    [
      {
        Oracle.v_oracle = "no-exception";
        v_ok = false;
        v_detail = "run raised: " ^ Printexc.to_string e;
      };
    ]

type failure = {
  f_scenario : string;
  f_kind : string;
  f_plan : Fault.t;
  f_verdicts : Oracle.verdict list;  (* the failing verdicts *)
  f_min_plan : Fault.t;  (* shrunk counterexample *)
  f_shrink_runs : int;
}

type scenario_report = {
  r_scenario : string;
  r_multi_engine : bool;
  r_points : int;
  r_by_kind : (string * int) list;
  r_makespan : Sim.time;
  r_schedules : int;
  r_failures : failure list;
}

type report = { rp_mode : string; rp_scenarios : scenario_report list }

(* Judging and shrinking both fan out across the domain pool. The merge
   is canonical by construction: [Pool.map] returns results in schedule
   order whatever the worker interleaving, and every downstream fold
   (failure list, report, JSON) consumes that order — so the report is
   byte-identical for [jobs = 1] and [jobs = N]. Each schedule's run
   builds a fresh simulation stack ([Scenario.sc_run]); the only state
   crossing domains is the read-only [reference] observation and the
   progress counter. Progress/FAIL logging goes through a serialised
   callback and is the one thing allowed to interleave differently. *)
let explore_scenario ?(log = fun (_ : string) -> ()) ?(jobs = 1) budget sc =
  log (Printf.sprintf "[%s] reference run" sc.Scenario.sc_name);
  let c = Decision.collector () in
  let reference = sc.Scenario.sc_run [] (Some c) in
  (match Oracle.failures (sc.Scenario.sc_judge ~reference reference) with
  | [] -> ()
  | bad ->
    failwith
      (Printf.sprintf "scenario %s: fault-free run fails its own oracles: %s"
         sc.Scenario.sc_name
         (String.concat "; " (List.map (fun v -> v.Oracle.v_detail) bad))));
  let points = Decision.points c in
  let makespan = Decision.makespan c in
  let scheds = schedules budget sc points ~makespan in
  log
    (Printf.sprintf "[%s] %d decision points, makespan %d us, %d schedules"
       sc.Scenario.sc_name (List.length points) makespan (List.length scheds));
  let log = Pool.protect_log log in
  let sarr = Array.of_list scheds in
  let total = Array.length sarr in
  let done_ = Atomic.make 0 in
  let judged =
    Pool.map ~jobs
      (fun s ->
        let d = 1 + Atomic.fetch_and_add done_ 1 in
        if d mod 200 = 0 then log (Printf.sprintf "[%s] %d/%d" sc.Scenario.sc_name d total);
        match judge_plan sc ~reference s.s_plan with [] -> None | bad -> Some (s, bad))
      sarr
  in
  let failing = Array.to_list judged |> List.filter_map Fun.id in
  let failures =
    Pool.map ~jobs
      (fun (s, bad) ->
        log
          (Printf.sprintf "[%s] FAIL %s: %s — shrinking" sc.Scenario.sc_name s.s_kind
             (Fault.to_string s.s_plan));
        let fails p = judge_plan sc ~reference p <> [] in
        let min_plan, shrink_runs =
          Shrink.minimize ~max_runs:budget.b_shrink_runs ~fails s.s_plan
        in
        {
          f_scenario = sc.Scenario.sc_name;
          f_kind = s.s_kind;
          f_plan = s.s_plan;
          f_verdicts = bad;
          f_min_plan = min_plan;
          f_shrink_runs = shrink_runs;
        })
      (Array.of_list failing)
    |> Array.to_list
  in
  {
    r_scenario = sc.Scenario.sc_name;
    r_multi_engine = sc.Scenario.sc_multi_engine;
    r_points = List.length points;
    r_by_kind = Decision.by_kind points;
    r_makespan = makespan;
    r_schedules = total;
    r_failures = failures;
  }

let explore ?log ?jobs ?(mode = "full") budget scenarios =
  { rp_mode = mode; rp_scenarios = List.map (explore_scenario ?log ?jobs budget) scenarios }

let total_schedules r = List.fold_left (fun a s -> a + s.r_schedules) 0 r.rp_scenarios

let total_points r = List.fold_left (fun a s -> a + s.r_points) 0 r.rp_scenarios

let total_failures r =
  List.fold_left (fun a s -> a + List.length s.r_failures) 0 r.rp_scenarios

(* --- machine-readable report --- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\n  \"schema\": \"rdal-explore/1\",\n  \"mode\": %S,\n" r.rp_mode;
  pf "  \"totals\": { \"scenarios\": %d, \"decision_points\": %d, \"schedules\": %d, \"failures\": %d },\n"
    (List.length r.rp_scenarios) (total_points r) (total_schedules r) (total_failures r);
  pf "  \"scenarios\": [\n";
  List.iteri
    (fun i s ->
      pf "    {\n      \"name\": %S,\n      \"multi_engine\": %b,\n" s.r_scenario
        s.r_multi_engine;
      pf "      \"decision_points\": %d,\n      \"makespan_us\": %d,\n      \"schedules\": %d,\n"
        s.r_points s.r_makespan s.r_schedules;
      pf "      \"points_by_kind\": { %s },\n"
        (String.concat ", "
           (List.map (fun (k, n) -> Printf.sprintf "%S: %d" k n) s.r_by_kind));
      pf "      \"failures\": [%s]\n"
        (String.concat ",\n"
           (List.map
              (fun f ->
                Printf.sprintf
                  "\n        { \"kind\": %S, \"plan\": \"%s\", \"oracles\": [%s], \"minimized\": \"%s\", \"min_actions\": %d, \"shrink_runs\": %d }"
                  f.f_kind
                  (json_escape (Fault.to_string f.f_plan))
                  (String.concat ", "
                     (List.map
                        (fun v ->
                          Printf.sprintf "{ \"oracle\": %S, \"detail\": \"%s\" }"
                            v.Oracle.v_oracle (json_escape v.Oracle.v_detail))
                        f.f_verdicts))
                  (json_escape (Fault.to_string f.f_min_plan))
                  (List.length f.f_min_plan) f.f_shrink_runs)
              s.r_failures));
      pf "    }%s\n" (if i = List.length r.rp_scenarios - 1 then "" else ",")
    )
    r.rp_scenarios;
  pf "  ]\n}\n";
  Buffer.contents b
