(* Equivalence oracles.

   Every explored schedule ends in an observation of the final state;
   oracles compare it against the fault-free reference observation.
   Effects are counted from the durable per-instance history (kind
   ["complete"]) rather than from bus events: a crash landing between a
   completion's commit and its continuation suppresses the event but not
   the durable effect, and the whole point is to catch exactly those
   windows. *)

type obs = {
  o_statuses : (string * string) list;  (* iid -> final rendered status *)
  o_effects : (string * int) list;  (* iid/path -> committed completion count *)
  o_prepared : (string * int) list;  (* node -> prepared txids still held *)
  o_locks : (string * int) list;  (* node -> read+write locks still held *)
  o_active : int;  (* in-flight top-level transactions, all managers *)
  o_undecided : int;  (* commit decisions not yet fully pushed *)
  o_placements : (string * string) list;  (* durable iid -> engine directory *)
  o_directory : (string * string) list;  (* router cache iid -> engine *)
  o_owned : (string * string) list;  (* iid -> engine actually holding it *)
  o_drained : bool;  (* simulator ran out of events before the horizon *)
  o_logs : (string * (int * string) list) list;
      (* replica -> committed (term, payload) prefix of the replicated
         repository log; empty when the repository is a single node *)
  o_routed : (string * string) list;
      (* iid -> owning engine as answered over the fabric (leader
         discovery + redirects included); empty when not collected *)
  o_recovery : (string * string * string) list;
      (* (iid, kind, detail) durable rows driving the policy-conformance
         oracle: the policy-* rows plus the completions they refer to,
         in per-instance history order *)
}

type verdict = { v_oracle : string; v_ok : bool; v_detail : string }

let effects_of_history rows ~iid =
  List.filter_map
    (fun (_, kind, detail) ->
      if kind <> "complete" then None
      else
        match String.index_opt detail ' ' with
        | Some i -> Some (iid ^ "/" ^ String.sub detail 0 i)
        | None -> Some (iid ^ "/" ^ detail))
    rows

let count_by_key keys =
  let tally = Hashtbl.create 32 in
  List.iter
    (fun k ->
      Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
    keys;
  List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tally [])

let recovery_rows histories =
  List.sort (fun (a, _) (b, _) -> compare a b) histories
  |> List.concat_map (fun (iid, rows) ->
         List.filter_map
           (fun (_, kind, detail) ->
             if kind = "complete" || String.starts_with ~prefix:"policy-" kind then
               Some (iid, kind, detail)
             else None)
           rows)

let observe ?(logs = []) ?(routed = []) ~statuses ~histories ~participants ~managers
    ~placements ~directory ~owned ~drained () =
  {
    o_statuses = List.sort compare statuses;
    o_effects =
      count_by_key
        (List.concat_map (fun (iid, rows) -> effects_of_history rows ~iid) histories);
    o_prepared =
      List.sort compare
        (List.map (fun (n, p) -> (n, List.length (Participant.prepared_txids p))) participants);
    o_locks =
      List.sort compare
        (List.map (fun (n, p) -> (n, Participant.locks_held p)) participants);
    o_active = List.fold_left (fun acc (_, m) -> acc + Txn.active_count m) 0 managers;
    o_undecided =
      List.fold_left (fun acc (_, m) -> acc + Txn.undecided_commits m) 0 managers;
    o_placements = List.sort compare placements;
    o_directory = List.sort compare directory;
    o_owned = List.sort compare owned;
    o_drained = drained;
    o_logs = List.sort compare logs;
    o_routed = List.sort compare routed;
    o_recovery = recovery_rows histories;
  }

(* --- individual oracles --- *)

let pp_assoc pp_v l =
  String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (pp_v v)) l)

let diff_assoc ~what ~reference ~got pp_v =
  if reference = got then None
  else
    Some
      (Printf.sprintf "%s diverged: reference {%s} vs explored {%s}" what
         (pp_assoc pp_v reference) (pp_assoc pp_v got))

let outcome_equivalence ~reference obs =
  let detail =
    Option.value ~default:""
      (diff_assoc ~what:"final statuses" ~reference:reference.o_statuses
         ~got:obs.o_statuses Fun.id)
  in
  { v_oracle = "outcome-equivalence"; v_ok = detail = ""; v_detail = detail }

let effect_equivalence ~reference obs =
  let detail =
    Option.value ~default:""
      (diff_assoc ~what:"committed effect counters" ~reference:reference.o_effects
         ~got:obs.o_effects string_of_int)
  in
  { v_oracle = "effect-equivalence"; v_ok = detail = ""; v_detail = detail }

let exactly_once obs =
  let dups = List.filter (fun (_, n) -> n <> 1) obs.o_effects in
  {
    v_oracle = "exactly-once";
    v_ok = dups = [];
    v_detail =
      (if dups = [] then ""
       else "effects committed more than once: " ^ pp_assoc string_of_int dups);
  }

let no_stuck_transactions obs =
  let stuck_prepared = List.filter (fun (_, n) -> n <> 0) obs.o_prepared in
  let problems =
    (if stuck_prepared = [] then []
     else [ "prepared txns still held: " ^ pp_assoc string_of_int stuck_prepared ])
    @ (if obs.o_active = 0 then []
       else [ Printf.sprintf "%d transaction(s) still active" obs.o_active ])
    @ (if obs.o_undecided = 0 then []
       else [ Printf.sprintf "%d commit decision(s) never fully pushed" obs.o_undecided ])
    @ if obs.o_drained then [] else [ "simulator did not drain before the horizon" ]
  in
  {
    v_oracle = "no-stuck-transactions";
    v_ok = problems = [];
    v_detail = String.concat "; " problems;
  }

let no_orphaned_locks obs =
  let held = List.filter (fun (_, n) -> n <> 0) obs.o_locks in
  {
    v_oracle = "no-orphaned-locks";
    v_ok = held = [];
    v_detail =
      (if held = [] then "" else "locks still held: " ^ pp_assoc string_of_int held);
  }

let directory_consistency obs =
  let problems =
    (match diff_assoc ~what:"router cache vs durable directory"
             ~reference:obs.o_directory ~got:obs.o_placements Fun.id with
    | Some d -> [ d ]
    | None -> [])
    @
    match diff_assoc ~what:"directory vs engines' actual instances"
            ~reference:obs.o_directory ~got:obs.o_owned Fun.id with
    | Some d -> [ d ]
    | None -> []
  in
  {
    v_oracle = "directory-consistency";
    v_ok = problems = [];
    v_detail = String.concat "; " problems;
  }

(* A committed entry, once committed at an index, is committed at that
   index on every replica that has learned it: across all replica pairs
   the shorter committed prefix must be a prefix of the longer. Any
   disagreement means a failover lost or reordered committed entries. *)
let log_linearizability obs =
  let rec common_prefix a b =
    match (a, b) with
    | x :: a', y :: b' when x = y -> common_prefix a' b'
    | rest_a, rest_b -> (rest_a, rest_b)
  in
  let problems =
    let rec pairs = function
      | [] -> []
      | (na, la) :: rest ->
        List.filter_map
          (fun (nb, lb) ->
            match common_prefix la lb with
            | [], _ | _, [] -> None
            | (ta, pa) :: _, (tb, pb) :: _ ->
              Some
                (Printf.sprintf
                   "%s and %s disagree on a committed entry: (term %d, %S) vs (term %d, %S)"
                   na nb ta pa tb pb))
          rest
        @ pairs rest
    in
    pairs obs.o_logs
  in
  {
    v_oracle = "log-linearizability";
    v_ok = problems = [];
    v_detail = String.concat "; " problems;
  }

(* Every durable placement must be resolvable over the fabric (leader
   discovery, redirects and failover included) to the same owner. *)
let routed_consistency obs =
  let problems =
    List.filter_map
      (fun (iid, routed) ->
        match List.assoc_opt iid obs.o_placements with
        | Some owner when owner = routed -> None
        | Some owner ->
          Some
            (Printf.sprintf "routed owner of %s is %s but the directory records %s" iid routed
               owner)
        | None -> Some (Printf.sprintf "routed owner of %s (%s) is not in the directory" iid routed))
      obs.o_routed
  in
  {
    v_oracle = "routed-consistency";
    v_ok = problems = [];
    v_detail = String.concat "; " problems;
  }

(* --- declarative-recovery conformance --- *)

(* What the scenario's script declared for one task path; the oracle
   holds the engine's durable policy rows against it. The scenario owns
   the spec because only it knows the script it built — the history rows
   alone cannot reveal the declared budget. *)
type policy_spec = {
  ps_path : string;  (* instance-relative path, e.g. "flow/work" *)
  ps_max_attempts : int;  (* grand-total attempt ceiling (all bands) *)
  ps_codes : string list;  (* codes failure-driven band advance may reach *)
  ps_substitute : string option;  (* code reachable only through a timeout *)
  ps_compensate : string option;  (* handler owed exactly once per abort *)
  ps_abort_output : string option;  (* completion output marking an abort *)
}

let parse_int_prefix s =
  let n = String.length s in
  let rec stop i = if i < n && s.[i] >= '0' && s.[i] <= '9' then stop (i + 1) else i in
  let i = stop 0 in
  if i = 0 then None else int_of_string_opt (String.sub s 0 i)

(* "CODE (cause)" -> (CODE, cause); a row without a cause tag keeps "" *)
let split_cause s =
  match String.index_opt s ' ' with
  | Some i when i + 2 < String.length s && s.[i + 1] = '(' && s.[String.length s - 1] = ')' ->
    (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 3))
  | _ -> (s, "")

let strip_prefix ~prefix s =
  if String.starts_with ~prefix s then
    Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let conformance_problems spec rows =
  let retries =
    List.filter_map
      (fun (kind, detail) ->
        if kind <> "policy-retry" then None
        else
          Option.bind
            (strip_prefix ~prefix:(spec.ps_path ^ " (attempt ") detail)
            parse_int_prefix)
      rows
  in
  let substitutions =
    List.filter_map
      (fun (kind, detail) ->
        if kind <> "policy-substitute" then None
        else Option.map split_cause (strip_prefix ~prefix:(spec.ps_path ^ " -> ") detail))
      rows
  in
  let compensations =
    List.filter_map
      (fun (kind, detail) ->
        if kind <> "policy-compensate" then None
        else strip_prefix ~prefix:(spec.ps_path ^ " -> ") detail)
      rows
  in
  let aborts =
    match spec.ps_abort_output with
    | None -> 0
    | Some out ->
      List.length
        (List.filter
           (fun (kind, detail) -> kind = "complete" && detail = spec.ps_path ^ " -> " ^ out)
           rows)
  in
  let over_budget = List.filter (fun n -> n > spec.ps_max_attempts) retries in
  (if over_budget = [] then []
   else
     [
       Printf.sprintf "%s: retries beyond the declared budget (attempt %d > %d)" spec.ps_path
         (List.fold_left max 0 over_budget) spec.ps_max_attempts;
     ])
  @ List.concat_map
      (fun (code, cause) ->
        let allowed_by_failure = List.mem code spec.ps_codes in
        let is_substitute = spec.ps_substitute = Some code in
        if (not allowed_by_failure) && not is_substitute then
          [ Printf.sprintf "%s: substitution to undeclared code %s" spec.ps_path code ]
        else if is_substitute && cause <> "timeout" then
          [
            Printf.sprintf "%s: substitute %s reached without a timeout (cause %S)"
              spec.ps_path code cause;
          ]
        else [])
      substitutions
  @ (match List.filter (fun t -> Some t <> spec.ps_compensate) compensations with
    | [] -> []
    | bad ->
      [
        Printf.sprintf "%s: compensation ran undeclared handler(s) %s" spec.ps_path
          (String.concat ", " bad);
      ])
  @
  let n_comp = List.length compensations in
  if aborts = 0 && n_comp > 0 then
    [ Printf.sprintf "%s: compensation ran %d time(s) without an abort" spec.ps_path n_comp ]
  else if aborts > 0 && n_comp <> 1 then
    [
      Printf.sprintf "%s: compensation ran %d time(s) for an aborted scope (want exactly 1)"
        spec.ps_path n_comp;
    ]
  else []

let policy_conformance ~specs obs =
  let iids =
    List.sort_uniq compare (List.map (fun (iid, _, _) -> iid) obs.o_recovery)
  in
  let problems =
    List.concat_map
      (fun iid ->
        let rows =
          List.filter_map
            (fun (i, kind, detail) -> if i = iid then Some (kind, detail) else None)
            obs.o_recovery
        in
        List.concat_map (fun spec -> conformance_problems spec rows) specs)
      iids
  in
  {
    v_oracle = "policy-conformance";
    v_ok = problems = [];
    v_detail = String.concat "; " problems;
  }

let judge ~reference obs =
  [
    outcome_equivalence ~reference obs;
    effect_equivalence ~reference obs;
    exactly_once obs;
    no_stuck_transactions obs;
    no_orphaned_locks obs;
    directory_consistency obs;
    log_linearizability obs;
    routed_consistency obs;
  ]

let judge_with ~policy ~reference obs =
  judge ~reference obs @ [ policy_conformance ~specs:policy obs ]

let failures verdicts = List.filter (fun v -> not v.v_ok) verdicts
