(** Systematic fault exploration.

    The driver runs each {!Scenario} once fault-free to harvest
    {!Decision} points, derives targeted crash/partition schedules from
    them under a {!budget}, replays every schedule on a fresh stack,
    judges the final state with the {!Oracle} battery against the
    reference observation, and {!Shrink}s any failing schedule to a
    minimal counterexample. *)

type budget = {
  b_offsets : Sim.time list;
      (** fault instant = decision instant + offset; offset [0] fires
          {e before} the decision event (setup-planted faults win
          same-time ties), [1] just after *)
  b_down_for : Sim.time list;  (** crash-to-restart durations *)
  b_heal_after : Sim.time list;  (** partition durations *)
  b_single_cap : int;  (** max single-crash schedules per scenario *)
  b_pair_cap : int;
  b_partition_cap : int;
  b_combo_cap : int;
  b_soak : int;  (** random soak schedules per scenario *)
  b_seed : int64;  (** soak RNG seed, split per schedule *)
  b_shrink_runs : int;  (** minimizer run budget per failure *)
}

val default_budget : budget

val smoke_budget : budget
(** CI-sized caps; ~1000 schedules across the stock scenarios. *)

type schedule = { s_kind : string; s_plan : Fault.t }

val schedules :
  budget -> Scenario.t -> Decision.point list -> makespan:Sim.time -> schedule list
(** All generated schedules for one scenario, deduplicated: singles
    (crash/restart around every decision point), pairs (early+late
    crash), partitions (sever the link a protocol message is about to
    cross), combos (crash + partition) and the seeded random soak. Every
    plan is {!Fault.validate}-clean. *)

type failure = {
  f_scenario : string;
  f_kind : string;  (** generator tag, e.g. ["single:commit"] *)
  f_plan : Fault.t;  (** the schedule as generated *)
  f_verdicts : Oracle.verdict list;  (** the failing verdicts *)
  f_min_plan : Fault.t;  (** shrunk counterexample *)
  f_shrink_runs : int;
}

type scenario_report = {
  r_scenario : string;
  r_multi_engine : bool;
  r_points : int;
  r_by_kind : (string * int) list;
  r_makespan : Sim.time;
  r_schedules : int;
  r_failures : failure list;
}

type report = { rp_mode : string; rp_scenarios : scenario_report list }

val judge_plan :
  Scenario.t -> reference:Oracle.obs -> Fault.t -> Oracle.verdict list
(** Run one plan and return the {e failing} verdicts of the scenario's
    own judge (empty = survived). A raised exception becomes a failing
    ["no-exception"] verdict. *)

val explore_scenario :
  ?log:(string -> unit) -> ?jobs:int -> budget -> Scenario.t -> scenario_report
(** Reference run, schedule generation, exploration, shrinking. Judging
    and shrinking fan out over [jobs] domains ({!Pool.map}); the report
    is byte-identical whatever [jobs] is. Raises [Failure] if the
    fault-free reference run fails its own oracles. *)

val explore :
  ?log:(string -> unit) ->
  ?jobs:int ->
  ?mode:string ->
  budget ->
  Scenario.t list ->
  report

val total_schedules : report -> int

val total_points : report -> int

val total_failures : report -> int

val to_json : report -> string
(** The [EXPLORE.json] artifact: totals plus per-scenario coverage and
    every failure with its minimized counterexample. *)
