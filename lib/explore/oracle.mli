(** Equivalence oracles judging the final state of an explored run.

    Effects are counted from the durable per-instance history (kind
    ["complete"]), not from bus events: a crash landing between a
    completion's commit and its continuation suppresses the event but
    not the durable effect — exactly the window exploration probes. *)

type obs = {
  o_statuses : (string * string) list;  (** iid -> rendered final status *)
  o_effects : (string * int) list;
      (** ["iid/path"] -> committed completion count *)
  o_prepared : (string * int) list;  (** node -> prepared txids still held *)
  o_locks : (string * int) list;  (** node -> read+write locks still held *)
  o_active : int;  (** in-flight top-level transactions, all managers *)
  o_undecided : int;  (** commit decisions not yet fully pushed *)
  o_placements : (string * string) list;  (** durable placement directory *)
  o_directory : (string * string) list;  (** router's cached directory *)
  o_owned : (string * string) list;  (** iid -> engine actually holding it *)
  o_drained : bool;  (** the simulator drained before the horizon *)
  o_logs : (string * (int * string) list) list;
      (** replica -> committed (term, payload) prefix of the replicated
          repository log; empty when the repository is a single node *)
  o_routed : (string * string) list;
      (** iid -> owning engine as answered over the fabric (leader
          discovery and redirects included); empty when not collected *)
  o_recovery : (string * string * string) list;
      (** (iid, kind, detail) durable rows for the policy-conformance
          oracle: every [policy-*] history row plus the [complete] rows
          they refer to, in per-instance history order *)
}

type verdict = { v_oracle : string; v_ok : bool; v_detail : string }

val effects_of_history :
  (Sim.time * string * string) list -> iid:string -> string list
(** ["iid/path"] keys of the committed completions in one instance's
    durable history. *)

val observe :
  ?logs:(string * (int * string) list) list ->
  ?routed:(string * string) list ->
  statuses:(string * string) list ->
  histories:(string * (Sim.time * string * string) list) list ->
  participants:(string * Participant.t) list ->
  managers:(string * Txn.manager) list ->
  placements:(string * string) list ->
  directory:(string * string) list ->
  owned:(string * string) list ->
  drained:bool ->
  unit ->
  obs
(** Snapshot the final state of a run (sorts and tallies the inputs). *)

(** {1 The oracle battery} *)

val outcome_equivalence : reference:obs -> obs -> verdict
(** Final instance statuses match the fault-free run. *)

val effect_equivalence : reference:obs -> obs -> verdict
(** Committed effect counters match the fault-free run. *)

val exactly_once : obs -> verdict
(** Every effect committed exactly once — no lost and no duplicated
    completions. *)

val no_stuck_transactions : obs -> verdict
(** No prepared participant state, no active or undecided commits, and
    the run actually quiesced. *)

val no_orphaned_locks : obs -> verdict

val directory_consistency : obs -> verdict
(** Router cache, durable placement directory and the engines' actual
    instance lists agree (trivially true for single-engine runs). *)

val log_linearizability : obs -> verdict
(** No two replicas disagree on any committed log entry: across every
    replica pair the shorter committed prefix is a prefix of the longer.
    A violation means a failover lost or reordered committed entries.
    Trivially true when [o_logs] is empty (single-node repository). *)

val routed_consistency : obs -> verdict
(** Every owner answered over the fabric ([o_routed]) matches the
    durable placement directory — leader discovery, redirect-on-
    [Not_leader] and failover must land on the recorded owner. *)

val judge : reference:obs -> obs -> verdict list
(** The full battery, in a stable order. *)

(** {1 Declarative-recovery conformance}

    What a scenario's script declared for one task path. The spec comes
    from the scenario, not the run: the durable rows alone cannot reveal
    the declared budget, so the scenario that built the script states
    it, and the oracle holds the engine's policy rows against it. *)
type policy_spec = {
  ps_path : string;  (** instance-relative path, e.g. ["flow/work"] *)
  ps_max_attempts : int;
      (** grand-total attempt ceiling across every code band — no
          [policy-retry] row may record a later attempt *)
  ps_codes : string list;
      (** codes a {e failure-driven} band advance may legally reach *)
  ps_substitute : string option;
      (** code reachable only through a [timeout ... then substitute]
          jump — a substitution row naming it must carry the timeout
          cause *)
  ps_compensate : string option;
      (** handler owed exactly once per abort of [ps_path] (and never
          without one) *)
  ps_abort_output : string option;
      (** the completion output marking an abort of [ps_path]; [None]
          means the spec expects no abort, hence no compensation *)
}

val policy_conformance : specs:policy_spec list -> obs -> verdict
(** Observed retries stay within the declared budget, substitution to
    the timeout substitute happens only after a timeout (and only to
    declared codes), and compensation runs exactly once per aborted
    scope — judged from the durable [o_recovery] rows of every
    instance. *)

val judge_with : policy:policy_spec list -> reference:obs -> obs -> verdict list
(** {!judge} plus {!policy_conformance} — the battery recovery
    scenarios install as their per-scenario judge. *)

val failures : verdict list -> verdict list
(** Just the verdicts that failed. *)
