(* Decision-point harvesting.

   A fault-free reference run is observed through the typed event bus;
   every event that marks a commit, a protocol message, a dispatch or a
   recovery boundary becomes a *decision point* — an instant at which
   the system is mid-decision and a well-timed fault is most likely to
   expose a recovery bug. Schedule generators then aim crashes and
   partitions at these instants instead of sweeping a blind time grid. *)

type point = {
  p_at : Sim.time;  (** virtual instant of the decision *)
  p_node : string;  (** node making the decision (event source) *)
  p_kind : string;  (** classification, e.g. ["commit"], ["rpc:tx.prepare"] *)
  p_label : string;  (** what was being decided (txid, task path, iid) *)
  p_peer : string option;  (** message destination, for partition targets *)
}

type t = { mutable rev_points : point list }

let collector () = { rev_points = [] }

(* Which message boundaries matter: transaction protocol steps, task
   dispatch/report traffic and repository operations. The RPC envelope
   response traffic is implied by the request's send instant. *)
let protocol_service service =
  String.starts_with ~prefix:"tx." service
  || String.starts_with ~prefix:"wf." service
  || String.starts_with ~prefix:"repo." service
  || String.starts_with ~prefix:"cons." service

let classify ~src ev =
  match ev with
  | Event.Txn_resolved { txid; committed = true } -> Some ("commit", txid, None)
  | Event.Txn_one_phase { txid; _ } -> Some ("one-phase", txid, None)
  | Event.Txn_readonly_elided { txid; node } -> Some ("ro-elide", txid, Some node)
  | Event.Persist_batched _ -> Some ("batch-flush", src, None)
  | Event.Task_dispatched { path; host; _ } -> Some ("dispatch", path, Some host)
  | Event.Impl_completed { path; _ } -> Some ("impl-complete", path, None)
  | Event.Timer_fired { path; _ } -> Some ("timer", path, None)
  | Event.Wf_launched { iid; _ } -> Some ("launch", iid, None)
  | Event.Wf_relaunched { iid } -> Some ("relaunch", iid, None)
  | Event.Wf_concluded { iid; _ } -> Some ("conclude", iid, None)
  | Event.Cons_election_started { node; term } ->
    Some ("election", Printf.sprintf "%s@%d" node term, None)
  | Event.Cons_leader_elected { node; term } ->
    Some ("elected", Printf.sprintf "%s@%d" node term, None)
  | Event.Cons_stepped_down { node; term } ->
    Some ("step-down", Printf.sprintf "%s@%d" node term, None)
  | Event.Cons_committed { node; index; _ } ->
    Some ("cons-commit", Printf.sprintf "%s@%d" node index, None)
  | Event.Cons_caught_up { node; _ } -> Some ("catch-up", node, None)
  | Event.Rpc_sent { src = _; dst; service } when protocol_service service ->
    Some ("rpc:" ^ service, dst, Some dst)
  | Event.Rpc_loopback { node = _; service } when protocol_service service ->
    Some ("loopback:" ^ service, src, None)
  | _ -> None

let record c ~at ~src ev =
  match classify ~src ev with
  | None -> ()
  | Some (kind, label, peer) ->
    c.rev_points <-
      { p_at = at; p_node = src; p_kind = kind; p_label = label; p_peer = peer }
      :: c.rev_points

let subscriber c : Event.subscriber = fun ~at ~src ev -> record c ~at ~src ev

let points c = List.sort_uniq compare (List.rev c.rev_points)

let makespan c = List.fold_left (fun acc p -> max acc p.p_at) 0 (points c)

let by_kind pts =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun p ->
      Hashtbl.replace tally p.p_kind (1 + Option.value ~default:0 (Hashtbl.find_opt tally p.p_kind)))
    pts;
  List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tally [])
