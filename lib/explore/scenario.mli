(** Exploration scenarios: workloads rebuilt from scratch per schedule.

    Each scenario constructs a fresh simulated stack, plants the fault
    plan at setup time (a fault scheduled at the same instant as a run
    event fires first, by sequence-number tie-breaking), drives the run
    to a fixed horizon and returns the final {!Oracle.obs}. Because the
    simulator is deterministic, running with the empty plan yields a
    stable fault-free reference observation. *)

type t = {
  sc_name : string;
  sc_multi_engine : bool;  (** uses the sharded {!Cluster} layer *)
  sc_crash_nodes : string list;
      (** nodes that schedules may crash/restart (engines and hosts; the
          repository node is partition-able but not crashed) *)
  sc_nodes : string list;  (** full node population, for plan validation *)
  sc_run : Fault.t -> Decision.t option -> Oracle.obs;
      (** run one schedule; pass a {!Decision.collector} to harvest
          decision points (reference runs only) *)
  sc_judge : reference:Oracle.obs -> Oracle.obs -> Oracle.verdict list;
      (** the oracle battery judging this scenario's runs: the stock
          {!Oracle.judge} for the classic workloads, extended with
          {!Oracle.policy_conformance} for the recovery family *)
}

val engine_config : Engine.config
(** Deadline/retry budget generous enough that every crash-with-restart
    schedule should still finish — a run that does not is a finding. *)

val horizon : Sim.time
(** Hard stop for a single run (well past any expected makespan). *)

val chain : t
(** 6-step remote chain: engine on [n0], every step pinned to host
    [h1], so dispatch and completion reports cross the network. *)

val supply : t
(** The supply-chain case study (smooth scenario) on a single node —
    one-phase and read-only-elision fast lanes dominate. *)

val cluster3 : t
(** Three engines + repository, six 4-step chains placed round-robin —
    exercises placement-directory writes and cross-engine isolation. *)

(** {1 Declarative-recovery scenarios}

    One scenario per [recovery { ... }] construct — the work leaf is
    pinned to host [h1] so crash and partition schedules land on the
    recovering task's own message boundaries, and each is judged with
    {!Oracle.judge_with} against the policy spec its script declared. *)

val recovery_retry : t
(** [retry 8 backoff 5 max 40] over an implementation that crashes on
    its first two attempts. *)

val recovery_timeout : t
(** [timeout 50 then substitute "r.sub"] over an implementation that
    computes far past the deadline. *)

val recovery_alternative : t
(** [retry 4; alternative "r.alive"] over a dead primary — the band
    advance reaches the alternative by failure, never by timeout. *)

val recovery_compensate : t
(** [compensate undo] on a task that terminates in an abort outcome;
    the sibling handler is owed exactly one durable compensation
    record. *)

val recovery_all : t list

(** {1 Replicated-repository scenarios}

    Three-replica consensus repository under engines launching chains;
    crash and partition schedules may hit the repository nodes
    themselves. Observations feed the log-linearizability and
    routed-consistency oracles with per-replica committed logs and
    post-drain routed owner lookups. *)

val repo_failover : t
(** Engines + all three replicas crashable: repository-crash and
    leader-partition schedules — killing the leader mid-placement-write
    must lose no placements. *)

val repo_election : t
(** A {e scripted} crash of the bootstrap leader mid-run puts a
    failover election into the reference run itself; schedules then aim
    faults at the surviving replicas inside the election window
    (election races). *)

val replication_all : t list

val all : t list
(** The classic workloads only — the stock exploration population (the
    recovery and replication families are opted into via
    {!recovery_all} / {!replication_all} / {!by_name}). *)

val by_name : string -> t option
(** Resolves {!all}, {!recovery_all} and {!replication_all} members. *)
