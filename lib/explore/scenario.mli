(** Exploration scenarios: workloads rebuilt from scratch per schedule.

    Each scenario constructs a fresh simulated stack, plants the fault
    plan at setup time (a fault scheduled at the same instant as a run
    event fires first, by sequence-number tie-breaking), drives the run
    to a fixed horizon and returns the final {!Oracle.obs}. Because the
    simulator is deterministic, running with the empty plan yields a
    stable fault-free reference observation. *)

type t = {
  sc_name : string;
  sc_multi_engine : bool;  (** uses the sharded {!Cluster} layer *)
  sc_crash_nodes : string list;
      (** nodes that schedules may crash/restart (engines and hosts; the
          repository node is partition-able but not crashed) *)
  sc_nodes : string list;  (** full node population, for plan validation *)
  sc_run : Fault.t -> Decision.t option -> Oracle.obs;
      (** run one schedule; pass a {!Decision.collector} to harvest
          decision points (reference runs only) *)
}

val engine_config : Engine.config
(** Deadline/retry budget generous enough that every crash-with-restart
    schedule should still finish — a run that does not is a finding. *)

val horizon : Sim.time
(** Hard stop for a single run (well past any expected makespan). *)

val chain : t
(** 6-step remote chain: engine on [n0], every step pinned to host
    [h1], so dispatch and completion reports cross the network. *)

val supply : t
(** The supply-chain case study (smooth scenario) on a single node —
    one-phase and read-only-elision fast lanes dominate. *)

val cluster3 : t
(** Three engines + repository, six 4-step chains placed round-robin —
    exercises placement-directory writes and cross-engine isolation. *)

val all : t list

val by_name : string -> t option
