(* Delta-debugging of failing fault plans.

   Shrinking operates on *units*, not raw actions: a crash travels with
   its matching restart, a partition with its heal. Removing whole units
   keeps every intermediate candidate well-formed by construction
   (Fault.validate-clean), so the minimizer never wastes runs on plans
   the applier would reject. Greedy single-unit removal to fixpoint is
   enough for the schedules the generators emit; the run cap bounds the
   cost of pathological cases. *)

type unit_ = (Sim.time * Fault.action) list

let sort_plan plan = List.stable_sort (fun (a, _) (b, _) -> compare a b) plan

let units plan =
  let arr = Array.of_list (sort_plan plan) in
  let n = Array.length arr in
  let claimed = Array.make n false in
  let find_partner i pred =
    let rec go j =
      if j >= n then None
      else if (not claimed.(j)) && pred (snd arr.(j)) then Some j
      else go (j + 1)
    in
    go (i + 1)
  in
  let out = ref [] in
  for i = 0 to n - 1 do
    if not claimed.(i) then begin
      claimed.(i) <- true;
      let partner =
        match snd arr.(i) with
        | Fault.Crash node ->
          find_partner i (function Fault.Restart r -> r = node | _ -> false)
        | Fault.Partition_on (a, b) ->
          find_partner i (function
            | Fault.Partition_off (x, y) -> (x, y) = (a, b) || (x, y) = (b, a)
            | _ -> false)
        | _ -> None
      in
      match partner with
      | Some j ->
        claimed.(j) <- true;
        out := [ arr.(i); arr.(j) ] :: !out
      | None -> out := [ arr.(i) ] :: !out
    end
  done;
  List.rev !out

let plan_of us = sort_plan (List.concat us)

let minimize ?(max_runs = 64) ~fails plan =
  let runs = ref 0 in
  let try_fails p =
    if !runs >= max_runs then false
    else begin
      incr runs;
      fails p
    end
  in
  (* Remove one unit at a time; on success restart the scan from the
     smaller plan (fixpoint). *)
  let rec pass us =
    let rec go kept = function
      | [] -> us
      | u :: rest ->
        let candidate = List.rev_append kept rest in
        if try_fails (plan_of candidate) then pass candidate else go (u :: kept) rest
    in
    go [] us
  in
  let minimal = pass (units plan) in
  (plan_of minimal, !runs)
