(** Delta-debugging of failing fault plans to minimal counterexamples.

    Shrinking removes *units* — a crash paired with its matching
    restart, a partition-on paired with its heal, or a lone action —
    so every intermediate candidate stays {!Fault.validate}-clean by
    construction. *)

type unit_ = (Sim.time * Fault.action) list

val units : Fault.t -> unit_ list
(** Group a plan into removable units: each [Crash n] claims the first
    later unclaimed [Restart n]; each [Partition_on (a, b)] claims the
    first later unclaimed heal of the same (unordered) pair; anything
    unpaired forms a singleton unit. *)

val plan_of : unit_ list -> Fault.t
(** Flatten units back into a time-sorted plan. *)

val minimize :
  ?max_runs:int -> fails:(Fault.t -> bool) -> Fault.t -> Fault.t * int
(** [minimize ~fails plan] greedily removes units while [fails] keeps
    returning [true], restarting the scan after every successful
    removal until a fixpoint. Returns the minimal failing plan and the
    number of [fails] evaluations spent (capped at [max_runs],
    default 64 — on cap exhaustion the best plan so far is returned). *)
