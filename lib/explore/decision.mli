(** Decision-point harvesting from the typed event bus.

    A fault-free reference run is observed through {!Event.bus}; every
    event marking a commit decision, a protocol message send, a dispatch
    or a recovery boundary becomes a {!point} — an instant at which the
    system is mid-decision and a well-timed crash or partition is most
    likely to expose a recovery bug. The schedule generators in
    {!Explore} aim faults at these instants instead of sweeping a blind
    millisecond grid. *)

type point = {
  p_at : Sim.time;  (** virtual instant of the decision *)
  p_node : string;  (** node making the decision (event source label) *)
  p_kind : string;
      (** classification: ["commit"], ["one-phase"], ["ro-elide"],
          ["batch-flush"], ["dispatch"], ["impl-complete"], ["timer"],
          ["launch"], ["relaunch"], ["conclude"], ["rpc:<service>"] or
          ["loopback:<service>"] *)
  p_label : string;  (** what was decided: txid, task path or iid *)
  p_peer : string option;
      (** message destination when the decision crossed (or could have
          crossed) the network — the partition target *)
}

type t
(** A mutable collector accumulating points as events arrive. *)

val collector : unit -> t

val classify : src:string -> Event.t -> (string * string * string option) option
(** [(kind, label, peer)] for events that are decision points, [None]
    otherwise. Only transaction ([tx.*]), workflow ([wf.*]) and
    repository ([repo.*]) RPC services count as protocol boundaries. *)

val subscriber : t -> Event.subscriber
(** Subscribe this to {!Sim.events} before the reference run. *)

val points : t -> point list
(** Distinct points harvested so far, sorted by time (then fields). *)

val makespan : t -> Sim.time
(** Latest decision instant seen (0 when empty) — the horizon the
    schedule generators spread soak faults across. *)

val by_kind : point list -> (string * int) list
(** Coverage tally: how many points of each kind, sorted by kind. *)
