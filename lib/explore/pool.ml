(* A small work-stealing domain pool for embarrassingly parallel
   exploration. No Domainslib in the tree, so this is hand-rolled on
   stdlib primitives: one shared [Atomic] cursor hands out item indices
   (workers "steal" the next undone index — with independent items this
   degenerate deque is all the stealing we need), and every worker
   writes its result into a slot owned by that index.

   Determinism contract: the result array is in item order regardless of
   [jobs] or scheduling, so any fold over it is canonical. Two workers
   never share mutable state beyond the cursor and their disjoint result
   slots; each [f] call must itself be self-contained (explore runs
   build a fresh simulation stack per schedule, see DESIGN.md §13). *)

let default_jobs () = Domain.recommended_domain_count ()

(* Serialise a log callback for use from worker domains. *)
let protect_log log =
  let m = Mutex.create () in
  fun s ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> log s)

(* [map ~jobs f items] = [Array.map f items], fanned out over up to
   [jobs] domains (the caller participates, so [jobs - 1] are spawned).
   An exception from one [f] call does not wedge the pool: the worker
   records it and moves on to the next index, every other item still
   completes, and after all domains join the lowest-index exception is
   re-raised in the caller — deterministically, independent of which
   worker hit it first. *)
let map ?(jobs = 1) f items =
  let n = Array.length items in
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.map f items
  else begin
    let next = Atomic.make 0 in
    let results = Array.make n None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else begin
          let r = match f items.(i) with v -> Ok v | exception e -> Error e in
          results.(i) <- Some r
        end
      done
    in
    let spawned = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false (* every index below the cursor is filled *))
      results
  end
