(** Work-stealing domain pool for independent exploration runs.

    Hand-rolled on [Domain] + [Atomic]: a shared cursor hands out item
    indices, results land in per-index slots, so output order is
    canonical (item order) whatever the worker interleaving. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val protect_log : (string -> unit) -> string -> unit
(** Mutex-serialised wrapper, safe to call from worker domains. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f items] is [Array.map f items] computed by up to [jobs]
    domains (the calling domain participates; [jobs <= 1] runs inline
    with no spawn). [f] must not share mutable state across calls. An
    exception from one call doesn't stop the other items; after all
    workers join, the lowest-index exception is re-raised. *)
