(* Exploration scenarios: a named workload that can be rebuilt from
   scratch for every schedule. [sc_run] constructs a fresh stack, plants
   the fault plan at setup (so a fault at the same instant as a run
   event fires first — lower sequence number), drives the run to the
   horizon and returns the final observation. Determinism of the
   simulator makes the fault-free observation a stable reference. *)

type t = {
  sc_name : string;
  sc_multi_engine : bool;
  sc_crash_nodes : string list;  (* nodes schedules may crash/restart *)
  sc_nodes : string list;  (* full population (partition peers incl. repo) *)
  sc_run : Fault.t -> Decision.t option -> Oracle.obs;
  sc_judge : reference:Oracle.obs -> Oracle.obs -> Oracle.verdict list;
      (* the oracle battery for this scenario; recovery scenarios extend
         the stock [Oracle.judge] with policy conformance *)
}

(* Generous retry/deadline budget: with restarts always following
   crashes, every workload should still finish — any run that does not
   is a finding, not noise. *)
let engine_config =
  {
    Engine.default_config with
    Engine.default_deadline = Sim.ms 80;
    system_max_attempts = 200;
  }

let horizon = Sim.sec 240

let subscribe_opt sim = function
  | Some c -> Event.subscribe (Sim.events sim) (Decision.subscriber c)
  | None -> ()

let status_string e iid =
  match Engine.status e iid with
  | Some s -> Format.asprintf "%a" Wstate.pp_status s
  | None -> "unknown"

let engine_obs engines =
  let statuses =
    List.concat_map
      (fun (_, e) -> List.map (fun iid -> (iid, status_string e iid)) (Engine.instances e))
      engines
  in
  let histories =
    List.concat_map
      (fun (_, e) -> List.map (fun iid -> (iid, Engine.history e iid)) (Engine.instances e))
      engines
  in
  (statuses, histories)

let chain =
  let sc_run plan collect =
    let tb = Testbed.make ~engine_config ~nodes:[ "n0"; "h1" ] () in
    subscribe_opt tb.Testbed.sim collect;
    Workloads.register ~work:(Sim.ms 5) tb.Testbed.registry;
    Testbed.apply_faults tb plan;
    let script, root = Workloads.chain_remote ~n:6 ~host:"h1" in
    (match
       Testbed.launch_and_run ~until:horizon tb ~script ~root ~inputs:Workloads.seed_inputs
     with
    | Ok _ -> ()
    | Error e -> failwith ("chain launch failed: " ^ e));
    let statuses, histories = engine_obs tb.Testbed.engines in
    Oracle.observe ~statuses ~histories ~participants:tb.Testbed.participants
      ~managers:tb.Testbed.managers ~placements:[] ~directory:[] ~owned:[]
      ~drained:(Sim.pending tb.Testbed.sim = 0) ()
  in
  {
    sc_name = "chain";
    sc_multi_engine = false;
    sc_crash_nodes = [ "n0"; "h1" ];
    sc_nodes = [ "n0"; "h1" ];
    sc_run;
    sc_judge = Oracle.judge;
  }

let supply =
  let sc_run plan collect =
    let tb = Testbed.make ~engine_config () in
    subscribe_opt tb.Testbed.sim collect;
    Supply_chain.register ~work:(Sim.ms 5) ~scenario:Supply_chain.smooth
      tb.Testbed.registry;
    Testbed.apply_faults tb plan;
    (match
       Testbed.launch_and_run ~until:horizon tb ~script:Supply_chain.script
         ~root:Supply_chain.root ~inputs:Supply_chain.inputs
     with
    | Ok _ -> ()
    | Error e -> failwith ("supply-chain launch failed: " ^ e));
    let statuses, histories = engine_obs tb.Testbed.engines in
    Oracle.observe ~statuses ~histories ~participants:tb.Testbed.participants
      ~managers:tb.Testbed.managers ~placements:[] ~directory:[] ~owned:[]
      ~drained:(Sim.pending tb.Testbed.sim = 0) ()
  in
  {
    sc_name = "supply-chain";
    sc_multi_engine = false;
    sc_crash_nodes = [ "n0" ];
    sc_nodes = [ "n0" ];
    sc_run;
    sc_judge = Oracle.judge;
  }

let cluster3 =
  let sc_run plan collect =
    let cl = Cluster.make ~engine_config ~engines:[ "e1"; "e2"; "e3" ] () in
    subscribe_opt (Cluster.sim cl) collect;
    Workloads.register ~work:(Sim.ms 5) (Cluster.registry cl);
    Cluster.apply_faults cl plan;
    let script, root = Workloads.chain ~n:4 in
    for _ = 1 to 6 do
      match Cluster.launch cl ~script ~root ~inputs:Workloads.seed_inputs with
      | Ok _ -> ()
      | Error e -> failwith ("cluster launch failed: " ^ e)
    done;
    Cluster.run ~until:horizon cl;
    let statuses, histories = engine_obs (Cluster.engines cl) in
    let owned =
      List.concat_map
        (fun (eid, e) -> List.map (fun iid -> (iid, eid)) (Engine.instances e))
        (Cluster.engines cl)
    in
    Oracle.observe ~statuses ~histories ~participants:(Cluster.participants cl)
      ~managers:(Cluster.managers cl)
      ~placements:(Repository.placements (Cluster.repository cl))
      ~directory:(Cluster.placements cl) ~owned
      ~drained:(Sim.pending (Cluster.sim cl) = 0) ()
  in
  {
    sc_name = "cluster3";
    sc_multi_engine = true;
    sc_crash_nodes = [ "e1"; "e2"; "e3" ];
    sc_nodes = [ "e1"; "e2"; "e3"; "repo" ];
    sc_run;
    sc_judge = Oracle.judge;
  }

(* --- declarative-recovery scenarios ---

   One scenario per recovery construct, each judged by the stock battery
   {e plus} the policy-conformance oracle holding the engine's durable
   policy rows against the spec the script declared. The work leaf is
   pinned to [h1], so crash and partition schedules land on the
   dispatch/report message boundaries of the recovering task itself. *)

let recovery_scenario ~name ~build ~specs =
  let sc_run plan collect =
    let tb = Testbed.make ~engine_config ~nodes:[ "n0"; "h1" ] () in
    subscribe_opt tb.Testbed.sim collect;
    Workloads.register_recovery tb.Testbed.registry;
    Testbed.apply_faults tb plan;
    let script, root = build ~host:"h1" in
    (match
       Testbed.launch_and_run ~until:horizon tb ~script ~root ~inputs:Workloads.seed_inputs
     with
    | Ok _ -> ()
    | Error e -> failwith (name ^ " launch failed: " ^ e));
    let statuses, histories = engine_obs tb.Testbed.engines in
    Oracle.observe ~statuses ~histories ~participants:tb.Testbed.participants
      ~managers:tb.Testbed.managers ~placements:[] ~directory:[] ~owned:[]
      ~drained:(Sim.pending tb.Testbed.sim = 0) ()
  in
  {
    sc_name = name;
    sc_multi_engine = false;
    sc_crash_nodes = [ "n0"; "h1" ];
    sc_nodes = [ "n0"; "h1" ];
    sc_run;
    sc_judge = Oracle.judge_with ~policy:specs;
  }

let spec ?(codes = []) ?substitute ?compensate ?abort_output ~max_attempts () =
  {
    Oracle.ps_path = "flow/work";
    ps_max_attempts = max_attempts;
    ps_codes = codes;
    ps_substitute = substitute;
    ps_compensate = compensate;
    ps_abort_output = abort_output;
  }

(* [retry 8]: 1 + 8 attempts on the single code *)
let recovery_retry =
  recovery_scenario ~name:"recovery-retry" ~build:Workloads.recovery_retry
    ~specs:[ spec ~codes:[ "r.flaky" ] ~max_attempts:9 () ]

(* no [retry] clause: each band gets the config default budget, and the
   substitute band doubles the grand total *)
let recovery_timeout =
  recovery_scenario ~name:"recovery-timeout" ~build:Workloads.recovery_timeout
    ~specs:
      [
        spec ~codes:[ "r.hang" ] ~substitute:"r.sub"
          ~max_attempts:(2 * engine_config.Engine.system_max_attempts) ();
      ]

(* [retry 4] over primary + one alternative: 5 attempts per band *)
let recovery_alternative =
  recovery_scenario ~name:"recovery-alternative" ~build:Workloads.recovery_alternative
    ~specs:[ spec ~codes:[ "r.dead"; "r.alive" ] ~max_attempts:10 () ]

let recovery_compensate =
  recovery_scenario ~name:"recovery-compensate" ~build:Workloads.recovery_compensate
    ~specs:
      [
        spec ~codes:[ "r.abort" ] ~compensate:"undo" ~abort_output:"failed"
          ~max_attempts:engine_config.Engine.system_max_attempts ();
      ]

let recovery_all =
  [ recovery_retry; recovery_timeout; recovery_alternative; recovery_compensate ]

(* --- replicated-repository scenarios ---

   Three engines over a 3-replica consensus repository. Crash and
   partition schedules may now hit the repository nodes themselves:
   leader crashes mid-placement-write, partitioned leaders, election
   races. Judged by the stock battery — which includes the
   log-linearizability and routed-consistency oracles, fed here with the
   per-replica committed logs and post-drain routed owner lookups. *)

(* [drained] is captured right after the main run: the observation
   phases below schedule fresh traffic past the horizon clock, so they
   drain with an unbounded run and must not launder a stuck main run
   into a clean "drained" verdict. *)
let replicated_obs cl ~drained =
  let statuses, histories = engine_obs (Cluster.engines cl) in
  let owned =
    List.concat_map
      (fun (eid, e) -> List.map (fun iid -> (iid, eid)) (Engine.instances e))
      (Cluster.engines cl)
  in
  (* the fault plan has fully healed by now (restarts always follow
     crashes, partitions lift): one quorum no-op append re-establishes a
     leader if elections went quiescent and pushes every reachable
     replica to the committed tip, so the logs and the routed answers
     below observe the converged group, not a mid-catch-up snapshot *)
  let sync =
    Rlog_client.create ~rpc:(Cluster.rpc cl) ~src:(List.hd (Cluster.engine_ids cl))
      ~replicas:(Cluster.repo_nodes cl) ()
  in
  Rlog_client.append sync ~payload:"" (fun _ -> ());
  Cluster.run cl;
  let placements = Repository.placements (Cluster.repository cl) in
  let routed = ref [] in
  List.iter
    (fun (iid, _) ->
      Cluster.owner_rpc cl ~src:(List.hd (Cluster.engine_ids cl)) ~iid (function
        | Ok (Some o) -> routed := (iid, o) :: !routed
        | Ok None -> routed := (iid, "<none>") :: !routed
        | Error e -> routed := (iid, "<unreachable: " ^ e ^ ">") :: !routed))
    placements;
  Cluster.run cl;
  let logs =
    match Cluster.repo_group cl with Some g -> Repo_group.logs g | None -> []
  in
  Oracle.observe ~logs ~routed:!routed ~statuses ~histories
    ~participants:(Cluster.participants cl) ~managers:(Cluster.managers cl)
    ~placements ~directory:(Cluster.placements cl) ~owned
    ~drained:(drained && Sim.pending (Cluster.sim cl) = 0) ()

(* Decision points must come from the workload run only: the
   observation phases above generate their own cons/repo traffic past
   the horizon clock, and harvesting those instants would aim schedules
   into the observation window instead of the run. *)
let subscribe_gated sim collect =
  let live = ref true in
  (match collect with
  | Some c ->
    Event.subscribe (Sim.events sim) (fun ~at ~src ev ->
        if !live then Decision.subscriber c ~at ~src ev)
  | None -> ());
  fun () -> live := false

let repo_failover =
  let sc_run plan collect =
    let cl = Cluster.make ~engine_config ~engines:[ "e1"; "e2"; "e3" ] ~repo_replicas:3 () in
    let stop_collecting = subscribe_gated (Cluster.sim cl) collect in
    Workloads.register ~work:(Sim.ms 5) (Cluster.registry cl);
    Cluster.apply_faults cl plan;
    let script, root = Workloads.chain ~n:4 in
    for _ = 1 to 6 do
      match Cluster.launch cl ~script ~root ~inputs:Workloads.seed_inputs with
      | Ok _ -> ()
      | Error e -> failwith ("repo-failover launch failed: " ^ e)
    done;
    Cluster.run ~until:horizon cl;
    stop_collecting ();
    replicated_obs cl ~drained:(Sim.pending (Cluster.sim cl) = 0)
  in
  {
    sc_name = "repo-failover";
    sc_multi_engine = true;
    sc_crash_nodes = [ "e1"; "repo1"; "repo2"; "repo3" ];
    sc_nodes = [ "e1"; "e2"; "e3"; "repo1"; "repo2"; "repo3" ];
    sc_run;
    sc_judge = Oracle.judge;
  }

(* A scripted leader crash mid-run: the bootstrap leader repo1 dies
   while placements are in flight and returns later, so the *reference*
   run already contains a failover election — its vote/replicate traffic
   and election events become decision points, and schedules then aim
   crashes of the surviving replicas (and partitions) into the election
   window itself: election races. repo1 is deliberately not in
   [sc_crash_nodes] (the script owns its lifecycle). *)
let repo_election =
  let sc_run plan collect =
    let cl = Cluster.make ~engine_config ~engines:[ "e1"; "e2" ] ~repo_replicas:3 () in
    let stop_collecting = subscribe_gated (Cluster.sim cl) collect in
    Workloads.register ~work:(Sim.ms 5) (Cluster.registry cl);
    Cluster.apply_faults cl plan;
    let sim = Cluster.sim cl in
    ignore (Sim.schedule sim ~delay:(Sim.ms 12) (fun () -> Cluster.crash cl "repo1"));
    ignore (Sim.schedule sim ~delay:(Sim.ms 120) (fun () -> Cluster.recover cl "repo1"));
    let script, root = Workloads.chain ~n:4 in
    for _ = 1 to 6 do
      match Cluster.launch cl ~script ~root ~inputs:Workloads.seed_inputs with
      | Ok _ -> ()
      | Error e -> failwith ("repo-election launch failed: " ^ e)
    done;
    Cluster.run ~until:horizon cl;
    stop_collecting ();
    replicated_obs cl ~drained:(Sim.pending (Cluster.sim cl) = 0)
  in
  {
    sc_name = "repo-election";
    sc_multi_engine = true;
    sc_crash_nodes = [ "e1"; "repo2"; "repo3" ];
    sc_nodes = [ "e1"; "e2"; "repo1"; "repo2"; "repo3" ];
    sc_run;
    sc_judge = Oracle.judge;
  }

let replication_all = [ repo_failover; repo_election ]

let all = [ chain; supply; cluster3 ]

let by_name name =
  List.find_opt (fun s -> s.sc_name = name) (all @ recovery_all @ replication_all)
