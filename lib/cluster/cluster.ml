(* The sharded multi-engine layer (paper §3, Fig 4: a repository service
   plus execution services — plural).

   One Cluster owns N engines on N nodes plus the repository service.
   Workflow launches are routed to an engine by a deterministic
   placement policy; the (iid -> engine) assignment is persisted through
   the repository service so any node can resolve ownership; status and
   admin operations route through the directory. Engines never learn
   about each other — the per-engine service namespacing (Wfmsg) and
   per-engine event source labels keep their worlds apart on the shared
   fabric. *)

type policy = Round_robin | Hash_iid

(* One repository node, or a consensus-replicated set of them. *)
type backend =
  | Single of Repository.t
  | Replicated of Repo_group.t

type t = {
  tb : Testbed.t;
  repo : backend;
  repo_ids : string list;
  policy : policy;
  metrics : Metrics.t;
  directory : (string, string) Hashtbl.t;  (* iid -> engine node; router's cache *)
  clients : (string * Repo_client.t) list;  (* repository client per engine node *)
  owner_clients : (string, Repo_client.t) Hashtbl.t;
      (* per-source clients for directory lookups, cached across calls *)
  mutable seq : int;
  mutable pending_assigns : (string * string) list;
      (* (iid, eid) placement writes awaiting the batched flush, newest
         first — every launch of one poll instant rides one
         repo.assign_batch RPC per engine instead of one RPC each *)
  mutable assign_armed : bool;
  batch_assigns : bool;
      (* follows the engines' [incremental] config: the naive
         pre-refactor mode pushes one repo.assign RPC per launch *)
}

(* How long to wait before re-trying a placement write that exhausted
   the RPC layer's own retries (repository unreachable). *)
let assign_retry_period = Sim.ms 50

(* Batched placement writes: assignments enqueued within one simulation
   timestep flush together, grouped into one [repo.assign_batch] RPC per
   owning engine. The RPC already retries transient losses; the re-queue
   on error covers a repository outage longer than the RPC budget, and
   the recovery hook installed in [make] covers the remaining hole — the
   owning engine's node crashing while the call is outstanding (the
   callback is then never invoked, so no loop survives to retry). *)
let rec flush_assigns t =
  t.assign_armed <- false;
  let pending = List.rev t.pending_assigns in
  t.pending_assigns <- [];
  List.iter
    (fun eid ->
      match List.filter_map (fun (iid, e) -> if e = eid then Some iid else None) pending with
      | [] -> ()
      | iids ->
        let pairs = List.map (fun iid -> (iid, eid)) iids in
        Metrics.incr t.metrics "cluster.assign_batches";
        Repo_client.assign_many (List.assoc eid t.clients) ~pairs (function
          | Ok () -> ()
          | Error _ ->
            ignore
              (Sim.schedule t.tb.Testbed.sim ~delay:assign_retry_period (fun () ->
                   (* only re-push pairs the router still believes in:
                      a relaunch elsewhere must not be overwritten *)
                   let still =
                     List.filter
                       (fun (iid, _) -> Hashtbl.find_opt t.directory iid = Some eid)
                       pairs
                   in
                   if still <> [] then begin
                     t.pending_assigns <- List.rev_append still t.pending_assigns;
                     arm_assigns t
                   end))))
    (List.map fst t.tb.Testbed.engines)

and arm_assigns t =
  if not t.assign_armed then begin
    t.assign_armed <- true;
    ignore (Sim.schedule t.tb.Testbed.sim ~delay:0 (fun () -> flush_assigns t))
  end

(* The pre-refactor path: one assignment, one RPC, its own retry loop. *)
let rec assign_direct t ~iid ~eid =
  Repo_client.assign (List.assoc eid t.clients) ~iid ~engine:eid (function
    | Ok () -> ()
    | Error _ ->
      ignore
        (Sim.schedule t.tb.Testbed.sim ~delay:assign_retry_period (fun () ->
             if Hashtbl.find_opt t.directory iid = Some eid then assign_direct t ~iid ~eid)))

let ensure_assigned t ~iid ~eid =
  if t.batch_assigns then begin
    t.pending_assigns <- (iid, eid) :: t.pending_assigns;
    arm_assigns t
  end
  else assign_direct t ~iid ~eid

let make ?config ?engine_config ?seed ?(policy = Round_robin) ?(hosts = [])
    ?(repo_node = "repo") ?(repo_replicas = 1) ~engines () =
  if engines = [] then invalid_arg "Cluster.make: need at least one engine";
  if repo_replicas < 1 then invalid_arg "Cluster.make: repo_replicas must be >= 1";
  let repo_ids =
    if repo_replicas = 1 then [ repo_node ]
    else List.init repo_replicas (fun i -> Printf.sprintf "%s%d" repo_node (i + 1))
  in
  List.iter
    (fun id ->
      if List.mem id engines || List.mem id hosts then
        invalid_arg ("Cluster.make: node id " ^ id ^ " is reserved for the repository"))
    repo_ids;
  let nodes = engines @ hosts @ repo_ids in
  let tb = Testbed.make ?config ?engine_config ?seed ~nodes ~engines () in
  let repo =
    if repo_replicas = 1 then
      Single (Repository.create ~rpc:tb.Testbed.rpc ~node:(Testbed.node tb repo_node))
    else
      Replicated
        (Repo_group.create ~rpc:tb.Testbed.rpc
           ~nodes:(List.map (Testbed.node tb) repo_ids))
  in
  let metrics = Metrics.create () in
  Metrics.attach_labelled metrics (Sim.events tb.Testbed.sim);
  let client_for src =
    match repo with
    | Single _ -> Repo_client.create ~rpc:tb.Testbed.rpc ~src ~repo_node
    | Replicated _ ->
      Repo_client.create_replicated ~rpc:tb.Testbed.rpc ~src ~replicas:repo_ids ()
  in
  let clients = List.map (fun (eid, _) -> (eid, client_for eid)) tb.Testbed.engines in
  let t =
    { tb; repo; repo_ids; policy; metrics; directory = Hashtbl.create 32; clients;
      owner_clients = Hashtbl.create 4; seq = 0; pending_assigns = []; assign_armed = false;
      batch_assigns =
        (match engine_config with Some c -> c.Engine.incremental | None -> true) }
  in
  (* every engine answers wf.admin.* on its own node, so consoles (and
     the routed policy-budget query below) can reach any shard *)
  List.iter (fun (_, e) -> Admin.serve e) tb.Testbed.engines;
  (* an engine crash can swallow in-flight placement writes (the caller
     died, so nobody retries): re-assert every assignment the router
     believes the engine owns once its node comes back *)
  List.iter
    (fun (eid, _) ->
      Node.on_recover (Testbed.node tb eid) (fun () ->
          Hashtbl.iter
            (fun iid owner -> if owner = eid then ensure_assigned t ~iid ~eid)
            t.directory))
    tb.Testbed.engines;
  t

let sim t = t.tb.Testbed.sim

let net t = t.tb.Testbed.net

let rpc t = t.tb.Testbed.rpc

let registry t = t.tb.Testbed.registry

let repository t =
  match t.repo with
  | Single r -> r
  | Replicated g -> Repo_group.authoritative g

let repo_group t = match t.repo with Single _ -> None | Replicated g -> Some g

let repo_nodes t = t.repo_ids

let metrics t = t.metrics

let engines t = t.tb.Testbed.engines

let participants t = t.tb.Testbed.participants

let managers t = t.tb.Testbed.managers

let node_ids t = Testbed.node_ids t.tb

let engine_ids t = List.map fst (engines t)

let engine t id =
  match List.assoc_opt id (engines t) with
  | Some e -> e
  | None -> invalid_arg ("Cluster.engine: no engine on node " ^ id)

(* --- placement --- *)

(* stable string hash (djb2) — OCaml's Hashtbl.hash is also stable, but
   spelling it out keeps placement reproducible by inspection *)
let hash_iid s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h * 33) + Char.code c) land 0x3FFFFFFF) s;
  !h

let place t ~iid =
  let ids = engine_ids t in
  let n = List.length ids in
  match t.policy with
  | Round_robin -> List.nth ids ((t.seq - 1) mod n)
  | Hash_iid -> List.nth ids (hash_iid iid mod n)

let launch t ~script ~root ~inputs =
  t.seq <- t.seq + 1;
  let iid = Printf.sprintf "wf-c%d" t.seq in
  let eid = place t ~iid in
  match Engine.launch (engine t eid) ~iid ~script ~root ~inputs with
  | Error e ->
    t.seq <- t.seq - 1;
    Error e
  | Ok iid ->
    Hashtbl.replace t.directory iid eid;
    (* make the assignment durable through the repository service, from
       the owning engine's node — any node can then resolve it; retried
       until the repository acknowledges *)
    ensure_assigned t ~iid ~eid;
    Ok (iid, eid)

let owner t iid = Hashtbl.find_opt t.directory iid

let owner_rpc t ~src ~iid k =
  let client =
    match Hashtbl.find_opt t.owner_clients src with
    | Some c -> c
    | None ->
      let c =
        match t.repo with
        | Single _ -> Repo_client.create ~rpc:(rpc t) ~src ~repo_node:(List.hd t.repo_ids)
        | Replicated _ -> Repo_client.create_replicated ~rpc:(rpc t) ~src ~replicas:t.repo_ids ()
      in
      Hashtbl.replace t.owner_clients src c;
      c
  in
  Repo_client.owner client ~iid (function
    | Ok o -> k (Ok o)
    | Error e ->
      (* connection failure: drop the cached client so the next lookup
         starts from a clean leader guess instead of retrying a dead
         node forever *)
      Repo_client.invalidate client;
      Hashtbl.remove t.owner_clients src;
      k (Error e))

let placements t =
  Hashtbl.fold (fun iid eid acc -> (iid, eid) :: acc) t.directory [] |> List.sort compare

(* --- routed queries and admin --- *)

let with_owner t iid f = Option.map (fun eid -> f (engine t eid)) (owner t iid)

let status t iid = Option.join (with_owner t iid (fun e -> Engine.status e iid))

let on_complete t iid cb =
  ignore (with_owner t iid (fun e -> Engine.on_complete e iid cb))

let cancel t iid ~reason k =
  match owner t iid with
  | None -> k (Error ("no such instance " ^ iid))
  | Some eid -> Engine.cancel (engine t eid) iid ~reason k

let policy_budgets t iid =
  match with_owner t iid (fun e -> Engine.policy_budgets e iid) with
  | Some budgets -> budgets
  | None -> []

let policy_budgets_rpc t ~src ~iid k =
  owner_rpc t ~src ~iid (function
    | Error e -> k (Error e)
    | Ok None -> k (Error ("no owner recorded for " ^ iid))
    | Ok (Some eid) ->
      let admin = Admin.Client.create ~rpc:(rpc t) ~src ~engine_node:eid in
      Admin.Client.policy_budgets admin ~iid k)

let instances_of t eid = Engine.instances (engine t eid)

let per_engine_instances t =
  List.map (fun (eid, e) -> (eid, List.length (Engine.instances e))) (engines t)

let dispatches_total t =
  List.fold_left (fun acc (_, e) -> acc + Engine.dispatches_total e) 0 (engines t)

let completions_total t =
  List.fold_left (fun acc (_, e) -> acc + Engine.completions_total e) 0 (engines t)

(* --- driving the simulation and faults --- *)

let run ?until t = Testbed.run ?until t.tb

let crash t id = Testbed.crash t.tb id

let recover t id = Testbed.recover t.tb id

let apply_faults t plan = Testbed.apply_faults t.tb plan
