(** Sharded multi-engine cluster: N execution services + the repository
    service on one simulated fabric, with deterministic instance
    placement (paper §3, Fig 4 — "execution services", plural).

    Launches are routed to an engine by a placement {!policy}; the
    [iid -> engine] assignment is persisted through the repository's
    placement directory so any node can resolve ownership; status and
    admin queries route through the same directory. Engines coexist
    without knowing of each other: completion/mark/exec services are
    namespaced per engine node ({!Wfmsg}), and every engine scopes its
    trace and metrics to its own event-source label. *)

type policy =
  | Round_robin  (** k-th launch goes to engine [k mod n] *)
  | Hash_iid  (** stable hash of the instance id, mod n *)

type t

val make :
  ?config:Network.config ->
  ?engine_config:Engine.config ->
  ?seed:int64 ->
  ?policy:policy ->
  ?hosts:string list ->
  ?repo_node:string ->
  ?repo_replicas:int ->
  engines:string list ->
  unit ->
  t
(** [engines] names the engine nodes (one engine each). [hosts] adds
    pure task-host nodes; every node hosts tasks for every engine. The
    repository service lives on [repo_node] (default ["repo"]) — or,
    with [repo_replicas = n >= 2], on a consensus-replicated group of
    [n] nodes named [<repo_node>1 .. <repo_node>n] ({!Repo_group}):
    placement writes then commit by quorum and the directory survives
    any minority of repository crashes, with engine clients failing
    over to the elected leader. [policy] defaults to [Round_robin].
    Same seed + same calls = identical placement and results. *)

val sim : t -> Sim.t

val net : t -> Network.t

val rpc : t -> Rpc.t

val registry : t -> Registry.t

val repository : t -> Repository.t
(** The repository's durable state: the single node's store, or — when
    replicated — the most advanced replica's ({!Repo_group.authoritative}). *)

val repo_group : t -> Repo_group.t option
(** The consensus-replicated repository, when [repo_replicas >= 2]. *)

val repo_nodes : t -> string list
(** The repository node id(s): [[repo_node]] or the replica set. *)

val metrics : t -> Metrics.t
(** Cluster-wide registry: unlabelled totals plus
    [cluster.<engine>.<counter>] per-engine breakdowns
    ({!Metrics.attach_labelled}). *)

val engines : t -> (string * Engine.t) list

val engine_ids : t -> string list

val participants : t -> (string * Participant.t) list
(** Per-node transaction participants (engines, hosts and the repository
    node alike) — inspected by the fault-exploration oracles. *)

val managers : t -> (string * Txn.manager) list

val node_ids : t -> string list
(** Every node id on the fabric, including hosts and the repository. *)

val engine : t -> string -> Engine.t

(** {1 Placement and launch} *)

val launch :
  t ->
  script:string ->
  root:string ->
  inputs:(string * Value.obj) list ->
  (string * string, string) result
(** Route a launch through the placement policy. Returns
    [(iid, engine_node)]. The assignment is recorded in the local
    directory cache immediately and persisted through the repository
    service asynchronously. *)

val owner : t -> string -> string option
(** Which engine owns this instance (router's directory cache)? *)

val owner_rpc :
  t -> src:string -> iid:string -> ((string option, string) result -> unit) -> unit
(** The durable answer, over RPC from any attached node [src] to the
    repository's placement directory. *)

val placements : t -> (string * string) list
(** All cached [(iid, engine)] assignments, sorted. *)

(** {1 Routed queries and admin} *)

val status : t -> string -> Wstate.status option

val on_complete : t -> string -> (Wstate.status -> unit) -> unit

val cancel : t -> string -> reason:string -> ((unit, string) result -> unit) -> unit

val policy_budgets : t -> string -> Engine.policy_budget list
(** Recovery-policy budget counters of the owning engine's instance
    (attempts used, backoff remaining, compensations fired); empty when
    the instance is unknown. *)

val policy_budgets_rpc :
  t ->
  src:string ->
  iid:string ->
  ((Engine.policy_budget list, string) result -> unit) ->
  unit
(** The same counters resolved entirely over the fabric: the owner is
    looked up in the repository's placement directory, then the owning
    engine's [wf.admin.policy] service answers. *)

val instances_of : t -> string -> string list
(** Instance ids owned by the engine on the given node. *)

val per_engine_instances : t -> (string * int) list

val dispatches_total : t -> int
(** Aggregate dispatches across all engines. *)

val completions_total : t -> int

(** {1 Driving the simulation} *)

val run : ?until:Sim.time -> t -> unit

val crash : t -> string -> unit

val recover : t -> string -> unit

val apply_faults : t -> Fault.t -> unit
(** Apply a declarative fault plan by node id (see
    {!Testbed.apply_faults}). *)
