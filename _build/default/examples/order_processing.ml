(* Electronic order processing (paper §5.2, Fig 7), run distributed:
   each constituent is placed on its own node of the simulated cluster
   with a lossy network, showing that dependency propagation is reliable
   (transactional + retried) even when every message can be dropped.

   Run with: dune exec examples/order_processing.exe *)

let order = [ ("order", Value.obj ~cls:"Order" (Value.Str "order-1138")) ]

(* Place each task on its own node by rewriting the implementation
   clauses — the script stays the paper's, only placement changes. *)
let placed_script =
  let place code node src =
    let marker = Printf.sprintf "implementation { \"code\" is %S }" code in
    let replacement =
      Printf.sprintf "implementation { \"code\" is %S, \"location\" is %S }" code node
    in
    let ml = String.length marker in
    let rec go s i =
      if i + ml > String.length s then s
      else if String.sub s i ml = marker then
        String.sub s 0 i ^ replacement ^ String.sub s (i + ml) (String.length s - i - ml)
      else go s (i + 1)
    in
    go src 0
  in
  Paper_scripts.process_order
  |> place "refPaymentAuthorisation" "bank"
  |> place "refCheckStock" "warehouse"
  |> place "refDispatch" "warehouse"
  |> place "refPaymentCapture" "bank"

let run label scenario =
  let config = { Network.default_config with Network.loss = 0.2 } in
  let tb = Testbed.make ~config ~nodes:[ "hq"; "bank"; "warehouse" ] () in
  Impls.register_process_order ~scenario tb.Testbed.registry;
  match
    Testbed.launch_and_run tb ~script:placed_script ~root:Paper_scripts.process_order_root
      ~inputs:order
  with
  | Ok (iid, Wstate.Wf_done { output; objects }) ->
    Format.printf "%-24s -> %s@." label output;
    List.iter (fun (name, obj) -> Format.printf "    %s = %a@." name Value.pp_obj obj) objects;
    Format.printf "    messages: %d sent, %d dropped by the lossy network@."
      (Network.sent_total tb.Testbed.net) (Network.dropped_total tb.Testbed.net);
    ignore iid
  | Ok (_, status) -> Format.printf "%-24s -> %a@." label Wstate.pp_status status
  | Error e -> Format.printf "%-24s -> error: %s@." label e

let () =
  print_endline "process order application (paper Fig 7), tasks placed on 3 nodes, 20% loss";
  print_endline "---------------------------------------------------------------------------";
  run "happy path" Impls.order_ok;
  run "payment refused" { Impls.order_ok with Impls.authorised = false };
  run "out of stock" { Impls.order_ok with Impls.in_stock = false };
  run "dispatch aborts" { Impls.order_ok with Impls.dispatch_ok = false };
  print_endline "\nNote: dispatchFailed is an abort outcome — the Dispatch task is atomic,";
  print_endline "so a failed dispatch leaves no side effects and simply feeds the";
  print_endline "orderCancelled fan-in, exactly as the paper's script specifies."
