(* Supply-chain order fulfillment: every language feature in one
   application — a task template instantiated per supplier, object
   subtyping (CardPayment where Payment is expected), a timer bounding
   the wait for quotes, an atomic reservation auto-restarted after
   aborts, priorities (ship before invoice), and compensation (a failed
   shipment releases the reserved inventory).

   Run with: dune exec examples/supply_chain_demo.exe *)

let run label scenario =
  Format.printf "@.%s@.%s@." label (String.make (String.length label) '-');
  let tb = Testbed.make () in
  Supply_chain.register ~scenario tb.Testbed.registry;
  (match
     Testbed.launch_and_run tb ~script:Supply_chain.script ~root:Supply_chain.root
       ~inputs:Supply_chain.inputs
   with
  | Ok (_, Wstate.Wf_done { output; objects }) ->
    Format.printf "outcome: %s@." output;
    List.iter (fun (name, obj) -> Format.printf "  %s = %a@." name Value.pp_obj obj) objects
  | Ok (_, status) -> Format.printf "status: %a@." Wstate.pp_status status
  | Error e -> Format.printf "error: %s@." e);
  print_string (Gantt.render (Engine.trace tb.Testbed.engine))

let () =
  run "smooth fulfillment" Supply_chain.smooth;
  run "reservation aborts twice, auto-restarted"
    { Supply_chain.smooth with Supply_chain.reserve_aborts = 2 };
  run "no supplier answers: quote timer fires, order rejected"
    { Supply_chain.smooth with Supply_chain.supplier_a_quotes = false; supplier_b_quotes = false };
  run "shipping fails: inventory released (compensation)"
    { Supply_chain.smooth with Supply_chain.ship_ok = false }
