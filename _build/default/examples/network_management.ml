(* Network management (paper §5.1, Fig 6): the service impact
   application — alarm correlation, impact analysis, impact resolution —
   run through each of its outcomes. The same script is reused as a
   "template application" by swapping the implementations bound to its
   code names, which is exactly the configurability point §5.1 makes.

   Run with: dune exec examples/network_management.exe *)

let alarms = [ ("alarmsSource", Value.obj ~cls:"AlarmsSource" (Value.Str "alarm-feed-7")) ]

let run_scenario label scenario =
  let tb = Testbed.make () in
  Impls.register_service_impact ~scenario tb.Testbed.registry;
  match
    Testbed.launch_and_run tb ~script:Paper_scripts.service_impact
      ~root:Paper_scripts.service_impact_root ~inputs:alarms
  with
  | Ok (_, Wstate.Wf_done { output; objects }) ->
    Format.printf "%-28s -> %s@." label output;
    List.iter (fun (name, obj) -> Format.printf "%-28s    %s = %a@." "" name Value.pp_obj obj) objects
  | Ok (_, status) -> Format.printf "%-28s -> %a@." label Wstate.pp_status status
  | Error e -> Format.printf "%-28s -> error: %s@." label e

let () =
  print_endline "service impact application (paper Fig 6)";
  print_endline "----------------------------------------";
  run_scenario "fault found and resolved" Impls.Impact_resolved;
  run_scenario "fault found, no resolution" Impls.Impact_not_resolved;
  run_scenario "correlator fails" Impls.Impact_correlator_fails;

  (* The failure outcome demonstrates the fan-in of alternative
     notification sources: any of the three constituent failures
     produces serviceImpactApplicationFailure. *)
  print_endline "\nswapping implementations at instantiation time:";
  let tb = Testbed.make () in
  Impls.register_service_impact ~scenario:Impls.Impact_resolved tb.Testbed.registry;
  (* Upgrade the resolver online: subsequent instances use the new one. *)
  Registry.bind tb.Testbed.registry ~code:"refServiceImpactResolution"
    (Registry.const "foundResolution"
       [ ("resolutionReport", Value.Str "v2-resolver: shift traffic to backup ring") ]);
  (match
     Testbed.launch_and_run tb ~script:Paper_scripts.service_impact
       ~root:Paper_scripts.service_impact_root ~inputs:alarms
   with
  | Ok (_, Wstate.Wf_done { objects; _ }) ->
    List.iter (fun (name, obj) -> Format.printf "  %s = %a@." name Value.pp_obj obj) objects
  | Ok (_, status) -> Format.printf "  unexpected: %a@." Wstate.pp_status status
  | Error e -> Format.printf "  error: %s@." e);

  print_endline "\nstructure (Graphviz):";
  match Frontend.compile Paper_scripts.service_impact ~root:Paper_scripts.service_impact_root with
  | Ok schema -> print_string (Dot.of_task schema)
  | Error e -> Format.printf "compile error: %s@." (Frontend.error_to_string e)
