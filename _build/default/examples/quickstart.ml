(* Quickstart: the paper's Fig 1 — four tasks where t2 and t3 start once
   t1 finishes (dataflow from t1) and t4 joins both. Shows the minimal
   public-API path: build a testbed, register implementations, launch a
   script, read the outcome and the execution trace.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A one-node simulated cluster with engine + transaction stack. *)
  let tb = Testbed.make () in

  (* Bind the three implementation names the script references. *)
  Impls.register_quickstart tb.Testbed.registry;

  (* Launch the Fig 1 diamond with an external seed object and run the
     simulation until it drains. *)
  let result =
    Testbed.launch_and_run tb ~script:Paper_scripts.quickstart
      ~root:Paper_scripts.quickstart_root
      ~inputs:[ ("seed", Value.obj ~cls:"Data" (Value.Int 21)) ]
  in
  (match result with
  | Ok (iid, Wstate.Wf_done { output; objects }) ->
    Format.printf "instance %s finished in outcome %s@." iid output;
    List.iter (fun (name, obj) -> Format.printf "  %s = %a@." name Value.pp_obj obj) objects
  | Ok (_, status) -> Format.printf "unexpected status: %a@." Wstate.pp_status status
  | Error e -> Format.printf "error: %s@." e);

  (* The trace regenerates Fig 1's ordering: t2/t3 released together
     after t1, t4 after both. *)
  print_endline "\nexecution trace:";
  Trace.dump Format.std_formatter (Engine.trace tb.Testbed.engine);

  print_endline "\ntimeline (the paper's Fig 1, as a Gantt chart):";
  print_string (Gantt.render (Engine.trace tb.Testbed.engine));

  (* And the structure itself, as Graphviz (paper Fig 1). *)
  (match Frontend.compile Paper_scripts.quickstart ~root:Paper_scripts.quickstart_root with
  | Ok schema ->
    print_endline "\ngraphviz (render with `dot -Tpng`):";
    print_string (Dot.of_task schema)
  | Error e -> Format.printf "compile error: %s@." (Frontend.error_to_string e))
