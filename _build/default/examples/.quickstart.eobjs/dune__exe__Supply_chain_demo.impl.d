examples/supply_chain_demo.ml: Engine Format Gantt List String Supply_chain Testbed Value Wstate
