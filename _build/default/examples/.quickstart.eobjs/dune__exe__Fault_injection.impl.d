examples/fault_injection.ml: Baseline Engine Fault Format Impls Network Node Paper_scripts Registry Sim Testbed Value Wstate
