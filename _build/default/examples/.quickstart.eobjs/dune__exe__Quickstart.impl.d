examples/quickstart.ml: Dot Engine Format Frontend Gantt Impls List Paper_scripts Testbed Trace Value Wstate
