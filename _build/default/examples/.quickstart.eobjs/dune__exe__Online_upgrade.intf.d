examples/online_upgrade.mli:
