examples/quickstart.mli:
