examples/supply_chain_demo.mli:
