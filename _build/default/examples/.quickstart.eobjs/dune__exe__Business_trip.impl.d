examples/business_trip.ml: Engine Format Impls List Paper_scripts String Testbed Trace Value Wstate
