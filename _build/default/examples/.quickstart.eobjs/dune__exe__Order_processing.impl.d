examples/order_processing.ml: Format Impls List Network Paper_scripts Printf String Testbed Value Wstate
