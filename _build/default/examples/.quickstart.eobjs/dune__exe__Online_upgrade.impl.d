examples/online_upgrade.ml: Engine Format Impls List Paper_scripts Parser Reconfig Registry Repo_client Repository Sim Testbed Value Wstate
