examples/network_management.ml: Dot Format Frontend Impls List Paper_scripts Registry Testbed Value Wstate
