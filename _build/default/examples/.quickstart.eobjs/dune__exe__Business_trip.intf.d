examples/business_trip.mli:
