(* Business trip (paper §5.3, Figs 8-9): the richest example —
   - parallel airline queries inside a nested compound task,
   - a mark output (toPay) released before the workflow finishes,
   - compensation (flightCancellation undoes a reserved flight when the
     hotel cannot be booked),
   - the businessReservation retry loop through its repeat outcome.

   Run with: dune exec examples/business_trip.exe *)

let user = [ ("user", Value.obj ~cls:"User" (Value.Str "fred")) ]

let narrate trace =
  let interesting (e : Trace.entry) =
    match e.Trace.kind with
    | "start" | "complete" | "mark" | "repeat" | "instance" -> true
    | _ -> false
  in
  List.iter
    (fun (e : Trace.entry) -> if interesting e then Format.printf "  %a@." Trace.pp_entry e)
    (Trace.entries trace)

let run label scenario =
  Format.printf "@.%s@.%s@." label (String.make (String.length label) '-');
  let tb = Testbed.make () in
  Impls.register_business_trip ~scenario tb.Testbed.registry;
  (match
     Testbed.launch_and_run tb ~script:Paper_scripts.business_trip
       ~root:Paper_scripts.business_trip_root ~inputs:user
   with
  | Ok (iid, Wstate.Wf_done { output; objects }) ->
    Format.printf "outcome: %s@." output;
    List.iter (fun (name, obj) -> Format.printf "  %s = %a@." name Value.pp_obj obj) objects;
    let marks = Engine.marks_of tb.Testbed.engine iid ~path:[ "tripReservation" ] in
    List.iter
      (fun (name, objects) ->
        Format.printf "mark %s released early:@." name;
        List.iter (fun (n, o) -> Format.printf "  %s = %a@." n Value.pp_obj o) objects)
      marks
  | Ok (_, status) -> Format.printf "status: %a@." Wstate.pp_status status
  | Error e -> Format.printf "error: %s@." e);
  narrate (Engine.trace tb.Testbed.engine)

let () =
  run "smooth trip (first flight found, hotel books immediately)" Impls.trip_smooth;
  run "hotel full twice: flight compensated, reservation retried"
    { Impls.trip_smooth with Impls.hotel_fails_rounds = 2 };
  run "no flight anywhere: the whole reservation aborts"
    { Impls.trip_smooth with Impls.flights_found = (false, false, false) }
