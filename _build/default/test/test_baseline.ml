(* Tests for the baseline (non-fault-tolerant) scheduler: functional
   parity with the engine on the paper's applications, and the crash
   behaviour the A1 ablation measures (lost work, restart from
   scratch). *)

let check = Alcotest.(check bool)

let check_str = Alcotest.(check string)

let make () =
  let sim = Sim.create ~seed:11L () in
  let net = Network.create sim in
  let node = Network.add_node net ~id:"b0" in
  let registry = Registry.create () in
  let baseline = Baseline.create ~sim ~node ~registry in
  (sim, node, registry, baseline)

let run_to_status sim baseline iid =
  Sim.run sim;
  match Baseline.status baseline iid with
  | Some s -> s
  | None -> Alcotest.fail "instance vanished"

let expect_done ~output status =
  match status with
  | Wstate.Wf_done { output = o; objects } ->
    check_str "outcome" output o;
    objects
  | Wstate.Wf_running -> Alcotest.fail "still running"
  | Wstate.Wf_failed reason -> Alcotest.failf "failed: %s" reason

let launch_ok baseline ~script ~root ~inputs =
  match Baseline.launch baseline ~script ~root ~inputs with
  | Ok iid -> iid
  | Error e -> Alcotest.failf "launch: %s" e

let test_baseline_runs_quickstart () =
  let sim, _, registry, baseline = make () in
  Impls.register_quickstart registry;
  let iid =
    launch_ok baseline ~script:Paper_scripts.quickstart ~root:Paper_scripts.quickstart_root
      ~inputs:[ ("seed", Value.obj ~cls:"Data" (Value.Int 4)) ]
  in
  let objects = expect_done ~output:"finished" (run_to_status sim baseline iid) in
  (match List.assoc_opt "data" objects with
  | Some { Value.payload = v; _ } -> check_str "joined" "[8; 8]" (Format.asprintf "%a" Value.pp v)
  | None -> Alcotest.fail "no data object")

let test_baseline_runs_order_scenarios () =
  let expect scenario output =
    let sim, _, registry, baseline = make () in
    Impls.register_process_order ~scenario registry;
    let iid =
      launch_ok baseline ~script:Paper_scripts.process_order
        ~root:Paper_scripts.process_order_root
        ~inputs:[ ("order", Value.obj ~cls:"Order" (Value.Str "o")) ]
    in
    ignore (expect_done ~output (run_to_status sim baseline iid))
  in
  expect Impls.order_ok "orderCompleted";
  expect { Impls.order_ok with Impls.authorised = false } "orderCancelled";
  expect { Impls.order_ok with Impls.dispatch_ok = false } "orderCancelled"

let test_baseline_runs_business_trip_with_retries () =
  let sim, _, registry, baseline = make () in
  Impls.register_business_trip
    ~scenario:{ Impls.trip_smooth with Impls.hotel_fails_rounds = 1 }
    registry;
  let iid =
    launch_ok baseline ~script:Paper_scripts.business_trip ~root:Paper_scripts.business_trip_root
      ~inputs:[ ("user", Value.obj ~cls:"User" (Value.Str "fred")) ]
  in
  ignore (expect_done ~output:"done" (run_to_status sim baseline iid))

let test_baseline_crash_loses_and_restarts () =
  let sim, node, registry, baseline = make () in
  (* slow tasks so the crash lands mid-run *)
  Impls.register_process_order ~work:(Sim.ms 30) ~scenario:Impls.order_ok registry;
  let iid =
    launch_ok baseline ~script:Paper_scripts.process_order ~root:Paper_scripts.process_order_root
      ~inputs:[ ("order", Value.obj ~cls:"Order" (Value.Str "o")) ]
  in
  ignore (Sim.schedule sim ~delay:(Sim.ms 40) (fun () -> Node.crash node));
  ignore (Sim.schedule sim ~delay:(Sim.ms 60) (fun () -> Node.recover node));
  let status = run_to_status sim baseline iid in
  ignore (expect_done ~output:"orderCompleted" status);
  check "restarted from scratch" true (Baseline.restarts_total baseline = 1);
  (* 4 tasks per clean run; the pre-crash partial run re-executed some *)
  check "work was wasted" true (Baseline.tasks_executed_total baseline > 4)

let test_baseline_executes_each_task_once_without_faults () =
  let sim, _, registry, baseline = make () in
  Impls.register_process_order ~scenario:Impls.order_ok registry;
  let iid =
    launch_ok baseline ~script:Paper_scripts.process_order ~root:Paper_scripts.process_order_root
      ~inputs:[ ("order", Value.obj ~cls:"Order" (Value.Str "o")) ]
  in
  ignore (expect_done ~output:"orderCompleted" (run_to_status sim baseline iid));
  Alcotest.(check int) "four executions" 4 (Baseline.tasks_executed_total baseline)

let () =
  Alcotest.run "baseline"
    [
      ( "parity",
        [
          Alcotest.test_case "quickstart" `Quick test_baseline_runs_quickstart;
          Alcotest.test_case "order scenarios" `Quick test_baseline_runs_order_scenarios;
          Alcotest.test_case "business trip" `Quick test_baseline_runs_business_trip_with_retries;
          Alcotest.test_case "task count" `Quick test_baseline_executes_each_task_once_without_faults;
        ] );
      ( "faults",
        [ Alcotest.test_case "crash restarts from scratch" `Quick test_baseline_crash_loses_and_restarts ] );
    ]
