(* Property tests over the synthetic workload generators: every
   generated script must validate cleanly and run to its [finished]
   outcome with the structurally expected number of dispatches. These
   double as randomized end-to-end tests of the whole stack. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let run_workload (script, root) =
  let tb = Testbed.make () in
  Workloads.register tb.Testbed.registry;
  match Testbed.launch_and_run tb ~script ~root ~inputs:Workloads.seed_inputs with
  | Ok (iid, status) -> (tb, iid, status)
  | Error e -> Alcotest.failf "workload failed to launch: %s" e

let finished = function
  | Wstate.Wf_done { output = "finished"; _ } -> true
  | _ -> false

(* --- deterministic structural checks --- *)

let test_chain_dispatch_count () =
  let tb, _, status = run_workload (Workloads.chain ~n:10) in
  check "finished" true (finished status);
  check_int "one dispatch per stage" 10 (Engine.dispatches_total tb.Testbed.engine)

let test_fanout_dispatch_count () =
  let tb, _, status = run_workload (Workloads.fanout ~width:7) in
  check "finished" true (finished status);
  (* source + 7 workers + join *)
  check_int "w+2 dispatches" 9 (Engine.dispatches_total tb.Testbed.engine)

let test_fanout_parallelism () =
  let tb, _, _ = run_workload (Workloads.fanout ~width:5) in
  let trace = Engine.trace tb.Testbed.engine in
  let starts =
    List.filter_map
      (fun (e : Trace.entry) ->
        if e.Trace.kind = "start" && String.length e.Trace.detail > 8
           && String.sub e.Trace.detail 0 8 = "fanout/w"
        then Some e.Trace.at
        else None)
      (Trace.entries trace)
  in
  check_int "five workers started" 5 (List.length starts);
  check "all released at the same instant" true
    (match starts with [] -> false | t :: rest -> List.for_all (( = ) t) rest)

let test_nested_single_worker () =
  let tb, _, status = run_workload (Workloads.nested ~depth:6) in
  check "finished" true (finished status);
  check_int "only the innermost worker dispatches" 1 (Engine.dispatches_total tb.Testbed.engine)

let test_alternatives_payload_flows () =
  let _, _, status = run_workload (Workloads.alternatives ~k:5 ~alive:2) in
  match status with
  | Wstate.Wf_done { output = "finished"; objects } ->
    check "seed flowed through the live alternative" true
      (match List.assoc_opt "data" objects with
      | Some { Value.payload = Value.Str "seed"; _ } -> true
      | _ -> false)
  | _ -> Alcotest.fail "did not finish"

(* --- properties --- *)

let prop_generated_scripts_validate =
  QCheck.Test.make ~name:"generated workloads validate with no errors" ~count:40
    QCheck.(quad (int_range 1 20) (int_range 1 12) (int_range 1 6) (int_range 1 6))
    (fun (n, width, depth, k) ->
      let scripts =
        [
          fst (Workloads.chain ~n);
          fst (Workloads.fanout ~width);
          fst (Workloads.nested ~depth);
          fst (Workloads.alternatives ~k ~alive:(1 + (n mod k)));
        ]
      in
      List.for_all
        (fun src ->
          match Frontend.load src with Ok _ -> true | Error _ -> false)
        scripts)

let prop_generated_scripts_roundtrip =
  QCheck.Test.make ~name:"generated workloads round-trip through the pretty-printer" ~count:30
    QCheck.(pair (int_range 1 15) (int_range 1 8))
    (fun (n, width) ->
      let roundtrips src =
        let ast = Parser.script src in
        let printed = Pretty.to_string ast in
        Pretty.to_string (Parser.script printed) = printed
      in
      roundtrips (fst (Workloads.chain ~n)) && roundtrips (fst (Workloads.fanout ~width)))

let prop_chains_complete =
  QCheck.Test.make ~name:"chains of any length complete with n dispatches" ~count:15
    QCheck.(int_range 1 30)
    (fun n ->
      let tb, _, status = run_workload (Workloads.chain ~n) in
      finished status && Engine.dispatches_total tb.Testbed.engine = n)

let prop_alternatives_any_alive_position =
  QCheck.Test.make ~name:"any alive-alternative position completes" ~count:20
    QCheck.(pair (int_range 1 8) (int_range 0 100))
    (fun (k, r) ->
      let alive = 1 + (r mod k) in
      let _, _, status = run_workload (Workloads.alternatives ~k ~alive) in
      finished status)

let prop_deterministic_runs =
  QCheck.Test.make ~name:"same workload, same seed, same trace" ~count:10
    QCheck.(int_range 2 12)
    (fun n ->
      let run () =
        let tb, _, _ = run_workload (Workloads.chain ~n) in
        List.map
          (fun (e : Trace.entry) -> (e.Trace.at, e.Trace.kind, e.Trace.detail))
          (Trace.entries (Engine.trace tb.Testbed.engine))
      in
      run () = run ())

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_generated_scripts_validate;
      prop_generated_scripts_roundtrip;
      prop_chains_complete;
      prop_alternatives_any_alive_position;
      prop_deterministic_runs;
    ]

let () =
  Alcotest.run "workloads"
    [
      ( "structure",
        [
          Alcotest.test_case "chain dispatch count" `Quick test_chain_dispatch_count;
          Alcotest.test_case "fanout dispatch count" `Quick test_fanout_dispatch_count;
          Alcotest.test_case "fanout parallelism" `Quick test_fanout_parallelism;
          Alcotest.test_case "nested single worker" `Quick test_nested_single_worker;
          Alcotest.test_case "alternatives payload" `Quick test_alternatives_payload_flows;
        ] );
      ("properties", qsuite);
    ]
