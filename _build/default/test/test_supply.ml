(* Integration tests on the supply-chain case study: every language
   feature interacting in one application (templates, subtyping, timer
   input sets, atomic auto-restart, priorities, compensation). *)

let check = Alcotest.(check bool)

let check_str = Alcotest.(check string)

let run scenario =
  let tb = Testbed.make () in
  Supply_chain.register ~scenario tb.Testbed.registry;
  match
    Testbed.launch_and_run tb ~script:Supply_chain.script ~root:Supply_chain.root
      ~inputs:Supply_chain.inputs
  with
  | Ok (iid, status) -> (tb, iid, status)
  | Error e -> Alcotest.failf "launch: %s" e

let expect_done ~output status =
  match status with
  | Wstate.Wf_done { output = o; objects } ->
    check_str "outcome" output o;
    objects
  | Wstate.Wf_running -> Alcotest.fail "still running"
  | Wstate.Wf_failed reason -> Alcotest.failf "failed: %s" reason

let test_script_validates () =
  match Frontend.load Supply_chain.script with
  | Ok ast ->
    (* templates expanded: quoteA/quoteB are concrete tasks now *)
    check "no template decls remain" true
      (not (List.exists (function Ast.D_template _ -> true | _ -> false) ast))
  | Error e -> Alcotest.failf "%s" (Frontend.error_to_string e)

let test_fulfilled_path () =
  let tb, iid, status = run Supply_chain.smooth in
  let objects = expect_done ~output:"fulfilled" status in
  check_str "shipment delivered" "pallet-77"
    (match List.assoc_opt "shipment" objects with
    | Some { Value.payload = Value.Str s; _ } -> s
    | _ -> "?");
  check_str "invoice issued" "inv-2026-07"
    (match List.assoc_opt "invoice" objects with
    | Some { Value.payload = Value.Str s; _ } -> s
    | _ -> "?");
  (* templates ran: both expanded query tasks completed *)
  (match Engine.task_state tb.Testbed.engine iid ~path:[ "fulfillment"; "quoteA" ] with
  | Some (Wstate.Done { output = "quoted"; _ }) -> ()
  | _ -> Alcotest.fail "quoteA (template instance) did not run");
  match Engine.task_state tb.Testbed.engine iid ~path:[ "fulfillment"; "quoteB" ] with
  | Some (Wstate.Done _) -> ()
  | _ -> Alcotest.fail "quoteB (template instance) did not run"

let test_priority_orders_dispatch () =
  (* ship (priority 10) and invoice (priority 1) become ready in the same
     scheduling round after the reservation; ship must dispatch first *)
  let tb, _, _ = run Supply_chain.smooth in
  let trace = Engine.trace tb.Testbed.engine in
  let starts =
    List.filter_map
      (fun (e : Trace.entry) ->
        if e.Trace.kind = "start" then Some e.Trace.detail else None)
      (Trace.entries trace)
  in
  let index_of prefix =
    let rec find i = function
      | [] -> -1
      | d :: rest ->
        if String.length d >= String.length prefix && String.sub d 0 (String.length prefix) = prefix
        then i
        else find (i + 1) rest
    in
    find 0 starts
  in
  let ship_at = index_of "fulfillment/ship" in
  let invoice_at = index_of "fulfillment/invoice" in
  check "both started" true (ship_at >= 0 && invoice_at >= 0);
  check "higher priority dispatched first" true (ship_at < invoice_at)

let test_reserve_auto_restart () =
  let scenario = { Supply_chain.smooth with Supply_chain.reserve_aborts = 2 } in
  let tb, iid, status = run scenario in
  ignore (expect_done ~output:"fulfilled" status);
  match Engine.task_state tb.Testbed.engine iid ~path:[ "fulfillment"; "reserve" ] with
  | Some (Wstate.Done { attempt; output = "reserved"; _ }) ->
    Alcotest.(check int) "third attempt reserved" 3 attempt
  | other ->
    Alcotest.failf "reserve: %s"
      (match other with Some s -> Format.asprintf "%a" Wstate.pp_task_state s | None -> "none")

let test_no_suppliers_times_out () =
  let scenario =
    { Supply_chain.smooth with Supply_chain.supplier_a_quotes = false; supplier_b_quotes = false }
  in
  let tb, iid, status = run scenario in
  ignore (expect_done ~output:"rejected" status);
  match Engine.task_state tb.Testbed.engine iid ~path:[ "fulfillment"; "selectQuote" ] with
  | Some (Wstate.Done { output = "noQuote"; _ }) -> ()
  | other ->
    Alcotest.failf "selectQuote: %s"
      (match other with Some s -> Format.asprintf "%a" Wstate.pp_task_state s | None -> "none")

let test_one_supplier_enough () =
  let scenario = { Supply_chain.smooth with Supply_chain.supplier_a_quotes = false } in
  let _, _, status = run scenario in
  ignore (expect_done ~output:"fulfilled" status)

let test_declined_payment_rejects () =
  let scenario = { Supply_chain.smooth with Supply_chain.authorised = false } in
  let _, _, status = run scenario in
  ignore (expect_done ~output:"rejected" status)

let test_failed_shipping_compensates () =
  let scenario = { Supply_chain.smooth with Supply_chain.ship_ok = false } in
  let tb, iid, status = run scenario in
  ignore (expect_done ~output:"failed" status);
  match Engine.task_state tb.Testbed.engine iid ~path:[ "fulfillment"; "releaseInventory" ] with
  | Some (Wstate.Done { output = "released"; _ }) -> ()
  | other ->
    Alcotest.failf "releaseInventory: %s"
      (match other with Some s -> Format.asprintf "%a" Wstate.pp_task_state s | None -> "none")

let test_survives_engine_crash () =
  let engine_config =
    { Engine.default_config with Engine.default_deadline = Sim.ms 80; system_max_attempts = 50 }
  in
  let tb = Testbed.make ~engine_config () in
  Supply_chain.register ~work:(Sim.ms 15) ~scenario:Supply_chain.smooth tb.Testbed.registry;
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 25) (fun () -> Testbed.crash tb "n0"));
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 70) (fun () -> Testbed.recover tb "n0"));
  match
    Testbed.launch_and_run ~until:(Sim.sec 60) tb ~script:Supply_chain.script
      ~root:Supply_chain.root ~inputs:Supply_chain.inputs
  with
  | Ok (_, status) -> ignore (expect_done ~output:"fulfilled" status)
  | Error e -> Alcotest.failf "launch: %s" e

let () =
  Alcotest.run "supply-chain"
    [
      ( "integration",
        [
          Alcotest.test_case "script validates" `Quick test_script_validates;
          Alcotest.test_case "fulfilled path" `Quick test_fulfilled_path;
          Alcotest.test_case "priority ordering" `Quick test_priority_orders_dispatch;
          Alcotest.test_case "atomic auto-restart" `Quick test_reserve_auto_restart;
          Alcotest.test_case "quote timeout" `Quick test_no_suppliers_times_out;
          Alcotest.test_case "one supplier enough" `Quick test_one_supplier_enough;
          Alcotest.test_case "declined payment" `Quick test_declined_payment_rejects;
          Alcotest.test_case "compensation" `Quick test_failed_shipping_compensates;
          Alcotest.test_case "engine crash mid-run" `Quick test_survives_engine_crash;
        ] );
    ]
