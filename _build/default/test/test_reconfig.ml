(* Unit tests for the dynamic-reconfiguration AST transforms
   (lib/engine/reconfig.ml): each standard operation applied to the
   paper's §5.2 script, checked by re-validating and inspecting the
   transformed AST. The engine-level (transactional, mid-run) behaviour
   is covered in test_engine.ml. *)

let check = Alcotest.(check bool)

let base_ast () = Parser.script Paper_scripts.process_order

let scope = [ "processOrderApplication" ]

let apply_ok transform =
  match transform (base_ast ()) with
  | Ok ast -> ast
  | Error e -> Alcotest.failf "transform failed: %s" e

let find_compound ast name =
  List.find_map
    (function Ast.D_compound cd when cd.Ast.cd_name = name -> Some cd | _ -> None)
    ast

let constituent_names ast =
  match find_compound ast "processOrderApplication" with
  | Some cd -> List.map Ast.constituent_name cd.Ast.cd_constituents
  | None -> Alcotest.fail "compound vanished"

let validates ast = match Validate.ok ast with Ok () -> true | Error _ -> false

(* --- add_constituent --- *)

let audit_decl =
  {|
task auditor of taskclass CheckStock {
    implementation { "code" is "refCheckStock" };
    inputs { input main {
        inputobject order from { order of task processOrderApplication if input main }
    } }
}
|}

let test_add_constituent () =
  let ast = apply_ok (Reconfig.add_constituent ~scope ~decl:audit_decl) in
  Alcotest.(check (list string))
    "appended"
    [ "paymentAuthorisation"; "checkStock"; "dispatch"; "paymentCapture"; "auditor" ]
    (constituent_names ast);
  check "still validates" true (validates ast)

let test_add_constituent_duplicate_rejected () =
  let dup = {|task dispatch of taskclass Dispatch { implementation { "code" is "x" } }|} in
  match Reconfig.add_constituent ~scope ~decl:dup (base_ast ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate constituent accepted"

let test_add_constituent_bad_scope () =
  match Reconfig.add_constituent ~scope:[ "nope" ] ~decl:audit_decl (base_ast ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown scope accepted"

let test_add_constituent_syntax_error () =
  match Reconfig.add_constituent ~scope ~decl:"task {" (base_ast ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage declaration accepted"

(* --- remove_constituent --- *)

let test_remove_constituent () =
  let ast = apply_ok (Reconfig.remove_constituent ~scope ~name:"paymentCapture") in
  check "gone" true (not (List.mem "paymentCapture" (constituent_names ast)));
  (* removing paymentCapture breaks the orderCompleted notification —
     the validator must catch that, which is exactly why the engine
     revalidates before committing a reconfiguration *)
  check "validator catches the dangling reference" true (not (validates ast))

let test_remove_constituent_unknown () =
  match Reconfig.remove_constituent ~scope ~name:"ghost" (base_ast ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown constituent accepted"

(* --- add_object_source --- *)

let test_add_object_source_appends_alternative () =
  let ast =
    apply_ok
      (Reconfig.add_object_source ~scope ~task:"paymentCapture" ~input_set:"main"
         ~input_object:"paymentInfo"
         ~source:"paymentInfo of task paymentAuthorisation if output authorised")
  in
  check "still validates" true (validates ast);
  match find_compound ast "processOrderApplication" with
  | Some cd -> (
    let capture =
      List.find_map
        (function
          | Ast.C_task td when td.Ast.td_name = "paymentCapture" -> Some td
          | _ -> None)
        cd.Ast.cd_constituents
    in
    match capture with
    | Some td ->
      let count =
        List.concat_map
          (fun (iss : Ast.input_set_spec) ->
            List.concat_map
              (function
                | Ast.Dep_object { d_name = "paymentInfo"; d_sources; _ } -> d_sources
                | _ -> [])
              iss.Ast.iss_deps)
          td.Ast.td_inputs
      in
      Alcotest.(check int) "two alternatives now" 2 (List.length count)
    | None -> Alcotest.fail "paymentCapture missing")
  | None -> Alcotest.fail "compound missing"

let test_add_object_source_bad_syntax () =
  match
    Reconfig.add_object_source ~scope ~task:"paymentCapture" ~input_set:"main"
      ~input_object:"paymentInfo" ~source:"not a source" (base_ast ())
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad source syntax accepted"

(* --- add_notification / remove_notification --- *)

let test_add_notification () =
  let ast =
    apply_ok
      (Reconfig.add_notification ~scope ~task:"paymentCapture" ~input_set:"main"
         ~sources:"task checkStock if output stockAvailable")
  in
  check "still validates" true (validates ast)

let test_remove_notification () =
  let ast =
    apply_ok
      (Reconfig.remove_notification ~scope ~task:"dispatch" ~input_set:"main"
         ~source_task:"paymentAuthorisation")
  in
  check "still validates" true (validates ast);
  (* dispatch now depends only on checkStock's dataflow *)
  match find_compound ast "processOrderApplication" with
  | Some cd ->
    let dispatch =
      List.find_map
        (function Ast.C_task td when td.Ast.td_name = "dispatch" -> Some td | _ -> None)
        cd.Ast.cd_constituents
    in
    (match dispatch with
    | Some td ->
      let notifs =
        List.concat_map
          (fun (iss : Ast.input_set_spec) ->
            List.filter
              (function Ast.Dep_notification _ -> true | _ -> false)
              iss.Ast.iss_deps)
          td.Ast.td_inputs
      in
      Alcotest.(check int) "notification dependency dropped" 0 (List.length notifs)
    | None -> Alcotest.fail "dispatch missing")
  | None -> Alcotest.fail "compound missing"

(* --- rebind_implementation --- *)

let test_rebind_implementation () =
  let ast = apply_ok (Reconfig.rebind_implementation ~scope ~task:"dispatch" ~code:"refDispatchV2") in
  check "still validates" true (validates ast);
  match find_compound ast "processOrderApplication" with
  | Some cd -> (
    let dispatch =
      List.find_map
        (function Ast.C_task td when td.Ast.td_name = "dispatch" -> Some td | _ -> None)
        cd.Ast.cd_constituents
    in
    match dispatch with
    | Some td -> Alcotest.(check (option string)) "rebound" (Some "refDispatchV2") (Ast.impl_code td.Ast.td_impl)
    | None -> Alcotest.fail "dispatch missing")
  | None -> Alcotest.fail "compound missing"

let test_rebind_unknown_task () =
  match Reconfig.rebind_implementation ~scope ~task:"ghost" ~code:"x" (base_ast ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown task accepted"

(* --- nested scopes --- *)

let test_nested_scope_navigation () =
  let ast = Parser.script Paper_scripts.business_trip in
  let result =
    Reconfig.rebind_implementation
      ~scope:[ "tripReservation"; "businessReservation"; "checkFlightReservation" ]
      ~task:"query2" ~code:"refAirlineQueryV2" ast
  in
  match result with
  | Ok ast' -> check "still validates" true (validates ast')
  | Error e -> Alcotest.failf "nested navigation failed: %s" e

let test_nested_scope_unknown_middle () =
  let ast = Parser.script Paper_scripts.business_trip in
  match
    Reconfig.rebind_implementation ~scope:[ "tripReservation"; "ghost" ] ~task:"x" ~code:"y" ast
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad nested scope accepted"

let () =
  Alcotest.run "reconfig"
    [
      ( "add",
        [
          Alcotest.test_case "add constituent" `Quick test_add_constituent;
          Alcotest.test_case "duplicate rejected" `Quick test_add_constituent_duplicate_rejected;
          Alcotest.test_case "bad scope" `Quick test_add_constituent_bad_scope;
          Alcotest.test_case "syntax error" `Quick test_add_constituent_syntax_error;
        ] );
      ( "remove",
        [
          Alcotest.test_case "remove constituent" `Quick test_remove_constituent;
          Alcotest.test_case "unknown constituent" `Quick test_remove_constituent_unknown;
        ] );
      ( "dependencies",
        [
          Alcotest.test_case "add object source" `Quick test_add_object_source_appends_alternative;
          Alcotest.test_case "bad source syntax" `Quick test_add_object_source_bad_syntax;
          Alcotest.test_case "add notification" `Quick test_add_notification;
          Alcotest.test_case "remove notification" `Quick test_remove_notification;
        ] );
      ( "rebind",
        [
          Alcotest.test_case "rebind implementation" `Quick test_rebind_implementation;
          Alcotest.test_case "unknown task" `Quick test_rebind_unknown_task;
        ] );
      ( "nested",
        [
          Alcotest.test_case "navigate nested scopes" `Quick test_nested_scope_navigation;
          Alcotest.test_case "unknown middle scope" `Quick test_nested_scope_unknown_middle;
        ] );
    ]
