test/test_supply.mli:
