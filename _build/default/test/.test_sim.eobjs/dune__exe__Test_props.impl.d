test/test_props.ml: Alcotest Ast Engine Fault Gantt Gen Impls List Loc Network Paper_scripts Parser Pretty Printf QCheck QCheck_alcotest Sim String Testbed Trace Value Wire Workloads Wstate
