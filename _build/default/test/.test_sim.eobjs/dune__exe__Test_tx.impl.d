test/test_tx.ml: Alcotest Harness List Lock Network Participant Sim Txn
