test/test_engine.ml: Admin Alcotest Ast Engine Fault Format Frontend Impls Kvstore List Network Node Paper_scripts Parser Participant Reconfig Registry Sim String Testbed Trace Value Wstate
