test/test_sim.ml: Alcotest Fault Fun Heap List QCheck QCheck_alcotest Rng Sim Trace
