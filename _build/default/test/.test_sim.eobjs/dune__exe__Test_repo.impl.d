test/test_repo.ml: Alcotest Engine Format Impls Kvstore Paper_scripts Repo_client Repository Testbed Value Wstate
