test/test_workloads.ml: Alcotest Engine Frontend List Parser Pretty QCheck QCheck_alcotest String Testbed Trace Value Workloads Wstate
