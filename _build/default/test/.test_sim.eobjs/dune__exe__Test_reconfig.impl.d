test/test_reconfig.ml: Alcotest Ast List Paper_scripts Parser Reconfig Validate
