test/test_lang.ml: Alcotest Ast Dot Frontend Lexer List Loc Paper_scripts Parser Pretty Schema String Template Token Validate
