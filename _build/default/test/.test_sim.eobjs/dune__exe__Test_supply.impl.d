test/test_supply.ml: Alcotest Ast Engine Format Frontend List Sim String Supply_chain Testbed Trace Value Wstate
