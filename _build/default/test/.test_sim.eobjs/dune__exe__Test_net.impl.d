test/test_net.ml: Alcotest List Network Node QCheck QCheck_alcotest Rpc Sim String Wire
