test/test_store.ml: Alcotest Kvstore List Map Printf QCheck QCheck_alcotest String Wal
