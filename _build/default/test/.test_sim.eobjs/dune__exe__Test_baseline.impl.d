test/test_baseline.ml: Alcotest Baseline Format Impls List Network Node Paper_scripts Registry Sim Value Wstate
