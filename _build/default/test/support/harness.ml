(* Shared scaffolding for substrate tests: a small simulated cluster with
   a transaction participant and coordinator on every node. *)

type cluster = {
  sim : Sim.t;
  net : Network.t;
  rpc : Rpc.t;
  members : (string * Node.t * Participant.t * Txn.manager) list;
}

let cluster ?(config = Network.default_config) ?(seed = 42L) ids =
  let sim = Sim.create ~seed () in
  let net = Network.create ~config sim in
  let rpc = Rpc.create net in
  let make id =
    let node = Network.add_node net ~id in
    Rpc.attach rpc node;
    let participant = Participant.create ~rpc ~node in
    let mgr = Txn.manager ~rpc ~node in
    (id, node, participant, mgr)
  in
  { sim; net; rpc; members = List.map make ids }

let member c id =
  match List.find_opt (fun (mid, _, _, _) -> mid = id) c.members with
  | Some m -> m
  | None -> invalid_arg ("Harness.member: unknown node " ^ id)

let node c id =
  let _, n, _, _ = member c id in
  n

let participant c id =
  let _, _, p, _ = member c id in
  p

let manager c id =
  let _, _, _, m = member c id in
  m

let run ?until c = Sim.run ?until c.sim

let crash c id = Node.crash (node c id)

let recover c id = Node.recover (node c id)

(* Run a transactional program to completion and return its result.
   Fails the test if the simulation drains without the callback firing. *)
let exec c (io : 'a Txn.io) : ('a, Txn.error) result =
  let result = ref None in
  io (fun r -> result := Some r);
  Sim.run c.sim;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "transaction never completed (simulation drained)"

let exec_ok c io =
  match exec c io with
  | Ok v -> v
  | Error e -> Alcotest.failf "transaction failed: %s" (Txn.error_to_string e)
