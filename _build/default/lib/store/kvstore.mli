(** Persistent key/value store: a volatile cache in front of a WAL.

    This plays the role of Arjuna's persistent object store. A crash
    wipes the cache and makes the store unavailable; recovery replays
    the WAL. Values are strings — callers bring their own codecs. *)

exception Unavailable of string
(** Raised by any operation attempted while the store's node is down. *)

type t

val create : name:string -> t

val name : t -> string

val available : t -> bool

val put : t -> string -> string -> unit

val get : t -> string -> string option

val mem : t -> string -> bool

val delete : t -> string -> unit

val keys : t -> string list
(** Sorted, for deterministic iteration. *)

val fold : t -> init:'acc -> f:('acc -> string -> string -> 'acc) -> 'acc
(** Folds over bindings in sorted key order. *)

val crash : t -> unit
(** Simulated node crash: volatile cache lost, store unavailable.
    Stable contents (the WAL) are untouched. Idempotent. *)

val recover : t -> unit
(** Replay the WAL to rebuild the cache; store becomes available.
    Idempotent when already available. *)

val checkpoint : t -> unit
(** Compact the WAL down to a snapshot of the live bindings. *)

val wal_length : t -> int

val writes_total : t -> int
(** Lifetime stable-write count (for benches). *)

val replays_total : t -> int
(** Number of recoveries performed. *)
