exception Unavailable of string

type op =
  | Put of string * string
  | Del of string
  | Snapshot of (string * string) list

type t = {
  name : string;
  wal : op Wal.t;
  cache : (string, string) Hashtbl.t;
  mutable up : bool;
  mutable replays : int;
}

let create ~name =
  { name; wal = Wal.create ~name; cache = Hashtbl.create 64; up = true; replays = 0 }

let name t = t.name

let available t = t.up

let check t = if not t.up then raise (Unavailable t.name)

let put t key value =
  check t;
  Wal.append t.wal (Put (key, value));
  Hashtbl.replace t.cache key value

let get t key =
  check t;
  Hashtbl.find_opt t.cache key

let mem t key =
  check t;
  Hashtbl.mem t.cache key

let delete t key =
  check t;
  if Hashtbl.mem t.cache key then begin
    Wal.append t.wal (Del key);
    Hashtbl.remove t.cache key
  end

let keys t =
  check t;
  let all = Hashtbl.fold (fun k _ acc -> k :: acc) t.cache [] in
  List.sort String.compare all

let fold t ~init ~f =
  let step acc key =
    match Hashtbl.find_opt t.cache key with
    | Some value -> f acc key value
    | None -> acc
  in
  List.fold_left step init (keys t)

let crash t =
  Hashtbl.reset t.cache;
  t.up <- false

let replay_op t = function
  | Put (k, v) -> Hashtbl.replace t.cache k v
  | Del k -> Hashtbl.remove t.cache k
  | Snapshot bindings ->
    Hashtbl.reset t.cache;
    List.iter (fun (k, v) -> Hashtbl.replace t.cache k v) bindings

let recover t =
  if not t.up then begin
    Hashtbl.reset t.cache;
    List.iter (replay_op t) (Wal.records t.wal);
    t.up <- true;
    t.replays <- t.replays + 1
  end

let checkpoint t =
  check t;
  let bindings = fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc) in
  Wal.rewrite t.wal [ Snapshot (List.rev bindings) ]

let wal_length t = Wal.length t.wal

let writes_total t = Wal.appended_total t.wal

let replays_total t = t.replays
