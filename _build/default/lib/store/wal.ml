type 'a t = {
  name : string;
  mutable rev_records : 'a list;
  mutable count : int;
  mutable appended_total : int;
}

let create ~name = { name; rev_records = []; count = 0; appended_total = 0 }

let name t = t.name

let append t record =
  t.rev_records <- record :: t.rev_records;
  t.count <- t.count + 1;
  t.appended_total <- t.appended_total + 1

let records t = List.rev t.rev_records

let length t = t.count

let rewrite t records =
  t.rev_records <- List.rev records;
  t.count <- List.length records

let appended_total t = t.appended_total
