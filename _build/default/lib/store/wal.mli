(** Write-ahead log on simulated stable storage.

    Contents survive a node crash; appends are atomic (a real WAL gets
    the same guarantee from per-record checksums). The log knows nothing
    about node liveness — components built on it refuse operations while
    their node is down. *)

type 'a t

val create : name:string -> 'a t

val name : 'a t -> string

val append : 'a t -> 'a -> unit

val records : 'a t -> 'a list
(** All stable records, oldest first. *)

val length : 'a t -> int

val rewrite : 'a t -> 'a list -> unit
(** Atomic compaction: replace the whole log contents (checkpointing). *)

val appended_total : 'a t -> int
(** Lifetime append count (monotonic; survives {!rewrite}); a cheap
    proxy for write I/O in benches. *)
