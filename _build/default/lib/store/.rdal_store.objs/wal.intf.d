lib/store/wal.mli:
