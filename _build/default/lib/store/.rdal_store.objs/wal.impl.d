lib/store/wal.ml: List
