lib/store/kvstore.mli:
