lib/store/kvstore.ml: Hashtbl List String Wal
