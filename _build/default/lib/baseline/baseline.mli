(** Baseline comparator: a centralized, non-fault-tolerant workflow
    scheduler.

    Interprets the same schemas with the same implementation registry,
    but keeps all state in volatile memory and uses no transactions, no
    persistence and no RPC. A crash of its node loses every running
    instance; on recovery the baseline restarts lost instances {e from
    scratch} (re-executing completed tasks). This is the strawman the
    paper's system-level fault-tolerance claims are measured against in
    the ablation benches (EXPERIMENTS.md, A1).

    Supported language subset: dataflow + notification dependencies with
    ordered alternatives, input-set priority, compound scopes with
    output bindings, external inputs, abort/ordinary outcomes, repeat
    outcomes and marks. Timers and dynamic reconfiguration are engine
    features and are not reproduced here. *)

type t

val create : sim:Sim.t -> node:Node.t -> registry:Registry.t -> t
(** [node] only contributes its up/down state and crash hooks: crash
    wipes all instances, recovery restarts them from scratch. *)

val launch :
  t ->
  script:string ->
  root:string ->
  inputs:(string * Value.obj) list ->
  (string, string) result

val status : t -> string -> Wstate.status option

val on_any_complete : t -> (string -> Wstate.status -> unit) -> unit
(** Observer fired when any instance reaches a final status. Unlike
    {!status}, this lets callers capture completions that a later crash
    would erase (the baseline keeps no durable record of anything). *)

val tasks_executed_total : t -> int
(** Lifetime count of task executions, including work redone after a
    crash — the waste metric A1 reports. *)

val restarts_total : t -> int
