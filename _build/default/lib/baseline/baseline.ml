type tstate =
  | Waiting of int  (** attempt *)
  | Running of int
  | Done of { output : string; kind : Ast.output_kind; objects : (string * Value.obj) list }
  | Failed of string

type inst = {
  iid : string;
  schema : Schema.task;
  inputs : (string * Value.obj) list;
  states : (string, tstate) Hashtbl.t;
  chosen : (string, string * (string * Value.obj) list) Hashtbl.t;
  marks : (string, (string * (string * Value.obj) list) list) Hashtbl.t;
  repeats : (string, string * (string * Value.obj) list) Hashtbl.t;
  mutable status : Wstate.status;
}

type t = {
  sim : Sim.t;
  node : Node.t;
  registry : Registry.t;
  rng : Rng.t;
  insts : (string, inst) Hashtbl.t;
  pending_relaunch : (string, string * Schema.task * (string * Value.obj) list) Hashtbl.t;
  mutable seq : int;
  mutable epoch : int;
  mutable executed : int;
  mutable restarts : int;
  mutable observers : (string -> Wstate.status -> unit) list;
}

let pkey = String.concat "/"

let state inst path = Hashtbl.find_opt inst.states (pkey path)

let marks_of inst path =
  match Hashtbl.find_opt inst.marks (pkey path) with Some l -> l | None -> []

(* --- availability over the volatile tables --- *)

type ctx = {
  c_inst : inst;
  c_scope : string list;
  c_enclosing : string;
  c_set : string option;
  c_scope_inputs : (string * Value.obj) list;
  c_siblings : Schema.task list;
}

let sibling ctx name = List.exists (fun (s : Schema.task) -> s.Schema.name = name) ctx.c_siblings

let source_value ctx (os : Schema.obj_source) =
  if (not (sibling ctx os.Schema.s_task)) && os.Schema.s_task = ctx.c_enclosing then
    match os.Schema.s_cond with
    | Schema.C_input set when ctx.c_set = Some set -> List.assoc_opt os.Schema.s_obj ctx.c_scope_inputs
    | _ -> None
  else begin
    let path = ctx.c_scope @ [ os.Schema.s_task ] in
    let inst = ctx.c_inst in
    let from_marks oc =
      Option.bind (List.assoc_opt oc (marks_of inst path)) (List.assoc_opt os.Schema.s_obj)
    in
    match os.Schema.s_cond with
    | Schema.C_output oc -> (
      match state inst path with
      | Some (Done { output; objects; _ }) when output = oc -> List.assoc_opt os.Schema.s_obj objects
      | _ -> (
        match from_marks oc with
        | Some v -> Some v
        | None -> (
          match Hashtbl.find_opt inst.repeats (pkey path) with
          | Some (out, objects) when out = oc -> List.assoc_opt os.Schema.s_obj objects
          | _ -> None)))
    | Schema.C_input set -> (
      match Hashtbl.find_opt inst.chosen (pkey path) with
      | Some (s, values) when s = set -> List.assoc_opt os.Schema.s_obj values
      | _ -> None)
    | Schema.C_any -> (
      match state inst path with
      | Some (Done { objects; kind; _ }) when kind <> Ast.Repeat_outcome ->
        List.assoc_opt os.Schema.s_obj objects
      | _ ->
        List.find_map (fun (_, objects) -> List.assoc_opt os.Schema.s_obj objects) (marks_of inst path))
  end

let notif_ok ctx (ns : Schema.notif_source) =
  if (not (sibling ctx ns.Schema.n_task)) && ns.Schema.n_task = ctx.c_enclosing then
    match ns.Schema.n_cond with
    | Schema.C_input set -> ctx.c_set = Some set
    | Schema.C_output _ -> false
    | Schema.C_any -> true
  else begin
    let path = ctx.c_scope @ [ ns.Schema.n_task ] in
    let inst = ctx.c_inst in
    match ns.Schema.n_cond with
    | Schema.C_output oc -> (
      match state inst path with
      | Some (Done { output; _ }) -> output = oc
      | _ -> (
        List.mem_assoc oc (marks_of inst path)
        || match Hashtbl.find_opt inst.repeats (pkey path) with Some (o, _) -> o = oc | None -> false))
    | Schema.C_input set -> (
      match Hashtbl.find_opt inst.chosen (pkey path) with Some (s, _) -> s = set | _ -> false)
    | Schema.C_any -> (
      match state inst path with Some (Done { kind; _ }) -> kind <> Ast.Repeat_outcome | _ -> false)
  end

let notifs_ok ctx groups = List.for_all (fun g -> List.exists (notif_ok ctx) g) groups

let satisfy_set ctx ~root (s : Schema.input_set) =
  if not (notifs_ok ctx s.Schema.is_notifications) then None
  else begin
    let resolve (io : Schema.input_object) =
      match io.Schema.io_sources with
      | [] -> if root then Option.map (fun v -> (io.Schema.io_name, v)) (List.assoc_opt io.Schema.io_name ctx.c_inst.inputs) else None
      | sources -> Option.map (fun v -> (io.Schema.io_name, v)) (List.find_map (source_value ctx) sources)
    in
    let values = List.map resolve s.Schema.is_objects in
    if List.for_all Option.is_some values then Some (s.Schema.is_name, List.map Option.get values)
    else None
  end

let binding_ready ctx (b : Schema.binding) =
  if not (notifs_ok ctx b.Schema.b_notifications) then None
  else begin
    let values =
      List.map
        (fun (name, sources) -> Option.map (fun v -> (name, v)) (List.find_map (source_value ctx) sources))
        b.Schema.b_objects
    in
    if List.for_all Option.is_some values then Some (List.map Option.get values) else None
  end

(* --- execution --- *)

let wrap (task : Schema.task) ~output objects =
  match Schema.output_named task output with
  | None -> []
  | Some out ->
    List.map
      (fun (name, cls) ->
        let payload = match List.assoc_opt name objects with Some v -> v | None -> Value.Unit in
        (name, Value.obj ~cls payload))
      out.Schema.out_objects

let rec evaluate t inst =
  if inst.status = Wstate.Wf_running && Node.up t.node then begin
    let changed = eval_task t inst ~scope:[] ~enclosing:"" ~set:None ~scope_inputs:[] ~siblings:[ inst.schema ] ~root:true inst.schema in
    (match state inst [ inst.schema.Schema.name ] with
    | Some (Done { output; objects; _ }) ->
      inst.status <- Wstate.Wf_done { output; objects };
      List.iter (fun f -> f inst.iid inst.status) t.observers
    | Some (Failed reason) ->
      inst.status <- Wstate.Wf_failed reason;
      List.iter (fun f -> f inst.iid inst.status) t.observers
    | _ -> ());
    if changed && inst.status = Wstate.Wf_running then evaluate t inst
  end

and eval_task t inst ~scope ~enclosing ~set ~scope_inputs ~siblings ~root (task : Schema.task) =
  let path = scope @ [ task.Schema.name ] in
  let ctx = { c_inst = inst; c_scope = scope; c_enclosing = enclosing; c_set = set; c_scope_inputs = scope_inputs; c_siblings = siblings } in
  match state inst path with
  | Some (Done _ | Failed _) -> false
  | None | Some (Waiting _) -> try_start t inst ~ctx ~path ~root task
  | Some (Running _) -> (
    match task.Schema.body with
    | Schema.Compound { children; bindings } -> eval_scope t inst ~path ~children ~bindings task
    | Schema.Simple -> false)

and try_start t inst ~ctx ~path ~root task =
  let attempt = match state inst path with Some (Waiting a) -> a | _ -> 1 in
  match List.find_map (satisfy_set ctx ~root) task.Schema.inputs with
  | None -> false
  | Some (set, values) ->
    Hashtbl.replace inst.states (pkey path) (Running attempt);
    Hashtbl.replace inst.chosen (pkey path) (set, values);
    (match task.Schema.body with
    | Schema.Compound _ -> ignore (eval_task t inst ~scope:ctx.c_scope ~enclosing:ctx.c_enclosing ~set:ctx.c_set ~scope_inputs:ctx.c_scope_inputs ~siblings:ctx.c_siblings ~root task)
    | Schema.Simple -> run_impl t inst ~path ~task ~attempt ~set ~values);
    true

and run_impl t inst ~path ~task ~attempt ~set ~values =
  let code = match Ast.impl_code task.Schema.impl with Some c -> c | None -> "" in
  match Registry.find t.registry ~code with
  | Some (Registry.Fn fn) ->
    t.executed <- t.executed + 1;
    let ctx = { Registry.attempt; input_set = set; inputs = values; rng = Rng.split t.rng } in
    let plan = fn ctx in
    let epoch = t.epoch in
    let total, timed_marks =
      List.fold_left
        (fun (at, acc) step ->
          match step with
          | Registry.Work span -> (at + span, acc)
          | Registry.Emit_mark m -> (at, (at, m) :: acc))
        (0, []) plan.Registry.steps
    in
    let fire_mark (at, (m : Registry.outcome)) =
      ignore
        (Sim.schedule t.sim ~delay:at (fun () ->
             if t.epoch = epoch && Hashtbl.mem t.insts inst.iid then begin
               let objects = wrap task ~output:m.Registry.output m.Registry.objects in
               Hashtbl.replace inst.marks (pkey path)
                 (marks_of inst path @ [ (m.Registry.output, objects) ]);
               evaluate t inst
             end))
    in
    List.iter fire_mark (List.rev timed_marks);
    ignore
      (Sim.schedule t.sim ~delay:total (fun () ->
           if t.epoch = epoch && Hashtbl.mem t.insts inst.iid then begin
             finish_task t inst ~path ~task ~attempt plan.Registry.finish;
             evaluate t inst
           end))
  | Some (Registry.Sub_workflow _) | None ->
    Hashtbl.replace inst.states (pkey path) (Failed ("no implementation for " ^ code))

and finish_task _t inst ~path ~task ~attempt (outcome : Registry.outcome) =
  match Schema.output_named task outcome.Registry.output with
  | None ->
    Hashtbl.replace inst.states (pkey path) (Failed ("undeclared output " ^ outcome.Registry.output))
  | Some out -> (
    let objects = wrap task ~output:out.Schema.out_name outcome.Registry.objects in
    match out.Schema.out_kind with
    | Ast.Repeat_outcome ->
      Hashtbl.replace inst.repeats (pkey path) (out.Schema.out_name, objects);
      Hashtbl.replace inst.states (pkey path) (Waiting (attempt + 1))
    | Ast.Mark -> Hashtbl.replace inst.states (pkey path) (Failed "finished in a mark output")
    | Ast.Outcome | Ast.Abort_outcome ->
      Hashtbl.replace inst.states (pkey path)
        (Done { output = out.Schema.out_name; kind = out.Schema.out_kind; objects }))

and eval_scope t inst ~path ~children ~bindings (task : Schema.task) =
  let chosen = Hashtbl.find_opt inst.chosen (pkey path) in
  let ctx =
    {
      c_inst = inst;
      c_scope = path;
      c_enclosing = task.Schema.name;
      c_set = Option.map fst chosen;
      c_scope_inputs = (match chosen with Some (_, v) -> v | None -> []);
      c_siblings = children;
    }
  in
  let final =
    List.find_map
      (fun (b : Schema.binding) ->
        match b.Schema.b_kind with
        | Ast.Outcome | Ast.Abort_outcome -> Option.map (fun o -> (b, o)) (binding_ready ctx b)
        | Ast.Repeat_outcome | Ast.Mark -> None)
      bindings
  in
  match final with
  | Some (b, objects) ->
    Hashtbl.replace inst.states (pkey path)
      (Done { output = b.Schema.b_name; kind = b.Schema.b_kind; objects });
    true
  | None -> (
    let repeat =
      List.find_map
        (fun (b : Schema.binding) ->
          if b.Schema.b_kind = Ast.Repeat_outcome then Option.map (fun o -> (b, o)) (binding_ready ctx b)
          else None)
        bindings
    in
    match repeat with
    | Some (b, objects) ->
      Hashtbl.replace inst.repeats (pkey path) (b.Schema.b_name, objects);
      (* wipe the subtree *)
      let prefix = pkey path ^ "/" in
      let purge tbl =
        let doomed =
          Hashtbl.fold
            (fun k _ acc ->
              if String.length k > String.length prefix && String.sub k 0 (String.length prefix) = prefix
              then k :: acc
              else acc)
            tbl []
        in
        List.iter (Hashtbl.remove tbl) doomed
      in
      purge inst.states;
      purge inst.chosen;
      purge inst.marks;
      purge inst.repeats;
      Hashtbl.remove inst.chosen (pkey path);
      let attempt = match state inst path with Some (Running a) -> a | _ -> 1 in
      Hashtbl.replace inst.states (pkey path) (Waiting (attempt + 1));
      true
    | None ->
      let fired = marks_of inst path in
      let mark_changed =
        List.fold_left
          (fun acc (b : Schema.binding) ->
            if b.Schema.b_kind = Ast.Mark && not (List.mem_assoc b.Schema.b_name fired) then
              match binding_ready ctx b with
              | Some objects ->
                Hashtbl.replace inst.marks (pkey path) (marks_of inst path @ [ (b.Schema.b_name, objects) ]);
                true
              | None -> acc
            else acc)
          false bindings
      in
      List.fold_left
        (fun acc child ->
          eval_task t inst ~scope:path ~enclosing:task.Schema.name
            ~set:(Option.map fst chosen)
            ~scope_inputs:(match chosen with Some (_, v) -> v | None -> [])
            ~siblings:children ~root:false child
          || acc)
        mark_changed children)

(* --- lifecycle --- *)

let fresh_inst iid schema inputs =
  {
    iid;
    schema;
    inputs;
    states = Hashtbl.create 32;
    chosen = Hashtbl.create 32;
    marks = Hashtbl.create 8;
    repeats = Hashtbl.create 8;
    status = Wstate.Wf_running;
  }

let start t iid schema inputs =
  let inst = fresh_inst iid schema inputs in
  Hashtbl.replace t.insts iid inst;
  ignore (Sim.schedule t.sim ~delay:0 (fun () -> evaluate t inst))

let create ~sim ~node ~registry =
  let t =
    {
      sim;
      node;
      registry;
      rng = Rng.split (Sim.rng sim);
      insts = Hashtbl.create 8;
      pending_relaunch = Hashtbl.create 8;
      seq = 0;
      epoch = 0;
      executed = 0;
      restarts = 0;
      observers = [];
    }
  in
  Node.on_crash node (fun () ->
      t.epoch <- t.epoch + 1;
      Hashtbl.iter
        (fun iid inst ->
          if inst.status = Wstate.Wf_running then
            Hashtbl.replace t.pending_relaunch iid (iid, inst.schema, inst.inputs))
        t.insts;
      Hashtbl.reset t.insts);
  Node.on_recover node (fun () ->
      let lost = Hashtbl.fold (fun _ v acc -> v :: acc) t.pending_relaunch [] in
      Hashtbl.reset t.pending_relaunch;
      List.iter
        (fun (iid, schema, inputs) ->
          t.restarts <- t.restarts + 1;
          start t iid schema inputs)
        lost);
  t

let launch t ~script ~root ~inputs =
  match Frontend.compile script ~root with
  | Error e -> Error (Frontend.error_to_string e)
  | Ok schema ->
    t.seq <- t.seq + 1;
    let iid = Printf.sprintf "bl-%d" t.seq in
    start t iid schema inputs;
    Ok iid

let status t iid =
  match Hashtbl.find_opt t.insts iid with
  | Some inst -> Some inst.status
  | None -> if Hashtbl.mem t.pending_relaunch iid then Some Wstate.Wf_running else None

let on_any_complete t f = t.observers <- t.observers @ [ f ]

let tasks_executed_total t = t.executed

let restarts_total t = t.restarts
