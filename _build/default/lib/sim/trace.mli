(** Run trace: a time-stamped log of interesting simulation events.

    Components append typed entries; tests and the figure harness read
    them back to check orderings ("t4 started after both t2 and t3
    finished") and to regenerate the paper's execution diagrams. *)

type entry = { at : Sim.time; kind : string; detail : string }

type t

val create : unit -> t

val record : t -> at:Sim.time -> kind:string -> string -> unit

val entries : t -> entry list
(** In recording order (which is time order, since the simulator clock
    is monotonic). *)

val find : t -> kind:string -> entry list
(** All entries with the given [kind]. *)

val first : t -> kind:string -> detail:string -> entry option
(** First entry matching both [kind] and exact [detail], if any. *)

val pp_entry : Format.formatter -> entry -> unit

val dump : Format.formatter -> t -> unit
