lib/sim/fault.mli: Format Sim
