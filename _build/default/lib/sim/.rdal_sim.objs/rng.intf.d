lib/sim/rng.mli:
