lib/sim/fault.ml: Format List Sim
