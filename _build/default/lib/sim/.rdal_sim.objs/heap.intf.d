lib/sim/heap.mli:
