lib/sim/trace.mli: Format Sim
