type entry = { at : Sim.time; kind : string; detail : string }

type t = { mutable rev_entries : entry list }

let create () = { rev_entries = [] }

let record t ~at ~kind detail = t.rev_entries <- { at; kind; detail } :: t.rev_entries

let entries t = List.rev t.rev_entries

let find t ~kind = List.filter (fun e -> e.kind = kind) (entries t)

let first t ~kind ~detail =
  List.find_opt (fun e -> e.kind = kind && e.detail = detail) (entries t)

let pp_entry ppf e = Format.fprintf ppf "[%8d us] %-18s %s" e.at e.kind e.detail

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
