type action =
  | Crash of string
  | Restart of string
  | Partition_on of string * string
  | Partition_off of string * string

type t = (Sim.time * action) list

let empty = []

let crash_restart ~node ~at ~down_for = [ (at, Crash node); (at + down_for, Restart node) ]

let partition ~a ~b ~at ~heal_after =
  [ (at, Partition_on (a, b)); (at + heal_after, Partition_off (a, b)) ]

let periodic_crashes ~node ~period ~down_for ~count =
  let rec build k acc =
    if k > count then List.concat (List.rev acc)
    else build (k + 1) (crash_restart ~node ~at:(k * period) ~down_for :: acc)
  in
  build 1 []

let ( @+ ) a b = a @ b

let apply sim plan ~on =
  let plant (time, action) = ignore (Sim.at sim ~time (fun () -> on action)) in
  List.iter plant plan

let pp_action ppf = function
  | Crash n -> Format.fprintf ppf "crash %s" n
  | Restart n -> Format.fprintf ppf "restart %s" n
  | Partition_on (a, b) -> Format.fprintf ppf "partition %s / %s" a b
  | Partition_off (a, b) -> Format.fprintf ppf "heal %s / %s" a b
