type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  create (mix seed)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so Int64.to_int never wraps negative *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t bound =
  (* 53 random bits, as a fraction of 2^53 *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -. mean *. log u

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let keyed = List.map (fun x -> (next_int64 t, x)) l in
  let sorted = List.sort (fun (a, _) (b, _) -> Int64.compare a b) keyed in
  List.map snd sorted
