(** Fault plans: declarative schedules of crashes, restarts and network
    partitions, applied to a run at setup time.

    The plan only names faults; their semantics (what "crash" does) are
    provided by the layer that owns the affected component, via the
    [on] callback of {!apply}. *)

type action =
  | Crash of string  (** crash the named node: volatile state is lost *)
  | Restart of string  (** restart the named node: recovery runs *)
  | Partition_on of string * string
      (** sever connectivity between the two named nodes (both ways) *)
  | Partition_off of string * string  (** heal the partition *)

type t = (Sim.time * action) list

val empty : t

val crash_restart : node:string -> at:Sim.time -> down_for:Sim.time -> t
(** Crash [node] at [at] and restart it [down_for] later. *)

val partition : a:string -> b:string -> at:Sim.time -> heal_after:Sim.time -> t
(** Temporary two-way partition between [a] and [b]. *)

val periodic_crashes :
  node:string -> period:Sim.time -> down_for:Sim.time -> count:int -> t
(** [count] crash/restart cycles, the k-th crash at [k * period]. *)

val ( @+ ) : t -> t -> t
(** Plan union. *)

val apply : Sim.t -> t -> on:(action -> unit) -> unit
(** Schedule every planned action on the simulator. *)

val pp_action : Format.formatter -> action -> unit
