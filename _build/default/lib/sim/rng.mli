(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator draws from an explicit
    [Rng.t] so that a run is a pure function of its seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean; used for network latency jitter. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. Raises [Invalid_argument] on
    an empty list. *)

val shuffle : t -> 'a list -> 'a list
