(** Hand-written lexer for workflow scripts.

    Accepts identifiers, double-quoted strings, punctuation, and both
    comment styles ([// ...] to end of line and [/* ... */], nestable).
    Curly/smart quotes from the paper's typesetting are accepted as
    plain double quotes so examples can be pasted verbatim. *)

exception Error of string * Loc.t

val tokens : string -> (Token.t * Loc.t) list
(** Tokenize a whole script; the list always ends with [Token.Eof].
    Raises {!Error} on an unterminated string/comment or an illegal
    character. *)
