type error = { stage : string; msg : string; loc : Loc.t option }

let pp_error ppf { stage; msg; loc } =
  match loc with
  | Some loc -> Format.fprintf ppf "%s error: %s (%a)" stage msg Loc.pp loc
  | None -> Format.fprintf ppf "%s error: %s" stage msg

let error_to_string e = Format.asprintf "%a" pp_error e

let load source =
  match Parser.script_result source with
  | Error (msg, loc) -> Error { stage = "parse"; msg; loc = Some loc }
  | Ok ast -> (
    match Template.expand ast with
    | Error (msg, loc) -> Error { stage = "template"; msg; loc = Some loc }
    | Ok expanded -> (
      match Validate.ok expanded with
      | Ok () -> Ok expanded
      | Error issues ->
        let first = List.hd issues in
        let extra = List.length issues - 1 in
        let msg =
          if extra = 0 then first.Validate.msg
          else Printf.sprintf "%s (and %d more error(s))" first.Validate.msg extra
        in
        Error { stage = "validate"; msg; loc = Some first.Validate.loc }))

let compile source ~root =
  match load source with
  | Error e -> Error e
  | Ok ast -> (
    match Schema.of_script ast ~root with
    | Ok task -> Ok task
    | Error msg -> Error { stage = "resolve"; msg; loc = None })

let roots ast =
  List.filter_map
    (function
      | Ast.D_task td -> Some td.Ast.td_name
      | Ast.D_compound cd -> Some cd.Ast.cd_name
      | _ -> None)
    ast
