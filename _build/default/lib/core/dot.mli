(** Graphviz export: regenerates the paper's structure diagrams
    (Figs 1, 5, 6, 7, 8, 9) from a schema.

    Dataflow dependencies are solid edges labelled with the object name;
    notification dependencies are dotted edges — the paper's Fig 1
    convention. Compound tasks become clusters. *)

val of_task : Schema.task -> string
(** A complete [digraph] document for one schema tree. *)
