(** Semantic validation of workflow scripts (post template expansion).

    Errors are violations that make a script unexecutable or break the
    language rules of §4:
    - duplicate names in a namespace (classes, taskclasses, instances,
      input sets, outputs, constituents);
    - references to unknown classes, taskclasses, tasks, outputs, input
      sets or objects;
    - class mismatches between a source object and the input object it
      feeds (no subtyping — paper §7);
    - a taskclass that declares both an [abort outcome] (which makes it
      atomic) and a [mark] (atomic tasks may not release early);
    - a repeat outcome referenced by any task other than its producer;
    - a compound output binding whose kind differs from the taskclass
      declaration, or that fails to source a declared output object.

    Warnings flag suspicious-but-runnable scripts: input objects with no
    sources (they must then be supplied externally, as for a root task),
    compound outcomes that are never produced, and static dependency
    cycles among constituents (which can still be broken at run time by
    alternative sources). *)

type severity = Error | Warning

type issue = { severity : severity; msg : string; loc : Loc.t }

val check : Ast.script -> issue list
(** All issues, in source order. Template instantiations must have been
    expanded away ({!Template.expand}); any that remain are errors. *)

val errors_only : issue list -> issue list

val ok : Ast.script -> (unit, issue list) result
(** [Ok ()] when {!check} reports no [Error]-severity issues. *)

val pp_issue : Format.formatter -> issue -> unit
