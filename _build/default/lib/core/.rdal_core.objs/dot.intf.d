lib/core/dot.mli: Schema
