lib/core/lexer.ml: Buffer List Loc Printf String Token
