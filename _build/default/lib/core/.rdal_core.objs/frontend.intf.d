lib/core/frontend.mli: Ast Format Loc Schema
