lib/core/template.ml: Ast List Loc Printf
