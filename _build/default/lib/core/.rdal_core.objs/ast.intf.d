lib/core/ast.mli: Loc
