lib/core/parser.mli: Ast Loc
