lib/core/ast.ml: List Loc
