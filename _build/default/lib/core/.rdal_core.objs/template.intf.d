lib/core/template.mli: Ast Loc
