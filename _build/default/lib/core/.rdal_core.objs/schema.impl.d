lib/core/schema.ml: Ast Format List Printf
