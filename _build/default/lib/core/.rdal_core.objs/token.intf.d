lib/core/token.mli: Format
