lib/core/token.ml: Format List Printf
