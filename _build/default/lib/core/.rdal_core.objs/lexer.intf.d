lib/core/lexer.mli: Loc Token
