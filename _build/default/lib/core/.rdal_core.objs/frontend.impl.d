lib/core/frontend.ml: Ast Format List Loc Parser Printf Schema Template Validate
