lib/core/validate.mli: Ast Format Loc
