lib/core/pretty.ml: Ast Format
