lib/core/validate.ml: Ast Format Hashtbl List Loc Option String
