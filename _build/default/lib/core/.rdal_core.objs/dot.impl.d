lib/core/dot.ml: Buffer List Printf Schema String
