lib/core/schema.mli: Ast
