type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }

let pp ppf t = Format.fprintf ppf "line %d, column %d" t.line t.col

let to_string t = Format.asprintf "%a" pp t
