(** Recursive-descent parser for workflow scripts.

    Semicolons between declarations and clauses are treated as optional
    separators (the paper's examples use them inconsistently), and both
    straight and curly quotes delimit strings, so the paper's scripts
    parse verbatim. *)

exception Error of string * Loc.t

val script : string -> Ast.script
(** Parse a whole script. Raises {!Error} with a message and position on
    the first syntax error. *)

val script_result : string -> (Ast.script, string * Loc.t) result
(** Exception-free variant. *)
