(** Task-template expansion (paper §4.5).

    [tasktemplate] declarations parameterise task/compound definitions
    over task names. Expansion replaces every instantiation
    [name of tasktemplate tmpl(arg1, ...)] — at top level or as a
    compound constituent — with a copy of the template body, renamed to
    [name], in which each parameter is substituted by the corresponding
    argument wherever a task name is referenced. Template declarations
    are dropped from the result. *)

val expand : Ast.script -> (Ast.script, string * Loc.t) result
(** Fails on: unknown template, arity mismatch, duplicate parameter
    names, or a template whose body instantiates another template
    (one level of templates keeps expansion trivially terminating). *)
