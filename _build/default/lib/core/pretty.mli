(** Pretty-printer: renders an AST back to concrete syntax.

    [Parser.script (to_string s)] re-parses to an equal AST (modulo
    locations) — the formatter for the [fmt] CLI command and the
    canonical form the repository service stores. *)

val pp_script : Format.formatter -> Ast.script -> unit

val pp_decl : Format.formatter -> Ast.decl -> unit

val to_string : Ast.script -> string
