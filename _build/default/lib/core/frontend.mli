(** Convenience pipeline: parse → expand templates → validate → compile.

    This is the public entry point application code should use; the
    individual passes ({!Parser}, {!Template}, {!Validate}, {!Schema})
    remain available for tools that need intermediate results. *)

type error = { stage : string; msg : string; loc : Loc.t option }

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

val load : string -> (Ast.script, error) result
(** Parse, expand and validate a script source. Validation warnings are
    not errors; retrieve them with {!Validate.check} if needed. *)

val compile : string -> root:string -> (Schema.task, error) result
(** [load] then resolve the named top-level instance into a schema. *)

val roots : Ast.script -> string list
(** Names of top-level task/compound instances (schema roots). *)
