let buf_add = Buffer.add_string

(* Node ids must be unique across nested scopes: qualify by path. *)
let node_id path name = Printf.sprintf "\"%s\"" (String.concat "/" (path @ [ name ]))

let escape_label s = String.concat "\\\"" (String.split_on_char '"' s)

let edge buf ~from ~into ~style ~label =
  let label_attr = if label = "" then "" else Printf.sprintf ", label=\"%s\"" (escape_label label) in
  buf_add buf (Printf.sprintf "  %s -> %s [style=%s%s];\n" from into style label_attr)

(* Within a compound scope, resolve a source task name to a node id:
   either a sibling child, or the enclosing compound's input port. *)
let resolve_source ~path ~self ~children name =
  if List.exists (fun (c : Schema.task) -> c.Schema.name = name) children then
    node_id path name
  else if name = self then node_id path "__inputs"
  else node_id path name

let rec emit_task buf ~path (task : Schema.task) =
  match task.Schema.body with
  | Schema.Simple ->
    buf_add buf
      (Printf.sprintf "  %s [shape=box, label=\"%s\"];\n" (node_id path task.Schema.name)
         (escape_label task.Schema.name))
  | Schema.Compound { children; bindings } ->
    let inner = path @ [ task.Schema.name ] in
    buf_add buf (Printf.sprintf "  subgraph \"cluster_%s\" {\n" (String.concat "/" inner));
    buf_add buf (Printf.sprintf "  label=\"%s\";\n" (escape_label task.Schema.name));
    buf_add buf
      (Printf.sprintf "  %s [shape=point, label=\"\"];\n" (node_id inner "__inputs"));
    List.iter (emit_task buf ~path:inner) children;
    List.iter (emit_child_edges buf ~path:inner ~self:task.Schema.name ~children) children;
    emit_binding_edges buf ~path:inner ~self:task.Schema.name ~children ~bindings
      ~compound:task.Schema.name;
    buf_add buf "  }\n"

and emit_child_edges buf ~path ~self ~children (child : Schema.task) =
  let dst = node_id path child.Schema.name in
  let from name = resolve_source ~path ~self ~children name in
  let emit_set (s : Schema.input_set) =
    List.iter
      (fun alternatives ->
        List.iter
          (fun (ns : Schema.notif_source) ->
            edge buf ~from:(from ns.Schema.n_task) ~into:dst ~style:"dotted" ~label:"")
          alternatives)
      s.Schema.is_notifications;
    List.iter
      (fun (io : Schema.input_object) ->
        List.iter
          (fun (os : Schema.obj_source) ->
            edge buf ~from:(from os.Schema.s_task) ~into:dst ~style:"solid" ~label:io.Schema.io_name)
          io.Schema.io_sources)
      s.Schema.is_objects
  in
  List.iter emit_set child.Schema.inputs

and emit_binding_edges buf ~path ~self ~children ~bindings ~compound =
  let outputs_node = node_id path "__outputs" in
  if bindings <> [] then
    buf_add buf (Printf.sprintf "  %s [shape=point, label=\"\"];\n" outputs_node);
  let from name = resolve_source ~path ~self ~children name in
  let emit_binding (b : Schema.binding) =
    List.iter
      (fun alternatives ->
        List.iter
          (fun (ns : Schema.notif_source) ->
            edge buf ~from:(from ns.Schema.n_task) ~into:outputs_node ~style:"dotted"
              ~label:b.Schema.b_name)
          alternatives)
      b.Schema.b_notifications;
    List.iter
      (fun (obj_name, sources) ->
        List.iter
          (fun (os : Schema.obj_source) ->
            edge buf ~from:(from os.Schema.s_task) ~into:outputs_node ~style:"solid"
              ~label:(Printf.sprintf "%s.%s" b.Schema.b_name obj_name))
          sources)
      b.Schema.b_objects
  in
  ignore compound;
  List.iter emit_binding bindings

let of_task task =
  let buf = Buffer.create 1024 in
  buf_add buf "digraph workflow {\n  rankdir=LR;\n";
  emit_task buf ~path:[] task;
  buf_add buf "}\n";
  Buffer.contents buf
