lib/tx/lock.mli:
