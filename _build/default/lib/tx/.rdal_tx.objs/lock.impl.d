lib/tx/lock.ml: Hashtbl List Set String
