lib/tx/txrecord.ml: Wire
