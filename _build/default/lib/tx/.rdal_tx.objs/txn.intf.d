lib/tx/txn.mli: Format Node Rpc
