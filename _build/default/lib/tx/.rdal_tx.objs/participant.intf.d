lib/tx/participant.mli: Kvstore Node Rpc Txrecord
