lib/tx/txn.ml: Format Hashtbl List Map Network Node Printf Rng Rpc Set Sim String Txrecord Wal
