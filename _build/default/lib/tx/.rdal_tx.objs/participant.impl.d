lib/tx/participant.ml: Hashtbl Kvstore List Lock Network Node Rpc Sim String Txrecord Wal
