lib/tx/txrecord.mli:
