type write = string * string option

type precord =
  | P_prepared of { txid : string; coordinator : string; writes : write list }
  | P_committed of string
  | P_aborted of string

type crecord =
  | C_incarnation
  | C_committed of { txid : string; participants : string list }
  | C_done of string

let service_read = "tx.read"

let service_prepare = "tx.prepare"

let service_commit = "tx.commit"

let service_abort = "tx.abort"

let service_status = "tx.status"

let enc_read_req = Wire.(pair string string)

let dec_read_req = Wire.(decode (d_pair d_string d_string))

let enc_read_reply = function
  | Ok v -> Wire.bool true ^ Wire.option Wire.string v
  | Error e -> Wire.bool false ^ Wire.string e

let dec_read_reply body =
  let open Wire in
  decode
    (fun d -> if d_bool d then Ok (d_option d_string d) else Error (d_string d))
    body

let enc_writes = Wire.(list (pair string (option string)))

let enc_prepare_req ~txid ~coordinator ~read_keys ~writes =
  Wire.string txid ^ Wire.string coordinator ^ Wire.(list string) read_keys ^ enc_writes writes

let dec_prepare_req body =
  let open Wire in
  decode
    (fun d ->
      let txid = d_string d in
      let coordinator = d_string d in
      let read_keys = d_list d_string d in
      let writes = d_list (d_pair d_string (d_option d_string)) d in
      (txid, coordinator, read_keys, writes))
    body

let enc_vote = Wire.bool

let dec_vote = Wire.(decode d_bool)

let enc_txid = Wire.string

let dec_txid = Wire.(decode d_string)

let enc_status_reply status =
  Wire.string (match status with `Committed -> "c" | `Aborted -> "a" | `Pending -> "p")

let dec_status_reply body =
  match Wire.(decode d_string) body with
  | "c" -> `Committed
  | "a" -> `Aborted
  | "p" -> `Pending
  | other -> raise (Wire.Malformed ("bad status: " ^ other))
