let default_work = Sim.ms 2

(* --- quickstart --- *)

let register_quickstart ?(work = default_work) reg =
  let source (ctx : Registry.context) =
    let seed =
      match List.assoc_opt "seed" ctx.Registry.inputs with
      | Some { Value.payload = Value.Int n; _ } -> n
      | _ -> 0
    in
    Registry.finish ~work "produced" [ ("data", Value.List [ Value.Int seed ]) ]
  in
  let transform (ctx : Registry.context) =
    let data =
      match List.assoc_opt "data" ctx.Registry.inputs with
      | Some { Value.payload = Value.List items; _ } -> items
      | _ -> []
    in
    let doubled = List.map (function Value.Int n -> Value.Int (2 * n) | v -> v) data in
    Registry.finish ~work "transformed" [ ("data", Value.List doubled) ]
  in
  let join (ctx : Registry.context) =
    let grab name =
      match List.assoc_opt name ctx.Registry.inputs with
      | Some { Value.payload = Value.List items; _ } -> items
      | _ -> []
    in
    Registry.finish ~work "joined" [ ("data", Value.List (grab "left" @ grab "right")) ]
  in
  Registry.bind reg ~code:"quickstart.source" source;
  Registry.bind reg ~code:"quickstart.transform" transform;
  Registry.bind reg ~code:"quickstart.join" join

(* --- service impact (§5.1) --- *)

type impact_scenario =
  | Impact_resolved
  | Impact_not_resolved
  | Impact_correlator_fails
  | Impact_no_fault

let register_service_impact ?(work = default_work) ~scenario reg =
  let correlator _ctx =
    match scenario with
    | Impact_correlator_fails -> Registry.finish ~work "alarmCorrelatorFailure" []
    | Impact_no_fault -> Registry.finish ~work "noFault" []
    | Impact_resolved | Impact_not_resolved ->
      Registry.finish ~work "foundFault" [ ("faultReport", Value.Str "link-down:bw-degraded") ]
  in
  let analysis (ctx : Registry.context) =
    let report =
      match List.assoc_opt "faultReport" ctx.Registry.inputs with
      | Some { Value.payload = Value.Str s; _ } -> s
      | _ -> "unknown"
    in
    Registry.finish ~work "analysed"
      [ ("serviceImpactReports", Value.List [ Value.Str ("impact:" ^ report) ]) ]
  in
  let resolution _ctx =
    match scenario with
    | Impact_not_resolved -> Registry.finish ~work "foundNoResolution" []
    | Impact_resolved | Impact_correlator_fails | Impact_no_fault ->
      Registry.finish ~work "foundResolution" [ ("resolutionReport", Value.Str "reroute+reschedule") ]
  in
  Registry.bind reg ~code:"refAlarmCorrelator" correlator;
  Registry.bind reg ~code:"refServiceImpactAnalysis" analysis;
  Registry.bind reg ~code:"refServiceImpactResolution" resolution

(* --- process order (§5.2) --- *)

type order_scenario = {
  authorised : bool;
  in_stock : bool;
  dispatch_ok : bool;
  capture_ok : bool;
}

let order_ok = { authorised = true; in_stock = true; dispatch_ok = true; capture_ok = true }

let register_process_order ?(work = default_work) ~scenario reg =
  let authorisation _ctx =
    if scenario.authorised then
      Registry.finish ~work "authorised" [ ("paymentInfo", Value.Str "visa-xxxx-4242") ]
    else Registry.finish ~work "notAuthorised" []
  in
  let check_stock _ctx =
    if scenario.in_stock then
      Registry.finish ~work "stockAvailable" [ ("stockInfo", Value.Str "warehouse-7") ]
    else Registry.finish ~work "stockNotAvailable" []
  in
  let dispatch _ctx =
    if scenario.dispatch_ok then
      Registry.finish ~work "dispatchCompleted" [ ("dispatchNote", Value.Str "parcel-001") ]
    else Registry.finish ~work "dispatchFailed" []
  in
  let capture _ctx =
    if scenario.capture_ok then Registry.finish ~work "done" []
    else Registry.finish ~work "paymentFailed" []
  in
  Registry.bind reg ~code:"refPaymentAuthorisation" authorisation;
  Registry.bind reg ~code:"refCheckStock" check_stock;
  Registry.bind reg ~code:"refDispatch" dispatch;
  Registry.bind reg ~code:"refPaymentCapture" capture

(* --- business trip (§5.3) --- *)

type trip_scenario = {
  flights_found : bool * bool * bool;
  hotel_fails_rounds : int;
  hotel_inner_retries : int;
  data_ok : bool;
}

let trip_smooth =
  { flights_found = (true, true, false); hotel_fails_rounds = 0; hotel_inner_retries = 0; data_ok = true }

let register_business_trip ?(work = default_work) ~scenario reg =
  let data_acquisition (ctx : Registry.context) =
    if scenario.data_ok then begin
      let user =
        match List.assoc_opt "user" ctx.Registry.inputs with
        | Some { Value.payload = Value.Str s; _ } -> s
        | _ -> "traveller"
      in
      Registry.finish ~work "acquired"
        [ ("tripData", Value.Pair (Value.Str user, Value.Str "AMS->NCL, max 300")) ]
    end
    else Registry.finish ~work "dataFailed" []
  in
  let airline which found _ctx =
    if found then
      Registry.finish ~work "found" [ ("flight", Value.Str (Printf.sprintf "flight-%s" which)) ]
    else Registry.finish ~work "notFound" []
  in
  let reservation (ctx : Registry.context) =
    let flight =
      match List.assoc_opt "flight" ctx.Registry.inputs with
      | Some { Value.payload = Value.Str s; _ } -> s
      | _ -> "flight-?"
    in
    Registry.finish ~work "reserved"
      [ ("plane", Value.Str ("seat-12A@" ^ flight)); ("cost", Value.Int 275) ]
  in
  (* One call per hotel attempt across the whole run: the first
     [hotel_fails_rounds] businessReservation rounds end in "failed"
     (triggering compensation + retry); inner repeat retries happen
     within each round first. *)
  let hotel_round = ref 0 in
  let hotel (ctx : Registry.context) =
    if ctx.Registry.attempt <= scenario.hotel_inner_retries then
      Registry.finish ~work "tryAgain" []
    else begin
      incr hotel_round;
      if !hotel_round <= scenario.hotel_fails_rounds then Registry.finish ~work "failed" []
      else Registry.finish ~work "booked" [ ("hotel", Value.Str "hotel-county") ]
    end
  in
  let cancellation _ctx = Registry.finish ~work "cancelled" [] in
  let print_tickets (ctx : Registry.context) =
    let show name =
      match List.assoc_opt name ctx.Registry.inputs with
      | Some { Value.payload = Value.Str s; _ } -> s
      | _ -> "?"
    in
    Registry.finish ~work "printed"
      [ ("tickets", Value.Str (Printf.sprintf "tickets[%s, %s]" (show "plane") (show "hotel"))) ]
  in
  let f1, f2, f3 = scenario.flights_found in
  Registry.bind reg ~code:"refDataAcquisition" data_acquisition;
  Registry.bind reg ~code:"refAirlineQuery1" (airline "klm" f1);
  Registry.bind reg ~code:"refAirlineQuery2" (airline "ba" f2);
  Registry.bind reg ~code:"refAirlineQuery3" (airline "airfrance" f3);
  Registry.bind reg ~code:"refFlightReservation" reservation;
  Registry.bind reg ~code:"refHotelReservation" hotel;
  Registry.bind reg ~code:"refFlightCancellation" cancellation;
  Registry.bind reg ~code:"refPrintTickets" print_tickets

(* --- timeout demo --- *)

let register_timeout_demo ?(work = default_work) ~responder_delay reg =
  let responder _ctx =
    { Registry.steps = [ Registry.Work responder_delay ]; finish = { Registry.output = "replied"; objects = [ ("reply", Value.Str "pong") ] } }
  in
  let consumer (ctx : Registry.context) =
    if ctx.Registry.input_set = "timeout" then Registry.finish ~work "timedOut" []
    else Registry.finish ~work "consumed" []
  in
  Registry.bind reg ~code:"timeout.responder" responder;
  Registry.bind reg ~code:"timeout.consumer" consumer

let register_all_defaults reg =
  register_quickstart reg;
  register_service_impact ~scenario:Impact_resolved reg;
  register_process_order ~scenario:order_ok reg;
  register_business_trip ~scenario:trip_smooth reg;
  register_timeout_demo ~responder_delay:(Sim.ms 5) reg
