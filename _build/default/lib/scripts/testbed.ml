type t = {
  sim : Sim.t;
  net : Network.t;
  rpc : Rpc.t;
  registry : Registry.t;
  engine : Engine.t;
  nodes : Node.t list;
  participants : (string * Participant.t) list;
}

let make ?(config = Network.default_config) ?(engine_config = Engine.default_config)
    ?(seed = 42L) ?(nodes = [ "n0" ]) () =
  let sim = Sim.create ~seed () in
  let net = Network.create ~config sim in
  let rpc = Rpc.create net in
  let registry = Registry.create () in
  let members =
    List.map
      (fun id ->
        let node = Network.add_node net ~id in
        Rpc.attach rpc node;
        let participant = Participant.create ~rpc ~node in
        let mgr = Txn.manager ~rpc ~node in
        (node, participant, mgr))
      nodes
  in
  let engine_node, participant, mgr =
    match members with
    | first :: _ -> first
    | [] -> invalid_arg "Testbed.make: need at least one node"
  in
  let engine =
    Engine.create ~config:engine_config ~rpc ~node:engine_node ~mgr ~participant ~registry ()
  in
  let all_nodes = List.map (fun (n, _, _) -> n) members in
  List.iter
    (fun node -> if Node.id node <> Node.id engine_node then ignore (Engine.attach_host engine node))
    all_nodes;
  let participants = List.map (fun (n, p, _) -> (Node.id n, p)) members in
  { sim; net; rpc; registry; engine; nodes = all_nodes; participants }

let node t id =
  match List.find_opt (fun n -> Node.id n = id) t.nodes with
  | Some n -> n
  | None -> invalid_arg ("Testbed.node: unknown node " ^ id)

let participant t id =
  match List.assoc_opt id t.participants with
  | Some p -> p
  | None -> invalid_arg ("Testbed.participant: unknown node " ^ id)

let run ?until t = Sim.run ?until t.sim

let crash t id = Node.crash (node t id)

let recover t id = Node.recover (node t id)

let launch_and_run ?until t ~script ~root ~inputs =
  match Engine.launch t.engine ~script ~root ~inputs with
  | Error e -> Error e
  | Ok iid -> (
    run ?until t;
    match Engine.status t.engine iid with
    | Some status -> Ok (iid, status)
    | None -> Error "instance vanished")

let str_input name payload ~cls = (name, Value.obj ~cls (Value.Str payload))
