let root = "fulfillment"

let script =
  {|
// Supply-chain order fulfillment: templates, subtyping, timers,
// priorities, atomic retries and compensation in one application.
class Order;
class Payment;
class CardPayment extends Payment;
class Quote;
class Shipment;
class Invoice;
class Timer;

taskclass Authorize {
    inputs { input main { payment of class Payment } };
    outputs { outcome approved { }; outcome declined { } }
};

taskclass SupplierQuery {
    inputs { input main { order of class Order } };
    outputs {
        outcome quoted { quote of class Quote };
        outcome declinedQuote { }
    }
};

taskclass SelectQuote {
    inputs {
        input main { quote of class Quote };
        input timeout { t of class Timer }
    };
    outputs { outcome selected { quote of class Quote }; outcome noQuote { } }
};

taskclass Reserve {
    inputs { input main { quote of class Quote } };
    outputs {
        outcome reserved { shipment of class Shipment };
        abort outcome reserveFailed { }
    }
};

taskclass Ship {
    inputs { input main { shipment of class Shipment } };
    outputs { outcome shipped { shipment of class Shipment }; outcome shipFailed { } }
};

taskclass MakeInvoice {
    inputs { input main { quote of class Quote } };
    outputs { outcome invoiced { invoice of class Invoice } }
};

taskclass ReleaseInventory {
    inputs { input main { shipment of class Shipment } };
    outputs { outcome released { } }
};

taskclass Fulfillment {
    inputs { input main { order of class Order; payment of class CardPayment } };
    outputs {
        outcome fulfilled { shipment of class Shipment; invoice of class Invoice };
        outcome rejected { };
        outcome failed { }
    }
};

// one template, instantiated per supplier (paper section 4.5)
tasktemplate task supplierQuery of taskclass SupplierQuery {
    parameters { src };
    implementation { "code" is "supply.query" };
    inputs { input main {
        inputobject order from { order of task src if input main }
    } }
};

compoundtask fulfillment of taskclass Fulfillment {
    task authorize of taskclass Authorize {
        implementation { "code" is "supply.authorize" };
        inputs { input main {
            // subtyping: a CardPayment flows where a Payment is expected
            inputobject payment from { payment of task fulfillment if input main }
        } }
    };
    quoteA of tasktemplate supplierQuery(fulfillment);
    quoteB of tasktemplate supplierQuery(fulfillment);
    task selectQuote of taskclass SelectQuote {
        implementation { "code" is "supply.select", "timeout" is "200" };
        inputs {
            input main {
                inputobject quote from {
                    quote of task quoteA if output quoted;
                    quote of task quoteB if output quoted
                }
            };
            input timeout { }
        }
    };
    task reserve of taskclass Reserve {
        implementation { "code" is "supply.reserve", "retries" is "3" };
        inputs { input main {
            notification from { task authorize if output approved };
            inputobject quote from { quote of task selectQuote if output selected }
        } }
    };
    task ship of taskclass Ship {
        implementation { "code" is "supply.ship", "priority" is "10" };
        inputs { input main {
            inputobject shipment from { shipment of task reserve if output reserved }
        } }
    };
    task invoice of taskclass MakeInvoice {
        implementation { "code" is "supply.invoice", "priority" is "1" };
        inputs { input main {
            notification from { task reserve if output reserved };
            inputobject quote from { quote of task selectQuote if output selected }
        } }
    };
    task releaseInventory of taskclass ReleaseInventory {
        implementation { "code" is "supply.release" };
        inputs { input main {
            notification from { task ship if output shipFailed };
            inputobject shipment from { shipment of task reserve }
        } }
    };
    outputs {
        outcome fulfilled {
            notification from { task ship if output shipped };
            notification from { task invoice if output invoiced };
            outputobject shipment from { shipment of task ship if output shipped };
            outputobject invoice from { invoice of task invoice if output invoiced }
        };
        outcome rejected {
            notification from {
                task authorize if output declined;
                task selectQuote if output noQuote
            }
        };
        outcome failed {
            notification from { task releaseInventory if output released }
        }
    }
}
|}

type scenario = {
  authorised : bool;
  supplier_a_quotes : bool;
  supplier_b_quotes : bool;
  reserve_aborts : int;
  ship_ok : bool;
}

let smooth =
  {
    authorised = true;
    supplier_a_quotes = true;
    supplier_b_quotes = true;
    reserve_aborts = 0;
    ship_ok = true;
  }

let register ?(work = Sim.ms 2) ~scenario reg =
  let authorize _ctx =
    if scenario.authorised then Registry.finish ~work "approved" []
    else Registry.finish ~work "declined" []
  in
  (* the two template instances share this code (templates parameterise
     task names, not implementations); a call counter tells them apart:
     the scheduler dispatches quoteA then quoteB deterministically *)
  let query_calls = ref 0 in
  let query _ctx =
    incr query_calls;
    let quotes = if !query_calls = 1 then scenario.supplier_a_quotes else scenario.supplier_b_quotes in
    if quotes then
      Registry.finish ~work "quoted"
        [ ("quote", Value.Str (Printf.sprintf "supplier-%d: 90eur" !query_calls)) ]
    else Registry.finish ~work "declinedQuote" []
  in
  let select (ctx : Registry.context) =
    if ctx.Registry.input_set = "timeout" then Registry.finish ~work "noQuote" []
    else
      let quote =
        match List.assoc_opt "quote" ctx.Registry.inputs with
        | Some { Value.payload; _ } -> payload
        | None -> Value.Unit
      in
      Registry.finish ~work "selected" [ ("quote", quote) ]
  in
  let reserve (ctx : Registry.context) =
    if ctx.Registry.attempt <= scenario.reserve_aborts then
      Registry.finish ~work "reserveFailed" []
    else Registry.finish ~work "reserved" [ ("shipment", Value.Str "pallet-77") ]
  in
  let ship (ctx : Registry.context) =
    if scenario.ship_ok then
      Registry.finish ~work "shipped"
        [ ("shipment", (List.assoc "shipment" ctx.Registry.inputs).Value.payload) ]
    else Registry.finish ~work "shipFailed" []
  in
  let invoice _ctx = Registry.finish ~work "invoiced" [ ("invoice", Value.Str "inv-2026-07") ] in
  let release _ctx = Registry.finish ~work "released" [] in
  Registry.bind reg ~code:"supply.authorize" authorize;
  Registry.bind reg ~code:"supply.query" query;
  Registry.bind reg ~code:"supply.select" select;
  Registry.bind reg ~code:"supply.reserve" reserve;
  Registry.bind reg ~code:"supply.ship" ship;
  Registry.bind reg ~code:"supply.invoice" invoice;
  Registry.bind reg ~code:"supply.release" release

let inputs =
  [
    ("order", Value.obj ~cls:"Order" (Value.Str "order-501"));
    ("payment", Value.obj ~cls:"CardPayment" (Value.Str "visa-4242"));
  ]
