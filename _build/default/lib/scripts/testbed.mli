(** One-call setup of a simulated cluster with the full stack: network,
    RPC, per-node transaction participant + coordinator, one execution
    service, and task hosts on every node. Used by the examples, the
    engine tests and the benches. *)

type t = {
  sim : Sim.t;
  net : Network.t;
  rpc : Rpc.t;
  registry : Registry.t;
  engine : Engine.t;
  nodes : Node.t list;
  participants : (string * Participant.t) list;  (** by node id *)
}

val make :
  ?config:Network.config ->
  ?engine_config:Engine.config ->
  ?seed:int64 ->
  ?nodes:string list ->
  unit ->
  t
(** [nodes] defaults to [["n0"]]; the engine lives on the first node. *)

val node : t -> string -> Node.t

val participant : t -> string -> Participant.t

val run : ?until:Sim.time -> t -> unit

val crash : t -> string -> unit

val recover : t -> string -> unit

val launch_and_run :
  ?until:Sim.time ->
  t ->
  script:string ->
  root:string ->
  inputs:(string * Value.obj) list ->
  (string * Wstate.status, string) result
(** Launch an instance, drive the simulation until it drains (or
    [until]), and return the instance id and final status. *)

val str_input : string -> string -> cls:string -> string * Value.obj
(** [str_input name payload ~cls] builds one external input binding. *)
