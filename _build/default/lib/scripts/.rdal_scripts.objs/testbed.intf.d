lib/scripts/testbed.mli: Engine Network Node Participant Registry Rpc Sim Value Wstate
