lib/scripts/impls.ml: List Printf Registry Sim Value
