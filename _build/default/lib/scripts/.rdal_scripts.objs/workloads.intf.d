lib/scripts/workloads.mli: Registry Sim Value
