lib/scripts/workloads.ml: Buffer Printf Registry Sim Value
