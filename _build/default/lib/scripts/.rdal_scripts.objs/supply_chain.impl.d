lib/scripts/supply_chain.ml: List Printf Registry Sim Value
