lib/scripts/paper_scripts.ml:
