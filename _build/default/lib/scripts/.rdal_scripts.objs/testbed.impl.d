lib/scripts/testbed.ml: Engine List Network Node Participant Registry Rpc Sim Txn Value
