lib/scripts/supply_chain.mli: Registry Sim Value
