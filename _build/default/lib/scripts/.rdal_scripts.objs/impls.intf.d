lib/scripts/impls.mli: Registry Sim
