lib/scripts/paper_scripts.mli:
