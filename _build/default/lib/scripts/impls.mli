(** Reference implementations for the paper scripts' code names.

    Each [register_*] binds every code name one of the
    {!Paper_scripts} scripts uses. Scenario knobs steer which outcomes
    the implementations produce, so tests and benches can drive every
    path in the figures (success, cancellation, compensation, retry
    loops, timeouts). *)

val register_quickstart : ?work:Sim.time -> Registry.t -> unit
(** [quickstart.source] / [.transform] / [.join]; payloads are integer
    lists so the join result is checkable. *)

(** Which outcome the §5.1 application reaches. *)
type impact_scenario =
  | Impact_resolved
  | Impact_not_resolved
  | Impact_correlator_fails
  | Impact_no_fault  (** correlator finds nothing; application stalls *)

val register_service_impact : ?work:Sim.time -> scenario:impact_scenario -> Registry.t -> unit

type order_scenario = {
  authorised : bool;
  in_stock : bool;
  dispatch_ok : bool;
  capture_ok : bool;
}

val order_ok : order_scenario

val register_process_order : ?work:Sim.time -> scenario:order_scenario -> Registry.t -> unit

type trip_scenario = {
  flights_found : bool * bool * bool;  (** which airline queries find a flight *)
  hotel_fails_rounds : int;
      (** how many whole businessReservation rounds fail on the hotel
          (each triggers flightCancellation + retry) before one books *)
  hotel_inner_retries : int;  (** hotel repeat-outcome retries within a round *)
  data_ok : bool;
}

val trip_smooth : trip_scenario
(** Everything succeeds at the first attempt. *)

val register_business_trip : ?work:Sim.time -> scenario:trip_scenario -> Registry.t -> unit

val register_timeout_demo : ?work:Sim.time -> responder_delay:Sim.time -> Registry.t -> unit
(** The responder takes [responder_delay] of work; the consumer's
    timeout input set is configured (in the script) at 50ms. *)

val register_all_defaults : Registry.t -> unit
(** Bind every script's code names with the happy-path scenarios. *)
