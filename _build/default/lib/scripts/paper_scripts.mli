(** The paper's example applications as complete scripts.

    §5 of the paper elides the taskclass declarations and parts of the
    business-trip script ("..."); these are the completed versions. Each
    script parses, validates with no errors, and runs on the engine with
    the implementations from {!Impls}. *)

val quickstart : string
(** Fig 1: the four-task diamond (t1; t2 ∥ t3; t4). Root: [diamond]. *)

val quickstart_root : string

val service_impact : string
(** §5.1 / Fig 6: network management — alarm correlation, impact
    analysis, impact resolution. Root: [serviceImpactApplication]. *)

val service_impact_root : string

val process_order : string
(** §5.2 / Fig 7: electronic order processing. Root:
    [processOrderApplication]. *)

val process_order_root : string

val business_trip : string
(** §5.3 / Figs 8–9: trip reservation with a retry loop (repeat
    outcome), compensation (flightCancellation) and a mark output
    ([toPay]). Root: [tripReservation]. *)

val business_trip_root : string

val timeout_demo : string
(** §4.2's timer idiom: a consumer with a normal input set and a
    [timeout] input set fed by the engine's timer. Root: [timeoutDemo]. *)

val timeout_demo_root : string

val all : (string * string * string) list
(** (name, source, root) for every script above. *)
