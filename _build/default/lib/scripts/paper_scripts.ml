let quickstart_root = "diamond"

let quickstart =
  {|
// Fig 1: t1 feeds t2 and t3 (dataflow), t4 joins both.
class Data;

taskclass Source {
    inputs { input main { seed of class Data } };
    outputs { outcome produced { data of class Data } }
};

taskclass Transform {
    inputs { input main { data of class Data } };
    outputs { outcome transformed { data of class Data } }
};

taskclass Join {
    inputs { input main { left of class Data; right of class Data } };
    outputs { outcome joined { data of class Data } }
};

taskclass Diamond {
    inputs { input main { seed of class Data } };
    outputs { outcome finished { data of class Data } }
};

compoundtask diamond of taskclass Diamond {
    task t1 of taskclass Source {
        implementation { "code" is "quickstart.source" };
        inputs { input main { inputobject seed from { seed of task diamond if input main } } }
    };
    task t2 of taskclass Transform {
        implementation { "code" is "quickstart.transform" };
        inputs { input main { inputobject data from { data of task t1 if output produced } } }
    };
    task t3 of taskclass Transform {
        implementation { "code" is "quickstart.transform" };
        inputs { input main { inputobject data from { data of task t1 if output produced } } }
    };
    task t4 of taskclass Join {
        implementation { "code" is "quickstart.join" };
        inputs { input main {
            inputobject left from { data of task t2 if output transformed };
            inputobject right from { data of task t3 if output transformed }
        } }
    };
    outputs {
        outcome finished { outputobject data from { data of task t4 if output joined } }
    }
}
|}

let service_impact_root = "serviceImpactApplication"

let service_impact =
  {|
// Paper section 5.1 / Fig 6: network-management service impact application.
class AlarmsSource;
class FaultReport;
class ServiceImpactReports;
class ResolutionReport;

taskclass AlarmCorrelator {
    inputs { input main { alarmSource of class AlarmsSource } };
    outputs {
        outcome foundFault { faultReport of class FaultReport };
        outcome noFault { };
        outcome alarmCorrelatorFailure { }
    }
};

taskclass ServiceImpactAnalysis {
    inputs { input main { faultReport of class FaultReport } };
    outputs {
        outcome analysed { serviceImpactReports of class ServiceImpactReports };
        outcome serviceImpactAnalysisFailure { }
    }
};

taskclass ServiceImpactResolution {
    inputs { input main { serviceImpactReports of class ServiceImpactReports } };
    outputs {
        outcome foundResolution { resolutionReport of class ResolutionReport };
        outcome foundNoResolution { };
        outcome serviceImpactResolutionFailure { }
    }
};

taskclass ServiceImpactApplication {
    inputs { input main { alarmsSource of class AlarmsSource } };
    outputs {
        outcome resolved { resolutionReport of class ResolutionReport };
        outcome notResolved { };
        outcome serviceImpactApplicationFailure { }
    }
};

compoundtask serviceImpactApplication of taskclass ServiceImpactApplication {
    task alarmCorrelator of taskclass AlarmCorrelator {
        implementation { "code" is "refAlarmCorrelator" };
        inputs { input main {
            inputobject alarmSource from {
                alarmsSource of task serviceImpactApplication if input main
            }
        } }
    };
    task serviceImpactAnalysis of taskclass ServiceImpactAnalysis {
        implementation { "code" is "refServiceImpactAnalysis" };
        inputs { input main {
            inputobject faultReport from {
                faultReport of task alarmCorrelator if output foundFault
            }
        } }
    };
    task serviceImpactResolution of taskclass ServiceImpactResolution {
        implementation { "code" is "refServiceImpactResolution" };
        inputs { input main {
            inputobject serviceImpactReports from {
                serviceImpactReports of task serviceImpactAnalysis
            }
        } }
    };
    outputs {
        outcome resolved {
            outputobject resolutionReport from {
                resolutionReport of task serviceImpactResolution if output foundResolution
            }
        };
        outcome notResolved {
            notification from { task serviceImpactResolution if output foundNoResolution }
        };
        outcome serviceImpactApplicationFailure {
            notification from {
                task alarmCorrelator if output alarmCorrelatorFailure;
                task serviceImpactAnalysis if output serviceImpactAnalysisFailure;
                task serviceImpactResolution if output serviceImpactResolutionFailure
            }
        }
    }
}
|}

let process_order_root = "processOrderApplication"

let process_order =
  {|
// Paper section 5.2 / Fig 7: electronic order processing.
class Order;
class DispatchNote;
class PaymentInfo;
class StockInfo;

taskclass PaymentAuthorisation {
    inputs { input main { order of class Order } };
    outputs {
        outcome authorised { paymentInfo of class PaymentInfo };
        outcome notAuthorised { }
    }
};

taskclass CheckStock {
    inputs { input main { order of class Order } };
    outputs {
        outcome stockAvailable { stockInfo of class StockInfo };
        outcome stockNotAvailable { }
    }
};

taskclass Dispatch {
    inputs { input main { stockInfo of class StockInfo } };
    outputs {
        outcome dispatchCompleted { dispatchNote of class DispatchNote };
        abort outcome dispatchFailed { }
    }
};

taskclass PaymentCapture {
    inputs { input main { paymentInfo of class PaymentInfo } };
    outputs {
        outcome done { };
        abort outcome paymentFailed { }
    }
};

taskclass ProcessOrderApplication {
    inputs { input main { order of class Order } };
    outputs {
        outcome orderCompleted { dispatchNote of class DispatchNote };
        outcome orderCancelled { }
    }
};

compoundtask processOrderApplication of taskclass ProcessOrderApplication {
    task paymentAuthorisation of taskclass PaymentAuthorisation {
        implementation { "code" is "refPaymentAuthorisation" };
        inputs { input main {
            inputobject order from { order of task processOrderApplication if input main }
        } }
    };
    task checkStock of taskclass CheckStock {
        implementation { "code" is "refCheckStock" };
        inputs { input main {
            inputobject order from { order of task processOrderApplication if input main }
        } }
    };
    task dispatch of taskclass Dispatch {
        implementation { "code" is "refDispatch" };
        inputs { input main {
            notification from { task paymentAuthorisation if output authorised };
            inputobject stockInfo from { stockInfo of task checkStock if output stockAvailable }
        } }
    };
    task paymentCapture of taskclass PaymentCapture {
        implementation { "code" is "refPaymentCapture" };
        inputs { input main {
            notification from { task dispatch if output dispatchCompleted };
            inputobject paymentInfo from { paymentInfo of task paymentAuthorisation if output authorised }
        } }
    };
    outputs {
        outcome orderCompleted {
            notification from { task paymentCapture if output done };
            outputobject dispatchNote from { dispatchNote of task dispatch if output dispatchCompleted }
        };
        outcome orderCancelled {
            notification from {
                task paymentAuthorisation if output notAuthorised;
                task checkStock if output stockNotAvailable;
                task dispatch if output dispatchFailed;
                task paymentCapture if output paymentFailed
            }
        }
    }
}
|}

let business_trip_root = "tripReservation"

let business_trip =
  {|
// Paper section 5.3 / Figs 8-9: business trip reservation.
// businessReservation loops through its repeat outcome until it reaches
// a final outcome; flightCancellation compensates a reserved flight when
// no hotel can be found; toPay is released early as a mark.
class User;
class TripData;
class Flight;
class Plane;
class Cost;
class Hotel;
class Tickets;

taskclass DataAcquisition {
    inputs { input main { user of class User } };
    outputs {
        outcome acquired { tripData of class TripData };
        outcome dataFailed { }
    }
};

taskclass AirlineQuery {
    inputs { input main { tripData of class TripData } };
    outputs {
        outcome found { flight of class Flight };
        outcome notFound { }
    }
};

taskclass CheckFlightReservation {
    inputs { input main { tripData of class TripData } };
    outputs {
        outcome flightFound { flight of class Flight };
        outcome noFlight { }
    }
};

taskclass FlightReservation {
    inputs { input main { flight of class Flight } };
    outputs {
        outcome reserved { plane of class Plane; cost of class Cost };
        abort outcome reservationFailed { }
    }
};

taskclass HotelReservation {
    inputs { input main { tripData of class TripData } };
    outputs {
        outcome booked { hotel of class Hotel };
        outcome failed { };
        repeat outcome tryAgain { }
    }
};

taskclass FlightCancellation {
    inputs { input main { plane of class Plane } };
    outputs { outcome cancelled { } }
};

taskclass PrintTickets {
    inputs { input main { plane of class Plane; hotel of class Hotel } };
    outputs { outcome printed { tickets of class Tickets } }
};

taskclass BusinessReservation {
    inputs { input main { user of class User } };
    outputs {
        outcome success { plane of class Plane; hotel of class Hotel; cost of class Cost };
        repeat outcome retry { user of class User };
        abort outcome failed { }
    }
};

taskclass TripReservation {
    inputs { input main { user of class User } };
    outputs {
        outcome done { tickets of class Tickets };
        outcome cancelled { };
        mark toPay { cost of class Cost }
    }
};

compoundtask tripReservation of taskclass TripReservation {
    compoundtask businessReservation of taskclass BusinessReservation {
        inputs { input main {
            inputobject user from {
                user of task tripReservation if input main;
                user of task businessReservation if output retry
            }
        } };
        task dataAcquisition of taskclass DataAcquisition {
            implementation { "code" is "refDataAcquisition" };
            inputs { input main {
                inputobject user from { user of task businessReservation if input main }
            } }
        };
        compoundtask checkFlightReservation of taskclass CheckFlightReservation {
            inputs { input main {
                inputobject tripData from { tripData of task dataAcquisition if output acquired }
            } };
            task query1 of taskclass AirlineQuery {
                implementation { "code" is "refAirlineQuery1" };
                inputs { input main {
                    inputobject tripData from { tripData of task checkFlightReservation if input main }
                } }
            };
            task query2 of taskclass AirlineQuery {
                implementation { "code" is "refAirlineQuery2" };
                inputs { input main {
                    inputobject tripData from { tripData of task checkFlightReservation if input main }
                } }
            };
            task query3 of taskclass AirlineQuery {
                implementation { "code" is "refAirlineQuery3" };
                inputs { input main {
                    inputobject tripData from { tripData of task checkFlightReservation if input main }
                } }
            };
            outputs {
                outcome flightFound {
                    outputobject flight from {
                        flight of task query1 if output found;
                        flight of task query2 if output found;
                        flight of task query3 if output found
                    }
                };
                outcome noFlight {
                    notification from { task query1 if output notFound };
                    notification from { task query2 if output notFound };
                    notification from { task query3 if output notFound }
                }
            }
        };
        task flightReservation of taskclass FlightReservation {
            implementation { "code" is "refFlightReservation" };
            inputs { input main {
                inputobject flight from { flight of task checkFlightReservation if output flightFound }
            } }
        };
        task hotelReservation of taskclass HotelReservation {
            implementation { "code" is "refHotelReservation" };
            inputs { input main {
                notification from { task flightReservation if output reserved };
                inputobject tripData from { tripData of task dataAcquisition if output acquired }
            } }
        };
        task flightCancellation of taskclass FlightCancellation {
            implementation { "code" is "refFlightCancellation" };
            inputs { input main {
                notification from { task hotelReservation if output failed };
                inputobject plane from { plane of task flightReservation }
            } }
        };
        outputs {
            outcome success {
                notification from { task hotelReservation if output booked };
                outputobject plane from { plane of task flightReservation if output reserved };
                outputobject hotel from { hotel of task hotelReservation if output booked };
                outputobject cost from { cost of task flightReservation if output reserved }
            };
            repeat outcome retry {
                notification from { task flightCancellation if output cancelled };
                outputobject user from { user of task businessReservation if input main }
            };
            abort outcome failed {
                notification from {
                    task dataAcquisition if output dataFailed;
                    task checkFlightReservation if output noFlight;
                    task flightReservation if output reservationFailed
                }
            }
        }
    };
    task printTickets of taskclass PrintTickets {
        implementation { "code" is "refPrintTickets" };
        inputs { input main {
            inputobject plane from { plane of task businessReservation if output success };
            inputobject hotel from { hotel of task businessReservation if output success }
        } }
    };
    outputs {
        outcome done {
            outputobject tickets from { tickets of task printTickets if output printed }
        };
        outcome cancelled {
            notification from { task businessReservation if output failed }
        };
        mark toPay {
            outputobject cost from { cost of task businessReservation if output success }
        }
    }
}
|}

let timeout_demo_root = "timeoutDemo"

let timeout_demo =
  {|
// Section 4.2's timer idiom: wait for a reply with a timeout.
class Request;
class Reply;
class Timer;

taskclass Responder {
    inputs { input main { request of class Request } };
    outputs { outcome replied { reply of class Reply } }
};

taskclass Consumer {
    inputs {
        input main { reply of class Reply };
        input timeout { timer of class Timer }
    };
    outputs { outcome consumed { }; outcome timedOut { } }
};

taskclass TimeoutDemo {
    inputs { input main { request of class Request } };
    outputs { outcome finished { }; outcome expired { } }
};

compoundtask timeoutDemo of taskclass TimeoutDemo {
    task responder of taskclass Responder {
        implementation { "code" is "timeout.responder" };
        inputs { input main {
            inputobject request from { request of task timeoutDemo if input main }
        } }
    };
    task consumer of taskclass Consumer {
        implementation { "code" is "timeout.consumer", "timeout" is "50" };
        inputs {
            input main {
                inputobject reply from { reply of task responder if output replied }
            };
            input timeout { }
        }
    };
    outputs {
        outcome finished { notification from { task consumer if output consumed } };
        outcome expired { notification from { task consumer if output timedOut } }
    }
}
|}

let all =
  [
    ("quickstart", quickstart, quickstart_root);
    ("service_impact", service_impact, service_impact_root);
    ("process_order", process_order, process_order_root);
    ("business_trip", business_trip, business_trip_root);
    ("timeout_demo", timeout_demo, timeout_demo_root);
  ]
