(** Integration case study: supply-chain order fulfillment.

    One application exercising every language feature together:
    - a [tasktemplate] instantiated per supplier (§4.5);
    - object subtyping: the root receives a [CardPayment], the
      authorisation task accepts any [Payment] (§7 extension);
    - a timer input set bounding the wait for supplier quotes (§4.2);
    - an atomic reservation with automatic restart after aborts (Fig 3);
    - ["priority"] bindings ordering shipping before invoicing;
    - compensation: a failed shipment releases the reserved inventory;
    - ordered alternative sources across the two supplier quotes. *)

val script : string

val root : string
(** ["fulfillment"]. *)

type scenario = {
  authorised : bool;
  supplier_a_quotes : bool;
  supplier_b_quotes : bool;
  reserve_aborts : int;  (** aborts before the reservation succeeds *)
  ship_ok : bool;
}

val smooth : scenario

val register : ?work:Sim.time -> scenario:scenario -> Registry.t -> unit

val inputs : (string * Value.obj) list
(** An order plus a [CardPayment] (subclass of [Payment]). *)
