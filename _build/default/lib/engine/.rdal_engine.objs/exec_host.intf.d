lib/engine/exec_host.mli: Node Registry Rpc
