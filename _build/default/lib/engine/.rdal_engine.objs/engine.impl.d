lib/engine/engine.ml: Ast Exec_host Format Frontend Hashtbl List Network Node Option Parser Participant Pretty Printf Registry Rng Rpc Schema Sim String Template Trace Txn Validate Value Wfmsg Wstate
