lib/engine/value.ml: Format Wire
