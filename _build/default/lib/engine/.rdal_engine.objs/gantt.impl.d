lib/engine/gantt.ml: Buffer Bytes Hashtbl List Printf Sim String Trace
