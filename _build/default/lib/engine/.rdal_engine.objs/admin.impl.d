lib/engine/admin.ml: Engine Format List Node Rpc Value Wire Wstate
