lib/engine/exec_host.ml: Network Node Printexc Registry Rng Rpc Sim Wfmsg
