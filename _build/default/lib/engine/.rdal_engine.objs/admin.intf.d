lib/engine/admin.mli: Engine Rpc Wstate
