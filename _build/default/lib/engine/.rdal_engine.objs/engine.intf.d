lib/engine/engine.mli: Ast Exec_host Node Participant Registry Rpc Sim Trace Txn Value Wstate
