lib/engine/wfmsg.mli: Value
