lib/engine/wstate.mli: Ast Format Sim Value
