lib/engine/reconfig.ml: Ast List Loc Parser Printf Result
