lib/engine/gantt.mli: Trace
