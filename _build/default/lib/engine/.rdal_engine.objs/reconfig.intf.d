lib/engine/reconfig.mli: Ast
