lib/engine/wfmsg.ml: Value Wire
