lib/engine/registry.mli: Rng Schema Sim Value
