lib/engine/value.mli: Format
