lib/engine/wstate.ml: Ast Format Printf Sim String Value Wire
