lib/engine/registry.ml: Hashtbl List Rng Schema Sim String Value
