(** ASCII Gantt chart of a workflow run, reconstructed from the engine
    trace — regenerates the paper's Fig 1 timeline ("t2 and t3 start
    once t1 finishes and t4 starts after both") as text.

    One row per task execution interval (first [start]/[scope-open] to
    the matching [complete]), drawn over a scaled time axis; marks are
    drawn as [*] at their release instant. *)

val render : ?width:int -> Trace.t -> string
(** [width] is the number of columns of the bar area (default 60). An
    empty trace renders an empty string. *)
