type outcome = {
  output : string;
  objects : (string * Value.t) list;
}

type step =
  | Work of Sim.time
  | Emit_mark of outcome

type plan = { steps : step list; finish : outcome }

type context = {
  attempt : int;
  input_set : string;
  inputs : (string * Value.obj) list;
  rng : Rng.t;
}

type fn = context -> plan

type impl =
  | Fn of fn
  | Sub_workflow of Schema.task

type t = { bindings : (string, impl) Hashtbl.t }

let create () = { bindings = Hashtbl.create 32 }

let bind t ~code fn = Hashtbl.replace t.bindings code (Fn fn)

let bind_script t ~code schema = Hashtbl.replace t.bindings code (Sub_workflow schema)

let unbind t ~code = Hashtbl.remove t.bindings code

let find t ~code = Hashtbl.find_opt t.bindings code

let names t =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.bindings [])

let finish ?(work = Sim.ms 1) output objects = { steps = [ Work work ]; finish = { output; objects } }

let const ?work output objects _ctx = finish ?work output objects
