(** Task host: executes implementation plans on a node.

    The execution service dispatches a task here ([wf.exec]); the host
    resolves the code name in its registry, runs the plan's steps over
    simulated time, pushes marks ([wf.mark]) and the final report
    ([wf.done]) back to the engine with retries. A node crash kills
    every in-flight plan (an incarnation counter fences zombie steps);
    the engine's watchdog re-dispatches. *)

type t

val attach : rpc:Rpc.t -> node:Node.t -> registry:Registry.t -> engine_node:string -> t

val executions_total : t -> int
(** Plans started on this host (lifetime). *)
