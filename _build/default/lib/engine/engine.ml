type config = {
  default_deadline : Sim.time;
  dispatch_rpc_retries : int;
  system_max_attempts : int;
  default_timeout : Sim.time;
}

let default_config =
  {
    default_deadline = Sim.sec 30;
    dispatch_rpc_retries = 8;
    system_max_attempts = 10;
    default_timeout = Sim.sec 10;
  }

type inst = {
  iid : string;
  mutable script_text : string;
  mutable schema : Schema.task;
  mutable status : Wstate.status;
  mutable external_inputs : (string * Value.obj) list;
  states : (string, Wstate.task_state) Hashtbl.t;
  chosen : (string, Wstate.chosen) Hashtbl.t;
  marks : (string, (string * (string * Value.obj) list) list) Hashtbl.t;
  repeats : (string, string * (string * Value.obj) list) Hashtbl.t;
  timers : (string, unit) Hashtbl.t;  (* fired; key = "path|set" *)
  timer_arms : (string, Sim.time) Hashtbl.t;  (* persisted deadlines; key = "path|set" *)
  timers_armed : (string, int) Hashtbl.t;  (* volatile; value = attempt armed for *)
  mutable callbacks : (Wstate.status -> unit) list;
  mutable hseq : int;  (* next persistent-history index *)
  mutable dirty : bool;
  mutable inflight : bool;
  mutable concluding : bool;
}

type t = {
  sim : Sim.t;
  rpc : Rpc.t;
  node : Node.t;
  mgr : Txn.manager;
  participant : Participant.t;
  reg : Registry.t;
  config : config;
  tracer : Trace.t;
  rng : Rng.t;
  insts : (string, inst) Hashtbl.t;
  mutable inst_order : string list;
  mutable seq : int;
  mutable epoch : int;
  mutable dispatches : int;
  mutable completions : int;
  mutable system_retries : int;
  mutable marks_count : int;
  mutable reconfigs : int;
  mutable recoveries : int;
  mutable orphans : inst list;
      (* running instances held in memory when the node crashed; any
         whose launch transaction presumed-aborted are re-persisted
         after recovery (an accepted launch must survive) *)
}

let node_id t = Node.id t.node

let node t = t.node

let rpc t = t.rpc

let trace t = t.tracer

let registry t = t.reg

let pkey = Wstate.path_to_string

let record t kind detail = Trace.record t.tracer ~at:(Sim.now t.sim) ~kind detail

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* --- mirror accessors (no record = implicit Waiting, attempt 1) --- *)

let get_state inst path = Hashtbl.find_opt inst.states (pkey path)

let waiting_attempt inst path =
  match get_state inst path with
  | None -> Some 1
  | Some (Wstate.Waiting { attempt }) -> Some attempt
  | Some (Wstate.Running _ | Wstate.Done _ | Wstate.Failed _) -> None

let running_attempt inst path =
  match get_state inst path with Some (Wstate.Running { attempt; _ }) -> attempt | _ -> 1

let get_chosen inst path = Hashtbl.find_opt inst.chosen (pkey path)

let get_marks inst path =
  match Hashtbl.find_opt inst.marks (pkey path) with Some l -> l | None -> []

let get_repeat inst path = Hashtbl.find_opt inst.repeats (pkey path)

let timer_fired inst path ~set = Hashtbl.mem inst.timers (pkey path ^ "|" ^ set)

(* A task can only make progress while every enclosing compound scope
   is still open (Running) and the instance itself is running. *)
let rec scope_open inst path =
  match path with
  | [] | [ _ ] -> true
  | _ -> (
    let parent = List.filteri (fun i _ -> i < List.length path - 1) path in
    match get_state inst parent with
    | Some (Wstate.Running _) -> scope_open inst parent
    | _ -> false)

let task_live inst path = inst.status = Wstate.Wf_running && scope_open inst path

(* --- schema navigation (through dynamically bound sub-workflows) --- *)

type effective =
  | E_fn of string
  | E_compound of { children : Schema.task list; bindings : Schema.binding list; alias : string }
  | E_missing of string

let effective_body t (task : Schema.task) =
  match task.Schema.body with
  | Schema.Compound { children; bindings } ->
    E_compound { children; bindings; alias = task.Schema.name }
  | Schema.Simple -> (
    match Ast.impl_code task.Schema.impl with
    | None -> E_missing "no code binding"
    | Some code -> (
      match Registry.find t.reg ~code with
      | Some (Registry.Fn _) -> E_fn code
      | Some (Registry.Sub_workflow sub) -> (
        match sub.Schema.body with
        | Schema.Compound { children; bindings } ->
          E_compound { children; bindings; alias = sub.Schema.name }
        | Schema.Simple -> E_missing (code ^ " is bound to a non-compound schema"))
      | None -> E_missing ("no implementation bound for code " ^ code)))

let rec find_node t (task : Schema.task) = function
  | [] -> Some task
  | name :: rest -> (
    match effective_body t task with
    | E_compound { children; _ } -> (
      match List.find_opt (fun (c : Schema.task) -> c.Schema.name = name) children with
      | Some child -> find_node t child rest
      | None -> None)
    | E_fn _ | E_missing _ -> None)

let find_task_node t inst path =
  match path with
  | root :: rest when root = inst.schema.Schema.name -> find_node t inst.schema rest
  | _ -> None

(* --- availability --- *)

type ctx = {
  c_inst : inst;
  c_scope : Wstate.path;
  c_enclosing : string option;
  c_scope_set : string option;
  c_scope_inputs : (string * Value.obj) list;
  c_siblings : Schema.task list;
}

let is_sibling ctx name = List.exists (fun (s : Schema.task) -> s.Schema.name = name) ctx.c_siblings

let mark_objects ctx path oc = List.assoc_opt oc (get_marks ctx.c_inst path)

let obj_source_value ctx (os : Schema.obj_source) =
  let sibling = is_sibling ctx os.Schema.s_task in
  if (not sibling) && ctx.c_enclosing = Some os.Schema.s_task then
    match os.Schema.s_cond with
    | Schema.C_input set when ctx.c_scope_set = Some set ->
      List.assoc_opt os.Schema.s_obj ctx.c_scope_inputs
    | Schema.C_input _ | Schema.C_output _ | Schema.C_any -> None
  else if not sibling then None
  else begin
    let path = ctx.c_scope @ [ os.Schema.s_task ] in
    let inst = ctx.c_inst in
    match os.Schema.s_cond with
    | Schema.C_output oc -> (
      match get_state inst path with
      | Some (Wstate.Done { output; objects; _ }) when output = oc ->
        List.assoc_opt os.Schema.s_obj objects
      | _ -> (
        match mark_objects ctx path oc with
        | Some objects -> List.assoc_opt os.Schema.s_obj objects
        | None -> (
          match get_repeat inst path with
          | Some (out, objects) when out = oc -> List.assoc_opt os.Schema.s_obj objects
          | Some _ | None -> None)))
    | Schema.C_input set -> (
      match get_chosen inst path with
      | Some c when c.Wstate.c_set = set -> List.assoc_opt os.Schema.s_obj c.Wstate.c_inputs
      | Some _ | None -> None)
    | Schema.C_any -> (
      let from_marks () =
        List.find_map (fun (_, objects) -> List.assoc_opt os.Schema.s_obj objects) (get_marks inst path)
      in
      match get_state inst path with
      | Some (Wstate.Done { objects; kind; _ }) when kind <> Ast.Repeat_outcome -> (
        match List.assoc_opt os.Schema.s_obj objects with
        | Some v -> Some v
        | None -> from_marks ())
      | _ -> from_marks ())
  end

let notif_satisfied ctx (ns : Schema.notif_source) =
  let sibling = is_sibling ctx ns.Schema.n_task in
  if (not sibling) && ctx.c_enclosing = Some ns.Schema.n_task then
    match ns.Schema.n_cond with
    | Schema.C_input set -> ctx.c_scope_set = Some set
    | Schema.C_output _ -> false
    | Schema.C_any -> true
  else if not sibling then false
  else begin
    let path = ctx.c_scope @ [ ns.Schema.n_task ] in
    let inst = ctx.c_inst in
    match ns.Schema.n_cond with
    | Schema.C_output oc -> (
      match get_state inst path with
      | Some (Wstate.Done { output; _ }) when output = oc -> true
      | _ -> (
        mark_objects ctx path oc <> None
        || match get_repeat inst path with Some (out, _) -> out = oc | None -> false))
    | Schema.C_input set -> (
      match get_chosen inst path with Some c -> c.Wstate.c_set = set | None -> false)
    | Schema.C_any -> (
      match get_state inst path with
      | Some (Wstate.Done { kind; _ }) -> kind <> Ast.Repeat_outcome
      | _ -> false)
  end

let notif_groups_satisfied ctx groups =
  List.for_all (fun group -> List.exists (notif_satisfied ctx) group) groups

let timer_class = "Timer"

let try_input_set ctx ~path (s : Schema.input_set) =
  if not (notif_groups_satisfied ctx s.Schema.is_notifications) then `No
  else begin
    let resolve (io : Schema.input_object) =
      match io.Schema.io_sources with
      | [] ->
        if io.Schema.io_class = timer_class then
          if timer_fired ctx.c_inst path ~set:s.Schema.is_name then
            Some (io.Schema.io_name, Value.obj ~cls:timer_class Value.Unit)
          else None
        else if ctx.c_enclosing = None then
          Option.map
            (fun v -> (io.Schema.io_name, v))
            (List.assoc_opt io.Schema.io_name ctx.c_inst.external_inputs)
        else None
      | sources ->
        Option.map (fun v -> (io.Schema.io_name, v)) (List.find_map (obj_source_value ctx) sources)
    in
    let resolved = List.map resolve s.Schema.is_objects in
    if List.for_all Option.is_some resolved then `Yes (s.Schema.is_name, List.map Option.get resolved)
    else begin
      let pending_timer =
        List.exists2
          (fun (io : Schema.input_object) r ->
            r = None && io.Schema.io_sources = [] && io.Schema.io_class = timer_class)
          s.Schema.is_objects resolved
      in
      if pending_timer then `Arm_timer s.Schema.is_name else `No
    end
  end

(* --- actions --- *)

type action =
  | Start of {
      a_path : Wstate.path;
      a_task : Schema.task;
      a_set : string;
      a_inputs : (string * Value.obj) list;
      a_attempt : int;
    }
  | Fire_mark of { a_path : Wstate.path; a_name : string; a_objects : (string * Value.obj) list }
  | Do_repeat of {
      a_path : Wstate.path;
      a_name : string;
      a_objects : (string * Value.obj) list;
      a_attempt : int;
    }
  | Complete of {
      a_path : Wstate.path;
      a_name : string;
      a_kind : Ast.output_kind;
      a_objects : (string * Value.obj) list;
      a_attempt : int;
    }
  | Fail_task of { a_path : Wstate.path; a_reason : string }
  | Arm_timer of { a_path : Wstate.path; a_set : string; a_task : Schema.task; a_attempt : int }

let binding_ready ctx (b : Schema.binding) =
  if not (notif_groups_satisfied ctx b.Schema.b_notifications) then None
  else begin
    let resolve (name, sources) =
      Option.map (fun v -> (name, v)) (List.find_map (obj_source_value ctx) sources)
    in
    let resolved = List.map resolve b.Schema.b_objects in
    if List.for_all Option.is_some resolved then Some (List.map Option.get resolved) else None
  end

(* One scan pass; actions come back in declaration order. *)
let rec scan_task t inst ~ctx (task : Schema.task) acc =
  let path = ctx.c_scope @ [ task.Schema.name ] in
  match get_state inst path with
  | Some (Wstate.Done _ | Wstate.Failed _) -> acc
  | None | Some (Wstate.Waiting _) -> scan_waiting inst ~ctx task path acc
  | Some (Wstate.Running _) -> (
    match effective_body t task with
    | E_compound { children; bindings; alias } -> scan_scope t inst ~path ~children ~bindings ~alias acc
    | E_fn _ | E_missing _ -> acc)

and scan_waiting inst ~ctx task path acc =
  match waiting_attempt inst path with
  | None -> acc
  | Some attempt ->
    let fold acc (s : Schema.input_set) =
      match acc with
      | `Started _ -> acc
      | `Pending timers -> (
        match try_input_set ctx ~path s with
        | `Yes (set, inputs) -> `Started (set, inputs)
        | `Arm_timer set -> `Pending (set :: timers)
        | `No -> `Pending timers)
    in
    (match List.fold_left fold (`Pending []) task.Schema.inputs with
    | `Started (set, inputs) ->
      Start { a_path = path; a_task = task; a_set = set; a_inputs = inputs; a_attempt = attempt }
      :: acc
    | `Pending timers ->
      List.fold_left
        (fun acc set -> Arm_timer { a_path = path; a_set = set; a_task = task; a_attempt = attempt } :: acc)
        acc timers)

and scan_scope t inst ~path ~children ~bindings ~alias acc =
  let chosen = get_chosen inst path in
  let ctx =
    {
      c_inst = inst;
      c_scope = path;
      c_enclosing = Some alias;
      c_scope_set = Option.map (fun c -> c.Wstate.c_set) chosen;
      c_scope_inputs = (match chosen with Some c -> c.Wstate.c_inputs | None -> []);
      c_siblings = children;
    }
  in
  let attempt = running_attempt inst path in
  let ready kinds =
    List.find_map
      (fun (b : Schema.binding) ->
        if List.mem b.Schema.b_kind kinds then
          Option.map (fun objects -> (b, objects)) (binding_ready ctx b)
        else None)
      bindings
  in
  match ready [ Ast.Outcome; Ast.Abort_outcome ] with
  | Some (b, objects) ->
    Complete
      { a_path = path; a_name = b.Schema.b_name; a_kind = b.Schema.b_kind; a_objects = objects; a_attempt = attempt }
    :: acc
  | None -> (
    match ready [ Ast.Repeat_outcome ] with
    | Some (b, objects) ->
      Do_repeat { a_path = path; a_name = b.Schema.b_name; a_objects = objects; a_attempt = attempt + 1 }
      :: acc
    | None ->
      let fired = get_marks inst path in
      let acc =
        List.fold_left
          (fun acc (b : Schema.binding) ->
            if b.Schema.b_kind = Ast.Mark && not (List.mem_assoc b.Schema.b_name fired) then
              match binding_ready ctx b with
              | Some objects ->
                Fire_mark { a_path = path; a_name = b.Schema.b_name; a_objects = objects } :: acc
              | None -> acc
            else acc)
          acc bindings
      in
      List.fold_left (fun acc child -> scan_task t inst ~ctx child acc) acc children)

let scan t inst =
  let root_ctx =
    {
      c_inst = inst;
      c_scope = [];
      c_enclosing = None;
      c_scope_set = None;
      c_scope_inputs = [];
      c_siblings = [ inst.schema ];
    }
  in
  List.rev (scan_task t inst ~ctx:root_ctx inst.schema [])

(* --- persistence helpers --- *)

let wrap_outputs (task : Schema.task) ~output objects =
  match Schema.output_named task output with
  | None -> List.map (fun (n, v) -> (n, Value.obj ~cls:"?" v)) objects
  | Some out ->
    List.map
      (fun (name, cls) ->
        let payload = match List.assoc_opt name objects with Some v -> v | None -> Value.Unit in
        (name, Value.obj ~cls payload))
      out.Schema.out_objects

let impl_span task ~key ~default =
  match List.assoc_opt key task.Schema.impl with
  | Some ms -> ( match int_of_string_opt ms with Some n -> Sim.ms n | None -> default)
  | None -> default

let deadline_span t task = impl_span task ~key:"deadline" ~default:t.config.default_deadline

let timeout_span t task = impl_span task ~key:"timeout" ~default:t.config.default_timeout

(* "priority" implementation binding (paper §4.3's keyword list):
   higher-priority ready tasks are dispatched first within a pass. *)
let impl_priority (task : Schema.task) =
  match List.assoc_opt "priority" task.Schema.impl with
  | Some n -> ( match int_of_string_opt n with Some n -> n | None -> 0)
  | None -> 0

let impl_abort_retries (task : Schema.task) =
  match List.assoc_opt "retries" task.Schema.impl with
  | Some n -> ( match int_of_string_opt n with Some n -> n | None -> 0)
  | None -> 0

let persist t writes k =
  let node = node_id t in
  let io =
    Txn.run t.mgr (fun txn ->
        List.iter
          (function
            | key, Some value -> Txn.write txn ~node ~key ~value
            | key, None -> Txn.delete txn ~node ~key)
          writes;
        Txn.return ())
  in
  io (function
    | Ok () -> k ()
    | Error e -> record t "txn-failed" (Txn.error_to_string e))

(* store keys of every record strictly below [path], plus [path]'s own
   chosen and timer records (cleared when a compound repeats) *)
let subtree_keys inst path =
  let iid = inst.iid in
  let p = pkey path in
  let descendant other =
    String.length other > String.length p && String.sub other 0 (String.length p + 1) = p ^ "/"
  in
  let collect tbl mk acc =
    Hashtbl.fold (fun key _ acc -> if descendant key then mk key :: acc else acc) tbl acc
  in
  let split k = String.split_on_char '/' k in
  let acc = collect inst.states (fun k -> Wstate.key_task iid (split k)) [] in
  let acc = collect inst.chosen (fun k -> Wstate.key_chosen iid (split k)) acc in
  let acc = collect inst.marks (fun k -> Wstate.key_marks iid (split k)) acc in
  let acc = collect inst.repeats (fun k -> Wstate.key_repeat iid (split k)) acc in
  let acc =
    Hashtbl.fold
      (fun key () acc ->
        match String.rindex_opt key '|' with
        | Some i ->
          let kpath = String.sub key 0 i in
          let set = String.sub key (i + 1) (String.length key - i - 1) in
          if descendant kpath || kpath = p then Wstate.key_timer iid (split kpath) ~set :: acc
          else acc
        | None -> acc)
      inst.timers acc
  in
  Hashtbl.fold
    (fun key _ acc ->
      match String.rindex_opt key '|' with
      | Some i ->
        let kpath = String.sub key 0 i in
        let set = String.sub key (i + 1) (String.length key - i - 1) in
        if descendant kpath || kpath = p then Wstate.key_timer_arm iid (split kpath) ~set :: acc
        else acc
      | None -> acc)
    inst.timer_arms acc

let wipe_subtree_mirror inst path =
  let p = pkey path in
  let descendant other =
    String.length other > String.length p && String.sub other 0 (String.length p + 1) = p ^ "/"
  in
  let purge tbl pred =
    let doomed = Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) tbl [] in
    List.iter (Hashtbl.remove tbl) doomed
  in
  purge inst.states descendant;
  purge inst.chosen (fun k -> descendant k || k = p);
  purge inst.marks descendant;
  purge inst.repeats descendant;
  let timer_pred key =
    match String.rindex_opt key '|' with
    | Some i ->
      let kpath = String.sub key 0 i in
      descendant kpath || kpath = p
    | None -> false
  in
  purge inst.timers timer_pred;
  purge inst.timer_arms timer_pred;
  purge inst.timers_armed timer_pred

(* every effectful action also appends one persistent history row in
   the same transaction — the durable audit log behind Fig 4's
   monitoring tools (volatile traces die with the process) *)
let history_write t inst ~kind ~detail =
  let n = inst.hseq in
  inst.hseq <- n + 1;
  (Wstate.key_history inst.iid n, Some (Wstate.encode_history (Sim.now t.sim, kind, detail)))

let action_history t inst = function
  | Arm_timer _ -> []
  | Start { a_path; a_attempt; _ } ->
    [ history_write t inst ~kind:"start" ~detail:(Printf.sprintf "%s (attempt %d)" (pkey a_path) a_attempt) ]
  | Fire_mark { a_path; a_name; _ } ->
    [ history_write t inst ~kind:"mark" ~detail:(pkey a_path ^ " " ^ a_name) ]
  | Do_repeat { a_path; a_name; _ } ->
    [ history_write t inst ~kind:"repeat" ~detail:(pkey a_path ^ " " ^ a_name) ]
  | Complete { a_path; a_name; _ } ->
    [ history_write t inst ~kind:"complete" ~detail:(pkey a_path ^ " -> " ^ a_name) ]
  | Fail_task { a_path; a_reason } ->
    [ history_write t inst ~kind:"task-failed" ~detail:(pkey a_path ^ ": " ^ a_reason) ]

let action_writes t inst action =
  let iid = inst.iid in
  match action with
  | Arm_timer _ -> []
  | Start { a_path; a_task; a_set; a_inputs; a_attempt } ->
    let now = Sim.now t.sim in
    let running =
      Wstate.Running
        { attempt = a_attempt; set = a_set; started = now; deadline = now + deadline_span t a_task }
    in
    [
      (Wstate.key_task iid a_path, Some (Wstate.encode_task_state running));
      ( Wstate.key_chosen iid a_path,
        Some (Wstate.encode_chosen { Wstate.c_set = a_set; c_inputs = a_inputs }) );
    ]
  | Fire_mark { a_path; a_name; a_objects } ->
    let marks = get_marks inst a_path @ [ (a_name, a_objects) ] in
    [ (Wstate.key_marks iid a_path, Some (Wstate.encode_marks marks)) ]
  | Do_repeat { a_path; a_name; a_objects; a_attempt } ->
    [
      (Wstate.key_repeat iid a_path, Some (Wstate.encode_repeat (a_name, a_objects)));
      ( Wstate.key_task iid a_path,
        Some (Wstate.encode_task_state (Wstate.Waiting { attempt = a_attempt })) );
      (Wstate.key_chosen iid a_path, None);
    ]
    @ List.map (fun key -> (key, None)) (subtree_keys inst a_path)
  | Complete { a_path; a_name; a_kind; a_objects; a_attempt } ->
    let state =
      Wstate.Done { attempt = a_attempt; output = a_name; kind = a_kind; objects = a_objects }
    in
    [ (Wstate.key_task iid a_path, Some (Wstate.encode_task_state state)) ]
  | Fail_task { a_path; a_reason } ->
    [ (Wstate.key_task iid a_path, Some (Wstate.encode_task_state (Wstate.Failed a_reason))) ]

let apply_action_mirror t inst action =
  match action with
  | Arm_timer _ -> ()
  | Start { a_path; a_task; a_set; a_inputs; a_attempt } ->
    let now = Sim.now t.sim in
    Hashtbl.replace inst.states (pkey a_path)
      (Wstate.Running
         { attempt = a_attempt; set = a_set; started = now; deadline = now + deadline_span t a_task });
    Hashtbl.replace inst.chosen (pkey a_path) { Wstate.c_set = a_set; c_inputs = a_inputs }
  | Fire_mark { a_path; a_name; a_objects } ->
    t.marks_count <- t.marks_count + 1;
    Hashtbl.replace inst.marks (pkey a_path) (get_marks inst a_path @ [ (a_name, a_objects) ]);
    record t "mark" (Printf.sprintf "%s %s" (pkey a_path) a_name)
  | Do_repeat { a_path; a_name; a_objects; a_attempt } ->
    Hashtbl.replace inst.repeats (pkey a_path) (a_name, a_objects);
    wipe_subtree_mirror inst a_path;
    Hashtbl.replace inst.states (pkey a_path) (Wstate.Waiting { attempt = a_attempt });
    record t "repeat" (Printf.sprintf "%s %s (attempt %d)" (pkey a_path) a_name a_attempt)
  | Complete { a_path; a_name; a_kind; a_objects; a_attempt } ->
    Hashtbl.replace inst.states (pkey a_path)
      (Wstate.Done { attempt = a_attempt; output = a_name; kind = a_kind; objects = a_objects });
    record t "complete" (Printf.sprintf "%s -> %s" (pkey a_path) a_name)
  | Fail_task { a_path; a_reason } ->
    Hashtbl.replace inst.states (pkey a_path) (Wstate.Failed a_reason);
    record t "task-failed" (Printf.sprintf "%s: %s" (pkey a_path) a_reason)

(* --- the evaluation pump, dispatch, watchdog, failure handling --- *)

let rec mark_dirty t inst =
  inst.dirty <- true;
  if not inst.inflight then begin
    inst.inflight <- true;
    let epoch = t.epoch in
    ignore
      (Sim.schedule t.sim ~delay:0 (fun () ->
           if t.epoch = epoch && Node.up t.node then pump t inst else inst.inflight <- false))
  end

and pump t inst =
  inst.dirty <- false;
  if inst.status <> Wstate.Wf_running then inst.inflight <- false
  else begin
    let actions = scan t inst in
    let actions =
      List.filter
        (function
          | Arm_timer { a_path; a_set; a_attempt; _ } ->
            Hashtbl.find_opt inst.timers_armed (pkey a_path ^ "|" ^ a_set) <> Some a_attempt
          | Start _ | Fire_mark _ | Do_repeat _ | Complete _ | Fail_task _ -> true)
        actions
    in
    List.iter (arm_timer_action t inst) actions;
    let effectful =
      List.filter (function Arm_timer _ -> false | _ -> true) actions
    in
    (* dispatch higher-priority starts first (stable for equal priority);
       non-start actions keep their scan order and commit in the same
       transaction regardless *)
    let starts, rest = List.partition (function Start _ -> true | _ -> false) effectful in
    let starts =
      List.stable_sort
        (fun a b ->
          match (a, b) with
          | Start { a_task = x; _ }, Start { a_task = y; _ } ->
            compare (impl_priority y) (impl_priority x)
          | _ -> 0)
        starts
    in
    let effectful = rest @ starts in
    if effectful = [] then begin
      inst.inflight <- false;
      finalize t inst;
      if inst.dirty then mark_dirty t inst
    end
    else begin
      let writes =
        List.concat_map (fun a -> action_writes t inst a @ action_history t inst a) effectful
      in
      persist t writes (fun () ->
          List.iter (apply_action_mirror t inst) effectful;
          List.iter (action_side_effects t inst) effectful;
          inst.inflight <- false;
          finalize t inst;
          mark_dirty t inst)
    end
  end

and arm_timer_action t inst = function
  | Arm_timer { a_path; a_set; a_task; a_attempt } ->
    let key = pkey a_path ^ "|" ^ a_set in
    Hashtbl.replace inst.timers_armed key a_attempt;
    let epoch = t.epoch in
    let fire () =
      if t.epoch = epoch && Node.up t.node && waiting_attempt inst a_path = Some a_attempt then
        persist t
          [ (Wstate.key_timer inst.iid a_path ~set:a_set, Some "1") ]
          (fun () ->
            Hashtbl.replace inst.timers key ();
            record t "timeout" (Printf.sprintf "%s input %s" (pkey a_path) a_set);
            mark_dirty t inst)
    in
    (* the deadline persists across crashes: recovery resumes the
       remaining wait rather than restarting the whole timeout *)
    (match Hashtbl.find_opt inst.timer_arms key with
    | Some deadline -> ignore (Sim.schedule t.sim ~delay:(max 0 (deadline - Sim.now t.sim)) fire)
    | None ->
      let deadline = Sim.now t.sim + timeout_span t a_task in
      persist t
        [ (Wstate.key_timer_arm inst.iid a_path ~set:a_set, Some (string_of_int deadline)) ]
        (fun () ->
          Hashtbl.replace inst.timer_arms key deadline;
          ignore (Sim.schedule t.sim ~delay:(max 0 (deadline - Sim.now t.sim)) fire)))
  | Start _ | Fire_mark _ | Do_repeat _ | Complete _ | Fail_task _ -> ()

and action_side_effects t inst = function
  | Start ({ a_task; _ } as s) -> (
    match effective_body t a_task with
    | E_compound _ -> record t "scope-open" (pkey s.a_path)
    | E_fn code ->
      record t "start" (Printf.sprintf "%s (attempt %d)" (pkey s.a_path) s.a_attempt);
      dispatch t inst ~path:s.a_path ~task:a_task ~code ~set:s.a_set ~inputs:s.a_inputs
        ~attempt:s.a_attempt
    | E_missing reason -> fail_policy t inst ~path:s.a_path ~task:a_task ~reason)
  | Arm_timer _ | Fire_mark _ | Do_repeat _ | Complete _ | Fail_task _ -> ()

and dispatch t inst ~path ~task ~code ~set ~inputs ~attempt =
  t.dispatches <- t.dispatches + 1;
  let host = match Ast.impl_location task.Schema.impl with Some n -> n | None -> node_id t in
  let req =
    {
      Wfmsg.x_iid = inst.iid;
      x_path = path;
      x_attempt = attempt;
      x_code = code;
      x_set = set;
      x_inputs = inputs;
    }
  in
  let epoch = t.epoch in
  let handle = function
    | Ok reply when reply = Wfmsg.reply_ok -> ()
    | Ok _ ->
      if t.epoch = epoch then
        fail_policy t inst ~path ~task ~reason:("host has no implementation for " ^ code)
    | Error _ -> if t.epoch = epoch then retry_task t inst ~path ~task
  in
  Rpc.call t.rpc ~src:(node_id t) ~dst:host ~service:Wfmsg.service_exec ~body:(Wfmsg.enc_exec req)
    ~retries:t.config.dispatch_rpc_retries handle;
  schedule_watchdog t inst ~path ~task ~attempt

and schedule_watchdog ?delay t inst ~path ~task ~attempt =
  let epoch = t.epoch in
  let span = match delay with Some d -> d | None -> deadline_span t task + Sim.ms 1 in
  let check () =
    if t.epoch = epoch && Node.up t.node && task_live inst path then
      match get_state inst path with
      | Some (Wstate.Running { attempt = a; _ }) when a = attempt ->
        record t "watchdog" (pkey path);
        retry_task t inst ~path ~task
      | _ -> ()
  in
  ignore (Sim.schedule t.sim ~delay:span check)

and retry_task t inst ~path ~task =
  if not (task_live inst path) then ()
  else
  match get_state inst path with
  | Some (Wstate.Running { attempt; set; _ }) ->
    if attempt >= t.config.system_max_attempts then
      fail_policy t inst ~path ~task ~reason:(Printf.sprintf "gave up after %d attempts" attempt)
    else begin
      t.system_retries <- t.system_retries + 1;
      let now = Sim.now t.sim in
      let next = attempt + 1 in
      let running =
        Wstate.Running { attempt = next; set; started = now; deadline = now + deadline_span t task }
      in
      let inputs = match get_chosen inst path with Some c -> c.Wstate.c_inputs | None -> [] in
      persist t
        [ (Wstate.key_task inst.iid path, Some (Wstate.encode_task_state running)) ]
        (fun () ->
          Hashtbl.replace inst.states (pkey path) running;
          record t "retry" (Printf.sprintf "%s (attempt %d)" (pkey path) next);
          match effective_body t task with
          | E_fn code -> dispatch t inst ~path ~task ~code ~set ~inputs ~attempt:next
          | E_compound _ | E_missing _ -> mark_dirty t inst)
    end
  | _ -> ()

and fail_policy t inst ~path ~task ~reason =
  (* Fig 3: a system failure maps onto an abort outcome when the
     taskclass declares one; otherwise the task fails outright. *)
  let attempt = running_attempt inst path in
  let abort_out =
    List.find_opt
      (fun (o : Schema.output) -> o.Schema.out_kind = Ast.Abort_outcome)
      task.Schema.outputs
  in
  let action =
    match abort_out with
    | Some out ->
      Complete
        {
          a_path = path;
          a_name = out.Schema.out_name;
          a_kind = Ast.Abort_outcome;
          a_objects = wrap_outputs task ~output:out.Schema.out_name [];
          a_attempt = attempt;
        }
    | None -> Fail_task { a_path = path; a_reason = reason }
  in
  persist t
    (action_writes t inst action @ action_history t inst action)
    (fun () ->
      apply_action_mirror t inst action;
      mark_dirty t inst)

and finalize t inst =
  if inst.status = Wstate.Wf_running && not inst.concluding then begin
    let rpath = [ inst.schema.Schema.name ] in
    let conclude status =
      inst.concluding <- true;
      let meta =
        {
          Wstate.m_script = inst.script_text;
          m_root = inst.schema.Schema.name;
          m_inputs = inst.external_inputs;
          m_status = status;
        }
      in
      persist t
        [
          (Wstate.key_meta inst.iid, Some (Wstate.encode_meta meta));
          history_write t inst ~kind:"instance"
            ~detail:(Format.asprintf "%a" Wstate.pp_status status);
        ]
        (fun () ->
          inst.status <- status;
          record t "instance" (Format.asprintf "%s %a" inst.iid Wstate.pp_status status);
          let callbacks = inst.callbacks in
          inst.callbacks <- [];
          List.iter (fun cb -> cb status) callbacks)
    in
    match get_state inst rpath with
    | Some (Wstate.Done { output; objects; _ }) -> conclude (Wstate.Wf_done { output; objects })
    | Some (Wstate.Failed reason) -> conclude (Wstate.Wf_failed reason)
    | None | Some (Wstate.Waiting _ | Wstate.Running _) -> ()
  end

(* --- reports from task hosts --- *)

let impl_error_prefix = "$impl-error"

let apply_one t inst action =
  persist t
    (action_writes t inst action @ action_history t inst action)
    (fun () ->
      apply_action_mirror t inst action;
      mark_dirty t inst)

let process_report t inst ~task ~attempt ~is_mark (r : Wfmsg.report) =
  let path = r.Wfmsg.r_path in
  if starts_with ~prefix:impl_error_prefix r.Wfmsg.r_output then retry_task t inst ~path ~task
  else
    match Schema.output_named task r.Wfmsg.r_output with
    | None ->
      fail_policy t inst ~path ~task
        ~reason:(Printf.sprintf "implementation produced undeclared output %s" r.Wfmsg.r_output)
    | Some out -> (
      let objects = wrap_outputs task ~output:out.Schema.out_name r.Wfmsg.r_objects in
      match out.Schema.out_kind with
      | Ast.Mark when is_mark ->
        if not (List.mem_assoc out.Schema.out_name (get_marks inst path)) then
          apply_one t inst
            (Fire_mark { a_path = path; a_name = out.Schema.out_name; a_objects = objects })
      | Ast.Mark ->
        fail_policy t inst ~path ~task
          ~reason:(Printf.sprintf "implementation finished in mark output %s" out.Schema.out_name)
      | Ast.Outcome | Ast.Abort_outcome | Ast.Repeat_outcome when is_mark ->
        fail_policy t inst ~path ~task
          ~reason:(Printf.sprintf "mark report names non-mark output %s" out.Schema.out_name)
      | Ast.Abort_outcome when get_marks inst path <> [] ->
        (* Fig 3: a task that released a mark may not abort *)
        apply_one t inst
          (Fail_task { a_path = path; a_reason = "abort outcome after mark (protocol violation)" })
      | Ast.Abort_outcome when attempt <= impl_abort_retries task ->
        record t "auto-restart" (pkey path);
        retry_task t inst ~path ~task
      | Ast.Repeat_outcome ->
        apply_one t inst
          (Do_repeat
             { a_path = path; a_name = out.Schema.out_name; a_objects = objects; a_attempt = attempt + 1 })
      | Ast.Outcome | Ast.Abort_outcome ->
        t.completions <- t.completions + 1;
        apply_one t inst
          (Complete
             {
               a_path = path;
               a_name = out.Schema.out_name;
               a_kind = out.Schema.out_kind;
               a_objects = objects;
               a_attempt = attempt;
             }))

let handle_report t ~is_mark ~src:_ body =
  let r = Wfmsg.dec_report body in
  (match Hashtbl.find_opt t.insts r.Wfmsg.r_iid with
  | None -> ()
  | Some inst when inst.status <> Wstate.Wf_running -> ()
  | Some inst when not (task_live inst r.Wfmsg.r_path) -> ()
  | Some inst -> (
    match (get_state inst r.Wfmsg.r_path, find_task_node t inst r.Wfmsg.r_path) with
    | Some (Wstate.Running { attempt; _ }), Some task ->
      process_report t inst ~task ~attempt ~is_mark r
    | _ -> ()));
  "ack"

(* --- recovery --- *)

let rebuild_instance t iid =
  let read key = Participant.committed_value t.participant ~key in
  match read (Wstate.key_meta iid) with
  | None -> ()
  | Some meta_raw -> (
    let meta = Wstate.decode_meta meta_raw in
    let script_text =
      match read (Wstate.key_reconf iid) with Some s -> s | None -> meta.Wstate.m_script
    in
    match Frontend.load script_text with
    | Error _ -> record t "recovery-error" (iid ^ ": stored script no longer parses")
    | Ok ast -> (
      match Schema.of_script ast ~root:meta.Wstate.m_root with
      | Error msg -> record t "recovery-error" (Printf.sprintf "%s: %s" iid msg)
      | Ok schema ->
        let inst =
          {
            iid;
            script_text;
            schema;
            status = meta.Wstate.m_status;
            external_inputs = meta.Wstate.m_inputs;
            states = Hashtbl.create 32;
            chosen = Hashtbl.create 32;
            marks = Hashtbl.create 8;
            repeats = Hashtbl.create 8;
            timers = Hashtbl.create 8;
            timer_arms = Hashtbl.create 8;
            timers_armed = Hashtbl.create 8;
            callbacks = [];
            hseq = 0;
            dirty = false;
            inflight = false;
            concluding = false;
          }
        in
        let prefix = Wstate.task_prefix iid in
        let load_key key =
          if starts_with ~prefix key then begin
            let rest = String.sub key (String.length prefix) (String.length key - String.length prefix) in
            match String.index_opt rest ':' with
            | None -> () (* meta / reconf *)
            | Some i -> (
              let tag = String.sub rest 0 i in
              let remainder = String.sub rest (i + 1) (String.length rest - i - 1) in
              let value () = Option.get (read key) in
              match tag with
              | "t" -> Hashtbl.replace inst.states remainder (Wstate.decode_task_state (value ()))
              | "c" -> Hashtbl.replace inst.chosen remainder (Wstate.decode_chosen (value ()))
              | "m" -> Hashtbl.replace inst.marks remainder (Wstate.decode_marks (value ()))
              | "r" -> Hashtbl.replace inst.repeats remainder (Wstate.decode_repeat (value ()))
              | "timer" -> (
                match String.rindex_opt remainder ':' with
                | Some j ->
                  let kpath = String.sub remainder 0 j in
                  let set = String.sub remainder (j + 1) (String.length remainder - j - 1) in
                  Hashtbl.replace inst.timers (kpath ^ "|" ^ set) ()
                | None -> ())
              | "h" ->
                (* history rows are read on demand; track the counter *)
                (match int_of_string_opt remainder with
                | Some n -> inst.hseq <- max inst.hseq (n + 1)
                | None -> ())
              | "timerarm" -> (
                match String.rindex_opt remainder ':' with
                | Some j -> (
                  let kpath = String.sub remainder 0 j in
                  let set = String.sub remainder (j + 1) (String.length remainder - j - 1) in
                  match int_of_string_opt (value ()) with
                  | Some deadline -> Hashtbl.replace inst.timer_arms (kpath ^ "|" ^ set) deadline
                  | None -> ())
                | None -> ())
              | _ -> ())
          end
        in
        List.iter load_key (Participant.committed_keys t.participant);
        Hashtbl.replace t.insts iid inst;
        let restart_watchdog key state =
          match state with
          | Wstate.Running { attempt; deadline; _ } -> (
            let path = String.split_on_char '/' key in
            match find_task_node t inst path with
            | Some task -> (
              match effective_body t task with
              | E_fn _ ->
                (* honour the persisted deadline: an execution orphaned
                   by the crash is re-dispatched as soon as it expires *)
                let remaining = max 0 (deadline - Sim.now t.sim) + Sim.ms 1 in
                schedule_watchdog ~delay:remaining t inst ~path ~task ~attempt
              | E_compound _ | E_missing _ -> ())
            | None -> ())
          | Wstate.Waiting _ | Wstate.Done _ | Wstate.Failed _ -> ()
        in
        Hashtbl.iter restart_watchdog inst.states;
        if inst.status = Wstate.Wf_running then mark_dirty t inst))

(* A commit finished by the recovery termination protocol can add an
   instance to the store after [recover] already scanned it: reconcile
   whenever such a commit lands. *)
let reconcile t =
  match Participant.committed_value t.participant ~key:Wstate.key_insts with
  | None -> ()
  | Some raw ->
    let iids = Wstate.decode_insts raw in
    List.iter
      (fun iid ->
        if not (Hashtbl.mem t.insts iid) then begin
          rebuild_instance t iid;
          if Hashtbl.mem t.insts iid && not (List.mem iid t.inst_order) then
            t.inst_order <- t.inst_order @ [ iid ]
        end)
      iids

(* Re-persist an instance whose launch transaction was lost to a crash
   before its decision. A committed-but-unapplied launch is instead
   picked up by [reconcile] once the termination protocol applies it, so
   wait one poll period before concluding the launch is really gone.
   The orphan stays in [t.orphans] until this attempt actually runs —
   another crash before the timer fires must not lose it (each recovery
   re-schedules the survivors). *)
let relaunch_orphan t (orphan : inst) =
  let epoch = t.epoch in
  let retry_delay = Sim.ms 120 in
  let forget () = t.orphans <- List.filter (fun o -> o.iid <> orphan.iid) t.orphans in
  let attempt () =
    if t.epoch = epoch && Node.up t.node then
    if
      Hashtbl.mem t.insts orphan.iid
      || Participant.committed_value t.participant ~key:(Wstate.key_meta orphan.iid) <> None
    then forget () (* became durable after all; reconcile covers it *)
    else begin
      forget ();
      let inst =
        {
          orphan with
          status = Wstate.Wf_running;
          states = Hashtbl.create 32;
          chosen = Hashtbl.create 32;
          marks = Hashtbl.create 8;
          repeats = Hashtbl.create 8;
          timers = Hashtbl.create 8;
          timer_arms = Hashtbl.create 8;
          timers_armed = Hashtbl.create 8;
          dirty = false;
          inflight = false;
          concluding = false;
        }
      in
      let meta =
        {
          Wstate.m_script = inst.script_text;
          m_root = inst.schema.Schema.name;
          m_inputs = inst.external_inputs;
          m_status = Wstate.Wf_running;
        }
      in
      if not (List.mem inst.iid t.inst_order) then t.inst_order <- t.inst_order @ [ inst.iid ];
      Hashtbl.replace t.insts inst.iid inst;
      record t "relaunch" inst.iid;
      persist t
        [
          (Wstate.key_insts, Some (Wstate.encode_insts t.inst_order));
          (Wstate.key_meta inst.iid, Some (Wstate.encode_meta meta));
        ]
        (fun () -> mark_dirty t inst)
    end
  in
  ignore (Sim.schedule t.sim ~delay:retry_delay attempt)

let recover t () =
  t.epoch <- t.epoch + 1;
  t.recoveries <- t.recoveries + 1;
  Hashtbl.reset t.insts;
  (match Participant.committed_value t.participant ~key:Wstate.key_insts with
  | None -> t.inst_order <- []
  | Some raw ->
    let iids = Wstate.decode_insts raw in
    t.inst_order <- iids;
    List.iter (rebuild_instance t) iids);
  t.orphans <- List.filter (fun o -> not (Hashtbl.mem t.insts o.iid)) t.orphans;
  List.iter (relaunch_orphan t) t.orphans;
  record t "recovery" (Printf.sprintf "%d instance(s)" (List.length t.inst_order))

(* --- construction and public API --- *)

let attach_host_on t node =
  Exec_host.attach ~rpc:t.rpc ~node ~registry:t.reg ~engine_node:(node_id t)

let create ?(config = default_config) ~rpc ~node ~mgr ~participant ~registry:reg () =
  let sim = Network.sim (Rpc.network rpc) in
  let t =
    {
      sim;
      rpc;
      node;
      mgr;
      participant;
      reg;
      config;
      tracer = Trace.create ();
      rng = Rng.split (Sim.rng sim);
      insts = Hashtbl.create 8;
      inst_order = [];
      seq = 0;
      epoch = 1;
      dispatches = 0;
      completions = 0;
      system_retries = 0;
      marks_count = 0;
      reconfigs = 0;
      recoveries = 0;
      orphans = [];
    }
  in
  Node.serve node ~service:Wfmsg.service_done (handle_report t ~is_mark:false);
  Node.serve node ~service:Wfmsg.service_mark (handle_report t ~is_mark:true);
  Node.on_crash node (fun () ->
      t.epoch <- t.epoch + 1;
      let running =
        Hashtbl.fold
          (fun _ inst acc -> if inst.status = Wstate.Wf_running then inst :: acc else acc)
          t.insts []
      in
      t.orphans <- running @ t.orphans);
  Node.on_recover node (recover t);
  Participant.on_apply participant (fun writes ->
      if List.exists (fun (key, _) -> key = Wstate.key_insts) writes then begin
        let epoch = t.epoch in
        ignore
          (Sim.schedule sim ~delay:0 (fun () ->
               if t.epoch = epoch && Node.up node then reconcile t))
      end);
  ignore (attach_host_on t node);
  t

let attach_host t node = attach_host_on t node

let launch t ~script ~root ~inputs =
  match Frontend.load script with
  | Error e -> Error (Frontend.error_to_string e)
  | Ok ast -> (
    match Schema.of_script ast ~root with
    | Error msg -> Error msg
    | Ok schema ->
      t.seq <- t.seq + 1;
      let iid = Printf.sprintf "wf-%d-%d" t.epoch t.seq in
      let inst =
        {
          iid;
          script_text = script;
          schema;
          status = Wstate.Wf_running;
          external_inputs = inputs;
          states = Hashtbl.create 32;
          chosen = Hashtbl.create 32;
          marks = Hashtbl.create 8;
          repeats = Hashtbl.create 8;
          timers = Hashtbl.create 8;
          timer_arms = Hashtbl.create 8;
          timers_armed = Hashtbl.create 8;
          callbacks = [];
          hseq = 0;
          dirty = false;
          inflight = false;
          concluding = false;
        }
      in
      let meta =
        {
          Wstate.m_script = script;
          m_root = root;
          m_inputs = inputs;
          m_status = Wstate.Wf_running;
        }
      in
      let order = t.inst_order @ [ iid ] in
      (* visible immediately: callers can attach on_complete before the
         launch transaction commits; scheduling starts once durable *)
      t.inst_order <- order;
      Hashtbl.replace t.insts iid inst;
      record t "launch" (Printf.sprintf "%s root=%s" iid root);
      persist t
        [
          (Wstate.key_insts, Some (Wstate.encode_insts order));
          (Wstate.key_meta iid, Some (Wstate.encode_meta meta));
          history_write t inst ~kind:"launch" ~detail:("root=" ^ root);
        ]
        (fun () -> mark_dirty t inst);
      Ok iid)

let status t iid = Option.map (fun inst -> inst.status) (Hashtbl.find_opt t.insts iid)

let on_complete t iid cb =
  match Hashtbl.find_opt t.insts iid with
  | None -> ()
  | Some inst -> (
    match inst.status with
    | Wstate.Wf_running -> inst.callbacks <- inst.callbacks @ [ cb ]
    | done_or_failed -> cb done_or_failed)

let instances t = t.inst_order

let task_state t iid ~path =
  match Hashtbl.find_opt t.insts iid with
  | None -> None
  | Some inst -> get_state inst path

let task_states t iid =
  match Hashtbl.find_opt t.insts iid with
  | None -> []
  | Some inst ->
    let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) inst.states [] in
    List.sort (fun (a, _) (b, _) -> String.compare a b) all

let marks_of t iid ~path =
  match Hashtbl.find_opt t.insts iid with None -> [] | Some inst -> get_marks inst path

let history t iid =
  let prefix = Printf.sprintf "wf:%s:h:" iid in
  let rows =
    List.filter_map
      (fun key ->
        if starts_with ~prefix key then
          Option.map Wstate.decode_history (Participant.committed_value t.participant ~key)
        else None)
      (Participant.committed_keys t.participant)
  in
  List.sort compare rows

let quiescent t iid =
  match Hashtbl.find_opt t.insts iid with
  | None -> false
  | Some inst ->
    let leaf_running key state =
      match state with
      | Wstate.Running _ -> (
        match find_task_node t inst (String.split_on_char '/' key) with
        | Some task -> ( match effective_body t task with E_fn _ -> true | _ -> false)
        | None -> false)
      | Wstate.Waiting _ | Wstate.Done _ | Wstate.Failed _ -> false
    in
    inst.status = Wstate.Wf_running
    && not (Hashtbl.fold (fun key state acc -> acc || leaf_running key state) inst.states false)

let cancel t iid ~reason k =
  match Hashtbl.find_opt t.insts iid with
  | None -> k (Error ("no such instance " ^ iid))
  | Some inst when inst.status <> Wstate.Wf_running ->
    ignore inst;
    k (Error ("instance " ^ iid ^ " already finished"))
  | Some inst ->
    let status = Wstate.Wf_failed ("cancelled: " ^ reason) in
    let meta =
      {
        Wstate.m_script = inst.script_text;
        m_root = inst.schema.Schema.name;
        m_inputs = inst.external_inputs;
        m_status = status;
      }
    in
    inst.concluding <- true;
    persist t
      [ (Wstate.key_meta iid, Some (Wstate.encode_meta meta)) ]
      (fun () ->
        inst.status <- status;
        record t "cancel" (Printf.sprintf "%s: %s" iid reason);
        let callbacks = inst.callbacks in
        inst.callbacks <- [];
        List.iter (fun cb -> cb status) callbacks;
        k (Ok ()))

let abort_task t iid ~path k =
  match Hashtbl.find_opt t.insts iid with
  | None -> k (Error ("no such instance " ^ iid))
  | Some inst -> (
    match (get_state inst path, find_task_node t inst path) with
    | (None | Some (Wstate.Waiting _ | Wstate.Running _)), Some task ->
      record t "user-abort" (pkey path);
      fail_policy t inst ~path ~task ~reason:"aborted by user";
      k (Ok ())
    | Some (Wstate.Done _ | Wstate.Failed _), _ ->
      k (Error (pkey path ^ " already finished"))
    | _, None -> k (Error ("no task at path " ^ pkey path)))

let compact t =
  Participant.checkpoint t.participant;
  Txn.compact t.mgr

let gc t iid k =
  match Hashtbl.find_opt t.insts iid with
  | None -> k (Error ("no such instance " ^ iid))
  | Some inst when inst.status = Wstate.Wf_running ->
    ignore inst;
    k (Error ("instance " ^ iid ^ " is still running"))
  | Some _ ->
    let prefix = Wstate.task_prefix iid in
    let doomed =
      List.filter (starts_with ~prefix) (Participant.committed_keys t.participant)
    in
    let order = List.filter (fun i -> i <> iid) t.inst_order in
    let writes =
      (Wstate.key_insts, Some (Wstate.encode_insts order))
      :: List.map (fun key -> (key, None)) doomed
    in
    persist t writes (fun () ->
        t.inst_order <- order;
        Hashtbl.remove t.insts iid;
        record t "gc" iid;
        k (Ok ()))

let reconfigure t iid ~transform k =
  match Hashtbl.find_opt t.insts iid with
  | None -> k (Error ("no such instance " ^ iid))
  | Some inst -> (
    match Parser.script_result inst.script_text with
    | Error (msg, _) -> k (Error ("current script no longer parses: " ^ msg))
    | Ok ast -> (
      match transform ast with
      | Error msg -> k (Error msg)
      | Ok ast' -> (
        match Template.expand ast' with
        | Error (msg, _) -> k (Error msg)
        | Ok expanded -> (
          match Validate.ok expanded with
          | Error issues ->
            k
              (Error
                 (String.concat "; "
                    (List.map
                       (fun i -> Format.asprintf "%a" Validate.pp_issue i)
                       issues)))
          | Ok () -> (
            let root = inst.schema.Schema.name in
            match Schema.of_script expanded ~root with
            | Error msg -> k (Error msg)
            | Ok schema ->
              let text = Pretty.to_string expanded in
              persist t
                [ (Wstate.key_reconf iid, Some text) ]
                (fun () ->
                  inst.script_text <- text;
                  inst.schema <- schema;
                  t.reconfigs <- t.reconfigs + 1;
                  record t "reconfigure" iid;
                  mark_dirty t inst;
                  k (Ok ())))))))

let dispatches_total t = t.dispatches

let completions_total t = t.completions

let system_retries_total t = t.system_retries

let marks_total t = t.marks_count

let reconfigs_total t = t.reconfigs

let recoveries_total t = t.recoveries
