(** Runtime values carried by workflow objects.

    The script layer only moves {e references} between tasks and checks
    their classes; payloads are opaque to it. Implementations produce
    and consume these values. Every value serialises to a string (the
    engine persists task outputs in the transactional store and ships
    them over RPC). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Pair of t * t

(** A workflow object: a class tag (checked by the language) plus a
    payload. *)
type obj = { cls : string; payload : t }

val obj : cls:string -> t -> obj

val encode : t -> string

val decode : string -> t
(** Raises {!Wire.Malformed} on corrupt input. *)

val encode_obj : obj -> string

val decode_obj : string -> obj

val encode_bindings : (string * obj) list -> string

val decode_bindings : string -> (string * obj) list

val pp : Format.formatter -> t -> unit

val pp_obj : Format.formatter -> obj -> unit

val equal : t -> t -> bool
