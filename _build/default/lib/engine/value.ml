type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Pair of t * t

type obj = { cls : string; payload : t }

let obj ~cls payload = { cls; payload }

let rec enc v =
  match v with
  | Unit -> Wire.string "u"
  | Bool b -> Wire.string "b" ^ Wire.bool b
  | Int n -> Wire.string "i" ^ Wire.int n
  | Str s -> Wire.string "s" ^ Wire.string s
  | List items -> Wire.string "l" ^ Wire.list enc items
  | Pair (a, b) -> Wire.string "p" ^ enc a ^ enc b

let rec dec d =
  match Wire.d_string d with
  | "u" -> Unit
  | "b" -> Bool (Wire.d_bool d)
  | "i" -> Int (Wire.d_int d)
  | "s" -> Str (Wire.d_string d)
  | "l" -> List (Wire.d_list dec d)
  | "p" ->
    let a = dec d in
    let b = dec d in
    Pair (a, b)
  | tag -> raise (Wire.Malformed ("unknown value tag " ^ tag))

let encode v = enc v

let decode s = Wire.decode dec s

let enc_obj o = Wire.string o.cls ^ enc o.payload

let dec_obj d =
  let cls = Wire.d_string d in
  let payload = dec d in
  { cls; payload }

let encode_obj o = enc_obj o

let decode_obj s = Wire.decode dec_obj s

let encode_bindings bindings = Wire.list (fun (name, o) -> Wire.string name ^ enc_obj o) bindings

let decode_bindings s =
  Wire.decode
    (Wire.d_list (fun d ->
         let name = Wire.d_string d in
         let o = dec_obj d in
         (name, o)))
    s

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | List items ->
    Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp) items
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b

let pp_obj ppf o = Format.fprintf ppf "%s%a" o.cls pp o.payload

let equal = ( = )
