lib/repo/repo_client.mli: Engine Repository Rpc Value
