lib/repo/repository.mli: Node Rpc
