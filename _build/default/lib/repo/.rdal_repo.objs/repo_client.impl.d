lib/repo/repo_client.ml: Engine Repository Rpc Wire
