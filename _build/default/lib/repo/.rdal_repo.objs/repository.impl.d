lib/repo/repository.ml: Frontend Kvstore List Node Printf Schema String Validate Wire
