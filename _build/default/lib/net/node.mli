(** A simulated host.

    A node owns services (named message handlers) and crash hooks.
    Crashing a node loses all volatile state: components register
    [on_crash]/[on_recover] hooks (e.g. a {!Rdal_store.Kvstore.t} wipes
    its cache on crash and replays its WAL on recovery). *)

type t

type handler = src:string -> string -> string
(** A service handler: given the caller's node id and the request body,
    returns the reply body. Raising an exception counts as a service
    failure and the caller sees an RPC failure (after retries). *)

val create : id:string -> t

val id : t -> string

val up : t -> bool

val serve : t -> service:string -> handler -> unit
(** Registers (or replaces — "service moved") a handler. *)

val withdraw : t -> service:string -> unit

val handler : t -> service:string -> handler option

val on_crash : t -> (unit -> unit) -> unit

val on_recover : t -> (unit -> unit) -> unit

val crash : t -> unit
(** Idempotent. Runs crash hooks in registration order. *)

val recover : t -> unit
(** Idempotent. Runs recovery hooks in registration order. *)
