(** Simulated datagram network.

    Messages between nodes suffer latency (base + exponential jitter),
    probabilistic loss, partitions, and are dropped when the destination
    is down. Delivery runs the destination's service handler; any reply
    value is discarded — request/response lives in {!Rpc}. *)

type config = {
  base_latency : Sim.time;  (** fixed one-way latency *)
  jitter_mean : Sim.time;  (** mean of the exponential jitter component *)
  loss : float;  (** per-message drop probability, in [0,1] *)
}

val default_config : config
(** 1ms base latency, 0.2ms mean jitter, no loss. *)

type t

val create : ?config:config -> Sim.t -> t

val sim : t -> Sim.t

val config : t -> config

val set_loss : t -> float -> unit
(** Adjust the drop probability mid-run (fault injection). *)

val add_node : t -> id:string -> Node.t
(** Creates and registers a node. Raises [Invalid_argument] on a
    duplicate id. *)

val node : t -> string -> Node.t
(** Raises [Not_found] for unknown ids. *)

val find_node : t -> string -> Node.t option

val nodes : t -> Node.t list
(** In id order. *)

val partition_on : t -> string -> string -> unit
(** Sever two-way connectivity between the named nodes. *)

val partition_off : t -> string -> string -> unit

val partitioned : t -> string -> string -> bool

val send : t -> src:string -> dst:string -> service:string -> body:string -> unit
(** Fire-and-forget message. Silently dropped when the source is down,
    the link is lossy/partitioned, the destination is down at delivery
    time, or no such service is registered. *)

(** Counters for benches and tests. *)

val sent_total : t -> int

val delivered_total : t -> int

val dropped_total : t -> int
