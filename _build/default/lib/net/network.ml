type config = {
  base_latency : Sim.time;
  jitter_mean : Sim.time;
  loss : float;
}

let default_config = { base_latency = Sim.ms 1; jitter_mean = 200; loss = 0.0 }

module String_pair = struct
  type t = string * string

  let compare = compare
end

module Pair_set = Set.Make (String_pair)

type t = {
  sim : Sim.t;
  mutable cfg : config;
  rng : Rng.t;
  nodes_tbl : (string, Node.t) Hashtbl.t;
  mutable cut_links : Pair_set.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let create ?(config = default_config) sim =
  {
    sim;
    cfg = config;
    rng = Rng.split (Sim.rng sim);
    nodes_tbl = Hashtbl.create 8;
    cut_links = Pair_set.empty;
    sent = 0;
    delivered = 0;
    dropped = 0;
  }

let sim t = t.sim

let config t = t.cfg

let set_loss t loss = t.cfg <- { t.cfg with loss }

let add_node t ~id =
  if Hashtbl.mem t.nodes_tbl id then invalid_arg ("Network.add_node: duplicate node " ^ id);
  let node = Node.create ~id in
  Hashtbl.replace t.nodes_tbl id node;
  node

let node t id = Hashtbl.find t.nodes_tbl id

let find_node t id = Hashtbl.find_opt t.nodes_tbl id

let nodes t =
  let all = Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes_tbl [] in
  List.sort (fun a b -> String.compare (Node.id a) (Node.id b)) all

let link a b = if String.compare a b <= 0 then (a, b) else (b, a)

let partition_on t a b = t.cut_links <- Pair_set.add (link a b) t.cut_links

let partition_off t a b = t.cut_links <- Pair_set.remove (link a b) t.cut_links

let partitioned t a b = Pair_set.mem (link a b) t.cut_links

let latency t =
  t.cfg.base_latency + int_of_float (Rng.exponential t.rng (float_of_int t.cfg.jitter_mean))

let drop t = t.dropped <- t.dropped + 1

let deliver t ~src ~dst ~service ~body =
  match Hashtbl.find_opt t.nodes_tbl dst with
  | None -> drop t
  | Some target ->
    if (not (Node.up target)) || partitioned t src dst then drop t
    else begin
      match Node.handler target ~service with
      | None -> drop t
      | Some handler ->
        t.delivered <- t.delivered + 1;
        ignore (handler ~src body)
    end

let send t ~src ~dst ~service ~body =
  match Hashtbl.find_opt t.nodes_tbl src with
  | None -> invalid_arg ("Network.send: unknown source node " ^ src)
  | Some source ->
    if not (Node.up source) then drop t
    else begin
      t.sent <- t.sent + 1;
      if partitioned t src dst || Rng.bernoulli t.rng t.cfg.loss then drop t
      else begin
        let run_delivery () = deliver t ~src ~dst ~service ~body in
        ignore (Sim.schedule t.sim ~delay:(latency t) run_delivery)
      end
    end

let sent_total t = t.sent

let delivered_total t = t.delivered

let dropped_total t = t.dropped
