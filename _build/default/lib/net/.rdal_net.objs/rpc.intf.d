lib/net/rpc.mli: Network Node Sim
