lib/net/node.ml: Hashtbl List
