lib/net/wire.mli:
