lib/net/node.mli:
