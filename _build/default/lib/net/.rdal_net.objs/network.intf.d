lib/net/network.mli: Node Sim
