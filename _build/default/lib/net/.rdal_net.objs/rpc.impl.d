lib/net/rpc.ml: Hashtbl Network Node Printexc Printf Sim Wire
