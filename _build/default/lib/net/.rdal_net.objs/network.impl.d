lib/net/network.ml: Hashtbl List Node Rng Set Sim String
