lib/net/wire.ml: List Printf String
