type handler = src:string -> string -> string

type t = {
  id : string;
  mutable is_up : bool;
  services : (string, handler) Hashtbl.t;
  mutable crash_hooks : (unit -> unit) list;
  mutable recover_hooks : (unit -> unit) list;
}

let create ~id =
  { id; is_up = true; services = Hashtbl.create 8; crash_hooks = []; recover_hooks = [] }

let id t = t.id

let up t = t.is_up

let serve t ~service handler = Hashtbl.replace t.services service handler

let withdraw t ~service = Hashtbl.remove t.services service

let handler t ~service = Hashtbl.find_opt t.services service

let on_crash t hook = t.crash_hooks <- t.crash_hooks @ [ hook ]

let on_recover t hook = t.recover_hooks <- t.recover_hooks @ [ hook ]

let crash t =
  if t.is_up then begin
    t.is_up <- false;
    List.iter (fun hook -> hook ()) t.crash_hooks
  end

let recover t =
  if not t.is_up then begin
    t.is_up <- true;
    List.iter (fun hook -> hook ()) t.recover_hooks
  end
