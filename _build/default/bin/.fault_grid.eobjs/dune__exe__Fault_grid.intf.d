bin/fault_grid.mli:
