bin/fault_grid.ml: Engine Fault Format List Printf Sim Testbed Workloads Wstate
