bin/rdal.mli:
