bin/rdal.ml: Arg Ast Cmd Cmdliner Dot Engine Format Frontend Gantt Impls Int64 List Loc Option Parser Pretty Printf Registry Schema Sim String Template Term Testbed Trace Validate Value Wstate
