(* Writes the bundled paper scripts out as .rdl files (used by the
   scripts/ build rule, which then checks each one with the rdal CLI —
   a build-time integration test of the whole front end). *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  List.iter
    (fun (name, source, _root) ->
      let path = Filename.concat dir (name ^ ".rdl") in
      let oc = open_out path in
      output_string oc source;
      close_out oc)
    Paper_scripts.all
