bin/export_scripts.ml: Array Filename List Paper_scripts Sys
