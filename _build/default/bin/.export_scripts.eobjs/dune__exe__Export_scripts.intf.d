bin/export_scripts.mli:
