(* fault_grid — developer tool: exhaustive search over crash schedules.

   Runs a 6-task chain workload under every (crash instant, downtime)
   combination on a grid, plus coarse crash pairs, and reports any
   schedule the engine fails to survive. This is the harness that found
   the launch-transaction/crash race fixed in Engine.relaunch_orphan.

   Run with: dune exec bin/fault_grid.exe *)

let run crash_times down_ms =
  let engine_config =
    { Engine.default_config with Engine.default_deadline = Sim.ms 80; system_max_attempts = 200 }
  in
  let tb = Testbed.make ~engine_config () in
  Workloads.register ~work:(Sim.ms 5) tb.Testbed.registry;
  let plan =
    List.concat_map
      (fun at_ms -> Fault.crash_restart ~node:"n0" ~at:(Sim.ms at_ms) ~down_for:(Sim.ms down_ms))
      (List.sort_uniq compare crash_times)
  in
  Fault.apply tb.Testbed.sim plan ~on:(function
    | Fault.Crash n -> Testbed.crash tb n
    | Fault.Restart n -> Testbed.recover tb n
    | _ -> ());
  let script, root = Workloads.chain ~n:6 in
  match Testbed.launch_and_run ~until:(Sim.sec 120) tb ~script ~root ~inputs:Workloads.seed_inputs with
  | Ok (_, Wstate.Wf_done { output = "finished"; _ }) -> true
  | Ok (_, s) -> Format.printf "status: %a@." Wstate.pp_status s; false
  | Error e -> print_endline e; false

let () =
  (* single crashes *)
  let failures = ref 0 in
  for t = 1 to 400 do
    for d = 1 to 5 do
      let down = d * 10 in
      if not (run [ t ] down) then begin
        incr failures;
        Printf.printf "FAIL single crash at %d ms, down %d ms\n%!" t down
      end
    done
  done;
  (* pairs, coarser *)
  let ts = [3; 7; 15; 31; 63; 127; 255; 380] in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          List.iter
            (fun down -> if not (run [ t1; t2 ] down) then begin incr failures; Printf.printf "FAIL crashes at %d,%d down %d\n%!" t1 t2 down end)
            [ 10; 20; 30; 40; 50 ])
        ts)
    ts;
  Printf.printf "total failures: %d\n" !failures
