(* rdal — command-line front end for the workflow scripting language.

   check   parse + expand templates + validate, reporting every issue
   fmt     print the canonical form
   inspect list schema roots, task counts and warnings
   dot     emit a Graphviz digraph for one root (Fig 1-style diagrams)
   run     execute a script on a simulated single-node cluster, binding
           any implementation names that are not known to a generic
           implementation that produces a chosen (or the first) outcome *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_or_exit path =
  let source = read_file path in
  match Parser.script_result source with
  | Error (msg, loc) ->
    Printf.eprintf "%s: parse error: %s (%s)\n" path msg (Loc.to_string loc);
    exit 1
  | Ok ast -> (
    match Template.expand ast with
    | Error (msg, loc) ->
      Printf.eprintf "%s: template error: %s (%s)\n" path msg (Loc.to_string loc);
      exit 1
    | Ok expanded -> (source, expanded))

(* --- check --- *)

let cmd_check path strict =
  let _, ast = load_or_exit path in
  let issues = Validate.check ast in
  List.iter (fun issue -> Format.printf "%s: %a@." path Validate.pp_issue issue) issues;
  let errors = Validate.errors_only issues in
  let fail_on_warning = strict && issues <> [] in
  if errors <> [] || fail_on_warning then exit 1
  else begin
    Format.printf "%s: ok (%d declaration(s), %d warning(s))@." path (List.length ast)
      (List.length issues - List.length errors);
    exit 0
  end

(* --- fmt --- *)

let cmd_fmt path =
  let source = read_file path in
  match Parser.script_result source with
  | Error (msg, loc) ->
    Printf.eprintf "%s: parse error: %s (%s)\n" path msg (Loc.to_string loc);
    exit 1
  | Ok ast -> print_string (Pretty.to_string ast)

(* --- inspect --- *)

let cmd_inspect path =
  let _, ast = load_or_exit path in
  let issues = Validate.check ast in
  let warnings = List.length issues - List.length (Validate.errors_only issues) in
  Format.printf "declarations: %d@." (List.length ast);
  Format.printf "classes:      %s@." (String.concat ", " (Ast.classes ast));
  Format.printf "taskclasses:  %s@."
    (String.concat ", " (List.map (fun (tc : Ast.taskclass_decl) -> tc.Ast.tcd_name) (Ast.taskclasses ast)));
  Format.printf "warnings:     %d@." warnings;
  let describe root =
    match Schema.of_script ast ~root with
    | Ok task ->
      Format.printf "root %-28s %d task(s)%s@." root (Schema.task_count task)
        (if Schema.is_atomic task then ", atomic" else "")
    | Error msg -> Format.printf "root %-28s unresolvable: %s@." root msg
  in
  List.iter describe (Frontend.roots ast)

(* --- dot --- *)

let resolve_root ast = function
  | Some root -> root
  | None -> (
    match Frontend.roots ast with
    | [ root ] -> root
    | [] ->
      prerr_endline "no top-level task in the script";
      exit 1
    | roots ->
      Printf.eprintf "several roots (%s): pick one with --root\n" (String.concat ", " roots);
      exit 1)

let cmd_dot path root =
  let _, ast = load_or_exit path in
  (match Validate.ok ast with
  | Ok () -> ()
  | Error issues ->
    List.iter (fun issue -> Format.eprintf "%s: %a@." path Validate.pp_issue issue) issues;
    exit 1);
  let root = resolve_root ast root in
  match Schema.of_script ast ~root with
  | Ok task -> print_string (Dot.of_task task)
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 1

(* --- run --- *)

let parse_input spec =
  (* name=Class:value *)
  match String.index_opt spec '=' with
  | None -> Error (spec ^ ": expected name=Class:value")
  | Some i -> (
    let name = String.sub spec 0 i in
    let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
    match String.index_opt rest ':' with
    | None -> Error (spec ^ ": expected name=Class:value")
    | Some j ->
      let cls = String.sub rest 0 j in
      let value = String.sub rest (j + 1) (String.length rest - j - 1) in
      let payload =
        match int_of_string_opt value with Some n -> Value.Int n | None -> Value.Str value
      in
      Ok (name, Value.obj ~cls payload))

let parse_force spec =
  match String.index_opt spec '=' with
  | Some i ->
    Ok (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
  | None -> Error (spec ^ ": expected code=output")

(* Bind a generic implementation for every code the schema references
   that is not already bound: it finishes in the forced output if given,
   otherwise the first non-abort outcome, with Str payloads. *)
let bind_generic registry schema forced =
  let rec codes (task : Schema.task) acc =
    let acc =
      match (task.Schema.body, Ast.impl_code task.Schema.impl) with
      | Schema.Simple, Some code -> (code, task) :: acc
      | _ -> acc
    in
    match task.Schema.body with
    | Schema.Compound { children; _ } -> List.fold_left (fun acc c -> codes c acc) acc children
    | Schema.Simple -> acc
  in
  let pick_output (task : Schema.task) code =
    match List.assoc_opt code forced with
    | Some output -> output
    | None -> (
      let non_abort =
        List.find_opt
          (fun (o : Schema.output) ->
            o.Schema.out_kind = Ast.Outcome)
          task.Schema.outputs
      in
      match non_abort with
      | Some o -> o.Schema.out_name
      | None -> ( match task.Schema.outputs with o :: _ -> o.Schema.out_name | [] -> "done"))
  in
  let bind (code, task) =
    if Registry.find registry ~code = None then begin
      let output = pick_output task code in
      let objects =
        match Schema.output_named task output with
        | Some out -> List.map (fun (name, _) -> (name, Value.Str (code ^ ":" ^ name))) out.Schema.out_objects
        | None -> []
      in
      Registry.bind registry ~code (Registry.const output objects)
    end
  in
  List.iter bind (codes schema [])

let cmd_run path root inputs forced seed show_trace show_gantt until_ms =
  let source, ast = load_or_exit path in
  (match Validate.ok ast with
  | Ok () -> ()
  | Error issues ->
    List.iter (fun issue -> Format.eprintf "%s: %a@." path Validate.pp_issue issue) issues;
    exit 1);
  let root = resolve_root ast root in
  let schema =
    match Schema.of_script ast ~root with
    | Ok s -> s
    | Error msg ->
      prerr_endline msg;
      exit 1
  in
  let inputs =
    List.map
      (fun spec ->
        match parse_input spec with
        | Ok binding -> binding
        | Error e ->
          prerr_endline e;
          exit 1)
      inputs
  in
  let forced =
    List.map
      (fun spec ->
        match parse_force spec with
        | Ok f -> f
        | Error e ->
          prerr_endline e;
          exit 1)
      forced
  in
  let tb = Testbed.make ~seed:(Int64.of_int seed) () in
  Impls.register_all_defaults tb.Testbed.registry;
  bind_generic tb.Testbed.registry schema forced;
  match
    Testbed.launch_and_run ?until:(Option.map Sim.ms until_ms) tb ~script:source ~root ~inputs
  with
  | Error e ->
    prerr_endline e;
    exit 1
  | Ok (iid, status) ->
    if show_trace then Trace.dump Format.std_formatter (Engine.trace tb.Testbed.engine);
    if show_gantt then print_string (Gantt.render (Engine.trace tb.Testbed.engine));
    Format.printf "instance %s: %a@." iid Wstate.pp_status status;
    List.iter
      (fun (p, s) -> Format.printf "  %-40s %a@." p Wstate.pp_task_state s)
      (Engine.task_states tb.Testbed.engine iid);
    (match status with
    | Wstate.Wf_done { objects; _ } ->
      List.iter
        (fun (name, obj) -> Format.printf "  output %s = %a@." name Value.pp_obj obj)
        objects
    | Wstate.Wf_running | Wstate.Wf_failed _ -> ());
    exit (match status with Wstate.Wf_done _ -> 0 | _ -> 2)

(* --- cmdliner wiring --- *)

open Cmdliner

let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT")

let root_arg =
  Arg.(value & opt (some string) None & info [ "root" ] ~docv:"TASK" ~doc:"Top-level instance to use.")

let check_cmd =
  let strict = Arg.(value & flag & info [ "strict" ] ~doc:"Fail on warnings too.") in
  Cmd.v (Cmd.info "check" ~doc:"Parse, expand templates and validate a script")
    Term.(const cmd_check $ path_arg $ strict)

let fmt_cmd =
  Cmd.v (Cmd.info "fmt" ~doc:"Print the canonical formatting of a script")
    Term.(const cmd_fmt $ path_arg)

let inspect_cmd =
  Cmd.v (Cmd.info "inspect" ~doc:"Summarise a script's classes, taskclasses and roots")
    Term.(const cmd_inspect $ path_arg)

let dot_cmd =
  Cmd.v (Cmd.info "dot" ~doc:"Emit a Graphviz digraph of the dependency structure")
    Term.(const cmd_dot $ path_arg $ root_arg)

let run_cmd =
  let inputs =
    Arg.(value & opt_all string [] & info [ "input"; "i" ] ~docv:"name=Class:value"
           ~doc:"External input object for the root task (repeatable).")
  in
  let force =
    Arg.(value & opt_all string [] & info [ "force" ] ~docv:"code=output"
           ~doc:"Make the generic implementation bound to $(i,code) finish in $(i,output).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the execution trace.") in
  let gantt = Arg.(value & flag & info [ "gantt" ] ~doc:"Draw an ASCII Gantt chart of the run.") in
  let until =
    Arg.(value & opt (some int) None & info [ "until" ] ~docv:"MS" ~doc:"Stop after MS simulated milliseconds.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a script on a simulated cluster")
    Term.(const cmd_run $ path_arg $ root_arg $ inputs $ force $ seed $ trace $ gantt $ until)

let () =
  let doc = "workflow scripting language tools (ICDCS'98 reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "rdal" ~doc) [ check_cmd; fmt_cmd; inspect_cmd; dot_cmd; run_cmd ]))
