(* Tests for the transaction layer: locking, atomic commitment across
   nodes, nested transactions, and crash recovery of both participants
   and coordinators. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_str_opt = Alcotest.(check (option string))

open Txn

(* --- Lock table --- *)

let test_lock_read_sharing () =
  let l = Lock.create () in
  check "r1" true (Lock.read l ~key:"k" ~txid:"t1" = Lock.Granted);
  check "r2 shares" true (Lock.read l ~key:"k" ~txid:"t2" = Lock.Granted);
  check "writer blocked" true (match Lock.write l ~key:"k" ~txid:"t3" with Lock.Conflict _ -> true | _ -> false)

let test_lock_write_exclusive () =
  let l = Lock.create () in
  check "w1" true (Lock.write l ~key:"k" ~txid:"t1" = Lock.Granted);
  check "w2 conflicts" true (Lock.write l ~key:"k" ~txid:"t2" = Lock.Conflict "t1");
  check "r2 conflicts" true (Lock.read l ~key:"k" ~txid:"t2" = Lock.Conflict "t1");
  check "owner rereads" true (Lock.read l ~key:"k" ~txid:"t1" = Lock.Granted)

let test_lock_upgrade () =
  let l = Lock.create () in
  check "read" true (Lock.read l ~key:"k" ~txid:"t1" = Lock.Granted);
  check "sole reader upgrades" true (Lock.write l ~key:"k" ~txid:"t1" = Lock.Granted);
  check "holds write" true (Lock.holds_write l ~key:"k" ~txid:"t1");
  ignore (Lock.read l ~key:"j" ~txid:"t1");
  ignore (Lock.read l ~key:"j" ~txid:"t2");
  check "shared key cannot upgrade" true
    (match Lock.write l ~key:"j" ~txid:"t1" with Lock.Conflict _ -> true | _ -> false)

let test_lock_release_all () =
  let l = Lock.create () in
  ignore (Lock.write l ~key:"a" ~txid:"t1");
  ignore (Lock.read l ~key:"b" ~txid:"t1");
  ignore (Lock.read l ~key:"b" ~txid:"t2");
  Lock.release_all l ~txid:"t1";
  Alcotest.(check (list string)) "t1 holds nothing" [] (Lock.held_keys l ~txid:"t1");
  Alcotest.(check (list string)) "t2 keeps its read" [ "b" ] (Lock.held_keys l ~txid:"t2");
  check "a is free for others" true (Lock.write l ~key:"a" ~txid:"t3" = Lock.Granted)

(* --- Single-node transactions --- *)

let test_commit_visible () =
  let c = Harness.cluster [ "a" ] in
  let mgr = Harness.manager c "a" in
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         write t ~node:"a" ~key:"x" ~value:"42";
         return ()));
  check_str_opt "committed value" (Some "42")
    (Participant.committed_value (Harness.participant c "a") ~key:"x")

let test_read_your_writes () =
  let c = Harness.cluster [ "a" ] in
  let mgr = Harness.manager c "a" in
  let seen =
    Harness.exec_ok c
      (Txn.run mgr (fun t ->
           write t ~node:"a" ~key:"x" ~value:"v1";
           let* v = read t ~node:"a" ~key:"x" in
           return v))
  in
  check_str_opt "buffered write visible" (Some "v1") seen

let test_abort_discards () =
  let c = Harness.cluster [ "a" ] in
  let mgr = Harness.manager c "a" in
  let t = Txn.begin_ mgr in
  write t ~node:"a" ~key:"x" ~value:"ghost";
  Txn.abort t;
  Harness.run c;
  check_str_opt "nothing committed" None
    (Participant.committed_value (Harness.participant c "a") ~key:"x")

let test_conflict_and_retry () =
  let c = Harness.cluster [ "a" ] in
  let mgr = Harness.manager c "a" in
  (* t1 write-locks x via prepare by committing slowly? Simpler: t1 reads
     x and stays open; t2's commit (write x) must conflict at prepare,
     then succeed after t1 aborts. *)
  let t1 = Txn.begin_ mgr in
  let got_t1_read = ref false in
  (read t1 ~node:"a" ~key:"x") (fun r -> got_t1_read := (r = Ok None));
  Harness.run c;
  check "t1 read-locked x" true !got_t1_read;
  let t2_result = ref None in
  (Txn.run mgr ~max_attempts:2 (fun t2 ->
       write t2 ~node:"a" ~key:"x" ~value:"two";
       return ()))
    (fun r -> t2_result := Some r);
  Harness.run c;
  check "t2 blocked by t1's read lock" true
    (match !t2_result with Some (Error (`Conflict _)) -> true | _ -> false);
  Txn.abort t1;
  Harness.exec_ok c
    (Txn.run mgr (fun t3 ->
         write t3 ~node:"a" ~key:"x" ~value:"three";
         return ()));
  check_str_opt "after t1 abort, writes go through" (Some "three")
    (Participant.committed_value (Harness.participant c "a") ~key:"x")

(* --- Multi-node atomicity --- *)

let test_two_node_commit () =
  let c = Harness.cluster [ "a"; "b" ] in
  let mgr = Harness.manager c "a" in
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         write t ~node:"a" ~key:"x" ~value:"1";
         write t ~node:"b" ~key:"y" ~value:"2";
         return ()));
  check_str_opt "a applied" (Some "1") (Participant.committed_value (Harness.participant c "a") ~key:"x");
  check_str_opt "b applied" (Some "2") (Participant.committed_value (Harness.participant c "b") ~key:"y")

let test_atomicity_under_conflict () =
  (* b's key is write-locked by another transaction: the 2PC must abort
     and NEITHER node may apply anything. *)
  let c = Harness.cluster [ "a"; "b" ] in
  let mgr_b = Harness.manager c "b" in
  let blocker = Txn.begin_ mgr_b in
  let ok = ref false in
  (read blocker ~node:"b" ~key:"y") (fun r -> ok := (r = Ok None));
  Harness.run c;
  check "blocker locked y" true !ok;
  let mgr_a = Harness.manager c "a" in
  let result =
    Harness.exec c
      (Txn.run mgr_a ~max_attempts:1 (fun t ->
           write t ~node:"a" ~key:"x" ~value:"1";
           write t ~node:"b" ~key:"y" ~value:"2";
           return ()))
  in
  check "aborted" true (match result with Error (`Conflict _) -> true | _ -> false);
  check_str_opt "a did not apply" None
    (Participant.committed_value (Harness.participant c "a") ~key:"x");
  check_str_opt "b did not apply" None
    (Participant.committed_value (Harness.participant c "b") ~key:"y")

let test_isolation_no_dirty_read () =
  let c = Harness.cluster [ "a" ] in
  let mgr = Harness.manager c "a" in
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         write t ~node:"a" ~key:"x" ~value:"committed";
         return ()));
  let t1 = Txn.begin_ mgr in
  write t1 ~node:"a" ~key:"x" ~value:"uncommitted";
  (* t1 has not prepared: its write is buffered at the coordinator, so a
     reader sees the committed value (no dirty reads by construction). *)
  let seen =
    Harness.exec_ok c
      (Txn.run mgr (fun t2 ->
           let* v = read t2 ~node:"a" ~key:"x" in
           return v))
  in
  check_str_opt "no dirty read" (Some "committed") seen;
  Txn.abort t1

(* --- Nested transactions --- *)

let test_nested_commit_merges () =
  let c = Harness.cluster [ "a" ] in
  let mgr = Harness.manager c "a" in
  Harness.exec_ok c
    (Txn.run mgr (fun top ->
         let child = Txn.begin_child top in
         write child ~node:"a" ~key:"x" ~value:"from-child";
         let* () = Txn.commit child in
         let* v = read top ~node:"a" ~key:"x" in
         check_str_opt "parent sees child's write" (Some "from-child") v;
         return ()));
  check_str_opt "committed at top" (Some "from-child")
    (Participant.committed_value (Harness.participant c "a") ~key:"x")

let test_nested_abort_discards_child_only () =
  let c = Harness.cluster [ "a" ] in
  let mgr = Harness.manager c "a" in
  Harness.exec_ok c
    (Txn.run mgr (fun top ->
         write top ~node:"a" ~key:"keep" ~value:"yes";
         let child = Txn.begin_child top in
         write child ~node:"a" ~key:"drop" ~value:"no";
         Txn.abort child;
         return ()));
  let p = Harness.participant c "a" in
  check_str_opt "parent write survives" (Some "yes") (Participant.committed_value p ~key:"keep");
  check_str_opt "child write gone" None (Participant.committed_value p ~key:"drop")

let test_nested_child_wins_merge () =
  let c = Harness.cluster [ "a" ] in
  let mgr = Harness.manager c "a" in
  Harness.exec_ok c
    (Txn.run mgr (fun top ->
         write top ~node:"a" ~key:"x" ~value:"parent";
         let child = Txn.begin_child top in
         write child ~node:"a" ~key:"x" ~value:"child";
         let* () = Txn.commit child in
         return ()));
  check_str_opt "child's later write wins" (Some "child")
    (Participant.committed_value (Harness.participant c "a") ~key:"x")

(* --- Commit fast lanes --- *)

let test_one_phase_local_no_rpc () =
  (* sole participant = the coordinator's own node: the commit is a
     direct local call — no RPC, no network messages, one log append *)
  let c = Harness.cluster [ "a" ] in
  let mgr = Harness.manager c "a" in
  let m = Metrics.create () in
  Metrics.attach m (Sim.events c.Harness.sim);
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         write t ~node:"a" ~key:"x" ~value:"42";
         return ()));
  check_str_opt "committed" (Some "42")
    (Participant.committed_value (Harness.participant c "a") ~key:"x");
  check_int "one-phase lane taken" 1 (Txn.one_phase_commits mgr);
  check_int "no network traffic at all" 0 (Network.sent_total c.Harness.net);
  check_int "no rpc calls" 0 (Rpc.calls_total c.Harness.rpc);
  check_int "single combined log record" 1 (Participant.log_length (Harness.participant c "a"));
  check_int "txn.one_phase metric" 1 (Metrics.value m "txn.one_phase")

let test_one_phase_remote_commit () =
  let c = Harness.cluster [ "a"; "b" ] in
  let mgr = Harness.manager c "a" in
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         write t ~node:"b" ~key:"y" ~value:"v";
         return ()));
  check_str_opt "applied at b" (Some "v")
    (Participant.committed_value (Harness.participant c "b") ~key:"y");
  check_int "one-phase lane taken" 1 (Txn.one_phase_commits mgr);
  check_int "single combined log record at b" 1
    (Participant.log_length (Harness.participant c "b"));
  Alcotest.(check (list string))
    "nothing left prepared at b" []
    (Participant.prepared_txids (Harness.participant c "b"))

let test_one_phase_refused_on_conflict () =
  (* the combined prepare+commit must refuse when the participant's
     locks are taken, and the refusal aborts cleanly *)
  let c = Harness.cluster [ "a"; "b" ] in
  let blocker = Txn.begin_ (Harness.manager c "b") in
  let ok = ref false in
  (read blocker ~node:"b" ~key:"y") (fun r -> ok := (r = Ok None));
  Harness.run c;
  check "blocker locked y" true !ok;
  let result =
    Harness.exec c
      (Txn.run (Harness.manager c "a") ~max_attempts:1 (fun t ->
           write t ~node:"b" ~key:"y" ~value:"2";
           return ()))
  in
  check "refused as conflict" true (match result with Error (`Conflict _) -> true | _ -> false);
  check_str_opt "nothing applied" None
    (Participant.committed_value (Harness.participant c "b") ~key:"y");
  Txn.abort blocker;
  Harness.run c;
  Harness.exec_ok c
    (Txn.run (Harness.manager c "a") (fun t ->
         write t ~node:"b" ~key:"y" ~value:"3";
         return ()));
  check_str_opt "unblocked after abort" (Some "3")
    (Participant.committed_value (Harness.participant c "b") ~key:"y")

let test_readonly_txn_elided () =
  (* a pure read-only transaction commits in one validate-and-release
     round: no decision record, no commit fan-out, no participant log *)
  let c = Harness.cluster [ "a"; "b" ] in
  let mgr = Harness.manager c "a" in
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         write t ~node:"b" ~key:"x" ~value:"seed";
         return ()));
  let log_after_seed = Participant.log_length (Harness.participant c "b") in
  let m = Metrics.create () in
  Metrics.attach m (Sim.events c.Harness.sim);
  let seen =
    Harness.exec_ok c
      (Txn.run mgr (fun t ->
           let* v = read t ~node:"b" ~key:"x" in
           return v))
  in
  check_str_opt "read the committed value" (Some "seed") seen;
  check_int "participant elided" 1 (Txn.readonly_elisions mgr);
  check_int "txn.readonly_elided metric" 1 (Metrics.value m "txn.readonly_elided");
  check_int "no new participant log record" log_after_seed
    (Participant.log_length (Harness.participant c "b"));
  (* the read locks are gone: an immediate writer must not conflict *)
  Harness.exec_ok c
    (Txn.run (Harness.manager c "b") ~max_attempts:1 (fun t ->
         write t ~node:"b" ~key:"x" ~value:"next";
         return ()));
  check_str_opt "lock released in phase 1" (Some "next")
    (Participant.committed_value (Harness.participant c "b") ~key:"x")

let test_readonly_elision_under_conflict () =
  (* validation must fail when the participant lost the read locks (a
     crash reset its lock table): stale reads cannot commit *)
  let c = Harness.cluster [ "a"; "b" ] in
  let mgr = Harness.manager c "a" in
  let t = Txn.begin_ mgr in
  let got = ref false in
  (read t ~node:"b" ~key:"x") (fun r -> got := (r = Ok None));
  Harness.run c;
  check "read acquired its lock" true !got;
  Harness.crash c "b";
  Harness.recover c "b";
  Harness.run c;
  let result = Harness.exec c (Txn.commit t) in
  check "stale read-only commit refused" true
    (match result with Error (`Conflict _) -> true | _ -> false);
  check_int "no elision counted on abort" 0 (Txn.readonly_elisions mgr)

let test_mixed_readonly_elided_from_fanout () =
  (* read one node, write another: the reader votes in phase 1 and is
     excluded from the decision record and the commit push *)
  let c = Harness.cluster [ "a"; "b"; "cc" ] in
  let mgr = Harness.manager c "a" in
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         write t ~node:"b" ~key:"x" ~value:"seed";
         return ()));
  let b_log = Participant.log_length (Harness.participant c "b") in
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         let* v = read t ~node:"b" ~key:"x" in
         match v with
         | Some s ->
           write t ~node:"cc" ~key:"y" ~value:s;
           return ()
         | None -> fail (`Aborted "seed missing")));
  check_str_opt "writer side committed" (Some "seed")
    (Participant.committed_value (Harness.participant c "cc") ~key:"y");
  check_int "reader elided" 1 (Txn.readonly_elisions mgr);
  check_int "reader logged nothing" b_log (Participant.log_length (Harness.participant c "b"));
  Alcotest.(check (list string))
    "reader holds no prepared state" []
    (Participant.prepared_txids (Harness.participant c "b"))

let test_one_phase_commit_through_partition () =
  (* a partition opens just as the combined prepare+commit ([tx.commit1])
     would cross the a->b link; the RPC layer retries through the outage
     and the commit must resolve after the heal with the effect applied
     exactly once — one combined log record, nothing prepared, no locks *)
  let c = Harness.cluster [ "a"; "b" ] in
  let mgr = Harness.manager c "a" in
  let p_b = Harness.participant c "b" in
  Network.partition_on c.Harness.net "a" "b";
  ignore
    (Sim.schedule c.Harness.sim ~delay:(Sim.ms 30) (fun () ->
         Network.partition_off c.Harness.net "a" "b"));
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         write t ~node:"b" ~key:"y" ~value:"v";
         return ()));
  check_str_opt "committed after the heal" (Some "v")
    (Participant.committed_value p_b ~key:"y");
  check_int "one-phase lane still taken" 1 (Txn.one_phase_commits mgr);
  check_int "applied exactly once (single log record)" 1 (Participant.log_length p_b);
  Alcotest.(check (list string))
    "nothing left prepared" [] (Participant.prepared_txids p_b);
  check_int "no orphaned locks" 0 (Participant.locks_held p_b)

let test_readonly_elision_through_partition () =
  (* same, for the read-only fast lane: the [tx.prepare-ro] validation
     round is cut off mid-flight; after the heal the commit must elide,
     log nothing, and leave the read locks released *)
  let c = Harness.cluster [ "a"; "b" ] in
  let mgr = Harness.manager c "a" in
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         write t ~node:"b" ~key:"x" ~value:"seed";
         return ()));
  let p_b = Harness.participant c "b" in
  let log_before = Participant.log_length p_b in
  let t = Txn.begin_ mgr in
  let got = ref None in
  (read t ~node:"b" ~key:"x") (fun r -> got := Some r);
  Harness.run c;
  check "read completed before the partition" true (!got = Some (Ok (Some "seed")));
  Network.partition_on c.Harness.net "a" "b";
  ignore
    (Sim.schedule c.Harness.sim ~delay:(Sim.ms 30) (fun () ->
         Network.partition_off c.Harness.net "a" "b"));
  (match Harness.exec c (Txn.commit t) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "read-only commit failed: %s" (Txn.error_to_string e));
  check_int "elision resolved through the outage" 1 (Txn.readonly_elisions mgr);
  check_int "still logged nothing" log_before (Participant.log_length p_b);
  check_int "read locks released" 0 (Participant.locks_held p_b);
  (* exactly-once, observable side: an immediate writer is not blocked
     by leftover read locks and sees the unchanged committed value *)
  Harness.exec_ok c
    (Txn.run (Harness.manager c "b") ~max_attempts:1 (fun t ->
         write t ~node:"b" ~key:"x" ~value:"next";
         return ()));
  check_str_opt "writer proceeds after elision" (Some "next")
    (Participant.committed_value p_b ~key:"x")

let test_checkpoint_then_crash_recovers_exact_state () =
  (* Wal.rewrite's crash-atomicity contract seen through the participant:
     a crash right after checkpoint (between the compaction and the next
     append) must recover exactly the compacted state — never a mix of
     old and new log contents *)
  let c = Harness.cluster [ "a"; "b" ] in
  let mgr = Harness.manager c "a" in
  List.iter
    (fun (k, v) ->
      Harness.exec_ok c
        (Txn.run mgr (fun t ->
             write t ~node:"b" ~key:k ~value:v;
             return ())))
    [ ("x", "1"); ("y", "2"); ("x", "3") ];
  let p_b = Harness.participant c "b" in
  Participant.checkpoint p_b;
  let compacted = Participant.log_length p_b in
  Harness.crash c "b";
  Harness.recover c "b";
  Harness.run c;
  check_str_opt "x survives at its newest value" (Some "3")
    (Participant.committed_value p_b ~key:"x");
  check_str_opt "y survives" (Some "2") (Participant.committed_value p_b ~key:"y");
  check_int "recovered log is the compacted one, not a mix" compacted
    (Participant.log_length p_b);
  Alcotest.(check (list string))
    "nothing prepared after recovery" [] (Participant.prepared_txids p_b);
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         write t ~node:"b" ~key:"z" ~value:"4";
         return ()));
  check_str_opt "writes continue after the recovered checkpoint" (Some "4")
    (Participant.committed_value p_b ~key:"z")

(* --- Crash recovery --- *)

let test_participant_crash_after_prepare_commits_eventually () =
  (* Crash participant b moments after the transaction starts committing;
     the coordinator's commit push retries until b recovers; b's recovery
     re-acquires locks and the status poll finishes the job. *)
  let c = Harness.cluster [ "a"; "b" ] in
  let mgr = Harness.manager c "a" in
  let result = ref None in
  (Txn.run mgr (fun t ->
       write t ~node:"b" ~key:"y" ~value:"v";
       return ()))
    (fun r -> result := Some r);
  (* let prepare land, then crash b for a while *)
  ignore (Sim.schedule c.Harness.sim ~delay:(Sim.ms 3) (fun () -> Harness.crash c "b"));
  ignore (Sim.schedule c.Harness.sim ~delay:(Sim.ms 200) (fun () -> Harness.recover c "b"));
  Harness.run c;
  check "commit completed" true (!result = Some (Ok ()));
  check_str_opt "applied after recovery" (Some "v")
    (Participant.committed_value (Harness.participant c "b") ~key:"y")

let test_coordinator_crash_before_decision_presumed_abort () =
  (* Two remote participants keep this on the classic 2PC path (a single
     remote write would take the one-phase lane, where the participant
     itself decides). *)
  let c = Harness.cluster [ "a"; "b"; "cc" ] in
  let mgr = Harness.manager c "a" in
  let result = ref None in
  (Txn.run mgr ~max_attempts:1 (fun t ->
       write t ~node:"b" ~key:"y" ~value:"doomed";
       write t ~node:"cc" ~key:"z" ~value:"doomed";
       return ()))
    (fun r -> result := Some r);
  (* crash the coordinator before prepares can complete the round trip *)
  Harness.crash c "a";
  ignore (Sim.schedule c.Harness.sim ~delay:(Sim.ms 300) (fun () -> Harness.recover c "a"));
  Sim.run ~until:(Sim.sec 5) c.Harness.sim;
  check "caller callback suppressed by crash" true (!result = None);
  check_str_opt "no value applied" None
    (Participant.committed_value (Harness.participant c "b") ~key:"y");
  Alcotest.(check (list string))
    "participant b eventually clears prepared state" []
    (Participant.prepared_txids (Harness.participant c "b"));
  (* y must be writable again: locks were released *)
  Harness.exec_ok c
    (Txn.run (Harness.manager c "b") (fun t ->
         write t ~node:"b" ~key:"y" ~value:"alive";
         return ()));
  check_str_opt "lock released, new writer wins" (Some "alive")
    (Participant.committed_value (Harness.participant c "b") ~key:"y")

let test_coordinator_crash_after_decision_resumes_commit () =
  (* Two remote participants force the decision through the logged 2PC
     lane (a single remote write would one-phase and log nothing). *)
  let c = Harness.cluster [ "a"; "b"; "cc" ] in
  let mgr = Harness.manager c "a" in
  (* Delay b's application by partitioning it right after prepare, so the
     decision is logged but the commit messages can't reach b. Then crash
     the coordinator and recover it: recovery must resume the commit. *)
  let result = ref None in
  (Txn.run mgr (fun t ->
       write t ~node:"b" ~key:"y" ~value:"decided";
       write t ~node:"cc" ~key:"z" ~value:"decided";
       return ()))
    (fun r -> result := Some r);
  (* Cut the link the moment the decision is logged at a: the commit
     messages are in flight and get dropped at delivery time, leaving b
     prepared and the commit phase unfinished. *)
  let rec sever_on_decision () =
    if Txn.committed_count mgr >= 1 then Network.partition_on c.Harness.net "a" "b"
    else ignore (Sim.schedule c.Harness.sim ~delay:50 sever_on_decision)
  in
  ignore (Sim.schedule c.Harness.sim ~delay:50 sever_on_decision);
  ignore (Sim.schedule c.Harness.sim ~delay:(Sim.ms 60) (fun () -> Harness.crash c "a"));
  ignore
    (Sim.schedule c.Harness.sim ~delay:(Sim.ms 120)
       (fun () ->
         Network.partition_off c.Harness.net "a" "b";
         Harness.recover c "a"));
  Sim.run ~until:(Sim.sec 10) c.Harness.sim;
  check_str_opt "decision reached b after coordinator recovery" (Some "decided")
    (Participant.committed_value (Harness.participant c "b") ~key:"y");
  check "recovery resumed a commit" true (Txn.resumed_commits (Harness.manager c "a") >= 1)

let test_commit_survives_lossy_network () =
  let config = { Network.default_config with loss = 0.4 } in
  let c = Harness.cluster ~config ~seed:17L [ "a"; "b"; "cc" ] in
  let mgr = Harness.manager c "a" in
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         write t ~node:"a" ~key:"k" ~value:"1";
         write t ~node:"b" ~key:"k" ~value:"2";
         write t ~node:"cc" ~key:"k" ~value:"3";
         return ()));
  List.iter
    (fun (node, v) ->
      check_str_opt ("applied at " ^ node) (Some v)
        (Participant.committed_value (Harness.participant c node) ~key:"k"))
    [ ("a", "1"); ("b", "2"); ("cc", "3") ]

let test_sequential_transactions_accumulate () =
  let c = Harness.cluster [ "a"; "b" ] in
  let mgr = Harness.manager c "a" in
  let transfer i =
    Txn.run mgr (fun t ->
        let* balance = read t ~node:"b" ~key:"balance" in
        let current = match balance with Some s -> int_of_string s | None -> 0 in
        write t ~node:"b" ~key:"balance" ~value:(string_of_int (current + i));
        return ())
  in
  List.iter (fun i -> Harness.exec_ok c (transfer i)) [ 1; 2; 3; 4; 5 ];
  check_str_opt "sum accumulated" (Some "15")
    (Participant.committed_value (Harness.participant c "b") ~key:"balance")

let test_checkpoint_compacts_logs () =
  let c = Harness.cluster [ "a" ] in
  let mgr = Harness.manager c "a" in
  for i = 1 to 20 do
    Harness.exec_ok c
      (Txn.run mgr (fun t ->
           write t ~node:"a" ~key:"x" ~value:(string_of_int i);
           return ()))
  done;
  let p = Harness.participant c "a" in
  let before = Participant.log_length p in
  Participant.checkpoint p;
  check "intentions log compacted" true (Participant.log_length p < before);
  Harness.crash c "a";
  Harness.recover c "a";
  check_str_opt "state intact after compaction + crash" (Some "20")
    (Participant.committed_value p ~key:"x")



let test_concurrent_increments_serialize () =
  (* K transactions started at the same instant all read-modify-write one
     counter; conflicts force retries; strict 2PL + retry must serialize
     them: the final value is exactly K *)
  let c = Harness.cluster [ "a"; "b" ] in
  let mgr = Harness.manager c "a" in
  let k = 8 in
  let done_count = ref 0 in
  let increment () =
    (Txn.run mgr ~max_attempts:64 (fun t ->
         let* v = read t ~node:"b" ~key:"counter" in
         let current = match v with Some s -> int_of_string s | None -> 0 in
         write t ~node:"b" ~key:"counter" ~value:(string_of_int (current + 1));
         return ()))
      (function
        | Ok () -> incr done_count
        | Error e -> Alcotest.failf "increment failed: %s" (Txn.error_to_string e))
  in
  for _ = 1 to k do
    increment ()
  done;
  Harness.run c;
  Alcotest.(check int) "all committed" k !done_count;
  check_str_opt "serialized to exactly k" (Some (string_of_int k))
    (Participant.committed_value (Harness.participant c "b") ~key:"counter")

let test_compact_bounds_coordinator_log () =
  let c = Harness.cluster [ "a"; "b" ] in
  let mgr = Harness.manager c "a" in
  for i = 1 to 25 do
    Harness.exec_ok c
      (Txn.run mgr (fun t ->
           write t ~node:"b" ~key:"x" ~value:(string_of_int i);
           return ()))
  done;
  Txn.compact mgr;
  (* only incarnation records remain; correctness preserved across crash *)
  Harness.crash c "a";
  Harness.recover c "a";
  Harness.exec_ok c
    (Txn.run mgr (fun t ->
         write t ~node:"b" ~key:"x" ~value:"after";
         return ()));
  check_str_opt "state correct after compaction + crash" (Some "after")
    (Participant.committed_value (Harness.participant c "b") ~key:"x")

let () =
  Alcotest.run "tx"
    [
      ( "locks",
        [
          Alcotest.test_case "read sharing" `Quick test_lock_read_sharing;
          Alcotest.test_case "write exclusive" `Quick test_lock_write_exclusive;
          Alcotest.test_case "upgrade" `Quick test_lock_upgrade;
          Alcotest.test_case "release all" `Quick test_lock_release_all;
        ] );
      ( "local",
        [
          Alcotest.test_case "commit visible" `Quick test_commit_visible;
          Alcotest.test_case "read your writes" `Quick test_read_your_writes;
          Alcotest.test_case "abort discards" `Quick test_abort_discards;
          Alcotest.test_case "conflict then retry" `Quick test_conflict_and_retry;
          Alcotest.test_case "no dirty read" `Quick test_isolation_no_dirty_read;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "two-node commit" `Quick test_two_node_commit;
          Alcotest.test_case "atomic abort" `Quick test_atomicity_under_conflict;
          Alcotest.test_case "lossy network" `Quick test_commit_survives_lossy_network;
          Alcotest.test_case "sequential accumulate" `Quick test_sequential_transactions_accumulate;
          Alcotest.test_case "concurrent increments serialize" `Quick
            test_concurrent_increments_serialize;
        ] );
      ( "nested",
        [
          Alcotest.test_case "commit merges" `Quick test_nested_commit_merges;
          Alcotest.test_case "abort child only" `Quick test_nested_abort_discards_child_only;
          Alcotest.test_case "child wins merge" `Quick test_nested_child_wins_merge;
        ] );
      ( "fast lanes",
        [
          Alcotest.test_case "one-phase local, no rpc" `Quick test_one_phase_local_no_rpc;
          Alcotest.test_case "one-phase remote" `Quick test_one_phase_remote_commit;
          Alcotest.test_case "one-phase refused" `Quick test_one_phase_refused_on_conflict;
          Alcotest.test_case "read-only elided" `Quick test_readonly_txn_elided;
          Alcotest.test_case "read-only conflict" `Quick test_readonly_elision_under_conflict;
          Alcotest.test_case "one-phase through partition" `Quick
            test_one_phase_commit_through_partition;
          Alcotest.test_case "read-only elision through partition" `Quick
            test_readonly_elision_through_partition;
          Alcotest.test_case "mixed fan-out elision" `Quick
            test_mixed_readonly_elided_from_fanout;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "participant crash after prepare" `Quick
            test_participant_crash_after_prepare_commits_eventually;
          Alcotest.test_case "coordinator crash pre-decision" `Quick
            test_coordinator_crash_before_decision_presumed_abort;
          Alcotest.test_case "coordinator crash post-decision" `Quick
            test_coordinator_crash_after_decision_resumes_commit;
          Alcotest.test_case "checkpoint" `Quick test_checkpoint_compacts_logs;
          Alcotest.test_case "checkpoint then crash" `Quick
            test_checkpoint_then_crash_recovers_exact_state;
          Alcotest.test_case "coordinator log compaction" `Quick
            test_compact_bounds_coordinator_log;
        ] );
    ]
