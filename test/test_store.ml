(* Tests for the stable-storage layer: WAL semantics and the
   crash-recoverable key/value store. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_str_opt = Alcotest.(check (option string))

(* --- Wal --- *)

let test_wal_append_order () =
  let wal = Wal.create ~name:"w" in
  List.iter (Wal.append wal) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (Wal.records wal);
  check_int "length" 3 (Wal.length wal)

let test_wal_rewrite () =
  let wal = Wal.create ~name:"w" in
  List.iter (Wal.append wal) [ 1; 2; 3; 4 ];
  Wal.rewrite wal [ 9 ];
  Alcotest.(check (list int)) "compacted" [ 9 ] (Wal.records wal);
  check_int "appended_total survives rewrite" 4 (Wal.appended_total wal)

let test_wal_rewrite_crash_atomic () =
  (* rewrite's contract: readers observe the full old contents or the
     full new contents, never a mix — in particular, between a
     compaction and the next append the log is exactly the compacted
     list, and appends extend that list rather than resurrecting any
     pre-compaction record *)
  let wal = Wal.create ~name:"w" in
  List.iter (Wal.append wal) [ 10; 20; 30; 40 ];
  let old_only = [ 10; 30 ] in
  (* records dropped by compaction *)
  Wal.rewrite wal [ 20; 40 ];
  Alcotest.(check (list int)) "exactly the new contents" [ 20; 40 ] (Wal.records wal);
  check "no stale record leaks through" true
    (List.for_all (fun r -> not (List.mem r old_only)) (Wal.records wal));
  check_int "length tracks the rewrite" 2 (Wal.length wal);
  Wal.append wal 50;
  Alcotest.(check (list int))
    "next append extends the compacted log" [ 20; 40; 50 ] (Wal.records wal);
  check_int "lifetime count keeps the pre-compaction appends" 5 (Wal.appended_total wal);
  (* a Kvstore checkpoint rides on rewrite: crash right after it (before
     any further append) must recover the compacted state exactly *)
  let s = Kvstore.create ~name:"s" in
  List.iter (fun (k, v) -> Kvstore.put s k v) [ ("a", "1"); ("b", "2"); ("a", "3") ];
  Kvstore.checkpoint s;
  let wal_after_ckpt = Kvstore.wal_length s in
  Kvstore.crash s;
  Kvstore.recover s;
  check_str_opt "newest value, not the overwritten one" (Some "3") (Kvstore.get s "a");
  check_str_opt "other key intact" (Some "2") (Kvstore.get s "b");
  check_int "recovered from the compacted log, not a mix" wal_after_ckpt
    (Kvstore.wal_length s)

(* --- Kvstore --- *)

let test_kv_basic () =
  let s = Kvstore.create ~name:"s" in
  Kvstore.put s "a" "1";
  Kvstore.put s "b" "2";
  Kvstore.put s "a" "3";
  check_str_opt "overwrite" (Some "3") (Kvstore.get s "a");
  check_str_opt "other key" (Some "2") (Kvstore.get s "b");
  check_str_opt "missing" None (Kvstore.get s "zz");
  check "mem" true (Kvstore.mem s "a");
  Kvstore.delete s "a";
  check "deleted" false (Kvstore.mem s "a");
  Alcotest.(check (list string)) "keys sorted" [ "b" ] (Kvstore.keys s)

let test_kv_delete_missing_writes_nothing () =
  let s = Kvstore.create ~name:"s" in
  Kvstore.put s "a" "1";
  let before = Kvstore.writes_total s in
  Kvstore.delete s "nope";
  check_int "no stable write for missing delete" before (Kvstore.writes_total s)

let test_kv_crash_recover () =
  let s = Kvstore.create ~name:"s" in
  Kvstore.put s "a" "1";
  Kvstore.put s "b" "2";
  Kvstore.delete s "a";
  Kvstore.crash s;
  check "unavailable while down" true
    (match Kvstore.get s "b" with
    | exception Kvstore.Unavailable _ -> true
    | _ -> false);
  Kvstore.recover s;
  check_str_opt "survives crash" (Some "2") (Kvstore.get s "b");
  check_str_opt "delete survives crash" None (Kvstore.get s "a");
  check_int "one replay" 1 (Kvstore.replays_total s)

let test_kv_checkpoint_preserves_content () =
  let s = Kvstore.create ~name:"s" in
  for i = 0 to 49 do
    Kvstore.put s (Printf.sprintf "k%02d" i) (string_of_int i)
  done;
  Kvstore.delete s "k07";
  let wal_before = Kvstore.wal_length s in
  Kvstore.checkpoint s;
  check "wal shrank" true (Kvstore.wal_length s < wal_before);
  Kvstore.crash s;
  Kvstore.recover s;
  check_str_opt "content after checkpoint+crash" (Some "13") (Kvstore.get s "k13");
  check_str_opt "delete preserved" None (Kvstore.get s "k07");
  check_int "49 keys" 49 (List.length (Kvstore.keys s))

let test_kv_fold_sorted () =
  let s = Kvstore.create ~name:"s" in
  List.iter (fun (k, v) -> Kvstore.put s k v) [ ("c", "3"); ("a", "1"); ("b", "2") ];
  let collected = Kvstore.fold s ~init:[] ~f:(fun acc k v -> (k, v) :: acc) in
  Alcotest.(check (list (pair string string)))
    "sorted key order" [ ("a", "1"); ("b", "2"); ("c", "3") ] (List.rev collected)

(* Property: a random workload with a crash/recover in the middle agrees
   with a pure Map model. *)

type op = Put of string * string | Del of string | Crash_recover

let op_gen =
  let open QCheck.Gen in
  let key = map (Printf.sprintf "k%d") (int_bound 8) in
  frequency
    [
      (6, map2 (fun k v -> Put (k, string_of_int v)) key small_int);
      (2, map (fun k -> Del k) key);
      (1, return Crash_recover);
    ]

let op_print = function
  | Put (k, v) -> Printf.sprintf "put %s=%s" k v
  | Del k -> Printf.sprintf "del %s" k
  | Crash_recover -> "crash/recover"

let prop_kv_matches_model =
  let arb = QCheck.make ~print:QCheck.Print.(list op_print) (QCheck.Gen.list_size (QCheck.Gen.int_range 0 60) op_gen) in
  QCheck.Test.make ~name:"kvstore agrees with a Map model across crashes" ~count:200 arb
    (fun ops ->
      let module M = Map.Make (String) in
      let store = Kvstore.create ~name:"model-test" in
      let apply model = function
        | Put (k, v) ->
          Kvstore.put store k v;
          M.add k v model
        | Del k ->
          Kvstore.delete store k;
          M.remove k model
        | Crash_recover ->
          Kvstore.crash store;
          Kvstore.recover store;
          model
      in
      let model = List.fold_left apply M.empty ops in
      let store_bindings = Kvstore.fold store ~init:[] ~f:(fun acc k v -> (k, v) :: acc) in
      List.rev store_bindings = M.bindings model)

let () =
  Alcotest.run "store"
    [
      ( "wal",
        [
          Alcotest.test_case "append order" `Quick test_wal_append_order;
          Alcotest.test_case "rewrite" `Quick test_wal_rewrite;
          Alcotest.test_case "rewrite crash atomicity" `Quick test_wal_rewrite_crash_atomic;
        ] );
      ( "kvstore",
        [
          Alcotest.test_case "basic ops" `Quick test_kv_basic;
          Alcotest.test_case "delete missing" `Quick test_kv_delete_missing_writes_nothing;
          Alcotest.test_case "crash/recover" `Quick test_kv_crash_recover;
          Alcotest.test_case "checkpoint" `Quick test_kv_checkpoint_preserves_content;
          Alcotest.test_case "fold sorted" `Quick test_kv_fold_sorted;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_kv_matches_model ]);
    ]
