(* Tests for the language front-end: lexer, parser, pretty-printer
   round-trip, template expansion, semantic validation, and schema
   resolution — exercised on the paper's own scripts plus focused
   negative cases. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let contains_sub ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

let parse_ok src =
  match Parser.script_result src with
  | Ok ast -> ast
  | Error (msg, loc) -> Alcotest.failf "parse error: %s (%s)" msg (Loc.to_string loc)

let load_ok src =
  match Frontend.load src with
  | Ok ast -> ast
  | Error e -> Alcotest.failf "%s" (Frontend.error_to_string e)

let expect_validation_error ~containing src =
  let ast = parse_ok src in
  let expanded = match Template.expand ast with Ok a -> a | Error (m, _) -> Alcotest.failf "expand: %s" m in
  let issues = Validate.errors_only (Validate.check expanded) in
  let found =
    List.exists (fun (i : Validate.issue) -> contains_sub ~needle:containing i.Validate.msg) issues
  in
  if not found then
    Alcotest.failf "expected an error containing %S, got: %s" containing
      (String.concat " | " (List.map (fun (i : Validate.issue) -> i.Validate.msg) issues))

(* --- lexer --- *)

let test_lexer_basics () =
  let toks = Lexer.tokens "task t1 of taskclass T { }" in
  check_int "token count (incl. eof)" 8 (List.length toks);
  check "keywords recognised" true (fst (List.hd toks) = Token.Kw_task)

let test_lexer_comments () =
  let toks = Lexer.tokens "// line\ntask /* block /* nested */ still */ t" in
  check_int "comments skipped" 3 (List.length toks)

let test_lexer_smart_quotes () =
  (* the paper's typesetting: curly quotes *)
  let src = "implementation { \xe2\x80\x9ccode\xe2\x80\x9d is \xe2\x80\x9cSETPaymentCapture\xe2\x80\x9d }" in
  let toks = Lexer.tokens src in
  let strings = List.filter_map (function Token.String s, _ -> Some s | _ -> None) toks in
  Alcotest.(check (list string)) "smart quotes lexed" [ "code"; "SETPaymentCapture" ] strings

let test_lexer_trims_implementation_values () =
  let toks = Lexer.tokens "\"code \"" in
  check "trailing space trimmed (paper has 'code ')" true (fst (List.hd toks) = Token.String "code")

let test_lexer_error_position () =
  match Lexer.tokens "task\n  ?" with
  | exception Lexer.Error (_, loc) ->
    check_int "line" 2 loc.Loc.line;
    check_int "col" 3 loc.Loc.col
  | _ -> Alcotest.fail "expected a lexer error"

(* --- parser on the paper's fragments --- *)

let paper_taskclass =
  {|
taskclass Dispatch {
    inputs { input main { order of class Order } };
    outputs {
        outcome dispatchCompleted { dispatch of class DispatchNote };
        abort outcome dispatchFailed { }
    }
}
|}

let test_parse_taskclass () =
  match parse_ok paper_taskclass with
  | [ Ast.D_taskclass tc ] ->
    check_int "one input set" 1 (List.length tc.Ast.tcd_input_sets);
    check_int "two outputs" 2 (List.length tc.Ast.tcd_outputs);
    check "abort outcome kind" true
      ((List.nth tc.Ast.tcd_outputs 1).Ast.outd_kind = Ast.Abort_outcome)
  | _ -> Alcotest.fail "expected one taskclass"

let paper_task_with_alternatives =
  {|
task t1 of taskclass tc1 {
    inputs {
        input main {
            inputobject i1 from {
                i3 of task t2 if input main;
                o1 of task t3 if output oc1;
                o2 of task t3 if output oc2
            };
            inputobject i2 from { o1 of task t4 if output oc1 }
        }
    }
}
|}

let test_parse_source_alternatives () =
  match parse_ok paper_task_with_alternatives with
  | [ Ast.D_task td ] -> (
    match td.Ast.td_inputs with
    | [ { Ast.iss_deps = [ Ast.Dep_object { d_sources; _ }; Ast.Dep_object _ ]; _ } ] ->
      check_int "three alternatives for i1" 3 (List.length d_sources);
      check "first is an if-input source" true
        ((List.hd d_sources).Ast.os_cond = Ast.On_input "main")
    | _ -> Alcotest.fail "unexpected input structure")
  | _ -> Alcotest.fail "expected one task"

let test_parse_notifications_are_conjunctive () =
  let src =
    {|
task t1 of taskclass tc1 {
    inputs { input main {
        notification from { task t2 if output oc1; task t3 if output oc1 };
        notification from { task t2 if output oc2; task t4 if output oc2 }
    } }
}
|}
  in
  match parse_ok src with
  | [ Ast.D_task { td_inputs = [ { iss_deps; _ } ]; _ } ] ->
    check_int "two independent notification deps" 2 (List.length iss_deps)
  | _ -> Alcotest.fail "expected one task"

let test_parse_template_and_instantiation () =
  let src =
    {|
tasktemplate task watcher of taskclass Watch {
    parameters { src1; src2 };
    implementation { "code" is "watch" };
    inputs { input main {
        inputobject i1 from { o of task src1 if output success };
        inputobject i2 from { o of task src2 if input main }
    } }
};
w1 of tasktemplate watcher(alpha, beta)
|}
  in
  match parse_ok src with
  | [ Ast.D_template tpl; Ast.D_template_inst ti ] ->
    Alcotest.(check (list string)) "params" [ "src1"; "src2" ] tpl.Ast.tpl_params;
    Alcotest.(check (list string)) "args" [ "alpha"; "beta" ] ti.Ast.ti_args
  | _ -> Alcotest.fail "expected template + instantiation"

let test_parse_error_reports_position () =
  match Parser.script_result "task t1 of class X {}" with
  | Error (msg, _) -> check "mentions taskclass" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_paper_scripts_parse () =
  List.iter
    (fun (name, src, _) ->
      match Parser.script_result src with
      | Ok _ -> ()
      | Error (msg, loc) -> Alcotest.failf "%s: %s (%s)" name msg (Loc.to_string loc))
    Paper_scripts.all

(* --- pretty-printer round trip --- *)

let strip_locs_decl d = ignore d

let test_roundtrip_paper_scripts () =
  List.iter
    (fun (name, src, _) ->
      let ast = parse_ok src in
      let printed = Pretty.to_string ast in
      let reparsed =
        match Parser.script_result printed with
        | Ok a -> a
        | Error (msg, loc) ->
          Alcotest.failf "%s: pretty output does not reparse: %s (%s)\n%s" name msg
            (Loc.to_string loc) printed
      in
      (* compare structure via a second print: print is deterministic *)
      let printed2 = Pretty.to_string reparsed in
      ignore strip_locs_decl;
      Alcotest.(check string) (name ^ " round-trips") printed printed2)
    Paper_scripts.all

(* --- template expansion --- *)

let template_script =
  {|
class Data;
taskclass Producer { outputs { outcome success { o of class Data } } };
taskclass Watch {
    inputs { input main { i1 of class Data } };
    outputs { outcome seen { } }
};
task alpha of taskclass Producer { implementation { "code" is "p" } };
tasktemplate task watcher of taskclass Watch {
    parameters { src };
    implementation { "code" is "watch" };
    inputs { input main { inputobject i1 from { o of task src if output success } } }
};
w1 of tasktemplate watcher(alpha)
|}

let test_template_expansion_substitutes () =
  let ast = parse_ok template_script in
  match Template.expand ast with
  | Error (msg, _) -> Alcotest.failf "expand failed: %s" msg
  | Ok expanded -> (
    check "no templates remain" true
      (not (List.exists (function Ast.D_template _ | Ast.D_template_inst _ -> true | _ -> false) expanded));
    match List.find_opt (fun d -> Ast.decl_name d = "w1") expanded with
    | Some (Ast.D_task td) -> (
      match td.Ast.td_inputs with
      | [ { Ast.iss_deps = [ Ast.Dep_object { d_sources = [ s ]; _ } ]; _ } ] ->
        Alcotest.(check string) "parameter substituted" "alpha" s.Ast.os_task
      | _ -> Alcotest.fail "unexpected input shape")
    | _ -> Alcotest.fail "w1 not found as a task")

let test_template_arity_mismatch () =
  let bad = template_script ^ ";\nw2 of tasktemplate watcher(alpha, alpha)" in
  let ast = parse_ok bad in
  match Template.expand ast with
  | Error (msg, _) -> check "mentions arity" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected arity error"

let test_template_unknown () =
  let ast = parse_ok "w of tasktemplate nope()" in
  match Template.expand ast with
  | Error (msg, _) -> check "unknown template" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected unknown-template error"

let test_expanded_template_validates () =
  let ast = parse_ok template_script in
  match Template.expand ast with
  | Error (msg, _) -> Alcotest.failf "expand: %s" msg
  | Ok expanded -> (
    match Validate.ok expanded with
    | Ok () -> ()
    | Error issues ->
      Alcotest.failf "unexpected errors: %s"
        (String.concat "; " (List.map (fun (i : Validate.issue) -> i.Validate.msg) issues)))

(* --- validation: the paper's scripts are clean --- *)

let test_paper_scripts_validate () =
  List.iter
    (fun (name, src, _) ->
      match Frontend.load src with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" name (Frontend.error_to_string e))
    Paper_scripts.all

(* --- validation: negative cases --- *)

let prelude =
  {|
class A;
class B;
taskclass Producer {
    inputs { input main { a of class A } };
    outputs {
        outcome ok { out of class A };
        repeat outcome again { out of class A }
    }
};
taskclass Consumer {
    inputs { input main { x of class A } };
    outputs { outcome done { } }
};
|}

let test_unknown_class_in_taskclass () =
  expect_validation_error ~containing:"unknown class"
    "taskclass T { inputs { input main { a of class Missing } }; outputs { } }"

let test_atomic_cannot_mark () =
  expect_validation_error ~containing:"abort outcome"
    {|
class A;
taskclass Bad {
    inputs { };
    outputs {
        abort outcome stop { };
        mark progress { p of class A }
    }
}
|}

let test_unknown_task_in_source () =
  expect_validation_error ~containing:"unknown task"
    (prelude
   ^ {|
task c of taskclass Consumer {
    inputs { input main { inputobject x from { out of task ghost if output ok } } }
}
|})

let test_unknown_output_in_source () =
  expect_validation_error ~containing:"has no output"
    (prelude
   ^ {|
task p of taskclass Producer { };
task c of taskclass Consumer {
    inputs { input main { inputobject x from { out of task p if output nope } } }
}
|})

let test_class_mismatch () =
  expect_validation_error ~containing:"class mismatch"
    (prelude
   ^ {|
taskclass BConsumer {
    inputs { input main { x of class B } };
    outputs { outcome done { } }
};
task p of taskclass Producer { };
task c of taskclass BConsumer {
    inputs { input main { inputobject x from { out of task p if output ok } } }
}
|})

let test_repeat_outcome_is_private () =
  expect_validation_error ~containing:"private"
    (prelude
   ^ {|
task p of taskclass Producer { };
task c of taskclass Consumer {
    inputs { input main { inputobject x from { out of task p if output again } } }
}
|})

let test_duplicate_tasks () =
  expect_validation_error ~containing:"duplicate"
    (prelude ^ "task p of taskclass Producer { }; task p of taskclass Producer { }")

let test_compound_output_kind_mismatch () =
  expect_validation_error ~containing:"bound as"
    (prelude
   ^ {|
taskclass Wrap {
    inputs { input main { a of class A } };
    outputs { outcome finished { } }
};
compoundtask w of taskclass Wrap {
    task p of taskclass Producer {
        inputs { input main { inputobject a from { a of task w if input main } } }
    };
    outputs { mark finished { notification from { task p if output ok } } }
}
|})

let test_compound_missing_output_object () =
  expect_validation_error ~containing:"has no sources"
    (prelude
   ^ {|
taskclass Wrap {
    inputs { input main { a of class A } };
    outputs { outcome finished { result of class A } }
};
compoundtask w of taskclass Wrap {
    task p of taskclass Producer {
        inputs { input main { inputobject a from { a of task w if input main } } }
    };
    outputs { outcome finished { notification from { task p if output ok } } }
}
|})

let test_cycle_warning () =
  let src =
    prelude
    ^ {|
taskclass Wrap {
    inputs { input main { a of class A } };
    outputs { outcome finished { } }
};
compoundtask w of taskclass Wrap {
    task p1 of taskclass Consumer {
        inputs { input main { inputobject x from { out of task p2 if output done } } }
    };
    task p2 of taskclass Consumer {
        inputs { input main { inputobject x from { out of task p1 if output done } } }
    };
    outputs { outcome finished { notification from { task p1 if output done } } }
}
|}
  in
  (* p1 <-> p2 reference each other's outputs: Consumer.done carries no
     objects, so also expect object errors; the cycle shows as a warning *)
  let ast = parse_ok src in
  let issues = Validate.check ast in
  check "cycle warning present" true
    (List.exists
       (fun (i : Validate.issue) ->
         i.Validate.severity = Validate.Warning
         && contains_sub ~needle:"cycle" i.Validate.msg)
       issues)

let test_unexpanded_template_is_error () =
  (* validated without expansion: instantiations must be flagged *)
  let ast = parse_ok "w of tasktemplate watcher(a)" in
  let issues = Validate.errors_only (Validate.check ast) in
  check "unexpanded instantiation is an error" true
    (List.exists (fun (i : Validate.issue) -> contains_sub ~needle:"unexpanded" i.Validate.msg) issues)



(* --- further validator edge cases --- *)

let test_duplicate_input_sets_in_class () =
  expect_validation_error ~containing:"duplicate input set"
    {|
class A;
taskclass T {
    inputs { input main { a of class A }; input main { b of class A } };
    outputs { }
}
|}

let test_duplicate_objects_in_set () =
  expect_validation_error ~containing:"duplicate object"
    {|
class A;
taskclass T {
    inputs { input main { a of class A; a of class A } };
    outputs { }
}
|}

let test_duplicate_outputs () =
  expect_validation_error ~containing:"duplicate output"
    {|
class A;
taskclass T { inputs { }; outputs { outcome done { }; outcome done { } } }
|}

let test_unknown_input_set_in_instance () =
  expect_validation_error ~containing:"declares no input set"
    (prelude ^ {|
task p of taskclass Producer {
    inputs { input ghost { } }
}
|})

let test_undeclared_object_in_spec () =
  expect_validation_error ~containing:"declares no object"
    (prelude ^ {|
task p0 of taskclass Producer { };
task p of taskclass Producer {
    inputs { input main { inputobject ghost from { out of task p0 if output ok } } }
}
|})

let test_empty_source_list_rejected () =
  expect_validation_error ~containing:"no sources"
    (prelude ^ {|
task c of taskclass Consumer {
    inputs { input main { inputobject x from { } } }
}
|})

let test_any_source_without_carrying_output () =
  expect_validation_error ~containing:"carries an object"
    (prelude ^ {|
task p of taskclass Producer { };
task c of taskclass Consumer {
    inputs { input main { inputobject x from { ghost of task p } } }
}
|})

let test_notification_on_unknown_input_set () =
  expect_validation_error ~containing:"has no input set"
    (prelude ^ {|
task p of taskclass Producer { };
task c of taskclass Consumer {
    inputs { input main {
        notification from { task p if input ghost };
        inputobject x from { out of task p if output ok }
    } }
}
|})

let test_duplicate_constituents () =
  expect_validation_error ~containing:"duplicate constituent"
    (prelude ^ {|
taskclass Wrap { inputs { input main { a of class A } }; outputs { outcome done { } } };
compoundtask w of taskclass Wrap {
    task p of taskclass Producer { };
    task p of taskclass Producer { };
    outputs { outcome done { notification from { task p if output ok } } }
}
|})

let test_never_produced_outcome_is_warning_only () =
  let src =
    prelude
    ^ {|
taskclass Wrap {
    inputs { input main { a of class A } };
    outputs { outcome done { }; outcome spare { } }
};
compoundtask w of taskclass Wrap {
    task p of taskclass Producer {
        inputs { input main { inputobject a from { a of task w if input main } } }
    };
    outputs { outcome done { notification from { task p if output ok } } }
}
|}
  in
  let ast = parse_ok src in
  (match Validate.ok ast with
  | Ok () -> ()
  | Error issues ->
    Alcotest.failf "unexpected errors: %s"
      (String.concat "; " (List.map (fun (i : Validate.issue) -> i.Validate.msg) issues)));
  let issues = Validate.check ast in
  check "warning about the unproduced outcome" true
    (List.exists
       (fun (i : Validate.issue) ->
         i.Validate.severity = Validate.Warning
         && contains_sub ~needle:"never produces" i.Validate.msg)
       issues)


let test_dead_constituent_warns () =
  let src =
    prelude
    ^ {|
taskclass Wrap { inputs { input main { a of class A } }; outputs { outcome done { } } };
compoundtask w of taskclass Wrap {
    task used of taskclass Producer {
        inputs { input main { inputobject a from { a of task w if input main } } }
    };
    task orphan of taskclass Producer {
        inputs { input main { inputobject a from { a of task w if input main } } }
    };
    outputs { outcome done { notification from { task used if output ok } } }
}
|}
  in
  let issues = Validate.check (parse_ok src) in
  check "orphan constituent flagged" true
    (List.exists
       (fun (i : Validate.issue) ->
         i.Validate.severity = Validate.Warning
         && contains_sub ~needle:"orphan" i.Validate.msg
         && contains_sub ~needle:"never referenced" i.Validate.msg)
       issues);
  check "used constituent not flagged" true
    (not
       (List.exists
          (fun (i : Validate.issue) ->
            contains_sub ~needle:"constituent used" i.Validate.msg)
          issues))

(* --- subtyping extension (paper §7 future work) --- *)

let subtyping_prelude =
  {|
class Asset;
class Account extends Asset;
class EuroAccount extends Account;
taskclass MakeEuroAccount {
    inputs { input main { seed of class Asset } };
    outputs { outcome made { account of class EuroAccount } }
};
taskclass UseAsset {
    inputs { input main { thing of class Asset } };
    outputs { outcome used { } }
};
taskclass UseEuroAccount {
    inputs { input main { thing of class EuroAccount } };
    outputs { outcome used { } }
};
task maker of taskclass MakeEuroAccount { };
|}

let test_subtype_parse_roundtrip () =
  let ast = parse_ok "class Account extends Asset" in
  let printed = Pretty.to_string ast in
  check "extends printed" true (contains_sub ~needle:"extends Asset" printed);
  match Parser.script_result printed with
  | Ok [ Ast.D_class { cls_parent = Some "Asset"; _ } ] -> ()
  | _ -> Alcotest.fail "extends did not round-trip"

let test_subtype_accepted_upcast () =
  (* EuroAccount <: Account <: Asset: usable where Asset is expected *)
  let src =
    subtyping_prelude
    ^ {|
task consumer of taskclass UseAsset {
    inputs { input main { inputobject thing from { account of task maker if output made } } }
}
|}
  in
  let ast = parse_ok src in
  (match Validate.ok ast with
  | Ok () -> ()
  | Error issues ->
    Alcotest.failf "upcast rejected: %s"
      (String.concat "; " (List.map (fun (i : Validate.issue) -> i.Validate.msg) issues)))

let test_subtype_rejected_downcast () =
  (* an Asset is NOT usable where a EuroAccount is expected *)
  expect_validation_error ~containing:"class mismatch"
    (subtyping_prelude
   ^ {|
taskclass MakeAsset {
    inputs { input main { seed of class Asset } };
    outputs { outcome made { thing of class Asset } }
};
task assetMaker of taskclass MakeAsset { };
task consumer of taskclass UseEuroAccount {
    inputs { input main { inputobject thing from { thing of task assetMaker if output made } } }
}
|})

let test_subtype_unknown_parent () =
  expect_validation_error ~containing:"unknown class" "class Orphan extends Ghost"

let test_subtype_cycle () =
  expect_validation_error ~containing:"cycle"
    "class A extends B; class B extends C; class C extends A"

(* --- recovery clauses: parse, round-trip, validation, compilation --- *)

let recovery_task_script =
  {|
task t of taskclass T {
    implementation { "code" is "c1" };
    recovery {
        retry 3 backoff 5 max 40;
        timeout 50 then substitute "c2";
        alternative "a1", "a2";
        compensate undo
    }
}
|}

let test_parse_recovery_clauses () =
  match parse_ok recovery_task_script with
  | [ Ast.D_task td ] ->
    let r = td.Ast.td_recovery in
    check_int "four clauses" 4 (List.length r);
    check "retry clause" true (Ast.recovery_retry r = Some (3, Some 5, Some 40));
    check "timeout clause" true (Ast.recovery_timeout r = Some (50, Ast.Ta_substitute "c2"));
    Alcotest.(check (list string)) "ranked alternatives" [ "a1"; "a2" ] (Ast.recovery_alternatives r);
    check "compensate clause" true (Ast.recovery_compensate r = Some "undo")
  | _ -> Alcotest.fail "expected one task"

let test_parse_recovery_on_compound () =
  let src =
    {|
compoundtask c of taskclass T {
    recovery { retry 1; timeout 9 then abort };
    task inner of taskclass U { implementation { "code" is "x" } };
    outputs { outcome done { notification from { task inner if output ok } } }
}
|}
  in
  match parse_ok src with
  | [ Ast.D_compound cd ] ->
    check "retry on compound" true (Ast.recovery_retry cd.Ast.cd_recovery = Some (1, None, None));
    check "abort action" true (Ast.recovery_timeout cd.Ast.cd_recovery = Some (9, Ast.Ta_abort))
  | _ -> Alcotest.fail "expected one compoundtask"

let test_recovery_words_stay_identifiers () =
  (* 'retry', 'timeout', ... are contextual: plain identifiers outside a
     recovery block (the paper's scripts use such names freely) *)
  match parse_ok "task retry of taskclass timeout { }" with
  | [ Ast.D_task td ] ->
    Alcotest.(check string) "task named retry" "retry" td.Ast.td_name;
    Alcotest.(check string) "class named timeout" "timeout" td.Ast.td_class
  | _ -> Alcotest.fail "expected one task"

let norm_recovery =
  List.map (function
    | Ast.R_retry { count; backoff; jitter; max; _ } -> `Retry (count, backoff, jitter, max)
    | Ast.R_timeout { ms; action; _ } -> `Timeout (ms, action)
    | Ast.R_alternative { codes; _ } -> `Alternative codes
    | Ast.R_compensate { task; _ } -> `Compensate task)

let reparse_recovery printed =
  match Parser.script_result printed with
  | Ok [ Ast.D_task td ] -> td.Ast.td_recovery
  | Ok _ -> Alcotest.failf "pretty output is not one task:\n%s" printed
  | Error (msg, loc) ->
    Alcotest.failf "pretty output does not reparse: %s (%s)\n%s" msg (Loc.to_string loc) printed

let test_recovery_roundtrip_fixed () =
  match parse_ok recovery_task_script with
  | [ Ast.D_task td ] ->
    let printed = Pretty.to_string [ Ast.D_task td ] in
    check "round-trips to equal clauses" true
      (norm_recovery (reparse_recovery printed) = norm_recovery td.Ast.td_recovery)
  | _ -> Alcotest.fail "expected one task"

(* Property: any generated recovery section pretty-prints to a script
   that reparses to the same clauses. *)
let dummy_task_with_recovery r =
  {
    Ast.td_name = "t";
    td_class = "T";
    td_impl = [ ("code", "c") ];
    td_recovery = r;
    td_inputs = [];
    td_loc = Loc.dummy;
  }

let gen_code = QCheck.Gen.(map (Printf.sprintf "c%d") (int_bound 99))

let gen_clause =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map
            (fun ((count, backoff, max), jitter) ->
              Ast.R_retry { count; backoff; jitter; max; loc = Loc.dummy })
            (pair
               (triple (int_bound 9) (opt (int_range 1 99)) (opt (int_range 1 999)))
               (opt (int_range 1 99))) );
        ( 3,
          map
            (fun (ms, action) -> Ast.R_timeout { ms; action; loc = Loc.dummy })
            (pair (int_range 1 999)
               (oneof
                  [
                    return Ast.Ta_alternative;
                    map (fun c -> Ast.Ta_substitute c) gen_code;
                    return Ast.Ta_abort;
                  ])) );
        ( 2,
          map
            (fun codes -> Ast.R_alternative { codes; loc = Loc.dummy })
            (list_size (int_range 1 3) gen_code) );
        ( 1,
          map
            (fun task -> Ast.R_compensate { task; loc = Loc.dummy })
            (map (Printf.sprintf "t%d") (int_bound 99)) );
      ])

let gen_recovery = QCheck.Gen.(list_size (int_range 1 4) gen_clause)

let recovery_qcheck =
  QCheck.Test.make ~name:"generated recovery sections round-trip" ~count:300
    (QCheck.make gen_recovery
       ~print:(fun r -> Pretty.to_string [ Ast.D_task (dummy_task_with_recovery r) ]))
    (fun r ->
      let td = dummy_task_with_recovery r in
      let printed = Pretty.to_string [ Ast.D_task td ] in
      match Parser.script_result printed with
      | Ok [ Ast.D_task td' ] -> norm_recovery td'.Ast.td_recovery = norm_recovery r
      | Ok _ | Error _ -> false)

(* validation of recovery sections: contradictory clauses are located
   errors *)

let recovery_script ?(impl = {|"code" is "c"|}) ?(tail = "") recovery =
  prelude
  ^ Printf.sprintf
      {|
compoundtask root of taskclass Consumer {
    task t of taskclass Consumer {
        implementation { %s };
        recovery { %s };
        inputs { input main { inputobject x from { x of task root if input main } } }
    };
%s    outputs { outcome done { notification from { task t if output done } } }
}
|}
      impl recovery tail

let test_recovery_retry_zero_backoff () =
  expect_validation_error ~containing:"retry 0 cannot take a backoff"
    (recovery_script "retry 0 backoff 5")

let test_recovery_jitter_without_backoff () =
  expect_validation_error ~containing:"jitter requires a backoff base"
    (recovery_script "retry 2 jitter 3")

let test_recovery_jitter_at_least_base () =
  expect_validation_error ~containing:"must be below the backoff base"
    (recovery_script "retry 2 backoff 5 jitter 5")

let test_recovery_jitter_parses_and_compiles () =
  let src = recovery_script "retry 2 backoff 10 jitter 4 max 40" in
  let ast = load_ok src in
  (match ast with
  | _ :: _ ->
    let all =
      List.concat_map (function Ast.D_compound cd -> cd.Ast.cd_constituents | _ -> []) ast
    in
    let t = List.find_map (function Ast.C_task td when td.Ast.td_name = "t" -> Some td | _ -> None) all in
    (match t with
    | Some td ->
      check "jitter parsed" true (Ast.recovery_retry_jitter td.Ast.td_recovery = Some 4)
    | None -> Alcotest.fail "no task t")
  | [] -> Alcotest.fail "empty script");
  match Schema.of_script ast ~root:"root" with
  | Error msg -> Alcotest.failf "schema: %s" msg
  | Ok root -> (
    match Schema.find_child root "t" with
    | None -> Alcotest.fail "no child t"
    | Some t ->
      check_int "jitter compiled" 4 t.Schema.policy.Schema.p_jitter_ms)

let test_recovery_max_without_backoff () =
  expect_validation_error ~containing:"max requires a backoff base" (recovery_script "retry 2 max 10")

let test_recovery_cap_below_base () =
  expect_validation_error ~containing:"below the base delay"
    (recovery_script "retry 2 backoff 10 max 5")

let test_recovery_then_alternative_without_alternatives () =
  expect_validation_error ~containing:"requires an alternative clause"
    (recovery_script "timeout 50 then alternative")

let test_recovery_timeout_below_duration () =
  expect_validation_error ~containing:"shorter than the declared duration"
    (recovery_script ~impl:{|"code" is "c", "duration" is "80"|} "timeout 50 then abort")

let test_recovery_compensate_undeclared () =
  expect_validation_error ~containing:"compensate names undeclared task"
    (recovery_script "compensate ghost")

let test_recovery_compensate_self () =
  expect_validation_error ~containing:"cannot compensate itself" (recovery_script "compensate t")

let test_recovery_duplicate_clause () =
  expect_validation_error ~containing:"duplicate timeout clause"
    (recovery_script "timeout 5 then abort; timeout 6 then abort")

let compensate_tail =
  {|    task u of taskclass Consumer {
        implementation { "code" is "u" };
        inputs { input main { inputobject x from { x of task root if input main } } }
    };
|}

let test_recovery_valid_section_is_clean () =
  let src =
    recovery_script ~tail:compensate_tail
      {|retry 2 backoff 5 max 40; timeout 50 then alternative; alternative "c2"; compensate u|}
  in
  let ast = parse_ok src in
  let expanded =
    match Template.expand ast with Ok a -> a | Error (m, _) -> Alcotest.failf "expand: %s" m
  in
  Alcotest.(check (list string))
    "no errors" []
    (List.map
       (fun (i : Validate.issue) -> i.Validate.msg)
       (Validate.errors_only (Validate.check expanded)))

let test_recovery_compiles_to_schema_policy () =
  let src =
    recovery_script ~tail:compensate_tail
      {|retry 2 backoff 5 max 40; timeout 50 then substitute "c9"; alternative "c2"; compensate u|}
  in
  let ast = load_ok src in
  match Schema.of_script ast ~root:"root" with
  | Error msg -> Alcotest.failf "schema: %s" msg
  | Ok root -> (
    match Schema.find_child root "t" with
    | None -> Alcotest.fail "no child t"
    | Some t ->
      let p = t.Schema.policy in
      check "declared" true p.Schema.p_declared;
      check "retry" true (p.Schema.p_retry = Some 2);
      check_int "backoff" 5 p.Schema.p_backoff_ms;
      check "cap" true (p.Schema.p_backoff_max_ms = Some 40);
      check "timeout" true (p.Schema.p_timeout_ms = Some 50);
      check "substitute" true (p.Schema.p_on_timeout = Ast.Ta_substitute "c9");
      Alcotest.(check (list string)) "alternatives" [ "c2" ] p.Schema.p_alternatives;
      check "compensate" true (p.Schema.p_compensate = Some "u");
      (match Schema.find_child root "u" with
      | Some u -> check "sibling policy undeclared" true (not u.Schema.policy.Schema.p_declared)
      | None -> Alcotest.fail "no child u"))

(* --- schema resolution --- *)

let test_schema_of_process_order () =
  let ast = load_ok Paper_scripts.process_order in
  match Schema.of_script ast ~root:Paper_scripts.process_order_root with
  | Error msg -> Alcotest.failf "schema: %s" msg
  | Ok task ->
    check_int "five tasks in the tree" 5 (Schema.task_count task);
    check "root is compound" true (match task.Schema.body with Schema.Compound _ -> true | _ -> false);
    check "root not atomic" true (not (Schema.is_atomic task));
    (match Schema.find_child task "dispatch" with
    | Some dispatch ->
      check "dispatch is atomic (abort outcome)" true (Schema.is_atomic dispatch);
      check "dispatch impl code" true
        (Ast.impl_code dispatch.Schema.impl = Some "refDispatch")
    | None -> Alcotest.fail "no dispatch child")

let test_schema_external_inputs () =
  let ast = load_ok Paper_scripts.process_order in
  match Schema.of_script ast ~root:Paper_scripts.process_order_root with
  | Error msg -> Alcotest.failf "schema: %s" msg
  | Ok task -> (
    match Schema.input_set_named task "main" with
    | Some set ->
      check "root order input is external" true
        ((List.hd set.Schema.is_objects).Schema.io_sources = [])
    | None -> Alcotest.fail "no main input set")

let test_schema_unknown_root () =
  let ast = load_ok Paper_scripts.process_order in
  check "unknown root rejected" true
    (match Schema.of_script ast ~root:"nope" with Error _ -> true | Ok _ -> false)

let test_schema_business_trip_nesting () =
  let ast = load_ok Paper_scripts.business_trip in
  match Schema.of_script ast ~root:Paper_scripts.business_trip_root with
  | Error msg -> Alcotest.failf "schema: %s" msg
  | Ok task -> (
    check_int "eleven tasks in the tree" 11 (Schema.task_count task);
    match Schema.find_child task "businessReservation" with
    | Some br -> (
      match Schema.find_child br "checkFlightReservation" with
      | Some cfr -> check_int "three queries" 4 (Schema.task_count cfr)
      | None -> Alcotest.fail "no checkFlightReservation")
    | None -> Alcotest.fail "no businessReservation")

(* --- dot export --- *)

let test_dot_output_shape () =
  let ast = load_ok Paper_scripts.quickstart in
  match Schema.of_script ast ~root:Paper_scripts.quickstart_root with
  | Error msg -> Alcotest.failf "schema: %s" msg
  | Ok task ->
    let dot = Dot.of_task task in
    check "digraph" true (String.length dot > 0 && String.sub dot 0 8 = "digraph ");
    let contains needle = contains_sub ~needle dot in
    check "cluster for the compound" true (contains "subgraph");
    check "solid dataflow edge" true (contains "style=solid");
    check "t4 joins" true (contains "label=\"left\"")

let test_dot_notification_edges_dotted () =
  let ast = load_ok Paper_scripts.process_order in
  match Schema.of_script ast ~root:Paper_scripts.process_order_root with
  | Error msg -> Alcotest.failf "schema: %s" msg
  | Ok task ->
    let dot = Dot.of_task task in
    check "dotted notification edge" true (contains_sub ~needle:"style=dotted" dot)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "smart quotes" `Quick test_lexer_smart_quotes;
          Alcotest.test_case "trims strings" `Quick test_lexer_trims_implementation_values;
          Alcotest.test_case "error position" `Quick test_lexer_error_position;
        ] );
      ( "parser",
        [
          Alcotest.test_case "taskclass" `Quick test_parse_taskclass;
          Alcotest.test_case "source alternatives" `Quick test_parse_source_alternatives;
          Alcotest.test_case "notification conjunction" `Quick test_parse_notifications_are_conjunctive;
          Alcotest.test_case "templates" `Quick test_parse_template_and_instantiation;
          Alcotest.test_case "error position" `Quick test_parse_error_reports_position;
          Alcotest.test_case "paper scripts parse" `Quick test_paper_scripts_parse;
        ] );
      ("pretty", [ Alcotest.test_case "round trip" `Quick test_roundtrip_paper_scripts ]);
      ( "recovery",
        [
          Alcotest.test_case "parse clauses" `Quick test_parse_recovery_clauses;
          Alcotest.test_case "parse on compound" `Quick test_parse_recovery_on_compound;
          Alcotest.test_case "contextual keywords" `Quick test_recovery_words_stay_identifiers;
          Alcotest.test_case "round trip" `Quick test_recovery_roundtrip_fixed;
          QCheck_alcotest.to_alcotest recovery_qcheck;
          Alcotest.test_case "retry 0 backoff" `Quick test_recovery_retry_zero_backoff;
          Alcotest.test_case "max without backoff" `Quick test_recovery_max_without_backoff;
          Alcotest.test_case "jitter without backoff" `Quick test_recovery_jitter_without_backoff;
          Alcotest.test_case "jitter at least base" `Quick test_recovery_jitter_at_least_base;
          Alcotest.test_case "jitter parses and compiles" `Quick
            test_recovery_jitter_parses_and_compiles;
          Alcotest.test_case "cap below base" `Quick test_recovery_cap_below_base;
          Alcotest.test_case "then alternative needs alternatives" `Quick
            test_recovery_then_alternative_without_alternatives;
          Alcotest.test_case "timeout below duration" `Quick test_recovery_timeout_below_duration;
          Alcotest.test_case "compensate undeclared" `Quick test_recovery_compensate_undeclared;
          Alcotest.test_case "compensate self" `Quick test_recovery_compensate_self;
          Alcotest.test_case "duplicate clause" `Quick test_recovery_duplicate_clause;
          Alcotest.test_case "valid section clean" `Quick test_recovery_valid_section_is_clean;
          Alcotest.test_case "compiles to policy" `Quick test_recovery_compiles_to_schema_policy;
        ] );
      ( "templates",
        [
          Alcotest.test_case "substitution" `Quick test_template_expansion_substitutes;
          Alcotest.test_case "arity mismatch" `Quick test_template_arity_mismatch;
          Alcotest.test_case "unknown template" `Quick test_template_unknown;
          Alcotest.test_case "expanded validates" `Quick test_expanded_template_validates;
        ] );
      ( "validate",
        [
          Alcotest.test_case "paper scripts validate" `Quick test_paper_scripts_validate;
          Alcotest.test_case "unknown class" `Quick test_unknown_class_in_taskclass;
          Alcotest.test_case "atomic cannot mark" `Quick test_atomic_cannot_mark;
          Alcotest.test_case "unknown task" `Quick test_unknown_task_in_source;
          Alcotest.test_case "unknown output" `Quick test_unknown_output_in_source;
          Alcotest.test_case "class mismatch" `Quick test_class_mismatch;
          Alcotest.test_case "repeat private" `Quick test_repeat_outcome_is_private;
          Alcotest.test_case "duplicates" `Quick test_duplicate_tasks;
          Alcotest.test_case "binding kind mismatch" `Quick test_compound_output_kind_mismatch;
          Alcotest.test_case "missing output object" `Quick test_compound_missing_output_object;
          Alcotest.test_case "cycle warning" `Quick test_cycle_warning;
          Alcotest.test_case "unexpanded template" `Quick test_unexpanded_template_is_error;
        ] );
      ( "validate-edge-cases",
        [
          Alcotest.test_case "dup input sets" `Quick test_duplicate_input_sets_in_class;
          Alcotest.test_case "dup objects" `Quick test_duplicate_objects_in_set;
          Alcotest.test_case "dup outputs" `Quick test_duplicate_outputs;
          Alcotest.test_case "unknown input set" `Quick test_unknown_input_set_in_instance;
          Alcotest.test_case "undeclared object" `Quick test_undeclared_object_in_spec;
          Alcotest.test_case "empty sources" `Quick test_empty_source_list_rejected;
          Alcotest.test_case "any without carrier" `Quick test_any_source_without_carrying_output;
          Alcotest.test_case "notif unknown set" `Quick test_notification_on_unknown_input_set;
          Alcotest.test_case "dup constituents" `Quick test_duplicate_constituents;
          Alcotest.test_case "unproduced outcome warns" `Quick
            test_never_produced_outcome_is_warning_only;
          Alcotest.test_case "dead constituent warns" `Quick test_dead_constituent_warns;
        ] );
      ( "subtyping",
        [
          Alcotest.test_case "parse + roundtrip" `Quick test_subtype_parse_roundtrip;
          Alcotest.test_case "upcast accepted" `Quick test_subtype_accepted_upcast;
          Alcotest.test_case "downcast rejected" `Quick test_subtype_rejected_downcast;
          Alcotest.test_case "unknown parent" `Quick test_subtype_unknown_parent;
          Alcotest.test_case "inheritance cycle" `Quick test_subtype_cycle;
        ] );
      ( "schema",
        [
          Alcotest.test_case "process order" `Quick test_schema_of_process_order;
          Alcotest.test_case "external inputs" `Quick test_schema_external_inputs;
          Alcotest.test_case "unknown root" `Quick test_schema_unknown_root;
          Alcotest.test_case "business trip nesting" `Quick test_schema_business_trip_nesting;
        ] );
      ( "dot",
        [
          Alcotest.test_case "quickstart shape" `Quick test_dot_output_shape;
          Alcotest.test_case "dotted notifications" `Quick test_dot_notification_edges_dotted;
        ] );
    ]
