(* Tests for the workflow repository service: validated storage,
   versioning, inspection, crash durability, and the RPC client
   (including launch-from-repository). *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let make () =
  let tb = Testbed.make ~nodes:[ "n0"; "repo" ] () in
  let repo = Repository.create ~rpc:tb.Testbed.rpc ~node:(Testbed.node tb "repo") in
  let client = Repo_client.create ~rpc:tb.Testbed.rpc ~src:"n0" ~repo_node:"repo" in
  (tb, repo, client)

let store_ok repo ~name ~source =
  match Repository.store repo ~name ~source with
  | Ok v -> v
  | Error e -> Alcotest.failf "store: %s" e

let test_store_and_fetch () =
  let _, repo, _ = make () in
  let v = store_ok repo ~name:"order" ~source:Paper_scripts.process_order in
  check_int "first version" 1 v;
  match Repository.fetch repo ~name:"order" () with
  | Ok source -> check "same source" true (source = Paper_scripts.process_order)
  | Error e -> Alcotest.failf "fetch: %s" e

let test_store_rejects_invalid () =
  let _, repo, _ = make () in
  match Repository.store repo ~name:"bad" ~source:"task t of taskclass Missing { }" with
  | Error _ -> check "rejected" true (Repository.head repo ~name:"bad" = None)
  | Ok _ -> Alcotest.fail "invalid script accepted"

let test_versioning () =
  let _, repo, _ = make () in
  ignore (store_ok repo ~name:"s" ~source:Paper_scripts.quickstart);
  let v2 = store_ok repo ~name:"s" ~source:Paper_scripts.process_order in
  check_int "second version" 2 v2;
  Alcotest.(check (list int)) "history" [ 1; 2 ] (Repository.history repo ~name:"s");
  (match Repository.fetch repo ~name:"s" ~version:1 () with
  | Ok source -> check "old version intact" true (source = Paper_scripts.quickstart)
  | Error e -> Alcotest.failf "fetch v1: %s" e);
  match Repository.fetch repo ~name:"s" () with
  | Ok source -> check "head is v2" true (source = Paper_scripts.process_order)
  | Error e -> Alcotest.failf "fetch head: %s" e

let test_list_and_inspect () =
  let _, repo, _ = make () in
  ignore (store_ok repo ~name:"order" ~source:Paper_scripts.process_order);
  ignore (store_ok repo ~name:"trip" ~source:Paper_scripts.business_trip);
  Alcotest.(check (list string)) "names sorted" [ "order"; "trip" ] (Repository.list_names repo);
  match Repository.inspect repo ~name:"trip" with
  | Ok s ->
    check_int "head" 1 s.Repository.s_head;
    Alcotest.(check (list string)) "roots" [ "tripReservation" ] s.Repository.s_roots;
    check_int "task count" 11 s.Repository.s_task_count
  | Error e -> Alcotest.failf "inspect: %s" e

let test_crash_durability () =
  let tb, repo, _ = make () in
  ignore (store_ok repo ~name:"order" ~source:Paper_scripts.process_order);
  Testbed.crash tb "repo";
  check "unavailable while down" true
    (match Repository.fetch repo ~name:"order" () with
    | exception Kvstore.Unavailable _ -> true
    | _ -> false);
  Testbed.recover tb "repo";
  match Repository.fetch repo ~name:"order" () with
  | Ok source -> check "script survived the crash" true (source = Paper_scripts.process_order)
  | Error e -> Alcotest.failf "fetch after recovery: %s" e

let test_corrupt_head_fails_loudly () =
  (* a damaged head record must not be mistaken for "no such script" *)
  let _, repo, _ = make () in
  ignore (store_ok repo ~name:"order" ~source:Paper_scripts.process_order);
  Kvstore.put (Repository.internal_store repo) "head:order" "not-a-number";
  check "corrupt head raises" true
    (match Repository.head repo ~name:"order" with
    | exception Invalid_argument msg ->
      (* the error names the script and the bad payload *)
      let contains needle =
        let nl = String.length needle and ml = String.length msg in
        let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
        go 0
      in
      contains "order" && contains "not-a-number"
    | _ -> false);
  check "absent head is still just None" true (Repository.head repo ~name:"ghost" = None)

(* --- the placement directory --- *)

let test_placement_directory () =
  let tb, repo, client = make () in
  check "no owner yet" true (Repository.owner repo ~iid:"wf-1" = None);
  Repository.assign repo ~iid:"wf-1" ~engine:"e1";
  Repository.assign repo ~iid:"wf-2" ~engine:"e2";
  check "owner recorded" true (Repository.owner repo ~iid:"wf-1" = Some "e1");
  check "directory sorted" true
    (Repository.placements repo = [ ("wf-1", "e1"); ("wf-2", "e2") ]);
  (* re-assignment (e.g. after migration) overwrites *)
  Repository.assign repo ~iid:"wf-1" ~engine:"e3";
  check "reassigned" true (Repository.owner repo ~iid:"wf-1" = Some "e3");
  (* the same directory, over RPC from another node *)
  let assigned = ref None in
  Repo_client.assign client ~iid:"wf-3" ~engine:"e1" (fun r -> assigned := Some r);
  Testbed.run tb;
  check "assign over rpc" true (!assigned = Some (Ok ()));
  let owner = ref None in
  Repo_client.owner client ~iid:"wf-3" (fun r -> owner := Some r);
  let missing = ref None in
  Repo_client.owner client ~iid:"nope" (fun r -> missing := Some r);
  let listing = ref None in
  Repo_client.placements client (fun r -> listing := Some r);
  Testbed.run tb;
  check "owner over rpc" true (!owner = Some (Ok (Some "e1")));
  check "missing owner is None over rpc" true (!missing = Some (Ok None));
  check "listing over rpc" true
    (!listing = Some (Ok [ ("wf-1", "e3"); ("wf-2", "e2"); ("wf-3", "e1") ]))

let test_placement_survives_crash () =
  let tb, repo, _ = make () in
  Repository.assign repo ~iid:"wf-9" ~engine:"e2";
  Testbed.crash tb "repo";
  Testbed.recover tb "repo";
  check "assignment durable across repo crash" true
    (Repository.owner repo ~iid:"wf-9" = Some "e2")

let test_client_roundtrip () =
  let tb, _, client = make () in
  let stored = ref None in
  Repo_client.store client ~name:"order" ~source:Paper_scripts.process_order (fun r ->
      stored := Some r);
  Testbed.run tb;
  check "stored over rpc" true (!stored = Some (Ok 1));
  let names = ref None in
  Repo_client.list_names client (fun r -> names := Some r);
  let summary = ref None in
  Repo_client.inspect client ~name:"order" (fun r -> summary := Some r);
  let fetched = ref None in
  Repo_client.fetch client ~name:"order" (fun r -> fetched := Some r);
  Testbed.run tb;
  check "listed" true (!names = Some (Ok [ "order" ]));
  (match !summary with
  | Some (Ok s) -> check_int "five tasks" 5 s.Repository.s_task_count
  | _ -> Alcotest.fail "inspect over rpc failed");
  match !fetched with
  | Some (Ok source) -> check "fetched" true (source = Paper_scripts.process_order)
  | _ -> Alcotest.fail "fetch over rpc failed"

let test_client_error_for_unknown () =
  let tb, _, client = make () in
  let result = ref None in
  Repo_client.fetch client ~name:"ghost" (fun r -> result := Some r);
  Testbed.run tb;
  check "error surfaced" true (match !result with Some (Error _) -> true | _ -> false)

let test_launch_from_repo () =
  let tb, repo, client = make () in
  Impls.register_process_order ~scenario:Impls.order_ok tb.Testbed.registry;
  ignore (store_ok repo ~name:"order" ~source:Paper_scripts.process_order);
  let launched = ref None in
  Repo_client.launch client ~engine:tb.Testbed.engine ~name:"order"
    ~root:Paper_scripts.process_order_root
    ~inputs:[ ("order", Value.obj ~cls:"Order" (Value.Str "o1")) ]
    (fun r -> launched := Some r);
  Testbed.run tb;
  match !launched with
  | Some (Ok iid) -> (
    match Engine.status tb.Testbed.engine iid with
    | Some (Wstate.Wf_done { output; _ }) -> Alcotest.(check string) "outcome" "orderCompleted" output
    | other ->
      Alcotest.failf "status: %s"
        (match other with Some s -> Format.asprintf "%a" Wstate.pp_status s | None -> "none"))
  | Some (Error e) -> Alcotest.failf "launch: %s" e
  | None -> Alcotest.fail "launch never completed"

(* --- the replicated repository --- *)

let make_replicated () =
  let tb = Testbed.make ~nodes:[ "n0"; "r1"; "r2"; "r3" ] () in
  let group =
    Repo_group.create ~rpc:tb.Testbed.rpc
      ~nodes:(List.map (Testbed.node tb) [ "r1"; "r2"; "r3" ])
  in
  (* let the bootstrap election settle before the first client call *)
  Testbed.run tb;
  let client =
    Repo_client.create_replicated ~rpc:tb.Testbed.rpc ~src:"n0"
      ~replicas:[ "r1"; "r2"; "r3" ] ()
  in
  (tb, group, client)

let test_replicated_corrupt_head_fails_loudly () =
  (* the loud-corruption contract survives the move onto the replicated
     log: a damaged head record raises on the damaged member and must
     not be mistaken for "no such script" — while the other members,
     whose backings are independent, keep answering *)
  let tb, group, client = make_replicated () in
  let stored = ref None in
  Repo_client.store client ~name:"order" ~source:Paper_scripts.process_order (fun r ->
      stored := Some r);
  Testbed.run tb;
  check "stored through the log" true (!stored = Some (Ok 1));
  let leader =
    match Repo_group.leader group with
    | Some l -> l
    | None -> Alcotest.fail "no leader after bootstrap"
  in
  let victim = Repo_group.replica group leader in
  Kvstore.put (Repository.internal_store victim) "head:order" "not-a-number";
  check "corrupt head raises on the damaged member" true
    (match Repository.head victim ~name:"order" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  List.iter
    (fun id ->
      if id <> leader then
        check ("head intact on " ^ id) true
          (Repository.head (Repo_group.replica group id) ~name:"order" = Some 1))
    (Repo_group.nodes group)

let test_replicated_redirect_loop_bounded () =
  (* majority down for good: no leader is electable, so the client's
     leader-discovery / redirect loop must give up with an error and
     leave no retry timers behind — not bounce between the survivors
     forever *)
  let tb, group, client = make_replicated () in
  ignore group;
  Testbed.crash tb "r1";
  Testbed.crash tb "r2";
  let assigned = ref None in
  Repo_client.assign client ~iid:"wf-1" ~engine:"e1" (fun r -> assigned := Some r);
  Testbed.run tb;
  check "mutation bounded with an error" true
    (match !assigned with Some (Error _) -> true | _ -> false);
  check_int "simulator drained" 0 (Sim.pending tb.Testbed.sim);
  (* reads need no quorum: the lone survivor still answers, and the
     failed mutation left no trace in the directory *)
  let owner = ref None in
  Repo_client.owner client ~iid:"wf-1" (fun r -> owner := Some r);
  Testbed.run tb;
  check "read served by the survivor" true (!owner = Some (Ok None))

let () =
  Alcotest.run "repo"
    [
      ( "service",
        [
          Alcotest.test_case "store and fetch" `Quick test_store_and_fetch;
          Alcotest.test_case "rejects invalid" `Quick test_store_rejects_invalid;
          Alcotest.test_case "versioning" `Quick test_versioning;
          Alcotest.test_case "list and inspect" `Quick test_list_and_inspect;
          Alcotest.test_case "crash durability" `Quick test_crash_durability;
          Alcotest.test_case "corrupt head fails loudly" `Quick test_corrupt_head_fails_loudly;
        ] );
      ( "placement",
        [
          Alcotest.test_case "directory" `Quick test_placement_directory;
          Alcotest.test_case "durable across crash" `Quick test_placement_survives_crash;
        ] );
      ( "client",
        [
          Alcotest.test_case "roundtrip" `Quick test_client_roundtrip;
          Alcotest.test_case "unknown name" `Quick test_client_error_for_unknown;
          Alcotest.test_case "launch from repo" `Quick test_launch_from_repo;
        ] );
      ( "replicated",
        [
          Alcotest.test_case "corrupt head fails loudly" `Quick
            test_replicated_corrupt_head_fails_loudly;
          Alcotest.test_case "redirect loop bounded without quorum" `Quick
            test_replicated_redirect_loop_bounded;
        ] );
    ]
