(* Generative properties across the stack:
   - random syntactic ASTs round-trip through the pretty-printer/parser;
   - random Value trees round-trip through the persistence codec;
   - the wire decoder never fails with anything but Malformed on fuzz;
   - the engine completes chain workloads under random crash schedules
     (the paper's "eventually receives inputs despite a finite number of
     crashes" claim, searched over schedules rather than hand-picked). *)

let check = Alcotest.(check bool)

(* --- random AST generation (syntactic, not semantic) --- *)

let gen_name =
  QCheck.Gen.(map (fun (c, n) -> Printf.sprintf "%c%d" c n) (pair (char_range 'a' 'z') (int_bound 99)))

let gen_cname =
  QCheck.Gen.(map (fun (c, n) -> Printf.sprintf "%c%d" c n) (pair (char_range 'A' 'Z') (int_bound 99)))

let gen_cond =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> Ast.On_output n) gen_name);
        (2, map (fun n -> Ast.On_input n) gen_name);
        (1, return Ast.Any);
      ])

let gen_object_source =
  QCheck.Gen.(
    map3
      (fun os_object os_task os_cond -> { Ast.os_object; os_task; os_cond; os_loc = Loc.dummy })
      gen_name gen_name gen_cond)

let gen_notif_source =
  QCheck.Gen.(
    map2 (fun ns_task ns_cond -> { Ast.ns_task; ns_cond; ns_loc = Loc.dummy }) gen_name gen_cond)

let gen_input_dep =
  QCheck.Gen.(
    frequency
      [
        ( 2,
          map2
            (fun d_name d_sources -> Ast.Dep_object { d_name; d_sources; d_loc = Loc.dummy })
            gen_name
            (list_size (int_range 1 3) gen_object_source) );
        (1, map (fun l -> Ast.Dep_notification l) (list_size (int_range 1 3) gen_notif_source));
      ])

let gen_input_set_spec =
  QCheck.Gen.(
    map2
      (fun iss_name iss_deps -> { Ast.iss_name; iss_deps; iss_loc = Loc.dummy })
      gen_name
      (list_size (int_range 0 3) gen_input_dep))

let gen_impl =
  QCheck.Gen.(
    list_size (int_range 0 3)
      (pair (oneofl [ "code"; "location"; "deadline"; "priority"; "agent" ]) gen_name))

let gen_task_decl =
  QCheck.Gen.(
    map3
      (fun td_name (td_class, td_impl) td_inputs ->
        { Ast.td_name; td_class; td_impl; td_recovery = []; td_inputs; td_loc = Loc.dummy })
      gen_name (pair gen_cname gen_impl)
      (list_size (int_range 0 2) gen_input_set_spec))

let gen_object_decl =
  QCheck.Gen.(
    map2 (fun od_name od_class -> { Ast.od_name; od_class; od_loc = Loc.dummy }) gen_name gen_cname)

let gen_output_kind =
  QCheck.Gen.oneofl [ Ast.Outcome; Ast.Abort_outcome; Ast.Repeat_outcome; Ast.Mark ]

let gen_output_decl =
  QCheck.Gen.(
    map3
      (fun outd_kind outd_name outd_objects ->
        { Ast.outd_kind; outd_name; outd_objects; outd_loc = Loc.dummy })
      gen_output_kind gen_name
      (list_size (int_range 0 3) gen_object_decl))

let gen_taskclass_decl =
  QCheck.Gen.(
    map3
      (fun tcd_name input_sets tcd_outputs ->
        let tcd_input_sets =
          List.map
            (fun (isd_name, isd_objects) -> { Ast.isd_name; isd_objects; isd_loc = Loc.dummy })
            input_sets
        in
        { Ast.tcd_name; tcd_input_sets; tcd_outputs; tcd_loc = Loc.dummy })
      gen_cname
      (list_size (int_range 0 2) (pair gen_name (list_size (int_range 0 3) gen_object_decl)))
      (list_size (int_range 0 3) gen_output_decl))

let gen_output_binding =
  QCheck.Gen.(
    map3
      (fun ob_kind ob_name deps -> { Ast.ob_kind; ob_name; ob_deps = deps; ob_loc = Loc.dummy })
      gen_output_kind gen_name
      (list_size (int_range 0 2)
         (frequency
            [
              ( 2,
                map2
                  (fun o_name o_sources -> Ast.Out_object { o_name; o_sources; o_loc = Loc.dummy })
                  gen_name
                  (list_size (int_range 1 2) gen_object_source) );
              (1, map (fun l -> Ast.Out_notification l) (list_size (int_range 1 2) gen_notif_source));
            ])))

let gen_compound_decl =
  QCheck.Gen.(
    map3
      (fun cd_name (cd_class, cd_inputs) (constituents, cd_outputs) ->
        {
          Ast.cd_name;
          cd_class;
          cd_impl = [];
          cd_recovery = [];
          cd_inputs;
          cd_constituents = List.map (fun td -> Ast.C_task td) constituents;
          cd_outputs;
          cd_loc = Loc.dummy;
        })
      gen_name
      (pair gen_cname (list_size (int_range 0 2) gen_input_set_spec))
      (pair (list_size (int_range 0 3) gen_task_decl) (list_size (int_range 0 2) gen_output_binding)))

let gen_decl =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun cls_name -> Ast.D_class { cls_name; cls_parent = None; cls_loc = Loc.dummy }) gen_cname);
        ( 1,
          map2
            (fun cls_name parent ->
              Ast.D_class { cls_name; cls_parent = Some parent; cls_loc = Loc.dummy })
            gen_cname gen_cname );
        (3, map (fun tc -> Ast.D_taskclass tc) gen_taskclass_decl);
        (3, map (fun td -> Ast.D_task td) gen_task_decl);
        (2, map (fun cd -> Ast.D_compound cd) gen_compound_decl);
        ( 1,
          map3
            (fun ti_name ti_template ti_args ->
              Ast.D_template_inst { ti_name; ti_template; ti_args; ti_loc = Loc.dummy })
            gen_name gen_name
            (list_size (int_range 0 3) gen_name) );
      ])

let gen_script = QCheck.Gen.(list_size (int_range 1 8) gen_decl)

let arb_script = QCheck.make ~print:(fun ast -> Pretty.to_string ast) gen_script

let prop_pretty_parse_roundtrip =
  QCheck.Test.make ~name:"random ASTs round-trip through pretty-print + parse" ~count:300
    arb_script (fun ast ->
      let printed = Pretty.to_string ast in
      match Parser.script_result printed with
      | Error _ -> false
      | Ok reparsed -> Pretty.to_string reparsed = printed)

(* --- Value codec --- *)

let gen_value =
  QCheck.Gen.(
    sized
      (fix (fun self n ->
           if n <= 1 then
             frequency
               [
                 (1, return Value.Unit);
                 (2, map (fun b -> Value.Bool b) bool);
                 (3, map (fun i -> Value.Int i) int);
                 (3, map (fun s -> Value.Str s) string);
               ]
           else
             frequency
               [
                 (2, map (fun s -> Value.Str s) string);
                 (2, map (fun l -> Value.List l) (list_size (int_range 0 4) (self (n / 2))));
                 (1, map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2)));
               ])))

let prop_value_roundtrip =
  QCheck.Test.make ~name:"values round-trip through the persistence codec" ~count:500
    (QCheck.make gen_value) (fun v -> Value.decode (Value.encode v) = v)

let prop_obj_bindings_roundtrip =
  QCheck.Test.make ~name:"object bindings round-trip" ~count:200
    QCheck.(make Gen.(list_size (int_range 0 5) (pair string_small gen_value)))
    (fun bindings ->
      let objs = List.map (fun (n, v) -> (n, Value.obj ~cls:("C" ^ n) v)) bindings in
      Value.decode_bindings (Value.encode_bindings objs) = objs)

(* --- wire fuzz --- *)

let prop_wire_fuzz_no_crash =
  QCheck.Test.make ~name:"wire decoder fails only with Malformed on fuzz" ~count:500
    QCheck.string (fun input ->
      match Wire.decode Wire.d_string input with
      | _ -> true
      | exception Wire.Malformed _ -> true)

let prop_task_state_codec_fuzz =
  QCheck.Test.make ~name:"task-state decoder fails only with Malformed on fuzz" ~count:300
    QCheck.string (fun input ->
      match Wstate.decode_task_state input with
      | _ -> true
      | exception Wire.Malformed _ -> true)

(* --- fault-schedule search --- *)

let prop_engine_survives_random_crash_schedules =
  (* a chain of 6 tasks (5ms each); up to 4 crash/recovery cycles at
     random instants within the first 400ms; the engine must still reach
     the right outcome with the seed intact. *)
  QCheck.Test.make ~name:"engine completes under arbitrary finite crash schedules" ~count:25
    QCheck.(
      make
        ~print:(fun (times, down) ->
          Printf.sprintf "crashes at %s ms, down %d ms"
            (String.concat "," (List.map string_of_int times))
            down)
        Gen.(pair (list_size (int_range 0 4) (int_range 1 400)) (int_range 10 50)))
    (fun (crash_times_ms, down_ms) ->
      let engine_config =
        { Engine.default_config with Engine.default_deadline = Sim.ms 80; system_max_attempts = 200 }
      in
      let tb = Testbed.make ~engine_config () in
      Workloads.register ~work:(Sim.ms 5) tb.Testbed.registry;
      let plan =
        List.concat_map
          (fun at_ms -> Fault.crash_restart ~node:"n0" ~at:(Sim.ms at_ms) ~down_for:(Sim.ms down_ms))
          (List.sort_uniq compare crash_times_ms)
      in
      (* crash_restart pairs can interleave out of order across cycles;
         Node.crash/recover are idempotent so this is safe *)
      Fault.apply tb.Testbed.sim plan ~on:(function
        | Fault.Crash n -> Testbed.crash tb n
        | Fault.Restart n -> Testbed.recover tb n
        | Fault.Partition_on _ | Fault.Partition_off _ -> ());
      let script, root = Workloads.chain ~n:6 in
      match
        Testbed.launch_and_run ~until:(Sim.sec 120) tb ~script ~root ~inputs:Workloads.seed_inputs
      with
      | Ok (_, Wstate.Wf_done { output = "finished"; objects }) -> (
        match List.assoc_opt "data" objects with
        | Some { Value.payload = Value.Str "seed"; _ } -> true
        | _ -> false)
      | _ -> false)

let prop_lossy_network_random_seeds =
  QCheck.Test.make ~name:"order processing completes under 30% loss for any seed" ~count:15
    QCheck.int64 (fun seed ->
      let config = { Network.default_config with Network.loss = 0.3 } in
      let tb = Testbed.make ~config ~seed () in
      Impls.register_process_order ~scenario:Impls.order_ok tb.Testbed.registry;
      match
        Testbed.launch_and_run ~until:(Sim.sec 120) tb ~script:Paper_scripts.process_order
          ~root:Paper_scripts.process_order_root
          ~inputs:[ ("order", Value.obj ~cls:"Order" (Value.Str "o")) ]
      with
      | Ok (_, Wstate.Wf_done { output = "orderCompleted"; _ }) -> true
      | _ -> false)

(* --- pure scheduler core (no Sim/Rpc/Txn: hand-built views) --- *)

(* Resolution without a registry: compound bodies expand structurally,
   simple tasks are leaves. Enough for Sched, which never dispatches. *)
let pure_effective (t : Schema.task) =
  match t.Schema.body with
  | Schema.Compound { children; bindings } ->
    Sched.E_compound { children; bindings; alias = t.Schema.name }
  | Schema.Simple -> Sched.E_fn t.Schema.name

let pure_view ?(states = []) ?(chosen = []) ?(marks = fun _ -> []) () =
  {
    Sched.v_effective = pure_effective;
    v_state = (fun p -> List.assoc_opt p states);
    v_chosen = (fun p -> List.assoc_opt p chosen);
    v_marks = marks;
    v_repeat = (fun _ -> None);
    v_timer_fired = (fun _ ~set:_ -> false);
    v_external = (fun _ -> None);
    v_running = true;
  }

let compile_or_fail script ~root =
  match Frontend.compile script ~root with
  | Ok schema -> schema
  | Error e -> QCheck.Test.fail_reportf "script does not compile: %s" (Frontend.error_to_string e)

(* The script's declared alternative order is the selection priority:
   whatever subset of producers has completed, the consumer's input must
   come from the first *declared* producer among them — never a later
   one, regardless of producer naming or completion pattern. *)
let buf_add = Buffer.add_string

let alt_script ~k ~order =
  let b = Buffer.create 1024 in
  buf_add b
    {|
class Data;
taskclass Step {
    inputs { input main { data of class Data } };
    outputs { outcome done { data of class Data } }
};
taskclass Alt {
    inputs { input main { data of class Data } };
    outputs { outcome finished { data of class Data } }
};
compoundtask alt of taskclass Alt {
|};
  for i = 1 to k do
    buf_add b
      (Printf.sprintf
         {|    task p%d of taskclass Step {
        implementation { "code" is "w.p" };
        inputs { input main { inputobject data from { data of task alt if input main } } }
    };
|}
         i)
  done;
  buf_add b
    "    task consumer of taskclass Step {\n\
    \        implementation { \"code\" is \"w.step\" };\n\
    \        inputs { input main { inputobject data from {\n";
  List.iteri
    (fun pos i ->
      buf_add b
        (Printf.sprintf "            data of task p%d if output done%s\n" i
           (if pos = List.length order - 1 then "" else ";")))
    order;
  buf_add b
    {|        } } }
    };
    outputs { outcome finished { outputobject data from { data of task consumer if output done } } }
}
|};
  Buffer.contents b

let prop_alternative_order_respected =
  QCheck.Test.make
    ~name:"source selection always follows the declared alternative order" ~count:200
    QCheck.(
      make
        ~print:(fun (order, avail) ->
          Printf.sprintf "declared p%s, done {%s}"
            (String.concat ",p" (List.map string_of_int order))
            (String.concat ","
               (List.filteri (fun i _ -> List.nth avail i) (List.map string_of_int order))))
      Gen.(
        int_range 2 5 >>= fun k ->
        pair (shuffle_l (List.init k (fun i -> i + 1))) (list_repeat k bool)))
    (fun (order, avail) ->
      let k = List.length order in
      let schema = compile_or_fail (alt_script ~k ~order) ~root:"alt" in
      let seed = Value.obj ~cls:"Data" (Value.Str "seed") in
      let producer_states =
        List.map
          (fun i ->
            let st =
              if List.nth avail (i - 1) then
                Wstate.Done
                  {
                    attempt = 1;
                    output = "done";
                    kind = Ast.Outcome;
                    objects = [ ("data", Value.obj ~cls:"Data" (Value.Int i)) ];
                  }
              else Wstate.Failed "unavailable"
            in
            ([ "alt"; Printf.sprintf "p%d" i ], st))
          (List.init k (fun i -> i + 1))
      in
      let view =
        pure_view
          ~states:
            (([ "alt" ], Wstate.Running { attempt = 1; set = "main"; started = 0; deadline = max_int })
            :: producer_states)
          ~chosen:[ ([ "alt" ], { Wstate.c_set = "main"; c_inputs = [ ("data", seed) ] }) ]
          ()
      in
      let consumer_input =
        List.find_map
          (function
            | Sched.Start { a_path = [ "alt"; "consumer" ]; a_inputs; _ } ->
              Some (List.assoc_opt "data" a_inputs)
            | _ -> None)
          (Sched.scan view ~root:schema)
      in
      (* first available producer in *declared* order, not numeric order *)
      let expected = List.find_opt (fun i -> List.nth avail (i - 1)) order in
      match (expected, consumer_input) with
      | None, None -> true
      | Some i, Some (Some { Value.payload = Value.Int j; _ }) -> j = i
      | _ -> false)

(* Fig 3: once a task has released a mark it may no longer abort. An
   abort-outcome report after any mark must map to Fail_task — never to
   a completion and never to the "retries" auto-restart absorption —
   while the same report with no mark released follows the normal
   abort rules (absorbed while attempt <= retries, applied after).

   The validator rejects a taskclass declaring both an abort outcome
   and a mark, so no script reaches this rule; it is Sched's defence
   against a task host violating the protocol at runtime. The schema
   node is built directly to exercise it. *)
let risky_task ~retries =
  {
    Schema.name = "t";
    klass = "Risky";
    impl = [ ("code", "w.t"); ("retries", string_of_int retries) ];
    policy = Schema.no_policy;
    inputs =
      [
        {
          Schema.is_name = "main";
          is_notifications = [];
          is_objects = [ { Schema.io_name = "data"; io_class = "Data"; io_sources = [] } ];
        };
      ];
    outputs =
      [
        { Schema.out_kind = Ast.Outcome; out_name = "done"; out_objects = [ ("data", "Data") ] };
        { Schema.out_kind = Ast.Abort_outcome; out_name = "failed"; out_objects = [] };
        { Schema.out_kind = Ast.Mark; out_name = "progress"; out_objects = [ ("data", "Data") ] };
      ];
    body = Schema.Simple;
  }

let prop_mark_excludes_later_abort =
  QCheck.Test.make ~name:"a released mark excludes a later abort outcome" ~count:200
    QCheck.(
      make
        ~print:(fun (marked, attempt, retries) ->
          Printf.sprintf "marked=%b attempt=%d retries=%d" marked attempt retries)
        Gen.(triple bool (int_range 1 6) (int_range 0 4)))
    (fun (marked, attempt, retries) ->
      let task = risky_task ~retries in
      let path = [ "m"; "t" ] in
      let view =
        pure_view
          ~marks:(fun p ->
            if marked && p = path then
              [ ("progress", [ ("data", Value.obj ~cls:"Data" Value.Unit) ]) ]
            else [])
          ()
      in
      let d =
        Sched.report_decision view ~task ~path ~attempt ~is_mark:false ~output:"failed"
          ~objects:[]
      in
      if marked then
        match d with
        | Sched.D_apply (Sched.Fail_task { a_path; _ }) -> a_path = path
        | _ -> false
      else if attempt <= retries then d = Sched.D_auto_restart
      else
        match d with
        | Sched.D_apply (Sched.Complete { a_kind = Ast.Abort_outcome; a_path; _ }) -> a_path = path
        | _ -> false)

(* --- gantt smoke --- *)

let test_gantt_renders_fig1 () =
  let tb = Testbed.make () in
  Impls.register_quickstart tb.Testbed.registry;
  ignore
    (Testbed.launch_and_run tb ~script:Paper_scripts.quickstart
       ~root:Paper_scripts.quickstart_root
       ~inputs:[ ("seed", Value.obj ~cls:"Data" (Value.Int 1)) ]);
  let chart = Gantt.render (Engine.trace tb.Testbed.engine) in
  let lines = String.split_on_char '\n' chart in
  check "five rows (diamond + four tasks)" true
    (List.length (List.filter (fun l -> l <> "") lines) = 5);
  check "contains t4 row" true
    (List.exists
       (fun l -> String.length l > 10 && String.sub l 0 10 = "diamond/t4")
       lines)

let test_gantt_empty_trace () =
  Alcotest.(check string) "empty" "" (Gantt.render (Trace.create ()))


let test_gantt_shows_running_tasks () =
  (* an instance cancelled mid-run renders open-ended bars *)
  let tb = Testbed.make () in
  Impls.register_process_order ~work:(Sim.ms 200) ~scenario:Impls.order_ok tb.Testbed.registry;
  (match
     Engine.launch tb.Testbed.engine ~script:Paper_scripts.process_order
       ~root:Paper_scripts.process_order_root
       ~inputs:[ ("order", Value.obj ~cls:"Order" (Value.Str "o")) ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "launch: %s" e);
  Sim.run ~until:(Sim.ms 50) tb.Testbed.sim;
  let chart = Gantt.render (Engine.trace tb.Testbed.engine) in
  let contains needle =
    let n = String.length needle and h = String.length chart in
    let rec at i = i + n <= h && (String.sub chart i n = needle || at (i + 1)) in
    at 0
  in
  check "open-ended bar for running task" true (contains "(running)")

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pretty_parse_roundtrip;
      prop_value_roundtrip;
      prop_obj_bindings_roundtrip;
      prop_wire_fuzz_no_crash;
      prop_task_state_codec_fuzz;
      prop_engine_survives_random_crash_schedules;
      prop_lossy_network_random_seeds;
    ]

let sched_suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_alternative_order_respected; prop_mark_excludes_later_abort ]

let () =
  Alcotest.run "props"
    [
      ("generative", qsuite);
      ("sched", sched_suite);
      ( "gantt",
        [
          Alcotest.test_case "renders fig1" `Quick test_gantt_renders_fig1;
          Alcotest.test_case "running tasks open-ended" `Quick test_gantt_shows_running_tasks;
          Alcotest.test_case "empty trace" `Quick test_gantt_empty_trace;
        ] );
    ]
