(* Tests for the consensus layer: the replicated log (bootstrap
   election, quorum append, leader failover, catch-up of rejoining
   replicas, suffix truncation) and the replica-set client (redirects,
   failover, the bounded redirect loop when no leader is electable). *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* A toy deterministic state machine: committed payloads accumulate in
   order; apply returns "r:<payload>". *)
type machine = { mutable applied : string list }

let make_group ?(seed = 11L) ids =
  let sim = Sim.create ~seed () in
  let net = Network.create ~config:Network.default_config sim in
  let rpc = Rpc.create net in
  let members =
    List.map
      (fun id ->
        let node = Network.add_node net ~id in
        Rpc.attach rpc node;
        let m = { applied = [] } in
        let rlog =
          Rlog.create ~rpc ~node ~peers:ids
            ~apply:(fun p ->
              m.applied <- m.applied @ [ p ];
              "r:" ^ p)
            ~reset:(fun () -> m.applied <- [])
            ()
        in
        (id, (node, m, rlog)))
      ids
  in
  let client = Network.add_node net ~id:"client" in
  Rpc.attach rpc client;
  (sim, net, rpc, members)

let rlog_of members id =
  let _, _, r = List.assoc id members in
  r

let machine_of members id =
  let _, m, _ = List.assoc id members in
  m

let leader_of members =
  List.filter_map (fun (id, (_, _, r)) -> if Rlog.role r = Rlog.Leader then Some id else None)
    members

let test_bootstrap_elects_lowest_rank () =
  let sim, _, _, members = make_group [ "r1"; "r2"; "r3" ] in
  Sim.run sim;
  Alcotest.(check (list string)) "r1 leads" [ "r1" ] (leader_of members);
  check "followers know the leader" true
    (List.for_all
       (fun id -> Rlog.leader_hint (rlog_of members id) = Some "r1")
       [ "r2"; "r3" ]);
  check_int "noop committed everywhere" 1 (Rlog.commit_index (rlog_of members "r3"))

let test_append_replicates_to_all () =
  let sim, _, rpc, members = make_group [ "r1"; "r2"; "r3" ] in
  Sim.run sim;
  let rc = Rlog_client.create ~rpc ~src:"client" ~replicas:[ "r1"; "r2"; "r3" ] () in
  let replies = ref [] in
  Rlog_client.append rc ~payload:"a" (fun r -> replies := r :: !replies);
  Rlog_client.append rc ~payload:"b" (fun r -> replies := r :: !replies);
  Sim.run sim;
  check "both acks" true
    (List.sort compare !replies = [ Ok "r:a"; Ok "r:b" ]);
  List.iter
    (fun id ->
      check ("applied in order on " ^ id) true ((machine_of members id).applied = [ "a"; "b" ]);
      check_int ("commit on " ^ id) 3 (Rlog.commit_index (rlog_of members id)))
    [ "r1"; "r2"; "r3" ];
  check "logs identical" true
    (Rlog.committed (rlog_of members "r1") = Rlog.committed (rlog_of members "r2")
    && Rlog.committed (rlog_of members "r2") = Rlog.committed (rlog_of members "r3"))

let test_leader_crash_failover_and_catchup () =
  let sim, net, rpc, members = make_group [ "r1"; "r2"; "r3" ] in
  Sim.run sim;
  let rc = Rlog_client.create ~rpc ~src:"client" ~replicas:[ "r1"; "r2"; "r3" ] () in
  let acks = ref [] in
  Rlog_client.append rc ~payload:"a" (fun r -> acks := r :: !acks);
  Sim.run sim;
  (* kill the leader; the next append fails over, nudges an election,
     and commits under the new leader *)
  Node.crash (Network.node net "r1");
  Rlog_client.append rc ~payload:"b" (fun r -> acks := r :: !acks);
  Sim.run sim;
  check "both appends acked" true (List.length !acks = 2 && List.for_all Result.is_ok !acks);
  let survivors = leader_of members in
  check "a survivor leads" true (survivors = [ "r2" ] || survivors = [ "r3" ]);
  (* the old leader rejoins as a follower and catches up from the log *)
  Node.recover (Network.node net "r1");
  Sim.run sim;
  check "r1 back as follower" true (Rlog.role (rlog_of members "r1") <> Rlog.Leader);
  check "r1 caught up" true
    (Rlog.committed (rlog_of members "r1") = Rlog.committed (rlog_of members "r2"));
  check "state machine rebuilt in order" true ((machine_of members "r1").applied = [ "a"; "b" ])

let test_partitioned_leader_deposed_and_truncated () =
  let sim, net, rpc, members = make_group [ "r1"; "r2"; "r3" ] in
  Sim.run sim;
  let rc = Rlog_client.create ~rpc ~src:"client" ~replicas:[ "r1"; "r2"; "r3" ] () in
  let acks = ref [] in
  Rlog_client.append rc ~payload:"a" (fun r -> acks := r :: !acks);
  Sim.run sim;
  (* cut r1 off from everyone, client included: its term cannot commit
     anything, and the majority side elects a new leader *)
  List.iter (fun p -> Network.partition_on net "r1" p) [ "r2"; "r3"; "client" ];
  Rlog_client.append rc ~payload:"b" (fun r -> acks := r :: !acks);
  Sim.run sim;
  check "append committed on majority side" true
    (List.exists (fun r -> r = Ok "r:b") !acks);
  (* r1, partitioned but alive, still believes in its old term — only
     contact can depose it. The majority side must have its own leader. *)
  let majority_leader =
    match List.filter (fun id -> id <> "r1") (leader_of members) with
    | [ l ] -> l
    | other -> Alcotest.failf "expected one majority leader, got %d" (List.length other)
  in
  (* heal: the deposed leader steps down on first contact and converges *)
  List.iter (fun p -> Network.partition_off net "r1" p) [ "r2"; "r3"; "client" ];
  Rlog_client.append rc ~payload:"c" (fun r -> acks := r :: !acks);
  Sim.run sim;
  check "r1 follower after heal" true (Rlog.role (rlog_of members "r1") <> Rlog.Leader);
  check "r1 log converged" true
    (Rlog.committed (rlog_of members "r1") = Rlog.committed (rlog_of members majority_leader));
  check "r1 replayed exactly the committed commands" true
    ((machine_of members "r1").applied = [ "a"; "b"; "c" ])

let test_no_quorum_append_bounded () =
  let sim, net, rpc, members = make_group [ "r1"; "r2"; "r3" ] in
  Sim.run sim;
  ignore members;
  (* two of three replicas down for good: no leader is electable, so
     the client's redirect/failover loop must terminate with an error
     and the simulator must drain (no retry loop left behind) *)
  Node.crash (Network.node net "r1");
  Node.crash (Network.node net "r2");
  let rc = Rlog_client.create ~rpc ~src:"client" ~replicas:[ "r1"; "r2"; "r3" ] () in
  let result = ref None in
  Rlog_client.append rc ~payload:"x" (fun r -> result := Some r);
  Sim.run sim;
  check "append failed" true (match !result with Some (Error _) -> true | _ -> false);
  check_int "simulator drained" 0 (Sim.pending sim)

let test_duplicate_cid_applies_once () =
  (* the state-machine-level dedup lives in Repository.apply_command;
     here we check the log level: the same payload appended twice *is*
     two entries — dedup is the state machine's job, which is exactly
     why commands carry client ids *)
  let sim, _, rpc, members = make_group [ "r1"; "r2"; "r3" ] in
  Sim.run sim;
  let rc = Rlog_client.create ~rpc ~src:"client" ~replicas:[ "r1"; "r2"; "r3" ] () in
  Rlog_client.append rc ~payload:"x" (fun _ -> ());
  Rlog_client.append rc ~payload:"x" (fun _ -> ());
  Sim.run sim;
  check_int "two entries" 3 (Rlog.commit_index (rlog_of members "r1"));
  check "applied twice at log level" true ((machine_of members "r1").applied = [ "x"; "x" ])

let test_single_replica_group () =
  let sim, _, rpc, members = make_group [ "solo" ] in
  Sim.run sim;
  Alcotest.(check (list string)) "leads itself" [ "solo" ] (leader_of members);
  let rc = Rlog_client.create ~rpc ~src:"client" ~replicas:[ "solo" ] () in
  let got = ref None in
  Rlog_client.append rc ~payload:"a" (fun r -> got := Some r);
  Sim.run sim;
  check "commits alone" true (!got = Some (Ok "r:a"))

let test_determinism_same_seed () =
  let run () =
    let sim, net, rpc, members = make_group ~seed:42L [ "r1"; "r2"; "r3" ] in
    Sim.run sim;
    let rc = Rlog_client.create ~rpc ~src:"client" ~replicas:[ "r1"; "r2"; "r3" ] () in
    let log = ref [] in
    for i = 1 to 5 do
      Rlog_client.append rc ~payload:(Printf.sprintf "p%d" i) (fun r ->
          log := (i, r) :: !log)
    done;
    ignore (Sim.schedule sim ~delay:(Sim.ms 3) (fun () ->
        Node.crash (Network.node net "r1")));
    ignore (Sim.schedule sim ~delay:(Sim.ms 40) (fun () ->
        Node.recover (Network.node net "r1")));
    Sim.run sim;
    (!log, List.map (fun (id, _) -> (id, Rlog.committed (rlog_of members id))) members,
     Sim.now sim)
  in
  check "two seeded runs identical" true (run () = run ())

let () =
  Alcotest.run "consensus"
    [
      ( "rlog",
        [
          Alcotest.test_case "bootstrap elects lowest rank" `Quick
            test_bootstrap_elects_lowest_rank;
          Alcotest.test_case "append replicates to all" `Quick test_append_replicates_to_all;
          Alcotest.test_case "leader crash: failover + catch-up" `Quick
            test_leader_crash_failover_and_catchup;
          Alcotest.test_case "partitioned leader deposed, log converges" `Quick
            test_partitioned_leader_deposed_and_truncated;
          Alcotest.test_case "no electable leader: bounded, drains" `Quick
            test_no_quorum_append_bounded;
          Alcotest.test_case "same payload twice = two entries" `Quick
            test_duplicate_cid_applies_once;
          Alcotest.test_case "single-replica group" `Quick test_single_replica_group;
          Alcotest.test_case "same seed, same run" `Quick test_determinism_same_seed;
        ] );
    ]
