(* Tests for the fault-exploration subsystem: decision-point harvesting,
   plan validation, the oracle battery, the shrinker, the pinned
   regression schedules ported from the retired bin/fault_grid.ml, and a
   small end-to-end exploration. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- decision harvesting --- *)

let test_decision_points_harvested () =
  let c = Decision.collector () in
  let _obs = Scenario.chain.Scenario.sc_run [] (Some c) in
  let pts = Decision.points c in
  check "a healthy crop of points" true (List.length pts > 20);
  let kinds = List.map fst (Decision.by_kind pts) in
  List.iter
    (fun k -> check ("kind " ^ k ^ " harvested") true (List.mem k kinds))
    [ "commit"; "dispatch"; "launch"; "conclude" ];
  check "an rpc protocol boundary appears" true
    (List.exists (fun k -> contains ~sub:"rpc:" k) kinds);
  check "remote dispatch names its peer" true
    (List.exists (fun p -> p.Decision.p_kind = "dispatch" && p.Decision.p_peer = Some "h1") pts);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Decision.p_at <= b.Decision.p_at && sorted rest
    | _ -> true
  in
  check "points sorted by time" true (sorted pts);
  check "makespan positive" true (Decision.makespan c > 0)

let test_classify_filters_noise () =
  let some ev = Decision.classify ~src:"n0" ev <> None in
  check "aborted txns are not decision points" false
    (some (Event.Txn_resolved { txid = "t1"; committed = false }));
  check "commits are" true (some (Event.Txn_resolved { txid = "t1"; committed = true }));
  check "non-protocol rpc ignored" false
    (some (Event.Rpc_sent { src = "a"; dst = "b"; service = "gossip" }));
  (match Decision.classify ~src:"a" (Event.Rpc_sent { src = "a"; dst = "b"; service = "tx.prepare" }) with
  | Some ("rpc:tx.prepare", _, Some "b") -> ()
  | _ -> Alcotest.fail "tx rpc should classify with its peer");
  check "retries are not decision points" false
    (some (Event.Rpc_retried { src = "a"; dst = "b"; service = "tx.prepare" }))

(* --- plan validation (Fault.validate / Testbed.apply_faults) --- *)

let test_plan_validation () =
  let nodes = [ "n0"; "h1" ] in
  let ok plan = Fault.validate ~nodes plan = Ok () in
  check "well-formed crash/restart" true
    (ok (Fault.crash_restart ~node:"n0" ~at:10 ~down_for:5));
  check "well-formed even when listed out of order" true
    (ok [ (15, Fault.Restart "n0"); (10, Fault.Crash "n0") ]);
  check "unknown crash target rejected" false (ok [ (0, Fault.Crash "ghost") ]);
  check "restart of never-crashed node rejected" false (ok [ (0, Fault.Restart "n0") ]);
  check "double crash without restart rejected" false
    (ok [ (0, Fault.Crash "n0"); (5, Fault.Crash "n0") ]);
  check "self-partition rejected" false (ok [ (0, Fault.Partition_on ("n0", "n0")) ]);
  check "partition with unknown peer rejected" false
    (ok [ (0, Fault.Partition_on ("n0", "ghost")) ]);
  check "partition both known is fine" true
    (ok (Fault.partition ~a:"n0" ~b:"h1" ~at:3 ~heal_after:7))

let test_testbed_rejects_bad_plan () =
  let tb = Testbed.make () in
  let raises plan =
    match Testbed.apply_faults tb plan with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check "unknown node raises" true (raises [ (0, Fault.Crash "ghost") ]);
  check "unpaired restart raises" true (raises [ (0, Fault.Restart "n0") ]);
  Testbed.apply_faults tb (Fault.crash_restart ~node:"n0" ~at:(Sim.ms 1) ~down_for:(Sim.ms 1))

(* --- oracles --- *)

let reference () = Scenario.chain.Scenario.sc_run [] None

let test_oracles_pass_on_reference () =
  let obs = reference () in
  let verdicts = Oracle.judge ~reference:obs obs in
  check_int "eight oracles" 8 (List.length verdicts);
  List.iter
    (fun v -> check ("oracle " ^ v.Oracle.v_oracle ^ " passes") true v.Oracle.v_ok)
    verdicts;
  check "reference has effects" true (obs.Oracle.o_effects <> []);
  check "reference drained" true obs.Oracle.o_drained

let test_oracles_flag_divergence () =
  let obs = reference () in
  let failing o tampered =
    List.exists
      (fun v -> v.Oracle.v_oracle = o && not v.Oracle.v_ok)
      (Oracle.judge ~reference:obs tampered)
  in
  check "lost instance flagged" true
    (failing "outcome-equivalence" { obs with Oracle.o_statuses = [] });
  check "duplicated effect flagged by exactly-once" true
    (failing "exactly-once"
       { obs with Oracle.o_effects = List.map (fun (k, n) -> (k, n + 1)) obs.Oracle.o_effects });
  check "duplicated effect flagged by equivalence" true
    (failing "effect-equivalence"
       { obs with Oracle.o_effects = List.map (fun (k, n) -> (k, n + 1)) obs.Oracle.o_effects });
  check "prepared leftovers flagged" true
    (failing "no-stuck-transactions" { obs with Oracle.o_prepared = [ ("n0", 1) ] });
  check "undrained run flagged" true
    (failing "no-stuck-transactions" { obs with Oracle.o_drained = false });
  check "held locks flagged" true
    (failing "no-orphaned-locks" { obs with Oracle.o_locks = [ ("h1", 2) ] });
  check "directory drift flagged" true
    (failing "directory-consistency"
       { obs with Oracle.o_directory = [ ("wf-1", "e1") ]; o_owned = [] })

let test_effects_from_durable_history () =
  Alcotest.(check (list string))
    "complete rows keyed by iid/path"
    [ "wf-1/chain/s1"; "wf-1/chain" ]
    (Oracle.effects_of_history
       [
         (1, "launch", "wf-1 root=chain");
         (2, "complete", "chain/s1 -> out");
         (3, "instance", "wf-1 done(finished)");
         (4, "complete", "chain -> finished");
       ]
       ~iid:"wf-1")

(* --- shrinking --- *)

let test_units_keep_pairs_together () =
  let plan =
    Fault.(
      crash_restart ~node:"a" ~at:10 ~down_for:5
      @+ partition ~a:"a" ~b:"b" ~at:20 ~heal_after:5
      @+ [ (50, Crash "b") ])
  in
  let us = Shrink.units plan in
  check_int "three units" 3 (List.length us);
  List.iter
    (fun u ->
      match u with
      | [ (_, Fault.Crash n); (_, Fault.Restart n') ] ->
        check "crash paired with its restart" true (n = n')
      | [ (_, Fault.Partition_on _); (_, Fault.Partition_off _) ] -> ()
      | [ (_, Fault.Crash "b") ] -> ()
      | _ -> Alcotest.fail "unexpected unit shape")
    us;
  Alcotest.(check int)
    "flattening units restores the plan" (List.length plan)
    (List.length (Shrink.plan_of us))

let test_minimize_to_culprit_unit () =
  (* the predicate only cares about node [a]'s crash: everything else
     must be shrunk away, and what remains is a valid 2-action plan *)
  let fails plan =
    List.exists (function _, Fault.Crash "a" -> true | _ -> false) plan
  in
  let plan =
    Fault.(
      crash_restart ~node:"b" ~at:1 ~down_for:3
      @+ crash_restart ~node:"a" ~at:10 ~down_for:5
      @+ partition ~a:"a" ~b:"b" ~at:20 ~heal_after:5
      @+ crash_restart ~node:"b" ~at:40 ~down_for:3)
  in
  let minimal, runs = Shrink.minimize ~fails plan in
  Alcotest.(check (list (pair int bool)))
    "only the culprit crash/restart survives"
    [ (10, true); (15, false) ]
    (List.map
       (fun (at, a) -> (at, match a with Fault.Crash _ -> true | _ -> false))
       minimal);
  check "still well-formed" true (Fault.validate ~nodes:[ "a"; "b" ] minimal = Ok ());
  check "bounded effort" true (runs <= 64)

let test_minimize_respects_run_cap () =
  let calls = ref 0 in
  let fails _ =
    incr calls;
    true
  in
  let plan =
    List.concat
      (List.init 10 (fun i ->
           Fault.crash_restart ~node:"a" ~at:(i * 100) ~down_for:10))
  in
  let _minimal, runs = Shrink.minimize ~max_runs:5 ~fails plan in
  check "stopped at the cap" true (runs <= 5 && !calls <= 5)

(* --- pinned regression schedules (ported from bin/fault_grid.ml) --- *)

let count_effects rows =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (_, kind, detail) ->
      if kind = "complete" then begin
        let path =
          match String.index_opt detail ' ' with
          | Some i -> String.sub detail 0 i
          | None -> detail
        in
        Hashtbl.replace tally path (1 + Option.value ~default:0 (Hashtbl.find_opt tally path))
      end)
    rows;
  tally

let run_pinned plan =
  let tb = Testbed.make ~engine_config:Scenario.engine_config () in
  let relaunched = ref 0 in
  Event.subscribe (Sim.events tb.Testbed.sim) (fun ~at:_ ~src:_ ev ->
      match ev with Event.Wf_relaunched _ -> incr relaunched | _ -> ());
  Workloads.register ~work:(Sim.ms 5) tb.Testbed.registry;
  Testbed.apply_faults tb plan;
  let script, root = Workloads.chain ~n:6 in
  match
    Testbed.launch_and_run ~until:Scenario.horizon tb ~script ~root
      ~inputs:Workloads.seed_inputs
  with
  | Ok (iid, Wstate.Wf_done { output = "finished"; _ }) ->
    let tally = count_effects (Engine.history tb.Testbed.engine iid) in
    check "effects recorded" true (Hashtbl.length tally > 0);
    Hashtbl.iter
      (fun path n -> check_int ("exactly once: " ^ path) 1 n)
      tally;
    Alcotest.(check (list string))
      "nothing left prepared" []
      (Participant.prepared_txids (Testbed.participant tb "n0"));
    check_int "no orphaned locks" 0 (Participant.locks_held (Testbed.participant tb "n0"));
    !relaunched
  | Ok (_, s) -> Alcotest.failf "unexpected status %a" Wstate.pp_status s
  | Error e -> Alcotest.fail e

let test_pinned_relaunch_orphan_race () =
  (* The schedule that found the launch-transaction/crash race fixed by
     Engine.relaunch_orphan: a crash in the same instant as the launch
     (the fault, planted at setup, wins the same-time tie) loses the
     launch's persist flush; the orphan must be re-persisted after the
     restart and the chain must still run to exactly-once completion. *)
  let relaunches = run_pinned (Fault.crash_restart ~node:"n0" ~at:0 ~down_for:(Sim.ms 10)) in
  check "orphan relaunch path exercised" true (relaunches > 0)

let test_pinned_crash_pair () =
  (* Back-to-back crash/restart cycles mid-run (fault_grid's pair grid):
     the second crash lands while recovery work from the first is still
     settling. *)
  let _ =
    run_pinned
      Fault.(
        crash_restart ~node:"n0" ~at:(Sim.ms 7) ~down_for:(Sim.ms 10)
        @+ crash_restart ~node:"n0" ~at:(Sim.ms 20) ~down_for:(Sim.ms 10))
  in
  ()

(* --- declarative-recovery conformance (pinned) --- *)

(* Each recovery construct holds up under a crash and under a partition:
   the scenario's own judge (stock battery + policy conformance) must
   return only passing verdicts. *)
let conformance_under sc =
  let reference = sc.Scenario.sc_run [] None in
  let judge name plan =
    let obs = sc.Scenario.sc_run plan None in
    let verdicts = sc.Scenario.sc_judge ~reference obs in
    check_int (sc.Scenario.sc_name ^ " battery includes conformance") 9 (List.length verdicts);
    check
      (sc.Scenario.sc_name ^ " conformance verdict present") true
      (List.exists (fun v -> v.Oracle.v_oracle = "policy-conformance") verdicts);
    List.iter
      (fun v ->
        if not v.Oracle.v_ok then
          Alcotest.failf "%s under %s: %s failed: %s" sc.Scenario.sc_name name v.Oracle.v_oracle
            v.Oracle.v_detail)
      verdicts
  in
  judge "crash" (Fault.crash_restart ~node:"h1" ~at:(Sim.ms 20) ~down_for:(Sim.ms 40));
  judge "partition" (Fault.partition ~a:"n0" ~b:"h1" ~at:(Sim.ms 20) ~heal_after:(Sim.ms 120))

let test_recovery_conformance_retry () = conformance_under Scenario.recovery_retry

let test_recovery_conformance_timeout () = conformance_under Scenario.recovery_timeout

let test_recovery_conformance_alternative () = conformance_under Scenario.recovery_alternative

let test_recovery_conformance_compensate () = conformance_under Scenario.recovery_compensate

(* --- replicated repository (pinned) --- *)

(* The acceptance schedule spelled out in the issue: kill the
   repository leader mid-launch — no placement may be lost, no task
   effect duplicated, and the routed owner lookups must still land on
   the recorded owners. Judged by the stock battery, which now includes
   log-linearizability and routed-consistency. *)
let test_pinned_repo_leader_crash () =
  let sc = Scenario.repo_failover in
  let reference = sc.Scenario.sc_run [] None in
  check "reference drained" true reference.Oracle.o_drained;
  check "replica logs observed" true (List.length reference.Oracle.o_logs = 3);
  check "routed owners observed" true (reference.Oracle.o_routed <> []);
  check "placements survive" true (List.length reference.Oracle.o_placements = 6);
  let judge name plan =
    let obs = sc.Scenario.sc_run plan None in
    List.iter
      (fun v ->
        if not v.Oracle.v_ok then
          Alcotest.failf "repo-failover under %s: %s failed: %s" name v.Oracle.v_oracle
            v.Oracle.v_detail)
      (sc.Scenario.sc_judge ~reference obs)
  in
  (* the bootstrap leader dies while the first placement writes are in
     flight, then while it is down a second fault partitions a survivor *)
  judge "leader crash mid-launch"
    (Fault.crash_restart ~node:"repo1" ~at:(Sim.ms 1) ~down_for:(Sim.ms 60));
  judge "leader partition"
    (Fault.partition ~a:"repo1" ~b:"repo2" ~at:(Sim.ms 1) ~heal_after:(Sim.ms 80));
  judge "follower crash"
    (Fault.crash_restart ~node:"repo3" ~at:(Sim.ms 2) ~down_for:(Sim.ms 40))

(* The scripted election scenario must put consensus decision points
   into its own reference run — that is what lets schedules aim faults
   inside the election window. *)
let test_repo_election_reference_has_election () =
  let sc = Scenario.repo_election in
  let c = Decision.collector () in
  let obs = sc.Scenario.sc_run [] (Some c) in
  check "reference drained" true obs.Oracle.o_drained;
  let kinds = List.map fst (Decision.by_kind (Decision.points c)) in
  check "election harvested" true (List.mem "election" kinds);
  check "elected harvested" true (List.mem "elected" kinds);
  check "consensus traffic harvested" true
    (List.exists (fun k -> contains ~sub:"cons." k) kinds)

(* The oracle has teeth: hold each scenario's fault-free run against a
   deliberately mis-specified policy and it must object. *)
let conformance_fails sc spec ~expect =
  let obs = sc.Scenario.sc_run [] None in
  let v = Oracle.policy_conformance ~specs:[ spec ] obs in
  if v.Oracle.v_ok then
    Alcotest.failf "%s: mis-specified policy went unnoticed (%s)" sc.Scenario.sc_name expect;
  check (sc.Scenario.sc_name ^ " names the violation") true (contains ~sub:expect v.Oracle.v_detail)

let mis_spec ?(codes = []) ?substitute ?compensate ?abort_output ~max_attempts () =
  {
    Oracle.ps_path = "flow/work";
    ps_max_attempts = max_attempts;
    ps_codes = codes;
    ps_substitute = substitute;
    ps_compensate = compensate;
    ps_abort_output = abort_output;
  }

let test_oracle_catches_budget_overrun () =
  (* claim a budget of 2 attempts: the third attempt that actually
     succeeds becomes a violation *)
  conformance_fails Scenario.recovery_retry
    (mis_spec ~codes:[ "r.flaky" ] ~max_attempts:2 ())
    ~expect:"attempt"

let test_oracle_catches_undeclared_substitute () =
  (* omit the substitute from the spec: the watchdog's jump to r.sub is
     an unauthorised code *)
  conformance_fails Scenario.recovery_timeout
    (mis_spec ~codes:[ "r.hang" ] ~max_attempts:400 ())
    ~expect:"r.sub"

let test_oracle_catches_unranked_alternative () =
  (* omit r.alive from the ranked codes: the failure-driven band advance
     lands on a code the spec never allowed *)
  conformance_fails Scenario.recovery_alternative
    (mis_spec ~codes:[ "r.dead" ] ~max_attempts:10 ())
    ~expect:"r.alive"

let test_oracle_catches_unexpected_compensation () =
  (* a spec that declares no abort outcome expects zero compensations;
     the durable policy-compensate row is a violation *)
  conformance_fails Scenario.recovery_compensate
    (mis_spec ~codes:[ "r.abort" ] ~compensate:"undo" ~max_attempts:200 ())
    ~expect:"compensat"

let test_oracle_catches_wrong_compensation_target () =
  conformance_fails Scenario.recovery_compensate
    (mis_spec ~codes:[ "r.abort" ] ~compensate:"other" ~abort_output:"failed" ~max_attempts:200 ())
    ~expect:"undo"

(* --- end to end --- *)

let test_explore_chain_end_to_end () =
  let budget =
    {
      Explorer.smoke_budget with
      Explorer.b_single_cap = 8;
      b_pair_cap = 4;
      b_partition_cap = 4;
      b_combo_cap = 2;
      b_soak = 2;
    }
  in
  let r = Explorer.explore_scenario budget Scenario.chain in
  check "a real batch of schedules ran" true (r.Explorer.r_schedules >= 10);
  check_int "no failures on the healthy engine" 0 (List.length r.Explorer.r_failures);
  check "decision points counted" true (r.Explorer.r_points > 20);
  let report = { Explorer.rp_mode = "test"; rp_scenarios = [ r ] } in
  check_int "totals line up" r.Explorer.r_schedules (Explorer.total_schedules report);
  let json = Explorer.to_json report in
  check "json carries the schema tag" true (contains ~sub:"rdal-explore/1" json);
  check "json carries the scenario" true (contains ~sub:"\"name\": \"chain\"" json);
  check "json reports zero failures" true (contains ~sub:"\"failures\": 0" json)

let test_judge_plan_flags_divergence () =
  (* end-to-end wiring of run + judge: against a tampered reference even
     the empty schedule must be flagged *)
  let obs = reference () in
  check "healthy run passes" true
    (Explorer.judge_plan Scenario.chain ~reference:obs [] = []);
  let tampered = { obs with Oracle.o_statuses = [] } in
  check "divergence flagged" true
    (Explorer.judge_plan Scenario.chain ~reference:tampered [] <> [])

let test_generated_schedules_are_valid () =
  let c = Decision.collector () in
  let _ = Scenario.chain.Scenario.sc_run [] (Some c) in
  let pts = Decision.points c in
  let scheds =
    Explorer.schedules Explorer.smoke_budget Scenario.chain pts
      ~makespan:(Decision.makespan c)
  in
  check "schedules generated" true (List.length scheds > 50);
  List.iter
    (fun s ->
      match Fault.validate ~nodes:Scenario.chain.Scenario.sc_nodes s.Explorer.s_plan with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid generated plan (%s): %s" s.Explorer.s_kind e)
    scheds

let () =
  Alcotest.run "explore"
    [
      ( "decision",
        [
          Alcotest.test_case "harvest from reference run" `Quick test_decision_points_harvested;
          Alcotest.test_case "classification filter" `Quick test_classify_filters_noise;
        ] );
      ( "validation",
        [
          Alcotest.test_case "Fault.validate" `Quick test_plan_validation;
          Alcotest.test_case "Testbed.apply_faults rejects" `Quick test_testbed_rejects_bad_plan;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "pass on reference" `Quick test_oracles_pass_on_reference;
          Alcotest.test_case "flag divergence" `Quick test_oracles_flag_divergence;
          Alcotest.test_case "effects from durable history" `Quick test_effects_from_durable_history;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "unit pairing" `Quick test_units_keep_pairs_together;
          Alcotest.test_case "minimize to culprit" `Quick test_minimize_to_culprit_unit;
          Alcotest.test_case "run cap" `Quick test_minimize_respects_run_cap;
        ] );
      ( "pinned",
        [
          Alcotest.test_case "relaunch-orphan race" `Quick test_pinned_relaunch_orphan_race;
          Alcotest.test_case "crash pair" `Quick test_pinned_crash_pair;
          Alcotest.test_case "repo leader crash" `Quick test_pinned_repo_leader_crash;
          Alcotest.test_case "repo election in reference" `Quick
            test_repo_election_reference_has_election;
        ] );
      ( "recovery-policy",
        [
          Alcotest.test_case "retry conforms under faults" `Quick test_recovery_conformance_retry;
          Alcotest.test_case "timeout conforms under faults" `Quick test_recovery_conformance_timeout;
          Alcotest.test_case "alternative conforms under faults" `Quick
            test_recovery_conformance_alternative;
          Alcotest.test_case "compensate conforms under faults" `Quick
            test_recovery_conformance_compensate;
          Alcotest.test_case "catches budget overrun" `Quick test_oracle_catches_budget_overrun;
          Alcotest.test_case "catches undeclared substitute" `Quick
            test_oracle_catches_undeclared_substitute;
          Alcotest.test_case "catches unranked alternative" `Quick
            test_oracle_catches_unranked_alternative;
          Alcotest.test_case "catches unexpected compensation" `Quick
            test_oracle_catches_unexpected_compensation;
          Alcotest.test_case "catches wrong compensation target" `Quick
            test_oracle_catches_wrong_compensation_target;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "explore the chain" `Quick test_explore_chain_end_to_end;
          Alcotest.test_case "judge wiring" `Quick test_judge_plan_flags_divergence;
          Alcotest.test_case "generated plans valid" `Quick test_generated_schedules_are_valid;
        ] );
    ]
