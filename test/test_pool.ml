(* Tests for the domain pool and parallel exploration: canonical result
   order independent of [jobs], identical verdicts and shrunk
   counterexamples between --jobs 1 and --jobs 4, and a poisoned oracle
   in one worker neither wedging the pool nor perturbing the report. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

(* --- Pool.map basics --- *)

let test_map_matches_sequential () =
  let items = Array.init 97 (fun i -> i) in
  let f x = (x * 7919) mod 1009 in
  let seq = Array.map f items in
  List.iter
    (fun jobs -> check ("jobs " ^ string_of_int jobs) true (Pool.map ~jobs f items = seq))
    [ 1; 2; 4; 8 ]

let test_map_edge_shapes () =
  check "empty" true (Pool.map ~jobs:4 (fun x -> x) [||] = [||]);
  check "singleton" true (Pool.map ~jobs:4 string_of_int [| 42 |] = [| "42" |]);
  check "more jobs than items" true (Pool.map ~jobs:16 succ [| 1; 2; 3 |] = [| 2; 3; 4 |])

let test_poisoned_item_does_not_wedge () =
  let n = 40 in
  let completed = Atomic.make 0 in
  let f i =
    if i = 3 || i = 7 then failwith (Printf.sprintf "poison-%d" i)
    else begin
      Atomic.incr completed;
      i
    end
  in
  match Pool.map ~jobs:4 f (Array.init n (fun i -> i)) with
  | _ -> Alcotest.fail "expected the poisoned exception to propagate"
  | exception Failure msg ->
    (* all healthy items still ran to completion on the other workers,
       and the re-raised exception is the lowest-index one whichever
       worker hit it first *)
    check_string "deterministic exception choice" "poison-3" msg;
    check_int "no item abandoned" (n - 2) (Atomic.get completed)

(* --- parallel exploration determinism --- *)

(* Chain scenario with a deterministically poisoned run: a few percent
   of non-empty plans raise instead of running. judge_plan must convert
   the exception into a failing "no-exception" verdict in whichever
   worker domain it lands, and the report must stay byte-identical
   across jobs counts — including the shrunk counterexamples, since the
   poison predicate (and so the shrinker's fails oracle) is a pure
   function of the plan. *)
let poisoned sc =
  {
    sc with
    Scenario.sc_name = sc.Scenario.sc_name ^ "-poisoned";
    sc_run =
      (fun plan c ->
        if plan <> [] && Hashtbl.hash plan mod 17 = 0 then failwith "poisoned oracle"
        else sc.Scenario.sc_run plan c);
  }

let tiny_budget =
  {
    Explorer.smoke_budget with
    Explorer.b_single_cap = 30;
    b_pair_cap = 10;
    b_partition_cap = 10;
    b_combo_cap = 6;
    b_soak = 8;
    b_shrink_runs = 16;
  }

let report_json ~jobs sc =
  let r = Explorer.explore ~jobs ~mode:"test" tiny_budget [ sc ] in
  (r, Explorer.to_json r)

let test_jobs_byte_identical_clean () =
  let _, j1 = report_json ~jobs:1 Scenario.chain in
  let _, j4 = report_json ~jobs:4 Scenario.chain in
  check_string "clean sweep reports identical" j1 j4

let test_jobs_byte_identical_with_failures () =
  let sc = poisoned Scenario.chain in
  let r1, j1 = report_json ~jobs:1 sc in
  let r4, j4 = report_json ~jobs:4 sc in
  check "poison produced failures" true (Explorer.total_failures r1 > 0);
  check_int "same failure count" (Explorer.total_failures r1) (Explorer.total_failures r4);
  (* byte-identical JSON covers verdict sets, failure order and the
     minimized counterexamples *)
  check_string "failing sweep reports identical" j1 j4;
  List.iter
    (fun s ->
      List.iter
        (fun f ->
          check "exception surfaced as no-exception verdict" true
            (List.exists (fun v -> v.Oracle.v_oracle = "no-exception") f.Explorer.f_verdicts);
          check "counterexample shrunk to a sub-plan" true
            (List.length f.Explorer.f_min_plan <= List.length f.Explorer.f_plan))
        s.Explorer.r_failures)
    r1.Explorer.rp_scenarios

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "matches sequential map" `Quick test_map_matches_sequential;
          Alcotest.test_case "edge shapes" `Quick test_map_edge_shapes;
          Alcotest.test_case "poisoned item doesn't wedge" `Quick test_poisoned_item_does_not_wedge;
        ] );
      ( "explore",
        [
          Alcotest.test_case "jobs 1 = jobs 4 (clean)" `Quick test_jobs_byte_identical_clean;
          Alcotest.test_case "jobs 1 = jobs 4 (failures + shrink)" `Quick
            test_jobs_byte_identical_with_failures;
        ] );
    ]
