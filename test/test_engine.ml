(* End-to-end tests of the workflow execution service: the paper's three
   applications under every scenario, task transition rules (Fig 3),
   alternative sources, input-set priority, timers, marks, compensation,
   repeats, dynamic reconfiguration, online upgrade, and fault tolerance
   (host crashes, engine crash + recovery, lossy networks). *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_str = Alcotest.(check string)

let run_script ?config ?engine_config ?seed ?nodes ~register ~script ~root ~inputs () =
  let tb = Testbed.make ?config ?engine_config ?seed ?nodes () in
  register tb.Testbed.registry;
  match Testbed.launch_and_run tb ~script ~root ~inputs with
  | Ok (iid, status) -> (tb, iid, status)
  | Error e -> Alcotest.failf "launch failed: %s" e

let expect_done ~output status =
  match status with
  | Wstate.Wf_done { output = o; objects } ->
    check_str "outcome" output o;
    objects
  | Wstate.Wf_running -> Alcotest.fail "instance still running"
  | Wstate.Wf_failed reason -> Alcotest.failf "instance failed: %s" reason

let obj_str objects name =
  match List.assoc_opt name objects with
  | Some { Value.payload = Value.Str s; _ } -> s
  | Some { Value.payload = v; _ } -> Format.asprintf "%a" Value.pp v
  | None -> Alcotest.failf "no object %s" name

(* --- Fig 1: quickstart diamond --- *)

let seed_input n = [ ("seed", Value.obj ~cls:"Data" (Value.Int n)) ]

let test_quickstart_completes () =
  let _, _, status =
    run_script ~register:(Impls.register_quickstart ?work:None)
      ~script:Paper_scripts.quickstart ~root:Paper_scripts.quickstart_root
      ~inputs:(seed_input 21) ()
  in
  let objects = expect_done ~output:"finished" status in
  check_str "t4 joined both doubled streams" "[42; 42]" (obj_str objects "data")

let test_quickstart_ordering_matches_fig1 () =
  let tb, _, _ =
    run_script ~register:(Impls.register_quickstart ?work:None)
      ~script:Paper_scripts.quickstart ~root:Paper_scripts.quickstart_root
      ~inputs:(seed_input 1) ()
  in
  let trace = Engine.trace tb.Testbed.engine in
  let at kind detail =
    match Trace.first trace ~kind ~detail with
    | Some e -> e.Trace.at
    | None -> Alcotest.failf "no trace entry %s %s" kind detail
  in
  let t1_done = at "complete" "diamond/t1 -> produced" in
  let t2_start = at "start" "diamond/t2 (attempt 1)" in
  let t3_start = at "start" "diamond/t3 (attempt 1)" in
  let t2_done = at "complete" "diamond/t2 -> transformed" in
  let t3_done = at "complete" "diamond/t3 -> transformed" in
  let t4_start = at "start" "diamond/t4 (attempt 1)" in
  check "t2 after t1" true (t2_start >= t1_done);
  check "t3 after t1" true (t3_start >= t1_done);
  check "t2, t3 concurrent (same release time)" true (t2_start = t3_start);
  check "t4 after both" true (t4_start >= t2_done && t4_start >= t3_done)

(* --- §5.1 service impact --- *)

let alarms_input = [ ("alarmsSource", Value.obj ~cls:"AlarmsSource" (Value.Str "alarm-feed")) ]

let run_impact scenario =
  let _, _, status =
    run_script
      ~register:(Impls.register_service_impact ?work:None ~scenario)
      ~script:Paper_scripts.service_impact ~root:Paper_scripts.service_impact_root
      ~inputs:alarms_input ()
  in
  status

let test_impact_resolved () =
  let objects = expect_done ~output:"resolved" (run_impact Impls.Impact_resolved) in
  check_str "resolution report" "reroute+reschedule" (obj_str objects "resolutionReport")

let test_impact_not_resolved () =
  ignore (expect_done ~output:"notResolved" (run_impact Impls.Impact_not_resolved))

let test_impact_failure_fan_in () =
  ignore
    (expect_done ~output:"serviceImpactApplicationFailure"
       (run_impact Impls.Impact_correlator_fails))

let test_impact_no_fault_stalls () =
  (* The paper's script has no outcome for "no fault": the application
     legitimately waits forever. The engine reports quiescence. *)
  let tb, iid, status =
    run_script
      ~register:(Impls.register_service_impact ?work:None ~scenario:Impls.Impact_no_fault)
      ~script:Paper_scripts.service_impact ~root:Paper_scripts.service_impact_root
      ~inputs:alarms_input ()
  in
  check "still running" true (status = Wstate.Wf_running);
  check "quiescent (stuck)" true (Engine.quiescent tb.Testbed.engine iid)

(* --- §5.2 process order --- *)

let order_input = [ ("order", Value.obj ~cls:"Order" (Value.Str "order-42")) ]

let run_order scenario =
  run_script
    ~register:(Impls.register_process_order ?work:None ~scenario)
    ~script:Paper_scripts.process_order ~root:Paper_scripts.process_order_root
    ~inputs:order_input ()

let test_order_completes () =
  let _, _, status = run_order Impls.order_ok in
  let objects = expect_done ~output:"orderCompleted" status in
  check_str "dispatch note flows to the compound outcome" "parcel-001"
    (obj_str objects "dispatchNote")

let test_order_concurrent_auth_and_stock () =
  let tb, _, _ = run_order Impls.order_ok in
  let trace = Engine.trace tb.Testbed.engine in
  let at detail =
    match Trace.first trace ~kind:"start" ~detail with
    | Some e -> e.Trace.at
    | None -> Alcotest.failf "no start for %s" detail
  in
  check "auth and stock released together" true
    (at "processOrderApplication/paymentAuthorisation (attempt 1)"
    = at "processOrderApplication/checkStock (attempt 1)")

let test_order_cancelled_not_authorised () =
  let _, _, status = run_order { Impls.order_ok with Impls.authorised = false } in
  ignore (expect_done ~output:"orderCancelled" status)

let test_order_cancelled_no_stock () =
  let _, _, status = run_order { Impls.order_ok with Impls.in_stock = false } in
  ignore (expect_done ~output:"orderCancelled" status)

let test_order_cancelled_dispatch_aborts () =
  let tb, iid, status = run_order { Impls.order_ok with Impls.dispatch_ok = false } in
  ignore (expect_done ~output:"orderCancelled" status);
  (* dispatchFailed is an abort outcome: recorded as such on the task *)
  match
    Engine.task_state tb.Testbed.engine iid ~path:[ "processOrderApplication"; "dispatch" ]
  with
  | Some (Wstate.Done { kind = Ast.Abort_outcome; output; _ }) ->
    check_str "abort outcome name" "dispatchFailed" output
  | other ->
    Alcotest.failf "unexpected dispatch state: %s"
      (match other with
      | Some s -> Format.asprintf "%a" Wstate.pp_task_state s
      | None -> "none")

let test_order_payment_capture_never_runs_when_cancelled () =
  let tb, iid, _ = run_order { Impls.order_ok with Impls.authorised = false } in
  check "paymentCapture never started" true
    (Engine.task_state tb.Testbed.engine iid
       ~path:[ "processOrderApplication"; "paymentCapture" ]
    = None)

(* --- §5.3 business trip --- *)

let user_input = [ ("user", Value.obj ~cls:"User" (Value.Str "fred")) ]

let run_trip ?engine_config scenario =
  run_script ?engine_config
    ~register:(Impls.register_business_trip ?work:None ~scenario)
    ~script:Paper_scripts.business_trip ~root:Paper_scripts.business_trip_root ~inputs:user_input
    ()

let test_trip_smooth () =
  let tb, iid, status = run_trip Impls.trip_smooth in
  let objects = expect_done ~output:"done" status in
  check_str "tickets carry plane and hotel" "tickets[seat-12A@flight-klm, hotel-county]"
    (obj_str objects "tickets");
  (* the toPay mark was released during the run *)
  let marks = Engine.marks_of tb.Testbed.engine iid ~path:[ "tripReservation" ] in
  check "toPay mark fired" true (List.mem_assoc "toPay" marks)

let test_trip_mark_before_completion () =
  let tb, _, _ = run_trip Impls.trip_smooth in
  let trace = Engine.trace tb.Testbed.engine in
  let mark_at =
    match Trace.first trace ~kind:"mark" ~detail:"tripReservation toPay" with
    | Some e -> e.Trace.at
    | None -> Alcotest.fail "no toPay mark in trace"
  in
  let done_at =
    match Trace.find trace ~kind:"instance" with
    | [ e ] -> e.Trace.at
    | _ -> Alcotest.fail "expected exactly one instance completion"
  in
  check "mark released before the instance completed" true (mark_at <= done_at)

let test_trip_compensation_and_retry_loop () =
  let scenario = { Impls.trip_smooth with Impls.hotel_fails_rounds = 2 } in
  let tb, iid, status = run_trip scenario in
  ignore (expect_done ~output:"done" status);
  let trace = Engine.trace tb.Testbed.engine in
  let completions detail = List.length (List.filter (fun (e : Trace.entry) -> e.Trace.detail = detail) (Trace.find trace ~kind:"complete")) in
  check_int "flightCancellation compensated twice"
    2
    (completions "tripReservation/businessReservation/flightCancellation -> cancelled");
  let repeats = Trace.find trace ~kind:"repeat" in
  check_int "businessReservation retried twice" 2 (List.length repeats);
  (* final incarnation recorded attempt 3 *)
  match Engine.task_state tb.Testbed.engine iid ~path:[ "tripReservation"; "businessReservation" ] with
  | Some (Wstate.Done { attempt; output; _ }) ->
    check_str "final outcome" "success" output;
    check_int "third attempt succeeded" 3 attempt
  | other ->
    Alcotest.failf "unexpected BR state: %s"
      (match other with Some s -> Format.asprintf "%a" Wstate.pp_task_state s | None -> "none")

let test_trip_inner_hotel_repeats () =
  let scenario = { Impls.trip_smooth with Impls.hotel_inner_retries = 2 } in
  let tb, _, status = run_trip scenario in
  ignore (expect_done ~output:"done" status);
  let trace = Engine.trace tb.Testbed.engine in
  let hotel_repeats =
    List.filter
      (fun (e : Trace.entry) ->
        e.Trace.kind = "repeat"
        && e.Trace.detail <> ""
        && String.length e.Trace.detail >= 5
        &&
        let has_hotel =
          let needle = "hotelReservation" in
          let n = String.length needle and h = String.length e.Trace.detail in
          let rec at i = i + n <= h && (String.sub e.Trace.detail i n = needle || at (i + 1)) in
          at 0
        in
        has_hotel)
      (Trace.entries trace)
  in
  check_int "hotel repeated twice within the round" 2 (List.length hotel_repeats)

let test_trip_no_flight_cancelled () =
  let scenario = { Impls.trip_smooth with Impls.flights_found = (false, false, false) } in
  let _, _, status = run_trip scenario in
  ignore (expect_done ~output:"cancelled" status)

let test_trip_data_failure_cancelled () =
  let scenario = { Impls.trip_smooth with Impls.data_ok = false } in
  let _, _, status = run_trip scenario in
  ignore (expect_done ~output:"cancelled" status)

let test_trip_first_available_flight_wins () =
  (* only query2 finds a flight: the flightFound binding's alternative
     list must pick it up even though query1 is listed first *)
  let scenario = { Impls.trip_smooth with Impls.flights_found = (false, true, false) } in
  let _, _, status = run_trip scenario in
  let objects = expect_done ~output:"done" status in
  check_str "flight from query2" "tickets[seat-12A@flight-ba, hotel-county]"
    (obj_str objects "tickets")

(* --- timers (§4.2 idiom) --- *)

let request_input = [ ("request", Value.obj ~cls:"Request" (Value.Str "ping")) ]

let run_timeout responder_delay =
  run_script
    ~register:(Impls.register_timeout_demo ?work:None ~responder_delay)
    ~script:Paper_scripts.timeout_demo ~root:Paper_scripts.timeout_demo_root
    ~inputs:request_input ()

let test_timer_normal_path () =
  let _, _, status = run_timeout (Sim.ms 5) in
  ignore (expect_done ~output:"finished" status)

let test_timer_expires () =
  let _, _, status = run_timeout (Sim.ms 500) in
  ignore (expect_done ~output:"expired" status)

(* --- fault tolerance --- *)

let fast_engine =
  { Engine.default_config with Engine.default_deadline = Sim.ms 80; system_max_attempts = 20 }

let test_remote_host_crash_redispatch () =
  (* dispatch runs on a second node that crashes mid-execution; the
     watchdog re-dispatches after recovery *)
  let tb = Testbed.make ~engine_config:fast_engine ~nodes:[ "n0"; "n1" ] () in
  Impls.register_process_order ~work:(Sim.ms 30) ~scenario:Impls.order_ok tb.Testbed.registry;
  let remote_script =
    (* place dispatch on n1 *)
    let marker = {|implementation { "code" is "refDispatch" }|} in
    let replacement = {|implementation { "code" is "refDispatch", "location" is "n1" }|} in
    let src = Paper_scripts.process_order in
    let rec replace s =
      let ml = String.length marker in
      let rec find i = if i + ml > String.length s then None else if String.sub s i ml = marker then Some i else find (i + 1) in
      match find 0 with
      | None -> s
      | Some i -> replace (String.sub s 0 i ^ replacement ^ String.sub s (i + ml) (String.length s - i - ml))
    in
    replace src
  in
  (* crash n1 while dispatch is executing, recover later *)
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 15) (fun () -> Testbed.crash tb "n1"));
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 120) (fun () -> Testbed.recover tb "n1"));
  match
    Testbed.launch_and_run tb ~script:remote_script ~root:Paper_scripts.process_order_root
      ~inputs:order_input
  with
  | Ok (_, status) ->
    ignore (expect_done ~output:"orderCompleted" status);
    check "watchdog retried" true (Engine.system_retries_total tb.Testbed.engine >= 1)
  | Error e -> Alcotest.failf "launch: %s" e

let test_engine_crash_recovery_completes () =
  let tb = Testbed.make ~engine_config:fast_engine () in
  Impls.register_process_order ~work:(Sim.ms 20) ~scenario:Impls.order_ok tb.Testbed.registry;
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 10) (fun () -> Testbed.crash tb "n0"));
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 200) (fun () -> Testbed.recover tb "n0"));
  match
    Testbed.launch_and_run tb ~script:Paper_scripts.process_order
      ~root:Paper_scripts.process_order_root ~inputs:order_input
  with
  | Ok (iid, status) ->
    ignore (expect_done ~output:"orderCompleted" status);
    check "engine recovered" true (Engine.recoveries_total tb.Testbed.engine >= 1);
    check "instance survived the crash durably" true
      (Engine.status tb.Testbed.engine iid = Some status)
  | Error e -> Alcotest.failf "launch: %s" e

(* Declared retry budgets are durable: crash the engine while a policy
   backoff is pending and verify the remaining wait and the remaining
   budget are recovered — the attempt counter never restarts. *)
let backoff_script =
  {|
class Data;
taskclass Step {
    inputs { input main { data of class Data } };
    outputs { outcome done { data of class Data } }
};
taskclass Flow {
    inputs { input main { data of class Data } };
    outputs { outcome finished { data of class Data } }
};
compoundtask flow of taskclass Flow {
    task work of taskclass Step {
        implementation { "code" is "t.flaky" };
        recovery { retry 5 backoff 60 max 60 };
        inputs { input main { inputobject data from { data of task flow if input main } } }
    };
    outputs { outcome finished { outputobject data from { data of task work if output done } } }
}
|}

let test_policy_backoff_survives_crash () =
  let tb = Testbed.make ~engine_config:fast_engine () in
  let observed = ref [] in
  let flaky (ctx : Registry.context) =
    observed := (Sim.now tb.Testbed.sim, ctx.Registry.attempt) :: !observed;
    if ctx.Registry.attempt < 3 then failwith "flaky"
    else Registry.finish ~work:(Sim.ms 5) "done" [ ("data", Value.Str "ok") ]
  in
  Registry.bind tb.Testbed.registry ~code:"t.flaky" flaky;
  (* attempt 1 fails by ~15ms, then a 60ms backoff is pending; the crash
     at 40ms lands inside that wait *)
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 40) (fun () -> Testbed.crash tb "n0"));
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 150) (fun () -> Testbed.recover tb "n0"));
  match
    Testbed.launch_and_run tb ~script:backoff_script ~root:"flow" ~inputs:Workloads.seed_inputs
  with
  | Error e -> Alcotest.failf "launch: %s" e
  | Ok (iid, status) ->
    ignore (expect_done ~output:"finished" status);
    check "engine recovered" true (Engine.recoveries_total tb.Testbed.engine >= 1);
    check "policy retries counted" true (Engine.policy_retries_total tb.Testbed.engine >= 2);
    let attempts = List.rev_map snd !observed in
    (* strictly increasing: the persisted counter carried over the crash,
       it was never reset to 1 *)
    let rec increasing = function
      | a :: (b :: _ as rest) -> a < b && increasing rest
      | _ -> true
    in
    check "attempts strictly increasing across the crash" true (increasing attempts);
    check "succeeded on a later attempt" true (List.exists (fun a -> a >= 3) attempts);
    (* budget ceiling: 1 primary + 5 declared retries *)
    check "never exceeded the declared budget" true (List.for_all (fun a -> a <= 6) attempts);
    (* the pre-crash failure scheduled the backoff before the crash; the
       next attempt only ran after recovery, i.e. the wait was resumed,
       not discarded *)
    let retries =
      List.filter_map
        (fun (at, kind, _) -> if kind = "policy-retry" then Some at else None)
        (Engine.history tb.Testbed.engine iid)
    in
    check "first policy retry recorded before the crash" true
      (match retries with at :: _ -> at < Sim.ms 40 | [] -> false);
    (match List.rev !observed with
    | (_, 1) :: (at2, 2) :: _ -> check "attempt 2 waited out the recovery" true (at2 >= Sim.ms 150)
    | _ -> Alcotest.fail "expected attempt 1 then attempt 2")

let test_lossy_network_still_completes () =
  let config = { Network.default_config with Network.loss = 0.25 } in
  let tb = Testbed.make ~config ~engine_config:fast_engine ~seed:7L ~nodes:[ "n0"; "n1" ] () in
  Impls.register_business_trip ~work:(Sim.ms 3) ~scenario:Impls.trip_smooth tb.Testbed.registry;
  match
    Testbed.launch_and_run tb ~script:Paper_scripts.business_trip
      ~root:Paper_scripts.business_trip_root ~inputs:user_input
  with
  | Ok (_, status) -> ignore (expect_done ~output:"done" status)
  | Error e -> Alcotest.failf "launch: %s" e

let test_abort_auto_retry () =
  (* an atomic task aborting due to a transient condition is restarted
     automatically: "retries" is honoured *)
  let script =
    {|
class A;
taskclass Flaky {
    inputs { input main { a of class A } };
    outputs { outcome ok { }; abort outcome oops { } }
};
taskclass Root {
    inputs { input main { a of class A } };
    outputs { outcome done { }; outcome gaveUp { } }
};
compoundtask root of taskclass Root {
    task flaky of taskclass Flaky {
        implementation { "code" is "flaky", "retries" is "3" };
        inputs { input main { inputobject a from { a of task root if input main } } }
    };
    outputs {
        outcome done { notification from { task flaky if output ok } };
        outcome gaveUp { notification from { task flaky if output oops } }
    }
}
|}
  in
  let tb = Testbed.make () in
  let flaky (ctx : Registry.context) =
    if ctx.Registry.attempt <= 3 then Registry.finish "oops" [] else Registry.finish "ok" []
  in
  Registry.bind tb.Testbed.registry ~code:"flaky" flaky;
  match
    Testbed.launch_and_run tb ~script ~root:"root"
      ~inputs:[ ("a", Value.obj ~cls:"A" Value.Unit) ]
  with
  | Ok (_, status) -> ignore (expect_done ~output:"done" status)
  | Error e -> Alcotest.failf "launch: %s" e

let test_abort_after_mark_is_protocol_violation () =
  let script =
    {|
class A;
taskclass Leaky {
    inputs { input main { a of class A } };
    outputs {
        outcome ok { };
        mark progress { p of class A }
    }
};
taskclass Root {
    inputs { input main { a of class A } };
    outputs { outcome done { } }
};
compoundtask root of taskclass Root {
    task leaky of taskclass Leaky {
        implementation { "code" is "leaky" };
        inputs { input main { inputobject a from { a of task root if input main } } }
    };
    outputs { outcome done { notification from { task leaky if output ok } } }
}
|}
  in
  (* Leaky's class is non-atomic (no abort outcome), but the impl tries
     to finish with an undeclared abort-like output after marking: the
     engine rejects a finish in a mark output and fails the task. *)
  let tb = Testbed.make () in
  let leaky _ctx =
    {
      Registry.steps =
        [ Registry.Work (Sim.ms 1); Registry.Emit_mark { Registry.output = "progress"; objects = [ ("p", Value.Unit) ] } ];
      finish = { Registry.output = "progress"; objects = [] };
    }
  in
  Registry.bind tb.Testbed.registry ~code:"leaky" leaky;
  match
    Testbed.launch_and_run tb ~script ~root:"root" ~inputs:[ ("a", Value.obj ~cls:"A" Value.Unit) ]
  with
  | Ok (iid, status) -> (
    check "instance cannot complete" true (status = Wstate.Wf_running);
    match Engine.task_state tb.Testbed.engine iid ~path:[ "root"; "leaky" ] with
    | Some (Wstate.Failed _) -> ()
    | other ->
      Alcotest.failf "expected failed task, got %s"
        (match other with Some s -> Format.asprintf "%a" Wstate.pp_task_state s | None -> "none"))
  | Error e -> Alcotest.failf "launch: %s" e

let test_impl_mark_early_release () =
  (* a downstream task consumes a mark while the producer is still
     executing (early release, Fig 2/3) *)
  let script =
    {|
class A;
taskclass Producer {
    inputs { input main { a of class A } };
    outputs {
        outcome finished { };
        mark partial { p of class A }
    }
};
taskclass Eager {
    inputs { input main { p of class A } };
    outputs { outcome got { } }
};
taskclass Root {
    inputs { input main { a of class A } };
    outputs { outcome done { } }
};
compoundtask root of taskclass Root {
    task producer of taskclass Producer {
        implementation { "code" is "producer" };
        inputs { input main { inputobject a from { a of task root if input main } } }
    };
    task eager of taskclass Eager {
        implementation { "code" is "eager" };
        inputs { input main { inputobject p from { p of task producer if output partial } } }
    };
    outputs { outcome done { notification from { task eager if output got } } }
}
|}
  in
  let tb = Testbed.make () in
  let producer _ctx =
    {
      Registry.steps =
        [
          Registry.Work (Sim.ms 2);
          Registry.Emit_mark { Registry.output = "partial"; objects = [ ("p", Value.Str "early") ] };
          Registry.Work (Sim.ms 200);
        ];
      finish = { Registry.output = "finished"; objects = [] };
    }
  in
  Registry.bind tb.Testbed.registry ~code:"producer" producer;
  Registry.bind tb.Testbed.registry ~code:"eager" (Registry.const "got" []);
  match
    Testbed.launch_and_run tb ~script ~root:"root" ~inputs:[ ("a", Value.obj ~cls:"A" Value.Unit) ]
  with
  | Ok (iid, status) ->
    ignore (expect_done ~output:"done" status);
    let trace = Engine.trace tb.Testbed.engine in
    check "eager completed off the mark" true
      (Trace.first trace ~kind:"complete" ~detail:"root/eager -> got" <> None);
    (* the compound reached its outcome while the producer was still
       executing: the producer is abandoned, exactly the early-release
       point of Fig 2/3 *)
    (match Engine.task_state tb.Testbed.engine iid ~path:[ "root"; "producer" ] with
    | Some (Wstate.Running _) -> ()
    | other ->
      Alcotest.failf "expected producer still running, got %s"
        (match other with Some s -> Format.asprintf "%a" Wstate.pp_task_state s | None -> "none"))
  | Error e -> Alcotest.failf "launch: %s" e

(* --- input set priority and alternatives --- *)

let test_first_declared_set_wins () =
  let script =
    {|
class A;
taskclass Dual {
    inputs {
        input first { a of class A };
        input second { a of class A }
    };
    outputs { outcome done { } }
};
taskclass Root { inputs { input main { a of class A } }; outputs { outcome done { } } };
compoundtask root of taskclass Root {
    task dual of taskclass Dual {
        implementation { "code" is "dual" };
        inputs {
            input first { inputobject a from { a of task root if input main } };
            input second { inputobject a from { a of task root if input main } }
        }
    };
    outputs { outcome done { notification from { task dual if output done } } }
}
|}
  in
  let tb = Testbed.make () in
  let seen = ref "" in
  Registry.bind tb.Testbed.registry ~code:"dual" (fun ctx ->
      seen := ctx.Registry.input_set;
      Registry.finish "done" []);
  (match
     Testbed.launch_and_run tb ~script ~root:"root" ~inputs:[ ("a", Value.obj ~cls:"A" Value.Unit) ]
   with
  | Ok (_, status) -> ignore (expect_done ~output:"done" status)
  | Error e -> Alcotest.failf "launch: %s" e);
  check_str "first declared set chosen" "first" !seen

(* --- dynamic reconfiguration (§3) --- *)

let reconfigure_ok tb transform =
  let result = ref None in
  (match Engine.instances tb.Testbed.engine with
  | [ iid ] -> Engine.reconfigure tb.Testbed.engine iid ~transform (fun r -> result := Some r)
  | _ -> Alcotest.fail "expected exactly one instance");
  Testbed.run tb;
  match !result with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "reconfigure failed: %s" e
  | None -> Alcotest.fail "reconfigure never completed"

let test_reconfigure_add_task_mid_run () =
  (* §3's scenario: add t5 depending on t2 and t4 while the workflow runs *)
  let tb = Testbed.make () in
  Impls.register_quickstart ~work:(Sim.ms 50) tb.Testbed.registry;
  Registry.bind tb.Testbed.registry ~code:"quickstart.audit" (Registry.const "audited" []);
  let audit_decl =
    {|
task t5 of taskclass Audit {
    implementation { "code" is "quickstart.audit" };
    inputs { input main {
        notification from { task t2 if output transformed }
    } }
}
|}
  in
  let add_audit_class script =
    (* t5 needs a taskclass: inject it at the top *)
    let cls =
      Parser.script
        "taskclass Audit { inputs { input main { } }; outputs { outcome audited { } } }"
    in
    Ok (cls @ script)
  in
  let iid =
    match
      Engine.launch tb.Testbed.engine ~script:Paper_scripts.quickstart
        ~root:Paper_scripts.quickstart_root ~inputs:(seed_input 3)
    with
    | Ok iid -> iid
    | Error e -> Alcotest.failf "launch: %s" e
  in
  (* run a little, reconfigure while t2..t4 still pending *)
  Sim.run ~until:(Sim.ms 20) tb.Testbed.sim;
  reconfigure_ok tb (fun ast ->
      match add_audit_class ast with
      | Ok ast -> Reconfig.add_constituent ~scope:[ "diamond" ] ~decl:audit_decl ast
      | Error e -> Error e);
  Testbed.run tb;
  (match Engine.task_state tb.Testbed.engine iid ~path:[ "diamond"; "t5" ] with
  | Some (Wstate.Done { output; _ }) -> check_str "t5 ran" "audited" output
  | other ->
    Alcotest.failf "t5 state: %s"
      (match other with Some s -> Format.asprintf "%a" Wstate.pp_task_state s | None -> "none"));
  check_int "one reconfiguration" 1 (Engine.reconfigs_total tb.Testbed.engine)

let test_reconfigure_rejects_invalid () =
  let tb = Testbed.make () in
  Impls.register_quickstart tb.Testbed.registry;
  let iid =
    match
      Engine.launch tb.Testbed.engine ~script:Paper_scripts.quickstart
        ~root:Paper_scripts.quickstart_root ~inputs:(seed_input 3)
    with
    | Ok iid -> iid
    | Error e -> Alcotest.failf "launch: %s" e
  in
  let bad_decl =
    {|
task t6 of taskclass Transform {
    implementation { "code" is "x" };
    inputs { input main { inputobject data from { data of task ghost if output transformed } } }
}
|}
  in
  let result = ref None in
  Engine.reconfigure tb.Testbed.engine iid
    ~transform:(Reconfig.add_constituent ~scope:[ "diamond" ] ~decl:bad_decl)
    (fun r -> result := Some r);
  Testbed.run tb;
  (match !result with
  | Some (Error msg) -> check "mentions unknown task" true (String.length msg > 0)
  | Some (Ok ()) -> Alcotest.fail "invalid reconfiguration accepted"
  | None -> Alcotest.fail "no reconfigure result");
  check_int "no reconfiguration recorded" 0 (Engine.reconfigs_total tb.Testbed.engine)

let test_online_upgrade_rebind () =
  (* upgrade an implementation between two runs without touching the
     script: registry-level rebinding (paper §3) *)
  let tb = Testbed.make () in
  Impls.register_quickstart tb.Testbed.registry;
  let run () =
    match
      Testbed.launch_and_run tb ~script:Paper_scripts.quickstart
        ~root:Paper_scripts.quickstart_root ~inputs:(seed_input 5)
    with
    | Ok (_, status) -> obj_str (expect_done ~output:"finished" status) "data"
    | Error e -> Alcotest.failf "launch: %s" e
  in
  let before = run () in
  Registry.bind tb.Testbed.registry ~code:"quickstart.transform"
    (fun (ctx : Registry.context) ->
      let data =
        match List.assoc_opt "data" ctx.Registry.inputs with
        | Some { Value.payload = Value.List items; _ } -> items
        | _ -> []
      in
      let tripled = List.map (function Value.Int n -> Value.Int (3 * n) | v -> v) data in
      Registry.finish "transformed" [ ("data", Value.List tripled) ])
    ;
  let after = run () in
  check_str "before upgrade doubles" "[10; 10]" before;
  check_str "after upgrade triples" "[15; 15]" after

let test_sub_workflow_binding () =
  (* a task whose "code" is bound to a compound schema: the engine opens
     it as a nested scope (implementation-as-script, §4.3) *)
  let tb = Testbed.make () in
  Impls.register_service_impact ~scenario:Impls.Impact_resolved tb.Testbed.registry;
  let outer =
    {|
class AlarmsSource;
class ResolutionReport;
taskclass ServiceImpactApplication {
    inputs { input main { alarmsSource of class AlarmsSource } };
    outputs {
        outcome resolved { resolutionReport of class ResolutionReport };
        outcome notResolved { };
        outcome serviceImpactApplicationFailure { }
    }
};
taskclass Outer {
    inputs { input main { alarmsSource of class AlarmsSource } };
    outputs { outcome done { report of class ResolutionReport } }
};
compoundtask outer of taskclass Outer {
    task impact of taskclass ServiceImpactApplication {
        implementation { "code" is "impactScript" };
        inputs { input main {
            inputobject alarmsSource from { alarmsSource of task outer if input main }
        } }
    };
    outputs {
        outcome done {
            outputobject report from { resolutionReport of task impact if output resolved }
        }
    }
}
|}
  in
  (* bind "impactScript" to the §5.1 compound *)
  let sub =
    match Frontend.compile Paper_scripts.service_impact ~root:Paper_scripts.service_impact_root with
    | Ok s -> s
    | Error e -> Alcotest.failf "compile sub: %s" (Frontend.error_to_string e)
  in
  Registry.bind_script tb.Testbed.registry ~code:"impactScript" sub;
  match Testbed.launch_and_run tb ~script:outer ~root:"outer" ~inputs:alarms_input with
  | Ok (_, status) ->
    let objects = expect_done ~output:"done" status in
    check_str "nested script's report surfaced" "reroute+reschedule" (obj_str objects "report")
  | Error e -> Alcotest.failf "launch: %s" e


let test_gc_finished_instance () =
  let tb = Testbed.make () in
  Impls.register_process_order ~scenario:Impls.order_ok tb.Testbed.registry;
  let iid, status =
    match
      Testbed.launch_and_run tb ~script:Paper_scripts.process_order
        ~root:Paper_scripts.process_order_root ~inputs:order_input
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "launch: %s" e
  in
  ignore (expect_done ~output:"orderCompleted" status);
  let result = ref None in
  Engine.gc tb.Testbed.engine iid (fun r -> result := Some r);
  Testbed.run tb;
  check "gc succeeded" true (!result = Some (Ok ()));
  check "instance forgotten" true (Engine.status tb.Testbed.engine iid = None);
  check "no instances listed" true (Engine.instances tb.Testbed.engine = []);
  (* a crash + recovery must not resurrect it *)
  Testbed.crash tb "n0";
  Testbed.recover tb "n0";
  Testbed.run tb;
  check "stays gone after recovery" true (Engine.status tb.Testbed.engine iid = None)

let test_gc_refuses_running () =
  let tb = Testbed.make () in
  Impls.register_process_order ~work:(Sim.ms 50) ~scenario:Impls.order_ok tb.Testbed.registry;
  let iid =
    match
      Engine.launch tb.Testbed.engine ~script:Paper_scripts.process_order
        ~root:Paper_scripts.process_order_root ~inputs:order_input
    with
    | Ok iid -> iid
    | Error e -> Alcotest.failf "launch: %s" e
  in
  Sim.run ~until:(Sim.ms 10) tb.Testbed.sim;
  let result = ref None in
  Engine.gc tb.Testbed.engine iid (fun r -> result := Some r);
  Testbed.run tb;
  check "gc refused" true (match !result with Some (Error _) -> true | _ -> false);
  check "instance finished normally afterwards" true
    (match Engine.status tb.Testbed.engine iid with Some (Wstate.Wf_done _) -> true | _ -> false)

(* The paper (§3): administrative applications — here, a reconfiguration
   agent — can themselves be workflows. A workflow task's implementation
   observes another running instance and reconfigures it. *)
let test_admin_workflow_reconfigures_another () =
  let tb = Testbed.make () in
  Impls.register_quickstart ~work:(Sim.ms 60) tb.Testbed.registry;
  Registry.bind tb.Testbed.registry ~code:"quickstart.audit" (Registry.const "audited" []);
  let target =
    match
      Engine.launch tb.Testbed.engine ~script:Paper_scripts.quickstart
        ~root:Paper_scripts.quickstart_root ~inputs:(seed_input 2)
    with
    | Ok iid -> iid
    | Error e -> Alcotest.failf "launch target: %s" e
  in
  (* the admin workflow: a single task whose implementation performs the
     reconfiguration of [target] as its side effect *)
  let admin_script =
    {|
class Req;
taskclass Reconfigure {
    inputs { input main { req of class Req } };
    outputs { outcome reconfigured { }; outcome reconfigFailed { } }
};
taskclass Admin {
    inputs { input main { req of class Req } };
    outputs { outcome done { }; outcome failed { } }
};
compoundtask admin of taskclass Admin {
    task agent of taskclass Reconfigure {
        implementation { "code" is "admin.reconfigure" };
        inputs { input main { inputobject req from { req of task admin if input main } } }
    };
    outputs {
        outcome done { notification from { task agent if output reconfigured } };
        outcome failed { notification from { task agent if output reconfigFailed } }
    }
}
|}
  in
  let outcome = ref None in
  Registry.bind tb.Testbed.registry ~code:"admin.reconfigure" (fun _ctx ->
      Engine.reconfigure tb.Testbed.engine target
        ~transform:(fun ast ->
          let cls =
            Parser.script
              "taskclass Audit { inputs { input main { } }; outputs { outcome audited { } } }"
          in
          Reconfig.add_constituent ~scope:[ "diamond" ]
            ~decl:
              "task t5 of taskclass Audit { implementation { \"code\" is \"quickstart.audit\" }; inputs { input main { notification from { task t2 if output transformed } } } }"
            (cls @ ast))
        (fun r -> outcome := Some r);
      (* the task takes long enough for the reconfiguration txn to land *)
      Registry.finish ~work:(Sim.ms 20) "reconfigured" []);
  (match
     Testbed.launch_and_run tb ~script:admin_script ~root:"admin"
       ~inputs:[ ("req", Value.obj ~cls:"Req" (Value.Str "add-t5")) ]
   with
  | Ok (_, status) -> ignore (expect_done ~output:"done" status)
  | Error e -> Alcotest.failf "admin launch: %s" e);
  check "reconfiguration applied by the admin workflow" true (!outcome = Some (Ok ()));
  match Engine.task_state tb.Testbed.engine target ~path:[ "diamond"; "t5" ] with
  | Some (Wstate.Done _) -> ()
  | other ->
    Alcotest.failf "t5: %s"
      (match other with Some s -> Format.asprintf "%a" Wstate.pp_task_state s | None -> "none")


let test_crash_during_launch_commit () =
  (* Regression (found by fault_grid): a crash 2ms after launch lands
     while the launch transaction is undecided; presumed abort kills it,
     and the engine must re-persist the accepted launch at recovery. *)
  let tb = Testbed.make ~engine_config:fast_engine () in
  Impls.register_process_order ~scenario:Impls.order_ok tb.Testbed.registry;
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 2) (fun () -> Testbed.crash tb "n0"));
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 40) (fun () -> Testbed.recover tb "n0"));
  match
    Testbed.launch_and_run ~until:(Sim.sec 60) tb ~script:Paper_scripts.process_order
      ~root:Paper_scripts.process_order_root ~inputs:order_input
  with
  | Ok (_, status) -> ignore (expect_done ~output:"orderCompleted" status)
  | Error e -> Alcotest.failf "launch: %s" e

let test_partition_between_engine_and_host () =
  (* dispatch crosses a partition that heals later: RPC retries and the
     watchdog must get the task through *)
  let tb = Testbed.make ~engine_config:fast_engine ~nodes:[ "n0"; "host" ] () in
  Impls.register_quickstart ~work:(Sim.ms 5) tb.Testbed.registry;
  let placed =
    let marker = {|implementation { "code" is "quickstart.join" }|} in
    let replacement = {|implementation { "code" is "quickstart.join", "location" is "host" }|} in
    let src = Paper_scripts.quickstart in
    let ml = String.length marker in
    let rec go s i =
      if i + ml > String.length s then s
      else if String.sub s i ml = marker then
        String.sub s 0 i ^ replacement ^ String.sub s (i + ml) (String.length s - i - ml)
      else go s (i + 1)
    in
    go src 0
  in
  Network.partition_on tb.Testbed.net "n0" "host";
  ignore
    (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 300) (fun () ->
         Network.partition_off tb.Testbed.net "n0" "host"));
  match
    Testbed.launch_and_run ~until:(Sim.sec 60) tb ~script:placed
      ~root:Paper_scripts.quickstart_root ~inputs:(seed_input 4)
  with
  | Ok (_, status) -> ignore (expect_done ~output:"finished" status)
  | Error e -> Alcotest.failf "launch: %s" e

let test_many_concurrent_instances () =
  let tb = Testbed.make () in
  Impls.register_process_order ~scenario:Impls.order_ok tb.Testbed.registry;
  let iids =
    List.init 40 (fun _ ->
        match
          Engine.launch tb.Testbed.engine ~script:Paper_scripts.process_order
            ~root:Paper_scripts.process_order_root ~inputs:order_input
        with
        | Ok iid -> iid
        | Error e -> Alcotest.failf "launch: %s" e)
  in
  Testbed.run tb;
  List.iter
    (fun iid ->
      match Engine.status tb.Testbed.engine iid with
      | Some (Wstate.Wf_done { output = "orderCompleted"; _ }) -> ()
      | other ->
        Alcotest.failf "%s: %s" iid
          (match other with Some s -> Format.asprintf "%a" Wstate.pp_status s | None -> "none"))
    iids;
  check_int "forty instances listed" 40 (List.length (Engine.instances tb.Testbed.engine));
  check_int "4 dispatches each" (40 * 4) (Engine.dispatches_total tb.Testbed.engine)


let test_compact_bounds_storage () =
  let tb = Testbed.make () in
  Impls.register_process_order ~scenario:Impls.order_ok tb.Testbed.registry;
  let run_and_gc () =
    match
      Testbed.launch_and_run tb ~script:Paper_scripts.process_order
        ~root:Paper_scripts.process_order_root ~inputs:order_input
    with
    | Ok (iid, Wstate.Wf_done _) ->
      Engine.gc tb.Testbed.engine iid (fun _ -> ());
      Testbed.run tb
    | Ok _ | Error _ -> Alcotest.fail "instance did not complete"
  in
  let wal_after n =
    for _ = 1 to n do
      run_and_gc ()
    done;
    Engine.compact tb.Testbed.engine;
    ()
  in
  wal_after 3;
  let p =
    (* the testbed's participant lives on n0; measure its object store *)
    Kvstore.wal_length (Participant.store (Testbed.participant tb "n0"))
  in
  wal_after 6;
  let p' = Kvstore.wal_length (Participant.store (Testbed.participant tb "n0")) in
  check "storage bounded across gc+compact cycles" true (p' <= p + 2)


let test_user_cancel_instance () =
  let tb = Testbed.make () in
  Impls.register_process_order ~work:(Sim.ms 100) ~scenario:Impls.order_ok tb.Testbed.registry;
  let iid =
    match
      Engine.launch tb.Testbed.engine ~script:Paper_scripts.process_order
        ~root:Paper_scripts.process_order_root ~inputs:order_input
    with
    | Ok iid -> iid
    | Error e -> Alcotest.failf "launch: %s" e
  in
  Sim.run ~until:(Sim.ms 20) tb.Testbed.sim;
  let result = ref None in
  Engine.cancel tb.Testbed.engine iid ~reason:"operator request" (fun r -> result := Some r);
  Testbed.run tb;
  check "cancel accepted" true (!result = Some (Ok ()));
  (match Engine.status tb.Testbed.engine iid with
  | Some (Wstate.Wf_failed reason) -> check "reason recorded" true (String.length reason > 0)
  | other ->
    Alcotest.failf "status: %s"
      (match other with Some s -> Format.asprintf "%a" Wstate.pp_status s | None -> "none"));
  (* durable across a crash *)
  Testbed.crash tb "n0";
  Testbed.recover tb "n0";
  Testbed.run tb;
  check "cancellation durable" true
    (match Engine.status tb.Testbed.engine iid with Some (Wstate.Wf_failed _) -> true | _ -> false)

let test_user_abort_task_feeds_fan_in () =
  (* forcing dispatch to abort while waiting/running must produce its
     declared abort outcome, driving the orderCancelled fan-in (Fig 3's
     user-forced abort from the wait state) *)
  let tb = Testbed.make () in
  Impls.register_process_order ~work:(Sim.ms 80) ~scenario:Impls.order_ok tb.Testbed.registry;
  let iid =
    match
      Engine.launch tb.Testbed.engine ~script:Paper_scripts.process_order
        ~root:Paper_scripts.process_order_root ~inputs:order_input
    with
    | Ok iid -> iid
    | Error e -> Alcotest.failf "launch: %s" e
  in
  (* dispatch is still waiting for paymentAuthorisation/checkStock *)
  Sim.run ~until:(Sim.ms 10) tb.Testbed.sim;
  let result = ref None in
  Engine.abort_task tb.Testbed.engine iid ~path:[ "processOrderApplication"; "dispatch" ]
    (fun r -> result := Some r);
  Testbed.run tb;
  check "abort accepted" true (!result = Some (Ok ()));
  match Engine.status tb.Testbed.engine iid with
  | Some (Wstate.Wf_done { output = "orderCancelled"; _ }) -> ()
  | other ->
    Alcotest.failf "status: %s"
      (match other with Some s -> Format.asprintf "%a" Wstate.pp_status s | None -> "none")

let test_admin_client_over_rpc () =
  let tb = Testbed.make ~nodes:[ "n0"; "console" ] () in
  Admin.serve tb.Testbed.engine;
  Impls.register_process_order ~work:(Sim.ms 100) ~scenario:Impls.order_ok tb.Testbed.registry;
  let iid =
    match
      Engine.launch tb.Testbed.engine ~script:Paper_scripts.process_order
        ~root:Paper_scripts.process_order_root ~inputs:order_input
    with
    | Ok iid -> iid
    | Error e -> Alcotest.failf "launch: %s" e
  in
  let client = Admin.Client.create ~rpc:tb.Testbed.rpc ~src:"console" ~engine_node:"n0" in
  Sim.run ~until:(Sim.ms 20) tb.Testbed.sim;
  let listed = ref None and st = ref None and tasks = ref None in
  Admin.Client.list_instances client (fun r -> listed := Some r);
  Admin.Client.status client ~iid (fun r -> st := Some r);
  Admin.Client.task_states client ~iid (fun r -> tasks := Some r);
  Sim.run ~until:(Sim.ms 40) tb.Testbed.sim;
  check "listed over rpc" true (!listed = Some (Ok [ iid ]));
  check "status running over rpc" true (!st = Some (Ok (Some Wstate.Wf_running)));
  (match !tasks with
  | Some (Ok states) -> check "task states over rpc" true (List.length states >= 2)
  | _ -> Alcotest.fail "task states failed");
  let cancelled = ref None in
  Admin.Client.cancel client ~iid ~reason:"console" (fun r -> cancelled := Some r);
  Testbed.run tb;
  check "cancel over rpc accepted" true (!cancelled = Some (Ok ()));
  check "cancelled" true
    (match Engine.status tb.Testbed.engine iid with Some (Wstate.Wf_failed _) -> true | _ -> false)


let test_if_input_sibling_source () =
  (* the paper's "i3 of task t2 if input main": a task consumes the
     object another task RECEIVED, not produced — available as soon as
     the sibling has chosen its input set *)
  let script =
    {|
class A;
taskclass Worker {
    inputs { input main { a of class A } };
    outputs { outcome done { } }
};
taskclass Observer {
    inputs { input main { a of class A } };
    outputs { outcome saw { a of class A } }
};
taskclass Root {
    inputs { input main { a of class A } };
    outputs { outcome done { a of class A } }
};
compoundtask root of taskclass Root {
    task worker of taskclass Worker {
        implementation { "code" is "slow.worker" };
        inputs { input main { inputobject a from { a of task root if input main } } }
    };
    task observer of taskclass Observer {
        implementation { "code" is "observer" };
        inputs { input main { inputobject a from { a of task worker if input main } } }
    };
    outputs { outcome done { outputobject a from { a of task observer if output saw } } }
}
|}
  in
  let tb = Testbed.make () in
  (* the worker runs for a long time; the observer must get the worker's
     input as soon as the worker STARTS, and finish long before it *)
  Registry.bind tb.Testbed.registry ~code:"slow.worker" (Registry.const ~work:(Sim.ms 500) "done" []);
  Registry.bind tb.Testbed.registry ~code:"observer" (fun (ctx : Registry.context) ->
      Registry.finish "saw" [ ("a", (List.assoc "a" ctx.Registry.inputs).Value.payload) ]);
  match
    Testbed.launch_and_run tb ~script ~root:"root"
      ~inputs:[ ("a", Value.obj ~cls:"A" (Value.Str "payload")) ]
  with
  | Ok (_, status) ->
    let objects = expect_done ~output:"done" status in
    check_str "observer forwarded the worker's received input" "payload"
      (obj_str objects "a");
    let tr = Engine.trace tb.Testbed.engine in
    let observer_done =
      match Trace.first tr ~kind:"complete" ~detail:"root/observer -> saw" with
      | Some e -> e.Trace.at
      | None -> Alcotest.fail "observer never completed"
    in
    check "observer finished while the worker still ran" true (observer_done < Sim.ms 500)
  | Error e -> Alcotest.failf "launch: %s" e

let test_launch_rejects_invalid_script () =
  let tb = Testbed.make () in
  (match
     Engine.launch tb.Testbed.engine ~script:"task t of taskclass Nope { }" ~root:"t" ~inputs:[]
   with
  | Error msg -> check "validation error surfaced" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "invalid script accepted");
  match
    Engine.launch tb.Testbed.engine ~script:Paper_scripts.quickstart ~root:"ghost" ~inputs:[]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown root accepted"

let test_missing_external_input_stalls () =
  (* launching without the root's input object: nothing can start *)
  let tb = Testbed.make () in
  Impls.register_quickstart tb.Testbed.registry;
  match
    Testbed.launch_and_run tb ~script:Paper_scripts.quickstart
      ~root:Paper_scripts.quickstart_root ~inputs:[]
  with
  | Ok (iid, status) ->
    check "still running" true (status = Wstate.Wf_running);
    check "quiescent" true (Engine.quiescent tb.Testbed.engine iid)
  | Error e -> Alcotest.failf "launch: %s" e


let test_long_haul_soak () =
  (* "executions could span arbitrarily large durations" (paper sec 1):
     a workflow idles on a 2-simulated-hour timer, survives 30 crash
     cycles meanwhile, and storage stays bounded via gc+compact of the
     instances completed along the way *)
  let script =
    {|
class Go;
class Timer;
taskclass LongWait {
    inputs {
        input main { go of class Go };
        input timeout { t of class Timer }
    };
    outputs { outcome released { }; outcome nudged { } }
};
taskclass Root {
    inputs { input main { go of class Go } };
    outputs { outcome done { } }
};
compoundtask root of taskclass Root {
    task waiter of taskclass LongWait {
        implementation { "code" is "soak.waiter", "timeout" is "7200000" };
        inputs {
            input main { };
            input timeout { }
        }
    };
    outputs { outcome done { notification from { task waiter if output released } } }
}
|}
  in
  let engine_config =
    { Engine.default_config with Engine.default_deadline = Sim.sec 2; system_max_attempts = 100 }
  in
  let tb = Testbed.make ~engine_config () in
  Registry.bind tb.Testbed.registry ~code:"soak.waiter" (fun (ctx : Registry.context) ->
      if ctx.Registry.input_set = "timeout" then Registry.finish "released" []
      else Registry.finish "nudged" []);
  Impls.register_process_order ~scenario:Impls.order_ok tb.Testbed.registry;
  (* periodic crashes: every 10 simulated minutes, down 5 s, 30 cycles *)
  Testbed.apply_faults tb
    (Fault.periodic_crashes ~node:"n0" ~period:(Sim.sec 600) ~down_for:(Sim.sec 5) ~count:30);
  let soak_iid =
    match
      Engine.launch tb.Testbed.engine ~script ~root:"root"
        ~inputs:[ ("go", Value.obj ~cls:"Go" Value.Unit) ]
    with
    | Ok iid -> iid
    | Error e -> Alcotest.failf "launch: %s" e
  in
  (* churn: short instances run, complete, and are collected throughout *)
  let churn_at minute =
    ignore
      (Sim.at tb.Testbed.sim ~time:(Sim.sec (minute * 60)) (fun () ->
           if Node.up (Testbed.node tb "n0") then begin
             match
               Engine.launch tb.Testbed.engine ~script:Paper_scripts.process_order
                 ~root:Paper_scripts.process_order_root ~inputs:order_input
             with
             | Ok iid ->
               Engine.on_complete tb.Testbed.engine iid (fun _ ->
                   Engine.gc tb.Testbed.engine iid (fun _ ->
                       Engine.compact tb.Testbed.engine))
             | Error _ -> ()
           end))
  in
  List.iter churn_at [ 3; 23; 43; 63; 83; 103 ];
  Sim.run ~until:(Sim.sec 9000) tb.Testbed.sim;
  (match Engine.status tb.Testbed.engine soak_iid with
  | Some (Wstate.Wf_done { output; _ }) -> check_str "released after 2 simulated hours" "done" output
  | other ->
    Alcotest.failf "soak status: %s"
      (match other with Some s -> Format.asprintf "%a" Wstate.pp_status s | None -> "none"));
  check "a dozen recoveries happened" true (Engine.recoveries_total tb.Testbed.engine >= 12);
  let wal = Kvstore.wal_length (Participant.store (Testbed.participant tb "n0")) in
  check "storage bounded after gc+compact churn" true (wal < 400)


let test_history_survives_crash_and_gc () =
  let tb = Testbed.make ~engine_config:fast_engine () in
  Impls.register_process_order ~work:(Sim.ms 20) ~scenario:Impls.order_ok tb.Testbed.registry;
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 30) (fun () -> Testbed.crash tb "n0"));
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 120) (fun () -> Testbed.recover tb "n0"));
  match
    Testbed.launch_and_run tb ~script:Paper_scripts.process_order
      ~root:Paper_scripts.process_order_root ~inputs:order_input
  with
  | Ok (iid, status) ->
    ignore (expect_done ~output:"orderCompleted" status);
    let rows = Engine.history tb.Testbed.engine iid in
    let kinds = List.map (fun (_, kind, _) -> kind) rows in
    check "launch recorded" true (List.mem "launch" kinds);
    check "completions recorded across the crash" true
      (List.length (List.filter (( = ) "complete") kinds) >= 5);
    check "final status recorded" true (List.mem "instance" kinds);
    (* rows are time-ordered *)
    let times = List.map (fun (at, _, _) -> at) rows in
    check "chronological" true (List.sort compare times = times);
    (* gc removes the audit log with the instance *)
    Engine.gc tb.Testbed.engine iid (fun _ -> ());
    Testbed.run tb;
    check "collected with the instance" true (Engine.history tb.Testbed.engine iid = [])
  | Error e -> Alcotest.failf "launch: %s" e

let test_history_over_admin_rpc () =
  let tb = Testbed.make ~nodes:[ "n0"; "console" ] () in
  Admin.serve tb.Testbed.engine;
  Impls.register_process_order ~scenario:Impls.order_ok tb.Testbed.registry;
  match
    Testbed.launch_and_run tb ~script:Paper_scripts.process_order
      ~root:Paper_scripts.process_order_root ~inputs:order_input
  with
  | Ok (iid, _) ->
    let client = Admin.Client.create ~rpc:tb.Testbed.rpc ~src:"console" ~engine_node:"n0" in
    let rows = ref None in
    Admin.Client.history client ~iid (fun r -> rows := Some r);
    Testbed.run tb;
    (match !rows with
    | Some (Ok rows) -> check "audit log fetched remotely" true (List.length rows >= 7)
    | _ -> Alcotest.fail "history over rpc failed")
  | Error e -> Alcotest.failf "launch: %s" e

(* --- observability spine --- *)

let test_gantt_recorder_matches_trace_render () =
  (* the typed event recorder and the legacy trace must reconstruct the
     same chart for the same run *)
  let tb = Testbed.make () in
  Impls.register_quickstart ~work:(Sim.ms 20) tb.Testbed.registry;
  let recorder = Gantt.recorder () in
  Gantt.attach recorder (Sim.events tb.Testbed.sim);
  (match
     Testbed.launch_and_run tb ~script:Paper_scripts.quickstart
       ~root:Paper_scripts.quickstart_root ~inputs:(seed_input 1)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "launch: %s" e);
  let from_trace = Gantt.render (Engine.trace tb.Testbed.engine) in
  check "chart non-empty" true (from_trace <> "");
  check_str "typed recorder renders the same chart" from_trace
    (Gantt.render_events recorder)

let test_metrics_mirror_counter_accessors () =
  let tb, _, status =
    run_script ~register:(Impls.register_quickstart ?work:None)
      ~script:Paper_scripts.quickstart ~root:Paper_scripts.quickstart_root
      ~inputs:(seed_input 1) ()
  in
  ignore (expect_done ~output:"finished" status);
  let m = Engine.metrics tb.Testbed.engine in
  check_int "dispatches counter backs the accessor"
    (Engine.dispatches_total tb.Testbed.engine)
    (Metrics.value m "engine.dispatches");
  check_int "completions counter backs the accessor"
    (Engine.completions_total tb.Testbed.engine)
    (Metrics.value m "engine.completions");
  check "every dispatch crossed the event bus" true (Metrics.value m "engine.dispatches" = 4);
  check "rpc attempts counted" true (Metrics.value m "events.rpc-sent" > 0);
  check "2pc resolutions counted" true (Metrics.value m "events.txn-resolved" > 0);
  check "task durations sampled" true
    (List.length (Metrics.samples m "engine.task_duration_us") >= 4)

(* --- commit fast lanes & batched persistence --- *)

let crash_recovery_run ~batch =
  let engine_config = { fast_engine with Engine.batch_persists = batch } in
  let tb = Testbed.make ~engine_config () in
  Impls.register_process_order ~work:(Sim.ms 20) ~scenario:Impls.order_ok tb.Testbed.registry;
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 10) (fun () -> Testbed.crash tb "n0"));
  ignore (Sim.schedule tb.Testbed.sim ~delay:(Sim.ms 200) (fun () -> Testbed.recover tb "n0"));
  match
    Testbed.launch_and_run tb ~script:Paper_scripts.process_order
      ~root:Paper_scripts.process_order_root ~inputs:order_input
  with
  | Ok (iid, status) ->
    ignore (expect_done ~output:"orderCompleted" status);
    (status, List.sort compare (Engine.task_states tb.Testbed.engine iid))
  | Error e -> Alcotest.failf "launch: %s" e

let test_batched_persistence_crash_equivalence () =
  (* coalescing a poll pass's persists into one transaction must not
     change what survives a crash: the batch commits or aborts as a
     whole, so recovery replays the same prefix either way *)
  let s_batched, t_batched = crash_recovery_run ~batch:true in
  let s_plain, t_plain = crash_recovery_run ~batch:false in
  check "same final status" true (s_batched = s_plain);
  check "same task states after recovery" true (t_batched = t_plain)

let test_persist_batching_counted () =
  (* two launches arriving in the same poll pass persist in one
     transaction; the coalescing is observable and both instances
     still run to completion *)
  let tb = Testbed.make () in
  Impls.register_quickstart ?work:None tb.Testbed.registry;
  let launch () =
    match
      Engine.launch tb.Testbed.engine ~script:Paper_scripts.quickstart
        ~root:Paper_scripts.quickstart_root ~inputs:(seed_input 3)
    with
    | Ok iid -> iid
    | Error e -> Alcotest.failf "launch: %s" e
  in
  let a = launch () in
  let b = launch () in
  Testbed.run tb;
  let done_ iid =
    match Engine.status tb.Testbed.engine iid with
    | Some status -> ignore (expect_done ~output:"finished" status)
    | None -> Alcotest.failf "instance %s vanished" iid
  in
  done_ a;
  done_ b;
  check "same-timestep persists were coalesced" true
    (Metrics.value (Engine.metrics tb.Testbed.engine) "engine.persist_batched" >= 1)

let test_scope_and_task_histograms_split () =
  (* scope completions land in their own histogram, so the task one
     counts exactly one sample per leaf task *)
  let tb, _, status =
    run_script ~register:(Impls.register_quickstart ?work:None)
      ~script:Paper_scripts.quickstart ~root:Paper_scripts.quickstart_root
      ~inputs:(seed_input 2) ()
  in
  ignore (expect_done ~output:"finished" status);
  let m = Engine.metrics tb.Testbed.engine in
  check_int "one sample per leaf task" 4
    (List.length (Metrics.samples m "engine.task_duration_us"));
  check "root scope sampled separately" true
    (List.length (Metrics.samples m "engine.scope_duration_us") >= 1);
  check "single-node runs ride the loopback lane" true (Metrics.value m "rpc.loopback" > 0);
  check "single-participant commits take one-phase" true (Metrics.value m "txn.one_phase" > 0)

(* --- determinism --- *)

let test_same_seed_same_trace () =
  let run () =
    let tb, _, status = run_trip { Impls.trip_smooth with Impls.hotel_fails_rounds = 1 } in
    let trace = Engine.trace tb.Testbed.engine in
    ( status,
      List.map (fun (e : Trace.entry) -> (e.Trace.at, e.Trace.kind, e.Trace.detail)) (Trace.entries trace) )
  in
  let s1, t1 = run () in
  let s2, t2 = run () in
  check "same status" true (s1 = s2);
  check "identical traces" true (t1 = t2)

let () =
  Alcotest.run "engine"
    [
      ( "fig1",
        [
          Alcotest.test_case "quickstart completes" `Quick test_quickstart_completes;
          Alcotest.test_case "fig1 ordering" `Quick test_quickstart_ordering_matches_fig1;
        ] );
      ( "service-impact",
        [
          Alcotest.test_case "resolved" `Quick test_impact_resolved;
          Alcotest.test_case "not resolved" `Quick test_impact_not_resolved;
          Alcotest.test_case "failure fan-in" `Quick test_impact_failure_fan_in;
          Alcotest.test_case "no fault stalls" `Quick test_impact_no_fault_stalls;
        ] );
      ( "process-order",
        [
          Alcotest.test_case "completes" `Quick test_order_completes;
          Alcotest.test_case "concurrent auth+stock" `Quick test_order_concurrent_auth_and_stock;
          Alcotest.test_case "not authorised" `Quick test_order_cancelled_not_authorised;
          Alcotest.test_case "no stock" `Quick test_order_cancelled_no_stock;
          Alcotest.test_case "dispatch aborts" `Quick test_order_cancelled_dispatch_aborts;
          Alcotest.test_case "capture never runs" `Quick test_order_payment_capture_never_runs_when_cancelled;
        ] );
      ( "business-trip",
        [
          Alcotest.test_case "smooth" `Quick test_trip_smooth;
          Alcotest.test_case "mark before completion" `Quick test_trip_mark_before_completion;
          Alcotest.test_case "compensation + retry loop" `Quick test_trip_compensation_and_retry_loop;
          Alcotest.test_case "inner hotel repeats" `Quick test_trip_inner_hotel_repeats;
          Alcotest.test_case "no flight" `Quick test_trip_no_flight_cancelled;
          Alcotest.test_case "data failure" `Quick test_trip_data_failure_cancelled;
          Alcotest.test_case "first available flight" `Quick test_trip_first_available_flight_wins;
        ] );
      ( "timers",
        [
          Alcotest.test_case "normal path" `Quick test_timer_normal_path;
          Alcotest.test_case "timeout path" `Quick test_timer_expires;
        ] );
      ( "fault-tolerance",
        [
          Alcotest.test_case "host crash redispatch" `Quick test_remote_host_crash_redispatch;
          Alcotest.test_case "engine crash recovery" `Quick test_engine_crash_recovery_completes;
          Alcotest.test_case "policy backoff survives crash" `Quick test_policy_backoff_survives_crash;
          Alcotest.test_case "lossy network" `Quick test_lossy_network_still_completes;
          Alcotest.test_case "abort auto-retry" `Quick test_abort_auto_retry;
          Alcotest.test_case "crash during launch commit" `Quick test_crash_during_launch_commit;
          Alcotest.test_case "partition engine/host" `Quick test_partition_between_engine_and_host;
          Alcotest.test_case "forty concurrent instances" `Quick test_many_concurrent_instances;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "if-input sibling source" `Quick test_if_input_sibling_source;
          Alcotest.test_case "launch rejects invalid" `Quick test_launch_rejects_invalid_script;
          Alcotest.test_case "missing external input stalls" `Quick
            test_missing_external_input_stalls;
        ] );
      ( "transitions",
        [
          Alcotest.test_case "abort after mark" `Quick test_abort_after_mark_is_protocol_violation;
          Alcotest.test_case "mark early release" `Quick test_impl_mark_early_release;
          Alcotest.test_case "first declared set wins" `Quick test_first_declared_set_wins;
        ] );
      ( "reconfiguration",
        [
          Alcotest.test_case "add task mid-run" `Quick test_reconfigure_add_task_mid_run;
          Alcotest.test_case "rejects invalid" `Quick test_reconfigure_rejects_invalid;
          Alcotest.test_case "online upgrade" `Quick test_online_upgrade_rebind;
          Alcotest.test_case "sub-workflow binding" `Quick test_sub_workflow_binding;
          Alcotest.test_case "admin workflow reconfigures" `Quick
            test_admin_workflow_reconfigures_another;
        ] );
      ( "administration",
        [
          Alcotest.test_case "persistent history" `Quick test_history_survives_crash_and_gc;
          Alcotest.test_case "history over rpc" `Quick test_history_over_admin_rpc;
          Alcotest.test_case "cancel instance" `Quick test_user_cancel_instance;
          Alcotest.test_case "user abort drives fan-in" `Quick test_user_abort_task_feeds_fan_in;
          Alcotest.test_case "admin client over rpc" `Quick test_admin_client_over_rpc;
        ] );
      ( "gc",
        [
          Alcotest.test_case "collect finished" `Quick test_gc_finished_instance;
          Alcotest.test_case "refuse running" `Quick test_gc_refuses_running;
          Alcotest.test_case "compaction bounds storage" `Quick test_compact_bounds_storage;
          Alcotest.test_case "long-haul soak (2 simulated hours)" `Quick test_long_haul_soak;
        ] );
      ( "observability",
        [
          Alcotest.test_case "typed gantt matches trace render" `Quick
            test_gantt_recorder_matches_trace_render;
          Alcotest.test_case "metrics mirror counters" `Quick
            test_metrics_mirror_counter_accessors;
        ] );
      ( "fast-lanes",
        [
          Alcotest.test_case "batched persistence crash equivalence" `Quick
            test_batched_persistence_crash_equivalence;
          Alcotest.test_case "same-poll persists coalesced" `Quick test_persist_batching_counted;
          Alcotest.test_case "scope/task histograms split" `Quick
            test_scope_and_task_histograms_split;
        ] );
      ("determinism", [ Alcotest.test_case "same seed same trace" `Quick test_same_seed_same_trace ]);
    ]
