(* Tests for the simulated network: wire codec, datagram semantics
   (latency, loss, partitions, crashes) and the RPC layer (timeout,
   retry, de-duplication). *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let make_net ?(config = Network.default_config) ?(seed = 5L) ids =
  let sim = Sim.create ~seed () in
  let net = Network.create ~config sim in
  let nodes = List.map (fun id -> Network.add_node net ~id) ids in
  (sim, net, nodes)

(* --- Wire --- *)

let test_wire_roundtrips () =
  let enc = Wire.(triple string (list int) (option bool)) in
  let dec = Wire.(decode (d_triple d_string (d_list d_int) (d_option d_bool))) in
  let value = ("hello:world:3:", [ 1; -2; 30 ], Some true) in
  check "roundtrip" true (dec (enc value) = value)

let test_wire_rejects_garbage () =
  let attempt input = match Wire.(decode d_string) input with exception Wire.Malformed _ -> true | _ -> false in
  check "no separator" true (attempt "abc");
  check "bad length" true (attempt "x:abc");
  check "truncated" true (attempt "10:ab");
  check "trailing" true (attempt "1:ab")

let test_wire_rejects_extreme_lengths () =
  let attempt input = match Wire.(decode d_string) input with exception Wire.Malformed _ -> true | _ -> false in
  check "negative length" true (attempt "-3:abc");
  check "length far past the buffer" true (attempt "999999999:ab");
  check "length overflowing int parsing" true (attempt "99999999999999999999:ab");
  check "empty input" true (attempt "");
  check "negative list count" true
    (match Wire.(decode (d_list d_int)) (Wire.int (-1)) with
    | exception Wire.Malformed _ -> true
    | _ -> false)

(* --- Value codec over the wire --- *)

let test_value_roundtrips () =
  let v =
    Value.(List [ Pair (Int 42, Str "a:b:c"); Bool false; Unit; List [ Str "" ] ])
  in
  check "value roundtrip" true (Value.decode (Value.encode v) = v);
  let o = Value.obj ~cls:"Payment" (Value.Str "visa") in
  check "obj roundtrip" true (Value.decode_obj (Value.encode_obj o) = o)

let test_value_rejects_malformed () =
  let rejects s = match Value.decode s with exception Wire.Malformed _ -> true | _ -> false in
  check "unknown tag" true (rejects (Wire.string "z"));
  check "unknown tag with payload" true (rejects (Wire.string "q" ^ Wire.int 3));
  check "int tag, truncated payload" true (rejects (Wire.string "i"));
  check "pair tag, one element missing" true (rejects (Wire.string "p" ^ Value.encode Value.Unit));
  check "list with short count" true (rejects (Wire.string "l" ^ Wire.int 2 ^ Value.encode Value.Unit));
  check "trailing bytes after a full value" true (rejects (Value.encode Value.Unit ^ "x"));
  (* truncating a valid frame at any byte must raise, never succeed *)
  let full = Value.encode (Value.Pair (Value.Int 7, Value.Str "hello")) in
  for cut = 0 to String.length full - 1 do
    check
      (Printf.sprintf "truncated at %d" cut)
      true
      (rejects (String.sub full 0 cut))
  done

let prop_wire_string_roundtrip =
  QCheck.Test.make ~name:"wire strings roundtrip (incl. separators)" ~count:300
    QCheck.(string)
    (fun s -> Wire.(decode d_string) (Wire.string s) = s)

let prop_wire_list_roundtrip =
  QCheck.Test.make ~name:"wire lists of pairs roundtrip" ~count:200
    QCheck.(list (pair string small_int))
    (fun l ->
      let enc = Wire.(list (pair string int)) in
      Wire.(decode (d_list (d_pair d_string d_int))) (enc l) = l)

(* --- reused-buffer encoder paths --- *)

(* Wire.run reuses one scratch buffer per domain. Legacy combinators
   nest run (the in-use fallback path); consecutive calls must not leak
   bytes from one encoding into the next; and [b_int]'s direct decimal
   emission must agree with the historical string framing. *)

let test_wire_scratch_reuse_is_clean () =
  let long = String.make 300 'x' in
  let a = Wire.string long in
  let b = Wire.string "short" in
  check "second encode unpolluted by first" true (Wire.(decode d_string) b = "short");
  check "first encode intact" true (Wire.(decode d_string) a = long);
  (* nested legacy combinators: outer run holds the scratch, inner runs
     take the fresh-buffer fallback *)
  let enc = Wire.(pair (list (pair string int)) (option string)) in
  let v = ([ ("a:b", 7); ("", -1); (long, max_int) ], Some "tail") in
  check "nested combinators roundtrip" true
    (Wire.(decode (d_pair (d_list (d_pair d_string d_int)) (d_option d_string))) (enc v) = v)

let prop_wire_int_direct_decimal =
  QCheck.Test.make ~name:"b_int direct decimal matches string framing" ~count:500
    QCheck.(oneof [ int; int_range (-1000) 1000 ])
    (fun n ->
      Wire.int n = Wire.string (string_of_int n) && Wire.(decode d_int) (Wire.int n) = n)

let prop_wire_repeated_runs_independent =
  QCheck.Test.make ~name:"scratch reuse: encode twice = encode once" ~count:200
    QCheck.(pair string (list small_int))
    (fun (s, l) ->
      let enc () = Wire.(pair string (list int)) (s, l) in
      let first = enc () in
      let second = enc () in
      first = second && Wire.(decode (d_pair d_string (d_list d_int))) second = (s, l))

(* Two domains encoding concurrently must not share scratch bytes (the
   scratch is domain-local storage). *)
let test_wire_scratch_domain_isolated () =
  let rounds = 2000 in
  let encode_round i =
    let payload = Printf.sprintf "payload-%d-%s" i (String.make (i mod 50) 'y') in
    Wire.(decode d_string) (Wire.string payload) = payload
  in
  let other = Domain.spawn (fun () ->
      let ok = ref true in
      for i = 0 to rounds - 1 do
        if not (encode_round i) then ok := false
      done;
      !ok)
  in
  let mine = ref true in
  for i = 0 to rounds - 1 do
    if not (encode_round (i + 7)) then mine := false
  done;
  check "spawned domain encodes cleanly" true (Domain.join other);
  check "main domain encodes cleanly" true !mine

(* --- Network --- *)

let test_delivery_and_latency () =
  let sim, net, _ = make_net [ "a"; "b" ] in
  let got = ref None in
  Node.serve (Network.node net "b") ~service:"echo" (fun ~src body ->
      got := Some (src, body, Sim.now sim);
      "");
  Network.send net ~src:"a" ~dst:"b" ~service:"echo" ~body:"hi";
  Sim.run sim;
  (match !got with
  | Some (src, body, at) ->
    check "src" true (src = "a");
    check "body" true (body = "hi");
    check "latency >= base" true (at >= Network.default_config.base_latency)
  | None -> Alcotest.fail "message not delivered");
  check_int "delivered counter" 1 (Network.delivered_total net)

let test_loss_drops_everything () =
  let config = { Network.default_config with loss = 1.0 } in
  let sim, net, _ = make_net ~config [ "a"; "b" ] in
  let got = ref 0 in
  Node.serve (Network.node net "b") ~service:"s" (fun ~src:_ _ -> incr got; "");
  for _ = 1 to 20 do
    Network.send net ~src:"a" ~dst:"b" ~service:"s" ~body:""
  done;
  Sim.run sim;
  check_int "nothing delivered" 0 !got;
  check_int "all dropped" 20 (Network.dropped_total net)

let test_partition_blocks_and_heals () =
  let sim, net, _ = make_net [ "a"; "b" ] in
  let got = ref 0 in
  Node.serve (Network.node net "b") ~service:"s" (fun ~src:_ _ -> incr got; "");
  Network.partition_on net "a" "b";
  Network.send net ~src:"a" ~dst:"b" ~service:"s" ~body:"";
  Sim.run sim;
  check_int "blocked" 0 !got;
  Network.partition_off net "a" "b";
  Network.send net ~src:"a" ~dst:"b" ~service:"s" ~body:"";
  Sim.run sim;
  check_int "healed" 1 !got

let test_crashed_destination_drops () =
  let sim, net, _ = make_net [ "a"; "b" ] in
  let got = ref 0 in
  Node.serve (Network.node net "b") ~service:"s" (fun ~src:_ _ -> incr got; "");
  Node.crash (Network.node net "b");
  Network.send net ~src:"a" ~dst:"b" ~service:"s" ~body:"";
  Sim.run sim;
  check_int "dropped at crashed node" 0 !got

let test_crash_in_flight_drops_at_delivery () =
  let sim, net, _ = make_net [ "a"; "b" ] in
  let got = ref 0 in
  Node.serve (Network.node net "b") ~service:"s" (fun ~src:_ _ -> incr got; "");
  Network.send net ~src:"a" ~dst:"b" ~service:"s" ~body:"";
  (* crash b before the message arrives *)
  ignore (Sim.schedule sim ~delay:1 (fun () -> Node.crash (Network.node net "b")));
  Sim.run sim;
  check_int "in-flight message lost" 0 !got

let test_crashed_source_sends_nothing () =
  let sim, net, _ = make_net [ "a"; "b" ] in
  Node.crash (Network.node net "a");
  Network.send net ~src:"a" ~dst:"b" ~service:"s" ~body:"";
  Sim.run sim;
  check_int "nothing sent" 0 (Network.sent_total net)

let test_node_hooks_fire_once () =
  let _, net, _ = make_net [ "a" ] in
  let n = Network.node net "a" in
  let crashes = ref 0 and recoveries = ref 0 in
  Node.on_crash n (fun () -> incr crashes);
  Node.on_recover n (fun () -> incr recoveries);
  Node.crash n;
  Node.crash n;
  Node.recover n;
  Node.recover n;
  check_int "crash hook idempotent" 1 !crashes;
  check_int "recover hook idempotent" 1 !recoveries

let test_service_withdrawn () =
  let sim, net, _ = make_net [ "a"; "b" ] in
  let got = ref 0 in
  let b = Network.node net "b" in
  Node.serve b ~service:"s" (fun ~src:_ _ -> incr got; "");
  Node.withdraw b ~service:"s";
  Network.send net ~src:"a" ~dst:"b" ~service:"s" ~body:"";
  Sim.run sim;
  check_int "withdrawn service gets nothing" 0 !got

(* --- Rpc --- *)

let make_rpc ?config ?seed ?reply_cache_cap ids =
  let sim, net, nodes = make_net ?config ?seed ids in
  let rpc = Rpc.create ?reply_cache_cap net in
  List.iter (Rpc.attach rpc) nodes;
  (sim, net, rpc)

let test_rpc_call_ok () =
  let sim, _, rpc = make_rpc [ "a"; "b" ] in
  Node.serve (Network.node (Rpc.network rpc) "b") ~service:"double" (fun ~src:_ body -> body ^ body);
  let result = ref None in
  Rpc.call rpc ~src:"a" ~dst:"b" ~service:"double" ~body:"xy" (fun r -> result := Some r);
  Sim.run sim;
  check "reply" true (!result = Some (Ok "xyxy"))

let test_rpc_unknown_service_errors () =
  let sim, _, rpc = make_rpc [ "a"; "b" ] in
  let result = ref None in
  Rpc.call rpc ~src:"a" ~dst:"b" ~service:"nope" ~body:"" (fun r -> result := Some r);
  Sim.run sim;
  check "error" true (match !result with Some (Error _) -> true | _ -> false)

let test_rpc_handler_exception_is_error () =
  let sim, net, rpc = make_rpc [ "a"; "b" ] in
  Node.serve (Network.node net "b") ~service:"boom" (fun ~src:_ _ -> failwith "kaboom");
  let result = ref None in
  Rpc.call rpc ~src:"a" ~dst:"b" ~service:"boom" ~body:"" (fun r -> result := Some r);
  Sim.run sim;
  check "error carries exception" true
    (match !result with Some (Error e) -> String.length e > 0 | _ -> false)

let test_rpc_timeout_on_dead_destination () =
  let sim, net, rpc = make_rpc [ "a"; "b" ] in
  Node.crash (Network.node net "b");
  let result = ref None in
  Rpc.call rpc ~src:"a" ~dst:"b" ~service:"s" ~body:"" ~timeout:(Sim.ms 5) ~retries:2 (fun r ->
      result := Some r);
  Sim.run sim;
  check "timeout" true (!result = Some (Error "timeout"))

let test_rpc_retries_through_loss_execute_once () =
  (* 60% loss: retries must eventually get through, and dedup must keep
     the handler execution count at one per call. *)
  let config = { Network.default_config with loss = 0.6 } in
  let sim, net, rpc = make_rpc ~config ~seed:9L [ "a"; "b" ] in
  let executions = ref 0 in
  Node.serve (Network.node net "b") ~service:"inc" (fun ~src:_ _ ->
      incr executions;
      "done");
  let oks = ref 0 in
  for _ = 1 to 10 do
    Rpc.call rpc ~src:"a" ~dst:"b" ~service:"inc" ~body:"" ~timeout:(Sim.ms 4) ~retries:40
      (function Ok _ -> incr oks | Error _ -> ())
  done;
  Sim.run sim;
  check_int "all calls eventually succeed" 10 !oks;
  check_int "handler ran exactly once per call" 10 !executions;
  check "retries actually happened" true (Rpc.retries_total rpc > 0)

let test_rpc_caller_crash_suppresses_callback () =
  let sim, net, rpc = make_rpc [ "a"; "b" ] in
  Node.serve (Network.node net "b") ~service:"s" (fun ~src:_ _ -> "r");
  let fired = ref false in
  Rpc.call rpc ~src:"a" ~dst:"b" ~service:"s" ~body:"" (fun _ -> fired := true);
  Node.crash (Network.node net "a");
  Sim.run sim;
  check "callback suppressed after caller crash" false !fired

let test_rpc_reply_cache_bounded () =
  (* the dedup cache must not grow without bound: with a cap of 4,
     10 sequential requests evict the 6 oldest entries *)
  let sim, net, rpc = make_rpc ~reply_cache_cap:4 [ "a"; "b" ] in
  Node.serve (Network.node net "b") ~service:"s" (fun ~src:_ body -> body);
  for i = 1 to 10 do
    Rpc.call rpc ~src:"a" ~dst:"b" ~service:"s" ~body:(string_of_int i) (fun _ -> ())
  done;
  let m = Metrics.create () in
  Metrics.attach m (Sim.events sim);
  Sim.run sim;
  check_int "six evictions" 6 (Rpc.reply_evictions_total rpc);
  check_int "evictions surfaced through metrics" 6 (Metrics.value m "rpc.reply_evictions")

let test_rpc_dedup_survives_small_cache () =
  (* retries under loss with a small-but-sufficient cache: dedup still
     holds (each in-flight request's reply stays cached until it ages
     out past the cap) *)
  let config = { Network.default_config with loss = 0.6 } in
  let sim, net, rpc = make_rpc ~config ~seed:9L ~reply_cache_cap:32 [ "a"; "b" ] in
  let executions = ref 0 in
  Node.serve (Network.node net "b") ~service:"inc" (fun ~src:_ _ ->
      incr executions;
      "done");
  let oks = ref 0 in
  for _ = 1 to 10 do
    Rpc.call rpc ~src:"a" ~dst:"b" ~service:"inc" ~body:"" ~timeout:(Sim.ms 4) ~retries:40
      (function Ok _ -> incr oks | Error _ -> ())
  done;
  Sim.run sim;
  check_int "all calls succeed" 10 !oks;
  check_int "exactly-once execution with a bounded cache" 10 !executions

(* --- loopback fast lane --- *)

let test_rpc_loopback_skips_network () =
  let sim, net, rpc = make_rpc [ "a"; "b" ] in
  Node.serve (Network.node net "a") ~service:"echo" (fun ~src:_ body -> body ^ body);
  let m = Metrics.create () in
  Metrics.attach m (Sim.events sim);
  let result = ref None in
  Rpc.call rpc ~src:"a" ~dst:"a" ~service:"echo" ~body:"lo" (fun r -> result := Some r);
  Sim.run sim;
  check "reply delivered" true (!result = Some (Ok "lolo"));
  check_int "no network traffic" 0 (Network.sent_total net);
  check_int "zero virtual latency" 0 (Sim.now sim);
  check_int "counted" 1 (Rpc.loopback_total rpc);
  check_int "rpc.loopback metric" 1 (Metrics.value m "rpc.loopback");
  check_int "still announced as rpc-sent" 1 (Metrics.value m "events.rpc-sent")

let test_rpc_loopback_on_partitioned_self () =
  (* a node partitioned from the rest of the fabric — even from itself
     at the network level — still reaches its own services *)
  let sim, net, rpc = make_rpc [ "a"; "b" ] in
  Node.serve (Network.node net "a") ~service:"s" (fun ~src:_ _ -> "here");
  Network.partition_on net "a" "b";
  Network.partition_on net "a" "a";
  let result = ref None in
  Rpc.call rpc ~src:"a" ~dst:"a" ~service:"s" ~body:"" (fun r -> result := Some r);
  Sim.run sim;
  check "self-call unaffected by partitions" true (!result = Some (Ok "here"))

let test_rpc_loopback_crashed_self_times_out () =
  (* a down node gets no loopback: the call takes the network path,
     whose send is suppressed at the crashed source, and times out
     without ever executing the handler *)
  let sim, net, rpc = make_rpc [ "a" ] in
  let executed = ref false in
  Node.serve (Network.node net "a") ~service:"s" (fun ~src:_ _ ->
      executed := true;
      "");
  Node.crash (Network.node net "a");
  let result = ref None in
  Rpc.call rpc ~src:"a" ~dst:"a" ~service:"s" ~body:"" ~timeout:(Sim.ms 5) ~retries:1 (fun r ->
      result := Some r);
  Sim.run sim;
  check "handler never ran" false !executed;
  check "timed out" true (!result = Some (Error "timeout"));
  check_int "no loopback counted" 0 (Rpc.loopback_total rpc)

let test_rpc_loopback_crash_before_delivery_suppresses_callback () =
  (* the loopback delivery is deferred; a crash in the same instant
     kills the pending call, so neither handler nor callback runs *)
  let sim, net, rpc = make_rpc [ "a" ] in
  let executed = ref false and fired = ref false in
  Node.serve (Network.node net "a") ~service:"s" (fun ~src:_ _ ->
      executed := true;
      "");
  Rpc.call rpc ~src:"a" ~dst:"a" ~service:"s" ~body:"" (fun _ -> fired := true);
  Node.crash (Network.node net "a");
  Sim.run sim;
  check "handler never ran" false !executed;
  check "callback suppressed" false !fired

let test_rpc_invalid_cache_cap_rejected () =
  let sim = Sim.create ~seed:1L () in
  let net = Network.create sim in
  check "cap of zero is refused" true
    (match Rpc.create ~reply_cache_cap:0 net with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_wire_string_roundtrip;
      prop_wire_list_roundtrip;
      prop_wire_int_direct_decimal;
      prop_wire_repeated_runs_independent;
    ]

let () =
  Alcotest.run "net"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrips" `Quick test_wire_roundtrips;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
          Alcotest.test_case "rejects extreme lengths" `Quick test_wire_rejects_extreme_lengths;
          Alcotest.test_case "scratch reuse clean" `Quick test_wire_scratch_reuse_is_clean;
          Alcotest.test_case "scratch domain-isolated" `Quick test_wire_scratch_domain_isolated;
        ] );
      ( "value codec",
        [
          Alcotest.test_case "roundtrips" `Quick test_value_roundtrips;
          Alcotest.test_case "rejects malformed" `Quick test_value_rejects_malformed;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivery and latency" `Quick test_delivery_and_latency;
          Alcotest.test_case "total loss" `Quick test_loss_drops_everything;
          Alcotest.test_case "partition" `Quick test_partition_blocks_and_heals;
          Alcotest.test_case "crashed destination" `Quick test_crashed_destination_drops;
          Alcotest.test_case "crash in flight" `Quick test_crash_in_flight_drops_at_delivery;
          Alcotest.test_case "crashed source" `Quick test_crashed_source_sends_nothing;
          Alcotest.test_case "hooks idempotent" `Quick test_node_hooks_fire_once;
          Alcotest.test_case "service withdrawn" `Quick test_service_withdrawn;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "call ok" `Quick test_rpc_call_ok;
          Alcotest.test_case "unknown service" `Quick test_rpc_unknown_service_errors;
          Alcotest.test_case "handler exception" `Quick test_rpc_handler_exception_is_error;
          Alcotest.test_case "timeout on dead node" `Quick test_rpc_timeout_on_dead_destination;
          Alcotest.test_case "retries + dedup" `Quick test_rpc_retries_through_loss_execute_once;
          Alcotest.test_case "caller crash" `Quick test_rpc_caller_crash_suppresses_callback;
          Alcotest.test_case "reply cache bounded" `Quick test_rpc_reply_cache_bounded;
          Alcotest.test_case "dedup with small cache" `Quick test_rpc_dedup_survives_small_cache;
          Alcotest.test_case "invalid cache cap" `Quick test_rpc_invalid_cache_cap_rejected;
          Alcotest.test_case "loopback skips network" `Quick test_rpc_loopback_skips_network;
          Alcotest.test_case "loopback through partition" `Quick
            test_rpc_loopback_on_partitioned_self;
          Alcotest.test_case "loopback crashed self" `Quick
            test_rpc_loopback_crashed_self_times_out;
          Alcotest.test_case "loopback crash pre-delivery" `Quick
            test_rpc_loopback_crash_before_delivery_suppresses_callback;
        ] );
      ("properties", qsuite);
    ]
