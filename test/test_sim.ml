(* Unit and property tests for the discrete-event kernel:
   heap ordering, RNG determinism, event scheduling semantics. *)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* --- Heap --- *)

let test_heap_orders_elements () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  check "empty" true (Heap.is_empty h);
  check "pop none" true (Heap.pop h = None);
  check "peek none" true (Heap.peek h = None)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let prop_heap_length =
  QCheck.Test.make ~name:"heap length tracks pushes and pops" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let before = Heap.length h in
      ignore (Heap.pop h);
      before = List.length xs && Heap.length h = max 0 (before - 1))

(* pop_exn drains exactly like pop, without the option boxing *)
let prop_heap_pop_exn_sorts =
  QCheck.Test.make ~name:"pop_exn drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        if Heap.is_empty h then List.rev acc
        else begin
          let top = Heap.top h in
          let x = Heap.pop_exn h in
          if top <> x then QCheck.Test.fail_report "top <> pop_exn";
          drain (x :: acc)
        end
      in
      drain [] = List.sort compare xs)

(* Interleaved pushes and pops: after any prefix of operations the heap
   agrees with a sorted-list model. Exercises the hole-based sifts from
   arbitrary intermediate shapes, not just build-then-drain. *)
let prop_heap_model =
  QCheck.Test.make ~name:"heap agrees with sorted-list model under interleaving" ~count:200
    QCheck.(list (option small_int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (function
          | Some x ->
            Heap.push h x;
            model := List.sort compare (x :: !model);
            Heap.length h = List.length !model
          | None -> (
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some x, m :: rest ->
              model := rest;
              x = m
            | None, _ :: _ | Some _, [] -> false))
        ops)

(* Equal keys come out in insertion order under the simulator's
   (time, seq) comparator — the stability contract the event queue
   relies on, preserved across the allocation-free sift rewrite. *)
let prop_heap_stable_for_equal_keys =
  QCheck.Test.make ~name:"equal keys pop in insertion order" ~count:200
    QCheck.(list (int_bound 5))
    (fun keys ->
      let cmp (ka, sa) (kb, sb) = match compare ka kb with 0 -> compare sa sb | c -> c in
      let h = Heap.create ~cmp in
      List.iteri (fun seq k -> Heap.push h (k, seq)) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      let out = drain [] in
      (* sorted by key, and within a key the seq values strictly increase *)
      let rec ok = function
        | (ka, sa) :: ((kb, sb) :: _ as rest) ->
          (ka < kb || (ka = kb && sa < sb)) && ok rest
        | [ _ ] | [] -> true
      in
      ok out)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  let take rng = List.init 20 (fun _ -> Rng.next_int64 rng) in
  check "same seed, same stream" true (take a = take b)

let test_rng_split_independent () =
  let a = Rng.create 7L in
  let child = Rng.split a in
  check "child differs from parent" true (Rng.next_int64 a <> Rng.next_int64 child)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays within bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_in_bounds =
  QCheck.Test.make ~name:"Rng.float stays within bounds" ~count:500 QCheck.int64 (fun seed ->
      let rng = Rng.create seed in
      let v = Rng.float rng 3.0 in
      v >= 0.0 && v < 3.0)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 3L in
  check "p=0 never" true (not (List.exists Fun.id (List.init 50 (fun _ -> Rng.bernoulli rng 0.0))));
  check "p=1 always" true (List.for_all Fun.id (List.init 50 (fun _ -> Rng.bernoulli rng 1.0)))

let test_rng_shuffle_permutes () =
  let rng = Rng.create 11L in
  let xs = List.init 30 Fun.id in
  let ys = Rng.shuffle rng xs in
  check "same multiset" true (List.sort compare ys = xs)

(* --- Sim --- *)

let test_sim_runs_in_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag () = log := (tag, Sim.now sim) :: !log in
  ignore (Sim.schedule sim ~delay:30 (note "c"));
  ignore (Sim.schedule sim ~delay:10 (note "a"));
  ignore (Sim.schedule sim ~delay:20 (note "b"));
  Sim.run sim;
  Alcotest.(check (list (pair string int)))
    "time order" [ ("a", 10); ("b", 20); ("c", 30) ] (List.rev !log)

let test_sim_fifo_at_equal_time () =
  let sim = Sim.create () in
  let log = ref [] in
  List.iter
    (fun tag -> ignore (Sim.schedule sim ~delay:5 (fun () -> log := tag :: !log)))
    [ "first"; "second"; "third" ];
  Sim.run sim;
  Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ] (List.rev !log)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~delay:5 (fun () -> fired := true) in
  Sim.cancel sim h;
  Sim.run sim;
  check "cancelled event does not fire" false !fired

let test_sim_until_leaves_future_events () =
  let sim = Sim.create () in
  let fired = ref 0 in
  ignore (Sim.schedule sim ~delay:10 (fun () -> incr fired));
  ignore (Sim.schedule sim ~delay:100 (fun () -> incr fired));
  Sim.run ~until:50 sim;
  check_int "only the first fired" 1 !fired;
  check_int "clock advanced to the limit" 50 (Sim.now sim);
  Sim.run sim;
  check_int "second fires on resume" 2 !fired

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let times = ref [] in
  let record () = times := Sim.now sim :: !times in
  ignore
    (Sim.schedule sim ~delay:10 (fun () ->
         record ();
         ignore (Sim.schedule sim ~delay:10 record)));
  Sim.run sim;
  Alcotest.(check (list int)) "chained delays accumulate" [ 10; 20 ] (List.rev !times)

let test_sim_negative_delay_clamped () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:10 (fun () -> ()));
  Sim.run sim;
  let at = ref (-1) in
  ignore (Sim.schedule sim ~delay:(-5) (fun () -> at := Sim.now sim));
  Sim.run sim;
  check_int "fires at current time" 10 !at

let test_sim_step () =
  let sim = Sim.create () in
  let count = ref 0 in
  ignore (Sim.schedule sim ~delay:1 (fun () -> incr count));
  ignore (Sim.schedule sim ~delay:2 (fun () -> incr count));
  check "step consumes one event" true (Sim.step sim);
  check_int "one fired" 1 !count;
  check "second step" true (Sim.step sim);
  check "empty afterwards" false (Sim.step sim)

(* --- Trace --- *)

let test_trace_records_in_order () =
  let sim = Sim.create () in
  let trace = Trace.create () in
  ignore (Sim.schedule sim ~delay:5 (fun () -> Trace.record trace ~at:(Sim.now sim) ~kind:"start" "t1"));
  ignore (Sim.schedule sim ~delay:9 (fun () -> Trace.record trace ~at:(Sim.now sim) ~kind:"finish" "t1"));
  Sim.run sim;
  let entries = Trace.entries trace in
  check_int "two entries" 2 (List.length entries);
  check "find by kind" true (List.length (Trace.find trace ~kind:"start") = 1);
  check "first lookup" true (Trace.first trace ~kind:"finish" ~detail:"t1" <> None);
  check "missing lookup" true (Trace.first trace ~kind:"finish" ~detail:"t2" = None)

(* --- Fault plans --- *)

let test_fault_plan_applies_in_order () =
  let sim = Sim.create () in
  let seen = ref [] in
  let plan =
    Fault.(crash_restart ~node:"a" ~at:10 ~down_for:5 @+ partition ~a:"a" ~b:"b" ~at:12 ~heal_after:4)
  in
  Fault.apply sim plan ~on:(fun action -> seen := (Sim.now sim, action) :: !seen);
  Sim.run sim;
  let expect =
    [
      (10, Fault.Crash "a");
      (12, Fault.Partition_on ("a", "b"));
      (15, Fault.Restart "a");
      (16, Fault.Partition_off ("a", "b"));
    ]
  in
  check "actions fire at planned times" true (List.rev !seen = expect)

let test_fault_periodic_count () =
  let plan = Fault.periodic_crashes ~node:"n" ~period:100 ~down_for:10 ~count:3 in
  check_int "two actions per cycle" 6 (List.length plan)

let test_fault_periodic_contents () =
  let plan = Fault.periodic_crashes ~node:"n" ~period:100 ~down_for:10 ~count:2 in
  check "k-th crash at k * period, restart down_for later" true
    (plan
    = [
        (100, Fault.Crash "n");
        (110, Fault.Restart "n");
        (200, Fault.Crash "n");
        (210, Fault.Restart "n");
      ])

let test_fault_empty_union () =
  let p = Fault.crash_restart ~node:"x" ~at:1 ~down_for:1 in
  check "empty is a left identity" true (Fault.(empty @+ p) = p);
  check "empty is a right identity" true (Fault.(p @+ empty) = p);
  let sim = Sim.create () in
  let fired = ref false in
  Fault.apply sim Fault.empty ~on:(fun _ -> fired := true);
  Sim.run sim;
  check "empty plan schedules nothing" false !fired

let qsuite = List.map QCheck_alcotest.to_alcotest
  [
    prop_heap_sorts;
    prop_heap_length;
    prop_heap_pop_exn_sorts;
    prop_heap_model;
    prop_heap_stable_for_equal_keys;
    prop_rng_int_in_bounds;
    prop_rng_float_in_bounds;
  ]

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "orders elements" `Quick test_heap_orders_elements;
          Alcotest.test_case "empty behaviour" `Quick test_heap_empty;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "time order" `Quick test_sim_runs_in_time_order;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_at_equal_time;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "run until" `Quick test_sim_until_leaves_future_events;
          Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "negative delay" `Quick test_sim_negative_delay_clamped;
          Alcotest.test_case "step" `Quick test_sim_step;
        ] );
      ( "trace",
        [ Alcotest.test_case "records in order" `Quick test_trace_records_in_order ] );
      ( "fault",
        [
          Alcotest.test_case "plan applies in order" `Quick test_fault_plan_applies_in_order;
          Alcotest.test_case "periodic count" `Quick test_fault_periodic_count;
          Alcotest.test_case "periodic contents" `Quick test_fault_periodic_contents;
          Alcotest.test_case "empty union" `Quick test_fault_empty_union;
        ] );
      ("properties", qsuite);
    ]
